package benchfmt

import (
	"regexp"
	"strings"
	"testing"
)

func diffFixture() (*Run, *Run) {
	base := &Run{Schema: SchemaRun, Results: []Result{
		{Name: "steady", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "growth", NsPerOp: 1000, AllocsPerOp: 5},
		{Name: "vanished", NsPerOp: 50, AllocsPerOp: 1},
		{Name: "parallel_w4", NsPerOp: 400, AllocsPerOp: 9},
	}}
	cur := &Run{Schema: SchemaRun, Results: []Result{
		{Name: "steady", NsPerOp: 110, AllocsPerOp: 0},           // +10%: ok
		{Name: "growth", NsPerOp: 1500, AllocsPerOp: 5},          // +50%: ns/op fail
		{Name: "parallel_w4", NsPerOp: 9000, AllocsPerOp: 9},     // exempt
		{Name: "tuning_pick_rank1", NsPerOp: 7, AllocsPerOp: 0},  // new
		{Name: "tuning_pick_clone", NsPerOp: 77, AllocsPerOp: 3}, // new
	}}
	return base, cur
}

func entryByName(t *testing.T, entries []DiffEntry, name string) DiffEntry {
	t.Helper()
	for _, e := range entries {
		if e.Name == name {
			return e
		}
	}
	t.Fatalf("no entry %q", name)
	return DiffEntry{}
}

func TestDiffGateRules(t *testing.T) {
	base, cur := diffFixture()
	entries, failures, added := Diff(base, cur, DiffOptions{
		MaxRegress: 0.35,
		Exempt:     regexp.MustCompile("^parallel_"),
	})
	if failures != 2 {
		t.Fatalf("failures = %d, want 2 (ns/op regression + vanished)", failures)
	}
	if added != 2 {
		t.Fatalf("added = %d, want 2", added)
	}
	if e := entryByName(t, entries, "steady"); e.Failed || e.Verdict != "ok" {
		t.Errorf("steady: %+v", e)
	}
	if e := entryByName(t, entries, "growth"); !e.Failed || !strings.Contains(e.Verdict, "ns/op") {
		t.Errorf("growth should fail on ns/op: %+v", e)
	}
	if e := entryByName(t, entries, "vanished"); !e.Failed || !strings.Contains(e.Verdict, "missing") {
		t.Errorf("vanished should fail as missing: %+v", e)
	}
	if e := entryByName(t, entries, "parallel_w4"); e.Failed || e.Verdict != "exempt" {
		t.Errorf("parallel_w4 should be exempt despite 22×: %+v", e)
	}
	for _, name := range []string{"tuning_pick_rank1", "tuning_pick_clone"} {
		e := entryByName(t, entries, name)
		if !e.New || e.Failed || e.Verdict != "new (not gated)" {
			t.Errorf("%s should be reported as new and ungated: %+v", name, e)
		}
		if e.Base != nil || e.Cur == nil {
			t.Errorf("%s new entry sides wrong: %+v", name, e)
		}
	}
	// Baseline entries come first, in baseline order; new ones follow.
	wantOrder := []string{"steady", "growth", "vanished", "parallel_w4", "tuning_pick_rank1", "tuning_pick_clone"}
	for i, e := range entries {
		if e.Name != wantOrder[i] {
			t.Fatalf("entry %d = %s, want %s", i, e.Name, wantOrder[i])
		}
	}
}

func TestDiffAllocRegressionFails(t *testing.T) {
	base := &Run{Results: []Result{{Name: "hot", NsPerOp: 100, AllocsPerOp: 0}}}
	cur := &Run{Results: []Result{{Name: "hot", NsPerOp: 90, AllocsPerOp: 1}}}
	_, failures, _ := Diff(base, cur, DiffOptions{MaxRegress: 0.35})
	if failures != 1 {
		t.Fatalf("an allocs/op increase must fail even when ns/op improved (failures=%d)", failures)
	}
}

// AllocSlack relaxes only large-count benchmarks: the per-benchmark budget
// is ⌊base × slack⌋, so a 0-alloc (or any < 1/slack) baseline stays a hard
// equality gate while a multi-thousand-alloc one absorbs sub-percent
// background-runtime noise.
func TestDiffAllocSlackFloorScaled(t *testing.T) {
	base := &Run{Results: []Result{
		{Name: "hot", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "warm", NsPerOp: 100, AllocsPerOp: 137},
		{Name: "growth", NsPerOp: 100, AllocsPerOp: 2072},
	}}
	cur := &Run{Results: []Result{
		{Name: "hot", NsPerOp: 100, AllocsPerOp: 1},       // 0-alloc gate stays strict
		{Name: "warm", NsPerOp: 100, AllocsPerOp: 138},    // ⌊137×0.005⌋ = 0 → strict
		{Name: "growth", NsPerOp: 100, AllocsPerOp: 2080}, // ⌊2072×0.005⌋ = 10 → ok
	}}
	entries, failures, _ := Diff(base, cur, DiffOptions{MaxRegress: 0.35, AllocSlack: 0.005})
	if failures != 2 {
		t.Fatalf("failures = %d, want 2 (hot and warm strict, growth within slack)", failures)
	}
	if e := entryByName(t, entries, "hot"); !e.Failed {
		t.Errorf("hot must stay a hard zero-alloc gate: %+v", e)
	}
	if e := entryByName(t, entries, "warm"); !e.Failed {
		t.Errorf("warm (137 allocs) must stay strict under 0.5%% slack: %+v", e)
	}
	if e := entryByName(t, entries, "growth"); e.Failed {
		t.Errorf("growth +8/2072 must pass under 0.5%% slack: %+v", e)
	}
	// Beyond the budget still fails.
	cur.Results[2].AllocsPerOp = 2083
	_, failures, _ = Diff(base, cur, DiffOptions{MaxRegress: 0.35, AllocSlack: 0.005})
	if failures != 3 {
		t.Fatalf("failures = %d, want 3 (growth +11 exceeds the 10-alloc budget)", failures)
	}
}

func TestDiffExemptMissingDoesNotFail(t *testing.T) {
	base := &Run{Results: []Result{{Name: "parallel_w8", NsPerOp: 100}}}
	cur := &Run{Results: []Result{}}
	entries, failures, _ := Diff(base, cur, DiffOptions{
		MaxRegress: 0.35, Exempt: regexp.MustCompile("^parallel_"),
	})
	if failures != 0 {
		t.Fatalf("exempt benchmark missing from current must not fail (failures=%d)", failures)
	}
	if e := entryByName(t, entries, "parallel_w8"); e.Verdict != "exempt (missing)" {
		t.Errorf("verdict = %q", e.Verdict)
	}
}

func TestDiffNilExemptGatesEverything(t *testing.T) {
	base := &Run{Results: []Result{{Name: "parallel_w8", NsPerOp: 100}}}
	cur := &Run{Results: []Result{{Name: "parallel_w8", NsPerOp: 1000}}}
	_, failures, _ := Diff(base, cur, DiffOptions{MaxRegress: 0.35})
	if failures != 1 {
		t.Fatalf("nil Exempt must gate every name (failures=%d)", failures)
	}
}
