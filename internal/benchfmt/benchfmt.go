// Package benchfmt defines the JSON schema of the BENCH_*.json performance
// trajectory files shared by cmd/bench (the writer) and cmd/benchdiff (the
// CI regression gate): per-benchmark ns/op, B/op, allocs/op measurements,
// plus derived tuples/sec for the throughput benchmarks.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
)

// Schema identifiers of the two file shapes.
const (
	SchemaRun = "olgapro-bench/v1"     // one harness invocation
	SchemaCmp = "olgapro-bench-cmp/v1" // a before/after comparison
)

// Result records one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"b_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	// TuplesPerSec is set on throughput benchmarks only: processed tuples
	// per wall-clock second, derived from ns/op and the table size.
	TuplesPerSec float64 `json:"tuples_sec,omitempty"`
}

// Run is the file format of one harness invocation.
type Run struct {
	Schema     string   `json:"schema"`
	Label      string   `json:"label,omitempty"`
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

// Comparison is the trajectory entry written when a baseline is embedded.
type Comparison struct {
	Schema   string             `json:"schema"`
	Date     string             `json:"date"`
	Before   *Run               `json:"before"`
	After    *Run               `json:"after"`
	Speedups map[string]float64 `json:"speedup_ns_op"`
}

// DiffOptions parameterize the regression gate.
type DiffOptions struct {
	// MaxRegress is the allowed fractional ns/op regression (0.35 = +35%).
	MaxRegress float64
	// Exempt matches benchmark names that are reported but never gated
	// (host-dependent throughput families). Nil gates every name.
	Exempt *regexp.Regexp
	// AllocSlack is the allowed fractional allocs/op increase, floored per
	// benchmark to an absolute count, so it only ever relaxes large-count
	// benchmarks: the tolerance is ⌊base × AllocSlack⌋, which is 0 — the
	// original hard gate — for any baseline below 1/AllocSlack allocs.
	// Multi-second single-iteration benchmarks pick up a handful of
	// background runtime allocations that vary with process composition
	// (~0.4% observed); without the floor-scaled slack those flake the
	// gate while real leaks (+1 on a 0-alloc hot path) still fail.
	// Zero means strict equality everywhere.
	AllocSlack float64
}

// allocBudget returns the allowed allocs/op for a baseline count.
func (o DiffOptions) allocBudget(base int64) int64 {
	return base + int64(float64(base)*o.AllocSlack)
}

// DiffEntry is one row of a baseline/current comparison.
type DiffEntry struct {
	Name    string
	Base    *Result // nil when the benchmark is new in the current run
	Cur     *Result // nil when the benchmark vanished from the current run
	Delta   float64 // fractional ns/op change (0 when either side is absent)
	Verdict string
	Failed  bool
	New     bool // present in the current run but missing from the baseline
}

// Diff applies the regression-gate rules to a baseline and a current run:
//
//   - ns/op: fail when current > baseline × (1 + MaxRegress);
//   - allocs/op: fail on any increase beyond ⌊base × AllocSlack⌋ — for the
//     low-count hot-path benchmarks that floor is 0, so the zero-allocation
//     invariant stays a hard gate, not a soft budget;
//   - a baseline benchmark missing from the current run fails, so a
//     benchmark cannot silently vanish from the gate;
//   - exempt names are reported but not gated;
//   - benchmarks present only in the current run are reported as New and
//     never gated, so additions stay visible in CI output instead of being
//     silently ignored.
//
// Entries come back in baseline order followed by new benchmarks in current
// order, with the failure and new-benchmark counts.
func Diff(base, cur *Run, opt DiffOptions) (entries []DiffEntry, failures, added int) {
	curBy := cur.ByName()
	baseBy := base.ByName()
	for i := range base.Results {
		b := &base.Results[i]
		e := DiffEntry{Name: b.Name, Base: b}
		exempted := opt.Exempt != nil && opt.Exempt.MatchString(b.Name)
		c, ok := curBy[b.Name]
		switch {
		case !ok && exempted:
			e.Verdict = "exempt (missing)"
		case !ok:
			e.Verdict = "FAIL (missing from current run)"
			e.Failed = true
		default:
			e.Cur = &c
			if b.NsPerOp > 0 {
				e.Delta = c.NsPerOp/b.NsPerOp - 1
			}
			switch {
			case exempted:
				e.Verdict = "exempt"
			case c.NsPerOp > b.NsPerOp*(1+opt.MaxRegress):
				e.Verdict = fmt.Sprintf("FAIL (ns/op +%.0f%% > %.0f%%)", e.Delta*100, opt.MaxRegress*100)
				e.Failed = true
			case c.AllocsPerOp > opt.allocBudget(b.AllocsPerOp):
				e.Verdict = fmt.Sprintf("FAIL (allocs/op %d > %d)", c.AllocsPerOp, opt.allocBudget(b.AllocsPerOp))
				e.Failed = true
			default:
				e.Verdict = "ok"
			}
		}
		if e.Failed {
			failures++
		}
		entries = append(entries, e)
	}
	for i := range cur.Results {
		c := &cur.Results[i]
		if _, ok := baseBy[c.Name]; ok {
			continue
		}
		entries = append(entries, DiffEntry{
			Name: c.Name, Cur: c, New: true, Verdict: "new (not gated)",
		})
		added++
	}
	return entries, failures, added
}

// ByName indexes a run's results.
func (r *Run) ByName() map[string]Result {
	m := make(map[string]Result, len(r.Results))
	for _, res := range r.Results {
		m[res.Name] = res
	}
	return m
}

// ReadRun loads a trajectory file in either schema: a plain run is returned
// as-is, a comparison contributes its "after" side (the measurements that
// were current when the file was committed).
func ReadRun(path string) (*Run, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	switch probe.Schema {
	case SchemaRun:
		var run Run
		if err := json.Unmarshal(raw, &run); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &run, nil
	case SchemaCmp:
		var cmp Comparison
		if err := json.Unmarshal(raw, &cmp); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if cmp.After == nil {
			return nil, fmt.Errorf("%s: comparison has no after side", path)
		}
		return cmp.After, nil
	default:
		return nil, fmt.Errorf("%s: unknown schema %q", path, probe.Schema)
	}
}
