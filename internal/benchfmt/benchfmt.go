// Package benchfmt defines the JSON schema of the BENCH_*.json performance
// trajectory files shared by cmd/bench (the writer) and cmd/benchdiff (the
// CI regression gate): per-benchmark ns/op, B/op, allocs/op measurements,
// plus derived tuples/sec for the throughput benchmarks.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// Schema identifiers of the two file shapes.
const (
	SchemaRun = "olgapro-bench/v1"     // one harness invocation
	SchemaCmp = "olgapro-bench-cmp/v1" // a before/after comparison
)

// Result records one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"b_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	// TuplesPerSec is set on throughput benchmarks only: processed tuples
	// per wall-clock second, derived from ns/op and the table size.
	TuplesPerSec float64 `json:"tuples_sec,omitempty"`
}

// Run is the file format of one harness invocation.
type Run struct {
	Schema     string   `json:"schema"`
	Label      string   `json:"label,omitempty"`
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

// Comparison is the trajectory entry written when a baseline is embedded.
type Comparison struct {
	Schema   string             `json:"schema"`
	Date     string             `json:"date"`
	Before   *Run               `json:"before"`
	After    *Run               `json:"after"`
	Speedups map[string]float64 `json:"speedup_ns_op"`
}

// ByName indexes a run's results.
func (r *Run) ByName() map[string]Result {
	m := make(map[string]Result, len(r.Results))
	for _, res := range r.Results {
		m[res.Name] = res
	}
	return m
}

// ReadRun loads a trajectory file in either schema: a plain run is returned
// as-is, a comparison contributes its "after" side (the measurements that
// were current when the file was committed).
func ReadRun(path string) (*Run, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	switch probe.Schema {
	case SchemaRun:
		var run Run
		if err := json.Unmarshal(raw, &run); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &run, nil
	case SchemaCmp:
		var cmp Comparison
		if err := json.Unmarshal(raw, &cmp); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if cmp.After == nil {
			return nil, fmt.Errorf("%s: comparison has no after side", path)
		}
		return cmp.After, nil
	default:
		return nil, fmt.Errorf("%s: unknown schema %q", path, probe.Schema)
	}
}
