package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadRunBothSchemas(t *testing.T) {
	run := &Run{
		Schema:  SchemaRun,
		Results: []Result{{Name: "a", NsPerOp: 100, AllocsPerOp: 2}},
	}
	got, err := ReadRun(writeJSON(t, run))
	if err != nil {
		t.Fatal(err)
	}
	if got.ByName()["a"].NsPerOp != 100 {
		t.Fatalf("run read back wrong: %+v", got)
	}

	cmp := &Comparison{
		Schema: SchemaCmp,
		Before: &Run{Schema: SchemaRun, Results: []Result{{Name: "a", NsPerOp: 250}}},
		After:  &Run{Schema: SchemaRun, Results: []Result{{Name: "a", NsPerOp: 120}}},
	}
	got, err = ReadRun(writeJSON(t, cmp))
	if err != nil {
		t.Fatal(err)
	}
	if got.ByName()["a"].NsPerOp != 120 {
		t.Fatalf("comparison must contribute its after side, got %+v", got)
	}
}

func TestReadRunRejectsGarbage(t *testing.T) {
	if _, err := ReadRun(writeJSON(t, map[string]string{"schema": "nope"})); err == nil {
		t.Error("unknown schema should error")
	}
	if _, err := ReadRun(writeJSON(t, &Comparison{Schema: SchemaCmp})); err == nil {
		t.Error("comparison without after side should error")
	}
	if _, err := ReadRun(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}
