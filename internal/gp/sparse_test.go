package gp

import (
	"math"
	"math/rand"
	"testing"

	"olgapro/internal/kernel"
)

func sparseTestData(rng *rand.Rand, n, d int) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, d)
		for j := range x {
			x[j] = 4 * rng.Float64()
		}
		xs[i] = x
		s := 0.0
		for _, v := range x {
			s += math.Sin(1.3*v) + 0.25*v
		}
		ys[i] = s
	}
	return xs, ys
}

// With budget ≥ n, Tau = 0-ish and Inflate = 1, the inducing set is the full
// training set and DTC is algebraically the exact GP posterior — mean AND
// variance. This is the theorem the ε_GP validity argument rests on, so pin
// it numerically.
func TestSparseFullBudgetMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	xs, ys := sparseTestData(rng, 40, 2)
	noise := 1e-6

	exact := New(kernel.NewSqExp(1, 0.7), noise)
	sp, err := NewSparse(kernel.NewSqExp(1, 0.7), noise, SparseConfig{Budget: 64, Tau: 1e-12, Inflate: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if err := exact.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
		if err := sp.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if sp.InducingLen() != len(xs) {
		t.Fatalf("inducing %d, want all %d", sp.InducingLen(), len(xs))
	}
	for trial := 0; trial < 200; trial++ {
		x := []float64{4 * rng.Float64(), 4 * rng.Float64()}
		em, ev := exact.Predict(x)
		sm, sv := sp.Predict(x)
		if math.Abs(em-sm) > 1e-6*(1+math.Abs(em)) {
			t.Fatalf("mean mismatch at %v: exact %g sparse %g", x, em, sm)
		}
		// The K_mm jitter perturbs the identity at the percent level, but
		// only in the conservative direction (never under-reporting).
		if sv < ev-1e-9 {
			t.Fatalf("sparse variance %g below exact %g at %v", sv, ev, x)
		}
		if sv-ev > 1e-4+0.05*ev {
			t.Fatalf("variance mismatch at %v: exact %g sparse %g", x, ev, sv)
		}
	}
}

// Under budget pressure the sparse mean must stay within the model's own
// (uninflated) confidence radius of the exact mean, and the DTC variance
// must dominate the exact variance (it can only lose information).
func TestSparseBudgetedTracksExact(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	xs, ys := sparseTestData(rng, 300, 2)
	noise := 1e-6

	exact := New(kernel.NewSqExp(1, 0.9), noise)
	sp, err := NewSparse(kernel.NewSqExp(1, 0.9), noise, SparseConfig{Budget: 48, Inflate: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if err := exact.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
		if err := sp.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := sp.InducingLen(); got != 48 {
		t.Fatalf("inducing %d, want budget 48", got)
	}
	var worst float64
	for trial := 0; trial < 300; trial++ {
		x := []float64{4 * rng.Float64(), 4 * rng.Float64()}
		em, ev := exact.Predict(x)
		sm, sv := sp.Predict(x)
		// The jitter-debiased residual trades the strict raw-variance
		// domination of the naive DTC form for resolution; what validity
		// needs is that the *deployed* band (Inflate ≥ 1.1, i.e. ×1.21 on
		// variance) still dominates the exact posterior, with the raw value
		// never more than the debias wiggle O(jitter) short.
		if 1.21*sv+1e-12 < ev {
			t.Fatalf("inflated DTC variance %g below exact %g at %v", 1.21*sv, ev, x)
		}
		z := math.Abs(sm-em) / math.Sqrt(sv+noise)
		if z > worst {
			worst = z
		}
	}
	// Worst-case over 300 uniform queries the standardized drift sits near
	// 5σ of the raw (uninflated, jitter-debiased) variance; the deployed
	// band multiplies sd by z_α ≥ 3.5 (simultaneous coverage) × Inflate 1.1,
	// and the conformance suite pins end-to-end coverage empirically. This
	// gp-level bound guards against order-of-magnitude mean regressions,
	// not the last fraction of a σ.
	if worst > 6 {
		t.Fatalf("sparse mean drifted %gσ from exact mean", worst)
	}
}

// Predictions must be O(budget): absorbing thousands of points may not grow
// the per-predict work. Pinned structurally — the factors stay m×m.
func TestSparseFactorsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	xs, ys := sparseTestData(rng, 500, 2)
	sp, err := NewSparse(kernel.NewSqExp(1, 0.5), 1e-6, SparseConfig{Budget: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if err := sp.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if sp.Len() != 500 {
		t.Fatalf("Len %d, want 500", sp.Len())
	}
	if m := sp.InducingLen(); m != 32 {
		t.Fatalf("inducing %d exceeds budget", m)
	}
	if got := sp.lk.Size(); got != 32 {
		t.Fatalf("K_mm factor is %d×%d, want budget-bounded", got, got)
	}
	if got := sp.mch.Size(); got != 32 {
		t.Fatalf("M factor is %d×%d, want budget-bounded", got, got)
	}
}

// Swap maintenance must adapt the basis: feed a cluster first, fill the
// budget, then stream points from a far region — maintenance should move
// inducing mass there and cut the far-region error versus a frozen basis.
func TestSparseSwapAdaptsBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	f := func(x []float64) float64 { return math.Sin(2*x[0]) + 0.3*x[0] }
	mk := func(swapEvery int) *Sparse {
		sp, err := NewSparse(kernel.NewSqExp(1, 0.4), 1e-6, SparseConfig{Budget: 12, SwapEvery: swapEvery})
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	adaptive, frozen := mk(8), mk(-1)
	var stream [][]float64
	for i := 0; i < 60; i++ { // cluster in [0,1]
		stream = append(stream, []float64{rng.Float64()})
	}
	for i := 0; i < 120; i++ { // then far region [4,6]
		stream = append(stream, []float64{4 + 2*rng.Float64()})
	}
	for _, x := range stream {
		if err := adaptive.Add(x, f(x)); err != nil {
			t.Fatal(err)
		}
		if err := frozen.Add(x, f(x)); err != nil {
			t.Fatal(err)
		}
	}
	var errAdaptive, errFrozen float64
	for i := 0; i < 200; i++ {
		x := []float64{4 + 2*rng.Float64()}
		am, _ := adaptive.Predict(x)
		fm, _ := frozen.Predict(x)
		errAdaptive += math.Abs(am - f(x))
		errFrozen += math.Abs(fm - f(x))
	}
	if errAdaptive >= errFrozen {
		t.Fatalf("swap maintenance did not help: adaptive err %g ≥ frozen err %g",
			errAdaptive, errFrozen)
	}
}

// A Clone and a NewSparseFromState restore of the same model must predict
// bit-identically — this is what makes frozen replicas replayable across
// snapshot/restart.
func TestSparseCloneRestoreBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	xs, ys := sparseTestData(rng, 150, 2)
	sp, err := NewSparse(kernel.NewSqExp(1, 0.6), 1e-6, SparseConfig{Budget: 24})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if err := sp.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := sp.Clone(nil)
	if err != nil {
		t.Fatal(err)
	}
	var rxs [][]float64
	var rys []float64
	for i := 0; i < sp.Len(); i++ {
		rxs = append(rxs, sp.X(i))
		rys = append(rys, sp.Y(i))
	}
	restored, err := NewSparseFromState(kernel.NewSqExp(1, 0.6), sp.Noise(), sp.Config(), rxs, rys, sp.Inducing())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		x := []float64{4 * rng.Float64(), 4 * rng.Float64()}
		cm, cv := cl.Predict(x)
		rm, rv := restored.Predict(x)
		if cm != rm || cv != rv {
			t.Fatalf("clone (%g, %g) ≠ restore (%g, %g) at %v", cm, cv, rm, rv, x)
		}
	}
}

// Training on the inducing subset must improve the marginal likelihood and
// leave the model consistent (factors rebuilt at the new hyperparameters).
func TestSparseTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	xs, ys := sparseTestData(rng, 120, 1)
	// Deliberately bad initial length scale.
	sp, err := NewSparse(kernel.NewSqExp(1, 5.0), 1e-6, SparseConfig{Budget: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if err := sp.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if step := sp.NewtonStep(); step <= 0 {
		t.Fatalf("NewtonStep = %g at a bad length scale, want > 0", step)
	}
	res, err := sp.Train(TrainConfig{MaxIter: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLogLik < res.InitialLogLik {
		t.Fatalf("training worsened log-likelihood: %g → %g", res.InitialLogLik, res.FinalLogLik)
	}
	// Post-train predictions must still be finite and self-consistent.
	var sc Scratch
	for trial := 0; trial < 20; trial++ {
		x := []float64{4 * rng.Float64()}
		m, v := sp.PredictWith(&sc, x)
		if math.IsNaN(m) || math.IsNaN(v) || v < 0 {
			t.Fatalf("bad post-train prediction (%g, %g)", m, v)
		}
	}
}

// Duplicate points are absorbed, not rejected: the information form handles
// repeated observations natively.
func TestSparseAbsorbsDuplicates(t *testing.T) {
	sp, err := NewSparse(kernel.NewSqExp(1, 0.5), 1e-6, SparseConfig{Budget: 8})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1.5}
	for i := 0; i < 5; i++ {
		if err := sp.Add(x, 2.0); err != nil {
			t.Fatalf("duplicate add %d: %v", i, err)
		}
	}
	if sp.Len() != 5 || sp.InducingLen() != 1 {
		t.Fatalf("Len %d inducing %d, want 5 points / 1 inducing", sp.Len(), sp.InducingLen())
	}
	m, v := sp.Predict(x)
	if math.Abs(m-2.0) > 1e-3 {
		t.Fatalf("mean at repeated point %g, want ≈ 2", m)
	}
	if v < 0 {
		t.Fatalf("negative variance %g", v)
	}
}

// The inflation knob must scale the reported variance and never drop
// below 1.
func TestSparseInflate(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	xs, ys := sparseTestData(rng, 50, 1)
	mk := func(infl float64) *Sparse {
		sp, err := NewSparse(kernel.NewSqExp(1, 0.5), 1e-6, SparseConfig{Budget: 16, Inflate: infl})
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if err := sp.Add(xs[i], ys[i]); err != nil {
				t.Fatal(err)
			}
		}
		return sp
	}
	base, wide := mk(1), mk(2)
	x := []float64{2.2}
	bm, bv := base.Predict(x)
	wm, wv := wide.Predict(x)
	if bm != wm {
		t.Fatalf("inflation changed the mean: %g vs %g", bm, wm)
	}
	if math.Abs(wv-4*bv) > 1e-12*(1+wv) {
		t.Fatalf("Inflate=2 variance %g, want 4× base %g", wv, bv)
	}
	if sub := mk(0.5); sub.Config().Inflate < 1 {
		t.Fatalf("Inflate below 1 not clamped: %g", sub.Config().Inflate)
	}
}

// Steady-state absorb and predict must not allocate.
func TestSparseSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	xs, ys := sparseTestData(rng, 200, 2)
	sp, err := NewSparse(kernel.NewSqExp(1, 0.5), 1e-6, SparseConfig{Budget: 16, SwapEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if err := sp.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	var sc Scratch
	x := []float64{1.1, 2.3}
	sp.PredictWith(&sc, x)
	allocs := testing.AllocsPerRun(200, func() {
		sp.PredictWith(&sc, x)
	})
	if allocs != 0 {
		t.Fatalf("sparse predict allocated %v/op, want 0", allocs)
	}
	// Absorbing with a full budget allocates only the copied point itself
	// (plus amortized feature-store growth).
	probe := make([]float64, 2)
	allocs = testing.AllocsPerRun(50, func() {
		probe[0], probe[1] = 4*rng.Float64(), 4*rng.Float64()
		if err := sp.Add(probe, 1.0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("steady-state absorb allocated %v/op, want ≤ 2 (point copy + amortized growth)", allocs)
	}
}
