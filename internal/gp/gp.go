// Package gp implements Gaussian process regression, the statistical
// emulator the paper builds for black-box UDFs (§3).
//
// A GP is maintained as a set of training pairs (x*, f(x*)), a Cholesky
// factorization of the kernel Gram matrix K(X*, X*) + σ_n² I, and the weight
// vector α = (K + σ_n² I)⁻¹ y. Inference for a test point (Eq. 2) is then
//
//	mean     f̂(x) = k(x, X*) · α                         — O(n)
//	variance σ²(x) = k(x,x) − ‖L⁻¹ k(x, X*)‖²             — O(n²)
//
// Training points can be added incrementally in O(n²) via the bordered
// Cholesky update, which is what makes the paper's online tuning (§5.2)
// affordable, and hyperparameters are learned by maximum likelihood with
// analytic gradients (§3.4). The first-Newton-step estimate driving the
// online retraining heuristic (§5.3) is exposed as NewtonStep.
//
// Inference is the per-sample hot path of the whole system (~10⁴ predictions
// per input tuple), so every predict entry point has a scratch-buffer form
// that performs no heap allocation in the steady state: see Scratch,
// PredictWith, and PredictBatchWith. Mutating methods (Add, Fit, Train,
// Grad/GradHess) reuse GP-owned scratch and must not be called concurrently;
// read-only prediction with caller-owned Scratch values is safe from
// multiple goroutines.
package gp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"olgapro/internal/kernel"
	"olgapro/internal/mat"
)

// DefaultNoise is the default observation-noise variance. The paper's UDFs
// are deterministic, so this acts purely as numerical jitter keeping the
// Gram matrix positive definite.
const DefaultNoise = 1e-8

// ErrDuplicatePoint is returned by Add when a new training point is so close
// to an existing one that the Gram matrix would become singular.
var ErrDuplicatePoint = errors.New("gp: training point (numerically) duplicates an existing one")

// GP is a Gaussian process regression model. Create one with New.
type GP struct {
	kern  kernel.Kernel
	noise float64

	xs    [][]float64
	ys    []float64
	chol  mat.Cholesky
	alpha []float64

	addK []float64   // Add: kernel cross-vector scratch
	gram *mat.Matrix // Fit: Gram matrix scratch
	gh   ghScratch   // gradHess scratch
}

// Scratch holds the reusable buffers of the allocation-free predict path.
// The zero value is ready to use; buffers grow on demand and are retained
// between calls. A Scratch must not be shared between goroutines, but any
// number of goroutines may predict concurrently with their own Scratch.
type Scratch struct {
	k []float64 // kernel cross-vector k(x, X*)
	v []float64 // forward-solve buffer L⁻¹k
	// second cross-vector/solve pair, used by the two-point posterior
	// covariance; lazily grown so single-point predicts never pay for it.
	k2 []float64
	v2 []float64
}

// resize grows the buffers to length n without allocating in steady state.
func (s *Scratch) resize(n int) {
	if cap(s.k) < n {
		s.k = make([]float64, n)
		s.v = make([]float64, n)
	}
	s.k, s.v = s.k[:n], s.v[:n]
}

// resize2 grows the second buffer pair to length n.
func (s *Scratch) resize2(n int) {
	if cap(s.k2) < n {
		s.k2 = make([]float64, n)
		s.v2 = make([]float64, n)
	}
	s.k2, s.v2 = s.k2[:n], s.v2[:n]
}

// New returns an empty GP with the given kernel and observation-noise
// variance; noise ≤ 0 selects DefaultNoise.
func New(k kernel.Kernel, noise float64) *GP {
	if noise <= 0 {
		noise = DefaultNoise
	}
	return &GP{kern: k, noise: noise}
}

// Kernel returns the GP's kernel (shared, not a copy).
func (g *GP) Kernel() kernel.Kernel { return g.kern }

// Noise returns the observation-noise variance.
func (g *GP) Noise() float64 { return g.noise }

// Len returns the number of training points.
func (g *GP) Len() int { return len(g.xs) }

// X returns training input i (not a copy).
func (g *GP) X(i int) []float64 { return g.xs[i] }

// Y returns training output i.
func (g *GP) Y(i int) float64 { return g.ys[i] }

// Inputs returns the slice of training inputs (shared storage).
func (g *GP) Inputs() [][]float64 { return g.xs }

// Outputs returns the slice of training outputs (shared storage).
func (g *GP) Outputs() []float64 { return g.ys }

// Alpha returns the weight vector α = (K + σ_n²I)⁻¹ y (shared storage).
// Alpha[i] is the weight of training point i in every posterior mean, which
// local inference (§5.1) uses to bound the error of dropping far points.
func (g *GP) Alpha() []float64 { return g.alpha }

// refreshAlpha recomputes α = (K + σ_n²I)⁻¹ y into the retained buffer,
// growing it with doubling so per-Add refreshes stay amortized
// allocation-free.
func (g *GP) refreshAlpha() {
	n := len(g.ys)
	if cap(g.alpha) < n {
		g.alpha = make([]float64, n, max(2*cap(g.alpha), n))
	}
	g.alpha = g.alpha[:n]
	g.chol.SolveVecTo(g.alpha, g.ys)
}

// Add appends one training pair and updates the factorization incrementally
// in O(n²) (paper §5.2). The input slice is copied. Together with the
// capacity-doubling packed factor, steady-state Add performs no allocation
// beyond the copied point itself.
func (g *GP) Add(x []float64, y float64) error {
	if len(g.xs) > 0 && len(x) != len(g.xs[0]) {
		return fmt.Errorf("gp: point dim %d ≠ %d", len(x), len(g.xs[0]))
	}
	if cap(g.addK) < len(g.xs) {
		g.addK = make([]float64, len(g.xs), 2*len(g.xs)+1)
	}
	k := g.addK[:len(g.xs)]
	for i, xi := range g.xs {
		k[i] = g.kern.Eval(xi, x)
	}
	kappa := g.kern.Eval(x, x) + g.noise
	if err := g.chol.Extend(k, kappa); err != nil {
		return fmt.Errorf("%w: %v", ErrDuplicatePoint, err)
	}
	cp := make([]float64, len(x))
	copy(cp, x)
	g.xs = append(g.xs, cp)
	g.ys = append(g.ys, y)
	g.refreshAlpha()
	return nil
}

// AddBatch adds several training pairs, refitting once at the end, which is
// cheaper than repeated Add for large batches.
func (g *GP) AddBatch(xs [][]float64, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("gp: batch lengths %d ≠ %d", len(xs), len(ys))
	}
	for i, x := range xs {
		if len(g.xs) > 0 && len(x) != len(g.xs[0]) {
			return fmt.Errorf("gp: point dim %d ≠ %d", len(x), len(g.xs[0]))
		}
		cp := make([]float64, len(x))
		copy(cp, x)
		g.xs = append(g.xs, cp)
		g.ys = append(g.ys, ys[i])
	}
	return g.Fit()
}

// Fit refactorizes the Gram matrix from scratch in O(n³). Call it after
// changing hyperparameters; Add keeps the factorization current otherwise.
func (g *GP) Fit() error {
	if len(g.xs) == 0 {
		g.chol = mat.Cholesky{}
		g.alpha = nil
		return nil
	}
	g.gram = kernel.GramInto(g.gram, g.kern, g.xs)
	for i := 0; i < len(g.xs); i++ {
		g.gram.Add(i, i, g.noise)
	}
	if _, err := g.chol.FactorizeJittered(g.gram, g.noise*10, 8); err != nil {
		return fmt.Errorf("gp: fit: %w", err)
	}
	g.refreshAlpha()
	return nil
}

// Predict returns the posterior mean and variance at x (Eq. 2).
// With no training data it returns the prior (0, k(x,x)).
// This convenience form allocates; the hot path uses PredictWith.
func (g *GP) Predict(x []float64) (mean, variance float64) {
	var s Scratch
	return g.PredictWith(&s, x)
}

// PredictWith is Predict with caller-provided scratch: zero heap allocations
// once s has grown to the model size.
func (g *GP) PredictWith(s *Scratch, x []float64) (mean, variance float64) {
	prior := g.kern.Eval(x, x)
	if len(g.xs) == 0 {
		return 0, prior
	}
	s.resize(len(g.xs))
	kernel.CrossVec(g.kern, g.xs, x, s.k)
	mean = mat.Dot(s.k, g.alpha)
	g.chol.ForwardSolveTo(s.v, s.k)
	variance = prior - mat.Dot(s.v, s.v)
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// PosteriorCov returns the posterior covariance between test points x and y.
// This convenience form allocates; the hot path uses PosteriorCovWith.
func (g *GP) PosteriorCov(x, y []float64) float64 {
	var s Scratch
	return g.PosteriorCovWith(&s, x, y)
}

// PosteriorCovWith returns the posterior covariance between test points x
// and y under the current model,
//
//	cov(x, y) = k(x, y) − k(x, X*)ᵀ (K + σ_n²I)⁻¹ k(y, X*)
//	          = k(x, y) − (L⁻¹k_x)·(L⁻¹k_y),
//
// via two forward solves — O(n²), zero heap allocations once s has grown.
// It is the quantity behind the rank-1 greedy-tuning fast path (§5.2): adding
// a hypothetical training point at x_c with predictive variance s_c (plus
// noise) shrinks every other predictive variance by exactly cov(x_c, x_j)²/s_c
// and, when the hypothetical observation differs from the posterior mean m̂_c
// by Δ, shifts every posterior mean by Δ·cov(x_c, x_j)/s_c — so one
// posterior-covariance pass replaces a full re-factorize-and-re-predict.
func (g *GP) PosteriorCovWith(s *Scratch, x, y []float64) float64 {
	prior := g.kern.Eval(x, y)
	if len(g.xs) == 0 {
		return prior
	}
	n := len(g.xs)
	s.resize(n)
	s.resize2(n)
	kernel.CrossVec(g.kern, g.xs, x, s.k)
	g.chol.ForwardSolveTo(s.v, s.k)
	kernel.CrossVec(g.kern, g.xs, y, s.k2)
	g.chol.ForwardSolveTo(s.v2, s.k2)
	return prior - mat.Dot(s.v, s.v2)
}

// PredictMean returns only the posterior mean at x, in O(n).
func (g *GP) PredictMean(x []float64) float64 {
	if len(g.xs) == 0 {
		return 0
	}
	var s float64
	for i, xi := range g.xs {
		s += g.kern.Eval(xi, x) * g.alpha[i]
	}
	return s
}

// PredictBatch fills means[i], vars[i] for each test point. Slices may be
// nil; they are allocated as needed and returned. Internal buffers are
// reused across the batch, so the cost is two small allocations per call
// regardless of batch size; PredictBatchWith eliminates those too.
func (g *GP) PredictBatch(xs [][]float64, means, vars []float64) ([]float64, []float64) {
	var s Scratch
	return g.PredictBatchWith(&s, xs, means, vars)
}

// PredictBatchWith is PredictBatch with caller-provided scratch: with means
// and vars of sufficient capacity it performs zero heap allocations in the
// steady state.
func (g *GP) PredictBatchWith(s *Scratch, xs [][]float64, means, vars []float64) ([]float64, []float64) {
	if cap(means) < len(xs) {
		means = make([]float64, len(xs))
	}
	if cap(vars) < len(xs) {
		vars = make([]float64, len(xs))
	}
	means, vars = means[:len(xs)], vars[:len(xs)]
	for i, x := range xs {
		means[i], vars[i] = g.PredictWith(s, x)
	}
	return means, vars
}

// LogLikelihood returns the log marginal likelihood
// L(θ) = −½ yᵀα − ½ log|K+σ_n²I| − (n/2) log 2π (§3.4).
func (g *GP) LogLikelihood() float64 {
	n := len(g.xs)
	if n == 0 {
		return 0
	}
	return -0.5*mat.Dot(g.ys, g.alpha) - 0.5*g.chol.LogDet() - 0.5*float64(n)*math.Log(2*math.Pi)
}

// ghScratch holds the reusable state of gradHess. Peak live memory is two
// n×n matrices (K⁻¹ and one per-parameter work matrix, reused across
// parameters) plus O(n + p) vectors — independent of the number of
// hyperparameters p, where the previous implementation kept p derivative
// matrices (and p more for the Hessian) live at once.
type ghScratch struct {
	kinv *mat.Matrix // K⁻¹ (streamed against per-pair derivatives)
	w    *mat.Matrix // Kⱼ for the current j, overwritten by S = L⁻¹KⱼL⁻ᵀ
	gbuf []float64   // per-pair ∂k/∂θ
	hbuf []float64   // per-pair ∂²k/∂θ²
	u    []float64   // Kⱼα for the current j
	sv   []float64   // solve scratch
	hq   []float64   // αᵀKⱼⱼα accumulators
	ht   []float64   // tr(K⁻¹Kⱼⱼ) accumulators
	gq   []float64   // αᵀKⱼα accumulators (gradient-only path)
	gt   []float64   // tr(K⁻¹Kⱼ) accumulators (gradient-only path)
}

func (s *ghScratch) resize(n, p int, wantHess bool) {
	if s.kinv == nil {
		s.kinv = mat.New(n, n)
	} else {
		s.kinv.Reset(n, n)
	}
	if cap(s.gbuf) < p {
		s.gbuf = make([]float64, p)
		s.hbuf = make([]float64, p)
		s.gq = make([]float64, p)
		s.gt = make([]float64, p)
		s.hq = make([]float64, p)
		s.ht = make([]float64, p)
	}
	s.gbuf, s.hbuf = s.gbuf[:p], s.hbuf[:p]
	s.gq, s.gt = s.gq[:p], s.gt[:p]
	s.hq, s.ht = s.hq[:p], s.ht[:p]
	for j := 0; j < p; j++ {
		s.gq[j], s.gt[j], s.hq[j], s.ht[j] = 0, 0, 0, 0
	}
	if wantHess {
		if s.w == nil {
			s.w = mat.New(n, n)
		} else {
			s.w.Reset(n, n)
		}
		if cap(s.u) < n {
			s.u = make([]float64, n)
			s.sv = make([]float64, n)
		}
		s.u, s.sv = s.u[:n], s.sv[:n]
	}
}

// gradHess computes the gradient of the log marginal likelihood with respect
// to the kernel's log-hyperparameters and, when wantHess is true, the
// diagonal of its Hessian:
//
//	∂L/∂θⱼ  = ½ αᵀKⱼα − ½ tr(K⁻¹Kⱼ)
//	∂²L/∂θⱼ² = −αᵀKⱼK⁻¹Kⱼα + ½ αᵀKⱼⱼα + ½ tr(K⁻¹KⱼK⁻¹Kⱼ) − ½ tr(K⁻¹Kⱼⱼ)
//
// with Kⱼ = ∂K/∂θⱼ and Kⱼⱼ = ∂²K/∂θⱼ² (the second-derivative machinery of
// §5.3). Cost is O(p·n³) time and — unlike the former implementation, which
// materialized p (or 2p) full derivative matrices — O(n²) live memory
// regardless of p: per-pair ParamGrad values are streamed into running
// quadratic-form and trace accumulators against K⁻¹, and the Hessian's
// quartic trace is computed one parameter at a time in a single reused work
// matrix via tr(K⁻¹KⱼK⁻¹Kⱼ) = ‖L⁻¹KⱼL⁻ᵀ‖²_F.
func (g *GP) gradHess(wantHess bool) (grad, hess []float64) {
	n := len(g.xs)
	p := g.kern.NumParams()
	grad = make([]float64, p)
	if wantHess {
		hess = make([]float64, p)
	}
	if n == 0 {
		return grad, hess
	}
	s := &g.gh
	s.resize(n, p, wantHess)
	g.chol.InverseTo(s.kinv)

	if !wantHess {
		// Single streaming sweep: both gradient terms are sums of per-pair
		// products, so no derivative matrix is ever materialized.
		for i := 0; i < n; i++ {
			kinvRow := s.kinv.Row(i)
			for l := 0; l <= i; l++ {
				g.kern.ParamGrad(g.xs[i], g.xs[l], s.gbuf, nil)
				w := 2.0
				if i == l {
					w = 1
				}
				aa := w * g.alpha[i] * g.alpha[l]
				kk := w * kinvRow[l]
				for j := 0; j < p; j++ {
					s.gq[j] += aa * s.gbuf[j]
					s.gt[j] += kk * s.gbuf[j]
				}
			}
		}
		for j := 0; j < p; j++ {
			grad[j] = 0.5*s.gq[j] - 0.5*s.gt[j]
		}
		return grad, hess
	}

	for j := 0; j < p; j++ {
		// Sweep the pairs, materializing only Kⱼ for this parameter; the
		// second-derivative terms (which need no matrix at all) are streamed
		// for every parameter during the first sweep.
		for i := 0; i < n; i++ {
			wrow := s.w.Row(i)
			kinvRow := s.kinv.Row(i)
			for l := 0; l <= i; l++ {
				if j == 0 {
					g.kern.ParamGrad(g.xs[i], g.xs[l], s.gbuf, s.hbuf)
					w := 2.0
					if i == l {
						w = 1
					}
					aa := w * g.alpha[i] * g.alpha[l]
					kk := w * kinvRow[l]
					for q := 0; q < p; q++ {
						s.hq[q] += aa * s.hbuf[q]
						s.ht[q] += kk * s.hbuf[q]
					}
				} else {
					g.kern.ParamGrad(g.xs[i], g.xs[l], s.gbuf, nil)
				}
				wrow[l] = s.gbuf[j]
				s.w.Set(l, i, s.gbuf[j])
			}
		}
		// u = Kⱼα; quadratic forms for gradient and Hessian term 1.
		for i := 0; i < n; i++ {
			s.u[i] = mat.Dot(s.w.Row(i), g.alpha)
		}
		quad := mat.Dot(g.alpha, s.u)
		g.chol.SolveVecTo(s.sv, s.u)
		term1 := -mat.Dot(s.u, s.sv)
		// S = L⁻¹KⱼL⁻ᵀ in place: first each row r (= column r, Kⱼ is
		// symmetric) is forward-solved independently, leaving (L⁻¹Kⱼ)ᵀ; then
		// one blocked forward substitution applies the remaining L⁻¹. Both
		// passes walk rows contiguously.
		for r := 0; r < n; r++ {
			row := s.w.Row(r)
			g.chol.ForwardSolveTo(row, row)
		}
		for r := 0; r < n; r++ {
			row := s.w.Row(r)
			lrow := g.chol.LRow(r)
			for q := 0; q < r; q++ {
				mat.Axpy(-lrow[q], s.w.Row(q), row)
			}
			mat.ScaleVec(1/lrow[r], row)
		}
		var trS, t4 float64
		for r := 0; r < n; r++ {
			row := s.w.Row(r)
			trS += row[r]
			for _, v := range row {
				t4 += v * v
			}
		}
		grad[j] = 0.5*quad - 0.5*trS
		hess[j] = term1 + 0.5*s.hq[j] + 0.5*t4 - 0.5*s.ht[j]
	}
	return grad, hess
}

// Grad returns ∂L/∂θ for the current hyperparameters.
func (g *GP) Grad() []float64 {
	grad, _ := g.gradHess(false)
	return grad
}

// GradHess returns the gradient and diagonal Hessian of the log marginal
// likelihood.
func (g *GP) GradHess() (grad, hess []float64) {
	return g.gradHess(true)
}

// SamplePosterior draws one joint sample of the posterior function values at
// the given points (used to visualize posteriors like Fig. 1(b) and to
// validate confidence-band coverage). dst may be nil.
func (g *GP) SamplePosterior(rng *rand.Rand, points [][]float64, dst []float64) ([]float64, error) {
	m := len(points)
	if cap(dst) < m {
		dst = make([]float64, m)
	}
	dst = dst[:m]
	// Posterior mean and covariance at the points.
	mean := make([]float64, m)
	cov := mat.New(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			v := g.kern.Eval(points[i], points[j])
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	if len(g.xs) > 0 {
		cross := kernel.Cross(g.kern, g.xs, points) // n×m
		for j := 0; j < m; j++ {
			col := cross.Col(j)
			mean[j] = mat.Dot(col, g.alpha)
		}
		// Σ −= crossᵀ K⁻¹ cross, via forward solves.
		half := make([][]float64, m)
		for j := 0; j < m; j++ {
			half[j] = g.chol.ForwardSolve(cross.Col(j))
		}
		for i := 0; i < m; i++ {
			for j := 0; j <= i; j++ {
				v := cov.At(i, j) - mat.Dot(half[i], half[j])
				cov.Set(i, j, v)
				cov.Set(j, i, v)
			}
		}
	}
	var c mat.Cholesky
	if _, err := c.FactorizeJittered(cov, 1e-10, 10); err != nil {
		return nil, fmt.Errorf("gp: posterior covariance: %w", err)
	}
	z := make([]float64, m)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	for i := 0; i < m; i++ {
		row := c.LRow(i)
		s := mean[i]
		for j := 0; j <= i; j++ {
			s += row[j] * z[j]
		}
		dst[i] = s
	}
	return dst, nil
}
