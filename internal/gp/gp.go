// Package gp implements Gaussian process regression, the statistical
// emulator the paper builds for black-box UDFs (§3).
//
// A GP is maintained as a set of training pairs (x*, f(x*)), a Cholesky
// factorization of the kernel Gram matrix K(X*, X*) + σ_n² I, and the weight
// vector α = (K + σ_n² I)⁻¹ y. Inference for a test point (Eq. 2) is then
//
//	mean     f̂(x) = k(x, X*) · α                         — O(n)
//	variance σ²(x) = k(x,x) − ‖L⁻¹ k(x, X*)‖²             — O(n²)
//
// Training points can be added incrementally in O(n²) via the bordered
// Cholesky update, which is what makes the paper's online tuning (§5.2)
// affordable, and hyperparameters are learned by maximum likelihood with
// analytic gradients (§3.4). The first-Newton-step estimate driving the
// online retraining heuristic (§5.3) is exposed as NewtonStep.
package gp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"olgapro/internal/kernel"
	"olgapro/internal/mat"
)

// DefaultNoise is the default observation-noise variance. The paper's UDFs
// are deterministic, so this acts purely as numerical jitter keeping the
// Gram matrix positive definite.
const DefaultNoise = 1e-8

// ErrDuplicatePoint is returned by Add when a new training point is so close
// to an existing one that the Gram matrix would become singular.
var ErrDuplicatePoint = errors.New("gp: training point (numerically) duplicates an existing one")

// GP is a Gaussian process regression model. Create one with New.
type GP struct {
	kern  kernel.Kernel
	noise float64

	xs    [][]float64
	ys    []float64
	chol  mat.Cholesky
	alpha []float64
}

// New returns an empty GP with the given kernel and observation-noise
// variance; noise ≤ 0 selects DefaultNoise.
func New(k kernel.Kernel, noise float64) *GP {
	if noise <= 0 {
		noise = DefaultNoise
	}
	return &GP{kern: k, noise: noise}
}

// Kernel returns the GP's kernel (shared, not a copy).
func (g *GP) Kernel() kernel.Kernel { return g.kern }

// Noise returns the observation-noise variance.
func (g *GP) Noise() float64 { return g.noise }

// Len returns the number of training points.
func (g *GP) Len() int { return len(g.xs) }

// X returns training input i (not a copy).
func (g *GP) X(i int) []float64 { return g.xs[i] }

// Y returns training output i.
func (g *GP) Y(i int) float64 { return g.ys[i] }

// Inputs returns the slice of training inputs (shared storage).
func (g *GP) Inputs() [][]float64 { return g.xs }

// Outputs returns the slice of training outputs (shared storage).
func (g *GP) Outputs() []float64 { return g.ys }

// Alpha returns the weight vector α = (K + σ_n²I)⁻¹ y (shared storage).
// Alpha[i] is the weight of training point i in every posterior mean, which
// local inference (§5.1) uses to bound the error of dropping far points.
func (g *GP) Alpha() []float64 { return g.alpha }

// Add appends one training pair and updates the factorization incrementally
// in O(n²) (paper §5.2). The input slice is copied.
func (g *GP) Add(x []float64, y float64) error {
	if len(g.xs) > 0 && len(x) != len(g.xs[0]) {
		return fmt.Errorf("gp: point dim %d ≠ %d", len(x), len(g.xs[0]))
	}
	k := make([]float64, len(g.xs))
	for i, xi := range g.xs {
		k[i] = g.kern.Eval(xi, x)
	}
	kappa := g.kern.Eval(x, x) + g.noise
	if err := g.chol.Extend(k, kappa); err != nil {
		return fmt.Errorf("%w: %v", ErrDuplicatePoint, err)
	}
	cp := make([]float64, len(x))
	copy(cp, x)
	g.xs = append(g.xs, cp)
	g.ys = append(g.ys, y)
	g.alpha = g.chol.SolveVec(g.ys)
	return nil
}

// AddBatch adds several training pairs, refitting once at the end, which is
// cheaper than repeated Add for large batches.
func (g *GP) AddBatch(xs [][]float64, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("gp: batch lengths %d ≠ %d", len(xs), len(ys))
	}
	for i, x := range xs {
		if len(g.xs) > 0 && len(x) != len(g.xs[0]) {
			return fmt.Errorf("gp: point dim %d ≠ %d", len(x), len(g.xs[0]))
		}
		cp := make([]float64, len(x))
		copy(cp, x)
		g.xs = append(g.xs, cp)
		g.ys = append(g.ys, ys[i])
	}
	return g.Fit()
}

// Fit refactorizes the Gram matrix from scratch in O(n³). Call it after
// changing hyperparameters; Add keeps the factorization current otherwise.
func (g *GP) Fit() error {
	if len(g.xs) == 0 {
		g.chol = mat.Cholesky{}
		g.alpha = nil
		return nil
	}
	gram := kernel.Gram(g.kern, g.xs)
	for i := 0; i < len(g.xs); i++ {
		gram.Add(i, i, g.noise)
	}
	if _, err := g.chol.FactorizeJittered(gram, g.noise*10, 8); err != nil {
		return fmt.Errorf("gp: fit: %w", err)
	}
	g.alpha = g.chol.SolveVec(g.ys)
	return nil
}

// Predict returns the posterior mean and variance at x (Eq. 2).
// With no training data it returns the prior (0, k(x,x)).
func (g *GP) Predict(x []float64) (mean, variance float64) {
	prior := g.kern.Eval(x, x)
	if len(g.xs) == 0 {
		return 0, prior
	}
	k := kernel.CrossVec(g.kern, g.xs, x, nil)
	mean = mat.Dot(k, g.alpha)
	v := g.chol.ForwardSolve(k)
	variance = prior - mat.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// PredictMean returns only the posterior mean at x, in O(n).
func (g *GP) PredictMean(x []float64) float64 {
	if len(g.xs) == 0 {
		return 0
	}
	var s float64
	for i, xi := range g.xs {
		s += g.kern.Eval(xi, x) * g.alpha[i]
	}
	return s
}

// PredictBatch fills means[i], vars[i] for each test point. Slices may be
// nil; they are allocated as needed and returned.
func (g *GP) PredictBatch(xs [][]float64, means, vars []float64) ([]float64, []float64) {
	if cap(means) < len(xs) {
		means = make([]float64, len(xs))
	}
	if cap(vars) < len(xs) {
		vars = make([]float64, len(xs))
	}
	means, vars = means[:len(xs)], vars[:len(xs)]
	var k []float64
	for i, x := range xs {
		if len(g.xs) == 0 {
			means[i], vars[i] = 0, g.kern.Eval(x, x)
			continue
		}
		k = kernel.CrossVec(g.kern, g.xs, x, k)
		means[i] = mat.Dot(k, g.alpha)
		v := g.chol.ForwardSolve(k)
		variance := g.kern.Eval(x, x) - mat.Dot(v, v)
		if variance < 0 {
			variance = 0
		}
		vars[i] = variance
	}
	return means, vars
}

// LogLikelihood returns the log marginal likelihood
// L(θ) = −½ yᵀα − ½ log|K+σ_n²I| − (n/2) log 2π (§3.4).
func (g *GP) LogLikelihood() float64 {
	n := len(g.xs)
	if n == 0 {
		return 0
	}
	return -0.5*mat.Dot(g.ys, g.alpha) - 0.5*g.chol.LogDet() - 0.5*float64(n)*math.Log(2*math.Pi)
}

// gradHess computes the gradient of the log marginal likelihood with respect
// to the kernel's log-hyperparameters and, when wantHess is true, the
// diagonal of its Hessian:
//
//	∂L/∂θⱼ  = ½ αᵀKⱼα − ½ tr(K⁻¹Kⱼ)
//	∂²L/∂θⱼ² = −αᵀKⱼK⁻¹Kⱼα + ½ αᵀKⱼⱼα + ½ tr(K⁻¹KⱼK⁻¹Kⱼ) − ½ tr(K⁻¹Kⱼⱼ)
//
// with Kⱼ = ∂K/∂θⱼ and Kⱼⱼ = ∂²K/∂θⱼ² (the second-derivative machinery of
// §5.3). Cost is O(p·n³).
func (g *GP) gradHess(wantHess bool) (grad, hess []float64) {
	n := len(g.xs)
	p := g.kern.NumParams()
	grad = make([]float64, p)
	if wantHess {
		hess = make([]float64, p)
	}
	if n == 0 {
		return grad, hess
	}
	kinv := g.chol.Inverse()
	// Per-parameter derivative Gram matrices.
	kj := make([]*mat.Matrix, p)
	kjj := make([]*mat.Matrix, p)
	for j := 0; j < p; j++ {
		kj[j] = mat.New(n, n)
		if wantHess {
			kjj[j] = mat.New(n, n)
		}
	}
	gbuf := make([]float64, p)
	hbuf := make([]float64, p)
	for i := 0; i < n; i++ {
		for l := 0; l <= i; l++ {
			if wantHess {
				g.kern.ParamGrad(g.xs[i], g.xs[l], gbuf, hbuf)
			} else {
				g.kern.ParamGrad(g.xs[i], g.xs[l], gbuf, nil)
			}
			for j := 0; j < p; j++ {
				kj[j].Set(i, l, gbuf[j])
				kj[j].Set(l, i, gbuf[j])
				if wantHess {
					kjj[j].Set(i, l, hbuf[j])
					kjj[j].Set(l, i, hbuf[j])
				}
			}
		}
	}
	for j := 0; j < p; j++ {
		kja := kj[j].MulVec(g.alpha)
		quad := mat.Dot(g.alpha, kja)
		trKinvKj := traceProduct(kinv, kj[j])
		grad[j] = 0.5*quad - 0.5*trKinvKj
		if wantHess {
			kinvKja := g.chol.SolveVec(kja)
			kjjA := kjj[j].MulVec(g.alpha)
			trKK := traceProductSym(kinv, kj[j])
			trKinvKjj := traceProduct(kinv, kjj[j])
			hess[j] = -mat.Dot(kja, kinvKja) + 0.5*mat.Dot(g.alpha, kjjA) +
				0.5*trKK - 0.5*trKinvKjj
		}
	}
	return grad, hess
}

// Grad returns ∂L/∂θ for the current hyperparameters.
func (g *GP) Grad() []float64 {
	grad, _ := g.gradHess(false)
	return grad
}

// GradHess returns the gradient and diagonal Hessian of the log marginal
// likelihood.
func (g *GP) GradHess() (grad, hess []float64) {
	return g.gradHess(true)
}

// traceProduct returns tr(A·B) for square matrices.
func traceProduct(a, b *mat.Matrix) float64 {
	n := a.Rows()
	var s float64
	for i := 0; i < n; i++ {
		arow := a.Row(i)
		for k := 0; k < n; k++ {
			s += arow[k] * b.At(k, i)
		}
	}
	return s
}

// traceProductSym returns tr(A·B·A·B) for symmetric A, B, computed as
// tr(M·M) with M = A·B.
func traceProductSym(a, b *mat.Matrix) float64 {
	m := mat.Mul(a, b)
	n := m.Rows()
	var s float64
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for k := 0; k < n; k++ {
			s += row[k] * m.At(k, i)
		}
	}
	return s
}

// SamplePosterior draws one joint sample of the posterior function values at
// the given points (used to visualize posteriors like Fig. 1(b) and to
// validate confidence-band coverage). dst may be nil.
func (g *GP) SamplePosterior(rng *rand.Rand, points [][]float64, dst []float64) ([]float64, error) {
	m := len(points)
	if cap(dst) < m {
		dst = make([]float64, m)
	}
	dst = dst[:m]
	// Posterior mean and covariance at the points.
	mean := make([]float64, m)
	cov := mat.New(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			v := g.kern.Eval(points[i], points[j])
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	if len(g.xs) > 0 {
		cross := kernel.Cross(g.kern, g.xs, points) // n×m
		for j := 0; j < m; j++ {
			col := cross.Col(j)
			mean[j] = mat.Dot(col, g.alpha)
		}
		// Σ −= crossᵀ K⁻¹ cross, via forward solves.
		half := make([][]float64, m)
		for j := 0; j < m; j++ {
			half[j] = g.chol.ForwardSolve(cross.Col(j))
		}
		for i := 0; i < m; i++ {
			for j := 0; j <= i; j++ {
				v := cov.At(i, j) - mat.Dot(half[i], half[j])
				cov.Set(i, j, v)
				cov.Set(j, i, v)
			}
		}
	}
	var c mat.Cholesky
	if _, err := c.FactorizeJittered(cov, 1e-10, 10); err != nil {
		return nil, fmt.Errorf("gp: posterior covariance: %w", err)
	}
	z := make([]float64, m)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	l := c.L()
	for i := 0; i < m; i++ {
		row := l.Row(i)
		s := mean[i]
		for j := 0; j <= i; j++ {
			s += row[j] * z[j]
		}
		dst[i] = s
	}
	return dst, nil
}
