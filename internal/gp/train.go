package gp

import (
	"fmt"
	"math"

	"olgapro/internal/mat"
)

// TrainConfig controls maximum-likelihood hyperparameter learning (§3.4).
// The zero value selects sensible defaults via normalize.
type TrainConfig struct {
	// MaxIter bounds the number of gradient-ascent iterations (default 50).
	MaxIter int
	// GradTol stops training when ‖∇L‖ falls below it (default 1e-4).
	GradTol float64
	// InitStep is the initial step size in log-parameter space (default 0.1).
	InitStep float64
	// ParamBound clamps |log θ_j| to keep hyperparameters in a sane range
	// (default 10, i.e. θ within [e⁻¹⁰, e¹⁰]).
	ParamBound float64
}

func (c TrainConfig) normalize() TrainConfig {
	if c.MaxIter <= 0 {
		c.MaxIter = 50
	}
	if c.GradTol <= 0 {
		c.GradTol = 1e-4
	}
	if c.InitStep <= 0 {
		c.InitStep = 0.1
	}
	if c.ParamBound <= 0 {
		c.ParamBound = 10
	}
	return c
}

// TrainResult reports the outcome of a Train call.
type TrainResult struct {
	Iters         int     // gradient steps taken
	InitialLogLik float64 // L(θ) before training
	FinalLogLik   float64 // L(θ) after training
	GradNorm      float64 // ‖∇L‖ at the final parameters
}

// Train learns the kernel hyperparameters by maximizing the log marginal
// likelihood with gradient ascent and a backtracking step size: if a step
// decreases L the step is rejected and halved, otherwise it is accepted and
// modestly grown. The GP is left refit at the final parameters.
func (g *GP) Train(cfg TrainConfig) (TrainResult, error) {
	cfg = cfg.normalize()
	res := TrainResult{}
	if len(g.xs) < 2 {
		// Nothing to learn from fewer than two points.
		res.InitialLogLik = g.LogLikelihood()
		res.FinalLogLik = res.InitialLogLik
		return res, nil
	}
	cur := g.LogLikelihood()
	res.InitialLogLik = cur
	params := g.kern.Params(nil)
	step := cfg.InitStep
	var grad []float64
	for iter := 0; iter < cfg.MaxIter; iter++ {
		grad = g.Grad()
		gn := mat.Norm2(grad)
		res.GradNorm = gn
		if gn < cfg.GradTol {
			break
		}
		// Normalized ascent direction, scaled by step.
		accepted := false
		for attempt := 0; attempt < 12; attempt++ {
			trial := make([]float64, len(params))
			for j := range trial {
				trial[j] = clamp(params[j]+step*grad[j]/gn, cfg.ParamBound)
			}
			g.kern.SetParams(trial)
			if err := g.Fit(); err != nil {
				// Numerically infeasible parameters: shrink and retry.
				step /= 2
				continue
			}
			if l := g.LogLikelihood(); l > cur {
				cur = l
				params = trial
				step *= 1.2
				accepted = true
				break
			}
			step /= 2
		}
		if !accepted {
			// Restore the best parameters and stop.
			g.kern.SetParams(params)
			if err := g.Fit(); err != nil {
				return res, fmt.Errorf("gp: train restore: %w", err)
			}
			break
		}
		res.Iters++
	}
	// Ensure the model is fit at the final parameters.
	g.kern.SetParams(params)
	if err := g.Fit(); err != nil {
		return res, fmt.Errorf("gp: train final fit: %w", err)
	}
	res.FinalLogLik = g.LogLikelihood()
	return res, nil
}

func clamp(v, bound float64) float64 {
	if v > bound {
		return bound
	}
	if v < -bound {
		return -bound
	}
	return v
}

// NewtonStep returns ‖θ′ − θ‖ for one Newton step on the log marginal
// likelihood using the diagonal Hessian (§5.3):
//
//	θ′_j = θ_j − L′(θ_j)/L″(θ_j)
//
// This is the δθ that OLGAPRO's retraining heuristic compares against the
// threshold Δθ: a large first step means the optimizer would move far, so
// retraining is worthwhile. Where the Hessian is not negative (locally
// non-concave), the gradient magnitude is used as a conservative proxy.
func (g *GP) NewtonStep() float64 {
	if len(g.xs) < 2 {
		return 0
	}
	grad, hess := g.GradHess()
	var sum float64
	for j := range grad {
		var dj float64
		if hess[j] < -1e-12 {
			dj = -grad[j] / hess[j]
		} else {
			dj = grad[j]
		}
		sum += dj * dj
	}
	return math.Sqrt(sum)
}
