package gp

import (
	"math/rand"
	"testing"

	"olgapro/internal/kernel"
)

// buildGP returns an n-point model over [0,10]² for the allocation and
// benchmark suites.
func buildGP(tb testing.TB, n int) *GP {
	tb.Helper()
	rng := rand.New(rand.NewSource(31))
	g := New(kernel.NewSqExp(1, 1.5), 1e-6)
	for g.Len() < n {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		if err := g.Add(x, x[0]*x[0]+0.5*x[1]); err != nil {
			continue
		}
	}
	return g
}

// The scratch-based predict path is the per-sample hot loop of the whole
// system: it must not allocate at all in the steady state.
func TestPredictWithZeroAllocs(t *testing.T) {
	g := buildGP(t, 64)
	x := []float64{4.2, 5.7}
	var s Scratch
	g.PredictWith(&s, x) // warm the scratch
	if allocs := testing.AllocsPerRun(100, func() {
		g.PredictWith(&s, x)
	}); allocs != 0 {
		t.Fatalf("PredictWith allocates %.1f per run, want 0", allocs)
	}
}

// PredictBatch with caller-provided buffers (scratch + output slices) must
// be allocation-free across the whole batch.
func TestPredictBatchWithZeroAllocs(t *testing.T) {
	g := buildGP(t, 64)
	rng := rand.New(rand.NewSource(32))
	xs := make([][]float64, 200)
	for i := range xs {
		xs[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	means := make([]float64, len(xs))
	vars := make([]float64, len(xs))
	var s Scratch
	g.PredictBatchWith(&s, xs, means, vars) // warm the scratch
	if allocs := testing.AllocsPerRun(20, func() {
		g.PredictBatchWith(&s, xs, means, vars)
	}); allocs != 0 {
		t.Fatalf("PredictBatchWith allocates %.1f per run, want 0", allocs)
	}
}

// The scratch variants must agree exactly with the allocating forms.
func TestPredictWithMatchesPredict(t *testing.T) {
	g := buildGP(t, 48)
	rng := rand.New(rand.NewSource(33))
	var s Scratch
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		wm, wv := g.Predict(x)
		gm, gv := g.PredictWith(&s, x)
		if wm != gm || wv != gv {
			t.Fatalf("PredictWith(%v) = (%g,%g), Predict = (%g,%g)", x, gm, gv, wm, wv)
		}
	}
}

// Concurrent prediction with per-goroutine scratch must match sequential
// results (read-only model, caller-owned buffers).
func TestPredictWithConcurrent(t *testing.T) {
	g := buildGP(t, 48)
	rng := rand.New(rand.NewSource(34))
	xs := make([][]float64, 64)
	want := make([]float64, len(xs))
	for i := range xs {
		xs[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		want[i], _ = g.Predict(xs[i])
	}
	const workers = 4
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			var s Scratch
			for i := w; i < len(xs); i += workers {
				if m, _ := g.PredictWith(&s, xs[i]); m != want[i] {
					done <- errAt(i)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errAt int

func (e errAt) Error() string { return "concurrent predict mismatch" }

// BenchmarkGradHess tracks the §5.3 Newton-step machinery; run with
// -benchmem to verify the O(n²)-regardless-of-p memory contract (the
// steady-state allocations are only the two returned p-length slices).
func BenchmarkGradHess(b *testing.B) {
	g := buildGP(b, 300)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.GradHess()
	}
}

// BenchmarkGrad tracks the gradient-only path used every Train iteration.
func BenchmarkGrad(b *testing.B) {
	g := buildGP(b, 300)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Grad()
	}
}

// BenchmarkPredictBatchWith tracks the steady-state inference loop.
func BenchmarkPredictBatchWith(b *testing.B) {
	g := buildGP(b, 400)
	rng := rand.New(rand.NewSource(35))
	xs := make([][]float64, 1000)
	for i := range xs {
		xs[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	means := make([]float64, len(xs))
	vars := make([]float64, len(xs))
	var s Scratch
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.PredictBatchWith(&s, xs, means, vars)
	}
}
