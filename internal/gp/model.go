package gp

import "olgapro/internal/kernel"

// Model is the emulator surface core.Evaluator drives: the exact GP and the
// budgeted Sparse approximation are interchangeable behind it. Mutating
// methods (Add, Train) must not be called concurrently; PredictWith with a
// caller-owned Scratch is safe from multiple goroutines on a frozen model.
type Model interface {
	// Kernel returns the model's kernel (shared, not a copy).
	Kernel() kernel.Kernel
	// Noise returns the observation-noise variance.
	Noise() float64
	// Len returns the number of absorbed training points.
	Len() int
	// X returns training input i (not a copy); Y its observed output.
	X(i int) []float64
	Y(i int) float64
	// Add absorbs one training pair; the input slice is copied.
	Add(x []float64, y float64) error
	// PredictWith returns the posterior mean and variance at x using
	// caller-provided scratch, allocation-free in the steady state.
	PredictWith(s *Scratch, x []float64) (mean, variance float64)
	// NewtonStep returns the §5.3 retraining heuristic: the norm of one
	// diagonal-Newton step on the log marginal likelihood.
	NewtonStep() float64
	// Train learns kernel hyperparameters by maximum likelihood and leaves
	// the model refit at the final parameters.
	Train(cfg TrainConfig) (TrainResult, error)
}

var (
	_ Model = (*GP)(nil)
	_ Model = (*Sparse)(nil)
)
