package gp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"olgapro/internal/kernel"
	"olgapro/internal/mat"
)

func linspace(lo, hi float64, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{lo + (hi-lo)*float64(i)/float64(n-1)}
	}
	return out
}

func TestEmptyGPReturnsPrior(t *testing.T) {
	g := New(kernel.NewSqExp(1.5, 1), 0)
	mean, v := g.Predict([]float64{3})
	if mean != 0 {
		t.Errorf("prior mean = %g, want 0", mean)
	}
	if math.Abs(v-2.25) > 1e-12 {
		t.Errorf("prior variance = %g, want σf² = 2.25", v)
	}
	if g.LogLikelihood() != 0 {
		t.Errorf("empty loglik = %g", g.LogLikelihood())
	}
}

func TestInterpolatesTrainingPoints(t *testing.T) {
	g := New(kernel.NewSqExp(1, 1), 1e-10)
	f := func(x float64) float64 { return math.Sin(x) }
	for _, x := range []float64{0, 1, 2, 3, 4} {
		if err := g.Add([]float64{x}, f(x)); err != nil {
			t.Fatal(err)
		}
	}
	for _, x := range []float64{0, 1, 2, 3, 4} {
		mean, v := g.Predict([]float64{x})
		if math.Abs(mean-f(x)) > 1e-4 {
			t.Errorf("mean(%g) = %g, want %g", x, mean, f(x))
		}
		if v > 1e-6 {
			t.Errorf("variance at training point %g = %g, want ≈0", x, v)
		}
	}
	// Between points the variance must be positive but small; far away large.
	_, vin := g.Predict([]float64{2.5})
	_, vout := g.Predict([]float64{40})
	if vin <= 0 || vin > 0.5 {
		t.Errorf("interior variance = %g", vin)
	}
	if vout < 0.9 {
		t.Errorf("far variance = %g, want ≈ σf² = 1", vout)
	}
}

func TestPredictsSmoothFunction(t *testing.T) {
	g := New(kernel.NewSqExp(1, 1.2), 1e-8)
	f := func(x float64) float64 { return math.Sin(x) + 0.3*x }
	for _, p := range linspace(0, 10, 25) {
		if err := g.Add(p, f(p[0])); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range linspace(0.2, 9.8, 40) {
		mean, _ := g.Predict(p)
		if math.Abs(mean-f(p[0])) > 0.05 {
			t.Errorf("mean(%g) = %g, want %g", p[0], mean, f(p[0]))
		}
	}
}

func TestSinglePointClosedForm(t *testing.T) {
	sf, l, noise := 1.3, 0.9, 1e-6
	g := New(kernel.NewSqExp(sf, l), noise)
	xstar, ystar := []float64{1}, 2.0
	if err := g.Add(xstar, ystar); err != nil {
		t.Fatal(err)
	}
	x := []float64{1.4}
	kxx := sf * sf
	kx := sf * sf * math.Exp(-0.5*0.4*0.4/(l*l))
	wantMean := kx / (kxx + noise) * ystar
	wantVar := kxx - kx*kx/(kxx+noise)
	mean, v := g.Predict(x)
	if math.Abs(mean-wantMean) > 1e-10 {
		t.Errorf("mean = %g, want %g", mean, wantMean)
	}
	if math.Abs(v-wantVar) > 1e-8 {
		t.Errorf("var = %g, want %g", v, wantVar)
	}
}

func TestPredictMeanMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := New(kernel.NewSqExp(1, 1), 1e-8)
	for i := 0; i < 15; i++ {
		if err := g.Add([]float64{rng.Float64() * 10}, rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		x := []float64{rng.Float64() * 10}
		m1, _ := g.Predict(x)
		m2 := g.PredictMean(x)
		if math.Abs(m1-m2) > 1e-10 {
			t.Fatalf("PredictMean %g ≠ Predict %g", m2, m1)
		}
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := New(kernel.NewSqExp(1, 1), 1e-8)
	for i := 0; i < 12; i++ {
		if err := g.Add([]float64{rng.Float64() * 5, rng.Float64() * 5}, rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	tests := make([][]float64, 30)
	for i := range tests {
		tests[i] = []float64{rng.Float64() * 5, rng.Float64() * 5}
	}
	means, vars := g.PredictBatch(tests, nil, nil)
	for i, x := range tests {
		m, v := g.Predict(x)
		if math.Abs(m-means[i]) > 1e-12 || math.Abs(v-vars[i]) > 1e-12 {
			t.Fatalf("batch disagrees at %d", i)
		}
	}
}

func TestAddMatchesBatchFit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([][]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		xs[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		ys[i] = rng.NormFloat64()
	}
	inc := New(kernel.NewSqExp(1, 1.5), 1e-8)
	for i := range xs {
		if err := inc.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	batch := New(kernel.NewSqExp(1, 1.5), 1e-8)
	if err := batch.AddBatch(xs, ys); err != nil {
		t.Fatal(err)
	}
	probe := [][]float64{{1, 1}, {5, 5}, {9, 2}, {0, 10}}
	for _, x := range probe {
		m1, v1 := inc.Predict(x)
		m2, v2 := batch.Predict(x)
		if math.Abs(m1-m2) > 1e-8 || math.Abs(v1-v2) > 1e-8 {
			t.Fatalf("incremental (%g,%g) ≠ batch (%g,%g) at %v", m1, v1, m2, v2, x)
		}
	}
	if math.Abs(inc.LogLikelihood()-batch.LogLikelihood()) > 1e-8 {
		t.Fatalf("loglik mismatch: %g vs %g", inc.LogLikelihood(), batch.LogLikelihood())
	}
}

func TestAddRejectsDuplicates(t *testing.T) {
	// Noise below float64 resolution: an exact duplicate makes the Gram
	// matrix numerically singular, which Add must reject.
	g := New(kernel.NewSqExp(1, 1), 1e-300)
	if err := g.Add([]float64{1}, 2); err != nil {
		t.Fatal(err)
	}
	err := g.Add([]float64{1}, 2)
	if !errors.Is(err, ErrDuplicatePoint) {
		t.Fatalf("duplicate add error = %v, want ErrDuplicatePoint", err)
	}
	// The GP must remain usable after a rejected add.
	if g.Len() != 1 {
		t.Fatalf("Len = %d after rejected add", g.Len())
	}
	if m, _ := g.Predict([]float64{1}); math.Abs(m-2) > 1e-4 {
		t.Fatalf("Predict after rejected add = %g", m)
	}
}

func TestAddDimMismatch(t *testing.T) {
	g := New(kernel.NewSqExp(1, 1), 0)
	if err := g.Add([]float64{1, 2}, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Add([]float64{1}, 0); err == nil {
		t.Fatal("dim mismatch should error")
	}
	if err := g.AddBatch([][]float64{{1}}, []float64{0}); err == nil {
		t.Fatal("batch dim mismatch should error")
	}
	if err := g.AddBatch([][]float64{{1, 2}}, nil); err == nil {
		t.Fatal("batch length mismatch should error")
	}
}

// Gradient of the log marginal likelihood vs. finite differences.
func TestGradFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := New(kernel.NewSqExp(1.2, 0.8), 1e-6)
	for i := 0; i < 12; i++ {
		x := rng.Float64() * 6
		if err := g.Add([]float64{x}, math.Sin(x)); err != nil {
			t.Fatal(err)
		}
	}
	grad := g.Grad()
	base := g.Kernel().Params(nil)
	const h = 1e-5
	for j := range base {
		at := func(delta float64) float64 {
			p := append([]float64(nil), base...)
			p[j] += delta
			g.Kernel().SetParams(p)
			if err := g.Fit(); err != nil {
				t.Fatal(err)
			}
			return g.LogLikelihood()
		}
		fd := (at(h) - at(-h)) / (2 * h)
		if math.Abs(fd-grad[j]) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("grad[%d] = %g, finite diff %g", j, grad[j], fd)
		}
	}
	// Restore.
	g.Kernel().SetParams(base)
	if err := g.Fit(); err != nil {
		t.Fatal(err)
	}
}

// Diagonal Hessian vs. finite differences.
func TestHessFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := New(kernel.NewSqExp(1.1, 1.1), 1e-6)
	for i := 0; i < 10; i++ {
		x := rng.Float64() * 6
		if err := g.Add([]float64{x}, math.Cos(x)); err != nil {
			t.Fatal(err)
		}
	}
	_, hess := g.GradHess()
	base := g.Kernel().Params(nil)
	const h = 1e-4
	for j := range base {
		at := func(delta float64) float64 {
			p := append([]float64(nil), base...)
			p[j] += delta
			g.Kernel().SetParams(p)
			if err := g.Fit(); err != nil {
				t.Fatal(err)
			}
			return g.LogLikelihood()
		}
		fd := (at(h) - 2*at(0) + at(-h)) / (h * h)
		if math.Abs(fd-hess[j]) > 1e-2*(1+math.Abs(fd)) {
			t.Errorf("hess[%d] = %g, finite diff %g", j, hess[j], fd)
		}
	}
	g.Kernel().SetParams(base)
	if err := g.Fit(); err != nil {
		t.Fatal(err)
	}
}

func TestTrainImprovesLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Deliberately mis-specified initial lengthscale.
	g := New(kernel.NewSqExp(0.3, 5), 1e-6)
	for i := 0; i < 20; i++ {
		x := rng.Float64() * 10
		if err := g.Add([]float64{x}, math.Sin(x)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := g.Train(TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLogLik < res.InitialLogLik {
		t.Fatalf("training decreased loglik: %g → %g", res.InitialLogLik, res.FinalLogLik)
	}
	if res.FinalLogLik-res.InitialLogLik < 1 {
		t.Fatalf("training barely improved: %g → %g", res.InitialLogLik, res.FinalLogLik)
	}
	// After training on a sine with unit amplitude, the learned lengthscale
	// should be moderate, not the initial 5.
	se := g.Kernel().(*kernel.SqExp)
	if se.Len > 4 {
		t.Errorf("learned lengthscale %g still at initial scale", se.Len)
	}
}

func TestTrainFewPointsNoop(t *testing.T) {
	g := New(kernel.NewSqExp(1, 1), 0)
	if err := g.Add([]float64{1}, 1); err != nil {
		t.Fatal(err)
	}
	res, err := g.Train(TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 0 {
		t.Fatalf("train on 1 point took %d iters", res.Iters)
	}
}

func TestNewtonStepShrinksNearOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New(kernel.NewSqExp(0.4, 4), 1e-6)
	for i := 0; i < 18; i++ {
		x := rng.Float64() * 10
		if err := g.Add([]float64{x}, math.Sin(x)); err != nil {
			t.Fatal(err)
		}
	}
	before := g.NewtonStep()
	if _, err := g.Train(TrainConfig{MaxIter: 80}); err != nil {
		t.Fatal(err)
	}
	after := g.NewtonStep()
	if after >= before {
		t.Fatalf("Newton step did not shrink after training: %g → %g", before, after)
	}
	if after > 0.5 {
		t.Errorf("Newton step at optimum = %g, want small", after)
	}
}

func TestSamplePosteriorRespectsTrainingData(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := New(kernel.NewSqExp(1, 1), 1e-8)
	f := func(x float64) float64 { return math.Sin(x) }
	for _, x := range []float64{0, 2, 4, 6} {
		if err := g.Add([]float64{x}, f(x)); err != nil {
			t.Fatal(err)
		}
	}
	pts := linspace(0, 6, 13)
	for trial := 0; trial < 5; trial++ {
		s, err := g.SamplePosterior(rng, pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		// At training points, samples must pass (almost) through the data.
		for i, p := range pts {
			if p[0] == 0 || p[0] == 2 || p[0] == 4 || p[0] == 6 {
				if math.Abs(s[i]-f(p[0])) > 1e-2 {
					t.Fatalf("sample at training point %g = %g, want %g", p[0], s[i], f(p[0]))
				}
			}
		}
	}
}

func TestSamplePosteriorCoverage(t *testing.T) {
	// Pointwise: roughly 95% of posterior samples lie within ±2σ.
	rng := rand.New(rand.NewSource(9))
	g := New(kernel.NewSqExp(1, 1), 1e-8)
	for _, x := range []float64{0, 3, 6} {
		if err := g.Add([]float64{x}, math.Sin(x)); err != nil {
			t.Fatal(err)
		}
	}
	probe := [][]float64{{1.5}, {4.5}}
	means, vars := g.PredictBatch(probe, nil, nil)
	const trials = 400
	within := 0
	for trial := 0; trial < trials; trial++ {
		s, err := g.SamplePosterior(rng, probe, nil)
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for i := range probe {
			if math.Abs(s[i]-means[i]) > 2*math.Sqrt(vars[i]) {
				ok = false
			}
		}
		if ok {
			within++
		}
	}
	frac := float64(within) / trials
	if frac < 0.85 {
		t.Fatalf("±2σ joint coverage = %g, want ≳ 0.9", frac)
	}
}

// Property: incremental Add and batch Fit agree for random point sets.
func TestQuickAddMatchesFit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		d := 1 + rng.Intn(3)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = make([]float64, d)
			for j := range xs[i] {
				xs[i][j] = rng.Float64() * 10
			}
			ys[i] = rng.NormFloat64()
		}
		// Skip near-duplicate configurations: there the Gram matrix is
		// near-singular, batch Fit may legitimately apply diagonal jitter
		// that the incremental path does not, and the two (both valid)
		// models differ by more than floating-point noise.
		for i := range xs {
			for j := i + 1; j < len(xs); j++ {
				if mat.Dist2(xs[i], xs[j]) < 5e-2 {
					return true
				}
			}
		}
		inc := New(kernel.NewSqExp(1, 1), 1e-8)
		for i := range xs {
			if err := inc.Add(xs[i], ys[i]); err != nil {
				return true // duplicate-ish points: skip case
			}
		}
		batch := New(kernel.NewSqExp(1, 1), 1e-8)
		if err := batch.AddBatch(xs, ys); err != nil {
			return true
		}
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64() * 10
		}
		m1, v1 := inc.Predict(x)
		m2, v2 := batch.Predict(x)
		// SE-kernel Gram matrices are famously ill-conditioned, so allow
		// conditioning-amplified float noise on O(1) outputs.
		return math.Abs(m1-m2) < 1e-4 && math.Abs(v1-v2) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPredict100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := New(kernel.NewSqExp(1, 1), 1e-8)
	for i := 0; i < 100; i++ {
		if err := g.Add([]float64{rng.Float64() * 10, rng.Float64() * 10}, rng.NormFloat64()); err != nil {
			b.Fatal(err)
		}
	}
	x := []float64{5, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Predict(x)
	}
}

func BenchmarkAdd100th(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	xs := make([][]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		ys[i] = rng.NormFloat64()
	}
	base := New(kernel.NewSqExp(1, 1), 1e-8)
	if err := base.AddBatch(xs[:99], ys[:99]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := New(kernel.NewSqExp(1, 1), 1e-8)
		if err := g.AddBatch(xs[:99], ys[:99]); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := g.Add(xs[99], ys[99]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrain20(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	xs := make([][]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		x := rng.Float64() * 10
		xs[i] = []float64{x}
		ys[i] = math.Sin(x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(kernel.NewSqExp(0.5, 3), 1e-6)
		if err := g.AddBatch(xs, ys); err != nil {
			b.Fatal(err)
		}
		if _, err := g.Train(TrainConfig{MaxIter: 15}); err != nil {
			b.Fatal(err)
		}
	}
}
