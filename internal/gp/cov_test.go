package gp

import (
	"math"
	"math/rand"
	"testing"

	"olgapro/internal/kernel"
	"olgapro/internal/mat"
)

func covFixture(t *testing.T, seed int64, n int) (*GP, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New(kernel.NewSqExp(1, 0.6), 1e-6)
	f := func(x []float64) float64 { return math.Sin(3*x[0]) + x[1]*x[1] }
	for g.Len() < n {
		x := []float64{rng.Float64() * 3, rng.Float64() * 3}
		if err := g.Add(x, f(x)); err != nil {
			continue
		}
	}
	return g, rng
}

// TestPosteriorCovAgainstNaive differential-tests PosteriorCovWith against
// the direct formula k(x,y) − k_xᵀ (K+σ²I)⁻¹ k_y computed through an explicit
// inverse.
func TestPosteriorCovAgainstNaive(t *testing.T) {
	g, rng := covFixture(t, 1, 30)
	gram := kernel.Gram(g.Kernel(), g.Inputs())
	for i := 0; i < g.Len(); i++ {
		gram.Add(i, i, g.Noise())
	}
	var c mat.Cholesky
	if err := c.Factorize(gram); err != nil {
		t.Fatal(err)
	}
	kinv := c.Inverse()
	var s Scratch
	for trial := 0; trial < 20; trial++ {
		x := []float64{rng.Float64() * 3, rng.Float64() * 3}
		y := []float64{rng.Float64() * 3, rng.Float64() * 3}
		kx := kernel.CrossVec(g.Kernel(), g.Inputs(), x, nil)
		ky := kernel.CrossVec(g.Kernel(), g.Inputs(), y, nil)
		want := g.Kernel().Eval(x, y) - mat.Dot(kx, kinv.MulVec(ky))
		got := g.PosteriorCovWith(&s, x, y)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("trial %d: cov %g ≠ naive %g", trial, got, want)
		}
		// Symmetry.
		if sym := g.PosteriorCovWith(&s, y, x); math.Abs(sym-got) > 1e-12 {
			t.Fatalf("trial %d: cov not symmetric: %g vs %g", trial, got, sym)
		}
	}
	// Allocating convenience form agrees.
	x := []float64{1, 2}
	if a, b := g.PosteriorCov(x, x), g.PosteriorCovWith(&s, x, x); a != b {
		t.Fatalf("PosteriorCov %g ≠ PosteriorCovWith %g", a, b)
	}
}

// TestPosteriorCovSelfIsVariance: cov(x,x) must equal the predictive
// variance (before clamping, which never triggers on this well-conditioned
// fixture).
func TestPosteriorCovSelfIsVariance(t *testing.T) {
	g, rng := covFixture(t, 2, 25)
	var s Scratch
	for trial := 0; trial < 20; trial++ {
		x := []float64{rng.Float64() * 3, rng.Float64() * 3}
		_, v := g.PredictWith(&s, x)
		cov := g.PosteriorCovWith(&s, x, x)
		if math.Abs(cov-v) > 1e-12*(1+v) {
			t.Fatalf("trial %d: cov(x,x)=%g ≠ var=%g", trial, cov, v)
		}
	}
}

// TestPosteriorCovPriorOnly: with no training data the posterior covariance
// is the prior kernel value.
func TestPosteriorCovPriorOnly(t *testing.T) {
	g := New(kernel.NewSqExp(1, 0.5), 0)
	var s Scratch
	x, y := []float64{0.2, 0.3}, []float64{1.1, 0.4}
	if got, want := g.PosteriorCovWith(&s, x, y), g.Kernel().Eval(x, y); got != want {
		t.Fatalf("prior cov %g ≠ %g", got, want)
	}
}

// TestRankOneUpdateViaPosteriorCov pins the GP-level identity behind the
// greedy-tuning fast path: after adding a point x_c observed at the current
// posterior mean, every predictive mean is unchanged and every predictive
// variance shrinks by exactly cov(x_c, x_j)²/(var(x_c) + noise) — the
// clone-based trial's full re-predict collapses to one covariance pass.
func TestRankOneUpdateViaPosteriorCov(t *testing.T) {
	g, rng := covFixture(t, 3, 20)
	var s Scratch
	xc := []float64{1.5, 1.5}
	mc, vc := g.PredictWith(&s, xc)
	sc := vc + g.Noise()

	probes := make([][]float64, 15)
	for i := range probes {
		probes[i] = []float64{rng.Float64() * 3, rng.Float64() * 3}
	}
	type before struct{ m, v, cov float64 }
	pre := make([]before, len(probes))
	for i, p := range probes {
		m, v := g.PredictWith(&s, p)
		pre[i] = before{m, v, g.PosteriorCovWith(&s, p, xc)}
	}

	if err := g.Add(xc, mc); err != nil {
		t.Fatal(err)
	}
	for i, p := range probes {
		m2, v2 := g.PredictWith(&s, p)
		if math.Abs(m2-pre[i].m) > 1e-9*(1+math.Abs(pre[i].m)) {
			t.Errorf("probe %d: mean moved %g → %g despite observing the posterior mean", i, pre[i].m, m2)
		}
		wantV := pre[i].v - pre[i].cov*pre[i].cov/sc
		if wantV < 0 {
			wantV = 0
		}
		if math.Abs(v2-wantV) > 1e-9*(1+pre[i].v) {
			t.Errorf("probe %d: variance %g ≠ rank-1 prediction %g (was %g)", i, v2, wantV, pre[i].v)
		}
	}
}
