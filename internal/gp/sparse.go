package gp

import (
	"fmt"
	"math"

	"olgapro/internal/kernel"
	"olgapro/internal/mat"
)

// Sparse is a budgeted inducing-point GP approximation in the
// subset-of-regressors family. It breaks the exact model's O(n²)-per-add /
// O(n³)-cumulative growth wall: all working factors are m×m over a fixed
// budget of m ≪ n inducing points, so absorbing a point and predicting both
// cost O(m²) regardless of how many points the model has ever seen.
//
// Parameterization. Instead of the classical SoR normal equations
// Σ = K_mm + σ⁻²K_mn K_nm — which are catastrophically ill-scaled at the
// tiny jitter noise the paper's deterministic UDFs use — the model works in
// the whitened feature space φ(x) = L⁻¹ k_m(x) with L = chol(K_mm + jitter).
// A Bayesian linear regression over these features with unit prior is
// exactly SoR: maintaining
//
//	M = ρ²I + ΦᵀΦ   (Cholesky factor, m×m)
//	c = Φᵀy          w = M⁻¹c
//
// gives mean(x) = φ(x)ᵀw and the deterministic-training-conditional (DTC)
// variance
//
//	σ²(x) = [ k(x,x) − ‖φ(x)‖² + ρ²·φ(x)ᵀM⁻¹φ(x) ] · Inflate²
//
// whose first term — the novelty residual γ(x) — restores the prior
// uncertainty away from the inducing set, so the approximate posterior never
// claims confidence the basis cannot support. With Z = X (budget ≥ n,
// Inflate = 1) the DTC posterior is algebraically identical to the exact GP
// posterior in both mean and variance, which is what lets the §4.2
// confidence-band machinery keep producing a valid ε_GP on this path; at
// smaller budgets the Inflate knob widens the band to absorb the remaining
// approximation error (validated empirically by the conformance suite).
//
// Incremental maintenance. A new point is either *admitted* to the inducing
// set — while m is under budget and its novelty γ(x) clears the admission
// floor max(Tau·k(x,x), 4·jitter), i.e. it is both relatively novel and
// numerically resolvable — via a bordered extension of both factors
// (O(n·m) once, amortized over the budget), or *absorbed* as a pure
// observation via a rank-1
// Cholesky update of M (mat.Cholesky.Rank1Update, O(m²)). Once the budget
// is full, the highest-novelty absorbed point is tracked as a swap
// candidate; every SwapEvery absorbs the inducing point with the smallest
// deletion score w_j²/(M⁻¹)_jj — the increase in regularized least-squares
// error from deleting basis j, the rank-1 information-gain machinery in
// reverse — is evicted for it, followed by a full O(n·m²) rebuild (rare in
// steady state).
//
// Mutating methods must not be called concurrently; PredictWith with a
// caller-owned Scratch is safe from multiple goroutines on a frozen model.
type Sparse struct {
	kern  kernel.Kernel
	noise float64
	ridge float64 // BLR regularizer ρ² = max(noise, minRidge)
	cfg   SparseConfig

	xs [][]float64 // all absorbed inputs (copies)
	ys []float64   // all absorbed outputs

	zidx []int        // indices into xs of the inducing points, factor order
	zxs  [][]float64  // aliases xs[zidx[j]] for batched kernel evaluation
	lk   mat.Cholesky // chol(K_mm + jitter·I)
	fe   []float64    // n×Budget row-major feature rows φ(x_i) (first m live)
	mch  mat.Cholesky // chol(M), M = ρ²I + ΦᵀΦ
	cvec []float64    // Φᵀy
	wvec []float64    // M⁻¹c

	// Swap maintenance: best (most novel) absorbed candidate since the last
	// maintenance pass, as an index into xs plus its residual γ and prior.
	candIdx   int
	candGamma float64
	candPrior float64
	sinceMnt  int

	// priorScale is the running max of k(x,x) over every point ever added.
	// The K_mm jitter scales with it, which keeps the whitening factor's
	// condition number — and hence the smallest novelty γ the solve can
	// resolve — independent of the kernel's output amplitude. It is a max
	// over the training set, so restores and clones recompute it exactly.
	priorScale float64

	// Subset-of-data trainer: an exact GP over just the inducing pairs,
	// sharing the kernel, rebuilt lazily when the inducing set changes.
	sub      *GP
	subDirty bool

	buf1 []float64   // kernel / solve scratch, length Budget
	buf2 []float64   // rank-1 update scratch, length Budget
	buf3 []float64   // backward-solve scratch, length Budget
	gram *mat.Matrix // rebuild scratch
	minv *mat.Matrix // deletion-score scratch (M⁻¹)
}

// SparseConfig controls the budgeted approximation. The zero value of every
// field except Budget selects a sensible default.
type SparseConfig struct {
	// Budget is the maximum number of inducing points m (required, ≥ 1).
	Budget int
	// Tau is the relative-novelty admission threshold: a point joins the
	// inducing set while under budget only if its residual γ(x) exceeds
	// max(Tau·k(x,x), 4·jitter) — relatively novel AND numerically
	// resolvable (the jitter floor rejects points whose residual is
	// indistinguishable from factorization round-off). Default 1e-7.
	// Relative-to-prior thresholds are only meaningful because Train
	// recalibrates the amplitude to the data scale; see
	// calibrateAmplitude.
	Tau float64
	// Inflate multiplies the predictive standard deviation (≥ 1), widening
	// the §4.2 confidence band to cover approximation error at small
	// budgets. Default 1.1; 1 recovers the raw DTC variance.
	Inflate float64
	// SwapEvery is the inducing-set maintenance cadence in absorbed points
	// once the budget is full: 0 defaults to Budget, < 0 disables swapping.
	SwapEvery int
}

func (c SparseConfig) normalize() SparseConfig {
	if c.Tau <= 0 {
		c.Tau = 1e-7
	}
	if c.Inflate <= 0 {
		c.Inflate = 1.1
	}
	if c.Inflate < 1 {
		c.Inflate = 1
	}
	if c.SwapEvery == 0 {
		c.SwapEvery = c.Budget
	}
	return c
}

// minRidge floors the BLR regularizer: with jitter-level noise (1e-8) the
// Schur complements of M updates sit below float64 cancellation error at
// large n, and the floor costs nothing statistically because the DTC
// variance term ρ²φᵀM⁻¹φ only grows with ρ².
const minRidge = 1e-8

// NewSparse returns an empty budgeted sparse GP. noise ≤ 0 selects
// DefaultNoise; cfg.Budget must be ≥ 1.
func NewSparse(k kernel.Kernel, noise float64, cfg SparseConfig) (*Sparse, error) {
	if cfg.Budget < 1 {
		return nil, fmt.Errorf("gp: sparse budget %d < 1", cfg.Budget)
	}
	if noise <= 0 {
		noise = DefaultNoise
	}
	ridge := noise
	if ridge < minRidge {
		ridge = minRidge
	}
	s := &Sparse{kern: k, noise: noise, ridge: ridge, cfg: cfg.normalize(), candIdx: -1}
	s.buf1 = make([]float64, cfg.Budget)
	s.buf2 = make([]float64, cfg.Budget)
	s.buf3 = make([]float64, cfg.Budget)
	return s, nil
}

// NewSparseFromState reconstructs a sparse GP from persisted state: the full
// training history plus the inducing-set indices, deterministically
// rebuilding all factors. It is the restore path of snapshot v3 and the
// basis of Clone, so two models restored from the same state predict
// bit-identically.
func NewSparseFromState(k kernel.Kernel, noise float64, cfg SparseConfig, xs [][]float64, ys []float64, inducing []int) (*Sparse, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("gp: sparse state lengths %d ≠ %d", len(xs), len(ys))
	}
	s, err := NewSparse(k, noise, cfg)
	if err != nil {
		return nil, err
	}
	if len(inducing) > cfg.Budget {
		return nil, fmt.Errorf("gp: %d inducing points exceed budget %d", len(inducing), cfg.Budget)
	}
	s.xs = make([][]float64, len(xs))
	for i, x := range xs {
		cp := make([]float64, len(x))
		copy(cp, x)
		s.xs[i] = cp
	}
	s.ys = append(s.ys, ys...)
	s.zidx = append(s.zidx, inducing...)
	for _, zi := range s.zidx {
		if zi < 0 || zi >= len(s.xs) {
			return nil, fmt.Errorf("gp: inducing index %d out of range [0,%d)", zi, len(s.xs))
		}
		s.zxs = append(s.zxs, s.xs[zi])
	}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}

// Clone returns an independent copy for frozen read replicas. The factors
// are not copied but canonically rebuilt from (xs, ys, inducing set), so a
// clone of a live model and a clone of the same model restored from a
// snapshot predict bit-identically — incremental rank-1 round-off never
// leaks into replica answers. k, when non-nil, replaces the kernel (it must
// have identical parameters); nil shares the original kernel.
func (s *Sparse) Clone(k kernel.Kernel) (*Sparse, error) {
	if k == nil {
		k = s.kern
	}
	return NewSparseFromState(k, s.noise, s.cfg, s.xs, s.ys, s.zidx)
}

// Kernel returns the model's kernel (shared, not a copy).
func (s *Sparse) Kernel() kernel.Kernel { return s.kern }

// Noise returns the observation-noise variance.
func (s *Sparse) Noise() float64 { return s.noise }

// Len returns the number of absorbed training points.
func (s *Sparse) Len() int { return len(s.xs) }

// X returns training input i (not a copy).
func (s *Sparse) X(i int) []float64 { return s.xs[i] }

// Y returns training output i.
func (s *Sparse) Y(i int) float64 { return s.ys[i] }

// InducingLen returns the current number of inducing points m ≤ Budget.
func (s *Sparse) InducingLen() int { return len(s.zidx) }

// Inducing returns the indices (into the training history) of the inducing
// set in factor order. The slice is shared storage; do not modify.
func (s *Sparse) Inducing() []int { return s.zidx }

// Config returns the normalized sparse configuration.
func (s *Sparse) Config() SparseConfig { return s.cfg }

// featRow returns feature row i (capacity Budget, first m entries live).
func (s *Sparse) featRow(i int) []float64 {
	off := i * s.cfg.Budget
	return s.fe[off : off+s.cfg.Budget]
}

// appendFeatRow grows the flat feature store by one zeroed row, doubling
// capacity so steady-state absorbs stay amortized allocation-free.
func (s *Sparse) appendFeatRow() []float64 {
	old := len(s.fe)
	need := old + s.cfg.Budget
	if cap(s.fe) < need {
		nf := make([]float64, need, max(2*cap(s.fe), need))
		copy(nf, s.fe)
		s.fe = nf
	} else {
		s.fe = s.fe[:need]
	}
	row := s.fe[old:need]
	for i := range row {
		row[i] = 0
	}
	return row
}

// Add absorbs one training pair in O(m²) amortized: the point either joins
// the inducing set (bordered factor extension, only while under budget) or
// is folded into the information factor by a rank-1 Cholesky update. The
// input slice is copied. Unlike the exact GP, duplicate points are not an
// error — they are absorbed as repeated observations.
func (s *Sparse) Add(x []float64, y float64) error {
	if len(s.xs) > 0 && len(x) != len(s.xs[0]) {
		return fmt.Errorf("gp: point dim %d ≠ %d", len(x), len(s.xs[0]))
	}
	m := len(s.zidx)
	prior := s.kern.Eval(x, x)
	if prior > s.priorScale {
		s.priorScale = prior
	}
	kz := s.buf1[:m]
	kernel.CrossVec(s.kern, s.zxs, x, kz)
	phi := s.buf2[:m]
	s.lk.ForwardSolveTo(phi, kz)
	gamma := s.residual(prior, phi, s.buf3)

	cp := make([]float64, len(x))
	copy(cp, x)

	if m < s.cfg.Budget && (m == 0 || gamma > s.admitFloor(prior)) {
		if err := s.admit(cp, y, kz, phi, prior); err == nil {
			return nil
		}
		// Numerically inadmissible (e.g. duplicate of an inducing point
		// slipping past the floor): fall through and absorb as an observation.
	}
	s.absorb(cp, y, phi, gamma, prior)
	return nil
}

// admitFloor returns the novelty a point must exceed to join the inducing
// set: relatively novel (Tau·prior) and numerically resolvable (2·jitter —
// the debiased residual of an exact duplicate of an inducing point computes
// to round-off noise of order machEps·prior²/jitter ≈ jitter·prior at the
// sqrt(machEps) jitter scale, so anything below a couple of jitters is
// indistinguishable from zero).
func (s *Sparse) admitFloor(prior float64) float64 {
	f := s.cfg.Tau * prior
	if j := 2 * s.jitter(); j > f {
		f = j
	}
	return f
}

// residual returns the jitter-debiased novelty residual at a point whose
// whitened features are phi:
//
//	γ̂ = k(x,x) − ‖φ‖² − τ·‖α‖²,  α = L⁻ᵀφ = (K_mm+τI)⁻¹k_m(x)
//
// clamped at 0. The naive whitened residual k(x,x) − ‖φ‖² is the residual
// of the *jittered* Gram matrix and so floors at τ·‖α‖² even where the true
// residual is far smaller — at tight ε that floor alone exceeds the variance
// resolution the §4.2 band needs. Subtracting the exact first-order jitter
// term recovers that resolution while remaining an upper bound on the
// unjittered residual: in K_mm's eigenbasis the per-eigenvalue surplus is
// 1/λ − 1/(λ+τ) − τ/(λ+τ)² = τ²/(λ(λ+τ)²) ≥ 0, so the band stays
// conservative. alphaBuf is caller scratch of length ≥ m (PredictWith passes
// its own so frozen-model predictions stay goroutine-safe).
func (s *Sparse) residual(prior float64, phi, alphaBuf []float64) float64 {
	alpha := s.lk.BackSolveTo(alphaBuf[:len(phi)], phi)
	r := prior - mat.Dot(phi, phi) - s.jitter()*mat.Dot(alpha, alpha)
	if r < 0 {
		r = 0
	}
	return r
}

// admit appends x to both the data and the inducing set, extending the two
// Cholesky factors in place: O(n·(d+m)) for the new feature column —
// amortized over the budget this happens at most Budget times plus rare
// swaps — and O(m²) for the factor borders.
func (s *Sparse) admit(x []float64, y float64, kz, phi []float64, prior float64) error {
	m := len(s.zidx)
	// Bordered K_mm factor: new row is exactly phi with pivot √(γ+jitter).
	if err := s.lk.Extend(kz, prior+s.jitter()); err != nil {
		return err
	}
	lrow := s.lk.LRow(m)
	ld := lrow[m]

	// Every existing feature row gains one component:
	// a_i[m] = (k(z_new, x_i) − lrow·a_i[:m]) / l_d.
	for i, xi := range s.xs {
		row := s.featRow(i)
		row[m] = (s.kern.Eval(x, xi) - mat.Dot(lrow[:m], row[:m])) / ld
	}
	// The new point's own row: first m components are its features under the
	// old basis, the last its whitened novelty.
	newRow := s.appendFeatRow()
	copy(newRow[:m], phi)
	newRow[m] = (prior - mat.Dot(lrow[:m], phi)) / ld

	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
	s.zidx = append(s.zidx, len(s.xs)-1)
	s.zxs = append(s.zxs, x)

	// Border M = ρ²I + ΦᵀΦ over the PRE-EXISTING rows only, new column
	// Σ_i a_i[j]·a_i[m]. Restricted to the old rows the bordered matrix is
	// exactly ρ²I + Φ_oldᵀΦ_old in the grown basis — SPD with spectrum ≥ ρ²
	// — so the extension pivot cannot go negative short of roundoff. (The
	// new row must NOT be folded into the border alone: its φφᵀ block would
	// be missing from the top-left factor, and that asymmetric matrix can
	// have a genuinely negative Schur complement, forcing an O(n·m²)
	// rebuild on every such admission.)
	nOld := len(s.xs) - 1
	col := s.buf1[:m]
	for j := range col {
		col[j] = 0
	}
	diag := s.ridge
	var cm float64
	for i := 0; i < nOld; i++ {
		row := s.featRow(i)
		am := row[m]
		mat.Axpy(am, row[:m], col)
		diag += am * am
		cm += am * s.ys[i]
	}
	if err := s.mch.Extend(col, diag); err != nil {
		// Roundoff pushed the pivot below the ρ² floor; the jittered batch
		// factorization is the deterministic fallback.
		return s.rebuild()
	}
	s.cvec = append(s.cvec, cm)
	// Fold the admitted point's own row in as an ordinary observation: one
	// rank-1 update of the bordered factor plus its c contribution. M is now
	// exactly ρ²I + ΦᵀΦ over all rows — the matrix rebuild() factorizes.
	v := s.buf1[:m+1]
	copy(v, newRow[:m+1])
	if err := s.mch.Rank1Update(v); err != nil {
		// NaN contamination — rebuild deterministically.
		return s.rebuild()
	}
	mat.Axpy(y, newRow[:m+1], s.cvec)
	s.refreshW()
	s.subDirty = true
	return nil
}

// absorb folds x into the information factor without touching the basis:
// one rank-1 Cholesky update of M, O(m²).
func (s *Sparse) absorb(x []float64, y float64, phi []float64, gamma, prior float64) {
	m := len(s.zidx)
	n := len(s.xs)
	row := s.appendFeatRow()
	copy(row[:m], phi)
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)

	v := s.buf1[:m]
	copy(v, phi)
	if err := s.mch.Rank1Update(v); err != nil {
		// NaN contamination — rebuild deterministically.
		if rerr := s.rebuild(); rerr != nil {
			return
		}
	} else {
		mat.Axpy(y, phi, s.cvec)
		s.refreshW()
	}

	if m == s.cfg.Budget {
		if gamma > s.candGamma {
			s.candGamma = gamma
			s.candPrior = prior
			s.candIdx = n
		}
		s.sinceMnt++
		if s.cfg.SwapEvery > 0 && s.sinceMnt >= s.cfg.SwapEvery {
			s.maintain()
		}
	}
}

// maintain runs one inducing-set maintenance pass: if the best absorbed
// candidate since the last pass is novel enough (its residual exceeds the
// admission threshold with headroom), it replaces the inducing point with
// the smallest deletion score w_j²/(M⁻¹)_jj, followed by a full rebuild.
func (s *Sparse) maintain() {
	s.sinceMnt = 0
	cand, gamma, prior := s.candIdx, s.candGamma, s.candPrior
	s.candIdx, s.candGamma, s.candPrior = -1, 0, 0
	if cand < 0 || gamma <= 4*s.admitFloor(prior) {
		return
	}
	m := len(s.zidx)
	if s.minv == nil {
		s.minv = mat.New(m, m)
	} else {
		s.minv.Reset(m, m)
	}
	s.mch.InverseTo(s.minv)
	victim, best := -1, 0.0
	for j := 0; j < m; j++ {
		d := s.minv.At(j, j)
		if d <= 0 {
			continue
		}
		score := s.wvec[j] * s.wvec[j] / d
		if victim < 0 || score < best {
			victim, best = j, score
		}
	}
	if victim < 0 {
		return
	}
	old := s.zidx[victim]
	s.zidx[victim] = cand
	s.zxs[victim] = s.xs[cand]
	if err := s.rebuild(); err != nil {
		// Revert to the previous basis, which did factorize.
		s.zidx[victim] = old
		s.zxs[victim] = s.xs[old]
		_ = s.rebuild()
	}
}

// relJitter sets the K_mm jitter relative to the largest prior variance seen,
// capping cond(K_mm + jitter·I) near 1/relJitter at any kernel amplitude.
// The scale matters in both directions: a jitter too small for the amplitude
// (K_mm entries scale with k(x,x), which training can push to 1e2 or a
// catalog UDF to 1e14) lets round-off swallow the whitened residual —
// computed ‖φ‖² reaches the prior, γ clamps to 0, and admission freezes even
// where the true residual is orders of magnitude above the floor — while an
// over-large jitter inflates the residual floor τ·‖α‖² that even the
// debiased residual cannot resolve below. The forward-solve round-off noise
// grows as machEps/relJitter while the floor shrinks with relJitter, so the
// resolution-optimal choice sits near sqrt(machEps) ≈ 1.5e-8.
const relJitter = 2e-8

// jitter returns the K_mm diagonal jitter: the observation noise, floored at
// relJitter·(max prior variance seen) to keep the whitening factor
// well-conditioned regardless of output scale.
func (s *Sparse) jitter() float64 {
	j := relJitter * s.priorScale
	if s.noise > j {
		j = s.noise
	}
	if j < 1e-12 {
		j = 1e-12
	}
	return j
}

// refreshW recomputes w = M⁻¹c into the retained buffer.
func (s *Sparse) refreshW() {
	m := len(s.cvec)
	if cap(s.wvec) < m {
		s.wvec = make([]float64, m, s.cfg.Budget)
	}
	s.wvec = s.wvec[:m]
	s.mch.SolveVecTo(s.wvec, s.cvec)
}

// rebuild deterministically reconstructs every factor from (xs, ys, zidx):
// O(n·m²). It is the canonical state all replicas and restores share, and
// the fallback whenever an incremental update goes numerically bad.
func (s *Sparse) rebuild() error {
	// Hyperparameter training changes k(x,x); recompute the jitter scale from
	// the full history (a max, so order-independent — restores and clones land
	// on the same value and thus bit-identical factors).
	s.priorScale = 0
	for _, xi := range s.xs {
		if p := s.kern.Eval(xi, xi); p > s.priorScale {
			s.priorScale = p
		}
	}
	m := len(s.zidx)
	if m == 0 {
		s.lk = mat.Cholesky{}
		s.mch = mat.Cholesky{}
		s.cvec = s.cvec[:0]
		s.wvec = s.wvec[:0]
		s.subDirty = true
		return nil
	}
	s.gram = kernel.GramInto(s.gram, s.kern, s.zxs)
	for i := 0; i < m; i++ {
		s.gram.Add(i, i, s.jitter())
	}
	if _, err := s.lk.FactorizeJittered(s.gram, s.jitter()*10, 8); err != nil {
		return fmt.Errorf("gp: sparse rebuild K_mm: %w", err)
	}
	// Feature rows under the new basis (the restore path arrives here with
	// an empty store, so size it for the whole history first).
	if need := len(s.xs) * s.cfg.Budget; cap(s.fe) < need {
		s.fe = make([]float64, need)
	} else {
		s.fe = s.fe[:need]
	}
	for i, xi := range s.xs {
		row := s.featRow(i)
		kz := s.buf1[:m]
		kernel.CrossVec(s.kern, s.zxs, xi, kz)
		s.lk.ForwardSolveTo(row[:m], kz)
	}
	// M = ρ²I + ΦᵀΦ and c = Φᵀy.
	s.gram.Reset(m, m)
	if cap(s.cvec) < m {
		s.cvec = make([]float64, m, s.cfg.Budget)
	}
	s.cvec = s.cvec[:m]
	for j := range s.cvec {
		s.cvec[j] = 0
	}
	for i := range s.xs {
		row := s.featRow(i)[:m]
		for a := 0; a < m; a++ {
			ga := s.gram.Row(a)
			ra := row[a]
			for b := 0; b <= a; b++ {
				ga[b] += ra * row[b]
			}
		}
		mat.Axpy(s.ys[i], row, s.cvec)
	}
	for a := 0; a < m; a++ {
		s.gram.Add(a, a, s.ridge)
		for b := 0; b < a; b++ {
			s.gram.Set(b, a, s.gram.At(a, b))
		}
	}
	if _, err := s.mch.FactorizeJittered(s.gram, s.ridge*10, 8); err != nil {
		return fmt.Errorf("gp: sparse rebuild M: %w", err)
	}
	s.refreshW()
	s.subDirty = true
	return nil
}

// Predict returns the posterior mean and variance at x. This convenience
// form allocates; the hot path uses PredictWith.
func (s *Sparse) Predict(x []float64) (mean, variance float64) {
	var sc Scratch
	return s.PredictWith(&sc, x)
}

// PredictWith returns the DTC posterior mean and (inflated) variance at x in
// O(m²) — independent of the number of absorbed points — with zero heap
// allocations once sc has grown to the budget.
func (s *Sparse) PredictWith(sc *Scratch, x []float64) (mean, variance float64) {
	prior := s.kern.Eval(x, x)
	m := len(s.zidx)
	infl := s.cfg.Inflate * s.cfg.Inflate
	if m == 0 {
		return 0, prior * infl
	}
	sc.resize(m)
	sc.resize2(m)
	kernel.CrossVec(s.kern, s.zxs, x, sc.k)
	phi := s.lk.ForwardSolveTo(sc.v, sc.k)
	mean = mat.Dot(phi, s.wvec)
	resid := s.residual(prior, phi, sc.v2)
	s.mch.ForwardSolveTo(sc.v2, phi)
	variance = (resid + s.ridge*mat.Dot(sc.v2, sc.v2)) * infl
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// PredictBatchWith fills means[i], vars[i] for each test point, reusing the
// caller's scratch: zero heap allocations with sufficient capacity.
func (s *Sparse) PredictBatchWith(sc *Scratch, xs [][]float64, means, vars []float64) ([]float64, []float64) {
	if cap(means) < len(xs) {
		means = make([]float64, len(xs))
	}
	if cap(vars) < len(xs) {
		vars = make([]float64, len(xs))
	}
	means, vars = means[:len(xs)], vars[:len(xs)]
	for i, x := range xs {
		means[i], vars[i] = s.PredictWith(sc, x)
	}
	return means, vars
}

// ensureSub (re)builds the subset-of-data trainer: an exact GP over just the
// inducing pairs, sharing this model's kernel so hyperparameter moves apply
// to both.
func (s *Sparse) ensureSub() error {
	if s.sub != nil && !s.subDirty {
		return nil
	}
	s.sub = New(s.kern, s.noise)
	for _, zi := range s.zidx {
		s.sub.xs = append(s.sub.xs, s.xs[zi])
		s.sub.ys = append(s.sub.ys, s.ys[zi])
	}
	if err := s.sub.Fit(); err != nil {
		s.sub = nil
		return err
	}
	s.subDirty = false
	return nil
}

// NewtonStep returns the §5.3 retraining heuristic evaluated on the
// inducing subset — O(m³) instead of O(n³).
func (s *Sparse) NewtonStep() float64 {
	if len(s.zidx) < 2 {
		return 0
	}
	if err := s.ensureSub(); err != nil {
		return 0
	}
	return s.sub.NewtonStep()
}

// Train learns kernel hyperparameters by maximum likelihood on the inducing
// subset (subset-of-data training, O(m³) per step), recalibrates the kernel
// amplitude to the profile-MLE data scale, then deterministically rebuilds
// all factors from the full history at the new parameters.
func (s *Sparse) Train(cfg TrainConfig) (TrainResult, error) {
	if len(s.zidx) < 2 {
		return TrainResult{}, nil
	}
	if err := s.ensureSub(); err != nil {
		return TrainResult{}, err
	}
	res, err := s.sub.Train(cfg)
	if err != nil {
		return res, err
	}
	s.calibrateAmplitude()
	if err := s.rebuild(); err != nil {
		return res, err
	}
	return res, nil
}

// calibrateAmplitude rescales the kernel's output variance by the profile
// maximum-likelihood factor c = yᵀK⁻¹y/m computed on the trained inducing
// subset. Smooth low-noise data makes the SoD likelihood nearly flat along
// the (σ_f, ℓ) ridge, so gradient training routinely parks the amplitude
// orders of magnitude above the data scale; that is harmless for the exact
// GP, whose posterior variance contracts to the noise level near data
// regardless of σ_f, but fatal for the sparse path, whose band is limited by
// the novelty residual γ ∝ σ_f². Rescaling by the concentrated MLE leaves
// every posterior mean bit-for-bit unchanged (mean = kᵀ(K⁻¹y) is invariant
// under K → cK) and shrinks the predictive variance to the scale at which
// standardized residuals have unit variance — textbook kriging variance
// calibration. A ×2 safety factor keeps the moved band on the conservative
// (over-covering) side.
//
// Every registry kernel stores log σ_f as its first hyperparameter; the
// rescale is verified by probing k(x,x) and reverted if the kernel does not
// follow that convention.
func (s *Sparse) calibrateAmplitude() {
	if s.sub == nil || s.sub.Len() < 2 || s.kern.NumParams() < 1 {
		return
	}
	m := float64(s.sub.Len())
	c := 2 * mat.Dot(s.sub.ys, s.sub.Alpha()) / m
	// The profile factor alone cannot escape the degenerate (σ_f, ℓ) ridge —
	// an overstretched lengthscale makes K's small eigenvalues blow up
	// yᵀK⁻¹y, so the quadratic form reads "calibrated" at amplitudes far
	// above the data. Cap the amplitude at a small multiple of the observed
	// output variance as well: posterior means are invariant, and no valid
	// band for data of variance v needs prior variance ≫ v.
	var ym, yv float64
	n := float64(len(s.ys))
	for _, y := range s.ys {
		ym += y
	}
	ym /= n
	for _, y := range s.ys {
		d := y - ym
		yv += d * d
	}
	yv /= n
	if prior := s.kern.Eval(s.sub.xs[0], s.sub.xs[0]); prior > 0 {
		if cap2 := 2 * yv / prior; cap2 < c {
			c = cap2
		}
	}
	if !(c > 0) || math.IsInf(c, 0) || c >= 1 {
		// Only ever shrink an inflated amplitude; an under-scaled kernel
		// already errs in the conservative direction.
		return
	}
	x0 := s.sub.xs[0]
	before := s.kern.Eval(x0, x0)
	p := s.kern.Params(nil)
	old0 := p[0]
	p[0] += 0.5 * math.Log(c)
	s.kern.SetParams(p)
	after := s.kern.Eval(x0, x0)
	if !(math.Abs(after-before*c) <= 1e-9*math.Abs(before*c)) {
		p[0] = old0
		s.kern.SetParams(p)
		return
	}
	s.subDirty = true
}
