package kernel

import (
	"math"
	"math/rand"
	"testing"

	"olgapro/internal/mat"
)

func TestARDMatchesIsotropicWhenEqual(t *testing.T) {
	iso := NewSqExp(1.3, 0.8)
	ard := NewSqExpARD(1.3, []float64{0.8, 0.8, 0.8})
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if got, want := ard.Eval(x, y), iso.Eval(x, y); math.Abs(got-want) > 1e-14 {
			t.Fatalf("ARD %g ≠ iso %g", got, want)
		}
	}
}

func TestARDAnisotropy(t *testing.T) {
	// Short lengthscale on axis 0: moving along axis 0 decays covariance
	// much faster than moving along axis 1.
	k := NewSqExpARD(1, []float64{0.2, 5})
	origin := []float64{0, 0}
	along0 := k.Eval(origin, []float64{1, 0})
	along1 := k.Eval(origin, []float64{0, 1})
	if along0 >= along1 {
		t.Fatalf("axis-0 covariance %g should decay faster than axis-1 %g", along0, along1)
	}
}

func TestARDParamsRoundTrip(t *testing.T) {
	k := NewSqExpARD(2, []float64{0.5, 1.5})
	if k.NumParams() != 3 {
		t.Fatalf("NumParams = %d", k.NumParams())
	}
	p := k.Params(nil)
	before := k.Eval([]float64{1, 2}, []float64{0, 1})
	k.SetParams(p)
	if after := k.Eval([]float64{1, 2}, []float64{0, 1}); math.Abs(before-after) > 1e-14 {
		t.Fatal("round trip changed kernel")
	}
}

func TestARDParamGradFiniteDifference(t *testing.T) {
	k := NewSqExpARD(1.2, []float64{0.7, 1.3})
	x := []float64{0.4, -0.2}
	y := []float64{1.0, 0.5}
	np := k.NumParams()
	grad := make([]float64, np)
	hess := make([]float64, np)
	k.ParamGrad(x, y, grad, hess)
	base := k.Params(nil)
	const h = 1e-5
	for j := 0; j < np; j++ {
		at := func(delta float64) float64 {
			p := append([]float64(nil), base...)
			p[j] += delta
			kc := k.Clone()
			kc.SetParams(p)
			return kc.Eval(x, y)
		}
		fd := (at(h) - at(-h)) / (2 * h)
		if math.Abs(fd-grad[j]) > 1e-6*(1+math.Abs(fd)) {
			t.Errorf("grad[%d] = %g, fd %g", j, grad[j], fd)
		}
		fdH := (at(h) - 2*at(0) + at(-h)) / (h * h)
		if math.Abs(fdH-hess[j]) > 1e-4*(1+math.Abs(fdH)) {
			t.Errorf("hess[%d] = %g, fd %g", j, hess[j], fdH)
		}
	}
}

func TestARDGramPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k := NewSqExpARD(1, []float64{0.5, 2, 1})
	xs := randomPoints(rng, 15, 3)
	g := Gram(k, xs)
	var c mat.Cholesky
	if _, err := c.FactorizeJittered(g, 1e-10, 8); err != nil {
		t.Fatalf("ARD Gram not PSD: %v", err)
	}
}

func TestARDSpectralMomentConservative(t *testing.T) {
	k := NewSqExpARD(1, []float64{0.5, 2})
	// Most conservative axis is ℓ=0.5 → λ₂ = 4.
	if got := k.SecondSpectralMoment(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("λ₂ = %g, want 4", got)
	}
}

func TestARDRelevances(t *testing.T) {
	k := NewSqExpARD(1, []float64{1, 2}) // relevance 1 vs 0.25 → 0.8/0.2
	r := k.Relevances()
	if math.Abs(r[0]-0.8) > 1e-12 || math.Abs(r[1]-0.2) > 1e-12 {
		t.Fatalf("Relevances = %v", r)
	}
}

func TestARDCloneIndependent(t *testing.T) {
	k := NewSqExpARD(1, []float64{1, 1})
	c := k.Clone().(*SqExpARD)
	k.Lens[0] = 99
	if c.Lens[0] != 1 {
		t.Fatal("Clone shares lengthscales")
	}
}

func TestARDValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSqExpARD(0, []float64{1}) },
		func() { NewSqExpARD(1, nil) },
		func() { NewSqExpARD(1, []float64{0}) },
		func() { NewSqExpARD(1, []float64{1}).SetParams([]float64{1, 2, 3}) },
		func() { NewSqExpARD(1, []float64{1, 1}).Eval([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
