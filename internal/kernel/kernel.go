// Package kernel implements the covariance functions used to model UDFs
// with Gaussian processes (paper §3.2): the squared-exponential kernel the
// paper focuses on, plus Matérn 3/2 and 5/2 alternatives for less smooth
// functions, as the paper suggests users may plug in.
//
// Hyperparameters are exposed in log space, the standard parameterization
// for unconstrained maximum-likelihood training (§3.4). Each kernel provides
// analytic first and second derivatives with respect to its log-parameters,
// which drive both gradient-ascent training and the Newton-step retraining
// heuristic of §5.3, and its second spectral moment, which drives the
// simultaneous-confidence-band computation of §4.2.
package kernel

import (
	"fmt"
	"math"

	"olgapro/internal/mat"
)

// Kernel is a stationary covariance function k(x, x′) with log-space
// hyperparameters.
type Kernel interface {
	// Eval returns k(x, y).
	Eval(x, y []float64) float64
	// NumParams returns the number of hyperparameters.
	NumParams() int
	// Params appends the log-space hyperparameters to dst and returns it.
	Params(dst []float64) []float64
	// SetParams sets the log-space hyperparameters.
	SetParams(p []float64)
	// ParamGrad fills grad[j] = ∂k/∂θ_j and, if hess is non-nil,
	// hess[j] = ∂²k/∂θ_j² evaluated at (x, y), θ in log space.
	ParamGrad(x, y []float64, grad, hess []float64)
	// SecondSpectralMoment returns λ₂ = −r″(0) of the correlation
	// function r(t) = k(t)/k(0) along one input dimension, used for
	// expected-Euler-characteristic confidence bands.
	SecondSpectralMoment() float64
	// Clone returns an independent copy.
	Clone() Kernel
	// String describes the kernel and its current hyperparameters.
	String() string
}

// BatchEvaler is implemented by kernels that can fill a whole row of
// covariances k(xs[i], y) in one call. Batching hoists the per-pair interface
// dispatch and length validation out of the inner loop and splits the work
// into a tight squared-distance pass (mat.SqDistRowsTo) followed by a tight
// transform pass — the restructuring that lets the compiler keep both loops
// branch-free. CrossVec and GramInto use it automatically, which is how the
// speedup reaches gp.PredictBatchWith, local inference, and online tuning
// without any caller changes. Implementations must produce values identical
// to per-pair Eval calls.
type BatchEvaler interface {
	// EvalBatch fills dst[i] = k(xs[i], y); len(dst) must equal len(xs).
	EvalBatch(dst []float64, xs [][]float64, y []float64)
}

// Gram returns a freshly allocated n×n covariance matrix
// K[i][j] = k(xs[i], xs[j]).
func Gram(k Kernel, xs [][]float64) *mat.Matrix {
	return GramInto(nil, k, xs)
}

// GramInto fills dst with the covariance matrix K[i][j] = k(xs[i], xs[j]),
// resizing it in place (reusing its backing store) to n×n. A nil dst is
// allocated. It returns dst, letting callers that rebuild Gram matrices of
// slowly varying size — the local-inference context of §5.1 does so once per
// input tuple — avoid the O(n²) allocation. Each lower-triangle row is
// produced by one batched evaluation when the kernel supports it.
func GramInto(dst *mat.Matrix, k Kernel, xs [][]float64) *mat.Matrix {
	n := len(xs)
	if dst == nil {
		dst = mat.New(n, n)
	} else {
		dst.Reset(n, n)
	}
	if be, ok := k.(BatchEvaler); ok {
		for i := 0; i < n; i++ {
			row := dst.Row(i)
			be.EvalBatch(row[:i+1], xs[:i+1], xs[i])
			for j := 0; j < i; j++ {
				dst.Set(j, i, row[j])
			}
		}
		return dst
	}
	for i := 0; i < n; i++ {
		row := dst.Row(i)
		for j := 0; j <= i; j++ {
			v := k.Eval(xs[i], xs[j])
			row[j] = v
			dst.Set(j, i, v)
		}
	}
	return dst
}

// Cross fills the n×m covariance matrix K[i][j] = k(xs[i], ys[j]).
func Cross(k Kernel, xs, ys [][]float64) *mat.Matrix {
	out := mat.New(len(xs), len(ys))
	if be, ok := k.(BatchEvaler); ok {
		col := make([]float64, len(xs))
		for j := range ys {
			be.EvalBatch(col, xs, ys[j])
			for i := range xs {
				out.Set(i, j, col[i])
			}
		}
		return out
	}
	for i := range xs {
		row := out.Row(i)
		for j := range ys {
			row[j] = k.Eval(xs[i], ys[j])
		}
	}
	return out
}

// CrossVec fills dst[i] = k(xs[i], y), batching the row when the kernel
// implements BatchEvaler.
func CrossVec(k Kernel, xs [][]float64, y []float64, dst []float64) []float64 {
	if cap(dst) < len(xs) {
		dst = make([]float64, len(xs))
	}
	dst = dst[:len(xs)]
	if be, ok := k.(BatchEvaler); ok {
		be.EvalBatch(dst, xs, y)
		return dst
	}
	for i := range xs {
		dst[i] = k.Eval(xs[i], y)
	}
	return dst
}

// SqExp is the isotropic squared-exponential (RBF) kernel
//
//	k(x, x′) = σ_f² exp(−‖x−x′‖² / (2 ℓ²)),
//
// the paper's default covariance function. Hyperparameters in log space are
// θ = (log σ_f, log ℓ).
type SqExp struct {
	SigmaF float64 // signal standard deviation σ_f
	Len    float64 // lengthscale ℓ
}

// NewSqExp returns a squared-exponential kernel with the given signal
// standard deviation and lengthscale.
func NewSqExp(sigmaF, length float64) *SqExp {
	if sigmaF <= 0 || length <= 0 {
		panic(fmt.Sprintf("kernel: non-positive SqExp parameters σf=%g ℓ=%g", sigmaF, length))
	}
	return &SqExp{SigmaF: sigmaF, Len: length}
}

// Eval returns k(x, y).
func (k *SqExp) Eval(x, y []float64) float64 {
	s := mat.SqDist(x, y)
	return k.SigmaF * k.SigmaF * math.Exp(-0.5*s/(k.Len*k.Len))
}

// NumParams returns 2.
func (k *SqExp) NumParams() int { return 2 }

// Params appends (log σ_f, log ℓ).
func (k *SqExp) Params(dst []float64) []float64 {
	return append(dst, math.Log(k.SigmaF), math.Log(k.Len))
}

// SetParams sets (log σ_f, log ℓ).
func (k *SqExp) SetParams(p []float64) {
	if len(p) != 2 {
		panic(fmt.Sprintf("kernel: SqExp wants 2 params, got %d", len(p)))
	}
	k.SigmaF = math.Exp(p[0])
	k.Len = math.Exp(p[1])
}

// ParamGrad fills the log-space derivatives:
//
//	∂k/∂logσ_f = 2k            ∂²k/∂logσ_f² = 4k
//	∂k/∂logℓ  = k·s/ℓ²         ∂²k/∂logℓ²  = k·(s²/ℓ⁴ − 2s/ℓ²)
//
// with s = ‖x−y‖².
func (k *SqExp) ParamGrad(x, y []float64, grad, hess []float64) {
	s := mat.SqDist(x, y)
	l2 := k.Len * k.Len
	kv := k.SigmaF * k.SigmaF * math.Exp(-0.5*s/l2)
	grad[0] = 2 * kv
	grad[1] = kv * s / l2
	if hess != nil {
		hess[0] = 4 * kv
		hess[1] = kv * (s*s/(l2*l2) - 2*s/l2)
	}
}

// EvalBatch fills dst[i] = k(xs[i], y) via one squared-distance pass and one
// transform pass. Both passes follow the exact operation order of Eval, so
// the batched and per-pair paths agree bit-for-bit.
func (k *SqExp) EvalBatch(dst []float64, xs [][]float64, y []float64) {
	mat.SqDistRowsTo(dst, xs, y)
	sf2 := k.SigmaF * k.SigmaF
	l2 := k.Len * k.Len
	for i, s := range dst {
		dst[i] = sf2 * math.Exp(-0.5*s/l2)
	}
}

// SecondSpectralMoment returns 1/ℓ².
func (k *SqExp) SecondSpectralMoment() float64 { return 1 / (k.Len * k.Len) }

// Clone returns a copy.
func (k *SqExp) Clone() Kernel { c := *k; return &c }

// String describes the kernel.
func (k *SqExp) String() string {
	return fmt.Sprintf("SqExp(σf=%.4g, ℓ=%.4g)", k.SigmaF, k.Len)
}

// Matern32 is the Matérn ν=3/2 kernel
//
//	k(x, x′) = σ_f² (1 + a t) exp(−a t),  a = √3/ℓ,  t = ‖x−x′‖,
//
// suited to once-mean-square-differentiable functions (paper §3.2).
type Matern32 struct {
	SigmaF float64
	Len    float64
}

// NewMatern32 returns a Matérn 3/2 kernel.
func NewMatern32(sigmaF, length float64) *Matern32 {
	if sigmaF <= 0 || length <= 0 {
		panic(fmt.Sprintf("kernel: non-positive Matern32 parameters σf=%g ℓ=%g", sigmaF, length))
	}
	return &Matern32{SigmaF: sigmaF, Len: length}
}

// Eval returns k(x, y).
func (k *Matern32) Eval(x, y []float64) float64 {
	t := mat.Dist2(x, y)
	a := math.Sqrt(3) / k.Len
	return k.SigmaF * k.SigmaF * (1 + a*t) * math.Exp(-a*t)
}

// NumParams returns 2.
func (k *Matern32) NumParams() int { return 2 }

// Params appends (log σ_f, log ℓ).
func (k *Matern32) Params(dst []float64) []float64 {
	return append(dst, math.Log(k.SigmaF), math.Log(k.Len))
}

// SetParams sets (log σ_f, log ℓ).
func (k *Matern32) SetParams(p []float64) {
	if len(p) != 2 {
		panic(fmt.Sprintf("kernel: Matern32 wants 2 params, got %d", len(p)))
	}
	k.SigmaF = math.Exp(p[0])
	k.Len = math.Exp(p[1])
}

// ParamGrad fills the log-space derivatives; with a = √3/ℓ, t = ‖x−y‖:
//
//	∂k/∂logℓ = σ_f² a² t² e^{−at},  ∂²k/∂logℓ² = σ_f² t² e^{−at}(a³t − 2a²)·(−1)
//
// (the sign worked out below), and the σ_f derivatives are 2k and 4k.
func (k *Matern32) ParamGrad(x, y []float64, grad, hess []float64) {
	t := mat.Dist2(x, y)
	a := math.Sqrt(3) / k.Len
	e := math.Exp(-a * t)
	sf2 := k.SigmaF * k.SigmaF
	kv := sf2 * (1 + a*t) * e
	grad[0] = 2 * kv
	// ∂k/∂a = −σ_f² a t² e^{−at}; ∂a/∂logℓ = −a ⇒ ∂k/∂logℓ = σ_f² a² t² e^{−at}.
	grad[1] = sf2 * a * a * t * t * e
	if hess != nil {
		hess[0] = 4 * kv
		// ∂/∂logℓ [σ_f² a² t² e^{−at}] = σ_f² t² e^{−at} (−2a² + a³ t)·(∂a/∂logℓ = −a applied)
		hess[1] = sf2 * t * t * e * (a*a*a*t - 2*a*a)
	}
}

// EvalBatch fills dst[i] = k(xs[i], y), batched like SqExp.EvalBatch.
func (k *Matern32) EvalBatch(dst []float64, xs [][]float64, y []float64) {
	mat.SqDistRowsTo(dst, xs, y)
	sf2 := k.SigmaF * k.SigmaF
	a := math.Sqrt(3) / k.Len
	for i, s := range dst {
		t := math.Sqrt(s)
		dst[i] = sf2 * (1 + a*t) * math.Exp(-a*t)
	}
}

// SecondSpectralMoment returns 3/ℓ².
func (k *Matern32) SecondSpectralMoment() float64 { return 3 / (k.Len * k.Len) }

// Clone returns a copy.
func (k *Matern32) Clone() Kernel { c := *k; return &c }

// String describes the kernel.
func (k *Matern32) String() string {
	return fmt.Sprintf("Matern32(σf=%.4g, ℓ=%.4g)", k.SigmaF, k.Len)
}

// Matern52 is the Matérn ν=5/2 kernel
//
//	k(x, x′) = σ_f² (1 + a t + a²t²/3) exp(−a t),  a = √5/ℓ.
type Matern52 struct {
	SigmaF float64
	Len    float64
}

// NewMatern52 returns a Matérn 5/2 kernel.
func NewMatern52(sigmaF, length float64) *Matern52 {
	if sigmaF <= 0 || length <= 0 {
		panic(fmt.Sprintf("kernel: non-positive Matern52 parameters σf=%g ℓ=%g", sigmaF, length))
	}
	return &Matern52{SigmaF: sigmaF, Len: length}
}

// Eval returns k(x, y).
func (k *Matern52) Eval(x, y []float64) float64 {
	t := mat.Dist2(x, y)
	a := math.Sqrt(5) / k.Len
	return k.SigmaF * k.SigmaF * (1 + a*t + a*a*t*t/3) * math.Exp(-a*t)
}

// NumParams returns 2.
func (k *Matern52) NumParams() int { return 2 }

// Params appends (log σ_f, log ℓ).
func (k *Matern52) Params(dst []float64) []float64 {
	return append(dst, math.Log(k.SigmaF), math.Log(k.Len))
}

// SetParams sets (log σ_f, log ℓ).
func (k *Matern52) SetParams(p []float64) {
	if len(p) != 2 {
		panic(fmt.Sprintf("kernel: Matern52 wants 2 params, got %d", len(p)))
	}
	k.SigmaF = math.Exp(p[0])
	k.Len = math.Exp(p[1])
}

// ParamGrad fills the log-space derivatives; with a = √5/ℓ, t = ‖x−y‖:
//
//	∂k/∂logℓ  = σ_f² e^{−at} (a²t²/3)(1 + at)
//	∂²k/∂logℓ² = σ_f² (t²/3) e^{−at} (a⁴t² − 2a³t − 2a²)
func (k *Matern52) ParamGrad(x, y []float64, grad, hess []float64) {
	t := mat.Dist2(x, y)
	a := math.Sqrt(5) / k.Len
	e := math.Exp(-a * t)
	sf2 := k.SigmaF * k.SigmaF
	kv := sf2 * (1 + a*t + a*a*t*t/3) * e
	grad[0] = 2 * kv
	grad[1] = sf2 * e * (a * a * t * t / 3) * (1 + a*t)
	if hess != nil {
		hess[0] = 4 * kv
		hess[1] = sf2 * (t * t / 3) * e * (a*a*a*a*t*t - 2*a*a*a*t - 2*a*a)
	}
}

// EvalBatch fills dst[i] = k(xs[i], y), batched like SqExp.EvalBatch.
func (k *Matern52) EvalBatch(dst []float64, xs [][]float64, y []float64) {
	mat.SqDistRowsTo(dst, xs, y)
	sf2 := k.SigmaF * k.SigmaF
	a := math.Sqrt(5) / k.Len
	for i, s := range dst {
		t := math.Sqrt(s)
		dst[i] = sf2 * (1 + a*t + a*a*t*t/3) * math.Exp(-a*t)
	}
}

// SecondSpectralMoment returns 5/(3ℓ²).
func (k *Matern52) SecondSpectralMoment() float64 { return 5 / (3 * k.Len * k.Len) }

// Clone returns a copy.
func (k *Matern52) Clone() Kernel { c := *k; return &c }

// String describes the kernel.
func (k *Matern52) String() string {
	return fmt.Sprintf("Matern52(σf=%.4g, ℓ=%.4g)", k.SigmaF, k.Len)
}

// Isotropic is implemented by kernels that are functions of the Euclidean
// distance only: k(x, y) = κ(‖x−y‖) with κ non-increasing. Local inference
// (paper §5.1) relies on this to bound the covariance between a sample
// bounding box and an excluded training point via the box's nearest and
// farthest points.
type Isotropic interface {
	Kernel
	// EvalDist returns κ(d) for distance d ≥ 0.
	EvalDist(d float64) float64
}

// EvalDist returns κ(d) for the squared-exponential kernel.
func (k *SqExp) EvalDist(d float64) float64 {
	return k.SigmaF * k.SigmaF * math.Exp(-0.5*d*d/(k.Len*k.Len))
}

// EvalDist returns κ(d) for the Matérn 3/2 kernel.
func (k *Matern32) EvalDist(d float64) float64 {
	a := math.Sqrt(3) / k.Len
	return k.SigmaF * k.SigmaF * (1 + a*d) * math.Exp(-a*d)
}

// EvalDist returns κ(d) for the Matérn 5/2 kernel.
func (k *Matern52) EvalDist(d float64) float64 {
	a := math.Sqrt(5) / k.Len
	return k.SigmaF * k.SigmaF * (1 + a*d + a*a*d*d/3) * math.Exp(-a*d)
}

// RadiusFor returns the smallest distance r at which κ(r) ≤ target, found by
// doubling then bisection (κ is non-increasing). It returns 0 if already
// κ(0) ≤ target and maxR if κ(maxR) > target.
func RadiusFor(k Isotropic, target, maxR float64) float64 {
	if k.EvalDist(0) <= target {
		return 0
	}
	if k.EvalDist(maxR) > target {
		return maxR
	}
	lo, hi := 0.0, maxR
	for i := 0; i < 100 && hi-lo > 1e-9*(1+hi); i++ {
		mid := (lo + hi) / 2
		if k.EvalDist(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
