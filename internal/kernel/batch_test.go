package kernel

import (
	"math/rand"
	"testing"
)

// scalarOnly hides a kernel's BatchEvaler implementation, forcing CrossVec,
// Cross, and GramInto down the per-pair path — the reference the batched
// path is differential-tested against.
type scalarOnly struct{ k Kernel }

func (s scalarOnly) Eval(x, y []float64) float64              { return s.k.Eval(x, y) }
func (s scalarOnly) NumParams() int                           { return s.k.NumParams() }
func (s scalarOnly) Params(dst []float64) []float64           { return s.k.Params(dst) }
func (s scalarOnly) SetParams(p []float64)                    { s.k.SetParams(p) }
func (s scalarOnly) ParamGrad(x, y []float64, g, h []float64) { s.k.ParamGrad(x, y, g, h) }
func (s scalarOnly) SecondSpectralMoment() float64            { return s.k.SecondSpectralMoment() }
func (s scalarOnly) Clone() Kernel                            { return scalarOnly{s.k.Clone()} }
func (s scalarOnly) String() string                           { return s.k.String() }

func batchTestKernels(d int) map[string]Kernel {
	lens := make([]float64, d)
	for i := range lens {
		lens[i] = 0.5 + 0.3*float64(i)
	}
	return map[string]Kernel{
		"sqexp":    NewSqExp(1.3, 0.7),
		"matern32": NewMatern32(0.9, 1.1),
		"matern52": NewMatern52(1.1, 0.6),
		"ard":      NewSqExpARD(1.2, lens),
	}
}

func randPoints(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64() * 2
		}
	}
	return out
}

// TestEvalBatchBitIdenticalToEval is the vectorization contract: for every
// kernel the batched row must agree with per-pair Eval calls bit for bit —
// not to a tolerance — because downstream determinism (parallel replay,
// envelope equality) assumes one evaluation path.
func TestEvalBatchBitIdenticalToEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{1, 2, 3, 5} {
		for name, k := range batchTestKernels(d) {
			be, ok := k.(BatchEvaler)
			if !ok {
				t.Fatalf("%s does not implement BatchEvaler", name)
			}
			xs := randPoints(rng, 37, d)
			y := randPoints(rng, 1, d)[0]
			dst := make([]float64, len(xs))
			be.EvalBatch(dst, xs, y)
			for i, x := range xs {
				if want := k.Eval(x, y); dst[i] != want {
					t.Fatalf("%s d=%d row %d: batch %g ≠ eval %g", name, d, i, dst[i], want)
				}
			}
		}
	}
}

// TestCrossVecGramBatchedMatchesScalar compares the batched CrossVec / Cross
// / GramInto against the same entry points forced down the per-pair path.
func TestCrossVecGramBatchedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{1, 2, 4} {
		for name, k := range batchTestKernels(d) {
			ref := scalarOnly{k}
			xs := randPoints(rng, 19, d)
			ys := randPoints(rng, 7, d)

			got := CrossVec(k, xs, ys[0], nil)
			want := CrossVec(ref, xs, ys[0], nil)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s d=%d: CrossVec[%d] %g ≠ %g", name, d, i, got[i], want[i])
				}
			}

			gm := GramInto(nil, k, xs)
			wm := GramInto(nil, ref, xs)
			for i := 0; i < len(xs); i++ {
				for j := 0; j < len(xs); j++ {
					if gm.At(i, j) != wm.At(i, j) {
						t.Fatalf("%s d=%d: Gram[%d][%d] %g ≠ %g", name, d, i, j, gm.At(i, j), wm.At(i, j))
					}
				}
			}

			cm := Cross(k, xs, ys)
			cw := Cross(ref, xs, ys)
			for i := 0; i < len(xs); i++ {
				for j := 0; j < len(ys); j++ {
					if cm.At(i, j) != cw.At(i, j) {
						t.Fatalf("%s d=%d: Cross[%d][%d] %g ≠ %g", name, d, i, j, cm.At(i, j), cw.At(i, j))
					}
				}
			}
		}
	}
}

// TestGramIntoBatchedSymmetric confirms the batched row fill mirrors the
// upper triangle exactly.
func TestGramIntoBatchedSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := randPoints(rng, 23, 3)
	g := GramInto(nil, NewSqExp(1, 0.8), xs)
	for i := 0; i < len(xs); i++ {
		for j := 0; j < len(xs); j++ {
			if g.At(i, j) != g.At(j, i) {
				t.Fatalf("Gram asymmetric at (%d,%d)", i, j)
			}
		}
	}
}
