package kernel

import (
	"fmt"
	"math"

	"olgapro/internal/mat"
)

// SqExpARD is the squared-exponential kernel with Automatic Relevance
// Determination: one lengthscale per input dimension,
//
//	k(x, x′) = σ_f² exp(−½ Σ_j (x_j − x′_j)²/ℓ_j²).
//
// The paper's future work calls out "a wider range of functions such as
// high-dimensional input" (§8); ARD lets maximum-likelihood training learn
// which of many input dimensions actually matter — irrelevant dimensions
// get long lengthscales and stop inflating the training-point requirement.
//
// SqExpARD is not isotropic, so OLGAPRO falls back to global inference for
// it unless the lengthscales happen to be equal; see NormalizedIsotropic.
type SqExpARD struct {
	SigmaF float64
	Lens   []float64 // per-dimension lengthscales ℓ_j
}

// NewSqExpARD returns an ARD kernel with the given per-dimension
// lengthscales.
func NewSqExpARD(sigmaF float64, lens []float64) *SqExpARD {
	if sigmaF <= 0 {
		panic(fmt.Sprintf("kernel: non-positive ARD σf=%g", sigmaF))
	}
	if len(lens) == 0 {
		panic("kernel: ARD needs at least one lengthscale")
	}
	cp := make([]float64, len(lens))
	for i, l := range lens {
		if l <= 0 {
			panic(fmt.Sprintf("kernel: non-positive ARD ℓ[%d]=%g", i, l))
		}
		cp[i] = l
	}
	return &SqExpARD{SigmaF: sigmaF, Lens: cp}
}

// Dim returns the number of input dimensions.
func (k *SqExpARD) Dim() int { return len(k.Lens) }

// Eval returns k(x, y).
func (k *SqExpARD) Eval(x, y []float64) float64 {
	if len(x) != len(k.Lens) || len(y) != len(k.Lens) {
		panic(fmt.Sprintf("kernel: ARD dims %d/%d ≠ %d", len(x), len(y), len(k.Lens)))
	}
	var s float64
	for j, l := range k.Lens {
		d := (x[j] - y[j]) / l
		s += d * d
	}
	return k.SigmaF * k.SigmaF * math.Exp(-0.5*s)
}

// EvalBatch fills dst[i] = k(xs[i], y). The scaled squared distance keeps
// Eval's per-dimension division so both paths agree bit-for-bit; batching
// still hoists the interface dispatch and dimension check out of the loop.
func (k *SqExpARD) EvalBatch(dst []float64, xs [][]float64, y []float64) {
	d := len(k.Lens)
	if len(y) != d {
		panic(fmt.Sprintf("kernel: ARD dim %d ≠ %d", len(y), d))
	}
	if len(dst) != len(xs) {
		panic(fmt.Sprintf("kernel: ARD batch dst length %d ≠ %d", len(dst), len(xs)))
	}
	sf2 := k.SigmaF * k.SigmaF
	for i, row := range xs {
		if len(row) != d {
			panic(fmt.Sprintf("kernel: ARD dims %d ≠ %d", len(row), d))
		}
		var s float64
		for j, l := range k.Lens {
			v := (row[j] - y[j]) / l
			s += v * v
		}
		dst[i] = sf2 * math.Exp(-0.5*s)
	}
}

// NumParams returns 1 + d: (log σ_f, log ℓ_1, …, log ℓ_d).
func (k *SqExpARD) NumParams() int { return 1 + len(k.Lens) }

// Params appends the log-space hyperparameters.
func (k *SqExpARD) Params(dst []float64) []float64 {
	dst = append(dst, math.Log(k.SigmaF))
	for _, l := range k.Lens {
		dst = append(dst, math.Log(l))
	}
	return dst
}

// SetParams sets the log-space hyperparameters.
func (k *SqExpARD) SetParams(p []float64) {
	if len(p) != k.NumParams() {
		panic(fmt.Sprintf("kernel: ARD wants %d params, got %d", k.NumParams(), len(p)))
	}
	k.SigmaF = math.Exp(p[0])
	for j := range k.Lens {
		k.Lens[j] = math.Exp(p[j+1])
	}
}

// ParamGrad fills log-space derivatives. With s_j = (x_j−y_j)²/ℓ_j²:
//
//	∂k/∂logσ_f = 2k             ∂²k/∂logσ_f² = 4k
//	∂k/∂logℓ_j = k·s_j          ∂²k/∂logℓ_j² = k·(s_j² − 2 s_j)
func (k *SqExpARD) ParamGrad(x, y []float64, grad, hess []float64) {
	var total float64
	sj := make([]float64, len(k.Lens))
	for j, l := range k.Lens {
		d := (x[j] - y[j]) / l
		sj[j] = d * d
		total += d * d
	}
	kv := k.SigmaF * k.SigmaF * math.Exp(-0.5*total)
	grad[0] = 2 * kv
	if hess != nil {
		hess[0] = 4 * kv
	}
	for j := range k.Lens {
		grad[j+1] = kv * sj[j]
		if hess != nil {
			hess[j+1] = kv * (sj[j]*sj[j] - 2*sj[j])
		}
	}
}

// SecondSpectralMoment returns the most conservative (largest) per-dimension
// moment 1/min(ℓ)² — confidence bands built from it are valid (wider) for
// every axis.
func (k *SqExpARD) SecondSpectralMoment() float64 {
	min := k.Lens[0]
	for _, l := range k.Lens[1:] {
		if l < min {
			min = l
		}
	}
	return 1 / (min * min)
}

// Clone returns a deep copy.
func (k *SqExpARD) Clone() Kernel {
	return NewSqExpARD(k.SigmaF, k.Lens)
}

// String describes the kernel.
func (k *SqExpARD) String() string {
	return fmt.Sprintf("SqExpARD(σf=%.4g, ℓ=%v)", k.SigmaF, k.Lens)
}

// Relevances returns 1/ℓ_j² per dimension, normalized to sum to 1 — a
// standard reading of which inputs the learned function actually depends on.
func (k *SqExpARD) Relevances() []float64 {
	out := make([]float64, len(k.Lens))
	var total float64
	for j, l := range k.Lens {
		out[j] = 1 / (l * l)
		total += out[j]
	}
	if total > 0 {
		mat.ScaleVec(1/total, out)
	}
	return out
}
