package kernel

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"olgapro/internal/mat"
)

func kernels() []Kernel {
	return []Kernel{
		NewSqExp(1.3, 0.8),
		NewMatern32(0.9, 1.4),
		NewMatern52(1.1, 0.6),
	}
}

func randomPoints(rng *rand.Rand, n, d int) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, d)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64() * 3
		}
	}
	return xs
}

func TestKernelBasicProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range kernels() {
		name := k.String()
		x := []float64{0.3, -1.2}
		y := []float64{1.1, 0.4}
		// Symmetry.
		if k.Eval(x, y) != k.Eval(y, x) {
			t.Errorf("%s: k(x,y) ≠ k(y,x)", name)
		}
		// Diagonal dominance: k(x,x) = σf² ≥ k(x,y).
		if k.Eval(x, x) < k.Eval(x, y) {
			t.Errorf("%s: k(x,x) < k(x,y)", name)
		}
		// Decay with distance.
		far := []float64{100, 100}
		if k.Eval(x, far) > 1e-6 {
			t.Errorf("%s: no decay at distance: %g", name, k.Eval(x, far))
		}
		// Positive everywhere.
		for trial := 0; trial < 20; trial++ {
			a := []float64{rng.NormFloat64(), rng.NormFloat64()}
			b := []float64{rng.NormFloat64(), rng.NormFloat64()}
			if k.Eval(a, b) <= 0 {
				t.Errorf("%s: non-positive covariance", name)
			}
		}
	}
}

func TestGramIsPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range kernels() {
		xs := randomPoints(rng, 20, 3)
		g := Gram(k, xs)
		// Symmetric.
		if !mat.Equal(g, g.T(), 1e-14) {
			t.Errorf("%s: Gram not symmetric", k.String())
		}
		// PSD: Cholesky with tiny jitter must succeed.
		var c mat.Cholesky
		if _, err := c.FactorizeJittered(g, 1e-10, 8); err != nil {
			t.Errorf("%s: Gram not PSD: %v", k.String(), err)
		}
	}
}

func TestParamsRoundTrip(t *testing.T) {
	for _, k := range kernels() {
		p := k.Params(nil)
		if len(p) != k.NumParams() {
			t.Fatalf("%s: params len %d ≠ %d", k.String(), len(p), k.NumParams())
		}
		before := k.Eval([]float64{1}, []float64{2})
		k.SetParams(p)
		after := k.Eval([]float64{1}, []float64{2})
		if math.Abs(before-after) > 1e-12 {
			t.Errorf("%s: params round trip changed kernel: %g → %g", k.String(), before, after)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	k := NewSqExp(1, 1)
	c := k.Clone()
	k.SetParams([]float64{math.Log(5), math.Log(5)})
	if c.Eval([]float64{0}, []float64{0}) != 1 {
		t.Errorf("Clone shares state")
	}
}

// Finite-difference validation of analytic gradients and diagonal Hessians.
func TestParamGradFiniteDifference(t *testing.T) {
	x := []float64{0.5, -0.3}
	y := []float64{1.2, 0.7}
	const h = 1e-5
	for _, k := range kernels() {
		name := k.String()
		np := k.NumParams()
		grad := make([]float64, np)
		hess := make([]float64, np)
		k.ParamGrad(x, y, grad, hess)
		base := k.Params(nil)
		for j := 0; j < np; j++ {
			perturb := func(delta float64) float64 {
				p := append([]float64(nil), base...)
				p[j] += delta
				kc := k.Clone()
				kc.SetParams(p)
				return kc.Eval(x, y)
			}
			fp, fm, f0 := perturb(h), perturb(-h), perturb(0)
			fdGrad := (fp - fm) / (2 * h)
			fdHess := (fp - 2*f0 + fm) / (h * h)
			if math.Abs(fdGrad-grad[j]) > 1e-6*(1+math.Abs(fdGrad)) {
				t.Errorf("%s: grad[%d] = %g, finite diff %g", name, j, grad[j], fdGrad)
			}
			if math.Abs(fdHess-hess[j]) > 1e-4*(1+math.Abs(fdHess)) {
				t.Errorf("%s: hess[%d] = %g, finite diff %g", name, j, hess[j], fdHess)
			}
		}
	}
}

// Finite-difference validation of the second spectral moment:
// λ₂ = −r″(0) with r(t) = k(t)/k(0) along one axis.
func TestSecondSpectralMoment(t *testing.T) {
	const h = 1e-4
	for _, k := range kernels() {
		name := k.String()
		origin := []float64{0}
		at := func(t float64) float64 { return k.Eval(origin, []float64{t}) }
		k0 := at(0)
		// Central second difference of r(t) at 0 (r is even, so r(h)=r(−h)).
		rpp := (at(h) - 2*k0 + at(h)) / (h * h) / k0
		got := k.SecondSpectralMoment()
		if math.Abs(-rpp-got) > 1e-2*(1+got) {
			t.Errorf("%s: spectral moment %g, finite diff %g", name, got, -rpp)
		}
	}
}

func TestCrossAndCrossVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k := NewSqExp(1, 1)
	xs := randomPoints(rng, 4, 2)
	ys := randomPoints(rng, 3, 2)
	c := Cross(k, xs, ys)
	if r, co := c.Dims(); r != 4 || co != 3 {
		t.Fatalf("Cross dims %d×%d", r, co)
	}
	for i := range xs {
		for j := range ys {
			if c.At(i, j) != k.Eval(xs[i], ys[j]) {
				t.Fatalf("Cross(%d,%d) mismatch", i, j)
			}
		}
	}
	v := CrossVec(k, xs, ys[0], nil)
	for i := range xs {
		if v[i] != c.At(i, 0) {
			t.Fatalf("CrossVec mismatch at %d", i)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSqExp(0, 1) },
		func() { NewSqExp(1, -1) },
		func() { NewMatern32(0, 1) },
		func() { NewMatern52(1, 0) },
		func() { NewSqExp(1, 1).SetParams([]float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStringContainsParams(t *testing.T) {
	k := NewSqExp(2, 3)
	s := k.String()
	if !strings.Contains(s, "SqExp") || !strings.Contains(s, "2") || !strings.Contains(s, "3") {
		t.Errorf("String = %q", s)
	}
}

// Property: quadratic forms of Gram matrices are non-negative (PSD-ness)
// for random points and coefficient vectors.
func TestQuickGramQuadraticNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := kernels()[rng.Intn(3)]
		n := 2 + rng.Intn(10)
		xs := randomPoints(rng, n, 1+rng.Intn(3))
		g := Gram(k, xs)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		quad := mat.Dot(v, g.MulVec(v))
		return quad >= -1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: lengthscale ordering — longer lengthscales keep covariance
// higher at any fixed distance.
func TestQuickLengthscaleMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		t0 := math.Abs(rng.NormFloat64()) + 0.01
		l1 := 0.1 + rng.Float64()
		l2 := l1 + 0.1 + rng.Float64()
		x, y := []float64{0}, []float64{t0}
		for _, pair := range [][2]Kernel{
			{NewSqExp(1, l1), NewSqExp(1, l2)},
			{NewMatern32(1, l1), NewMatern32(1, l2)},
			{NewMatern52(1, l1), NewMatern52(1, l2)},
		} {
			if pair[0].Eval(x, y) > pair[1].Eval(x, y)+1e-14 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSqExpEval(b *testing.B) {
	k := NewSqExp(1, 1)
	x := []float64{1, 2, 3, 4}
	y := []float64{0, 1, 2, 3}
	for i := 0; i < b.N; i++ {
		k.Eval(x, y)
	}
}

func BenchmarkGram100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	k := NewSqExp(1, 1)
	xs := randomPoints(rng, 100, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gram(k, xs)
	}
}
