package server

import (
	"net/http/httptest"
	"strings"
	"testing"

	"olgapro/internal/server/wire"
)

// TestMuxCoversCanonicalRoutes pins the shard mux to wire.Routes: every
// shard-scoped entry must resolve to a registered handler, and
// router-only entries must not — the shard cannot quietly grow or drop
// surface relative to the canonical table.
func TestMuxCoversCanonicalRoutes(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, rt := range wire.Routes {
		req := httptest.NewRequest(rt.Method, strings.ReplaceAll(rt.Path, "{name}", "x"), nil)
		_, pattern := s.mux.Handler(req)
		if rt.Scope == wire.ScopeRouter {
			if pattern != "" {
				t.Errorf("router-only route %s %s resolves on the shard mux (pattern %q)",
					rt.Method, rt.Path, pattern)
			}
			continue
		}
		if pattern == "" {
			t.Errorf("route %s %s does not resolve on the shard mux", rt.Method, rt.Path)
		}
	}
}
