package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"

	"olgapro/internal/server/wire"
)

// queryRows builds n deterministic query rows over the smooth 2-D UDF's
// input space, labeled round-robin into nGroups groups.
func queryRows(n, nGroups int) []map[string]any {
	rng := rand.New(rand.NewSource(9))
	rows := make([]map[string]any, n)
	for i := range rows {
		rows[i] = map[string]any{
			"input": wire.InputSpec{
				{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.1},
				{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.1},
			},
		}
		if nGroups > 0 {
			rows[i]["group"] = string(rune('a' + i%nGroups))
		}
	}
	return rows
}

func TestQueryTopKDeterministicReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)
	req := map[string]any{
		"udf": name, "rows": queryRows(10, 0), "seed": 21,
		"topk": map[string]any{"k": 3, "by": "y", "desc": true},
	}
	resp, body := postJSON(t, ts.URL+"/v1/query", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var qr wire.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.UDF != name || qr.Dropped != 0 {
		t.Fatalf("header: %+v", qr)
	}
	if len(qr.Rows) < 3 {
		t.Fatalf("top-3 possible answer set has %d rows", len(qr.Rows))
	}
	for _, row := range qr.Rows {
		var rank *wire.QueryValue
		for i := range row {
			if row[i].Name == "rank" {
				rank = &row[i]
			}
		}
		if rank == nil || rank.Kind != "bounded" || rank.Bounded == nil {
			t.Fatalf("row missing bounded rank: %+v", row)
		}
		if rank.Bounded.Lo < 1 || rank.Bounded.Hi < rank.Bounded.Lo {
			t.Fatalf("rank interval: %+v", rank.Bounded)
		}
	}

	// Frozen clones + per-tuple seeding: replaying the query is
	// byte-identical.
	resp2, body2 := postJSON(t, ts.URL+"/v1/query", req)
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body, body2) {
		t.Fatalf("replay diverged:\n%s\nvs\n%s", body, body2)
	}
}

func TestQueryWindowThenTopK(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)
	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"udf": name, "rows": queryRows(9, 0), "seed": 4,
		"window": map[string]any{
			"size": 4, "step": 2,
			"aggs": []map[string]any{{"kind": "count"}, {"kind": "avg", "attr": "y"}},
		},
		"topk": map[string]any{"k": 2, "by": "avg_y", "desc": true},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var qr wire.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	// 3 complete windows ([0,4) [2,6) [4,8)) ranked top-2: at least 2 rows.
	if len(qr.Rows) < 2 {
		t.Fatalf("%d rows", len(qr.Rows))
	}
	got := map[string]bool{}
	for _, v := range qr.Rows[0] {
		got[v.Name] = true
		switch v.Name {
		case "count":
			if v.Bounded == nil || v.Bounded.Lo != 4 || v.Bounded.Hi != 4 || !v.Bounded.Certain {
				t.Fatalf("window count: %+v", v.Bounded)
			}
		case "avg_y":
			if v.Bounded == nil || v.Bounded.Lo > v.Bounded.Hi {
				t.Fatalf("avg bounds: %+v", v.Bounded)
			}
		}
	}
	for _, want := range []string{"win_start", "win_end", "count", "avg_y", "rank"} {
		if !got[want] {
			t.Fatalf("row misses %q: %v", want, qr.Rows[0])
		}
	}
}

func TestQueryGroupByWithPredicate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)
	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"udf": name, "rows": queryRows(12, 3), "seed": 8,
		// Wide range keeps most tuples, but TEP bounds make group counts
		// intervals rather than exact values.
		"predicate": map[string]any{"a": 0.0, "b": 1.2, "theta": 0.05},
		"group_by": map[string]any{
			"keys": []string{"g"},
			"aggs": []map[string]any{{"kind": "count"}, {"kind": "max", "attr": "y"}},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var qr wire.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows)+qr.Dropped == 0 || len(qr.Rows) > 3 {
		t.Fatalf("groups: %d rows, %d dropped", len(qr.Rows), qr.Dropped)
	}
	for _, row := range qr.Rows {
		byName := map[string]wire.QueryValue{}
		for _, v := range row {
			byName[v.Name] = v
		}
		if byName["g"].Kind != "string" {
			t.Fatalf("group key: %+v", byName["g"])
		}
		cnt := byName["count"].Bounded
		if cnt == nil || cnt.Lo < 0 || cnt.Hi < cnt.Lo || cnt.Hi > 12 {
			t.Fatalf("count bounds: %+v", cnt)
		}
		mx := byName["max_y"].Bounded
		if mx == nil || mx.Lo > mx.Hi {
			t.Fatalf("max bounds: %+v", mx)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)
	cases := []struct {
		label string
		req   map[string]any
		code  int
	}{
		{"unknown udf", map[string]any{"udf": "nope", "rows": queryRows(1, 0)}, http.StatusNotFound},
		{"no rows", map[string]any{"udf": name}, http.StatusBadRequest},
		{"dim mismatch", map[string]any{"udf": name, "rows": []map[string]any{
			{"input": wire.InputSpec{{Type: "normal", Mu: 0.5, Sigma: 0.1}}},
		}}, http.StatusBadRequest},
		{"bad predicate", map[string]any{"udf": name, "rows": queryRows(1, 0),
			"predicate": map[string]any{"a": 2.0, "b": 1.0, "theta": 0.1}}, http.StatusBadRequest},
		{"bad topk", map[string]any{"udf": name, "rows": queryRows(1, 0),
			"topk": map[string]any{"k": 2}}, http.StatusBadRequest},
		{"bad window", map[string]any{"udf": name, "rows": queryRows(1, 0),
			"window": map[string]any{"size": 0}}, http.StatusBadRequest},
		{"bad group-by", map[string]any{"udf": name, "rows": queryRows(1, 0),
			"group_by": map[string]any{"keys": []string{}}}, http.StatusBadRequest},
		{"unknown field", map[string]any{"udf": name, "rows": queryRows(1, 0),
			"bogus": 1}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/query", c.req)
		if resp.StatusCode != c.code {
			t.Errorf("%s: %d (want %d): %s", c.label, resp.StatusCode, c.code, body)
		}
	}
}
