package server

// This file is the one place HTTP failures are shaped: every handler
// refuses a request through Server.fail (or Server.failErr for evaluation-
// path errors), so every non-2xx response on the /v1 surface — and on the
// legacy aliases — carries the same structured JSON envelope
//
//	{"error":{"code":"over_capacity","message":"…","retry_after_ms":1000}}
//
// with a stable machine-readable code (wire.ErrorCode). Clients dispatch
// on the code; the message is for humans.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"olgapro/internal/server/wire"
)

// retryAfterMS is the backoff hint attached to over_capacity refusals,
// mirrored in both the Retry-After header (seconds, rounded up) and the
// envelope's retry_after_ms field.
const retryAfterMS = 1000

// fail writes the structured error envelope with the given status and code.
func (s *Server) fail(w http.ResponseWriter, status int, code wire.ErrorCode, format string, args ...any) {
	env := wire.ErrorEnvelope{Error: wire.ErrorDetail{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}}
	if code == wire.CodeOverCapacity {
		env.Error.RetryAfterMS = retryAfterMS
	}
	writeEnvelope(w, status, env)
}

// writeEnvelope emits env as the response body; shared with the router so
// both layers refuse requests with identical bytes for identical failures.
func writeEnvelope(w http.ResponseWriter, status int, env wire.ErrorEnvelope) {
	w.Header().Set("Content-Type", "application/json")
	if env.Error.RetryAfterMS > 0 {
		secs := (env.Error.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(env)
}

// badRequest marks a client-side input error (malformed line, arity
// mismatch) so errClass can map it to 400/bad_spec without string matching.
type badRequest struct{ msg string }

func (b badRequest) Error() string { return b.msg }

// badReqf builds a badRequest error.
func badReqf(format string, args ...any) error {
	return badRequest{msg: fmt.Sprintf(format, args...)}
}

// errClass maps evaluation-path errors to (HTTP status, envelope code).
// The mapping is 1:1 with the documented /v1 error surface.
func errClass(err error) (int, wire.ErrorCode) {
	var br badRequest
	switch {
	case errors.As(err, &br):
		return http.StatusBadRequest, wire.CodeBadSpec
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable, wire.CodeDraining
	case errors.Is(err, errNotWarm):
		return http.StatusConflict, wire.CodeModelCold
	case errors.Is(err, errNotOwner):
		return http.StatusConflict, wire.CodeNotOwner
	case errors.Is(err, errAlreadyRegistered):
		return http.StatusConflict, wire.CodeAlreadyExists
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, wire.CodeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, wire.CodeDeadlineExceeded
	default:
		return http.StatusInternalServerError, wire.CodeInternal
	}
}

// failErr classifies err and writes its envelope.
func (s *Server) failErr(w http.ResponseWriter, err error, format string, args ...any) {
	status, code := errClass(err)
	s.fail(w, status, code, format, args...)
}
