package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"olgapro/internal/core"
	"olgapro/internal/exec"
	"olgapro/internal/server/wire"
)

// newTestServer boots a server (optionally with a snapshot dir) and returns
// it with its HTTP test harness.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// registerSmooth registers the smooth analytic UDF with generous ε and a
// warm-up batch, returning its instance name.
func registerSmooth(t *testing.T, baseURL string) string {
	t.Helper()
	warmup := make([]wire.InputSpec, 8)
	rng := rand.New(rand.NewSource(5))
	for i := range warmup {
		warmup[i] = wire.InputSpec{
			{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.15},
			{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.15},
		}
	}
	resp, body := postJSON(t, baseURL+"/udfs", map[string]any{
		"udf": "poly/smooth2d", "eps": 0.2, "delta": 0.1,
		"warmup": warmup, "warmup_seed": 77,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	var info udfInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.TrainingPoints < 2 {
		t.Fatalf("warm-up left %d training points, want ≥ 2", info.TrainingPoints)
	}
	return info.Name
}

func TestCatalogAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var cat struct {
		UDFs []CatalogEntry `json:"udfs"`
	}
	if resp := getJSON(t, ts.URL+"/catalog", &cat); resp.StatusCode != 200 {
		t.Fatalf("catalog: %d", resp.StatusCode)
	}
	if len(cat.UDFs) < 6 {
		t.Fatalf("catalog has %d entries, want ≥ 6", len(cat.UDFs))
	}
	names := map[string]bool{}
	for _, e := range cat.UDFs {
		names[e.Name] = true
		if e.Dim <= 0 {
			t.Fatalf("%s has dim %d", e.Name, e.Dim)
		}
	}
	for _, want := range []string{"astro/galage", "astro/comovevol", "mix/f1", "mix/f4", "poly/smooth2d"} {
		if !names[want] {
			t.Fatalf("catalog missing %q", want)
		}
	}
	var hz map[string]any
	if resp := getJSON(t, ts.URL+"/healthz", &hz); resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if hz["status"] != "ok" {
		t.Fatalf("healthz status %v", hz["status"])
	}
}

func TestRegisterValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		body   string
		status int
	}{
		{`{"udf":"nope/missing"}`, 400},
		{`{}`, 400},
		{`{"udf":"mix/f1","name":"bad name!"}`, 400},
		{`{"udf":"mix/f1","eps":-1}`, 400},
		{`{"udf":"mix/f1","eps":2}`, 400},
		{`{"udf":"mix/f1","bogus_field":1}`, 400},
		{`not json`, 400},
		{`{"udf":"mix/f1","warmup":[[{"type":"normal","mu":1,"sigma":1}]]}`, 400}, // dim 1 ≠ 2
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/udfs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Fatalf("register %s: got %d, want %d", c.body, resp.StatusCode, c.status)
		}
	}
	// Valid, then duplicate.
	if resp, body := postJSON(t, ts.URL+"/udfs", map[string]any{"udf": "mix/f1"}); resp.StatusCode != 201 {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts.URL+"/udfs", map[string]any{"udf": "mix/f1"}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register: %d, want 409", resp.StatusCode)
	}
	var list struct {
		UDFs []udfInfo `json:"udfs"`
	}
	getJSON(t, ts.URL+"/udfs", &list)
	if len(list.UDFs) != 1 || list.UDFs[0].Name != "mix-f1" {
		t.Fatalf("udfs list: %+v", list.UDFs)
	}
}

func TestEvalLearnAndFrozenDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)

	evalURL := fmt.Sprintf("%s/udfs/%s/eval", ts.URL, name)
	input := wire.InputSpec{
		{Type: "normal", Mu: 0.5, Sigma: 0.1},
		{Type: "mixture", Weights: []float64{1, 1}, Components: []wire.DistSpec{
			{Type: "normal", Mu: 0.4, Sigma: 0.05},
			{Type: "uniform", Lo: 0.5, Hi: 0.7},
		}},
	}

	// Learn-mode eval returns a result satisfying the contract fields.
	resp, body := postJSON(t, evalURL, map[string]any{"input": input, "seed": 3})
	if resp.StatusCode != 200 {
		t.Fatalf("learn eval: %d %s", resp.StatusCode, body)
	}
	var r1 EvalResult
	if err := json.Unmarshal(body, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Engine != "GP" {
		t.Fatalf("engine %q, want GP", r1.Engine)
	}
	if r1.Bound <= 0 || r1.Eps != 0.2 {
		t.Fatalf("bound/eps: %+v", r1)
	}
	if r1.SupportHash == "" || len(r1.Quantiles) != 5 {
		t.Fatalf("missing dist summary: %+v", r1)
	}
	if r1.Quantiles["p05"] > r1.Quantiles["p50"] || r1.Quantiles["p50"] > r1.Quantiles["p95"] {
		t.Fatalf("quantiles out of order: %+v", r1.Quantiles)
	}

	// Frozen evals with one seed are bit-identical to each other …
	frozen := func(seed int64) EvalResult {
		learn := false
		resp, body := postJSON(t, evalURL, map[string]any{"input": input, "seed": seed, "learn": &learn})
		if resp.StatusCode != 200 {
			t.Fatalf("frozen eval: %d %s", resp.StatusCode, body)
		}
		var r EvalResult
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := frozen(42), frozen(42)
	if a.SupportHash != b.SupportHash || a.Bound != b.Bound || a.Mean != b.Mean {
		t.Fatalf("frozen replay diverged: %+v vs %+v", a, b)
	}
	if a.UDFCalls != 0 || a.PointsAdded != 0 {
		t.Fatalf("frozen eval paid UDF calls: %+v", a)
	}
	// … and a different seed gives a different sample set.
	if c := frozen(43); c.SupportHash == a.SupportHash {
		t.Fatal("distinct seeds produced identical samples")
	}
}

func TestEvalValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)
	evalURL := fmt.Sprintf("%s/udfs/%s/eval", ts.URL, name)

	if resp, _ := postJSON(t, ts.URL+"/udfs/ghost/eval", map[string]any{"input": wire.InputSpec{}}); resp.StatusCode != 404 {
		t.Fatalf("unknown UDF: %d, want 404", resp.StatusCode)
	}
	// Wrong arity.
	if resp, _ := postJSON(t, evalURL, map[string]any{
		"input": wire.InputSpec{{Type: "normal", Mu: 1, Sigma: 1}},
	}); resp.StatusCode != 400 {
		t.Fatalf("wrong dim: %d, want 400", resp.StatusCode)
	}
	// Invalid distribution.
	if resp, _ := postJSON(t, evalURL, map[string]any{
		"input": wire.InputSpec{{Type: "normal", Mu: 1, Sigma: -1}, {Type: "constant"}},
	}); resp.StatusCode != 400 {
		t.Fatalf("bad sigma: %d, want 400", resp.StatusCode)
	}
	// Garbage body.
	resp, err := http.Post(evalURL, "application/json", strings.NewReader("{{{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("garbage: %d, want 400", resp.StatusCode)
	}
}

func TestFrozenBeforeWarmConflicts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Register without warm-up: no training points.
	resp, body := postJSON(t, ts.URL+"/udfs", map[string]any{"udf": "poly/smooth2d", "eps": 0.2})
	if resp.StatusCode != 201 {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	learn := false
	resp, body = postJSON(t, ts.URL+"/udfs/poly-smooth2d/eval", map[string]any{
		"input": wire.InputSpec{{Type: "normal", Mu: 0.5, Sigma: 0.1}, {Type: "normal", Mu: 0.5, Sigma: 0.1}},
		"learn": &learn,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("frozen on cold model: %d %s, want 409", resp.StatusCode, body)
	}
}

// streamNDJSON posts lines to a stream endpoint and returns the raw
// response plus parsed lines.
func streamNDJSON(t *testing.T, url string, lines []wire.InputSpec) (int, string, []streamResult) {
	t.Helper()
	var buf bytes.Buffer
	for _, in := range lines {
		b, err := json.Marshal(streamLine{Input: in})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	resp, err := http.Post(url, "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var results []streamResult
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var r streamResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		results = append(results, r)
	}
	return resp.StatusCode, string(raw), results
}

func testInputs(n int) []wire.InputSpec {
	rng := rand.New(rand.NewSource(31))
	lines := make([]wire.InputSpec, n)
	for i := range lines {
		lines[i] = wire.InputSpec{
			{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.12},
			{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.12},
		}
	}
	return lines
}

func TestStreamLearnThenFrozenReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	name := registerSmooth(t, ts.URL)
	streamURL := fmt.Sprintf("%s/udfs/%s/stream", ts.URL, name)
	inputs := testInputs(20)

	status, _, learned := streamNDJSON(t, streamURL+"?seed=11", inputs)
	if status != 200 {
		t.Fatalf("learn stream: %d", status)
	}
	if len(learned) != len(inputs) {
		t.Fatalf("learn stream returned %d lines, want %d", len(learned), len(inputs))
	}
	for i, r := range learned {
		if r.Error != "" {
			t.Fatalf("line %d: %s", i, r.Error)
		}
		if r.Seq != int64(i) {
			t.Fatalf("line %d has seq %d", i, r.Seq)
		}
		if r.Bound > r.Eps+1e-12 {
			t.Fatalf("line %d: bound %g exceeds ε %g", i, r.Bound, r.Eps)
		}
	}

	// Frozen replay twice: byte-identical responses, ordered, zero UDF calls.
	status1, raw1, rep1 := streamNDJSON(t, streamURL+"?learn=false&seed=11", inputs)
	status2, raw2, _ := streamNDJSON(t, streamURL+"?learn=false&seed=11", inputs)
	if status1 != 200 || status2 != 200 {
		t.Fatalf("frozen streams: %d, %d", status1, status2)
	}
	if raw1 != raw2 {
		t.Fatalf("frozen replay not bit-identical:\n%s\nvs\n%s", raw1, raw2)
	}
	for i, r := range rep1 {
		if r.UDFCalls != 0 {
			t.Fatalf("frozen line %d paid %d UDF calls", i, r.UDFCalls)
		}
		if r.Bound > r.Eps+1e-12 {
			t.Fatalf("frozen line %d: bound %g exceeds ε %g", i, r.Bound, r.Eps)
		}
	}
	// A different seed changes the bytes.
	_, raw3, _ := streamNDJSON(t, streamURL+"?learn=false&seed=12", inputs)
	if raw3 == raw1 {
		t.Fatal("different stream seed produced identical bytes")
	}

	// The single-eval frozen path is line 0 of the stream with the same seed.
	learn := false
	resp, body := postJSON(t, fmt.Sprintf("%s/udfs/%s/eval", ts.URL, name),
		map[string]any{"input": inputs[0], "seed": 11, "learn": &learn})
	if resp.StatusCode != 200 {
		t.Fatalf("single frozen eval: %d %s", resp.StatusCode, body)
	}
	var single EvalResult
	if err := json.Unmarshal(body, &single); err != nil {
		t.Fatal(err)
	}
	if single.SupportHash != rep1[0].SupportHash {
		t.Fatalf("single frozen eval hash %s ≠ stream line 0 hash %s", single.SupportHash, rep1[0].SupportHash)
	}
}

func TestStreamMalformedLine(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)
	streamURL := fmt.Sprintf("%s/udfs/%s/stream", ts.URL, name)

	body := `{"input":[{"type":"normal","mu":0.5,"sigma":0.1},{"type":"normal","mu":0.5,"sigma":0.1}]}
this is not json
`
	resp, err := http.Post(streamURL+"?learn=false&seed=1", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), `"error"`) {
		t.Fatalf("malformed line did not yield an error line: %s", raw)
	}
	// The server must stay healthy afterwards (no leaked tokens/slots).
	for i := 0; i < 3; i++ {
		status, _, rs := streamNDJSON(t, streamURL+"?learn=false&seed=2", testInputs(4))
		if status != 200 || len(rs) != 4 {
			t.Fatalf("post-error stream %d: status %d, %d lines", i, status, len(rs))
		}
	}
	// Bad seed parameter.
	resp, err = http.Post(streamURL+"?seed=abc", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad seed: %d, want 400", resp.StatusCode)
	}
}

func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2})
	name := registerSmooth(t, ts.URL)

	// Exhaust capacity out-of-band, then expect 429 + Retry-After.
	if !s.tryAdmit() || !s.tryAdmit() {
		t.Fatal("could not take admission tokens")
	}
	defer func() { s.release(); s.release() }()
	resp, body := postJSON(t, fmt.Sprintf("%s/udfs/%s/eval", ts.URL, name),
		map[string]any{"input": testInputs(1)[0]})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("at capacity: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Streams are refused at admission too.
	sresp, err := http.Post(fmt.Sprintf("%s/udfs/%s/stream?learn=false", ts.URL, name),
		"application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("stream at capacity: %d, want 429", sresp.StatusCode)
	}
}

// At the minimum legal capacity a stream must still make progress: its
// admission probe must not hold a standing token that its own first tuple
// then blocks on (regression test for that deadlock).
func TestStreamAtMinimumCapacity(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 1, Workers: 2})
	name := registerSmooth(t, ts.URL)
	streamURL := fmt.Sprintf("%s/udfs/%s/stream", ts.URL, name)
	inputs := testInputs(6)
	if status, _, rs := streamNDJSON(t, streamURL+"?seed=2", inputs); status != 200 || len(rs) != 6 {
		t.Fatalf("learn stream at max-inflight=1: status %d, %d lines", status, len(rs))
	}
	if status, _, rs := streamNDJSON(t, streamURL+"?learn=false&seed=2", inputs); status != 200 || len(rs) != 6 {
		t.Fatalf("frozen stream at max-inflight=1: status %d, %d lines", status, len(rs))
	}
}

func TestDeadlineCancellation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)
	e, ok := s.reg.Get(name)
	if !ok {
		t.Fatal("entry missing")
	}

	// Occupy the writer loop with a long closure, then watch a deadline
	// fire while an eval waits its turn.
	block := make(chan struct{})
	go e.withWriter(context.Background(), func(*core.Evaluator) error {
		<-block
		return nil
	})
	defer close(block)
	time.Sleep(20 * time.Millisecond) // let the blocker reach the writer

	resp, body := postJSON(t, fmt.Sprintf("%s/udfs/%s/eval?timeout_ms=50", ts.URL, name),
		map[string]any{"input": testInputs(1)[0]})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline: %d %s, want 504", resp.StatusCode, body)
	}
}

func TestSnapshotRoundTripAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{SnapshotDir: dir, Workers: 2})
	name := registerSmooth(t, ts1.URL)
	streamURL := fmt.Sprintf("%s/udfs/%s/stream", ts1.URL, name)
	inputs := testInputs(12)

	// Learn, then record a frozen replay.
	if status, _, _ := streamNDJSON(t, streamURL+"?seed=9", inputs); status != 200 {
		t.Fatalf("learn stream: %d", status)
	}
	_, before, _ := streamNDJSON(t, streamURL+"?learn=false&seed=9", inputs)

	// Snapshot everything and "restart".
	resp, body := postJSON(t, ts1.URL+"/snapshot", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("snapshot: %d %s", resp.StatusCode, body)
	}
	var snaps struct {
		Snapshots []snapshotInfo `json:"snapshots"`
	}
	if err := json.Unmarshal(body, &snaps); err != nil {
		t.Fatal(err)
	}
	if len(snaps.Snapshots) != 1 || snaps.Snapshots[0].TrainingPoints < 2 {
		t.Fatalf("snapshot info: %+v", snaps)
	}
	ts1.Close()
	s1.Close()

	s2, err := New(Config{SnapshotDir: dir, Workers: 2})
	if err != nil {
		t.Fatalf("restore boot: %v", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()

	// The UDF is back without re-registration, with its training set.
	var list struct {
		UDFs []udfInfo `json:"udfs"`
	}
	getJSON(t, ts2.URL+"/udfs", &list)
	if len(list.UDFs) != 1 || list.UDFs[0].Name != name {
		t.Fatalf("restored udfs: %+v", list.UDFs)
	}
	if int(list.UDFs[0].TrainingPoints) != snaps.Snapshots[0].TrainingPoints {
		t.Fatalf("restored %d points, snapshot had %d",
			list.UDFs[0].TrainingPoints, snaps.Snapshots[0].TrainingPoints)
	}

	// Seeded replay on the restored server is bit-identical.
	_, after, _ := streamNDJSON(t, fmt.Sprintf("%s/udfs/%s/stream?learn=false&seed=9", ts2.URL, name), inputs)
	if before != after {
		t.Fatalf("replay after restart diverged:\n%s\nvs\n%s", before, after)
	}
}

func TestSnapshotWithoutDir(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)
	resp, body := postJSON(t, fmt.Sprintf("%s/udfs/%s/snapshot", ts.URL, name), nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("snapshot without dir: %d %s", resp.StatusCode, body)
	}
}

func TestStatsSavings(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)
	streamURL := fmt.Sprintf("%s/udfs/%s/stream", ts.URL, name)
	if status, _, _ := streamNDJSON(t, streamURL+"?seed=4", testInputs(10)); status != 200 {
		t.Fatal("learn stream failed")
	}
	var stats struct {
		UDFs            []UDFStats `json:"udfs"`
		TotalSavedCalls int64      `json:"total_saved_calls"`
	}
	if resp := getJSON(t, ts.URL+"/stats", &stats); resp.StatusCode != 200 {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	if len(stats.UDFs) != 1 {
		t.Fatalf("stats has %d UDFs", len(stats.UDFs))
	}
	st := stats.UDFs[0]
	if st.Name != name || st.Inputs < 18 { // 8 warm-up + 10 streamed
		t.Fatalf("stats: %+v", st)
	}
	if st.MCSamplesPerInput <= 0 || st.MCEquivalentCalls != st.Inputs*int64(st.MCSamplesPerInput) {
		t.Fatalf("MC equivalence wrong: %+v", st)
	}
	// The whole point: the GP serves traffic for far fewer UDF calls than MC.
	if st.SavedCalls <= 0 || st.SavingsRatio < 0.5 {
		t.Fatalf("no savings: %+v", st)
	}
	if st.UDFCalls >= int(st.MCEquivalentCalls) {
		t.Fatalf("UDF calls %d not below MC equivalent %d", st.UDFCalls, st.MCEquivalentCalls)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)
	s.Close()
	resp, _ := postJSON(t, fmt.Sprintf("%s/udfs/%s/eval", ts.URL, name),
		map[string]any{"input": testInputs(1)[0]})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server: %d, want 503", resp.StatusCode)
	}
	if resp2 := getJSON(t, ts.URL+"/healthz", nil); resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d, want 503", resp2.StatusCode)
	}
}

// The learn-mode seeding must match the documented derivation: line i of a
// learn stream and exec.TupleSeed(seed, i) drive the same RNG.
func TestLearnSeedDerivation(t *testing.T) {
	// White-box: a registry entry evaluated directly must match the
	// documented TupleSeed derivation byte-for-byte.
	reg := NewRegistry(1)
	e, err := reg.Register(RegisterSpec{UDF: "poly/smooth2d", Eps: 0.2, Delta: 0.1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	in, err := (wire.InputSpec{
		{Type: "normal", Mu: 0.5, Sigma: 0.1},
		{Type: "normal", Mu: 0.5, Sigma: 0.1},
	}).Vector()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	out, err := e.learnEval(ctx, in, exec.TupleSeed(21, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the same evaluator manually and replay with the same rng.
	def, _ := lookupCatalog("poly/smooth2d")
	ev, err := core.NewEvaluator(def.mkUDF(), core.Config{Eps: 0.2, Delta: 0.1, Kernel: def.kernel()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(exec.TupleSeed(21, 0)))
	want, err := ev.Eval(in, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Bound != want.Bound || out.Dist.Mean() != want.Dist.Mean() {
		t.Fatalf("server learn eval diverged from direct eval: %g/%g vs %g/%g",
			out.Bound, out.Dist.Mean(), want.Bound, want.Dist.Mean())
	}
}
