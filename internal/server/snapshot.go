package server

// Snapshot persistence, rotation, and boot-time restore. Each POST
// /v1/udfs/{name}/snapshot writes a sequence-stamped file
// <name>.<seq %016d>.snap (the zero-padding makes lexicographic order equal
// numeric order) plus <name>.meta.json recording the registration spec, the
// model sequence, and which snapshot file is current; older stamped files —
// and the unstamped <name>.snap a pre-rotation release wrote — are garbage-
// collected down to Config.SnapshotKeep. Boot restore re-registers every
// UDF named by a meta file from its newest surviving snapshot, resuming the
// model sequence counter from the snapshot's ModelSeq so replica ordering
// survives restarts.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"olgapro/internal/core"
	"olgapro/internal/server/wire"
)

// snapMeta is the <name>.meta.json document. Legacy metas (written before
// rotation existed) are a bare RegisterSpec; they decode here with Spec nil
// and are re-parsed by restoreAll.
type snapMeta struct {
	Spec     *RegisterSpec `json:"spec,omitempty"`
	ModelSeq int64         `json:"model_seq,omitempty"`
	// Snapshot is the current snapshot file name within the snapshot dir.
	Snapshot string `json:"snapshot,omitempty"`
	// Replica records that the entry was a read replica when persisted, so a
	// restart reinstalls it as one instead of promoting it to a writer —
	// ownership stays a pure function of the ring, never of restart order.
	Replica bool `json:"replica,omitempty"`
}

// seqSnapName formats the sequence-stamped snapshot file name.
func seqSnapName(name string, seq int64) string {
	return fmt.Sprintf("%s.%016d.snap", name, seq)
}

// snapSeq parses a stamped file's sequence; ok is false for files that are
// not <name>.<16 digits>.snap (including another UDF's files that happen to
// share a dotted prefix).
func snapSeq(name, base string) (int64, bool) {
	rest, found := strings.CutPrefix(base, name+".")
	if !found {
		return 0, false
	}
	digits, found := strings.CutSuffix(rest, ".snap")
	if !found || len(digits) != 16 {
		return 0, false
	}
	var seq int64
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + int64(c-'0')
	}
	return seq, true
}

// metaPath returns the metadata path for a UDF instance.
func (s *Server) metaPath(name string) string {
	return filepath.Join(s.cfg.SnapshotDir, name+".meta.json")
}

// legacySnapPath is the unstamped snapshot path pre-rotation releases wrote.
func (s *Server) legacySnapPath(name string) string {
	return filepath.Join(s.cfg.SnapshotDir, name+".snap")
}

// snapFiles lists the UDF's snapshot files oldest-first. The legacy
// unstamped file, when present, sorts before every stamped one: any stamped
// snapshot was taken after it.
func (s *Server) snapFiles(name string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(s.cfg.SnapshotDir, name+".*.snap"))
	if err != nil {
		return nil, err
	}
	type stamped struct {
		path string
		seq  int64
	}
	var files []stamped
	for _, m := range matches {
		if seq, ok := snapSeq(name, filepath.Base(m)); ok {
			files = append(files, stamped{path: m, seq: seq})
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].seq < files[j].seq })
	var out []string
	if legacy := s.legacySnapPath(name); fileExists(legacy) {
		out = append(out, legacy)
	}
	for _, f := range files {
		out = append(out, f.path)
	}
	return out, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// gcSnapshots deletes the UDF's oldest snapshot files beyond SnapshotKeep.
func (s *Server) gcSnapshots(name string) error {
	files, err := s.snapFiles(name)
	if err != nil {
		return err
	}
	for len(files) > s.cfg.SnapshotKeep {
		if err := os.Remove(files[0]); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		s.cfg.Logf("snapshot %q: rotated out %s", name, files[0])
		files = files[1:]
	}
	return nil
}

// persist writes one entry's snapshot and metadata atomically, then rotates
// old snapshot files out.
func (s *Server) persist(ctx context.Context, e *udfEntry) (snapshotInfo, error) {
	if s.cfg.SnapshotDir == "" {
		return snapshotInfo{}, errors.New("server: no -snapshot-dir configured")
	}
	var buf bytes.Buffer
	points, seq, err := e.snapshot(ctx, &buf)
	if err != nil {
		return snapshotInfo{}, err
	}
	name := e.spec.Name
	snapFile := seqSnapName(name, seq)
	snapPath := filepath.Join(s.cfg.SnapshotDir, snapFile)
	if err := atomicWrite(snapPath, buf.Bytes()); err != nil {
		return snapshotInfo{}, err
	}
	spec := e.spec
	mb, err := json.MarshalIndent(snapMeta{Spec: &spec, ModelSeq: seq, Snapshot: snapFile, Replica: e.Replica()}, "", "  ")
	if err != nil {
		return snapshotInfo{}, err
	}
	if err := atomicWrite(s.metaPath(name), append(mb, '\n')); err != nil {
		return snapshotInfo{}, err
	}
	if err := s.gcSnapshots(name); err != nil {
		return snapshotInfo{}, err
	}
	s.cfg.Logf("snapshot %q: %d training points @ seq %d → %s", name, points, seq, snapPath)
	return snapshotInfo{Name: name, TrainingPoints: points, ModelSeq: seq, Path: snapPath}, nil
}

// atomicWrite writes via a uniquely-named temp file + rename, so a crash
// mid-write never leaves a truncated snapshot for the next boot to trip
// over, and two concurrent snapshot requests for the same UDF cannot
// interleave bytes in a shared temp file — the loser's rename just
// replaces the winner's whole file.
func atomicWrite(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func (s *Server) handleSnapshotOne(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	info, err := s.persist(r.Context(), e)
	if err != nil {
		s.failErr(w, err, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleSnapshotAll(w http.ResponseWriter, r *http.Request) {
	var resp wire.SnapshotResponse
	for _, e := range s.reg.List() {
		info, err := s.persist(r.Context(), e)
		if err != nil {
			s.failErr(w, err, "snapshot %q: %v", e.Spec().Name, err)
			return
		}
		resp.Snapshots = append(resp.Snapshots, info)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// newestSnapshot returns the path of the UDF's most recent snapshot file.
func (s *Server) newestSnapshot(name string) (string, error) {
	files, err := s.snapFiles(name)
	if err != nil {
		return "", err
	}
	if len(files) == 0 {
		return "", fmt.Errorf("server: no snapshot files for %q", name)
	}
	return files[len(files)-1], nil
}

// restoreAll re-registers every persisted UDF from the snapshot directory.
func (s *Server) restoreAll() error {
	metas, err := filepath.Glob(filepath.Join(s.cfg.SnapshotDir, "*.meta.json"))
	if err != nil {
		return err
	}
	for _, metaFile := range metas {
		mb, err := os.ReadFile(metaFile)
		if err != nil {
			return fmt.Errorf("server: restore %s: %w", metaFile, err)
		}
		var meta snapMeta
		var spec RegisterSpec
		if jerr := json.Unmarshal(mb, &meta); jerr == nil && meta.Spec != nil {
			spec = *meta.Spec
		} else if err := json.Unmarshal(mb, &spec); err != nil {
			return fmt.Errorf("server: restore %s: %w", metaFile, err)
		}
		path := ""
		if meta.Snapshot != "" {
			if p := filepath.Join(s.cfg.SnapshotDir, meta.Snapshot); fileExists(p) {
				path = p
			}
		}
		if path == "" {
			path, err = s.newestSnapshot(spec.Name)
			if err != nil {
				return fmt.Errorf("server: restore %q: %w", spec.Name, err)
			}
		}
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("server: restore %q: %w", spec.Name, err)
		}
		snap, err := core.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("server: restore %q: %w", spec.Name, err)
		}
		if meta.Replica {
			if err := s.reg.InstallReplica(spec, snap); err != nil {
				return fmt.Errorf("server: restore replica %q: %w", spec.Name, err)
			}
			s.cfg.Logf("restored replica %q from %s (model seq %d)", spec.Name, path, snap.ModelSeq)
			continue
		}
		e, err := s.reg.Register(spec, snap)
		if err != nil {
			return fmt.Errorf("server: restore %q: %w", spec.Name, err)
		}
		s.cfg.Logf("restored UDF %q from %s (%d training points, model seq %d)",
			spec.Name, path, e.trainPts.Load(), e.Seq())
	}
	return nil
}
