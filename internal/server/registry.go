// Package server is the network serving layer: a stdlib-only HTTP/JSON
// service exposing the full evaluation pipeline — register a UDF from the
// built-in catalog, submit single tuples or NDJSON streams of uncertain
// inputs, and receive output distributions with their (ε, δ) error bounds —
// so one learned GP emulator is reused across many requests instead of
// living and dying inside one process invocation. The public HTTP surface
// lives under /v1/ (see internal/server/wire for every request/response
// type); unversioned legacy paths remain as thin aliases for one release.
//
// # Concurrency model
//
// A core.Evaluator is single-goroutine by design (it owns a mutable model
// and a scratch workspace), so each registered UDF gets:
//
//   - one warm, tuning-enabled evaluator owned by a single-writer loop: all
//     learning traffic, snapshots, and clone construction are closures
//     executed serially by that goroutine;
//   - a fixed set of frozen-clone slots (core.CloneFrozen) for read
//     traffic: frozen evaluation is a pure function of (input, rng), so
//     borrowed clones may run concurrently, and a stream request can fan
//     its tuples across several slots through the existing exec.Pool
//     executor with bit-deterministic per-tuple seeding (exec.TupleSeed).
//
// Slots record the training-set size their clone was built at and are
// transparently rebuilt when the writer has learned since, so read traffic
// always sees the latest knowledge without ever blocking behind a learning
// tuple.
//
// # Fleet role
//
// In a sharded fleet one process is the *owner* (writer) of each UDF and
// the others host frozen *replicas*: entries installed from the owner's
// versioned snapshots (InstallReplica), ordered by the per-UDF model
// sequence number, that serve read traffic but refuse learning with
// not_owner. The registry's replication version is a process-local
// monotonic counter bumped on every model mutation; pollers long-poll it
// (WaitReplication) to subscribe to deltas.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/exec"
	"olgapro/internal/mc"
	"olgapro/internal/query"
	"olgapro/internal/server/wire"
)

// Sentinel errors the HTTP layer maps to status codes and envelope codes.
var (
	// errDraining: the server is shutting down.
	errDraining = errors.New("server: draining")
	// errNotWarm: frozen (read) traffic requires a model with ≥ 2 training
	// points; stream with learn=true (the default) first.
	errNotWarm = errors.New("server: model not warm yet — run learning traffic or restore a snapshot first")
	// errAlreadyRegistered: the instance name is taken (HTTP 409).
	errAlreadyRegistered = errors.New("already registered")
	// errNotOwner: learning traffic hit a frozen replica; the writer for
	// this UDF lives on another shard.
	errNotOwner = errors.New("server: instance is a read replica — route learning traffic to the owning shard")
)

// nameRe restricts registered UDF names: they appear in URL paths and
// snapshot file names, so no separators or dots-only segments.
var nameRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]*$`)

// RegisterSpec is the persistent registration record, shared with the wire
// surface (it doubles as snapshot metadata and as the replication spec a
// replica installs from).
type RegisterSpec = wire.RegisterSpec

// DefaultInstanceName is the instance name a registration gets when the
// request leaves "name" empty: the catalog name with "/" replaced by "-".
// Exported through the wire/client layers so the router can compute the
// owning shard for a registration before forwarding it.
func DefaultInstanceName(udfName string) string {
	return strings.ReplaceAll(udfName, "/", "-")
}

// normalizeSpec validates a RegisterSpec and applies naming defaults.
func normalizeSpec(s RegisterSpec) (RegisterSpec, error) {
	if s.UDF == "" {
		return s, errors.New("server: register needs \"udf\" (a catalog name; see GET /v1/catalog)")
	}
	if s.Name == "" {
		s.Name = DefaultInstanceName(s.UDF)
	}
	if !nameRe.MatchString(s.Name) {
		return s, fmt.Errorf("server: invalid name %q (want %s)", s.Name, nameRe)
	}
	if s.Eps < 0 || s.Delta < 0 {
		return s, fmt.Errorf("server: negative eps/delta (%g, %g)", s.Eps, s.Delta)
	}
	if s.Sparse != nil {
		var probe core.Config
		if err := s.Sparse.Apply(&probe); err != nil {
			return s, err
		}
	}
	return s, nil
}

// writerReq is one closure travelling to an entry's single-writer loop.
type writerReq struct {
	fn   func() error
	resp chan error // buffered: the writer never blocks on an abandoned caller
}

// cloneSlot is one frozen-clone capacity unit. eng is nil until first use;
// seq is the model sequence the clone was built at, compared against the
// entry's live counter to detect staleness (a replica swap bumps the
// sequence without changing the training-point count, so staleness is
// keyed on the sequence, not the point count).
type cloneSlot struct {
	eng query.Engine
	seq int64
}

// udfEntry is one registered UDF instance.
type udfEntry struct {
	spec      RegisterSpec
	def       catalogDef
	cfg       core.Config
	mcSamples int // per-input UDF calls Monte Carlo would need at (ε, δ)

	// replica marks a frozen read replica: learning traffic is refused
	// with errNotOwner, and InstallReplica may swap in newer snapshots.
	// Atomic because fleet handoff flips it at runtime (Promote/Demote)
	// while read/stat paths observe it concurrently.
	replica atomic.Bool

	// ev is the evaluator owned by the single-writer loop. Only closures
	// executed by that loop may touch it; the field itself is mutated only
	// by swap closures running on the loop.
	ev *core.Evaluator

	reqs chan writerReq
	quit chan struct{}
	done chan struct{}
	// stopOnce guards close(quit): Registry.Close and the registration
	// rollback path (remove) can race on the same entry during shutdown,
	// and a double close would panic the process.
	stopOnce sync.Once

	trainPts atomic.Int64 // training-set size, maintained by the writer side
	modelSeq atomic.Int64 // per-UDF model sequence, bumped on every mutation
	served   atomic.Int64 // tuples served (learning + frozen)

	// bump is called (from the writer loop) whenever modelSeq advances, so
	// the registry's replication version can wake long-pollers.
	bump func()

	slots chan *cloneSlot
}

// stop shuts the entry's writer loop down, idempotently, and waits for it.
func (e *udfEntry) stop() {
	e.stopOnce.Do(func() { close(e.quit) })
	<-e.done
}

// Spec returns the registration record (used as snapshot metadata).
func (e *udfEntry) Spec() RegisterSpec { return e.spec }

// Seq returns the entry's current model sequence number.
func (e *udfEntry) Seq() int64 { return e.modelSeq.Load() }

// Replica reports whether the entry is a frozen read replica.
func (e *udfEntry) Replica() bool { return e.replica.Load() }

// startWriter runs the single-writer loop that owns e.ev. seq seeds the
// model sequence counter (restored from snapshot metadata on boot so the
// ordering survives restarts; 0 for a fresh registration).
func (e *udfEntry) startWriter(ev *core.Evaluator, seq int64) {
	e.ev = ev
	e.trainPts.Store(int64(ev.Points()))
	e.modelSeq.Store(seq)
	go func() {
		defer close(e.done)
		for {
			select {
			case <-e.quit:
				return
			case req := <-e.reqs:
				prevEv, prevPts := e.ev, e.ev.Points()
				req.resp <- req.fn()
				if e.ev != prevEv {
					// A swap closure installed a new evaluator and stamped
					// trainPts/modelSeq itself; nothing to reconcile.
					continue
				}
				after := int64(e.ev.Points())
				e.trainPts.Store(after)
				if after != int64(prevPts) {
					e.modelSeq.Add(1)
					if e.bump != nil {
						e.bump()
					}
				}
			}
		}
	}()
}

// withWriter runs fn on the entry's evaluator from the single-writer loop,
// honoring ctx while queued (a deadline that fires before the writer gets
// to the closure cancels it without running).
func (e *udfEntry) withWriter(ctx context.Context, fn func(ev *core.Evaluator) error) error {
	req := writerReq{resp: make(chan error, 1)}
	req.fn = func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn(e.ev)
	}
	select {
	case e.reqs <- req:
	case <-ctx.Done():
		return ctx.Err()
	case <-e.quit:
		return errDraining
	}
	select {
	case err := <-req.resp:
		return err
	case <-ctx.Done():
		return ctx.Err()
	case <-e.quit:
		return errDraining
	}
}

// swapModel atomically replaces the entry's evaluator with one restored
// from a newer snapshot — the replica ingestion path. The sequence bump
// invalidates every frozen-clone slot, so subsequent reads rebuild their
// clones from the new model.
func (e *udfEntry) swapModel(ctx context.Context, ev *core.Evaluator, seq int64) error {
	req := writerReq{resp: make(chan error, 1)}
	req.fn = func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if seq <= e.modelSeq.Load() {
			return nil // stale delta: the installed state is already newer
		}
		e.ev = ev
		// Stamp the owner's sequence directly (a snapshot delta jumps the
		// counter rather than incrementing it) and wake replication
		// pollers; the loop skips its own bookkeeping on swaps.
		e.trainPts.Store(int64(ev.Points()))
		e.modelSeq.Store(seq)
		if e.bump != nil {
			e.bump()
		}
		return nil
	}
	select {
	case e.reqs <- req:
	case <-ctx.Done():
		return ctx.Err()
	case <-e.quit:
		return errDraining
	}
	select {
	case err := <-req.resp:
		return err
	case <-ctx.Done():
		return ctx.Err()
	case <-e.quit:
		return errDraining
	}
}

// learnEval evaluates one input on the learning evaluator (online tuning
// and retraining enabled) with the given deterministic seed.
func (e *udfEntry) learnEval(ctx context.Context, input dist.Vector, seed int64) (*core.Output, error) {
	var out *core.Output
	err := e.withWriter(ctx, func(ev *core.Evaluator) error {
		// Checked inside the writer loop so a concurrent Demote is
		// linearized: once the demote closure has run, no learning tuple
		// can land on the (now replica) entry.
		if e.replica.Load() {
			return errNotOwner
		}
		rng := rand.New(rand.NewSource(seed))
		o, err := ev.Eval(input, rng)
		if err != nil {
			return err
		}
		out = o
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.served.Add(1)
	return out, nil
}

// borrowFrozen takes one frozen-clone slot, rebuilding its clone if the
// writer has learned since it was last built. Blocks (under ctx) when all
// slots are in use — the read path's intrinsic backpressure.
func (e *udfEntry) borrowFrozen(ctx context.Context) (*cloneSlot, error) {
	select {
	case s := <-e.slots:
		if err := e.ensureFresh(ctx, s); err != nil {
			e.slots <- s
			return nil, err
		}
		return s, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-e.quit:
		return nil, errDraining
	}
}

// borrowMore opportunistically takes up to extra additional slots without
// blocking, for stream fan-out. Slots that fail to refresh are returned.
func (e *udfEntry) borrowMore(ctx context.Context, extra int) []*cloneSlot {
	var out []*cloneSlot
	for len(out) < extra {
		select {
		case s := <-e.slots:
			if err := e.ensureFresh(ctx, s); err != nil {
				e.slots <- s
				return out
			}
			out = append(out, s)
		default:
			return out
		}
	}
	return out
}

// returnSlot gives a borrowed slot back. Never blocks: slot capacity is
// fixed at construction.
func (e *udfEntry) returnSlot(s *cloneSlot) { e.slots <- s }

// ensureFresh rebuilds the slot's clone when missing or stale.
func (e *udfEntry) ensureFresh(ctx context.Context, s *cloneSlot) error {
	if s.eng != nil && s.seq == e.modelSeq.Load() {
		return nil
	}
	return e.withWriter(ctx, func(ev *core.Evaluator) error {
		if ev.Points() < 2 {
			return errNotWarm
		}
		c, err := ev.CloneFrozen()
		if err != nil {
			return err
		}
		s.eng = query.NewEvaluatorEngine(c)
		s.seq = e.modelSeq.Load()
		return nil
	})
}

// frozenEval evaluates one input on a frozen clone with the given seed —
// bit-identical to the same input appearing as the first line of a frozen
// stream with the same base seed.
func (e *udfEntry) frozenEval(ctx context.Context, input dist.Vector, seed int64) (*core.Output, error) {
	s, err := e.borrowFrozen(ctx)
	if err != nil {
		return nil, err
	}
	defer e.returnSlot(s)
	rng := rand.New(rand.NewSource(seed))
	out, err := s.eng.EvalInput(input, rng)
	if err != nil {
		return nil, err
	}
	e.served.Add(1)
	return out, nil
}

// frozenPool borrows up to max slots and wraps them as an exec.Pool for a
// stream request. The caller must call the returned release exactly once.
func (e *udfEntry) frozenPool(ctx context.Context, max int) (*exec.Pool, func(), error) {
	first, err := e.borrowFrozen(ctx)
	if err != nil {
		return nil, nil, err
	}
	slots := append([]*cloneSlot{first}, e.borrowMore(ctx, max-1)...)
	engines := make([]query.Engine, len(slots))
	for i, s := range slots {
		engines[i] = s.eng
	}
	pool, err := exec.NewPool(engines...)
	if err != nil {
		for _, s := range slots {
			e.returnSlot(s)
		}
		return nil, nil, err
	}
	release := func() {
		for _, s := range slots {
			e.returnSlot(s)
		}
	}
	return pool, release, nil
}

// snapshot serializes the current model state stamped with the model
// sequence it was taken at.
func (e *udfEntry) snapshot(ctx context.Context, w io.Writer) (points int, seq int64, err error) {
	err = e.withWriter(ctx, func(ev *core.Evaluator) error {
		points = ev.Points()
		seq = e.modelSeq.Load()
		s, err := ev.Snapshot()
		if err != nil {
			return err
		}
		s.ModelSeq = seq
		return core.WriteSnapshot(w, s)
	})
	return points, seq, err
}

// UDFStats is the per-UDF /v1/stats record, shared with the wire surface.
type UDFStats = wire.UDFStats

// stats gathers the entry's counters (core counters via the writer loop).
func (e *udfEntry) stats(ctx context.Context) (UDFStats, error) {
	st := UDFStats{
		Name:              e.spec.Name,
		UDF:               e.spec.UDF,
		Eps:               e.cfg.Eps,
		Delta:             e.cfg.Delta,
		Inputs:            e.served.Load(),
		MCSamplesPerInput: e.mcSamples,
	}
	err := e.withWriter(ctx, func(ev *core.Evaluator) error {
		s := ev.Stats()
		st.TrainingPoints = s.TrainingPoints
		st.UDFCalls = s.UDFCalls
		st.Retrainings = s.Retrainings
		st.Filtered = s.Filtered
		return nil
	})
	if err != nil {
		return st, err
	}
	st.MCEquivalentCalls = st.Inputs * int64(st.MCSamplesPerInput)
	st.SavedCalls = st.MCEquivalentCalls - int64(st.UDFCalls)
	if st.MCEquivalentCalls > 0 {
		st.SavingsRatio = float64(st.SavedCalls) / float64(st.MCEquivalentCalls)
	}
	return st, nil
}

// Registry maps instance names to registered UDF entries.
type Registry struct {
	workers int

	mu      sync.Mutex
	entries map[string]*udfEntry
	closed  bool

	// Replication version: a process-local monotonic counter bumped on
	// every model mutation of any entry (and on registration). watch is
	// closed and replaced on every bump, waking WaitReplication pollers.
	version atomic.Int64
	watchMu sync.Mutex
	watch   chan struct{}
}

// NewRegistry builds an empty registry; workers is the frozen-clone slot
// count per UDF (≤ 0 means 1).
func NewRegistry(workers int) *Registry {
	if workers <= 0 {
		workers = 1
	}
	return &Registry{
		workers: workers,
		entries: make(map[string]*udfEntry),
		watch:   make(chan struct{}),
	}
}

// bumpVersion advances the replication version and wakes pollers.
func (r *Registry) bumpVersion() {
	r.version.Add(1)
	r.watchMu.Lock()
	close(r.watch)
	r.watch = make(chan struct{})
	r.watchMu.Unlock()
}

// Version returns the current replication version.
func (r *Registry) Version() int64 { return r.version.Load() }

// WaitReplication blocks until the replication version exceeds since or
// ctx fires, returning the version seen. since < 0 returns immediately.
func (r *Registry) WaitReplication(ctx context.Context, since int64) int64 {
	for {
		if v := r.version.Load(); v > since || since < 0 {
			return v
		}
		r.watchMu.Lock()
		ch := r.watch
		r.watchMu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return r.version.Load()
		}
	}
}

// newEntry builds (but does not install) an entry for the spec.
func (r *Registry) newEntry(spec RegisterSpec, snap *core.Snapshot, replica bool) (*udfEntry, int64, error) {
	spec, err := normalizeSpec(spec)
	if err != nil {
		return nil, 0, err
	}
	def, err := lookupCatalog(spec.UDF)
	if err != nil {
		return nil, 0, err
	}
	cfg := core.Config{Eps: spec.Eps, Delta: spec.Delta, Kernel: def.kernel()}
	if spec.Sparse != nil {
		if err := spec.Sparse.Apply(&cfg); err != nil {
			return nil, 0, err
		}
	}
	var ev *core.Evaluator
	var seq int64
	if snap != nil {
		ev, err = core.Restore(def.mkUDF(), cfg, snap)
		seq = snap.ModelSeq
	} else {
		ev, err = core.NewEvaluator(def.mkUDF(), cfg)
	}
	if err != nil {
		return nil, 0, err
	}
	ncfg := ev.Config() // normalized: defaults applied
	e := &udfEntry{
		spec:      spec,
		def:       def,
		cfg:       ncfg,
		mcSamples: mc.SampleSize(ncfg.Eps, ncfg.Delta, mc.MetricDiscrepancy),
		reqs:      make(chan writerReq),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		bump:      r.bumpVersion,
		slots:     make(chan *cloneSlot, r.workers),
	}
	e.replica.Store(replica)
	for i := 0; i < r.workers; i++ {
		e.slots <- &cloneSlot{seq: -1}
	}
	e.ev = ev
	return e, seq, nil
}

// install adds a constructed entry under lock and starts its writer.
func (r *Registry) install(e *udfEntry, seq int64) (*udfEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errDraining
	}
	if _, dup := r.entries[e.spec.Name]; dup {
		return nil, fmt.Errorf("server: UDF %q %w", e.spec.Name, errAlreadyRegistered)
	}
	e.startWriter(e.ev, seq)
	r.entries[e.spec.Name] = e
	return e, nil
}

// Register creates a UDF instance. With a non-nil snapshot, the evaluator
// is restored from it (boot-time restore) and the model sequence resumes
// from the snapshot's ModelSeq.
func (r *Registry) Register(spec RegisterSpec, snap *core.Snapshot) (*udfEntry, error) {
	e, seq, err := r.newEntry(spec, snap, false)
	if err != nil {
		return nil, err
	}
	e, err = r.install(e, seq)
	if err == nil {
		r.bumpVersion()
	}
	return e, err
}

// InstallReplica creates or refreshes a frozen read replica from an
// owner's versioned snapshot. A new entry is installed when the name is
// unknown; an existing replica entry swaps its evaluator when the
// snapshot's sequence is newer (stale deltas are ignored). Installing over
// an owned (writer) entry is refused — a shard never demotes its own
// writer because a peer claims the name.
func (r *Registry) InstallReplica(spec RegisterSpec, snap *core.Snapshot) error {
	if snap == nil {
		return errors.New("server: replica install needs a snapshot")
	}
	r.mu.Lock()
	existing, ok := r.entries[spec.Name]
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return errDraining
	}
	if ok {
		if !existing.Replica() {
			return fmt.Errorf("server: UDF %q is owned here; refusing replica install", spec.Name)
		}
		if snap.ModelSeq <= existing.Seq() {
			return nil // already current
		}
		// Rebuild an evaluator from the snapshot and swap it in through
		// the writer loop so in-flight reads finish on the old model.
		def, err := lookupCatalog(spec.UDF)
		if err != nil {
			return err
		}
		cfg := core.Config{Eps: spec.Eps, Delta: spec.Delta, Kernel: def.kernel()}
		if spec.Sparse != nil {
			if err := spec.Sparse.Apply(&cfg); err != nil {
				return err
			}
		}
		ev, err := core.Restore(def.mkUDF(), cfg, snap)
		if err != nil {
			return err
		}
		if err := existing.swapModel(context.Background(), ev, snap.ModelSeq); err != nil {
			return err
		}
		r.bumpVersion()
		return nil
	}
	e, seq, err := r.newEntry(spec, snap, true)
	if err != nil {
		return err
	}
	if _, err := r.install(e, seq); err != nil {
		return err
	}
	r.bumpVersion()
	return nil
}

// Promote flips a replica entry to owner (writer). Used by the fleet
// handoff path once this shard's replica has caught up to the departing
// owner's model sequence: the model bytes are already identical, so
// promotion only changes who accepts learning traffic. The flip runs on
// the writer loop, linearizing it against in-flight learn closures, and
// bumps the replication version (not the model sequence — the model did
// not change) so peers see the new Owned advertisement.
func (r *Registry) Promote(ctx context.Context, name string) error {
	e, ok := r.Get(name)
	if !ok {
		return fmt.Errorf("server: promote: UDF %q not hosted here", name)
	}
	if !e.Replica() {
		return nil // already the owner
	}
	err := e.withWriter(ctx, func(*core.Evaluator) error {
		e.replica.Store(false)
		return nil
	})
	if err == nil {
		r.bumpVersion()
	}
	return err
}

// Demote flips an owned entry to replica — the other half of handoff,
// taken by the old owner once the new owner advertises ownership at a
// model sequence ≥ its own. Running on the writer loop guarantees no
// learning tuple is accepted after the flip (learnEval re-checks inside
// its closure), so the final owned sequence the new owner caught up to is
// genuinely final.
func (r *Registry) Demote(ctx context.Context, name string) error {
	e, ok := r.Get(name)
	if !ok {
		return fmt.Errorf("server: demote: UDF %q not hosted here", name)
	}
	if e.Replica() {
		return nil // already a replica
	}
	err := e.withWriter(ctx, func(*core.Evaluator) error {
		e.replica.Store(true)
		return nil
	})
	if err == nil {
		r.bumpVersion()
	}
	return err
}

// remove deregisters and stops an entry — the rollback path when a
// registration's warm-up fails after the entry was installed.
func (r *Registry) remove(name string) {
	r.mu.Lock()
	e, ok := r.entries[name]
	if ok {
		delete(r.entries, name)
	}
	r.mu.Unlock()
	if ok {
		e.stop()
		r.bumpVersion()
	}
}

// Get returns the named entry.
func (r *Registry) Get(name string) (*udfEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	return e, ok
}

// List returns all entries sorted by name.
func (r *Registry) List() []*udfEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*udfEntry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].spec.Name < out[j].spec.Name })
	return out
}

// ReplicationStates lists every hosted UDF with its model sequence and
// ownership, for GET /v1/replication/udfs.
func (r *Registry) ReplicationStates() []wire.ReplicaState {
	entries := r.List()
	out := make([]wire.ReplicaState, len(entries))
	for i, e := range entries {
		out[i] = wire.ReplicaState{
			Name:  e.spec.Name,
			Seq:   e.Seq(),
			Owned: !e.Replica(),
			Spec:  e.spec,
		}
	}
	return out
}

// Close stops every writer loop and marks the registry draining. In-flight
// writer closures finish; queued and future ones fail with errDraining.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	entries := make([]*udfEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	for _, e := range entries {
		e.stop()
	}
}
