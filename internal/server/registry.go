// Package server is the network serving layer: a stdlib-only HTTP/JSON
// service exposing the full evaluation pipeline — register a UDF from the
// built-in catalog, submit single tuples or NDJSON streams of uncertain
// inputs, and receive output distributions with their (ε, δ) error bounds —
// so one learned GP emulator is reused across many requests instead of
// living and dying inside one process invocation.
//
// # Concurrency model
//
// A core.Evaluator is single-goroutine by design (it owns a mutable model
// and a scratch workspace), so each registered UDF gets:
//
//   - one warm, tuning-enabled evaluator owned by a single-writer loop: all
//     learning traffic, snapshots, and clone construction are closures
//     executed serially by that goroutine;
//   - a fixed set of frozen-clone slots (core.CloneFrozen) for read
//     traffic: frozen evaluation is a pure function of (input, rng), so
//     borrowed clones may run concurrently, and a stream request can fan
//     its tuples across several slots through the existing exec.Pool
//     executor with bit-deterministic per-tuple seeding (exec.TupleSeed).
//
// Slots record the training-set size their clone was built at and are
// transparently rebuilt when the writer has learned since, so read traffic
// always sees the latest knowledge without ever blocking behind a learning
// tuple.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/exec"
	"olgapro/internal/mc"
	"olgapro/internal/query"
	"olgapro/internal/server/wire"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// errDraining: the server is shutting down.
	errDraining = errors.New("server: draining")
	// errNotWarm: frozen (read) traffic requires a model with ≥ 2 training
	// points; stream with learn=true (the default) first.
	errNotWarm = errors.New("server: model not warm yet — run learning traffic or restore a snapshot first")
	// errAlreadyRegistered: the instance name is taken (HTTP 409).
	errAlreadyRegistered = errors.New("already registered")
)

// nameRe restricts registered UDF names: they appear in URL paths and
// snapshot file names, so no separators or dots-only segments.
var nameRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]*$`)

// RegisterSpec describes one UDF registration. It doubles as the snapshot
// metadata record: together with a snapshot file it reconstructs the entry
// on boot.
type RegisterSpec struct {
	// Name is the instance name; defaults to the catalog name with "/"
	// replaced by "-".
	Name string `json:"name,omitempty"`
	// UDF is the catalog function to serve (see Catalog).
	UDF string `json:"udf"`
	// Eps and Delta are the (ε, δ) accuracy contract for this instance.
	// Zero selects the paper defaults (0.1, 0.05).
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	// Sparse, when set, serves this instance on the budgeted sparse emulator
	// instead of the exact GP. Persisted in the snapshot metadata so a
	// boot-time restore re-applies it (the snapshot itself also carries the
	// sparse state from format v3 on).
	Sparse *wire.SparseSpec `json:"sparse,omitempty"`
}

func (s RegisterSpec) withDefaults() (RegisterSpec, error) {
	if s.UDF == "" {
		return s, errors.New("server: register needs \"udf\" (a catalog name; see GET /catalog)")
	}
	if s.Name == "" {
		s.Name = strings.ReplaceAll(s.UDF, "/", "-")
	}
	if !nameRe.MatchString(s.Name) {
		return s, fmt.Errorf("server: invalid name %q (want %s)", s.Name, nameRe)
	}
	if s.Eps < 0 || s.Delta < 0 {
		return s, fmt.Errorf("server: negative eps/delta (%g, %g)", s.Eps, s.Delta)
	}
	if s.Sparse != nil {
		var probe core.Config
		if err := s.Sparse.Apply(&probe); err != nil {
			return s, err
		}
	}
	return s, nil
}

// writerReq is one closure travelling to an entry's single-writer loop.
type writerReq struct {
	fn   func(ev *core.Evaluator) error
	resp chan error // buffered: the writer never blocks on an abandoned caller
}

// cloneSlot is one frozen-clone capacity unit. eng is nil until first use;
// points is the training-set size the clone was built at, compared against
// the entry's live counter to detect staleness.
type cloneSlot struct {
	eng    query.Engine
	points int
}

// udfEntry is one registered UDF instance.
type udfEntry struct {
	spec      RegisterSpec
	def       catalogDef
	cfg       core.Config
	mcSamples int // per-input UDF calls Monte Carlo would need at (ε, δ)

	reqs chan writerReq
	quit chan struct{}
	done chan struct{}
	// stopOnce guards close(quit): Registry.Close and the registration
	// rollback path (remove) can race on the same entry during shutdown,
	// and a double close would panic the process.
	stopOnce sync.Once

	trainPts atomic.Int64 // training-set size, maintained by the writer side
	served   atomic.Int64 // tuples served (learning + frozen)

	slots chan *cloneSlot
}

// stop shuts the entry's writer loop down, idempotently, and waits for it.
func (e *udfEntry) stop() {
	e.stopOnce.Do(func() { close(e.quit) })
	<-e.done
}

// Spec returns the registration record (used as snapshot metadata).
func (e *udfEntry) Spec() RegisterSpec { return e.spec }

// startWriter runs the single-writer loop that owns ev.
func (e *udfEntry) startWriter(ev *core.Evaluator) {
	e.trainPts.Store(int64(ev.Points()))
	go func() {
		defer close(e.done)
		for {
			select {
			case <-e.quit:
				return
			case req := <-e.reqs:
				req.resp <- req.fn(ev)
				e.trainPts.Store(int64(ev.Points()))
			}
		}
	}()
}

// withWriter runs fn on the entry's evaluator from the single-writer loop,
// honoring ctx while queued (a deadline that fires before the writer gets
// to the closure cancels it without running).
func (e *udfEntry) withWriter(ctx context.Context, fn func(ev *core.Evaluator) error) error {
	req := writerReq{resp: make(chan error, 1)}
	req.fn = func(ev *core.Evaluator) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn(ev)
	}
	select {
	case e.reqs <- req:
	case <-ctx.Done():
		return ctx.Err()
	case <-e.quit:
		return errDraining
	}
	select {
	case err := <-req.resp:
		return err
	case <-ctx.Done():
		return ctx.Err()
	case <-e.quit:
		return errDraining
	}
}

// learnEval evaluates one input on the learning evaluator (online tuning
// and retraining enabled) with the given deterministic seed.
func (e *udfEntry) learnEval(ctx context.Context, input dist.Vector, seed int64) (*core.Output, error) {
	var out *core.Output
	err := e.withWriter(ctx, func(ev *core.Evaluator) error {
		rng := rand.New(rand.NewSource(seed))
		o, err := ev.Eval(input, rng)
		if err != nil {
			return err
		}
		out = o
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.served.Add(1)
	return out, nil
}

// borrowFrozen takes one frozen-clone slot, rebuilding its clone if the
// writer has learned since it was last built. Blocks (under ctx) when all
// slots are in use — the read path's intrinsic backpressure.
func (e *udfEntry) borrowFrozen(ctx context.Context) (*cloneSlot, error) {
	select {
	case s := <-e.slots:
		if err := e.ensureFresh(ctx, s); err != nil {
			e.slots <- s
			return nil, err
		}
		return s, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-e.quit:
		return nil, errDraining
	}
}

// borrowMore opportunistically takes up to extra additional slots without
// blocking, for stream fan-out. Slots that fail to refresh are returned.
func (e *udfEntry) borrowMore(ctx context.Context, extra int) []*cloneSlot {
	var out []*cloneSlot
	for len(out) < extra {
		select {
		case s := <-e.slots:
			if err := e.ensureFresh(ctx, s); err != nil {
				e.slots <- s
				return out
			}
			out = append(out, s)
		default:
			return out
		}
	}
	return out
}

// returnSlot gives a borrowed slot back. Never blocks: slot capacity is
// fixed at construction.
func (e *udfEntry) returnSlot(s *cloneSlot) { e.slots <- s }

// ensureFresh rebuilds the slot's clone when missing or stale.
func (e *udfEntry) ensureFresh(ctx context.Context, s *cloneSlot) error {
	if s.eng != nil && int64(s.points) == e.trainPts.Load() {
		return nil
	}
	return e.withWriter(ctx, func(ev *core.Evaluator) error {
		if ev.Points() < 2 {
			return errNotWarm
		}
		c, err := ev.CloneFrozen()
		if err != nil {
			return err
		}
		s.eng = query.NewEvaluatorEngine(c)
		s.points = ev.Points()
		return nil
	})
}

// frozenEval evaluates one input on a frozen clone with the given seed —
// bit-identical to the same input appearing as the first line of a frozen
// stream with the same base seed.
func (e *udfEntry) frozenEval(ctx context.Context, input dist.Vector, seed int64) (*core.Output, error) {
	s, err := e.borrowFrozen(ctx)
	if err != nil {
		return nil, err
	}
	defer e.returnSlot(s)
	rng := rand.New(rand.NewSource(seed))
	out, err := s.eng.EvalInput(input, rng)
	if err != nil {
		return nil, err
	}
	e.served.Add(1)
	return out, nil
}

// frozenPool borrows up to max slots and wraps them as an exec.Pool for a
// stream request. The caller must call the returned release exactly once.
func (e *udfEntry) frozenPool(ctx context.Context, max int) (*exec.Pool, func(), error) {
	first, err := e.borrowFrozen(ctx)
	if err != nil {
		return nil, nil, err
	}
	slots := append([]*cloneSlot{first}, e.borrowMore(ctx, max-1)...)
	engines := make([]query.Engine, len(slots))
	for i, s := range slots {
		engines[i] = s.eng
	}
	pool, err := exec.NewPool(engines...)
	if err != nil {
		for _, s := range slots {
			e.returnSlot(s)
		}
		return nil, nil, err
	}
	release := func() {
		for _, s := range slots {
			e.returnSlot(s)
		}
	}
	return pool, release, nil
}

// snapshot serializes the current model state.
func (e *udfEntry) snapshot(ctx context.Context, w io.Writer) (points int, err error) {
	err = e.withWriter(ctx, func(ev *core.Evaluator) error {
		points = ev.Points()
		return ev.Save(w)
	})
	return points, err
}

// UDFStats is the per-UDF /stats record; the savings fields quantify the
// paper's core economics: UDF calls actually paid vs what plain Monte Carlo
// would have cost for the same served traffic at the same (ε, δ).
type UDFStats struct {
	Name              string  `json:"name"`
	UDF               string  `json:"udf"`
	Eps               float64 `json:"eps"`
	Delta             float64 `json:"delta"`
	Inputs            int64   `json:"inputs"`
	TrainingPoints    int     `json:"training_points"`
	UDFCalls          int     `json:"udf_calls"`
	Retrainings       int     `json:"retrainings"`
	Filtered          int     `json:"filtered"`
	MCSamplesPerInput int     `json:"mc_samples_per_input"`
	MCEquivalentCalls int64   `json:"mc_equivalent_calls"`
	SavedCalls        int64   `json:"saved_calls"`
	SavingsRatio      float64 `json:"savings_ratio"`
}

// stats gathers the entry's counters (core counters via the writer loop).
func (e *udfEntry) stats(ctx context.Context) (UDFStats, error) {
	st := UDFStats{
		Name:              e.spec.Name,
		UDF:               e.spec.UDF,
		Eps:               e.cfg.Eps,
		Delta:             e.cfg.Delta,
		Inputs:            e.served.Load(),
		MCSamplesPerInput: e.mcSamples,
	}
	err := e.withWriter(ctx, func(ev *core.Evaluator) error {
		s := ev.Stats()
		st.TrainingPoints = s.TrainingPoints
		st.UDFCalls = s.UDFCalls
		st.Retrainings = s.Retrainings
		st.Filtered = s.Filtered
		return nil
	})
	if err != nil {
		return st, err
	}
	st.MCEquivalentCalls = st.Inputs * int64(st.MCSamplesPerInput)
	st.SavedCalls = st.MCEquivalentCalls - int64(st.UDFCalls)
	if st.MCEquivalentCalls > 0 {
		st.SavingsRatio = float64(st.SavedCalls) / float64(st.MCEquivalentCalls)
	}
	return st, nil
}

// Registry maps instance names to registered UDF entries.
type Registry struct {
	workers int

	mu      sync.Mutex
	entries map[string]*udfEntry
	closed  bool
}

// NewRegistry builds an empty registry; workers is the frozen-clone slot
// count per UDF (≤ 0 means 1).
func NewRegistry(workers int) *Registry {
	if workers <= 0 {
		workers = 1
	}
	return &Registry{workers: workers, entries: make(map[string]*udfEntry)}
}

// Register creates a UDF instance. With a non-nil snapshot reader, the
// evaluator is restored from it (boot-time restore) instead of starting
// empty.
func (r *Registry) Register(spec RegisterSpec, snapshot io.Reader) (*udfEntry, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	def, err := lookupCatalog(spec.UDF)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{Eps: spec.Eps, Delta: spec.Delta, Kernel: def.kernel()}
	if spec.Sparse != nil {
		if err := spec.Sparse.Apply(&cfg); err != nil {
			return nil, err
		}
	}
	var ev *core.Evaluator
	if snapshot != nil {
		ev, err = core.Load(def.mkUDF(), cfg, snapshot)
	} else {
		ev, err = core.NewEvaluator(def.mkUDF(), cfg)
	}
	if err != nil {
		return nil, err
	}
	ncfg := ev.Config() // normalized: defaults applied
	e := &udfEntry{
		spec:      spec,
		def:       def,
		cfg:       ncfg,
		mcSamples: mc.SampleSize(ncfg.Eps, ncfg.Delta, mc.MetricDiscrepancy),
		reqs:      make(chan writerReq),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		slots:     make(chan *cloneSlot, r.workers),
	}
	for i := 0; i < r.workers; i++ {
		e.slots <- &cloneSlot{}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errDraining
	}
	if _, dup := r.entries[spec.Name]; dup {
		return nil, fmt.Errorf("server: UDF %q %w", spec.Name, errAlreadyRegistered)
	}
	e.startWriter(ev)
	r.entries[spec.Name] = e
	return e, nil
}

// remove deregisters and stops an entry — the rollback path when a
// registration's warm-up fails after the entry was installed.
func (r *Registry) remove(name string) {
	r.mu.Lock()
	e, ok := r.entries[name]
	if ok {
		delete(r.entries, name)
	}
	r.mu.Unlock()
	if ok {
		e.stop()
	}
}

// Get returns the named entry.
func (r *Registry) Get(name string) (*udfEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	return e, ok
}

// List returns all entries sorted by name.
func (r *Registry) List() []*udfEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*udfEntry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].spec.Name < out[j].spec.Name })
	return out
}

// Close stops every writer loop and marks the registry draining. In-flight
// writer closures finish; queued and future ones fail with errDraining.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	entries := make([]*udfEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	for _, e := range entries {
		e.stop()
	}
}
