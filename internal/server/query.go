package server

// This file is the bounded-query endpoint pair. POST /v1/query runs a whole
// uncertain-algebra plan — UDF application with optional §5.5 TEP filter,
// then optional window / group-by / top-k stages with [certain, possible]
// answers — against one registered UDF's frozen clones. POST
// /v1/query/partials runs the per-shard sub-plan of a distributed query:
// the same evaluation, but seeded by each tuple's global ordinal in the
// union relation and returning mergeable partial bounded state instead of
// finished answers, so a fleet router can gather shards into one answer
// bit-identical to the single-shard plan over the union. Responses are a
// deterministic function of (model state, request): per-tuple seeding plus
// the deterministic bounded operators make the bytes replayable across
// snapshot→restart, exactly like ?learn=false streams.

import (
	"net/http"
	"strconv"

	"olgapro/internal/core"
	"olgapro/internal/exec"
	"olgapro/internal/mc"
	"olgapro/internal/query"
	"olgapro/internal/server/wire"
)

// maxQueryRows caps one /v1/query relation; larger queries should stream.
const maxQueryRows = wire.MaxQueryRows

// handleQuery runs one bounded query on frozen clones.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req wire.QueryRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad query request: %v", err)
		return
	}
	e, ok := s.reg.Get(req.UDF)
	if !ok {
		s.fail(w, http.StatusNotFound, wire.CodeNotFound, "no UDF %q registered", req.UDF)
		return
	}
	if len(req.Rows) == 0 {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "query needs at least one row")
		return
	}
	if len(req.Rows) > maxQueryRows {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "query has %d rows, cap is %d (use /udfs/{name}/stream for bulk evaluation)",
			len(req.Rows), maxQueryRows)
		return
	}
	if min, ok := req.RequireSeq[req.UDF]; ok && e.Seq() < min {
		s.fail(w, http.StatusConflict, wire.CodeModelCold, "UDF %q at model seq %d, request requires %d (replica catching up)",
			req.UDF, e.Seq(), min)
		return
	}
	dim := e.def.entry.Dim
	tuples := make([]*query.Tuple, len(req.Rows))
	for i, row := range req.Rows {
		if row.UDF != "" && row.UDF != req.UDF {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "row %d targets UDF %q but this shard query serves %q (send multi-UDF relations to a fleet router)",
				i, row.UDF, req.UDF)
			return
		}
		if len(row.Input) != dim {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "row %d has %d attributes, UDF %q wants %d",
				i, len(row.Input), e.spec.Name, dim)
			return
		}
		t, err := row.Input.Tuple(int64(i))
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "row %d: %v", i, err)
			return
		}
		tuples[i] = t.With("g", query.Str(row.Group))
	}

	// One admission token covers the whole plan: the request is a single
	// bounded unit of work (≤ maxQueryRows evaluations on frozen clones),
	// and per-row tokens could deadlock against the pool's own fan-out.
	if !s.tryAdmit() {
		s.fail(w, http.StatusTooManyRequests, wire.CodeOverCapacity, "at capacity (%d tuples in flight)", cap(s.inflight))
		return
	}
	defer s.release()

	var pred *mc.Predicate
	if req.Predicate != nil {
		p, err := req.Predicate.Predicate()
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
			return
		}
		pred = p
	}

	pool, release, err := e.frozenPool(r.Context(), s.cfg.Workers)
	if err != nil {
		s.failErr(w, err, "%v", err)
		return
	}
	defer release()

	opts := exec.Options{Ctx: r.Context(), Seed: req.Seed, Predicate: pred, KeepEnvelope: true}
	pe := pool.Apply(query.NewScan(tuples), wire.AttrNames(dim), "y", opts)
	defer pe.Close()

	plan := query.FromIterator(pe)
	if req.Window != nil {
		spec, err := req.Window.Spec()
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
			return
		}
		plan = plan.Window(spec)
	}
	if req.GroupBy != nil {
		spec, err := req.GroupBy.Spec()
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
			return
		}
		plan = plan.GroupBy(spec)
	}
	if req.TopK != nil {
		spec, err := req.TopK.Spec()
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
			return
		}
		plan = plan.TopK(spec)
	}
	out, err := plan.Run()
	if err != nil {
		s.failErr(w, err, "%v", err)
		return
	}
	e.served.Add(int64(len(req.Rows)))

	resp := wire.QueryResponse{UDF: req.UDF, Dropped: pe.Dropped, Rows: make([][]wire.QueryValue, len(out))}
	for i, t := range out {
		row, err := encodeQueryTuple(t, e.cfg.Eps)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, wire.CodeInternal, "encode row %d: %v", i, err)
			return
		}
		resp.Rows[i] = row
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleQueryPartials runs the per-shard half of a distributed query and
// returns mergeable partial bounded state (see wire.QueryPartials). The
// response is stamped with the model sequence it was computed at, in the
// body and the Olgapro-Model-Seq header.
func (s *Server) handleQueryPartials(w http.ResponseWriter, r *http.Request) {
	var req wire.QueryPartialsRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad partials request: %v", err)
		return
	}
	e, ok := s.reg.Get(req.UDF)
	if !ok {
		s.fail(w, http.StatusNotFound, wire.CodeNotFound, "no UDF %q registered", req.UDF)
		return
	}
	if len(req.Rows) == 0 {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "partials request needs at least one row")
		return
	}
	if len(req.Rows) > maxQueryRows {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "partials request has %d rows, cap is %d", len(req.Rows), maxQueryRows)
		return
	}
	stages := 0
	for _, set := range []bool{req.Window != nil, req.GroupBy != nil, req.TopK != nil} {
		if set {
			stages++
		}
	}
	if stages > 1 {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "partials request carries %d stages, want at most one (the router runs later stages on the merged state)", stages)
		return
	}
	seq := e.Seq()
	if seq < req.MinSeq {
		s.fail(w, http.StatusConflict, wire.CodeModelCold, "UDF %q at model seq %d, request requires %d (replica catching up)",
			req.UDF, seq, req.MinSeq)
		return
	}
	dim := e.def.entry.Dim
	tuples := make([]*query.Tuple, len(req.Rows))
	for i, row := range req.Rows {
		if i > 0 && row.Ord <= req.Rows[i-1].Ord {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "row %d: ordinal %d not above predecessor %d", i, row.Ord, req.Rows[i-1].Ord)
			return
		}
		if len(row.Input) != dim {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "row %d has %d attributes, UDF %q wants %d",
				i, len(row.Input), e.spec.Name, dim)
			return
		}
		t, err := row.Input.Tuple(row.Ord)
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "row %d: %v", i, err)
			return
		}
		tuples[i] = t.With("g", query.Str(row.Group))
	}

	if !s.tryAdmit() {
		s.fail(w, http.StatusTooManyRequests, wire.CodeOverCapacity, "at capacity (%d tuples in flight)", cap(s.inflight))
		return
	}
	defer s.release()

	var pred *mc.Predicate
	if req.Predicate != nil {
		p, err := req.Predicate.Predicate()
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
			return
		}
		pred = p
	}

	pool, release, err := e.frozenPool(r.Context(), s.cfg.Workers)
	if err != nil {
		s.failErr(w, err, "%v", err)
		return
	}
	defer release()

	// Each tuple's RNG stream comes from its global ordinal, so this shard
	// evaluates its subset exactly as a single shard holding the whole union
	// relation would.
	ords := make([]int64, len(req.Rows))
	for i, row := range req.Rows {
		ords[i] = row.Ord
	}
	opts := exec.Options{Ctx: r.Context(), Seed: req.Seed, Ords: ords, Predicate: pred, KeepEnvelope: true}
	pe := pool.Apply(query.NewScan(tuples), wire.AttrNames(dim), "y", opts)
	defer pe.Close()
	survivors, err := query.Drain(pe)
	if err != nil {
		s.failErr(w, err, "%v", err)
		return
	}
	e.served.Add(int64(len(req.Rows)))

	resp := wire.QueryPartials{UDF: req.UDF, ModelSeq: seq, Dropped: pe.Dropped}
	survOrds := make([]int64, len(survivors))
	for i, t := range survivors {
		survOrds[i] = t.MustGet("id").I
	}
	switch {
	case req.Window != nil:
		spec, err := req.Window.Spec()
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
			return
		}
		for i, t := range survivors {
			pr := wire.PartialRow{Ord: survOrds[i]}
			for _, agg := range spec.Aggs {
				it, err := query.PartialItemOf(t, agg, survOrds[i])
				if err != nil {
					s.failErr(w, err, "window item for tuple %d: %v", survOrds[i], err)
					return
				}
				pr.Items = append(pr.Items, wire.ItemOf(it))
			}
			resp.Rows = append(resp.Rows, pr)
		}
	case req.GroupBy != nil:
		spec, err := req.GroupBy.Spec()
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
			return
		}
		groups, err := query.GroupPartialsOf(survivors, survOrds, spec)
		if err != nil {
			s.failErr(w, err, "%v", err)
			return
		}
		for _, gp := range groups {
			g, err := wire.GroupPartialOf(gp)
			if err != nil {
				s.fail(w, http.StatusInternalServerError, wire.CodeInternal, "%v", err)
				return
			}
			resp.Groups = append(resp.Groups, g)
		}
	case req.TopK != nil:
		spec, err := req.TopK.Spec()
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
			return
		}
		keys := make([]query.RankKey, len(survivors))
		for i, t := range survivors {
			keys[i], err = query.RankKeyOf(t, spec, survOrds[i])
			if err != nil {
				s.failErr(w, err, "rank key for tuple %d: %v", survOrds[i], err)
				return
			}
		}
		// Prune answer payloads the merge cannot use: a tuple already beaten
		// by k certainly-existing local rivals is certainly outside the
		// global top k too (rivals only accumulate across shards), so only
		// its rank key travels.
		certAbove := query.CertAbove(keys)
		for i, t := range survivors {
			rk := wire.RankKeyOf(keys[i])
			pr := wire.PartialRow{Ord: survOrds[i], Rank: &rk}
			if spec.K <= 0 || certAbove[i] < spec.K {
				row, err := encodeQueryTuple(t, e.cfg.Eps)
				if err != nil {
					s.fail(w, http.StatusInternalServerError, wire.CodeInternal, "encode tuple %d: %v", survOrds[i], err)
					return
				}
				pr.Row = row
			}
			resp.Rows = append(resp.Rows, pr)
		}
	default:
		for i, t := range survivors {
			row, err := encodeQueryTuple(t, e.cfg.Eps)
			if err != nil {
				s.fail(w, http.StatusInternalServerError, wire.CodeInternal, "encode tuple %d: %v", survOrds[i], err)
				return
			}
			resp.Rows = append(resp.Rows, wire.PartialRow{Ord: survOrds[i], Row: row})
		}
	}
	w.Header().Set(wire.HeaderModelSeq, strconv.FormatInt(seq, 10))
	s.writeJSON(w, http.StatusOK, resp)
}

// encodeQueryTuple flattens one answer tuple into ordered wire values.
func encodeQueryTuple(t *query.Tuple, eps float64) ([]wire.QueryValue, error) {
	row := make([]wire.QueryValue, 0, t.Len())
	for _, name := range t.Names() {
		v := t.MustGet(name)
		if v.Kind == query.KindResult {
			res := resultForValue(v, eps)
			tep := v.TEP
			row = append(row, wire.QueryValue{Name: name, Kind: v.Kind.String(), Result: &res, TEP: &tep})
			continue
		}
		qv, err := wire.EncodeValue(name, v)
		if err != nil {
			return nil, err
		}
		row = append(row, qv)
	}
	return row, nil
}

// resultForValue is resultOf over a query result value: the engine metadata
// comes from Value.Out, but the distribution summarized is Value.R — the
// predicate-truncated one the relational layer carries — not the raw engine
// output.
func resultForValue(v query.Value, eps float64) EvalResult {
	var meta core.Output
	if v.Out != nil {
		meta = *v.Out
	}
	meta.Dist = v.R
	meta.Envelope = nil
	return resultOf(0, &meta, eps)
}
