package server

// This file is the bounded-query endpoint: POST /v1/query runs a whole
// uncertain-algebra plan — UDF application with optional §5.5 TEP filter,
// then optional window / group-by / top-k stages with [certain, possible]
// answers — against one registered UDF's frozen clones. Responses are a
// deterministic function of (model state, request): per-tuple seeding plus
// the deterministic bounded operators make the bytes replayable across
// snapshot→restart, exactly like ?learn=false streams.

import (
	"fmt"
	"net/http"

	"olgapro/internal/core"
	"olgapro/internal/exec"
	"olgapro/internal/mc"
	"olgapro/internal/query"
	"olgapro/internal/server/wire"
)

// maxQueryRows caps one /v1/query relation; larger queries should stream.
const maxQueryRows = 4096

// queryRow is one input tuple of the request relation: the UDF input spec
// plus an optional group label (exposed as certain attribute "g").
type queryRow struct {
	Input wire.InputSpec `json:"input"`
	Group string         `json:"group,omitempty"`
}

// queryRequest is the wire form of one bounded query.
type queryRequest struct {
	UDF       string              `json:"udf"`
	Rows      []queryRow          `json:"rows"`
	Seed      int64               `json:"seed"`
	Predicate *wire.PredicateSpec `json:"predicate,omitempty"`
	Window    *wire.WindowSpec    `json:"window,omitempty"`
	GroupBy   *wire.GroupBySpec   `json:"group_by,omitempty"`
	TopK      *wire.TopKSpec      `json:"topk,omitempty"`
}

// queryValue is the deterministic wire form of one output attribute.
// Exactly one payload field is set, matching Kind.
type queryValue struct {
	Name    string            `json:"name"`
	Kind    string            `json:"kind"`
	Int     *int64            `json:"int,omitempty"`
	Float   *float64          `json:"float,omitempty"`
	Str     *string           `json:"str,omitempty"`
	Dist    *wire.DistSpec    `json:"dist,omitempty"`
	Bounded *wire.BoundedJSON `json:"bounded,omitempty"`
	Result  *EvalResult       `json:"result,omitempty"`
	TEP     *float64          `json:"tep,omitempty"`
}

// queryResponse is the wire form of the answer relation. Field order is
// fixed by the struct, so equal results marshal to equal bytes.
type queryResponse struct {
	UDF     string         `json:"udf"`
	Rows    [][]queryValue `json:"rows"`
	Dropped int            `json:"dropped"`
}

// handleQuery runs one bounded query on frozen clones.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad query request: %v", err)
		return
	}
	e, ok := s.reg.Get(req.UDF)
	if !ok {
		s.fail(w, http.StatusNotFound, wire.CodeNotFound, "no UDF %q registered", req.UDF)
		return
	}
	if len(req.Rows) == 0 {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "query needs at least one row")
		return
	}
	if len(req.Rows) > maxQueryRows {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "query has %d rows, cap is %d (use /udfs/{name}/stream for bulk evaluation)",
			len(req.Rows), maxQueryRows)
		return
	}
	dim := e.def.entry.Dim
	tuples := make([]*query.Tuple, len(req.Rows))
	for i, row := range req.Rows {
		if len(row.Input) != dim {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "row %d has %d attributes, UDF %q wants %d",
				i, len(row.Input), e.spec.Name, dim)
			return
		}
		t, err := row.Input.Tuple(int64(i))
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "row %d: %v", i, err)
			return
		}
		tuples[i] = t.With("g", query.Str(row.Group))
	}

	// One admission token covers the whole plan: the request is a single
	// bounded unit of work (≤ maxQueryRows evaluations on frozen clones),
	// and per-row tokens could deadlock against the pool's own fan-out.
	if !s.tryAdmit() {
		s.fail(w, http.StatusTooManyRequests, wire.CodeOverCapacity, "at capacity (%d tuples in flight)", cap(s.inflight))
		return
	}
	defer s.release()

	var pred *mc.Predicate
	if req.Predicate != nil {
		p, err := req.Predicate.Predicate()
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
			return
		}
		pred = p
	}

	pool, release, err := e.frozenPool(r.Context(), s.cfg.Workers)
	if err != nil {
		s.failErr(w, err, "%v", err)
		return
	}
	defer release()

	opts := exec.Options{Ctx: r.Context(), Seed: req.Seed, Predicate: pred, KeepEnvelope: true}
	pe := pool.Apply(query.NewScan(tuples), wire.AttrNames(dim), "y", opts)
	defer pe.Close()

	plan := query.FromIterator(pe)
	if req.Window != nil {
		spec, err := req.Window.Spec()
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
			return
		}
		plan = plan.Window(spec)
	}
	if req.GroupBy != nil {
		spec, err := req.GroupBy.Spec()
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
			return
		}
		plan = plan.GroupBy(spec)
	}
	if req.TopK != nil {
		spec, err := req.TopK.Spec()
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
			return
		}
		plan = plan.TopK(spec)
	}
	out, err := plan.Run()
	if err != nil {
		s.failErr(w, err, "%v", err)
		return
	}
	e.served.Add(int64(len(req.Rows)))

	resp := queryResponse{UDF: req.UDF, Dropped: pe.Dropped, Rows: make([][]queryValue, len(out))}
	for i, t := range out {
		row, err := encodeQueryTuple(t, e.cfg.Eps)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, wire.CodeInternal, "encode row %d: %v", i, err)
			return
		}
		resp.Rows[i] = row
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// encodeQueryTuple flattens one answer tuple into ordered wire values.
func encodeQueryTuple(t *query.Tuple, eps float64) ([]queryValue, error) {
	row := make([]queryValue, 0, t.Len())
	for _, name := range t.Names() {
		v := t.MustGet(name)
		qv := queryValue{Name: name, Kind: v.Kind.String()}
		switch v.Kind {
		case query.KindInt:
			i := v.I
			qv.Int = &i
		case query.KindFloat:
			f := v.F
			qv.Float = &f
		case query.KindString:
			s := v.S
			qv.Str = &s
		case query.KindUncertain:
			spec, err := wire.SpecOf(v.D)
			if err != nil {
				return nil, fmt.Errorf("attribute %q: %w", name, err)
			}
			qv.Dist = &spec
		case query.KindBounded:
			b := wire.BoundedOf(v.B)
			qv.Bounded = &b
		case query.KindResult:
			res := resultForValue(v, eps)
			qv.Result = &res
			tep := v.TEP
			qv.TEP = &tep
		default:
			return nil, fmt.Errorf("attribute %q: cannot encode kind %s", name, v.Kind)
		}
		row = append(row, qv)
	}
	return row, nil
}

// resultForValue is resultOf over a query result value: the engine metadata
// comes from Value.Out, but the distribution summarized is Value.R — the
// predicate-truncated one the relational layer carries — not the raw engine
// output.
func resultForValue(v query.Value, eps float64) EvalResult {
	var meta core.Output
	if v.Out != nil {
		meta = *v.Out
	}
	meta.Dist = v.R
	meta.Envelope = nil
	return resultOf(0, &meta, eps)
}
