package wire

import (
	"encoding/json"
	"reflect"
	"testing"

	"olgapro/internal/mc"
	"olgapro/internal/query"
)

// TestPredicateSpecRoundTrip: JSON → spec → predicate → spec → JSON is the
// identity, and invalid specs are rejected before reaching the engine.
func TestPredicateSpecRoundTrip(t *testing.T) {
	var s PredicateSpec
	if err := json.Unmarshal([]byte(`{"a": 0, "b": 25, "theta": 0.2}`), &s); err != nil {
		t.Fatal(err)
	}
	p, err := s.Predicate()
	if err != nil {
		t.Fatal(err)
	}
	if *p != (mc.Predicate{A: 0, B: 25, Theta: 0.2}) {
		t.Fatalf("predicate: %+v", p)
	}
	if SpecOfPredicate(p) != s {
		t.Fatalf("round trip: %+v", SpecOfPredicate(p))
	}
	for _, bad := range []PredicateSpec{
		{A: 2, B: 1, Theta: 0.5},
		{A: 1, B: 1, Theta: 0.5},
		{A: 0, B: 1, Theta: -0.1},
		{A: 0, B: 1, Theta: 1.1},
	} {
		if _, err := bad.Predicate(); err == nil {
			t.Errorf("spec %+v should be rejected", bad)
		}
	}
}

func TestStatSpecRoundTrip(t *testing.T) {
	cases := []struct {
		spec StatSpec
		want query.Stat
	}{
		{StatSpec{}, query.MeanStat()},
		{StatSpec{Kind: "mean"}, query.MeanStat()},
		{StatSpec{Kind: "quantile", P: 0.9}, query.QuantileStat(0.9)},
	}
	for _, c := range cases {
		st, err := c.spec.Stat()
		if err != nil {
			t.Fatal(err)
		}
		if st != c.want {
			t.Fatalf("%+v → %+v, want %+v", c.spec, st, c.want)
		}
		// The inverse normalizes the empty kind to "mean".
		back, err := SpecOfStat(st).Stat()
		if err != nil || back != st {
			t.Fatalf("round trip of %+v: %+v, %v", st, back, err)
		}
	}
	if _, err := (StatSpec{Kind: "median"}).Stat(); err == nil {
		t.Error("unknown stat kind should fail")
	}
	if _, err := (StatSpec{Kind: "quantile", P: 1.5}).Stat(); err == nil {
		t.Error("out-of-range quantile should fail")
	}
}

func TestAggSpecRoundTrip(t *testing.T) {
	aggs := []query.Agg{
		query.Count(),
		query.Sum("y"),
		query.Avg("y").WithStat(query.QuantileStat(0.5)).Named("med_avg"),
		query.Min("y"),
		query.Max("y").Named("peak"),
	}
	for _, a := range aggs {
		got, err := SpecOfAgg(a).Agg()
		if err != nil {
			t.Fatal(err)
		}
		if got != a {
			t.Fatalf("round trip: %+v → %+v", a, got)
		}
	}
	if _, err := (AggSpec{Kind: "median"}).Agg(); err == nil {
		t.Error("unknown aggregate kind should fail")
	}
	if _, err := (AggSpec{Kind: "sum"}).Agg(); err == nil {
		t.Error("value aggregate without attr should fail")
	}
}

func TestTopKSpecRoundTrip(t *testing.T) {
	var s TopKSpec
	raw := `{"k": 5, "by": "y", "stat": {"kind": "quantile", "p": 0.9}, "desc": true, "as": "r"}`
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatal(err)
	}
	spec, err := s.Spec()
	if err != nil {
		t.Fatal(err)
	}
	want := query.RankSpec{By: "y", Stat: query.QuantileStat(0.9), K: 5, Desc: true, As: "r"}
	if spec != want {
		t.Fatalf("spec: %+v", spec)
	}
	if got := SpecOfTopK(spec); !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip: %+v vs %+v", got, s)
	}
	if _, err := (TopKSpec{K: 3}).Spec(); err == nil {
		t.Error("top-k without by should fail")
	}
}

func TestWindowSpecRoundTrip(t *testing.T) {
	var s WindowSpec
	raw := `{"size": 10, "step": 5, "aggs": [{"kind": "count"}, {"kind": "avg", "attr": "y"}]}`
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatal(err)
	}
	spec, err := s.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Size != 10 || spec.Step != 5 || len(spec.Aggs) != 2 {
		t.Fatalf("spec: %+v", spec)
	}
	back, err := SpecOfWindow(spec).Spec()
	if err != nil || !reflect.DeepEqual(back, spec) {
		t.Fatalf("round trip: %+v, %v", back, err)
	}
	if _, err := (WindowSpec{Size: 0, Aggs: s.Aggs}).Spec(); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := (WindowSpec{Size: 3}).Spec(); err == nil {
		t.Error("no aggregates should fail")
	}
	if _, err := (WindowSpec{Size: 3, Aggs: []AggSpec{{Kind: "nope"}}}).Spec(); err == nil {
		t.Error("bad nested aggregate should fail")
	}
}

func TestGroupBySpecRoundTrip(t *testing.T) {
	var s GroupBySpec
	raw := `{"keys": ["g"], "aggs": [{"kind": "count"}, {"kind": "max", "attr": "y"}]}`
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatal(err)
	}
	spec, err := s.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Keys) != 1 || spec.Keys[0] != "g" || len(spec.Aggs) != 2 {
		t.Fatalf("spec: %+v", spec)
	}
	back, err := SpecOfGroupBy(spec).Spec()
	if err != nil || !reflect.DeepEqual(back, spec) {
		t.Fatalf("round trip: %+v, %v", back, err)
	}
	if _, err := (GroupBySpec{Aggs: s.Aggs}).Spec(); err == nil {
		t.Error("no keys should fail")
	}
	if _, err := (GroupBySpec{Keys: []string{"g"}}).Spec(); err == nil {
		t.Error("no aggregates should fail")
	}
}

func TestBoundedJSON(t *testing.T) {
	b := BoundedOf(query.Bounded{Lo: 1, Hi: 2, Certain: true})
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"lo":1,"hi":2,"certain":true}` {
		t.Fatalf("json: %s", raw)
	}
}
