// Package wire is the shared input codec for every external entry point of
// the system: it turns outside descriptions of uncertain data — JSON
// distribution specs arriving over the network, catalog rows loaded from
// CSV — into the dist.Dist / query.Tuple values the engines consume.
// internal/server (the HTTP service), cmd/olgapro, and the experiment
// harness all construct their tuples through this package, so one set of
// validation and construction semantics covers the whole surface instead of
// each binary growing its own copy.
package wire

import (
	"fmt"
	"strconv"

	"olgapro/internal/dist"
	"olgapro/internal/query"
	"olgapro/internal/sdss"
)

// DistSpec is the wire (JSON) form of one uncertain scalar attribute. Type
// selects the family; the family's parameter fields apply and the rest are
// ignored:
//
//	{"type":"normal",      "mu":5.0, "sigma":0.5}
//	{"type":"uniform",     "lo":0,   "hi":1}
//	{"type":"gamma",       "shape":2.2, "scale":0.09, "loc":0.01}
//	{"type":"exponential", "rate":3}
//	{"type":"constant",    "value":42}
//	{"type":"mixture",     "weights":[1,3], "components":[...]}
type DistSpec struct {
	Type string `json:"type"`

	// Normal.
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
	// Uniform.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// Gamma.
	Shape float64 `json:"shape,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	Loc   float64 `json:"loc,omitempty"`
	// Exponential.
	Rate float64 `json:"rate,omitempty"`
	// Constant.
	Value float64 `json:"value,omitempty"`
	// Mixture.
	Weights    []float64  `json:"weights,omitempty"`
	Components []DistSpec `json:"components,omitempty"`
}

// Dist validates the spec and builds the distribution it describes.
func (s DistSpec) Dist() (dist.Dist, error) {
	switch s.Type {
	case "normal":
		if !(s.Sigma > 0) {
			return nil, fmt.Errorf("wire: normal needs sigma > 0, got %g", s.Sigma)
		}
		return dist.Normal{Mu: s.Mu, Sigma: s.Sigma}, nil
	case "uniform":
		if !(s.Hi > s.Lo) {
			return nil, fmt.Errorf("wire: uniform needs hi > lo, got [%g, %g]", s.Lo, s.Hi)
		}
		return dist.Uniform{A: s.Lo, B: s.Hi}, nil
	case "gamma":
		if !(s.Shape > 0) || !(s.Scale > 0) {
			return nil, fmt.Errorf("wire: gamma needs shape > 0 and scale > 0, got %g/%g", s.Shape, s.Scale)
		}
		return dist.Gamma{K: s.Shape, Theta: s.Scale, Loc: s.Loc}, nil
	case "exponential":
		if !(s.Rate > 0) {
			return nil, fmt.Errorf("wire: exponential needs rate > 0, got %g", s.Rate)
		}
		return dist.Exponential{Rate: s.Rate}, nil
	case "constant":
		return dist.Constant{V: s.Value}, nil
	case "mixture":
		if len(s.Components) == 0 {
			return nil, fmt.Errorf("wire: mixture needs at least one component")
		}
		comps := make([]dist.Dist, len(s.Components))
		for i, cs := range s.Components {
			c, err := cs.Dist()
			if err != nil {
				return nil, fmt.Errorf("wire: mixture component %d: %w", i, err)
			}
			comps[i] = c
		}
		return dist.NewMixture(s.Weights, comps...)
	case "":
		return nil, fmt.Errorf("wire: distribution spec missing \"type\"")
	default:
		return nil, fmt.Errorf("wire: unknown distribution type %q (want normal, uniform, gamma, exponential, constant, or mixture)", s.Type)
	}
}

// SpecOf is the inverse of Dist: the wire form of a scalar distribution.
// It covers every family DistSpec can express.
func SpecOf(d dist.Dist) (DistSpec, error) {
	switch dd := d.(type) {
	case dist.Normal:
		return DistSpec{Type: "normal", Mu: dd.Mu, Sigma: dd.Sigma}, nil
	case dist.Uniform:
		return DistSpec{Type: "uniform", Lo: dd.A, Hi: dd.B}, nil
	case dist.Gamma:
		return DistSpec{Type: "gamma", Shape: dd.K, Scale: dd.Theta, Loc: dd.Loc}, nil
	case dist.Exponential:
		return DistSpec{Type: "exponential", Rate: dd.Rate}, nil
	case dist.Constant:
		return DistSpec{Type: "constant", Value: dd.V}, nil
	case *dist.Mixture:
		s := DistSpec{Type: "mixture"}
		for i := 0; i < dd.Components(); i++ {
			c, w := dd.Component(i)
			cs, err := SpecOf(c)
			if err != nil {
				return DistSpec{}, fmt.Errorf("wire: mixture component %d: %w", i, err)
			}
			s.Components = append(s.Components, cs)
			s.Weights = append(s.Weights, w)
		}
		return s, nil
	default:
		return DistSpec{}, fmt.Errorf("wire: cannot encode distribution type %T", d)
	}
}

// InputSpec is the wire form of a whole uncertain input tuple: one spec per
// UDF input dimension, treated as independent attributes (the paper's
// per-attribute measurement-error model).
type InputSpec []DistSpec

// Vector builds the joint input distribution.
func (in InputSpec) Vector() (dist.Vector, error) {
	comps := make([]dist.Dist, len(in))
	for i, s := range in {
		d, err := s.Dist()
		if err != nil {
			return nil, fmt.Errorf("wire: input[%d]: %w", i, err)
		}
		comps[i] = d
	}
	return dist.NewIndependent(comps...), nil
}

// Attr returns the canonical name of input dimension i ("x0", "x1", …).
func Attr(i int) string { return "x" + strconv.Itoa(i) }

// AttrNames returns the canonical input attribute names for a d-input UDF —
// the Inputs list handed to query.ApplyUDF / exec.Pool.Apply for tuples
// built by UncertainTuple or InputSpec.Tuple.
func AttrNames(d int) []string {
	names := make([]string, d)
	for i := range names {
		names[i] = Attr(i)
	}
	return names
}

// UncertainTuple builds the canonical relation tuple for an uncertain input:
// an integer "id" plus the given per-dimension distributions under the
// canonical attribute names.
func UncertainTuple(id int64, attrs ...dist.Dist) *query.Tuple {
	names := make([]string, 0, len(attrs)+1)
	vals := make([]query.Value, 0, len(attrs)+1)
	names = append(names, "id")
	vals = append(vals, query.Int(id))
	for i, d := range attrs {
		names = append(names, Attr(i))
		vals = append(vals, query.Uncertain(d))
	}
	return query.MustTuple(names, vals)
}

// Tuple validates the spec and builds its canonical relation tuple with the
// given id.
func (in InputSpec) Tuple(id int64) (*query.Tuple, error) {
	attrs := make([]dist.Dist, len(in))
	for i, s := range in {
		d, err := s.Dist()
		if err != nil {
			return nil, fmt.Errorf("wire: input[%d]: %w", i, err)
		}
		attrs[i] = d
	}
	return UncertainTuple(id, attrs...), nil
}

// GalaxyRelation converts a catalog into the uncertain relation of queries
// Q1/Q2 — one tuple per galaxy with Gaussian position and redshift
// attributes. Shared by cmd/olgapro and the serving layer so both load
// catalogs identically.
func GalaxyRelation(cat *sdss.Catalog) []*query.Tuple {
	rel := make([]*query.Tuple, len(cat.Galaxies))
	for i, g := range cat.Galaxies {
		rel[i] = query.GalaxyTuple(g.ObjID, g.RA, g.Dec, g.RAErr, g.DecErr, g.Redshift, g.RedshiftErr)
	}
	return rel
}
