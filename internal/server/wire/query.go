package wire

// This file is the wire form of the bounded-query surface, single-shard and
// distributed: the POST /v1/query request/response bodies, the
// POST /v1/query/partials sub-plan the fleet router scatters to shards, and
// the partial-result bodies it gathers back — mergeable interval state
// (internal/query Partial / GroupPartial / RankKey) stamped with model
// sequence numbers so the router detects a replica mid-catch-up and
// retries. Every float field that can legitimately be negative zero or an
// exact bit pattern is encoded without omitempty: encoding/json's
// shortest-round-trip float formatting then makes equal values marshal to
// equal bytes, which the cross-shard bit-identity gate depends on.

import (
	"fmt"

	"olgapro/internal/query"
)

// MaxQueryRows caps the relation of one /v1/query — and the merged answer
// relation of a cross-shard query. Larger inputs should stream
// (POST /v1/udfs/{name}/stream); a merged answer over the cap is refused
// with a structured over_capacity error, never truncated silently.
const MaxQueryRows = 4096

// QueryRow is one input tuple of the request relation: the UDF input spec
// plus an optional group label (exposed as certain attribute "g"). UDF, on
// a fleet router, routes the row to a specific UDF instance — rows of one
// request may target instances owned by different shards; empty means the
// request-level UDF.
type QueryRow struct {
	Input InputSpec `json:"input"`
	Group string    `json:"group,omitempty"`
	UDF   string    `json:"udf,omitempty"`
}

// QueryRequest is the wire form of one bounded query (POST /v1/query).
type QueryRequest struct {
	UDF       string         `json:"udf"`
	Rows      []QueryRow     `json:"rows"`
	Seed      int64          `json:"seed"`
	Predicate *PredicateSpec `json:"predicate,omitempty"`
	Window    *WindowSpec    `json:"window,omitempty"`
	GroupBy   *GroupBySpec   `json:"group_by,omitempty"`
	TopK      *TopKSpec      `json:"topk,omitempty"`
	// RequireSeq, per UDF instance, refuses service from any replica whose
	// model sequence is below the given number (model_cold, HTTP 409) —
	// read-your-writes across replica catch-up.
	RequireSeq map[string]int64 `json:"require_seq,omitempty"`
}

// QueryValue is the deterministic wire form of one output attribute.
// Exactly one payload field is set, matching Kind.
type QueryValue struct {
	Name    string       `json:"name"`
	Kind    string       `json:"kind"`
	Int     *int64       `json:"int,omitempty"`
	Float   *float64     `json:"float,omitempty"`
	Str     *string      `json:"str,omitempty"`
	Dist    *DistSpec    `json:"dist,omitempty"`
	Bounded *BoundedJSON `json:"bounded,omitempty"`
	Result  *EvalResult  `json:"result,omitempty"`
	TEP     *float64     `json:"tep,omitempty"`
}

// QueryResponse is the wire form of the answer relation. Field order is
// fixed by the struct, so equal results marshal to equal bytes.
type QueryResponse struct {
	UDF     string         `json:"udf"`
	Rows    [][]QueryValue `json:"rows"`
	Dropped int            `json:"dropped"`
}

// PartialRowSpec is one input tuple of a scattered sub-plan: the input spec
// plus the tuple's global ordinal in the union relation, which seeds its
// RNG stream (query.TupleSeed) and orders it against every other shard's
// tuples.
type PartialRowSpec struct {
	Ord   int64     `json:"ord"`
	Input InputSpec `json:"input"`
	Group string    `json:"group,omitempty"`
}

// QueryPartialsRequest is the POST /v1/query/partials body: the per-shard
// sub-plan of a distributed query. At most one stage (window / group_by /
// topk) is set — the first stage of the original plan; the router runs any
// later stages over the merged partials itself.
type QueryPartialsRequest struct {
	UDF       string           `json:"udf"`
	Rows      []PartialRowSpec `json:"rows"`
	Seed      int64            `json:"seed"`
	Predicate *PredicateSpec   `json:"predicate,omitempty"`
	// MinSeq refuses service when the shard's model sequence for UDF is
	// below it (model_cold, HTTP 409): the replica is mid-catch-up and the
	// router should retry another member of the replica set.
	MinSeq  int64        `json:"min_seq,omitempty"`
	Window  *WindowSpec  `json:"window,omitempty"`
	GroupBy *GroupBySpec `json:"group_by,omitempty"`
	TopK    *TopKSpec    `json:"topk,omitempty"`
}

// AggItemJSON is one tuple's contribution to a distributed aggregate
// (query.PartialItem): its statistic interval, existence certainty, and
// global ordinal. Lo and Hi are never omitted — negative zero must survive
// the round trip bit-exactly.
type AggItemJSON struct {
	Ord  int64   `json:"ord"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
	Sure bool    `json:"sure"`
}

// ItemOf converts a partial item to its wire form.
func ItemOf(it query.PartialItem) AggItemJSON {
	return AggItemJSON{Ord: it.Ord, Lo: it.Lo, Hi: it.Hi, Sure: it.Sure}
}

// Item rebuilds the partial item.
func (a AggItemJSON) Item() query.PartialItem {
	return query.PartialItem{Ord: a.Ord, Lo: a.Lo, Hi: a.Hi, Sure: a.Sure}
}

// RankKeyJSON is one tuple's oriented top-k rank key (query.RankKey minus
// the ordinal, which the enclosing PartialRow carries).
type RankKeyJSON struct {
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
	Sure bool    `json:"sure"`
}

// RankKeyOf converts an oriented rank key to its wire form.
func RankKeyOf(k query.RankKey) RankKeyJSON {
	return RankKeyJSON{Lo: k.Lo, Hi: k.Hi, Sure: k.Sure}
}

// Key rebuilds the rank key at the given global ordinal.
func (r RankKeyJSON) Key(ord int64) query.RankKey {
	return query.RankKey{Ord: ord, Lo: r.Lo, Hi: r.Hi, Sure: r.Sure}
}

// AggPartialJSON is the wire form of one mergeable aggregate state
// (query.Partial). The scalar envelope fields are meaningful only for
// min/max and only when the matching counter is positive; the conversions
// restore the fold-identity sentinels (±Inf, which JSON cannot carry) from
// N and Sure on decode.
type AggPartialJSON struct {
	Kind    string        `json:"kind"`
	N       int           `json:"n"`
	Sure    int           `json:"sure"`
	Lo      float64       `json:"lo"`
	SureCap float64       `json:"sure_cap"`
	AllCap  float64       `json:"all_cap"`
	Items   []AggItemJSON `json:"items,omitempty"`
}

// PartialOf converts an aggregate partial to its wire form.
func PartialOf(p *query.Partial) AggPartialJSON {
	a := AggPartialJSON{Kind: p.Kind.String(), N: p.N, Sure: p.Sure}
	if p.Kind == query.AggMin || p.Kind == query.AggMax {
		if p.N > 0 {
			a.Lo, a.AllCap = p.Lo, p.AllCap
		}
		if p.Sure > 0 {
			a.SureCap = p.SureCap
		}
	}
	for _, it := range p.Items {
		a.Items = append(a.Items, ItemOf(it))
	}
	return a
}

// Partial validates the wire form and rebuilds the mergeable state.
func (a AggPartialJSON) Partial() (*query.Partial, error) {
	kind, ok := aggKinds[a.Kind]
	if !ok {
		return nil, fmt.Errorf("wire: unknown aggregate kind %q", a.Kind)
	}
	if a.N < 0 || a.Sure < 0 || a.Sure > a.N {
		return nil, fmt.Errorf("wire: partial counters n=%d sure=%d out of range", a.N, a.Sure)
	}
	p := query.NewPartial(kind)
	p.N, p.Sure = a.N, a.Sure
	if kind == query.AggMin || kind == query.AggMax {
		if a.N > 0 {
			p.Lo, p.AllCap = a.Lo, a.AllCap
		}
		if a.Sure > 0 {
			p.SureCap = a.SureCap
		}
	}
	if kind == query.AggSum || kind == query.AggAvg {
		if len(a.Items) != a.N {
			return nil, fmt.Errorf("wire: %s partial has %d items for n=%d", a.Kind, len(a.Items), a.N)
		}
		for i, it := range a.Items {
			if i > 0 && it.Ord <= a.Items[i-1].Ord {
				return nil, fmt.Errorf("wire: partial items not in ascending ordinal order at %d", i)
			}
			p.Items = append(p.Items, it.Item())
		}
	}
	return p, nil
}

// GroupPartialJSON is the wire form of one group's mergeable state
// (query.GroupPartial): the collision-free key encoding, the key attribute
// values, the group's first-seen global ordinal, and one aggregate partial
// per spec column.
type GroupPartialJSON struct {
	Key  string           `json:"key"`
	Vals []QueryValue     `json:"vals"`
	Ord  int64            `json:"ord"`
	Aggs []AggPartialJSON `json:"aggs"`
}

// GroupPartialOf converts a group partial to its wire form.
func GroupPartialOf(gp *query.GroupPartial) (GroupPartialJSON, error) {
	g := GroupPartialJSON{Key: gp.Key, Ord: gp.Ord}
	for i, v := range gp.Vals {
		qv, err := EncodeValue("", v)
		if err != nil {
			return GroupPartialJSON{}, fmt.Errorf("wire: group %s key value %d: %w", gp.Key, i, err)
		}
		g.Vals = append(g.Vals, qv)
	}
	for _, p := range gp.Aggs {
		g.Aggs = append(g.Aggs, PartialOf(p))
	}
	return g, nil
}

// GroupPartial validates the wire form and rebuilds the mergeable state.
func (g GroupPartialJSON) GroupPartial() (*query.GroupPartial, error) {
	gp := &query.GroupPartial{Key: g.Key, Ord: g.Ord}
	for i, qv := range g.Vals {
		v, err := qv.Value()
		if err != nil {
			return nil, fmt.Errorf("wire: group %s key value %d: %w", g.Key, i, err)
		}
		gp.Vals = append(gp.Vals, v)
	}
	for i, a := range g.Aggs {
		p, err := a.Partial()
		if err != nil {
			return nil, fmt.Errorf("wire: group %s aggregate %d: %w", g.Key, i, err)
		}
		gp.Aggs = append(gp.Aggs, p)
	}
	return gp, nil
}

// PartialRow is one surviving tuple of a scattered sub-plan, in ascending
// global-ordinal order. Which payload fields are set depends on the
// sub-plan's stage: Row alone for a stageless query; Items (one entry per
// window aggregate) for a window stage; Rank plus — only when the tuple can
// still possibly reach the global top k — Row, for a top-k stage.
type PartialRow struct {
	Ord   int64         `json:"ord"`
	Row   []QueryValue  `json:"row,omitempty"`
	Items []AggItemJSON `json:"items,omitempty"`
	Rank  *RankKeyJSON  `json:"rank,omitempty"`
}

// QueryPartials is the POST /v1/query/partials response: the shard's
// partial bounded state, stamped with the model sequence it was computed at
// (also in the Olgapro-Model-Seq header) so the router can prove which
// model version answered.
type QueryPartials struct {
	UDF      string             `json:"udf"`
	ModelSeq int64              `json:"model_seq"`
	Dropped  int                `json:"dropped"`
	Rows     []PartialRow       `json:"rows,omitempty"`
	Groups   []GroupPartialJSON `json:"groups,omitempty"`
}

// EncodeValue flattens one attribute value into its wire form. It covers
// every self-contained kind (int, float, string, uncertain, bounded);
// result values need engine metadata and are encoded by the serving layer.
func EncodeValue(name string, v query.Value) (QueryValue, error) {
	qv := QueryValue{Name: name, Kind: v.Kind.String()}
	switch v.Kind {
	case query.KindInt:
		i := v.I
		qv.Int = &i
	case query.KindFloat:
		f := v.F
		qv.Float = &f
	case query.KindString:
		s := v.S
		qv.Str = &s
	case query.KindUncertain:
		spec, err := SpecOf(v.D)
		if err != nil {
			return QueryValue{}, fmt.Errorf("attribute %q: %w", name, err)
		}
		qv.Dist = &spec
	case query.KindBounded:
		b := BoundedOf(v.B)
		qv.Bounded = &b
	default:
		return QueryValue{}, fmt.Errorf("attribute %q: cannot encode kind %s", name, v.Kind)
	}
	return qv, nil
}

// Value rebuilds a self-contained attribute value from its wire form; kinds
// carrying engine metadata (result) are rejected.
func (qv QueryValue) Value() (query.Value, error) {
	switch qv.Kind {
	case "int":
		if qv.Int == nil {
			return query.Value{}, fmt.Errorf("wire: int value %q missing payload", qv.Name)
		}
		return query.Int(*qv.Int), nil
	case "float":
		if qv.Float == nil {
			return query.Value{}, fmt.Errorf("wire: float value %q missing payload", qv.Name)
		}
		return query.Float(*qv.Float), nil
	case "string":
		if qv.Str == nil {
			return query.Value{}, fmt.Errorf("wire: string value %q missing payload", qv.Name)
		}
		return query.Str(*qv.Str), nil
	case "bounded":
		if qv.Bounded == nil {
			return query.Value{}, fmt.Errorf("wire: bounded value %q missing payload", qv.Name)
		}
		return query.BoundedVal(qv.Bounded.Bounded()), nil
	default:
		return query.Value{}, fmt.Errorf("wire: cannot rebuild value %q of kind %q", qv.Name, qv.Kind)
	}
}

// Bounded is the inverse of BoundedOf.
func (b BoundedJSON) Bounded() query.Bounded {
	return query.Bounded{Lo: b.Lo, Hi: b.Hi, Certain: b.Certain}
}

// HeaderQuerySeqs is the response header a fleet router sets on a merged
// cross-shard /v1/query answer: comma-separated name:seq pairs (sorted by
// name) recording the model sequence each UDF instance answered at. It
// rides in a header so the merged body stays byte-identical to the same
// plan served by a single shard holding every instance.
const HeaderQuerySeqs = "Olgapro-Query-Seqs"

// RouteScope says which processes register an endpoint.
type RouteScope string

const (
	// ScopeBoth: served by shard servers and the fleet router alike.
	ScopeBoth RouteScope = "both"
	// ScopeShard: served only by shard servers (olgaprod).
	ScopeShard RouteScope = "shard"
	// ScopeRouter: served only by the fleet router (olgarouter).
	ScopeRouter RouteScope = "router"
)

// Route is one endpoint of the /v1 wire surface.
type Route struct {
	// Method and Path as registered on the serving mux ({name} is a path
	// parameter).
	Method, Path string
	Scope        RouteScope
}

// Routes is the canonical /v1 surface — one entry per endpoint the shard
// server and the fleet router register. Conformance tests pin it in both
// directions: every entry resolves on the serving muxes, and every entry
// (and every ErrorCode) appears in docs/api.md.
var Routes = []Route{
	{Method: "GET", Path: "/v1/healthz", Scope: ScopeBoth},
	{Method: "GET", Path: "/v1/stats", Scope: ScopeBoth},
	{Method: "GET", Path: "/v1/catalog", Scope: ScopeBoth},
	{Method: "GET", Path: "/v1/udfs", Scope: ScopeBoth},
	{Method: "POST", Path: "/v1/udfs", Scope: ScopeBoth},
	{Method: "POST", Path: "/v1/udfs/{name}/eval", Scope: ScopeBoth},
	{Method: "POST", Path: "/v1/udfs/{name}/stream", Scope: ScopeBoth},
	{Method: "POST", Path: "/v1/udfs/{name}/snapshot", Scope: ScopeBoth},
	{Method: "GET", Path: "/v1/udfs/{name}/snapshot", Scope: ScopeShard},
	{Method: "POST", Path: "/v1/snapshot", Scope: ScopeBoth},
	{Method: "POST", Path: "/v1/query", Scope: ScopeBoth},
	{Method: "POST", Path: "/v1/query/partials", Scope: ScopeShard},
	{Method: "GET", Path: "/v1/replication/udfs", Scope: ScopeShard},
	{Method: "GET", Path: "/v1/replication/members", Scope: ScopeShard},
	{Method: "POST", Path: "/v1/replication/members", Scope: ScopeShard},
	{Method: "POST", Path: "/v1/replication/hint", Scope: ScopeShard},
	{Method: "GET", Path: "/v1/fleet/members", Scope: ScopeRouter},
	{Method: "POST", Path: "/v1/fleet/members", Scope: ScopeRouter},
}
