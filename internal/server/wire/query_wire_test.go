package wire

import (
	"encoding/json"
	"math"
	"testing"

	"olgapro/internal/dist"
	"olgapro/internal/query"
)

// roundTripPartial encodes a partial to its wire form, through JSON bytes,
// and back — the exact path a scattered sub-plan result takes.
func roundTripPartial(t *testing.T, p *query.Partial) *query.Partial {
	t.Helper()
	b, err := json.Marshal(PartialOf(p))
	if err != nil {
		t.Fatal(err)
	}
	var a AggPartialJSON
	if err := json.Unmarshal(b, &a); err != nil {
		t.Fatal(err)
	}
	q, err := a.Partial()
	if err != nil {
		t.Fatalf("rebuild %s partial: %v", p.Kind, err)
	}
	return q
}

func TestAggPartialRoundTripPreservesBound(t *testing.T) {
	items := []query.PartialItem{
		{Ord: 0, Lo: -1.5, Hi: 2.25, Sure: true},
		{Ord: 3, Lo: math.Copysign(0, -1), Hi: 0.5, Sure: false},
		{Ord: 7, Lo: 4, Hi: 4, Sure: true},
	}
	for _, kind := range []query.AggKind{query.AggCount, query.AggSum, query.AggAvg, query.AggMin, query.AggMax} {
		p := query.NewPartial(kind)
		for _, it := range items {
			p.Observe(it)
		}
		q := roundTripPartial(t, p)
		want, got := p.Bound(), q.Bound()
		if want != got {
			t.Errorf("%s: bound %v after round trip, want %v", kind, got, want)
		}
		if q.N != p.N || q.Sure != p.Sure {
			t.Errorf("%s: counters (%d, %d) after round trip, want (%d, %d)", kind, q.N, q.Sure, p.N, p.Sure)
		}
	}
}

func TestAggPartialRoundTripRestoresFoldIdentities(t *testing.T) {
	// JSON cannot carry ±Inf; the conversions must restore the sentinels of
	// an empty (or no-sure-member) min/max partial so later Merges stay
	// bit-identical to serial folds.
	empty := roundTripPartial(t, query.NewPartial(query.AggMin))
	if !math.IsInf(empty.Lo, 1) || !math.IsInf(empty.SureCap, 1) || !math.IsInf(empty.AllCap, -1) {
		t.Fatalf("empty min partial sentinels not restored: %+v", empty)
	}
	noSure := query.NewPartial(query.AggMax)
	noSure.Observe(query.PartialItem{Ord: 2, Lo: 1, Hi: 3, Sure: false})
	got := roundTripPartial(t, noSure)
	if !math.IsInf(got.SureCap, 1) {
		t.Fatalf("sure cap sentinel not restored: %+v", got)
	}
	if got.Bound() != noSure.Bound() {
		t.Fatalf("bound %v after round trip, want %v", got.Bound(), noSure.Bound())
	}
}

func TestAggPartialRejectsMalformedWireState(t *testing.T) {
	cases := []struct {
		name string
		a    AggPartialJSON
	}{
		{"unknown kind", AggPartialJSON{Kind: "median", N: 1}},
		{"negative n", AggPartialJSON{Kind: "count", N: -1}},
		{"sure above n", AggPartialJSON{Kind: "count", N: 1, Sure: 2}},
		{"sum item count mismatch", AggPartialJSON{Kind: "sum", N: 2, Items: []AggItemJSON{{Ord: 0}}}},
		{"items out of ordinal order", AggPartialJSON{Kind: "avg", N: 2, Items: []AggItemJSON{{Ord: 5}, {Ord: 5}}}},
	}
	for _, tc := range cases {
		if _, err := tc.a.Partial(); err == nil {
			t.Errorf("%s: accepted %+v", tc.name, tc.a)
		}
	}
}

func TestRankKeyRoundTrip(t *testing.T) {
	k := query.RankKey{Ord: 42, Lo: -0.5, Hi: 1.5, Sure: true}
	got := RankKeyOf(k).Key(42)
	if got != k {
		t.Fatalf("round trip %+v, want %+v", got, k)
	}
}

func TestEncodeValueRoundTrip(t *testing.T) {
	vals := []query.Value{
		query.Int(-7),
		query.Float(math.Copysign(0, -1)),
		query.Str("g"),
		query.BoundedVal(query.Bounded{Lo: 1, Hi: 3, Certain: true}),
	}
	for _, v := range vals {
		qv, err := EncodeValue("a", v)
		if err != nil {
			t.Fatalf("encode %s: %v", v.Kind, err)
		}
		got, err := qv.Value()
		if err != nil {
			t.Fatalf("rebuild %s: %v", v.Kind, err)
		}
		if got.String() != v.String() || got.Kind != v.Kind {
			t.Errorf("%s: round trip %v, want %v", v.Kind, got, v)
		}
	}
	// Negative zero must survive bit-exactly, not just compare equal.
	qv, _ := EncodeValue("z", query.Float(math.Copysign(0, -1)))
	got, _ := qv.Value()
	if math.Signbit(got.F) != true {
		t.Fatal("negative zero lost its sign in the round trip")
	}
}

func TestEncodeValueUncertainAndRejections(t *testing.T) {
	qv, err := EncodeValue("x", query.Uncertain(dist.Normal{Mu: 0.3, Sigma: 0.1}))
	if err != nil {
		t.Fatal(err)
	}
	if qv.Kind != "uncertain" || qv.Dist == nil {
		t.Fatalf("uncertain encoding: %+v", qv)
	}
	// Uncertain values are not self-contained on the answer side.
	if _, err := qv.Value(); err == nil {
		t.Fatal("rebuilt an uncertain value without a dist registry")
	}
	if _, err := EncodeValue("r", query.Value{Kind: query.KindResult}); err == nil {
		t.Fatal("encoded a result value without engine metadata")
	}
	for _, kind := range []string{"int", "float", "string", "bounded"} {
		if _, err := (QueryValue{Name: "p", Kind: kind}).Value(); err == nil {
			t.Errorf("%s: rebuilt a value with no payload", kind)
		}
	}
}

func TestGroupPartialRoundTrip(t *testing.T) {
	agg := query.NewPartial(query.AggAvg)
	agg.Observe(query.PartialItem{Ord: 1, Lo: 2, Hi: 3, Sure: true})
	gp := &query.GroupPartial{
		Key:  "k\x00b",
		Vals: []query.Value{query.Str("b"), query.Int(4)},
		Ord:  1,
		Aggs: []*query.Partial{agg},
	}
	g, err := GroupPartialOf(gp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back GroupPartialJSON
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.GroupPartial()
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != gp.Key || got.Ord != gp.Ord || len(got.Vals) != 2 || len(got.Aggs) != 1 {
		t.Fatalf("round trip %+v, want %+v", got, gp)
	}
	if got.Aggs[0].Bound() != gp.Aggs[0].Bound() {
		t.Fatalf("aggregate bound %v, want %v", got.Aggs[0].Bound(), gp.Aggs[0].Bound())
	}

	// Encoding rejects key values that are not self-contained; decoding
	// rejects malformed aggregate state.
	bad := &query.GroupPartial{Key: "k", Vals: []query.Value{{Kind: query.KindResult}}}
	if _, err := GroupPartialOf(bad); err == nil {
		t.Fatal("encoded a group keyed on a result value")
	}
	back.Aggs[0].Kind = "median"
	if _, err := back.GroupPartial(); err == nil {
		t.Fatal("rebuilt a group with an unknown aggregate kind")
	}
}

func TestRegisterRequestSpec(t *testing.T) {
	r := RegisterRequest{
		Name: "g", UDF: "astro/galage", Eps: 0.1, Delta: 0.05,
		Sparse: &SparseSpec{Budget: 32},
		Warmup: []InputSpec{{{Type: "constant", Value: 1}}},
	}
	spec := r.Spec()
	if spec.Name != "g" || spec.UDF != "astro/galage" || spec.Eps != 0.1 || spec.Delta != 0.05 || spec.Sparse == nil {
		t.Fatalf("spec: %+v", spec)
	}
}
