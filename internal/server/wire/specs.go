package wire

import (
	"fmt"

	"olgapro/internal/core"
	"olgapro/internal/mc"
	"olgapro/internal/query"
)

// PredicateSpec is the wire form of the §5.5 TEP-filter predicate
// f(X) ∈ [A, B] with existence threshold θ:
//
//	{"a": 0, "b": 25, "theta": 0.2}
type PredicateSpec struct {
	A     float64 `json:"a"`
	B     float64 `json:"b"`
	Theta float64 `json:"theta"`
}

// Predicate validates the spec and builds the predicate.
func (s PredicateSpec) Predicate() (*mc.Predicate, error) {
	if !(s.B > s.A) {
		return nil, fmt.Errorf("wire: predicate needs b > a, got [%g, %g]", s.A, s.B)
	}
	if s.Theta < 0 || s.Theta > 1 {
		return nil, fmt.Errorf("wire: predicate theta %g outside [0, 1]", s.Theta)
	}
	return &mc.Predicate{A: s.A, B: s.B, Theta: s.Theta}, nil
}

// SpecOfPredicate is the inverse of Predicate.
func SpecOfPredicate(p *mc.Predicate) PredicateSpec {
	return PredicateSpec{A: p.A, B: p.B, Theta: p.Theta}
}

// SparseSpec is the wire form of the budgeted sparse emulator knobs
// (core.Config.Sparse*): a positive budget replaces the exact O(n²)-per-add
// GP with the inducing-point approximation whose per-add and per-predict
// cost is O(budget²) forever, independent of how many points the instance
// has learned:
//
//	{"budget": 256, "inflate": 1.1, "swap_every": 64}
type SparseSpec struct {
	// Budget is the inducing-point cap m (≥ 2).
	Budget int `json:"budget"`
	// Inflate widens the predictive standard deviation (≥ 1); 0 selects the
	// model default.
	Inflate float64 `json:"inflate,omitempty"`
	// SwapEvery is the basis-maintenance cadence; 0 selects the budget,
	// negative disables swapping.
	SwapEvery int `json:"swap_every,omitempty"`
}

// Apply validates the spec and writes it into cfg.
func (s SparseSpec) Apply(cfg *core.Config) error {
	if s.Budget < 2 {
		return fmt.Errorf("wire: sparse budget %d must be ≥ 2", s.Budget)
	}
	if s.Inflate < 0 || (s.Inflate > 0 && s.Inflate < 1) {
		return fmt.Errorf("wire: sparse inflate %g must be ≥ 1 (or 0 for the default)", s.Inflate)
	}
	cfg.SparseBudget = s.Budget
	cfg.SparseInflate = s.Inflate
	cfg.SparseSwapEvery = s.SwapEvery
	return nil
}

// StatSpec is the wire form of the statistic bounded operators rank and
// aggregate on:
//
//	{"kind": "mean"}
//	{"kind": "quantile", "p": 0.9}
type StatSpec struct {
	Kind string  `json:"kind"`
	P    float64 `json:"p,omitempty"`
}

// Stat validates the spec and builds the statistic. An empty kind is the
// mean, mirroring query.Stat's zero value.
func (s StatSpec) Stat() (query.Stat, error) {
	switch s.Kind {
	case "", "mean":
		return query.MeanStat(), nil
	case "quantile":
		if !(s.P >= 0 && s.P <= 1) {
			return query.Stat{}, fmt.Errorf("wire: quantile level %g outside [0, 1]", s.P)
		}
		return query.QuantileStat(s.P), nil
	default:
		return query.Stat{}, fmt.Errorf("wire: unknown statistic kind %q (want mean or quantile)", s.Kind)
	}
}

// SpecOfStat is the inverse of Stat.
func SpecOfStat(s query.Stat) StatSpec {
	if s.Kind == query.StatQuantile {
		return StatSpec{Kind: "quantile", P: s.P}
	}
	return StatSpec{Kind: "mean"}
}

// AggSpec is the wire form of one aggregate column:
//
//	{"kind": "count"}
//	{"kind": "avg", "attr": "y", "stat": {"kind": "mean"}, "as": "avg_y"}
type AggSpec struct {
	Kind string    `json:"kind"`
	Attr string    `json:"attr,omitempty"`
	Stat *StatSpec `json:"stat,omitempty"`
	As   string    `json:"as,omitempty"`
}

var aggKinds = map[string]query.AggKind{
	"count": query.AggCount,
	"sum":   query.AggSum,
	"avg":   query.AggAvg,
	"min":   query.AggMin,
	"max":   query.AggMax,
}

// Agg validates the spec and builds the aggregate column.
func (s AggSpec) Agg() (query.Agg, error) {
	kind, ok := aggKinds[s.Kind]
	if !ok {
		return query.Agg{}, fmt.Errorf("wire: unknown aggregate kind %q (want count, sum, avg, min, or max)", s.Kind)
	}
	a := query.Agg{Kind: kind, Attr: s.Attr, As: s.As}
	if s.Stat != nil {
		st, err := s.Stat.Stat()
		if err != nil {
			return query.Agg{}, err
		}
		a.Stat = st
	}
	if kind != query.AggCount && s.Attr == "" {
		return query.Agg{}, fmt.Errorf("wire: aggregate %q needs \"attr\"", s.Kind)
	}
	return a, nil
}

// SpecOfAgg is the inverse of Agg.
func SpecOfAgg(a query.Agg) AggSpec {
	s := AggSpec{Kind: a.Kind.String(), Attr: a.Attr, As: a.As}
	if a.Kind != query.AggCount {
		st := SpecOfStat(a.Stat)
		s.Stat = &st
	}
	return s
}

// TopKSpec is the wire form of a bounded top-k / order-by stage:
//
//	{"k": 5, "by": "y", "stat": {"kind": "mean"}, "desc": true, "as": "rank"}
//
// k ≤ 0 ranks the whole input.
type TopKSpec struct {
	K    int       `json:"k"`
	By   string    `json:"by"`
	Stat *StatSpec `json:"stat,omitempty"`
	Desc bool      `json:"desc,omitempty"`
	As   string    `json:"as,omitempty"`
}

// Spec validates and builds the rank spec.
func (s TopKSpec) Spec() (query.RankSpec, error) {
	if s.By == "" {
		return query.RankSpec{}, fmt.Errorf("wire: top-k needs \"by\"")
	}
	r := query.RankSpec{By: s.By, K: s.K, Desc: s.Desc, As: s.As}
	if s.Stat != nil {
		st, err := s.Stat.Stat()
		if err != nil {
			return query.RankSpec{}, err
		}
		r.Stat = st
	}
	return r, nil
}

// SpecOfTopK is the inverse of Spec.
func SpecOfTopK(r query.RankSpec) TopKSpec {
	st := SpecOfStat(r.Stat)
	return TopKSpec{K: r.K, By: r.By, Stat: &st, Desc: r.Desc, As: r.As}
}

// WindowSpec is the wire form of a sliding-window aggregate stage:
//
//	{"size": 10, "step": 5, "aggs": [{"kind": "avg", "attr": "y"}]}
type WindowSpec struct {
	Size int       `json:"size"`
	Step int       `json:"step,omitempty"`
	Aggs []AggSpec `json:"aggs"`
}

// Spec validates and builds the window spec.
func (s WindowSpec) Spec() (query.WindowSpec, error) {
	if s.Size <= 0 {
		return query.WindowSpec{}, fmt.Errorf("wire: window size %d, want > 0", s.Size)
	}
	if len(s.Aggs) == 0 {
		return query.WindowSpec{}, fmt.Errorf("wire: window needs at least one aggregate")
	}
	w := query.WindowSpec{Size: s.Size, Step: s.Step}
	for i, as := range s.Aggs {
		a, err := as.Agg()
		if err != nil {
			return query.WindowSpec{}, fmt.Errorf("wire: window agg %d: %w", i, err)
		}
		w.Aggs = append(w.Aggs, a)
	}
	return w, nil
}

// SpecOfWindow is the inverse of Spec.
func SpecOfWindow(w query.WindowSpec) WindowSpec {
	s := WindowSpec{Size: w.Size, Step: w.Step}
	for _, a := range w.Aggs {
		s.Aggs = append(s.Aggs, SpecOfAgg(a))
	}
	return s
}

// GroupBySpec is the wire form of a grouped aggregate stage:
//
//	{"keys": ["g"], "aggs": [{"kind": "count"}, {"kind": "max", "attr": "y"}]}
type GroupBySpec struct {
	Keys []string  `json:"keys"`
	Aggs []AggSpec `json:"aggs"`
}

// Spec validates and builds the group-by spec.
func (s GroupBySpec) Spec() (query.GroupBySpec, error) {
	if len(s.Keys) == 0 {
		return query.GroupBySpec{}, fmt.Errorf("wire: group-by needs \"keys\"")
	}
	if len(s.Aggs) == 0 {
		return query.GroupBySpec{}, fmt.Errorf("wire: group-by needs at least one aggregate")
	}
	g := query.GroupBySpec{Keys: append([]string(nil), s.Keys...)}
	for i, as := range s.Aggs {
		a, err := as.Agg()
		if err != nil {
			return query.GroupBySpec{}, fmt.Errorf("wire: group-by agg %d: %w", i, err)
		}
		g.Aggs = append(g.Aggs, a)
	}
	return g, nil
}

// SpecOfGroupBy is the inverse of Spec.
func SpecOfGroupBy(g query.GroupBySpec) GroupBySpec {
	s := GroupBySpec{Keys: append([]string(nil), g.Keys...)}
	for _, a := range g.Aggs {
		s.Aggs = append(s.Aggs, SpecOfAgg(a))
	}
	return s
}

// BoundedJSON is the deterministic wire form of a [certain, possible]
// interval answer.
type BoundedJSON struct {
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	Certain bool    `json:"certain"`
}

// BoundedOf converts a query interval to its wire form.
func BoundedOf(b query.Bounded) BoundedJSON {
	return BoundedJSON{Lo: b.Lo, Hi: b.Hi, Certain: b.Certain}
}
