package wire

// This file is the versioned /v1 HTTP API surface: every request and
// response body the olgaprod shards and the olgarouter fleet router speak,
// as plain JSON-taggable structs. The server implements these types, the
// client package decodes them, and the router forwards them — one
// definition, three consumers, so the wire contract cannot drift between
// layers. Field order is fixed by the structs, and floats use
// encoding/json's shortest-round-trip formatting, so equal values marshal
// to equal bytes — the property the bit-replay gates depend on.

// APIVersion is the path prefix of the current wire surface. Legacy
// unversioned paths remain as thin aliases for one release.
const APIVersion = "v1"

// --- error envelope ---

// ErrorCode is a stable, machine-readable failure class. Codes are part of
// the wire contract: clients dispatch on them (retry, re-register, warm the
// model) instead of parsing English messages.
type ErrorCode string

const (
	// CodeBadSpec: the request body or parameters are malformed (HTTP 400).
	CodeBadSpec ErrorCode = "bad_spec"
	// CodeUnauthorized: missing or wrong bearer token (HTTP 401).
	CodeUnauthorized ErrorCode = "unauthorized"
	// CodeNotFound: no UDF instance with that name (HTTP 404).
	CodeNotFound ErrorCode = "not_found"
	// CodeAlreadyExists: the instance name is taken (HTTP 409).
	CodeAlreadyExists ErrorCode = "already_exists"
	// CodeModelCold: frozen reads need a model with ≥ 2 training points —
	// run learning traffic or restore a snapshot first (HTTP 409).
	CodeModelCold ErrorCode = "model_cold"
	// CodeNotOwner: learning traffic sent to a read replica; route it to
	// the owning writer shard (HTTP 409).
	CodeNotOwner ErrorCode = "not_owner"
	// CodeOverCapacity: admission control refused the request; honor
	// RetryAfterMS (HTTP 429).
	CodeOverCapacity ErrorCode = "over_capacity"
	// CodeInternal: unexpected server-side failure (HTTP 500).
	CodeInternal ErrorCode = "internal"
	// CodeNotReplicated: the requested snapshot sequence is not available
	// yet (HTTP 503 from replication fetch).
	CodeNotReplicated ErrorCode = "not_replicated"
	// CodeUnavailable: no shard could serve the request (router, HTTP 502).
	CodeUnavailable ErrorCode = "unavailable"
	// CodeDraining: the process is shutting down (HTTP 503).
	CodeDraining ErrorCode = "draining"
	// CodeDeadlineExceeded: the per-request deadline fired (HTTP 504).
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
)

// ErrorDetail is the payload of the structured error envelope.
type ErrorDetail struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	// RetryAfterMS, when positive, is how long the client should wait
	// before retrying (set with over_capacity).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ErrorEnvelope is the body of every non-2xx /v1 response:
//
//	{"error":{"code":"over_capacity","message":"…","retry_after_ms":1000}}
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// --- registration ---

// SparseSpec selects the budgeted sparse emulator for an instance.
// (Defined in specs.go; referenced here by RegisterSpec.)

// RegisterSpec describes one UDF registration. It doubles as the snapshot
// metadata record: together with a snapshot file it reconstructs the
// instance on boot or on a replica.
type RegisterSpec struct {
	// Name is the instance name; defaults to the catalog name with "/"
	// replaced by "-".
	Name string `json:"name,omitempty"`
	// UDF is the catalog function to serve (see GET /v1/catalog).
	UDF string `json:"udf"`
	// Eps and Delta are the (ε, δ) accuracy contract for this instance.
	// Zero selects the paper defaults (0.1, 0.05).
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	// Sparse, when set, serves this instance on the budgeted sparse
	// emulator instead of the exact GP.
	Sparse *SparseSpec `json:"sparse,omitempty"`
}

// RegisterRequest is the POST /v1/udfs body: a RegisterSpec plus optional
// warm-up inputs evaluated in learn mode before the registration returns.
type RegisterRequest struct {
	Name       string      `json:"name,omitempty"`
	UDF        string      `json:"udf"`
	Eps        float64     `json:"eps,omitempty"`
	Delta      float64     `json:"delta,omitempty"`
	Sparse     *SparseSpec `json:"sparse,omitempty"`
	Warmup     []InputSpec `json:"warmup,omitempty"`
	WarmupSeed int64       `json:"warmup_seed,omitempty"`
}

// Spec extracts the persistent registration record from the request.
func (r RegisterRequest) Spec() RegisterSpec {
	return RegisterSpec{Name: r.Name, UDF: r.UDF, Eps: r.Eps, Delta: r.Delta, Sparse: r.Sparse}
}

// UDFInfo is the GET /v1/udfs entry for one registered instance.
type UDFInfo struct {
	Name           string  `json:"name"`
	UDF            string  `json:"udf"`
	Dim            int     `json:"dim"`
	Eps            float64 `json:"eps"`
	Delta          float64 `json:"delta"`
	TrainingPoints int64   `json:"training_points"`
	MCSamples      int     `json:"mc_samples_per_input"`
	// SparseBudget is the inducing-point cap when the instance runs on the
	// budgeted sparse emulator; 0 means the exact GP.
	SparseBudget int `json:"sparse_budget,omitempty"`
	// ModelSeq is the per-UDF model sequence number: it increments on
	// every model mutation and orders snapshots across replicas.
	ModelSeq int64 `json:"model_seq"`
	// Replica marks a frozen read replica ingesting snapshots from the
	// owning writer shard; learning traffic is refused with not_owner.
	Replica bool `json:"replica,omitempty"`
}

// UDFList is the GET /v1/udfs response.
type UDFList struct {
	UDFs []UDFInfo `json:"udfs"`
}

// --- evaluation ---

// EvalRequest is the POST /v1/udfs/{name}/eval body. Learn defaults to
// true (the input contributes to the model); learn=false serves from a
// frozen clone, making the response a pure, bit-replayable function of
// (model state, input, seed).
type EvalRequest struct {
	Input InputSpec `json:"input"`
	Seed  int64     `json:"seed,omitempty"`
	Learn *bool     `json:"learn,omitempty"`
}

// EvalResult is the wire form of one evaluated tuple. SupportHash digests
// every sample of the full output distribution (FNV-64a over the raw
// float64 bits), making line equality a strong bit-replay check without
// shipping thousands of floats.
type EvalResult struct {
	Seq       int64   `json:"seq"`
	Engine    string  `json:"engine"`
	Eps       float64 `json:"eps"`
	Bound     float64 `json:"bound"`
	BoundGP   float64 `json:"bound_gp"`
	BoundMC   float64 `json:"bound_mc"`
	MetBudget bool    `json:"met_budget"`

	Mean        float64            `json:"mean"`
	Quantiles   map[string]float64 `json:"quantiles"`
	SupportHash string             `json:"support_hash"`

	Samples     int  `json:"samples"`
	UDFCalls    int  `json:"udf_calls"`
	PointsAdded int  `json:"points_added"`
	LocalPoints int  `json:"local_points"`
	Filtered    bool `json:"filtered,omitempty"`
}

// StreamLine is one NDJSON request line of POST /v1/udfs/{name}/stream.
type StreamLine struct {
	Input InputSpec `json:"input"`
}

// StreamResult is one NDJSON response line: either a result or a terminal
// error (after which the stream ends). ErrorCode carries the machine-
// readable class of a terminal stream error, mirroring the HTTP envelope.
type StreamResult struct {
	EvalResult
	Error     string    `json:"error,omitempty"`
	ErrorCode ErrorCode `json:"error_code,omitempty"`
}

// --- stats, health, snapshots ---

// UDFStats is the per-UDF /v1/stats record; the savings fields quantify
// the paper's core economics: UDF calls actually paid vs what plain Monte
// Carlo would have cost for the same served traffic at the same (ε, δ).
type UDFStats struct {
	Name              string  `json:"name"`
	UDF               string  `json:"udf"`
	Eps               float64 `json:"eps"`
	Delta             float64 `json:"delta"`
	Inputs            int64   `json:"inputs"`
	TrainingPoints    int     `json:"training_points"`
	UDFCalls          int     `json:"udf_calls"`
	Retrainings       int     `json:"retrainings"`
	Filtered          int     `json:"filtered"`
	MCSamplesPerInput int     `json:"mc_samples_per_input"`
	MCEquivalentCalls int64   `json:"mc_equivalent_calls"`
	SavedCalls        int64   `json:"saved_calls"`
	SavingsRatio      float64 `json:"savings_ratio"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	UDFs              []UDFStats `json:"udfs"`
	TotalSavedCalls   int64      `json:"total_saved_calls"`
	TotalSavingsRatio float64    `json:"total_savings_ratio,omitempty"`
}

// HealthResponse is the GET /v1/healthz body. The router adds per-shard
// statuses; a plain shard reports only its own gauges.
type HealthResponse struct {
	Status    string        `json:"status"`
	UptimeSec float64       `json:"uptime_sec"`
	UDFs      int           `json:"udfs"`
	InFlight  int           `json:"inflight"`
	Capacity  int           `json:"capacity"`
	Shards    []ShardHealth `json:"shards,omitempty"`
}

// ShardHealth is one fleet member's liveness as seen by the router.
type ShardHealth struct {
	Addr string `json:"addr"`
	Up   bool   `json:"up"`
}

// SnapshotInfo describes one persisted snapshot.
type SnapshotInfo struct {
	Name           string `json:"name"`
	TrainingPoints int    `json:"training_points"`
	ModelSeq       int64  `json:"model_seq"`
	Path           string `json:"path"`
}

// SnapshotResponse is the POST /v1/snapshot body.
type SnapshotResponse struct {
	Snapshots []SnapshotInfo `json:"snapshots"`
}

// CatalogResponse is the GET /v1/catalog body. Entries are the server's
// CatalogEntry records; kept as raw-friendly struct here to avoid an
// import cycle.
type CatalogUDF struct {
	Name        string `json:"name"`
	Dim         int    `json:"dim"`
	Description string `json:"description"`
}

// CatalogResponse is the GET /v1/catalog body.
type CatalogResponse struct {
	UDFs []CatalogUDF `json:"udfs"`
}

// --- replication ---

// ReplicaState is one entry of GET /v1/replication/udfs: which UDFs this
// shard hosts, at which model sequence, and whether it is the writer
// (owner) or a frozen replica.
type ReplicaState struct {
	Name  string       `json:"name"`
	Seq   int64        `json:"seq"`
	Owned bool         `json:"owned"`
	Spec  RegisterSpec `json:"spec"`
}

// ReplicationList is the GET /v1/replication/udfs response. Version is a
// process-local monotonic counter bumped on every model mutation; pass it
// back as ?since_version= to long-poll for deltas (subscribe). Epoch and
// Shards carry the shard's current fleet membership view, so membership
// changes gossip over the same long-poll surface the model deltas use:
// any shard (or router) that sees a higher epoch than its own adopts it.
type ReplicationList struct {
	Version int64          `json:"version"`
	UDFs    []ReplicaState `json:"udfs"`
	// Epoch is the membership epoch this shard currently holds; 0 for the
	// boot-time membership, omitted entirely outside fleet mode.
	Epoch int64 `json:"epoch,omitempty"`
	// Shards is the shard list of that epoch (sorted, including self).
	Shards []string `json:"shards,omitempty"`
}

// --- fleet membership ---

// Membership is one versioned fleet configuration: a monotonic epoch number
// plus the full shard list it describes. The epoch totally orders
// configurations — every fleet member adopts the highest epoch it sees and
// rebuilds its placement ring from that epoch's shard list, so placement
// stays a pure function of (membership, name) even while members disagree
// transiently during a change.
type Membership struct {
	Epoch  int64    `json:"epoch"`
	Shards []string `json:"shards"`
}

// FleetMembersRequest is the POST /v1/fleet/members admin body on the
// router: op "join" adds Shard to the membership, op "leave" removes it.
// The router mints the next epoch and broadcasts it to every shard (old and
// new); gossip over the replication lists repairs any member it missed.
type FleetMembersRequest struct {
	Op    string `json:"op"`
	Shard string `json:"shard"`
}

// ReplicationHint is the POST /v1/replication/hint body: a push
// notification from a UDF's owning writer shard that its model sequence
// reached Seq, sent to the replica set right after the bump so replication
// lag is not bounded below by the pull interval. Hints are pure
// accelerators — dropped or reordered hints cost nothing because the pull
// loop remains the catch-up/repair path.
type ReplicationHint struct {
	Name string `json:"name"`
	Seq  int64  `json:"seq"`
	// From is the sender's base URL: the peer the receiver should pull the
	// snapshot delta from.
	From string `json:"from"`
}

// Replication fetch headers: GET /v1/udfs/{name}/snapshot serves the raw
// versioned snapshot bytes (core format) with the model sequence and the
// JSON-encoded RegisterSpec in these headers.
const (
	HeaderModelSeq = "Olgapro-Model-Seq"
	HeaderSpec     = "Olgapro-Spec"
)
