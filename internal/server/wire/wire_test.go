package wire

import (
	"encoding/json"
	"math"
	"testing"

	"olgapro/internal/dist"
	"olgapro/internal/query"
	"olgapro/internal/sdss"
)

func TestDistSpecRoundTrip(t *testing.T) {
	specs := []DistSpec{
		{Type: "normal", Mu: 5, Sigma: 0.5},
		{Type: "uniform", Lo: -1, Hi: 2},
		{Type: "gamma", Shape: 2.2, Scale: 0.09, Loc: 0.01},
		{Type: "exponential", Rate: 3},
		{Type: "constant", Value: 42},
		{Type: "mixture", Weights: []float64{1, 3}, Components: []DistSpec{
			{Type: "normal", Mu: -2, Sigma: 0.5},
			{Type: "normal", Mu: 2, Sigma: 1},
		}},
	}
	for _, s := range specs {
		d, err := s.Dist()
		if err != nil {
			t.Fatalf("%s: %v", s.Type, err)
		}
		back, err := SpecOf(d)
		if err != nil {
			t.Fatalf("%s: SpecOf: %v", s.Type, err)
		}
		d2, err := back.Dist()
		if err != nil {
			t.Fatalf("%s: re-decode: %v", s.Type, err)
		}
		// The round-tripped distribution must be the same measure.
		for _, q := range []float64{-3, -1, 0, 0.5, 1, 2, 5, 50} {
			if a, b := d.CDF(q), d2.CDF(q); math.Abs(a-b) > 1e-12 {
				t.Fatalf("%s: CDF(%g) differs after round trip: %g vs %g", s.Type, q, a, b)
			}
		}
	}
}

func TestDistSpecJSON(t *testing.T) {
	raw := `{"type":"mixture","weights":[0.3,0.7],"components":[
		{"type":"uniform","lo":0,"hi":1},
		{"type":"gamma","shape":2,"scale":1.5}]}`
	var s DistSpec
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatal(err)
	}
	d, err := s.Dist()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*dist.Mixture); !ok {
		t.Fatalf("decoded %T, want *dist.Mixture", d)
	}
}

func TestDistSpecValidation(t *testing.T) {
	bad := []DistSpec{
		{},
		{Type: "laplace"},
		{Type: "normal", Mu: 1, Sigma: 0},
		{Type: "normal", Mu: 1, Sigma: -2},
		{Type: "uniform", Lo: 2, Hi: 2},
		{Type: "gamma", Shape: 0, Scale: 1},
		{Type: "gamma", Shape: 1, Scale: -1},
		{Type: "exponential"},
		{Type: "mixture"},
		{Type: "mixture", Components: []DistSpec{{Type: "normal"}}},
		{Type: "mixture", Weights: []float64{-1}, Components: []DistSpec{{Type: "constant"}}},
	}
	for i, s := range bad {
		if _, err := s.Dist(); err == nil {
			t.Fatalf("bad spec %d (%+v) accepted", i, s)
		}
	}
}

func TestInputSpecTupleAndVector(t *testing.T) {
	in := InputSpec{
		{Type: "normal", Mu: 0.5, Sigma: 0.1},
		{Type: "constant", Value: 2},
	}
	v, err := in.Vector()
	if err != nil {
		t.Fatal(err)
	}
	if v.Dim() != 2 {
		t.Fatalf("vector dim %d, want 2", v.Dim())
	}
	tup, err := in.Tuple(7)
	if err != nil {
		t.Fatal(err)
	}
	if got := tup.MustGet("id").I; got != 7 {
		t.Fatalf("id %d, want 7", got)
	}
	// The tuple's input vector must agree with the direct one: same joint
	// distribution under the canonical attribute names.
	names := AttrNames(2)
	tv, err := query.InputVectorFor(tup, names)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.3, 0.5, 0.9} {
		// Compare the marginals via sampling-free CDF checks on component 0.
		d0 := tup.MustGet(names[0]).D
		if a, b := d0.CDF(q), (dist.Normal{Mu: 0.5, Sigma: 0.1}).CDF(q); math.Abs(a-b) > 1e-15 {
			t.Fatalf("marginal CDF differs: %g vs %g", a, b)
		}
	}
	if tv.Dim() != v.Dim() {
		t.Fatalf("tuple vector dim %d ≠ %d", tv.Dim(), v.Dim())
	}

	if _, err := (InputSpec{{Type: "bogus"}}).Tuple(0); err == nil {
		t.Fatal("invalid input spec accepted")
	}
	if _, err := (InputSpec{{Type: "bogus"}}).Vector(); err == nil {
		t.Fatal("invalid input spec accepted by Vector")
	}
}

func TestGalaxyRelation(t *testing.T) {
	cat := sdss.Generate(sdss.GenerateConfig{N: 5, Seed: 3})
	rel := GalaxyRelation(cat)
	if len(rel) != 5 {
		t.Fatalf("relation has %d tuples, want 5", len(rel))
	}
	for i, tup := range rel {
		if got := tup.MustGet("objID").I; got != cat.Galaxies[i].ObjID {
			t.Fatalf("tuple %d objID %d ≠ %d", i, got, cat.Galaxies[i].ObjID)
		}
		if tup.MustGet("redshift").Kind != query.KindUncertain {
			t.Fatalf("tuple %d redshift not uncertain", i)
		}
	}
}
