package wire

import (
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestAPIDocConformance pins docs/api.md to the code: every canonical
// route (with its scope), every error code, every Olgapro-* header, and
// the query row cap must appear in the document. The doc promises this
// test by name — if you add a route or code, document it.
func TestAPIDocConformance(t *testing.T) {
	raw, err := os.ReadFile("../../../docs/api.md")
	if err != nil {
		t.Fatalf("docs/api.md must exist: %v", err)
	}
	doc := string(raw)

	for _, rt := range Routes {
		row := "| " + rt.Method + " | `" + rt.Path + "` | " + string(rt.Scope) + " |"
		if !strings.Contains(doc, row) {
			t.Errorf("route %s %s (scope %s) has no %q row in docs/api.md",
				rt.Method, rt.Path, rt.Scope, row)
		}
	}

	src, err := os.ReadFile("api.go")
	if err != nil {
		t.Fatal(err)
	}
	codes := regexp.MustCompile(`ErrorCode = "([a-z_]+)"`).FindAllStringSubmatch(string(src), -1)
	if len(codes) < 10 {
		t.Fatalf("parsed only %d error codes from api.go; the regexp is stale", len(codes))
	}
	for _, m := range codes {
		if !strings.Contains(doc, "`"+m[1]+"`") {
			t.Errorf("error code %q is not documented in docs/api.md", m[1])
		}
	}

	hdrRe := regexp.MustCompile(`= "(Olgapro-[A-Za-z-]+)"`)
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var headers []string
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		b, err := os.ReadFile(e.Name())
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range hdrRe.FindAllStringSubmatch(string(b), -1) {
			headers = append(headers, m[1])
		}
	}
	if len(headers) == 0 {
		t.Fatal("parsed no Olgapro-* headers from the wire package; the regexp is stale")
	}
	for _, h := range headers {
		if !strings.Contains(doc, "`"+h+"`") {
			t.Errorf("header %q is not documented in docs/api.md", h)
		}
	}

	if !strings.Contains(doc, strconv.Itoa(MaxQueryRows)) {
		t.Errorf("the %d-row query cap is not documented in docs/api.md", MaxQueryRows)
	}
}

// TestRoutesTableWellFormed guards the canonical table itself: no
// duplicate method+path pairs, every path versioned under /v1, and a
// known scope on every entry.
func TestRoutesTableWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, rt := range Routes {
		key := rt.Method + " " + rt.Path
		if seen[key] {
			t.Errorf("duplicate route %s", key)
		}
		seen[key] = true
		if !strings.HasPrefix(rt.Path, "/"+APIVersion+"/") {
			t.Errorf("route %s is not under /%s", key, APIVersion)
		}
		switch rt.Scope {
		case ScopeBoth, ScopeShard, ScopeRouter:
		default:
			t.Errorf("route %s has unknown scope %q", key, rt.Scope)
		}
	}
}
