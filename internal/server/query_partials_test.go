package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"olgapro/internal/server/wire"
)

// partialRows builds n deterministic sub-plan rows with the given global
// ordinals (sparse, as a router scattering a union relation would send).
func partialRows(ords []int64) []map[string]any {
	rows := make([]map[string]any, len(ords))
	for i, ord := range ords {
		rows[i] = map[string]any{
			"ord": ord,
			"input": wire.InputSpec{
				{Type: "normal", Mu: 0.3 + 0.05*float64(ord%8), Sigma: 0.1},
				{Type: "normal", Mu: 0.7 - 0.05*float64(ord%8), Sigma: 0.1},
			},
			"group": string(rune('a' + ord%2)),
		}
	}
	return rows
}

func TestQueryPartialsStagelessReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)
	ords := []int64{0, 2, 5, 11}
	req := map[string]any{"udf": name, "rows": partialRows(ords), "seed": 21}

	resp, body := postJSON(t, ts.URL+"/v1/query/partials", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partials: %d %s", resp.StatusCode, body)
	}
	var qp wire.QueryPartials
	if err := json.Unmarshal(body, &qp); err != nil {
		t.Fatal(err)
	}
	if qp.UDF != name || qp.ModelSeq <= 0 {
		t.Fatalf("header fields: %+v", qp)
	}
	if got := resp.Header.Get(wire.HeaderModelSeq); got == "" {
		t.Fatalf("missing %s header", wire.HeaderModelSeq)
	}
	if len(qp.Rows) != len(ords) {
		t.Fatalf("%d surviving rows, want %d", len(qp.Rows), len(ords))
	}
	for i, pr := range qp.Rows {
		if pr.Ord != ords[i] {
			t.Fatalf("row %d carries ordinal %d, want %d", i, pr.Ord, ords[i])
		}
		if len(pr.Row) == 0 || pr.Rank != nil || pr.Items != nil {
			t.Fatalf("stageless row %d payload: %+v", i, pr)
		}
	}

	// Frozen clones + global-ordinal seeding: the replay is byte-identical.
	resp2, body2 := postJSON(t, ts.URL+"/v1/query/partials", req)
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body, body2) {
		t.Fatalf("replay diverged:\n%s\nvs\n%s", body, body2)
	}
}

func TestQueryPartialsStagePayloads(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)
	rows := partialRows([]int64{1, 4, 6, 9, 10})

	// Group-by stage: mergeable per-group aggregate state, no rows.
	resp, body := postJSON(t, ts.URL+"/v1/query/partials", map[string]any{
		"udf": name, "rows": rows, "seed": 3,
		"group_by": map[string]any{
			"keys": []string{"g"},
			"aggs": []map[string]any{{"kind": "count"}, {"kind": "avg", "attr": "y"}},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("group_by partials: %d %s", resp.StatusCode, body)
	}
	var qp wire.QueryPartials
	if err := json.Unmarshal(body, &qp); err != nil {
		t.Fatal(err)
	}
	if len(qp.Groups) != 2 || len(qp.Rows) != 0 {
		t.Fatalf("group_by payload: %d groups, %d rows", len(qp.Groups), len(qp.Rows))
	}
	for _, g := range qp.Groups {
		if len(g.Aggs) != 2 || g.Aggs[0].N != g.Aggs[1].N || g.Aggs[0].N == 0 {
			t.Fatalf("group %q aggregate state: %+v", g.Key, g.Aggs)
		}
	}

	// Window stage: one item per aggregate per surviving tuple.
	resp, body = postJSON(t, ts.URL+"/v1/query/partials", map[string]any{
		"udf": name, "rows": rows, "seed": 3,
		"window": map[string]any{"size": 3, "aggs": []map[string]any{{"kind": "max", "attr": "y"}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("window partials: %d %s", resp.StatusCode, body)
	}
	qp = wire.QueryPartials{}
	if err := json.Unmarshal(body, &qp); err != nil {
		t.Fatal(err)
	}
	if len(qp.Rows) != len(rows) {
		t.Fatalf("window payload: %d rows, want %d", len(qp.Rows), len(rows))
	}
	for _, pr := range qp.Rows {
		if len(pr.Items) != 1 || pr.Row != nil {
			t.Fatalf("window row payload: %+v", pr)
		}
	}

	// Top-k stage: every survivor ships a rank key; row payloads only where
	// the tuple can still reach the global top k.
	resp, body = postJSON(t, ts.URL+"/v1/query/partials", map[string]any{
		"udf": name, "rows": rows, "seed": 3,
		"topk": map[string]any{"k": 2, "by": "y", "desc": true},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk partials: %d %s", resp.StatusCode, body)
	}
	qp = wire.QueryPartials{}
	if err := json.Unmarshal(body, &qp); err != nil {
		t.Fatal(err)
	}
	if len(qp.Rows) != len(rows) {
		t.Fatalf("topk payload: %d rows, want %d", len(qp.Rows), len(rows))
	}
	withRow := 0
	for _, pr := range qp.Rows {
		if pr.Rank == nil {
			t.Fatalf("topk row %d missing rank key", pr.Ord)
		}
		if pr.Row != nil {
			withRow++
		}
	}
	if withRow == 0 {
		t.Fatal("no topk row shipped an answer payload")
	}
}

func TestQueryPartialsRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)
	ok := partialRows([]int64{0, 3})

	cases := []struct {
		name   string
		req    map[string]any
		status int
		code   string
	}{
		{"unknown udf", map[string]any{"udf": "nope", "rows": ok, "seed": 1},
			http.StatusNotFound, "not_found"},
		{"no rows", map[string]any{"udf": name, "seed": 1},
			http.StatusBadRequest, "bad_spec"},
		{"two stages", map[string]any{"udf": name, "rows": ok, "seed": 1,
			"window":   map[string]any{"size": 2, "aggs": []map[string]any{{"kind": "count"}}},
			"group_by": map[string]any{"keys": []string{"g"}, "aggs": []map[string]any{{"kind": "count"}}}},
			http.StatusBadRequest, "bad_spec"},
		{"ordinals not ascending", map[string]any{"udf": name, "rows": partialRows([]int64{5, 5}), "seed": 1},
			http.StatusBadRequest, "bad_spec"},
		{"wrong arity", map[string]any{"udf": name, "seed": 1,
			"rows": []map[string]any{{"ord": 0, "input": wire.InputSpec{{Type: "constant", Value: 0.5}}}}},
			http.StatusBadRequest, "bad_spec"},
		{"replica behind min_seq", map[string]any{"udf": name, "rows": ok, "seed": 1, "min_seq": 1 << 40},
			http.StatusConflict, "model_cold"},
		{"bad stage spec", map[string]any{"udf": name, "rows": ok, "seed": 1,
			"topk": map[string]any{"k": 2}},
			http.StatusBadRequest, "bad_spec"},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/query/partials", tc.req)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		var env struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != tc.code {
			t.Errorf("%s: error code %q, want %q (%s)", tc.name, env.Error.Code, tc.code, body)
		}
	}
}
