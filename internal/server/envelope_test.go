package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"olgapro/internal/core"
	"olgapro/internal/server/wire"
)

// wantEnvelope asserts that a failure response carries the structured error
// envelope with the documented status and code — the /v1 wire contract every
// client dispatches on.
func wantEnvelope(t *testing.T, resp *http.Response, body []byte, status int, code wire.ErrorCode) wire.ErrorEnvelope {
	t.Helper()
	if resp.StatusCode != status {
		t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, status, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("error response Content-Type %q, want application/json", ct)
	}
	var env wire.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not an envelope: %v (body %s)", err, body)
	}
	if env.Error.Code != code {
		t.Fatalf("error code %q, want %q (body %s)", env.Error.Code, code, body)
	}
	if env.Error.Message == "" {
		t.Fatalf("empty error message: %s", body)
	}
	return env
}

// do issues one request with an optional body and returns the buffered
// response.
func do(t *testing.T, method, url, contentType, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestErrorEnvelopeConformance sweeps every handler's failure paths and
// asserts each one produces a decodable envelope with its documented code.
func TestErrorEnvelopeConformance(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)

	// Cold instance for the model_cold path.
	if resp, body := postJSON(t, ts.URL+"/v1/udfs", map[string]any{"udf": "mix/f1", "name": "cold"}); resp.StatusCode != 201 {
		t.Fatalf("register cold: %d %s", resp.StatusCode, body)
	}

	cases := []struct {
		label  string
		method string
		path   string
		body   string
		status int
		code   wire.ErrorCode
	}{
		{"register garbage", "POST", "/v1/udfs", `not json`, 400, wire.CodeBadSpec},
		{"register unknown UDF", "POST", "/v1/udfs", `{"udf":"nope/missing"}`, 400, wire.CodeBadSpec},
		{"register duplicate", "POST", "/v1/udfs", `{"udf":"poly/smooth2d"}`, 409, wire.CodeAlreadyExists},
		{"eval unknown instance", "POST", "/v1/udfs/ghost/eval", `{"input":[]}`, 404, wire.CodeNotFound},
		{"eval garbage", "POST", "/v1/udfs/" + name + "/eval", `{{{`, 400, wire.CodeBadSpec},
		{"eval wrong arity", "POST", "/v1/udfs/" + name + "/eval",
			`{"input":[{"type":"normal","mu":1,"sigma":1}]}`, 400, wire.CodeBadSpec},
		{"frozen eval on cold model", "POST", "/v1/udfs/cold/eval",
			`{"input":[{"type":"normal","mu":1,"sigma":1},{"type":"normal","mu":1,"sigma":1}],"learn":false}`,
			409, wire.CodeModelCold},
		{"stream bad seed", "POST", "/v1/udfs/" + name + "/stream?seed=abc", "", 400, wire.CodeBadSpec},
		{"stream unknown instance", "POST", "/v1/udfs/ghost/stream", "", 404, wire.CodeNotFound},
		{"snapshot unknown instance", "POST", "/v1/udfs/ghost/snapshot", "", 404, wire.CodeNotFound},
		{"snapshot without dir", "POST", "/v1/udfs/" + name + "/snapshot", "", 500, wire.CodeInternal},
		{"query garbage", "POST", "/v1/query", `{{{`, 400, wire.CodeBadSpec},
		{"query unknown instance", "POST", "/v1/query",
			`{"udf":"ghost","rows":[]}`, 404, wire.CodeNotFound},
		{"replication list bad cursor", "GET", "/v1/replication/udfs?since_version=junk", "", 400, wire.CodeBadSpec},
		{"snapshot fetch unknown instance", "GET", "/v1/udfs/ghost/snapshot", "", 404, wire.CodeNotFound},
		{"snapshot fetch bad min_seq", "GET", "/v1/udfs/" + name + "/snapshot?min_seq=junk", "", 400, wire.CodeBadSpec},
	}
	for _, c := range cases {
		resp, body := do(t, c.method, ts.URL+c.path, "application/json", c.body)
		t.Logf("%s: %d %s", c.label, resp.StatusCode, bytes.TrimSpace(body))
		wantEnvelope(t, resp, body, c.status, c.code)
	}
}

// TestEnvelopeOverCapacity asserts the 429 refusal carries over_capacity,
// a positive retry_after_ms hint, and the Retry-After header.
func TestEnvelopeOverCapacity(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})
	name := registerSmooth(t, ts.URL)
	if !s.tryAdmit() {
		t.Fatal("could not take the admission token")
	}
	defer s.release()

	resp, body := do(t, "POST", ts.URL+"/v1/udfs/"+name+"/eval", "application/json",
		`{"input":[{"type":"normal","mu":0.5,"sigma":0.1},{"type":"normal","mu":0.5,"sigma":0.1}]}`)
	env := wantEnvelope(t, resp, body, http.StatusTooManyRequests, wire.CodeOverCapacity)
	if env.Error.RetryAfterMS <= 0 {
		t.Fatalf("429 without retry_after_ms: %s", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
}

// TestEnvelopeUnauthorized asserts bearer-auth refusals use the envelope and
// that health probes stay exempt.
func TestEnvelopeUnauthorized(t *testing.T) {
	_, ts := newTestServer(t, Config{AuthToken: "sekrit"})

	resp, body := do(t, "GET", ts.URL+"/v1/udfs", "", "")
	wantEnvelope(t, resp, body, http.StatusUnauthorized, wire.CodeUnauthorized)
	resp, body = do(t, "GET", ts.URL+"/udfs", "", "") // legacy alias guarded too
	wantEnvelope(t, resp, body, http.StatusUnauthorized, wire.CodeUnauthorized)

	// Wrong token is refused; the right one passes.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/udfs", nil)
	req.Header.Set("Authorization", "Bearer wrong")
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != 401 {
		t.Fatalf("wrong token: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	req, _ = http.NewRequest("GET", ts.URL+"/v1/udfs", nil)
	req.Header.Set("Authorization", "Bearer sekrit")
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != 200 {
		t.Fatalf("right token: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// Liveness probes must work without credentials (LBs, fleet health).
	for _, p := range []string{"/healthz", "/v1/healthz"} {
		if resp, _ := do(t, "GET", ts.URL+p, "", ""); resp.StatusCode != 200 {
			t.Fatalf("unauthenticated %s: %d, want 200", p, resp.StatusCode)
		}
	}
}

// TestEnvelopeDraining asserts the shutdown refusal uses the envelope.
func TestEnvelopeDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.Close()
	resp, body := do(t, "GET", ts.URL+"/v1/udfs", "", "")
	wantEnvelope(t, resp, body, http.StatusServiceUnavailable, wire.CodeDraining)
}

// TestEnvelopeDeadlineExceeded asserts a fired per-request deadline maps to
// 504 deadline_exceeded.
func TestEnvelopeDeadlineExceeded(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)
	e, ok := s.reg.Get(name)
	if !ok {
		t.Fatal("entry missing")
	}
	block := make(chan struct{})
	go e.withWriter(context.Background(), func(*core.Evaluator) error {
		<-block
		return nil
	})
	defer close(block)
	time.Sleep(20 * time.Millisecond)

	resp, body := do(t, "POST", ts.URL+"/v1/udfs/"+name+"/eval?timeout_ms=50", "application/json",
		`{"input":[{"type":"normal","mu":0.5,"sigma":0.1},{"type":"normal","mu":0.5,"sigma":0.1}]}`)
	wantEnvelope(t, resp, body, http.StatusGatewayTimeout, wire.CodeDeadlineExceeded)
}

// TestEnvelopeNotOwner asserts learning traffic against a read replica is
// refused with not_owner, pointing the client at the owning shard.
func TestEnvelopeNotOwner(t *testing.T) {
	owner, tsOwner := newTestServer(t, Config{})
	name := registerSmooth(t, tsOwner.URL)
	e, ok := owner.reg.Get(name)
	if !ok {
		t.Fatal("entry missing")
	}
	var buf bytes.Buffer
	if _, _, err := e.snapshot(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	snap, err := core.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	replica, tsReplica := newTestServer(t, Config{})
	if err := replica.reg.InstallReplica(e.Spec(), snap); err != nil {
		t.Fatal(err)
	}

	// Learning traffic on the replica: refused with not_owner.
	resp, body := do(t, "POST", tsReplica.URL+"/v1/udfs/"+name+"/eval", "application/json",
		`{"input":[{"type":"normal","mu":0.5,"sigma":0.1},{"type":"normal","mu":0.5,"sigma":0.1}]}`)
	wantEnvelope(t, resp, body, http.StatusConflict, wire.CodeNotOwner)

	// Frozen traffic is exactly what replicas are for.
	resp, body = do(t, "POST", tsReplica.URL+"/v1/udfs/"+name+"/eval", "application/json",
		`{"input":[{"type":"normal","mu":0.5,"sigma":0.1},{"type":"normal","mu":0.5,"sigma":0.1}],"learn":false,"seed":7}`)
	if resp.StatusCode != 200 {
		t.Fatalf("frozen eval on replica: %d %s", resp.StatusCode, body)
	}
}

// TestStreamErrorLineCarriesCode asserts in-band stream errors mirror the
// HTTP envelope with a machine-readable error_code.
func TestStreamErrorLineCarriesCode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)
	body := `{"input":[{"type":"normal","mu":0.5,"sigma":0.1},{"type":"normal","mu":0.5,"sigma":0.1}]}
this is not json
`
	resp, raw := do(t, "POST", ts.URL+"/v1/udfs/"+name+"/stream?learn=false&seed=1", "application/x-ndjson", body)
	if resp.StatusCode != 200 {
		t.Fatalf("stream: %d", resp.StatusCode)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	var last wire.StreamResult
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatalf("bad terminal line %s: %v", lines[len(lines)-1], err)
	}
	if last.Error == "" || last.ErrorCode != wire.CodeBadSpec {
		t.Fatalf("terminal stream error missing code: %+v", last)
	}
}
