package server

import (
	"bufio"
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"olgapro/internal/core"
	"olgapro/internal/exec"
	"olgapro/internal/query"
	"olgapro/internal/server/wire"
)

// Config parameterizes a Server. The zero value is usable.
type Config struct {
	// SnapshotDir is where POST /v1/snapshot persists trained GP state and
	// where boot-time restore looks. Empty disables persistence.
	SnapshotDir string
	// SnapshotKeep is how many sequence-stamped snapshot files to retain per
	// UDF; older ones are deleted after each successful snapshot. Default 3.
	SnapshotKeep int
	// MaxInFlight bounds the number of tuples being evaluated or queued
	// across all requests; admission beyond it is refused with 429 and a
	// Retry-After. Default 256.
	MaxInFlight int
	// RequestTimeout is the per-request context deadline; a request may
	// lower (never raise) it with ?timeout_ms=N. Default 30s.
	RequestTimeout time.Duration
	// Workers is the number of frozen-clone slots per UDF — the read path's
	// maximum concurrency and a stream's maximum fan-out. Default
	// GOMAXPROCS.
	Workers int
	// AuthToken, when non-empty, requires "Authorization: Bearer <token>" on
	// every request except health checks.
	AuthToken string
	// Logf, when non-nil, receives one line per notable server event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.SnapshotKeep <= 0 {
		c.SnapshotKeep = 3
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the olgaprod HTTP service: an evaluator registry behind the /v1
// JSON API with admission control and snapshot persistence. Build one with
// New, mount Handler on an http.Server, and Close it after draining.
type Server struct {
	cfg      Config
	reg      *Registry
	mux      *http.ServeMux
	inflight chan struct{}
	start    time.Time
	draining atomic.Bool

	// fleet holds the hooks installed by SetFleetHooks when this process
	// runs as a fleet shard; nil outside fleet mode.
	fleet atomic.Pointer[FleetHooks]
}

// FleetHooks connects the server's replication surface to the fleet
// replicator running in the same process: the replication list carries the
// shard's membership epoch, POST /v1/replication/members feeds adopted
// epochs in, and POST /v1/replication/hint delivers push-replication
// seq-bump hints. All three are optional — a nil hook disables the
// corresponding behavior.
type FleetHooks struct {
	// Membership returns the shard's current membership view.
	Membership func() wire.Membership
	// AdoptMembership offers a (possibly newer) membership; reports whether
	// the shard's view changed.
	AdoptMembership func(wire.Membership) (bool, error)
	// Hint delivers a push-replication hint (owner bumped a model seq).
	// Must not block: the HTTP handler calls it inline.
	Hint func(wire.ReplicationHint)
}

// SetFleetHooks installs (or, with nil, removes) the fleet hooks.
func (s *Server) SetFleetHooks(h *FleetHooks) { s.fleet.Store(h) }

// New builds a server and, when cfg.SnapshotDir holds snapshot metadata
// from a previous run, restores every persisted UDF so the new process
// skips re-learning.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      NewRegistry(cfg.Workers),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		start:    time.Now(),
	}
	s.routes()
	if cfg.SnapshotDir != "" {
		if err := os.MkdirAll(cfg.SnapshotDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: snapshot dir: %w", err)
		}
		if err := s.restoreAll(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Registry exposes the server's registry for in-process composition (the
// replication puller installs fetched snapshots through it).
func (s *Server) Registry() *Registry { return s.reg }

// Close drains the registry: every writer loop stops and subsequent
// requests fail with 503.
func (s *Server) Close() {
	s.draining.Store(true)
	s.reg.Close()
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return http.HandlerFunc(s.serve) }

// serve applies the cross-cutting policies (bearer auth, drain refusal,
// per-request deadline) and dispatches to the mux.
func (s *Server) serve(w http.ResponseWriter, r *http.Request) {
	if tok := s.cfg.AuthToken; tok != "" && !isHealthPath(r.URL.Path) {
		got, ok := bearerToken(r)
		if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(tok)) != 1 {
			s.fail(w, http.StatusUnauthorized, wire.CodeUnauthorized, "missing or invalid bearer token")
			return
		}
	}
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, wire.CodeDraining, "server is draining")
		return
	}
	timeout := s.cfg.RequestTimeout
	if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
		if v, err := strconv.Atoi(ms); err == nil && v > 0 && time.Duration(v)*time.Millisecond < timeout {
			timeout = time.Duration(v) * time.Millisecond
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	s.mux.ServeHTTP(w, r.WithContext(ctx))
}

// isHealthPath exempts liveness probes from auth: load balancers and fleet
// health checkers must be able to probe without credentials.
func isHealthPath(p string) bool { return p == "/healthz" || p == "/v1/healthz" }

// bearerToken extracts the Authorization bearer credential.
func bearerToken(r *http.Request) (string, bool) {
	const prefix = "Bearer "
	h := r.Header.Get("Authorization")
	if len(h) <= len(prefix) || h[:len(prefix)] != prefix {
		return "", false
	}
	return h[len(prefix):], true
}

// route registers a handler under the versioned /v1 path and, for one
// release, under the unversioned legacy alias.
func (s *Server) route(method, path string, h http.HandlerFunc) {
	s.mux.HandleFunc(method+" /"+wire.APIVersion+path, h)
	s.mux.HandleFunc(method+" "+path, h)
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.route("GET", "/healthz", s.handleHealthz)
	s.route("GET", "/stats", s.handleStats)
	s.route("GET", "/catalog", s.handleCatalog)
	s.route("GET", "/udfs", s.handleListUDFs)
	s.route("POST", "/udfs", s.handleRegister)
	s.route("POST", "/udfs/{name}/eval", s.handleEval)
	s.route("POST", "/udfs/{name}/stream", s.handleStream)
	s.route("POST", "/udfs/{name}/snapshot", s.handleSnapshotOne)
	s.route("POST", "/snapshot", s.handleSnapshotAll)
	// /v1-only surface: the bounded-query endpoint was born versioned, and
	// the replication endpoints are new in the fleet release.
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/query/partials", s.handleQueryPartials)
	s.mux.HandleFunc("GET /v1/replication/udfs", s.handleReplicationList)
	s.mux.HandleFunc("GET /v1/udfs/{name}/snapshot", s.handleSnapshotFetch)
	s.mux.HandleFunc("GET /v1/replication/members", s.handleMembershipGet)
	s.mux.HandleFunc("POST /v1/replication/members", s.handleMembershipPost)
	s.mux.HandleFunc("POST /v1/replication/hint", s.handleReplicationHint)
}

// --- admission control ---

// tryAdmit takes one in-flight-tuple token without blocking; callers refuse
// the request with 429 when it fails.
func (s *Server) tryAdmit() bool {
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
		return false
	}
}

// admit blocks for a token under ctx — the backpressure used for the later
// tuples of an already-admitted stream.
func (s *Server) admit(ctx context.Context) error {
	select {
	case s.inflight <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.inflight }

// --- JSON plumbing ---

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// decodeStrict decodes one JSON document, rejecting unknown fields and
// trailing garbage — malformed requests fail loudly instead of silently
// dropping a mistyped parameter.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON document")
	}
	return nil
}

// --- results ---

// EvalResult is the wire form of one evaluated tuple (see wire.EvalResult).
// Floats are encoded by encoding/json's shortest-round-trip formatting, so
// equal bits produce equal text: two results are bit-identical iff their
// JSON lines are equal.
type EvalResult = wire.EvalResult

// Aliases binding the handler vocabulary to the shared wire surface.
type (
	udfInfo      = wire.UDFInfo
	streamLine   = wire.StreamLine
	streamResult = wire.StreamResult
	snapshotInfo = wire.SnapshotInfo
)

// supportHash digests the raw float64 bits of the output support (FNV-64a).
func supportHash(vals []float64) string {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range vals {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// resultOf flattens a core.Output into the wire form.
func resultOf(seq int64, out *core.Output, eps float64) EvalResult {
	r := EvalResult{
		Seq:       seq,
		Engine:    out.Engine.String(),
		Eps:       eps,
		Bound:     out.Bound,
		BoundGP:   out.BoundGP,
		BoundMC:   out.BoundMC,
		MetBudget: out.MetBudget,
		Samples:   out.Samples,
		UDFCalls:  out.UDFCalls,

		PointsAdded: out.PointsAdded,
		LocalPoints: out.LocalPoints,
		Filtered:    out.Filtered,
	}
	if out.Dist != nil {
		r.Mean = out.Dist.Mean()
		r.Quantiles = map[string]float64{
			"p05": out.Dist.Quantile(0.05),
			"p25": out.Dist.Quantile(0.25),
			"p50": out.Dist.Quantile(0.50),
			"p75": out.Dist.Quantile(0.75),
			"p95": out.Dist.Quantile(0.95),
		}
		r.SupportHash = supportHash(out.Dist.Values())
	}
	return r
}

// --- basic endpoints ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, wire.HealthResponse{
		Status:    "ok",
		UptimeSec: time.Since(s.start).Seconds(),
		UDFs:      len(s.reg.List()),
		InFlight:  len(s.inflight),
		Capacity:  cap(s.inflight),
	})
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	entries := Catalog()
	resp := wire.CatalogResponse{UDFs: make([]wire.CatalogUDF, len(entries))}
	for i, c := range entries {
		resp.UDFs[i] = wire.CatalogUDF{Name: c.Name, Dim: c.Dim, Description: c.Description}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.List()
	resp := wire.StatsResponse{UDFs: make([]UDFStats, 0, len(entries))}
	var totalMC int64
	for _, e := range entries {
		st, err := e.stats(r.Context())
		if err != nil {
			s.failErr(w, err, "stats for %q: %v", e.Spec().Name, err)
			return
		}
		resp.TotalSavedCalls += st.SavedCalls
		totalMC += st.MCEquivalentCalls
		resp.UDFs = append(resp.UDFs, st)
	}
	if totalMC > 0 {
		resp.TotalSavingsRatio = float64(resp.TotalSavedCalls) / float64(totalMC)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// --- registration ---

func infoOf(e *udfEntry) udfInfo {
	return udfInfo{
		Name:           e.spec.Name,
		UDF:            e.spec.UDF,
		Dim:            e.def.entry.Dim,
		Eps:            e.cfg.Eps,
		Delta:          e.cfg.Delta,
		TrainingPoints: e.trainPts.Load(),
		MCSamples:      e.mcSamples,
		SparseBudget:   e.cfg.SparseBudget,
		ModelSeq:       e.Seq(),
		Replica:        e.Replica(),
	}
}

func (s *Server) handleListUDFs(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.List()
	resp := wire.UDFList{UDFs: make([]udfInfo, len(entries))}
	for i, e := range entries {
		resp.UDFs[i] = infoOf(e)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req wire.RegisterRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad register request: %v", err)
		return
	}
	e, err := s.reg.Register(req.Spec(), nil)
	if err != nil {
		if errors.Is(err, errAlreadyRegistered) || errors.Is(err, errDraining) {
			s.failErr(w, err, "%v", err)
		} else {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
		}
		return
	}
	for i, in := range req.Warmup {
		vec, verr := in.Vector()
		if verr == nil && vec.Dim() != e.def.entry.Dim {
			verr = fmt.Errorf("dim %d ≠ UDF dim %d", vec.Dim(), e.def.entry.Dim)
		}
		if verr != nil {
			// Roll the registration back: a half-warmed instance the client
			// thinks failed must not squat on the name.
			s.reg.remove(e.spec.Name)
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "warmup[%d]: %v", i, verr)
			return
		}
		// Warm-up tuples are in-flight tuples like any other: they take an
		// admission token each, so concurrent registrations cannot run
		// unbounded learning work past MaxInFlight.
		if err := s.admit(r.Context()); err != nil {
			s.reg.remove(e.spec.Name)
			s.failErr(w, err, "warmup[%d]: %v", i, err)
			return
		}
		_, err := e.learnEval(r.Context(), vec, exec.TupleSeed(req.WarmupSeed, int64(i)))
		s.release()
		if err != nil {
			s.reg.remove(e.spec.Name)
			s.failErr(w, err, "warmup[%d]: %v", i, err)
			return
		}
	}
	s.cfg.Logf("registered UDF %q (catalog %s, ε=%g δ=%g, %d warm-up tuples)",
		e.spec.Name, e.spec.UDF, e.cfg.Eps, e.cfg.Delta, len(req.Warmup))
	s.writeJSON(w, http.StatusCreated, infoOf(e))
}

// --- evaluation ---

func (s *Server) entryFor(w http.ResponseWriter, r *http.Request) (*udfEntry, bool) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		s.fail(w, http.StatusNotFound, wire.CodeNotFound, "no UDF %q registered", name)
		return nil, false
	}
	return e, true
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	var req wire.EvalRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad eval request: %v", err)
		return
	}
	if len(req.Input) != e.def.entry.Dim {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "input has %d attributes, UDF %q wants %d",
			len(req.Input), e.spec.Name, e.def.entry.Dim)
		return
	}
	vec, err := req.Input.Vector()
	if err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
		return
	}
	if !s.tryAdmit() {
		s.fail(w, http.StatusTooManyRequests, wire.CodeOverCapacity,
			"at capacity (%d tuples in flight)", cap(s.inflight))
		return
	}
	defer s.release()
	seed := exec.TupleSeed(req.Seed, 0)
	var out *core.Output
	if req.Learn == nil || *req.Learn {
		out, err = e.learnEval(r.Context(), vec, seed)
	} else {
		out, err = e.frozenEval(r.Context(), vec, seed)
	}
	if err != nil {
		s.failErr(w, err, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, resultOf(0, out, e.cfg.Eps))
}

// --- streaming ---

// handleStream evaluates an NDJSON stream of tuples. ?learn=false serves
// the whole stream from frozen clones fanned out over the exec executor —
// per-tuple seeding (exec.TupleSeed over ?seed=S and the line number) makes
// the response bytes a deterministic function of the model state, so a
// snapshot-restored server replays a session bit-identically. The default
// learn mode routes every tuple through the single-writer loop with the
// same per-line seed derivation.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	learn := q.Get("learn") != "false"
	var seed int64
	if sv := q.Get("seed"); sv != "" {
		v, err := strconv.ParseInt(sv, 10, 64)
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad seed %q", sv)
			return
		}
		seed = v
	}
	// Admission probe: a stream is refused up front when the server is at
	// capacity, but the probe token is returned immediately — the stream's
	// real footprint is accounted per tuple (decode → emission) by both
	// modes below, so a stream never holds a standing token on top of its
	// tuples' tokens. (With a standing token, -max-inflight 1 would
	// deadlock every stream against its own first tuple.)
	if !s.tryAdmit() {
		s.fail(w, http.StatusTooManyRequests, wire.CodeOverCapacity,
			"at capacity (%d tuples in flight)", cap(s.inflight))
		return
	}
	s.release()

	// Results stream back while the request body is still being read, so
	// the connection must be full-duplex — without this, net/http may
	// discard the unread request body once the first response line is
	// written, truncating the stream mid-session.
	if err := http.NewResponseController(w).EnableFullDuplex(); err != nil && s.cfg.Logf != nil {
		s.cfg.Logf("stream: full duplex unavailable: %v", err)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	fail := func(seq int64, err error) {
		_, code := errClass(err)
		enc.Encode(streamResult{EvalResult: EvalResult{Seq: seq}, Error: err.Error(), ErrorCode: code})
	}
	if learn {
		s.streamLearn(r.Context(), e, r.Body, seed, enc, fail)
	} else {
		s.streamFrozen(r.Context(), e, r.Body, seed, enc, fail)
	}
}

// streamLearn runs the stream sequentially through the writer loop, taking
// one in-flight token per tuple for the duration of its evaluation.
func (s *Server) streamLearn(ctx context.Context, e *udfEntry, body io.Reader,
	seed int64, enc *json.Encoder, fail func(int64, error)) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var seq int64
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		spec, err := decodeStreamLine(line, e.def.entry.Dim)
		if err != nil {
			fail(seq, err)
			return
		}
		vec, err := spec.Vector()
		if err != nil {
			fail(seq, badReqf("%v", err))
			return
		}
		if err := s.admit(ctx); err != nil {
			fail(seq, err)
			return
		}
		out, err := e.learnEval(ctx, vec, exec.TupleSeed(seed, seq))
		s.release()
		if err != nil {
			fail(seq, err)
			return
		}
		enc.Encode(streamResult{EvalResult: resultOf(seq, out, e.cfg.Eps)})
		seq++
	}
	if err := sc.Err(); err != nil {
		fail(seq, err)
	}
}

// decodeStreamLine parses one request line and validates its arity — the
// single definition of stream-line semantics, shared by the learn path and
// the frozen pipeline source so both reject malformed lines identically.
func decodeStreamLine(line []byte, dim int) (wire.InputSpec, error) {
	var sl streamLine
	if err := decodeStrict(bytes.NewReader(line), &sl); err != nil {
		return nil, badReqf("bad stream line: %v", err)
	}
	if len(sl.Input) != dim {
		return nil, badReqf("input has %d attributes, UDF wants %d", len(sl.Input), dim)
	}
	return sl.Input, nil
}

// streamFrozen fans the stream over frozen clones via the exec executor.
// The NDJSON decode is itself the pipeline source: tuples are pulled
// lazily, each one holding an in-flight admission token from decode to
// emission, so a stream cannot queue unbounded work.
func (s *Server) streamFrozen(ctx context.Context, e *udfEntry, body io.Reader,
	seed int64, enc *json.Encoder, fail func(int64, error)) {
	pool, release, err := e.frozenPool(ctx, s.cfg.Workers)
	if err != nil {
		fail(0, err)
		return
	}
	defer release()

	src := &lineIter{
		sc:  bufio.NewScanner(body),
		dim: e.def.entry.Dim,
		srv: s,
		ctx: ctx,
	}
	src.sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	pe := pool.Apply(src, wire.AttrNames(e.def.entry.Dim), "y", exec.Options{
		Ctx:  ctx,
		Seed: seed,
	})
	defer pe.Close()
	var emitted int64
	defer func() {
		// Release the admission tokens of tuples decoded but never emitted
		// (error/cancellation teardown).
		for n := src.decoded.Load() - emitted; n > 0; n-- {
			s.release()
		}
	}()
	for {
		t, err := pe.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			fail(emitted, err)
			return
		}
		v := t.MustGet("y")
		seq := t.MustGet("id").I
		enc.Encode(streamResult{EvalResult: resultOf(seq, v.Out, e.cfg.Eps)})
		emitted++
		s.release()
		e.served.Add(1)
	}
}

// lineIter adapts the NDJSON request body to a query.Iterator. Next is
// called only by the executor's feeder goroutine; the decoded counter is
// read by the handler during teardown, after the executor has quiesced
// (ParallelEval.Close waits for the feeder), plus concurrently for token
// bookkeeping — hence atomic.
type lineIter struct {
	sc      *bufio.Scanner
	dim     int
	srv     *Server
	ctx     context.Context
	seq     int64
	decoded atomic.Int64
}

func (it *lineIter) Next() (*query.Tuple, error) {
	for {
		if !it.sc.Scan() {
			if err := it.sc.Err(); err != nil {
				return nil, err
			}
			return nil, io.EOF
		}
		line := bytes.TrimSpace(it.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// One admission token per in-flight tuple, held until its result is
		// emitted (released by the drain loop).
		if err := it.srv.admit(it.ctx); err != nil {
			return nil, err
		}
		it.decoded.Add(1)
		spec, err := decodeStreamLine(line, it.dim)
		if err != nil {
			return nil, err
		}
		t, err := spec.Tuple(it.seq)
		if err != nil {
			return nil, err
		}
		it.seq++
		return t, nil
	}
}
