package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"olgapro/internal/core"
	"olgapro/internal/exec"
	"olgapro/internal/query"
	"olgapro/internal/server/wire"
)

// Config parameterizes a Server. The zero value is usable.
type Config struct {
	// SnapshotDir is where POST /snapshot persists trained GP state and
	// where boot-time restore looks. Empty disables persistence.
	SnapshotDir string
	// MaxInFlight bounds the number of tuples being evaluated or queued
	// across all requests; admission beyond it is refused with 429 and a
	// Retry-After. Default 256.
	MaxInFlight int
	// RequestTimeout is the per-request context deadline; a request may
	// lower (never raise) it with ?timeout_ms=N. Default 30s.
	RequestTimeout time.Duration
	// Workers is the number of frozen-clone slots per UDF — the read path's
	// maximum concurrency and a stream's maximum fan-out. Default
	// GOMAXPROCS.
	Workers int
	// Logf, when non-nil, receives one line per notable server event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the olgaprod HTTP service: an evaluator registry behind a JSON
// API with admission control and snapshot persistence. Build one with New,
// mount Handler on an http.Server, and Close it after draining.
type Server struct {
	cfg      Config
	reg      *Registry
	mux      *http.ServeMux
	inflight chan struct{}
	start    time.Time
	draining atomic.Bool
}

// New builds a server and, when cfg.SnapshotDir holds snapshot metadata
// from a previous run, restores every persisted UDF so the new process
// skips re-learning.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      NewRegistry(cfg.Workers),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		start:    time.Now(),
	}
	s.routes()
	if cfg.SnapshotDir != "" {
		if err := os.MkdirAll(cfg.SnapshotDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: snapshot dir: %w", err)
		}
		if err := s.restoreAll(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Close drains the registry: every writer loop stops and subsequent
// requests fail with 503.
func (s *Server) Close() {
	s.draining.Store(true)
	s.reg.Close()
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return http.HandlerFunc(s.serve) }

// serve applies the cross-cutting policies (drain refusal, per-request
// deadline) and dispatches to the mux.
func (s *Server) serve(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.error(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	timeout := s.cfg.RequestTimeout
	if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
		if v, err := strconv.Atoi(ms); err == nil && v > 0 && time.Duration(v)*time.Millisecond < timeout {
			timeout = time.Duration(v) * time.Millisecond
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	s.mux.ServeHTTP(w, r.WithContext(ctx))
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /catalog", s.handleCatalog)
	s.mux.HandleFunc("GET /udfs", s.handleListUDFs)
	s.mux.HandleFunc("POST /udfs", s.handleRegister)
	s.mux.HandleFunc("POST /udfs/{name}/eval", s.handleEval)
	s.mux.HandleFunc("POST /udfs/{name}/stream", s.handleStream)
	s.mux.HandleFunc("POST /udfs/{name}/snapshot", s.handleSnapshotOne)
	s.mux.HandleFunc("POST /snapshot", s.handleSnapshotAll)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
}

// --- admission control ---

// tryAdmit takes one in-flight-tuple token without blocking; callers refuse
// the request with 429 when it fails.
func (s *Server) tryAdmit() bool {
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
		return false
	}
}

// admit blocks for a token under ctx — the backpressure used for the later
// tuples of an already-admitted stream.
func (s *Server) admit(ctx context.Context) error {
	select {
	case s.inflight <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.inflight }

// --- error & JSON plumbing ---

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) error(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

// errStatus maps evaluation-path errors to HTTP statuses.
func errStatus(err error) int {
	switch {
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, errNotWarm):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// decodeStrict decodes one JSON document, rejecting unknown fields and
// trailing garbage — malformed requests fail loudly instead of silently
// dropping a mistyped parameter.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON document")
	}
	return nil
}

// --- results ---

// EvalResult is the wire form of one evaluated tuple. Floats are encoded by
// encoding/json's shortest-round-trip formatting, so equal bits produce
// equal text: two results are bit-identical iff their JSON lines are equal.
// SupportHash additionally digests every sample of the full output
// distribution, making line equality a strong bit-replay check without
// shipping thousands of floats.
type EvalResult struct {
	Seq       int64   `json:"seq"`
	Engine    string  `json:"engine"`
	Eps       float64 `json:"eps"`
	Bound     float64 `json:"bound"`
	BoundGP   float64 `json:"bound_gp"`
	BoundMC   float64 `json:"bound_mc"`
	MetBudget bool    `json:"met_budget"`

	Mean        float64            `json:"mean"`
	Quantiles   map[string]float64 `json:"quantiles"`
	SupportHash string             `json:"support_hash"`

	Samples     int  `json:"samples"`
	UDFCalls    int  `json:"udf_calls"`
	PointsAdded int  `json:"points_added"`
	LocalPoints int  `json:"local_points"`
	Filtered    bool `json:"filtered,omitempty"`
}

// supportHash digests the raw float64 bits of the output support (FNV-64a).
func supportHash(vals []float64) string {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range vals {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// resultOf flattens a core.Output into the wire form.
func resultOf(seq int64, out *core.Output, eps float64) EvalResult {
	r := EvalResult{
		Seq:       seq,
		Engine:    out.Engine.String(),
		Eps:       eps,
		Bound:     out.Bound,
		BoundGP:   out.BoundGP,
		BoundMC:   out.BoundMC,
		MetBudget: out.MetBudget,
		Samples:   out.Samples,
		UDFCalls:  out.UDFCalls,

		PointsAdded: out.PointsAdded,
		LocalPoints: out.LocalPoints,
		Filtered:    out.Filtered,
	}
	if out.Dist != nil {
		r.Mean = out.Dist.Mean()
		r.Quantiles = map[string]float64{
			"p05": out.Dist.Quantile(0.05),
			"p25": out.Dist.Quantile(0.25),
			"p50": out.Dist.Quantile(0.50),
			"p75": out.Dist.Quantile(0.75),
			"p95": out.Dist.Quantile(0.95),
		}
		r.SupportHash = supportHash(out.Dist.Values())
	}
	return r
}

// --- basic endpoints ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"uptime_sec": time.Since(s.start).Seconds(),
		"udfs":       len(s.reg.List()),
		"inflight":   len(s.inflight),
		"capacity":   cap(s.inflight),
	})
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"udfs": Catalog()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.List()
	stats := make([]UDFStats, 0, len(entries))
	var totalSaved, totalMC int64
	for _, e := range entries {
		st, err := e.stats(r.Context())
		if err != nil {
			s.error(w, errStatus(err), "stats for %q: %v", e.Spec().Name, err)
			return
		}
		totalSaved += st.SavedCalls
		totalMC += st.MCEquivalentCalls
		stats = append(stats, st)
	}
	resp := map[string]any{"udfs": stats, "total_saved_calls": totalSaved}
	if totalMC > 0 {
		resp["total_savings_ratio"] = float64(totalSaved) / float64(totalMC)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// --- registration ---

// registerRequest is the POST /udfs body: a RegisterSpec plus optional
// warm-up inputs evaluated in learn mode before the registration returns,
// so read traffic can start immediately.
type registerRequest struct {
	Name       string           `json:"name,omitempty"`
	UDF        string           `json:"udf"`
	Eps        float64          `json:"eps,omitempty"`
	Delta      float64          `json:"delta,omitempty"`
	Sparse     *wire.SparseSpec `json:"sparse,omitempty"`
	Warmup     []wire.InputSpec `json:"warmup,omitempty"`
	WarmupSeed int64            `json:"warmup_seed,omitempty"`
}

type udfInfo struct {
	Name           string  `json:"name"`
	UDF            string  `json:"udf"`
	Dim            int     `json:"dim"`
	Eps            float64 `json:"eps"`
	Delta          float64 `json:"delta"`
	TrainingPoints int64   `json:"training_points"`
	MCSamples      int     `json:"mc_samples_per_input"`
	// SparseBudget is the inducing-point cap when the instance runs on the
	// budgeted sparse emulator; 0 means the exact GP.
	SparseBudget int `json:"sparse_budget,omitempty"`
}

func infoOf(e *udfEntry) udfInfo {
	return udfInfo{
		Name:           e.spec.Name,
		UDF:            e.spec.UDF,
		Dim:            e.def.entry.Dim,
		Eps:            e.cfg.Eps,
		Delta:          e.cfg.Delta,
		TrainingPoints: e.trainPts.Load(),
		MCSamples:      e.mcSamples,
		SparseBudget:   e.cfg.SparseBudget,
	}
}

func (s *Server) handleListUDFs(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.List()
	infos := make([]udfInfo, len(entries))
	for i, e := range entries {
		infos[i] = infoOf(e)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"udfs": infos})
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		s.error(w, http.StatusBadRequest, "bad register request: %v", err)
		return
	}
	e, err := s.reg.Register(RegisterSpec{
		Name: req.Name, UDF: req.UDF, Eps: req.Eps, Delta: req.Delta,
		Sparse: req.Sparse,
	}, nil)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errAlreadyRegistered) {
			status = http.StatusConflict
		} else if errors.Is(err, errDraining) {
			status = http.StatusServiceUnavailable
		}
		s.error(w, status, "%v", err)
		return
	}
	for i, in := range req.Warmup {
		vec, verr := in.Vector()
		if verr == nil && vec.Dim() != e.def.entry.Dim {
			verr = fmt.Errorf("dim %d ≠ UDF dim %d", vec.Dim(), e.def.entry.Dim)
		}
		if verr != nil {
			// Roll the registration back: a half-warmed instance the client
			// thinks failed must not squat on the name.
			s.reg.remove(e.spec.Name)
			s.error(w, http.StatusBadRequest, "warmup[%d]: %v", i, verr)
			return
		}
		// Warm-up tuples are in-flight tuples like any other: they take an
		// admission token each, so concurrent registrations cannot run
		// unbounded learning work past MaxInFlight.
		if err := s.admit(r.Context()); err != nil {
			s.reg.remove(e.spec.Name)
			s.error(w, errStatus(err), "warmup[%d]: %v", i, err)
			return
		}
		_, err := e.learnEval(r.Context(), vec, exec.TupleSeed(req.WarmupSeed, int64(i)))
		s.release()
		if err != nil {
			s.reg.remove(e.spec.Name)
			s.error(w, errStatus(err), "warmup[%d]: %v", i, err)
			return
		}
	}
	s.cfg.Logf("registered UDF %q (catalog %s, ε=%g δ=%g, %d warm-up tuples)",
		e.spec.Name, e.spec.UDF, e.cfg.Eps, e.cfg.Delta, len(req.Warmup))
	s.writeJSON(w, http.StatusCreated, infoOf(e))
}

// --- evaluation ---

// evalRequest is the POST /udfs/{name}/eval body. Learn defaults to true
// (the input contributes to the model); learn=false serves from a frozen
// clone, making the response a pure, bit-replayable function of
// (model state, input, seed) — identical to line 0 of a frozen stream with
// the same seed.
type evalRequest struct {
	Input wire.InputSpec `json:"input"`
	Seed  int64          `json:"seed,omitempty"`
	Learn *bool          `json:"learn,omitempty"`
}

func (s *Server) entryFor(w http.ResponseWriter, r *http.Request) (*udfEntry, bool) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		s.error(w, http.StatusNotFound, "no UDF %q registered", name)
		return nil, false
	}
	return e, true
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	var req evalRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		s.error(w, http.StatusBadRequest, "bad eval request: %v", err)
		return
	}
	if len(req.Input) != e.def.entry.Dim {
		s.error(w, http.StatusBadRequest, "input has %d attributes, UDF %q wants %d",
			len(req.Input), e.spec.Name, e.def.entry.Dim)
		return
	}
	vec, err := req.Input.Vector()
	if err != nil {
		s.error(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.tryAdmit() {
		s.error(w, http.StatusTooManyRequests, "at capacity (%d tuples in flight)", cap(s.inflight))
		return
	}
	defer s.release()
	seed := exec.TupleSeed(req.Seed, 0)
	var out *core.Output
	if req.Learn == nil || *req.Learn {
		out, err = e.learnEval(r.Context(), vec, seed)
	} else {
		out, err = e.frozenEval(r.Context(), vec, seed)
	}
	if err != nil {
		s.error(w, errStatus(err), "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, resultOf(0, out, e.cfg.Eps))
}

// --- streaming ---

// streamLine is one NDJSON request line of POST /udfs/{name}/stream.
type streamLine struct {
	Input wire.InputSpec `json:"input"`
}

// streamResult is one NDJSON response line: either a result or a terminal
// error (after which the stream ends).
type streamResult struct {
	EvalResult
	Error string `json:"error,omitempty"`
}

// handleStream evaluates an NDJSON stream of tuples. ?learn=false serves
// the whole stream from frozen clones fanned out over the exec executor —
// per-tuple seeding (exec.TupleSeed over ?seed=S and the line number) makes
// the response bytes a deterministic function of the model state, so a
// snapshot-restored server replays a session bit-identically. The default
// learn mode routes every tuple through the single-writer loop with the
// same per-line seed derivation.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	learn := q.Get("learn") != "false"
	var seed int64
	if sv := q.Get("seed"); sv != "" {
		v, err := strconv.ParseInt(sv, 10, 64)
		if err != nil {
			s.error(w, http.StatusBadRequest, "bad seed %q", sv)
			return
		}
		seed = v
	}
	// Admission probe: a stream is refused up front when the server is at
	// capacity, but the probe token is returned immediately — the stream's
	// real footprint is accounted per tuple (decode → emission) by both
	// modes below, so a stream never holds a standing token on top of its
	// tuples' tokens. (With a standing token, -max-inflight 1 would
	// deadlock every stream against its own first tuple.)
	if !s.tryAdmit() {
		s.error(w, http.StatusTooManyRequests, "at capacity (%d tuples in flight)", cap(s.inflight))
		return
	}
	s.release()

	// Results stream back while the request body is still being read, so
	// the connection must be full-duplex — without this, net/http may
	// discard the unread request body once the first response line is
	// written, truncating the stream mid-session.
	if err := http.NewResponseController(w).EnableFullDuplex(); err != nil && s.cfg.Logf != nil {
		s.cfg.Logf("stream: full duplex unavailable: %v", err)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	fail := func(seq int64, err error) {
		enc.Encode(streamResult{EvalResult: EvalResult{Seq: seq}, Error: err.Error()})
	}
	if learn {
		s.streamLearn(r.Context(), e, r.Body, seed, enc, fail)
	} else {
		s.streamFrozen(r.Context(), e, r.Body, seed, enc, fail)
	}
}

// streamLearn runs the stream sequentially through the writer loop, taking
// one in-flight token per tuple for the duration of its evaluation.
func (s *Server) streamLearn(ctx context.Context, e *udfEntry, body io.Reader,
	seed int64, enc *json.Encoder, fail func(int64, error)) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var seq int64
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		spec, err := decodeStreamLine(line, e.def.entry.Dim)
		if err != nil {
			fail(seq, err)
			return
		}
		vec, err := spec.Vector()
		if err != nil {
			fail(seq, err)
			return
		}
		if err := s.admit(ctx); err != nil {
			fail(seq, err)
			return
		}
		out, err := e.learnEval(ctx, vec, exec.TupleSeed(seed, seq))
		s.release()
		if err != nil {
			fail(seq, err)
			return
		}
		enc.Encode(streamResult{EvalResult: resultOf(seq, out, e.cfg.Eps)})
		seq++
	}
	if err := sc.Err(); err != nil {
		fail(seq, err)
	}
}

// decodeStreamLine parses one request line and validates its arity — the
// single definition of stream-line semantics, shared by the learn path and
// the frozen pipeline source so both reject malformed lines identically.
func decodeStreamLine(line []byte, dim int) (wire.InputSpec, error) {
	var sl streamLine
	if err := decodeStrict(bytes.NewReader(line), &sl); err != nil {
		return nil, fmt.Errorf("bad stream line: %w", err)
	}
	if len(sl.Input) != dim {
		return nil, fmt.Errorf("input has %d attributes, UDF wants %d", len(sl.Input), dim)
	}
	return sl.Input, nil
}

// streamFrozen fans the stream over frozen clones via the exec executor.
// The NDJSON decode is itself the pipeline source: tuples are pulled
// lazily, each one holding an in-flight admission token from decode to
// emission, so a stream cannot queue unbounded work.
func (s *Server) streamFrozen(ctx context.Context, e *udfEntry, body io.Reader,
	seed int64, enc *json.Encoder, fail func(int64, error)) {
	pool, release, err := e.frozenPool(ctx, s.cfg.Workers)
	if err != nil {
		fail(0, err)
		return
	}
	defer release()

	src := &lineIter{
		sc:  bufio.NewScanner(body),
		dim: e.def.entry.Dim,
		srv: s,
		ctx: ctx,
	}
	src.sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	pe := pool.Apply(src, wire.AttrNames(e.def.entry.Dim), "y", exec.Options{
		Ctx:  ctx,
		Seed: seed,
	})
	defer pe.Close()
	var emitted int64
	defer func() {
		// Release the admission tokens of tuples decoded but never emitted
		// (error/cancellation teardown).
		for n := src.decoded.Load() - emitted; n > 0; n-- {
			s.release()
		}
	}()
	for {
		t, err := pe.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			fail(emitted, err)
			return
		}
		v := t.MustGet("y")
		seq := t.MustGet("id").I
		enc.Encode(streamResult{EvalResult: resultOf(seq, v.Out, e.cfg.Eps)})
		emitted++
		s.release()
		e.served.Add(1)
	}
}

// lineIter adapts the NDJSON request body to a query.Iterator. Next is
// called only by the executor's feeder goroutine; the decoded counter is
// read by the handler during teardown, after the executor has quiesced
// (ParallelEval.Close waits for the feeder), plus concurrently for token
// bookkeeping — hence atomic.
type lineIter struct {
	sc      *bufio.Scanner
	dim     int
	srv     *Server
	ctx     context.Context
	seq     int64
	decoded atomic.Int64
}

func (it *lineIter) Next() (*query.Tuple, error) {
	for {
		if !it.sc.Scan() {
			if err := it.sc.Err(); err != nil {
				return nil, err
			}
			return nil, io.EOF
		}
		line := bytes.TrimSpace(it.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// One admission token per in-flight tuple, held until its result is
		// emitted (released by the drain loop).
		if err := it.srv.admit(it.ctx); err != nil {
			return nil, err
		}
		it.decoded.Add(1)
		spec, err := decodeStreamLine(line, it.dim)
		if err != nil {
			return nil, err
		}
		t, err := spec.Tuple(it.seq)
		if err != nil {
			return nil, err
		}
		it.seq++
		return t, nil
	}
}

// --- snapshots ---

// snapName returns the snapshot and metadata paths for a UDF instance.
func (s *Server) snapName(name string) (snap, meta string) {
	return filepath.Join(s.cfg.SnapshotDir, name+".snap"),
		filepath.Join(s.cfg.SnapshotDir, name+".meta.json")
}

// persist writes one entry's snapshot and metadata atomically.
func (s *Server) persist(ctx context.Context, e *udfEntry) (points int, err error) {
	if s.cfg.SnapshotDir == "" {
		return 0, errors.New("server: no -snapshot-dir configured")
	}
	var buf bytes.Buffer
	points, err = e.snapshot(ctx, &buf)
	if err != nil {
		return 0, err
	}
	snap, meta := s.snapName(e.spec.Name)
	if err := atomicWrite(snap, buf.Bytes()); err != nil {
		return 0, err
	}
	mb, err := json.MarshalIndent(e.spec, "", "  ")
	if err != nil {
		return 0, err
	}
	if err := atomicWrite(meta, append(mb, '\n')); err != nil {
		return 0, err
	}
	s.cfg.Logf("snapshot %q: %d training points → %s", e.spec.Name, points, snap)
	return points, nil
}

// atomicWrite writes via a uniquely-named temp file + rename, so a crash
// mid-write never leaves a truncated snapshot for the next boot to trip
// over, and two concurrent snapshot requests for the same UDF cannot
// interleave bytes in a shared temp file — the loser's rename just
// replaces the winner's whole file.
func atomicWrite(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

type snapshotInfo struct {
	Name           string `json:"name"`
	TrainingPoints int    `json:"training_points"`
	Path           string `json:"path"`
}

func (s *Server) handleSnapshotOne(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	points, err := s.persist(r.Context(), e)
	if err != nil {
		s.error(w, errStatus(err), "%v", err)
		return
	}
	snap, _ := s.snapName(e.spec.Name)
	s.writeJSON(w, http.StatusOK, snapshotInfo{Name: e.spec.Name, TrainingPoints: points, Path: snap})
}

func (s *Server) handleSnapshotAll(w http.ResponseWriter, r *http.Request) {
	var infos []snapshotInfo
	for _, e := range s.reg.List() {
		points, err := s.persist(r.Context(), e)
		if err != nil {
			s.error(w, errStatus(err), "snapshot %q: %v", e.Spec().Name, err)
			return
		}
		snap, _ := s.snapName(e.spec.Name)
		infos = append(infos, snapshotInfo{Name: e.spec.Name, TrainingPoints: points, Path: snap})
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"snapshots": infos})
}

// restoreAll re-registers every persisted UDF from the snapshot directory.
func (s *Server) restoreAll() error {
	metas, err := filepath.Glob(filepath.Join(s.cfg.SnapshotDir, "*.meta.json"))
	if err != nil {
		return err
	}
	for _, meta := range metas {
		mb, err := os.ReadFile(meta)
		if err != nil {
			return fmt.Errorf("server: restore %s: %w", meta, err)
		}
		var spec RegisterSpec
		if err := json.Unmarshal(mb, &spec); err != nil {
			return fmt.Errorf("server: restore %s: %w", meta, err)
		}
		snap, _ := s.snapName(spec.Name)
		f, err := os.Open(snap)
		if err != nil {
			return fmt.Errorf("server: restore %q: %w", spec.Name, err)
		}
		e, err := s.reg.Register(spec, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("server: restore %q: %w", spec.Name, err)
		}
		s.cfg.Logf("restored UDF %q from snapshot (%d training points)", spec.Name, e.trainPts.Load())
	}
	return nil
}
