package server

import (
	"fmt"
	"sort"

	"olgapro/internal/astro"
	"olgapro/internal/kernel"
	"olgapro/internal/udf"
)

// CatalogEntry describes one built-in UDF clients can register. The service
// cannot accept arbitrary code over the wire — a UDF is a black-box *Go
// function* — so the catalog is the nameable function space: the paper's
// astrophysics case-study UDFs plus the §6.1 analytic test family. The
// catalog name is also what snapshot metadata records, which is how a
// restarted server reconnects persisted GP state to executable code.
type CatalogEntry struct {
	// Name is the registry key, e.g. "astro/galage".
	Name string `json:"name"`
	// Dim is the UDF's input dimensionality.
	Dim int `json:"dim"`
	// Description is a one-line human summary.
	Description string `json:"description"`
}

// catalogDef couples a CatalogEntry with its constructors. Kernels are
// constructed per registration — evaluators tune hyperparameters in place,
// so two registrations must never share a kernel.
type catalogDef struct {
	entry  CatalogEntry
	mkUDF  func() udf.Func
	kernel func() kernel.Kernel
}

// builtins returns the catalog definitions. A function value is built per
// call, so entries carry no shared mutable state.
func builtins() map[string]catalogDef {
	cosmo := astro.Default()
	defs := map[string]catalogDef{
		"astro/galage": {
			entry: CatalogEntry{Name: "astro/galage", Dim: 1,
				Description: "galaxy age from redshift (paper query Q1)"},
			mkUDF:  func() udf.Func { return astro.GalAgeFunc(cosmo) },
			kernel: func() kernel.Kernel { return kernel.NewSqExp(4, 0.3) },
		},
		"astro/comovevol": {
			entry: CatalogEntry{Name: "astro/comovevol", Dim: 2,
				Description: "comoving volume between two redshifts over 100 deg² (query Q2)"},
			mkUDF:  func() udf.Func { return astro.ComoveVolFunc(cosmo, 100) },
			kernel: func() kernel.Kernel { return kernel.NewSqExp(5e7, 0.3) },
		},
		"astro/angdist4": {
			entry: CatalogEntry{Name: "astro/angdist4", Dim: 4,
				Description: "angular distance between two uncertain sky positions (query Q2 predicate)"},
			mkUDF:  func() udf.Func { return astro.AngDistFunc4() },
			kernel: func() kernel.Kernel { return kernel.NewSqExp(20, 15) },
		},
		"poly/smooth2d": {
			entry: CatalogEntry{Name: "poly/smooth2d", Dim: 2,
				Description: "smooth analytic test function x₀² + 0.5x₁ + 0.3x₀x₁"},
			mkUDF: func() udf.Func {
				return udf.FuncOf{D: 2, F: func(x []float64) float64 {
					return x[0]*x[0] + 0.5*x[1] + 0.3*x[0]*x[1]
				}}
			},
			kernel: func() kernel.Kernel { return kernel.NewSqExp(1, 0.5) },
		},
	}
	for fam, desc := range map[udf.Family]string{
		udf.F1: "Funct1: one bump, large spread (flattest of §6.1-A)",
		udf.F2: "Funct2: one bump, small spread (single spike)",
		udf.F3: "Funct3: five bumps, large spread",
		udf.F4: "Funct4: five bumps, small spread (bumpiest)",
	} {
		fam := fam
		name := fmt.Sprintf("mix/f%d", int(fam))
		defs[name] = catalogDef{
			entry:  CatalogEntry{Name: name, Dim: 2, Description: desc},
			mkUDF:  func() udf.Func { return udf.Standard(fam, 1) },
			kernel: func() kernel.Kernel { return kernel.NewSqExp(0.5, 1.5) },
		}
	}
	return defs
}

// Catalog returns the built-in UDF entries, sorted by name.
func Catalog() []CatalogEntry {
	defs := builtins()
	out := make([]CatalogEntry, 0, len(defs))
	for _, d := range defs {
		out = append(out, d.entry)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// lookupCatalog resolves a catalog name to its definition.
func lookupCatalog(name string) (catalogDef, error) {
	d, ok := builtins()[name]
	if !ok {
		return catalogDef{}, fmt.Errorf("server: unknown catalog UDF %q (see GET /catalog)", name)
	}
	return d, nil
}
