package server

// Shard-side replication endpoints. A replica shard discovers what its
// peers host with GET /v1/replication/udfs — passing the last seen
// ?since_version= long-polls until the peer's registry mutates or the
// request deadline fires, so subscription costs one idle connection instead
// of a tight poll loop — and pulls models with GET /v1/udfs/{name}/snapshot,
// which serializes the live evaluator (never a stale disk file) stamped
// with its model sequence. ?min_seq=N answers 304 when the shard has
// nothing the replica doesn't: monotonic sequence numbers make "is this
// newer" a single integer comparison.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"

	"olgapro/internal/server/wire"
)

// handleReplicationList serves the shard's hosted-UDF list, long-polling
// under the request deadline when ?since_version= matches the current
// registry version.
func (s *Server) handleReplicationList(w http.ResponseWriter, r *http.Request) {
	since := int64(-1)
	if v := r.URL.Query().Get("since_version"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad since_version %q", v)
			return
		}
		since = n
	}
	ver := s.reg.WaitReplication(r.Context(), since)
	s.writeJSON(w, http.StatusOK, wire.ReplicationList{
		Version: ver,
		UDFs:    s.reg.ReplicationStates(),
	})
}

// handleSnapshotFetch serves the named UDF's current model as raw versioned
// snapshot bytes, with the model sequence and registration spec in response
// headers so a replica can install it without a second round trip.
func (s *Server) handleSnapshotFetch(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	minSeq := int64(-1)
	if v := r.URL.Query().Get("min_seq"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad min_seq %q", v)
			return
		}
		minSeq = n
	}
	if minSeq >= 0 && e.Seq() < minSeq {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	var buf bytes.Buffer
	_, seq, err := e.snapshot(r.Context(), &buf)
	if err != nil {
		s.failErr(w, err, "snapshot %q: %v", e.spec.Name, err)
		return
	}
	if minSeq >= 0 && seq < minSeq {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	specJSON, err := json.Marshal(e.Spec())
	if err != nil {
		s.fail(w, http.StatusInternalServerError, wire.CodeInternal, "encode spec: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(wire.HeaderModelSeq, strconv.FormatInt(seq, 10))
	w.Header().Set(wire.HeaderSpec, string(specJSON))
	w.Write(buf.Bytes())
}
