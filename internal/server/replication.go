package server

// Shard-side replication endpoints. A replica shard discovers what its
// peers host with GET /v1/replication/udfs — passing the last seen
// ?since_version= long-polls until the peer's registry mutates or the
// request deadline fires, so subscription costs one idle connection instead
// of a tight poll loop — and pulls models with GET /v1/udfs/{name}/snapshot,
// which serializes the live evaluator (never a stale disk file) stamped
// with its model sequence. ?min_seq=N answers 304 when the shard has
// nothing the replica doesn't: monotonic sequence numbers make "is this
// newer" a single integer comparison.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"

	"olgapro/internal/server/wire"
)

// handleReplicationList serves the shard's hosted-UDF list, long-polling
// under the request deadline when ?since_version= matches the current
// registry version.
func (s *Server) handleReplicationList(w http.ResponseWriter, r *http.Request) {
	since := int64(-1)
	if v := r.URL.Query().Get("since_version"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad since_version %q", v)
			return
		}
		since = n
	}
	ver := s.reg.WaitReplication(r.Context(), since)
	list := wire.ReplicationList{
		Version: ver,
		UDFs:    s.reg.ReplicationStates(),
	}
	// In fleet mode the list doubles as membership gossip: the shard's
	// current epoch rides along, so any member a membership broadcast
	// missed converges on its next pull.
	if h := s.fleet.Load(); h != nil && h.Membership != nil {
		m := h.Membership()
		list.Epoch = m.Epoch
		list.Shards = m.Shards
	}
	s.writeJSON(w, http.StatusOK, list)
}

// handleMembershipGet reports the shard's current membership view.
func (s *Server) handleMembershipGet(w http.ResponseWriter, r *http.Request) {
	h := s.fleet.Load()
	if h == nil || h.Membership == nil {
		s.fail(w, http.StatusServiceUnavailable, wire.CodeNotReplicated, "not running in fleet mode")
		return
	}
	s.writeJSON(w, http.StatusOK, h.Membership())
}

// handleMembershipPost offers the shard a membership; a strictly higher
// epoch is adopted (ring rebuild + re-pull of re-placed names), anything
// else is ignored. Responds with the membership the shard holds afterwards,
// so the caller learns the winning epoch either way.
func (s *Server) handleMembershipPost(w http.ResponseWriter, r *http.Request) {
	h := s.fleet.Load()
	if h == nil || h.AdoptMembership == nil || h.Membership == nil {
		s.fail(w, http.StatusServiceUnavailable, wire.CodeNotReplicated, "not running in fleet mode")
		return
	}
	var m wire.Membership
	if err := decodeStrict(r.Body, &m); err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad membership: %v", err)
		return
	}
	if _, err := h.AdoptMembership(m); err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "adopt membership: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, h.Membership())
}

// handleReplicationHint accepts a push-replication hint: the owner of a UDF
// bumped its model sequence and tells this replica to pull now instead of
// waiting out the poll interval. Hints are pure accelerators — dropping
// one only costs latency, never correctness — so the handler acknowledges
// before the pull happens.
func (s *Server) handleReplicationHint(w http.ResponseWriter, r *http.Request) {
	h := s.fleet.Load()
	if h == nil || h.Hint == nil {
		s.fail(w, http.StatusServiceUnavailable, wire.CodeNotReplicated, "not running in fleet mode")
		return
	}
	var hint wire.ReplicationHint
	if err := decodeStrict(r.Body, &hint); err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad hint: %v", err)
		return
	}
	if hint.Name == "" || hint.From == "" {
		s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "hint needs name and from")
		return
	}
	h.Hint(hint)
	w.WriteHeader(http.StatusNoContent)
}

// handleSnapshotFetch serves the named UDF's current model as raw versioned
// snapshot bytes, with the model sequence and registration spec in response
// headers so a replica can install it without a second round trip.
func (s *Server) handleSnapshotFetch(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	minSeq := int64(-1)
	if v := r.URL.Query().Get("min_seq"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad min_seq %q", v)
			return
		}
		minSeq = n
	}
	if minSeq >= 0 && e.Seq() < minSeq {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	var buf bytes.Buffer
	_, seq, err := e.snapshot(r.Context(), &buf)
	if err != nil {
		s.failErr(w, err, "snapshot %q: %v", e.spec.Name, err)
		return
	}
	if minSeq >= 0 && seq < minSeq {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	specJSON, err := json.Marshal(e.Spec())
	if err != nil {
		s.fail(w, http.StatusInternalServerError, wire.CodeInternal, "encode spec: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(wire.HeaderModelSeq, strconv.FormatInt(seq, 10))
	w.Header().Set(wire.HeaderSpec, string(specJSON))
	w.Write(buf.Bytes())
}
