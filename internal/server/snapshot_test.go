package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// TestSnapshotRotation snapshots one UDF 2K+1 times at advancing model
// sequences and asserts the rotation contract: exactly K sequence-stamped
// files survive on disk (the newest K), the meta file points at the newest,
// and a fresh server restores from it resuming the sequence counter.
func TestSnapshotRotation(t *testing.T) {
	const keep = 2
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{SnapshotDir: dir, SnapshotKeep: keep, Workers: 2})
	name := registerSmooth(t, ts.URL)
	e, ok := s.reg.Get(name)
	if !ok {
		t.Fatal("entry missing")
	}

	// Advance the model sequence by hand between snapshots: rotation is a
	// pure function of the sequence stamps, not of how learning bumped them.
	base := e.Seq()
	var seqs []int64
	for i := 0; i < 2*keep+1; i++ {
		seq := base + int64(i) + 1
		e.modelSeq.Store(seq)
		resp, body := postJSON(t, fmt.Sprintf("%s/v1/udfs/%s/snapshot", ts.URL, name), nil)
		if resp.StatusCode != 200 {
			t.Fatalf("snapshot %d: %d %s", i, resp.StatusCode, body)
		}
		var info snapshotInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.ModelSeq != seq {
			t.Fatalf("snapshot %d stamped seq %d, want %d", i, info.ModelSeq, seq)
		}
		if filepath.Base(info.Path) != seqSnapName(name, seq) {
			t.Fatalf("snapshot %d path %s, want file %s", i, info.Path, seqSnapName(name, seq))
		}
		seqs = append(seqs, seq)
	}

	// Disk state: exactly the newest K stamped files remain.
	files, err := s.snapFiles(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != keep {
		t.Fatalf("disk has %d snapshot files %v, want %d", len(files), files, keep)
	}
	for i, want := range seqs[len(seqs)-keep:] {
		if filepath.Base(files[i]) != seqSnapName(name, want) {
			t.Fatalf("surviving file %d is %s, want %s", i, files[i], seqSnapName(name, want))
		}
	}

	// The meta document names the newest snapshot.
	mb, err := os.ReadFile(s.metaPath(name))
	if err != nil {
		t.Fatal(err)
	}
	var meta snapMeta
	if err := json.Unmarshal(mb, &meta); err != nil {
		t.Fatal(err)
	}
	newest := seqs[len(seqs)-1]
	if meta.Spec == nil || meta.Spec.Name != name || meta.ModelSeq != newest ||
		meta.Snapshot != seqSnapName(name, newest) {
		t.Fatalf("meta %+v, want spec %q @ seq %d → %s", meta, name, newest, seqSnapName(name, newest))
	}

	// Record a frozen replay, then restart from disk: the restored server
	// serves the same model at the same resumed sequence.
	streamURL := fmt.Sprintf("%s/udfs/%s/stream?learn=false&seed=6", ts.URL, name)
	_, before, _ := streamNDJSON(t, streamURL, testInputs(6))
	ts.Close()
	s.Close()

	s2, err := New(Config{SnapshotDir: dir, SnapshotKeep: keep, Workers: 2})
	if err != nil {
		t.Fatalf("restore boot: %v", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()
	e2, ok := s2.reg.Get(name)
	if !ok {
		t.Fatal("restored entry missing")
	}
	if e2.Seq() != newest {
		t.Fatalf("restored model seq %d, want %d", e2.Seq(), newest)
	}
	_, after, _ := streamNDJSON(t,
		fmt.Sprintf("%s/udfs/%s/stream?learn=false&seed=6", ts2.URL, name), testInputs(6))
	if before != after {
		t.Fatalf("replay from newest snapshot diverged:\n%s\nvs\n%s", before, after)
	}
}

// TestSnapshotLegacyRestore asserts a pre-rotation layout — bare-spec meta
// JSON plus an unstamped <name>.snap — still restores.
func TestSnapshotLegacyRestore(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{})
	name := registerSmooth(t, ts.URL)
	e, ok := s.reg.Get(name)
	if !ok {
		t.Fatal("entry missing")
	}
	var buf bytes.Buffer
	if _, _, err := e.snapshot(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".snap"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := json.Marshal(e.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".meta.json"), spec, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{SnapshotDir: dir, Workers: 2})
	if err != nil {
		t.Fatalf("legacy restore boot: %v", err)
	}
	defer s2.Close()
	e2, ok := s2.reg.Get(name)
	if !ok {
		t.Fatal("legacy entry not restored")
	}
	if e2.trainPts.Load() != e.trainPts.Load() {
		t.Fatalf("legacy restore has %d training points, want %d", e2.trainPts.Load(), e.trainPts.Load())
	}
}
