// Package band computes simultaneous confidence bands for Gaussian process
// posteriors (paper §4.2, following Adler's random-field tools [3]).
//
// A pointwise band f̂(x) ± z·σ(x) with z = Φ⁻¹(1−α/2) holds at each x
// individually, but the paper needs the *simultaneous* statement
//
//	Pr[ f̂(x) − z_α σ(x) ≤ f̃(x) ≤ f̂(x) + z_α σ(x) for all x ∈ X ] ≥ 1 − α.
//
// Writing Z(x) = (f̃(x) − f̂(x))/σ(x), the failure probability is
// Pr[sup_X |Z| ≥ z], which Adler's expected-Euler-characteristic heuristic
// approximates for a smooth unit-variance field on a d-dimensional box by
//
//	Pr[sup_X Z ≥ z] ≈ E[φ(A_z)] = Σ_{j=0..d} L_j ρ_j(z)
//
// where ρ_0(z) = 1 − Φ(z), ρ_j(z) = (2π)^{-(j+1)/2} He_{j−1}(z) e^{−z²/2}
// (He = probabilists' Hermite polynomials), and the Lipschitz–Killing
// curvatures of a box with side lengths s_i under a stationary field with
// second spectral moment λ₂ are
//
//	L_j = λ₂^{j/2} · Σ_{|J|=j} Π_{i∈J} s_i.
//
// ZAlpha solves E[φ(A_z)] = α/2 per tail by bisection and never returns less
// than the pointwise quantile. For the GP posterior the standardized error
// field is not exactly stationary; λ₂ is taken from the prior kernel, the
// standard practice for this approximation, and coverage is validated
// empirically in the tests.
package band

import (
	"math"

	"olgapro/internal/dist"
	"olgapro/internal/kernel"
)

// hermite returns the probabilists' Hermite polynomial He_n(z) via the
// recurrence He_{n+1} = z·He_n − n·He_{n−1}.
func hermite(n int, z float64) float64 {
	if n < 0 {
		// He_{-1} is conventionally √(2π) e^{z²/2} (1−Φ(z)); only ρ_0 uses
		// it, and ρ_0 is special-cased, so this is unreachable.
		panic("band: hermite of negative order")
	}
	h0, h1 := 1.0, z
	if n == 0 {
		return h0
	}
	for i := 1; i < n; i++ {
		h0, h1 = h1, z*h1-float64(i)*h0
	}
	return h1
}

// ecDensity returns ρ_j(z) for j ≥ 1.
func ecDensity(j int, z float64) float64 {
	return math.Pow(2*math.Pi, -float64(j+1)/2) * hermite(j-1, z) * math.Exp(-z*z/2)
}

// curvatures returns L_0..L_d for a box with the given side lengths under
// second spectral moment lambda2: L_j = λ₂^{j/2} e_j(s), with e_j the
// elementary symmetric polynomial of the sides. The symmetric polynomials
// are built in place in the output buffer and scaled afterwards, so the
// whole computation is one allocation.
func curvatures(sides []float64, lambda2 float64) []float64 {
	d := len(sides)
	// Elementary symmetric polynomials via the product recurrence.
	out := make([]float64, d+1)
	out[0] = 1
	for _, s := range sides {
		for j := d; j >= 1; j-- {
			out[j] += out[j-1] * s
		}
	}
	sq := math.Sqrt(math.Max(0, lambda2))
	scale := 1.0
	for j := 1; j <= d; j++ {
		scale *= sq
		out[j] *= scale
	}
	return out
}

// upcrossWithCurvatures is UpcrossProb with precomputed Lipschitz–Killing
// curvatures l — the form ZAlpha's bisection loop calls, so the loop costs
// no allocations.
func upcrossWithCurvatures(l []float64, z float64) float64 {
	p := l[0] * (1 - dist.Normal{Mu: 0, Sigma: 1}.CDF(z))
	for j := 1; j < len(l); j++ {
		p += l[j] * ecDensity(j, z)
	}
	return p
}

// UpcrossProb returns the expected-Euler-characteristic approximation to
// Pr[sup_X Z(x) ≥ z] for a unit-variance field on a box with the given side
// lengths and second spectral moment lambda2.
func UpcrossProb(z float64, sides []float64, lambda2 float64) float64 {
	return upcrossWithCurvatures(curvatures(sides, lambda2), z)
}

// ZAlpha returns the half-width multiplier z_α such that the band
// f̂ ± z_α σ contains the whole function with probability ≈ 1−α on the box
// with the given side lengths. It is always at least the pointwise
// two-sided quantile Φ⁻¹(1−α/2).
func ZAlpha(alpha float64, sides []float64, lambda2 float64) float64 {
	if alpha <= 0 {
		return math.Inf(1)
	}
	if alpha >= 1 {
		return 0
	}
	pointwise := dist.StdNormalQuantile(1 - alpha/2)
	// Two-sided: each tail gets α/2. The curvatures depend only on the box,
	// not on z, so they are computed once outside the bisection.
	target := alpha / 2
	l := curvatures(sides, lambda2)
	f := func(z float64) float64 { return upcrossWithCurvatures(l, z) - target }
	lo, hi := pointwise, pointwise+1
	if f(lo) <= 0 {
		return pointwise
	}
	for f(hi) > 0 && hi < 60 {
		hi += 2
	}
	for i := 0; i < 200 && hi-lo > 1e-10; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ZAlphaForKernel is the convenience used by OLGAPRO: it reads the second
// spectral moment from the kernel and the box sides from the sample
// bounding box.
func ZAlphaForKernel(alpha float64, k kernel.Kernel, lo, hi []float64) float64 {
	sides := make([]float64, len(lo))
	for i := range sides {
		sides[i] = hi[i] - lo[i]
		if sides[i] < 0 {
			sides[i] = 0
		}
	}
	return ZAlpha(alpha, sides, k.SecondSpectralMoment())
}
