package band

import (
	"math"
	"math/rand"
	"testing"

	"olgapro/internal/dist"
	"olgapro/internal/gp"
	"olgapro/internal/kernel"
)

func TestHermite(t *testing.T) {
	cases := []struct {
		n    int
		z    float64
		want float64
	}{
		{0, 1.7, 1},
		{1, 1.7, 1.7},
		{2, 2, 3},  // z²−1
		{3, 2, 2},  // z³−3z
		{4, 1, -2}, // z⁴−6z²+3
	}
	for _, c := range cases {
		if got := hermite(c.n, c.z); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("He_%d(%g) = %g, want %g", c.n, c.z, got, c.want)
		}
	}
}

func TestCurvatures(t *testing.T) {
	// Box 2×3 with λ₂ = 4: L0=1, L1=2·(2+3)=... e1=5 scaled by √4=2 → 10,
	// L2 = e2·λ₂ = 6·4 = 24.
	l := curvatures([]float64{2, 3}, 4)
	want := []float64{1, 10, 24}
	for i := range want {
		if math.Abs(l[i]-want[i]) > 1e-12 {
			t.Fatalf("L = %v, want %v", l, want)
		}
	}
}

func TestUpcrossProbDecreasesInZ(t *testing.T) {
	sides := []float64{5, 5}
	prev := math.Inf(1)
	for _, z := range []float64{1, 2, 3, 4, 5} {
		p := UpcrossProb(z, sides, 1)
		if p > prev {
			t.Fatalf("UpcrossProb not decreasing at z=%g: %g > %g", z, p, prev)
		}
		prev = p
	}
}

func TestZAlphaBasics(t *testing.T) {
	sides := []float64{10}
	z10 := ZAlpha(0.10, sides, 1)
	z05 := ZAlpha(0.05, sides, 1)
	z01 := ZAlpha(0.01, sides, 1)
	if !(z10 < z05 && z05 < z01) {
		t.Fatalf("z not increasing as α decreases: %g %g %g", z10, z05, z01)
	}
	// Always at least the pointwise quantile.
	pw := dist.StdNormalQuantile(1 - 0.05/2)
	if z05 < pw {
		t.Fatalf("z05 = %g < pointwise %g", z05, pw)
	}
	// Larger domains demand wider bands.
	zBig := ZAlpha(0.05, []float64{100}, 1)
	if zBig <= z05 {
		t.Fatalf("larger domain should widen band: %g ≤ %g", zBig, z05)
	}
	// Rougher fields (larger λ₂) demand wider bands.
	zRough := ZAlpha(0.05, sides, 25)
	if zRough <= z05 {
		t.Fatalf("rougher field should widen band: %g ≤ %g", zRough, z05)
	}
}

func TestZAlphaDegenerateDomain(t *testing.T) {
	// A zero-volume domain reduces to the pointwise quantile.
	got := ZAlpha(0.05, []float64{0, 0}, 1)
	want := dist.StdNormalQuantile(1 - 0.025)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("point-domain z = %g, want pointwise %g", got, want)
	}
}

func TestZAlphaEdgeAlphas(t *testing.T) {
	if !math.IsInf(ZAlpha(0, []float64{1}, 1), 1) {
		t.Error("α=0 should give +Inf")
	}
	if got := ZAlpha(1, []float64{1}, 1); got != 0 {
		t.Errorf("α=1 should give 0, got %g", got)
	}
}

func TestZAlphaForKernel(t *testing.T) {
	k := kernel.NewSqExp(1, 0.5) // λ₂ = 4
	got := ZAlphaForKernel(0.05, k, []float64{0, 0}, []float64{2, 3})
	want := ZAlpha(0.05, []float64{2, 3}, 4)
	if got != want {
		t.Fatalf("ZAlphaForKernel = %g, want %g", got, want)
	}
	// Inverted bounds clamp to zero-length sides rather than negative.
	inv := ZAlphaForKernel(0.05, k, []float64{2}, []float64{1})
	if inv != ZAlpha(0.05, []float64{0}, 4) {
		t.Fatalf("inverted bounds not clamped: %g", inv)
	}
}

// Empirical validation of the whole pipeline: sample posterior functions
// from a GP and verify that the simultaneous band f̂ ± z_α σ contains the
// entire sampled function at least ≈ (1−α) of the time.
func TestSimultaneousCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	k := kernel.NewSqExp(1, 1)
	g := gp.New(k, 1e-8)
	for _, x := range []float64{0, 2.5, 5, 7.5, 10} {
		if err := g.Add([]float64{x}, math.Sin(x)); err != nil {
			t.Fatal(err)
		}
	}
	// Dense grid across the domain.
	const gridN = 60
	grid := make([][]float64, gridN)
	for i := range grid {
		grid[i] = []float64{10 * float64(i) / (gridN - 1)}
	}
	means, vars := g.PredictBatch(grid, nil, nil)
	const alpha = 0.10
	z := ZAlphaForKernel(alpha, k, []float64{0}, []float64{10})
	const trials = 500
	violations := 0
	for trial := 0; trial < trials; trial++ {
		s, err := g.SamplePosterior(rng, grid, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range grid {
			sd := math.Sqrt(vars[i])
			if math.Abs(s[i]-means[i]) > z*sd+1e-9 {
				violations++
				break
			}
		}
	}
	rate := float64(violations) / trials
	if rate > alpha+0.05 {
		t.Fatalf("simultaneous violation rate %.3f exceeds α=%.2f", rate, alpha)
	}
	// The band must not be absurdly conservative either: the pointwise band
	// would be violated far more often, so z must stay moderate.
	if z > 5 {
		t.Fatalf("z_α = %g unreasonably wide", z)
	}
}

// The pointwise band must be insufficient for simultaneous coverage on a
// long domain — the reason the paper needs the EC machinery.
func TestPointwiseBandIsInsufficient(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	k := kernel.NewSqExp(1, 0.4)
	g := gp.New(k, 1e-8)
	for _, x := range []float64{0, 5, 10} {
		if err := g.Add([]float64{x}, 0); err != nil {
			t.Fatal(err)
		}
	}
	const gridN = 80
	grid := make([][]float64, gridN)
	for i := range grid {
		grid[i] = []float64{10 * float64(i) / (gridN - 1)}
	}
	means, vars := g.PredictBatch(grid, nil, nil)
	const alpha = 0.10
	pw := dist.StdNormalQuantile(1 - alpha/2)
	const trials = 300
	violations := 0
	for trial := 0; trial < trials; trial++ {
		s, err := g.SamplePosterior(rng, grid, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range grid {
			if math.Abs(s[i]-means[i]) > pw*math.Sqrt(vars[i])+1e-9 {
				violations++
				break
			}
		}
	}
	rate := float64(violations) / trials
	if rate <= alpha {
		t.Fatalf("pointwise band unexpectedly sufficient: rate %.3f ≤ α", rate)
	}
}

func BenchmarkZAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ZAlpha(0.05, []float64{10, 10}, 4)
	}
}
