// Package udf defines the black-box user-defined-function abstraction the
// whole system is built around (paper §1), plus the instrumentation wrappers
// and the synthetic Gaussian-mixture function generator used throughout the
// paper's evaluation (§6.1-A, Fig. 4).
//
// A UDF is a scalar function of a d-dimensional input; the system never
// inspects its body, only calls Eval. Counter wraps a Func to count
// evaluations and charge their nominal cost to a virtual clock, and Slow
// wraps a Func to burn real CPU time, for end-to-end demos that do not use
// the virtual clock.
package udf

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"olgapro/internal/vclock"
)

// Func is a black-box scalar UDF on ℝᵈ.
type Func interface {
	// Dim returns the number of inputs d.
	Dim() int
	// Eval evaluates the function at x, which must have length Dim().
	Eval(x []float64) float64
}

// FuncOf adapts a plain Go function into a Func.
type FuncOf struct {
	D int
	F func(x []float64) float64
}

// Dim returns the declared dimensionality.
func (f FuncOf) Dim() int { return f.D }

// Eval calls the wrapped function.
func (f FuncOf) Eval(x []float64) float64 { return f.F(x) }

// Counter wraps a Func, counting calls and (optionally) charging each call's
// nominal evaluation time to a virtual clock. It is the instrument behind
// every experiment that varies the UDF evaluation time T.
type Counter struct {
	F     Func
	Cost  time.Duration // nominal evaluation time per call (may be 0)
	Clock *vclock.Clock // nil disables charging
	n     int64
}

// NewCounter wraps f, charging cost per call to clock (either may be zero).
func NewCounter(f Func, cost time.Duration, clock *vclock.Clock) *Counter {
	return &Counter{F: f, Cost: cost, Clock: clock}
}

// Dim returns the wrapped function's dimensionality.
func (c *Counter) Dim() int { return c.F.Dim() }

// Eval evaluates the wrapped function, counting and charging the call.
func (c *Counter) Eval(x []float64) float64 {
	atomic.AddInt64(&c.n, 1)
	if c.Clock != nil {
		c.Clock.Charge(1, c.Cost)
	}
	return c.F.Eval(x)
}

// Calls returns the number of evaluations so far.
func (c *Counter) Calls() int { return int(atomic.LoadInt64(&c.n)) }

// ResetCalls zeroes the evaluation counter.
func (c *Counter) ResetCalls() { atomic.StoreInt64(&c.n, 0) }

// Slow wraps a Func and busy-waits for Delay on every call, emulating an
// expensive UDF with real wall-clock cost (used by examples; the benchmark
// harness prefers Counter + vclock).
type Slow struct {
	F     Func
	Delay time.Duration
}

// Dim returns the wrapped function's dimensionality.
func (s Slow) Dim() int { return s.F.Dim() }

// Eval evaluates the wrapped function after burning Delay of CPU time.
func (s Slow) Eval(x []float64) float64 {
	deadline := time.Now().Add(s.Delay)
	for time.Now().Before(deadline) {
		// Busy-wait: sleeping would understate CPU cost for sub-ms delays.
	}
	return s.F.Eval(x)
}

// Mixture is a Gaussian-mixture test function
//
//	f(x) = Σ_i w_i exp(−‖x − c_i‖² / (2 s_i²))
//
// the controllable-shape function family of §6.1-A: the number of
// components dictates the number of peaks, and the component spread s_i
// dictates bumpiness/spikiness. (This models the *function*, not any input
// or output distribution.)
type Mixture struct {
	dim     int
	weights []float64
	centers [][]float64
	spreads []float64
}

// MixtureConfig describes a random mixture function.
type MixtureConfig struct {
	Dim        int     // input dimensionality d
	Components int     // number of Gaussian bumps
	Lo, Hi     float64 // domain [Lo,Hi]^d the centers are drawn from
	Spread     float64 // component spread s (same for all components)
	MinWeight  float64 // component weights drawn from [MinWeight, 1]
	Seed       int64
}

// NewMixture draws a random mixture function per the config.
func NewMixture(cfg MixtureConfig) (*Mixture, error) {
	if cfg.Dim <= 0 || cfg.Components <= 0 {
		return nil, fmt.Errorf("udf: mixture needs positive dim/components, got %d/%d", cfg.Dim, cfg.Components)
	}
	if cfg.Spread <= 0 {
		return nil, fmt.Errorf("udf: mixture needs positive spread, got %g", cfg.Spread)
	}
	if cfg.Hi <= cfg.Lo {
		return nil, fmt.Errorf("udf: mixture domain [%g,%g] empty", cfg.Lo, cfg.Hi)
	}
	if cfg.MinWeight <= 0 || cfg.MinWeight > 1 {
		cfg.MinWeight = 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Mixture{dim: cfg.Dim}
	for i := 0; i < cfg.Components; i++ {
		c := make([]float64, cfg.Dim)
		for j := range c {
			// Keep centers away from the very edge so peaks are in-domain.
			margin := 0.1 * (cfg.Hi - cfg.Lo)
			c[j] = cfg.Lo + margin + rng.Float64()*(cfg.Hi-cfg.Lo-2*margin)
		}
		m.centers = append(m.centers, c)
		m.weights = append(m.weights, cfg.MinWeight+rng.Float64()*(1-cfg.MinWeight))
		m.spreads = append(m.spreads, cfg.Spread)
	}
	return m, nil
}

// Dim returns the input dimensionality.
func (m *Mixture) Dim() int { return m.dim }

// Eval returns the mixture value at x.
func (m *Mixture) Eval(x []float64) float64 {
	var s float64
	for i, c := range m.centers {
		var d2 float64
		for j, v := range x {
			dd := v - c[j]
			d2 += dd * dd
		}
		sp := m.spreads[i]
		s += m.weights[i] * math.Exp(-d2/(2*sp*sp))
	}
	return s
}

// Components returns the number of mixture components.
func (m *Mixture) Components() int { return len(m.centers) }

// StandardDomain is the default function domain [L,U] = [0,10] (§6.1).
const (
	DomainLo = 0.0
	DomainHi = 10.0
)

// Family identifies the four standard 2-D evaluation functions of Fig. 4:
// the combinations of {one, five} components × {large, small} spread.
type Family int

// The four standard functions, ordered as in the paper:
// F1 is flat with one peak; F4 is the bumpiest and spikiest.
const (
	F1 Family = iota + 1 // 1 component, large spread (flat)
	F2                   // 1 component, small spread (single spike)
	F3                   // 5 components, large spread (bumpy)
	F4                   // 5 components, small spread (bumpy and spiky)
)

// String names the family member.
func (f Family) String() string {
	switch f {
	case F1:
		return "Funct1"
	case F2:
		return "Funct2"
	case F3:
		return "Funct3"
	case F4:
		return "Funct4"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// largeSpread and smallSpread control the bumpiness of the standard family
// relative to the [0,10] domain.
const (
	largeSpread = 2.5
	smallSpread = 0.7
)

// Standard returns one of the paper's four standard 2-D functions,
// deterministically derived from the seed.
func Standard(f Family, seed int64) *Mixture {
	cfg := MixtureConfig{Dim: 2, Lo: DomainLo, Hi: DomainHi, Seed: seed + int64(f)*1000}
	switch f {
	case F1:
		cfg.Components, cfg.Spread = 1, largeSpread
	case F2:
		cfg.Components, cfg.Spread = 1, smallSpread
	case F3:
		cfg.Components, cfg.Spread = 5, largeSpread
	case F4:
		cfg.Components, cfg.Spread = 5, smallSpread
	default:
		panic(fmt.Sprintf("udf: unknown family %d", int(f)))
	}
	m, err := NewMixture(cfg)
	if err != nil {
		panic(err) // unreachable: config is well-formed by construction
	}
	return m
}

// StandardSuite returns F1..F4 in order.
func StandardSuite(seed int64) []*Mixture {
	return []*Mixture{
		Standard(F1, seed), Standard(F2, seed), Standard(F3, seed), Standard(F4, seed),
	}
}

// DimMixture returns a d-dimensional analogue of the standard family used by
// the dimensionality sweep (Expt 7): five components with the small spread.
func DimMixture(d int, seed int64) *Mixture {
	m, err := NewMixture(MixtureConfig{
		Dim: d, Components: 5, Lo: DomainLo, Hi: DomainHi,
		Spread: smallSpread * math.Sqrt(float64(d)/2), Seed: seed,
	})
	if err != nil {
		panic(err) // unreachable
	}
	return m
}

// RangeOnGrid estimates the min and max of f over [lo,hi]^d by evaluating a
// regular grid with per-dimension resolution steps (clamped for high d so
// the total stays bounded). The output range calibrates λ and Γ, which the
// paper sets as percentages of the function range.
func RangeOnGrid(f Func, lo, hi float64, steps int) (min, max float64) {
	d := f.Dim()
	// Bound total evaluations at ~20k.
	for steps > 2 && pow(steps, d) > 20000 {
		steps--
	}
	if steps < 2 {
		steps = 2
	}
	x := make([]float64, d)
	idx := make([]int, d)
	min, max = math.Inf(1), math.Inf(-1)
	for {
		for j := 0; j < d; j++ {
			x[j] = lo + (hi-lo)*float64(idx[j])/float64(steps-1)
		}
		v := f.Eval(x)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		// Odometer increment.
		j := 0
		for ; j < d; j++ {
			idx[j]++
			if idx[j] < steps {
				break
			}
			idx[j] = 0
		}
		if j == d {
			return min, max
		}
	}
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
		if out > 1<<30 {
			return out
		}
	}
	return out
}
