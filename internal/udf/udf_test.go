package udf

import (
	"math"
	"testing"
	"time"

	"olgapro/internal/vclock"
)

func TestFuncOf(t *testing.T) {
	f := FuncOf{D: 2, F: func(x []float64) float64 { return x[0] + x[1] }}
	if f.Dim() != 2 {
		t.Fatalf("Dim = %d", f.Dim())
	}
	if got := f.Eval([]float64{1, 2}); got != 3 {
		t.Fatalf("Eval = %g", got)
	}
}

func TestCounterCountsAndCharges(t *testing.T) {
	var clk vclock.Clock
	f := FuncOf{D: 1, F: func(x []float64) float64 { return x[0] }}
	c := NewCounter(f, time.Millisecond, &clk)
	for i := 0; i < 10; i++ {
		c.Eval([]float64{float64(i)})
	}
	if c.Calls() != 10 {
		t.Fatalf("Calls = %d", c.Calls())
	}
	if got := clk.Charged(); got != 10*time.Millisecond {
		t.Fatalf("Charged = %v", got)
	}
	c.ResetCalls()
	if c.Calls() != 0 {
		t.Fatalf("ResetCalls failed")
	}
	if c.Dim() != 1 {
		t.Fatalf("Dim = %d", c.Dim())
	}
}

func TestCounterWithoutClock(t *testing.T) {
	f := FuncOf{D: 1, F: func(x []float64) float64 { return 2 * x[0] }}
	c := NewCounter(f, time.Second, nil)
	if got := c.Eval([]float64{3}); got != 6 {
		t.Fatalf("Eval = %g", got)
	}
	if c.Calls() != 1 {
		t.Fatalf("Calls = %d", c.Calls())
	}
}

func TestSlowBurnsTime(t *testing.T) {
	f := FuncOf{D: 1, F: func(x []float64) float64 { return x[0] }}
	s := Slow{F: f, Delay: 3 * time.Millisecond}
	start := time.Now()
	if got := s.Eval([]float64{7}); got != 7 {
		t.Fatalf("Eval = %g", got)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("Slow returned in %v", elapsed)
	}
	if s.Dim() != 1 {
		t.Fatalf("Dim = %d", s.Dim())
	}
}

func TestNewMixtureValidation(t *testing.T) {
	bad := []MixtureConfig{
		{Dim: 0, Components: 1, Lo: 0, Hi: 1, Spread: 1},
		{Dim: 1, Components: 0, Lo: 0, Hi: 1, Spread: 1},
		{Dim: 1, Components: 1, Lo: 0, Hi: 1, Spread: 0},
		{Dim: 1, Components: 1, Lo: 1, Hi: 1, Spread: 1},
	}
	for i, cfg := range bad {
		if _, err := NewMixture(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestMixtureShape(t *testing.T) {
	m, err := NewMixture(MixtureConfig{
		Dim: 2, Components: 3, Lo: 0, Hi: 10, Spread: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 2 || m.Components() != 3 {
		t.Fatalf("Dim/Components = %d/%d", m.Dim(), m.Components())
	}
	// Values near a center are larger than values far from all centers.
	center := m.centers[0]
	far := []float64{center[0] + 50, center[1] + 50}
	if m.Eval(center) <= m.Eval(far) {
		t.Fatalf("no peak at center: %g vs %g", m.Eval(center), m.Eval(far))
	}
	if m.Eval(far) > 1e-6 {
		t.Fatalf("far value %g should be ≈ 0", m.Eval(far))
	}
	// Non-negative everywhere.
	if m.Eval([]float64{-100, 100}) < 0 {
		t.Fatal("mixture went negative")
	}
}

func TestMixtureDeterministicInSeed(t *testing.T) {
	cfg := MixtureConfig{Dim: 2, Components: 5, Lo: 0, Hi: 10, Spread: 0.7, Seed: 42}
	m1, _ := NewMixture(cfg)
	m2, _ := NewMixture(cfg)
	x := []float64{3.3, 4.4}
	if m1.Eval(x) != m2.Eval(x) {
		t.Fatal("same seed gave different functions")
	}
	cfg.Seed = 43
	m3, _ := NewMixture(cfg)
	if m1.Eval(x) == m3.Eval(x) {
		t.Fatal("different seeds gave identical functions")
	}
}

func TestStandardFamily(t *testing.T) {
	suite := StandardSuite(7)
	if len(suite) != 4 {
		t.Fatalf("suite size %d", len(suite))
	}
	if suite[0].Components() != 1 || suite[1].Components() != 1 ||
		suite[2].Components() != 5 || suite[3].Components() != 5 {
		t.Fatalf("component counts wrong")
	}
	// F4 (small spread) must vary faster than F1 (large spread): compare
	// mean absolute gradient proxies over a grid.
	rough := func(m *Mixture) float64 {
		var total float64
		const n = 50
		for i := 0; i < n; i++ {
			x := DomainLo + (DomainHi-DomainLo)*float64(i)/(n-1)
			for j := 0; j < n; j++ {
				y := DomainLo + (DomainHi-DomainLo)*float64(j)/(n-1)
				v1 := m.Eval([]float64{x, y})
				v2 := m.Eval([]float64{x + 0.05, y})
				total += math.Abs(v2 - v1)
			}
		}
		return total
	}
	if rough(suite[3]) <= rough(suite[0]) {
		t.Fatalf("F4 not rougher than F1: %g vs %g", rough(suite[3]), rough(suite[0]))
	}
}

func TestFamilyString(t *testing.T) {
	if F1.String() != "Funct1" || F4.String() != "Funct4" {
		t.Fatalf("names: %s %s", F1, F4)
	}
	if Family(9).String() == "" {
		t.Fatal("unknown family should still render")
	}
}

func TestStandardPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Standard(Family(0), 1)
}

func TestDimMixture(t *testing.T) {
	for _, d := range []int{1, 3, 10} {
		m := DimMixture(d, 5)
		if m.Dim() != d {
			t.Fatalf("DimMixture(%d).Dim() = %d", d, m.Dim())
		}
		x := make([]float64, d)
		for i := range x {
			x[i] = 5
		}
		if v := m.Eval(x); math.IsNaN(v) || v < 0 {
			t.Fatalf("DimMixture(%d) value %g", d, v)
		}
	}
}

func TestRangeOnGrid(t *testing.T) {
	// Known function: f(x,y) = x + y on [0,10]² ranges over [0,20].
	f := FuncOf{D: 2, F: func(x []float64) float64 { return x[0] + x[1] }}
	min, max := RangeOnGrid(f, 0, 10, 21)
	if min != 0 || max != 20 {
		t.Fatalf("RangeOnGrid = [%g,%g], want [0,20]", min, max)
	}
	// High dimension gets its grid clamped but still works.
	g := FuncOf{D: 6, F: func(x []float64) float64 { return x[0] }}
	min, max = RangeOnGrid(g, 0, 1, 50)
	if min != 0 || max != 1 {
		t.Fatalf("clamped RangeOnGrid = [%g,%g]", min, max)
	}
}

func BenchmarkMixtureEvalF4(b *testing.B) {
	m := Standard(F4, 1)
	x := []float64{5, 5}
	for i := 0; i < b.N; i++ {
		m.Eval(x)
	}
}
