package astro

import "math"

// adaptiveSimpson integrates f over [a, b] with the classic recursive
// Simpson rule and Richardson error control. The astrophysics UDFs are
// "slow-running due to complex numerical computation" (paper §6.4) exactly
// because of quadratures like this one.
func adaptiveSimpson(f func(float64) float64, a, b, tol float64) float64 {
	if a == b {
		return 0
	}
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := simpson(a, b, fa, fm, fb)
	return adaptAux(f, a, b, fa, fm, fb, whole, tol, 50)
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptAux(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptAux(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptAux(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}
