package astro

import (
	"math"
	"testing"
	"time"
)

func TestDefaultCosmologyValid(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.omegaK() != 0 {
		t.Fatalf("default should be flat, Ωk = %g", c.omegaK())
	}
}

func TestValidate(t *testing.T) {
	if err := (Cosmology{H0: -1}).Validate(); err == nil {
		t.Error("negative H0 should fail")
	}
	if err := (Cosmology{H0: 70, OmegaM: -0.1}).Validate(); err == nil {
		t.Error("negative Ωm should fail")
	}
}

func TestGalAgeKnownValues(t *testing.T) {
	c := Default()
	// Age of a flat 70/0.3/0.7 universe at z=0 is ≈ 13.47 Gyr.
	if got := c.GalAge(0); math.Abs(got-13.47) > 0.05 {
		t.Fatalf("GalAge(0) = %g Gyr, want ≈ 13.47", got)
	}
	// Analytic benchmark: for a flat ΛCDM universe,
	// t(z) = (2/(3 H0 √ΩΛ)) asinh(√(ΩΛ/Ωm) (1+z)^{-3/2}).
	analytic := func(z float64) float64 {
		h := HubbleTimeGyrPerH0 / c.H0
		return 2.0 / 3.0 * h / math.Sqrt(c.OmegaL) *
			math.Asinh(math.Sqrt(c.OmegaL/c.OmegaM)*math.Pow(1+z, -1.5))
	}
	for _, z := range []float64{0, 0.1, 0.5, 1, 2, 5} {
		got, want := c.GalAge(z), analytic(z)
		if math.Abs(got-want) > 1e-3*want {
			t.Errorf("GalAge(%g) = %g, analytic %g", z, got, want)
		}
	}
}

func TestGalAgeMonotoneDecreasing(t *testing.T) {
	c := Default()
	prev := math.Inf(1)
	for _, z := range []float64{0, 0.2, 0.5, 1, 2, 4, 8} {
		age := c.GalAge(z)
		if age >= prev {
			t.Fatalf("GalAge not decreasing at z=%g: %g ≥ %g", z, age, prev)
		}
		if age <= 0 {
			t.Fatalf("GalAge(%g) = %g not positive", z, age)
		}
		prev = age
	}
	// Negative redshift clamps to z=0.
	if c.GalAge(-1) != c.GalAge(0) {
		t.Error("negative z should clamp")
	}
}

func TestComovingDistance(t *testing.T) {
	c := Default()
	if c.ComovingDistance(0) != 0 {
		t.Fatal("D_C(0) ≠ 0")
	}
	// Low-z limit: D_C ≈ (c/H0)·z.
	z := 0.01
	want := c.HubbleDistance() * z
	if got := c.ComovingDistance(z); math.Abs(got-want) > 0.01*want {
		t.Fatalf("low-z D_C = %g, want ≈ %g", got, want)
	}
	// Known value: D_C(1) ≈ 3303 Mpc for 70/0.3/0.7.
	if got := c.ComovingDistance(1); math.Abs(got-3303) > 10 {
		t.Fatalf("D_C(1) = %g, want ≈ 3303", got)
	}
	// Monotone increasing.
	if c.ComovingDistance(2) <= c.ComovingDistance(1) {
		t.Fatal("D_C not increasing")
	}
}

func TestTransverseComovingDistanceCurvature(t *testing.T) {
	flat := Default()
	if flat.TransverseComovingDistance(1) != flat.ComovingDistance(1) {
		t.Fatal("flat D_M should equal D_C")
	}
	open := Cosmology{H0: 70, OmegaM: 0.3, OmegaL: 0.5} // Ωk = 0.2
	if open.TransverseComovingDistance(1) <= open.ComovingDistance(1) {
		t.Fatal("open universe should have D_M > D_C")
	}
	closed := Cosmology{H0: 70, OmegaM: 0.5, OmegaL: 0.6} // Ωk = −0.1
	if closed.TransverseComovingDistance(1) >= closed.ComovingDistance(1) {
		t.Fatal("closed universe should have D_M < D_C")
	}
}

func TestComovingVolume(t *testing.T) {
	c := Default()
	// Symmetric in redshift order and zero for equal redshifts.
	v12 := c.ComovingVolume(0.1, 0.3, 100)
	v21 := c.ComovingVolume(0.3, 0.1, 100)
	if v12 != v21 {
		t.Fatalf("not symmetric: %g vs %g", v12, v21)
	}
	if c.ComovingVolume(0.2, 0.2, 100) != 0 {
		t.Fatal("equal redshifts should give 0 volume")
	}
	// Additive over contiguous shells.
	a := c.ComovingVolume(0.1, 0.2, 50)
	b := c.ComovingVolume(0.2, 0.3, 50)
	ab := c.ComovingVolume(0.1, 0.3, 50)
	if math.Abs(a+b-ab) > 1e-6*ab {
		t.Fatalf("not additive: %g + %g ≠ %g", a, b, ab)
	}
	// Scales linearly with area: 200 deg² is 4× the 50 deg² shell.
	if math.Abs(c.ComovingVolume(0.1, 0.3, 200)-4*ab) > 1e-6*ab {
		t.Fatal("not linear in area")
	}
	// Full sky between z=0 and z=1 should be (4π/3)D_C(1)³.
	full := c.ComovingVolume(0, 1, 360*360/math.Pi)
	d := c.ComovingDistance(1)
	want := 4 * math.Pi / 3 * d * d * d
	if math.Abs(full-want) > 1e-6*want {
		t.Fatalf("full-sky volume %g, want %g", full, want)
	}
}

func TestAngDistIdentities(t *testing.T) {
	if got := AngDist(10, 20, 10, 20); got != 0 {
		t.Fatalf("self distance = %g", got)
	}
	// Pole to pole.
	if got := AngDist(0, 90, 0, -90); math.Abs(got-180) > 1e-9 {
		t.Fatalf("pole-to-pole = %g", got)
	}
	// Along the equator, separation equals ΔRA.
	if got := AngDist(10, 0, 35, 0); math.Abs(got-25) > 1e-9 {
		t.Fatalf("equator separation = %g, want 25", got)
	}
	// Symmetric up to rounding.
	if math.Abs(AngDist(1, 2, 3, 4)-AngDist(3, 4, 1, 2)) > 1e-12 {
		t.Fatal("not symmetric")
	}
	// Small-angle stability: tiny separations do not collapse to zero.
	tiny := AngDist(10, 20, 10, 20+1e-7)
	if tiny <= 0 || math.Abs(tiny-1e-7) > 1e-12 {
		t.Fatalf("small-angle distance = %g", tiny)
	}
	// Triangle inequality on a few hand-set points.
	ab := AngDist(0, 0, 30, 20)
	bc := AngDist(30, 20, 50, -10)
	ac := AngDist(0, 0, 50, -10)
	if ac > ab+bc+1e-9 {
		t.Fatal("triangle inequality violated")
	}
}

func TestUDFAdapters(t *testing.T) {
	c := Default()
	ga := GalAgeFunc(c)
	if ga.Dim() != 1 {
		t.Fatalf("GalAgeFunc dim = %d", ga.Dim())
	}
	if got, want := ga.Eval([]float64{0.5}), c.GalAge(0.5); got != want {
		t.Fatalf("GalAgeFunc = %g, want %g", got, want)
	}
	cv := ComoveVolFunc(c, 100)
	if cv.Dim() != 2 {
		t.Fatalf("ComoveVolFunc dim = %d", cv.Dim())
	}
	if got, want := cv.Eval([]float64{0.1, 0.3}), c.ComovingVolume(0.1, 0.3, 100); got != want {
		t.Fatalf("ComoveVolFunc = %g, want %g", got, want)
	}
	ad := AngDistFunc(180, 30)
	if ad.Dim() != 2 {
		t.Fatalf("AngDistFunc dim = %d", ad.Dim())
	}
	if got, want := ad.Eval([]float64{181, 31}), AngDist(180, 30, 181, 31); got != want {
		t.Fatalf("AngDistFunc = %g, want %g", got, want)
	}
	ad4 := AngDistFunc4()
	if ad4.Dim() != 4 {
		t.Fatalf("AngDistFunc4 dim = %d", ad4.Dim())
	}
	if got := ad4.Eval([]float64{0, 0, 0, 90}); math.Abs(got-90) > 1e-9 {
		t.Fatalf("AngDistFunc4 = %g", got)
	}
}

// The paper's eval-time ordering (§6.4 table): AngDist ≪ GalAge < ComoveVol.
func TestRelativeEvaluationCost(t *testing.T) {
	c := Default()
	timeIt := func(f func()) time.Duration {
		start := time.Now()
		for i := 0; i < 200; i++ {
			f()
		}
		return time.Since(start)
	}
	tAng := timeIt(func() { AngDist(180, 30, 181, 31) })
	tAge := timeIt(func() { c.GalAge(0.4) })
	tVol := timeIt(func() { c.ComovingVolume(0.2, 0.5, 100) })
	if tAng >= tAge {
		t.Errorf("AngDist (%v) should be much cheaper than GalAge (%v)", tAng, tAge)
	}
	if tAge >= tVol {
		t.Errorf("GalAge (%v) should be cheaper than ComoveVol (%v)", tAge, tVol)
	}
}

func TestAdaptiveSimpson(t *testing.T) {
	// ∫₀^π sin = 2.
	got := adaptiveSimpson(math.Sin, 0, math.Pi, 1e-10)
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("∫sin = %g", got)
	}
	// ∫₀¹ x² = 1/3.
	got = adaptiveSimpson(func(x float64) float64 { return x * x }, 0, 1, 1e-12)
	if math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("∫x² = %g", got)
	}
	// Zero-width interval.
	if adaptiveSimpson(math.Exp, 2, 2, 1e-9) != 0 {
		t.Fatal("zero-width integral should be 0")
	}
	// Sharp peak requires adaptivity.
	peak := func(x float64) float64 { return math.Exp(-x * x * 10000) }
	got = adaptiveSimpson(peak, -1, 1, 1e-12)
	want := math.Sqrt(math.Pi / 10000)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("peaked integral = %g, want %g", got, want)
	}
}

func BenchmarkGalAge(b *testing.B) {
	c := Default()
	for i := 0; i < b.N; i++ {
		c.GalAge(0.4)
	}
}

func BenchmarkComoveVol(b *testing.B) {
	c := Default()
	for i := 0; i < b.N; i++ {
		c.ComovingVolume(0.2, 0.5, 100)
	}
}

func BenchmarkAngDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		AngDist(180, 30, 181, 31)
	}
}
