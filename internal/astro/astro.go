// Package astro implements the astrophysics UDFs of the paper's case study
// (§6.4): GalAge, ComoveVol, and AngDist, modeled on the IDL Astronomy
// Library routines (galage, comdis/comovingvolume, gcirc) that the paper
// treats as black boxes. They are real ΛCDM-cosmology computations whose
// cost is dominated by adaptive numerical quadrature, reproducing the
// paper's regime of smooth, low-dimensional, slow UDFs.
package astro

import (
	"fmt"
	"math"

	"olgapro/internal/udf"
)

// Physical constants.
const (
	// SpeedOfLight in km/s.
	SpeedOfLight = 299792.458
	// HubbleTimeGyrPerH0 converts 1/H0 (with H0 in km/s/Mpc) into Gyr:
	// (Mpc in km) / (Gyr in s) = 977.79222 Gyr·km/s/Mpc.
	HubbleTimeGyrPerH0 = 977.79222168
)

// Cosmology is a Friedmann–Lemaître–Robertson–Walker cosmological model.
type Cosmology struct {
	H0     float64 // Hubble constant, km/s/Mpc
	OmegaM float64 // matter density parameter Ω_m
	OmegaL float64 // dark-energy density parameter Ω_Λ
	// quadrature tolerance; zero selects a default of 1e-9
	Tol float64
}

// Default returns the concordance cosmology (H0=70, Ωm=0.3, ΩΛ=0.7) used by
// the IDL Astronomy Library defaults.
func Default() Cosmology {
	return Cosmology{H0: 70, OmegaM: 0.3, OmegaL: 0.7}
}

func (c Cosmology) tol() float64 {
	if c.Tol > 0 {
		return c.Tol
	}
	return 1e-9
}

// omegaK returns the curvature density Ω_k = 1 − Ω_m − Ω_Λ.
func (c Cosmology) omegaK() float64 { return 1 - c.OmegaM - c.OmegaL }

// efunc returns E(z) = H(z)/H0.
func (c Cosmology) efunc(z float64) float64 {
	zp := 1 + z
	return math.Sqrt(c.OmegaM*zp*zp*zp + c.omegaK()*zp*zp + c.OmegaL)
}

// HubbleDistance returns D_H = c/H0 in Mpc.
func (c Cosmology) HubbleDistance() float64 { return SpeedOfLight / c.H0 }

// ComovingDistance returns the line-of-sight comoving distance to redshift
// z in Mpc: D_C = D_H ∫₀ᶻ dz′/E(z′).
func (c Cosmology) ComovingDistance(z float64) float64 {
	if z <= 0 {
		return 0
	}
	integral := adaptiveSimpson(func(zz float64) float64 {
		return 1 / c.efunc(zz)
	}, 0, z, c.tol())
	return c.HubbleDistance() * integral
}

// TransverseComovingDistance returns D_M, equal to D_C for a flat universe
// and involving sinh/sin corrections otherwise.
func (c Cosmology) TransverseComovingDistance(z float64) float64 {
	dc := c.ComovingDistance(z)
	ok := c.omegaK()
	if math.Abs(ok) < 1e-12 {
		return dc
	}
	dh := c.HubbleDistance()
	sq := math.Sqrt(math.Abs(ok))
	if ok > 0 {
		return dh / sq * math.Sinh(sq*dc/dh)
	}
	return dh / sq * math.Sin(sq*dc/dh)
}

// GalAge returns the age of the universe at redshift z in Gyr
// (IDL Astronomy Library galage with z_form = ∞):
//
//	t(z) = (1/H0) ∫₀^{a(z)} da / sqrt(Ω_m/a + Ω_k + Ω_Λ a²),  a(z) = 1/(1+z).
//
// The integrand behaves like √a near a = 0 (matter domination); the
// substitution a = u² removes the root singularity so the quadrature
// converges quickly:
//
//	t(z) = (2/H0) ∫₀^{√a} u² du / sqrt(Ω_m + Ω_k u² + Ω_Λ u⁶).
func (c Cosmology) GalAge(z float64) float64 {
	if z < 0 {
		z = 0
	}
	a := 1 / (1 + z)
	ok := c.omegaK()
	integral := adaptiveSimpson(func(u float64) float64 {
		u2 := u * u
		return 2 * u2 / math.Sqrt(c.OmegaM+ok*u2+c.OmegaL*u2*u2*u2)
	}, 0, math.Sqrt(a), c.tol())
	return HubbleTimeGyrPerH0 / c.H0 * integral
}

// ComovingVolume returns the comoving volume in Mpc³ between redshifts z1
// and z2 over a survey area given in square degrees, integrating the
// curvature-correct shell element
//
//	dV_C/dz = Ω · D_H · D_M(z)² / E(z)
//
// (for a flat universe this reduces to (Ω/3)(D_C(z₂)³ − D_C(z₁)³)). The
// transverse comoving distance D_M inside the integrand is itself a
// quadrature, so this is a nested integration — the reason ComoveVol is the
// most expensive of the paper's three case-study UDFs (§6.4 table). It is
// symmetric in its redshift arguments, matching query Q2 where either galaxy
// may be the nearer one.
func (c Cosmology) ComovingVolume(z1, z2, areaSqDeg float64) float64 {
	if z1 > z2 {
		z1, z2 = z2, z1
	}
	if z1 < 0 {
		z1 = 0
	}
	if z1 == z2 {
		return 0
	}
	sr := areaSqDeg * (math.Pi / 180) * (math.Pi / 180)
	dh := c.HubbleDistance()
	integrand := func(z float64) float64 {
		dm := c.TransverseComovingDistance(z)
		return dm * dm / c.efunc(z)
	}
	// Scale the absolute quadrature tolerance to ~1e-8 of a coarse estimate
	// so the tolerance is meaningful across the huge dynamic range of
	// volumes (Mpc³ values reach 10⁸ and beyond).
	rough := math.Abs(integrand((z1+z2)/2)) * (z2 - z1)
	tol := math.Max(1e-12, 1e-8*rough)
	return sr * dh * adaptiveSimpson(integrand, z1, z2, tol)
}

// AngDist returns the great-circle angular distance in degrees between two
// sky positions given in degrees (IDL gcirc), using the Vincenty formula
// for numerical stability at small and antipodal separations.
func AngDist(ra1, dec1, ra2, dec2 float64) float64 {
	const d2r = math.Pi / 180
	l1, l2 := dec1*d2r, dec2*d2r
	dl := (ra2 - ra1) * d2r
	sin1, cos1 := math.Sincos(l1)
	sin2, cos2 := math.Sincos(l2)
	sind, cosd := math.Sincos(dl)
	num := math.Hypot(cos2*sind, cos1*sin2-sin1*cos2*cosd)
	den := sin1*sin2 + cos1*cos2*cosd
	return math.Atan2(num, den) / d2r
}

// --- udf.Func adapters ---

// GalAgeFunc is the 1-D UDF GalAge(redshift) of query Q1.
func GalAgeFunc(c Cosmology) udf.Func {
	return udf.FuncOf{D: 1, F: func(x []float64) float64 {
		return c.GalAge(x[0])
	}}
}

// ComoveVolFunc is the 2-D UDF ComoveVol(z1, z2, AREA) of query Q2 with the
// survey area fixed, matching the paper's two-dimensional usage.
func ComoveVolFunc(c Cosmology, areaSqDeg float64) udf.Func {
	return udf.FuncOf{D: 2, F: func(x []float64) float64 {
		return c.ComovingVolume(x[0], x[1], areaSqDeg)
	}}
}

// AngDistFunc is the 2-D UDF computing the angular distance from a fixed
// reference position to an uncertain position (ra, dec), the form in which
// the paper's case study exercises a 2-D AngDist.
func AngDistFunc(refRA, refDec float64) udf.Func {
	return udf.FuncOf{D: 2, F: func(x []float64) float64 {
		return AngDist(refRA, refDec, x[0], x[1])
	}}
}

// AngDistFunc4 is the full 4-D variant Distance(G1.pos, G2.pos) where both
// positions are uncertain.
func AngDistFunc4() udf.Func {
	return udf.FuncOf{D: 4, F: func(x []float64) float64 {
		return AngDist(x[0], x[1], x[2], x[3])
	}}
}

// Validate reports whether the cosmology is physically sensible.
func (c Cosmology) Validate() error {
	if c.H0 <= 0 {
		return fmt.Errorf("astro: H0 = %g must be positive", c.H0)
	}
	if c.OmegaM < 0 || c.OmegaL < 0 {
		return fmt.Errorf("astro: negative density parameters Ωm=%g ΩΛ=%g", c.OmegaM, c.OmegaL)
	}
	return nil
}
