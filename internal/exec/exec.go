// Package exec is the parallel, pipelined query-execution layer: it runs
// the UDF-application stage of a query.Iterator pipeline across a pool of
// workers, each owning its own engine, with bounded channels for
// backpressure, context cancellation that propagates through Next, and an
// ordered merge that emits results in input order.
//
// # Determinism
//
// Three properties combine to make the output independent of the worker
// count and of goroutine scheduling — ParallelEval at 8 workers is
// bit-identical to serial execution (a 1-worker pool):
//
//  1. Per-tuple RNG seeding: every tuple is evaluated with its own
//     rand.Rand seeded by TupleSeed from (Options.Seed, tuple ordinal), so
//     Monte-Carlo sampling does not depend on which worker runs the tuple
//     or how many tuples it ran before.
//  2. Frozen engines: pool engines must not mutate shared or per-engine
//     model state during execution. core.(*Evaluator).CloneFrozen produces
//     such engines (NewEvaluatorPool uses it); MCEngine is stateless by
//     construction. Evaluation is then a pure function of (tuple, rng).
//  3. Ordered merge: results are re-sequenced to input order before they
//     leave Next, so downstream operators see the serial stream.
//
// This determinism is what makes the executor testable and CI-gateable:
// the race-detector suite asserts serial, 2-worker, and 8-worker runs agree
// bitwise on every output sample.
//
// # Error convention
//
// The package follows the query-layer convention: the first error in stream
// order wins, it is wrapped once with the failing tuple's ordinal, and it is
// sticky — after any error (or cancellation) Next returns the same error
// forever and the worker goroutines are torn down. Errors from the upstream
// input iterator propagate unmodified at the stream position where the
// input broke off.
package exec

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"

	"olgapro/internal/core"
	"olgapro/internal/mc"
	"olgapro/internal/query"
)

// TupleSeed derives the deterministic RNG seed for the tuple at stream
// ordinal seq from the pipeline's base seed. It is query.TupleSeed — the
// one seeding discipline shared with the serial planner — re-exported at
// its historical name for executor call sites.
func TupleSeed(base, seq int64) int64 { return query.TupleSeed(base, seq) }

// Pool is a set of per-worker engines sharing one trained model. Build one
// with NewEvaluatorPool (frozen clones of a warmed-up OLGAPRO evaluator) or
// NewPool (caller-supplied engines, e.g. stateless MC engines); then fan a
// pipeline stage out with Apply. A Pool is reusable across sequential Apply
// stages but the engines must not be shared by two concurrently running
// stages.
type Pool struct {
	engines []query.Engine
}

// NewPool builds a pool from one engine per worker. Engines must be safe to
// run concurrently with each other (they are never shared between workers)
// and must not mutate model state if deterministic output is required.
func NewPool(engines ...query.Engine) (*Pool, error) {
	if len(engines) == 0 {
		return nil, errors.New("exec: pool needs at least one engine")
	}
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("exec: engine %d is nil", i)
		}
	}
	return &Pool{engines: engines}, nil
}

// NewEvaluatorPool clones a warmed-up evaluator into workers frozen copies
// (see core.CloneFrozen), sharing its tuned hyperparameters and training
// set so the expensive GP fitting is paid once, not per worker. workers ≤ 0
// uses GOMAXPROCS. The evaluator needs at least two training points — run a
// warm-up Eval (or restore a snapshot) first.
func NewEvaluatorPool(ev *core.Evaluator, workers int) (*Pool, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	engines := make([]query.Engine, workers)
	for i := range engines {
		c, err := ev.CloneFrozen()
		if err != nil {
			return nil, fmt.Errorf("exec: worker %d: %w", i, err)
		}
		engines[i] = query.NewEvaluatorEngine(c)
	}
	return &Pool{engines: engines}, nil
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return len(p.engines) }

// Options tunes one parallel apply stage.
type Options struct {
	// Ctx cancels the stage: workers stop promptly and Next returns the
	// context's error. Nil means Background.
	Ctx context.Context
	// Seed is the base of the per-tuple RNG seeds (see TupleSeed). Two runs
	// with the same seed and input produce bit-identical output at any
	// worker count.
	Seed int64
	// Queue is the capacity of each bounded stage channel — the
	// backpressure knob. 0 uses 2× the worker count. At most
	// 2×Queue + workers tuples are in flight (queued, evaluating, or
	// buffered in the ordered merge) at any moment: the feeder holds a
	// token per unemitted tuple, so one slow tuple stalls the upstream
	// pull instead of letting the reorder buffer grow with the stream.
	Queue int
	// Ords, when non-empty, maps each tuple's local stream position to its
	// global ordinal in a larger relation: tuple j seeds from
	// TupleSeed(Seed, Ords[j]) instead of TupleSeed(Seed, j). A shard of a
	// scattered query uses this to evaluate its subset of the union relation
	// with exactly the per-tuple RNG streams the whole relation would get,
	// keeping the distributed answer bit-identical. Positions past the end
	// of Ords fall back to the local ordinal.
	Ords []int64
	// Predicate, when non-nil, truncates surviving result distributions to
	// [A, B] with the realized mass as TEP, exactly as query.ApplyUDF does.
	Predicate *mc.Predicate
	// KeepEnvelope retains each result's confidence envelope (see
	// query.AttachResult) for downstream bounded operators.
	KeepEnvelope bool
}

// Apply returns an order-preserving parallel equivalent of query.ApplyUDF:
// it evaluates the UDF over the named input attributes of every tuple of in
// across the pool's workers and appends the result distribution as the out
// attribute, dropping engine-filtered tuples. Goroutines start lazily on
// the first Next and are torn down on EOF, error, cancellation, or Close.
// When chaining several Apply stages, give each its own Options.Seed
// (e.g. mix in the stage name): a shared base seed would hand tuple #k the
// same RNG stream in every stage, correlating their sampling errors.
func (p *Pool) Apply(in query.Iterator, inputs []string, out string, opt Options) *ParallelEval {
	return &ParallelEval{
		in:      in,
		inputs:  inputs,
		out:     out,
		engines: p.engines,
		opt:     opt,
	}
}

// job is one tuple travelling to a worker.
type job struct {
	seq   int64
	tuple *query.Tuple
}

// result is one evaluated tuple travelling back to the merger.
type result struct {
	seq   int64
	tuple *query.Tuple // nil when the engine filtered the tuple
	err   error
}

// ParallelEval is the parallel UDF-application operator: a query.Iterator
// whose Next pulls from a worker pool through an ordered merge. It is a
// single-consumer iterator (like every Volcano operator here); only the
// internal workers are concurrent.
type ParallelEval struct {
	in      query.Iterator
	inputs  []string
	out     string
	engines []query.Engine
	opt     Options

	// Dropped counts tuples removed by filtering. Read it after Next
	// returned io.EOF.
	Dropped int

	started bool
	ctx     context.Context
	cancel  context.CancelFunc
	results chan result
	// feedErr is the upstream iterator's terminal error. It is written by
	// the feeder goroutine strictly before it closes the jobs channel, and
	// read by the merger only after the results channel closed, so the
	// jobs-close → workers-exit → results-close chain orders the accesses.
	feedErr error
	// inflight holds one token per tuple between upstream pull and ordered
	// emission, bounding the reorder buffer at its capacity.
	inflight chan struct{}
	// workers is waited on during teardown — it counts the worker
	// goroutines and the feeder, so when Close or an error return hands
	// control back, no engine is still evaluating and the upstream
	// iterator is no longer being pulled.
	workers sync.WaitGroup
	pending map[int64]result
	next    int64
	err     error
}

// run starts the feeder, the workers, and the results closer.
func (p *ParallelEval) run() {
	parent := p.opt.Ctx
	if parent == nil {
		parent = context.Background()
	}
	p.ctx, p.cancel = context.WithCancel(parent)
	w := len(p.engines)
	q := p.opt.Queue
	if q <= 0 {
		q = 2 * w
	}
	jobs := make(chan job, q)
	p.results = make(chan result, q)
	p.inflight = make(chan struct{}, 2*q+w)
	p.pending = make(map[int64]result, 2*q+w)

	// Feeder: the only goroutine touching the upstream iterator. The
	// token acquired per tuple is released by the merger at emission, so
	// the feeder stalls — instead of the reorder buffer growing — when one
	// slow tuple holds the ordered merge back.
	p.workers.Add(1)
	go func() {
		defer p.workers.Done()
		defer close(jobs)
		for seq := int64(0); ; seq++ {
			select {
			case p.inflight <- struct{}{}:
			case <-p.ctx.Done():
				return
			}
			t, err := p.in.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				p.feedErr = err
				return
			}
			select {
			case jobs <- job{seq: seq, tuple: t}:
			case <-p.ctx.Done():
				return
			}
		}
	}()

	for i := 0; i < w; i++ {
		p.workers.Add(1)
		go func(eng query.Engine) {
			defer p.workers.Done()
			for {
				select {
				case <-p.ctx.Done():
					return
				case j, ok := <-jobs:
					if !ok {
						return
					}
					r := evalOne(eng, j, p.inputs, p.out, p.opt)
					select {
					case p.results <- r:
					case <-p.ctx.Done():
						return
					}
				}
			}
		}(p.engines[i])
	}
	go func() {
		p.workers.Wait()
		close(p.results)
	}()
}

// evalOne evaluates one tuple with its own deterministically seeded RNG.
func evalOne(eng query.Engine, j job, inputs []string, out string, opt Options) result {
	ord := j.seq
	if j.seq < int64(len(opt.Ords)) {
		ord = opt.Ords[j.seq]
	}
	rng := rand.New(rand.NewSource(TupleSeed(opt.Seed, ord)))
	input, err := query.InputVectorFor(j.tuple, inputs)
	if err != nil {
		return result{seq: j.seq, err: err}
	}
	o, err := eng.EvalInput(input, rng)
	if err != nil {
		return result{seq: j.seq, err: err}
	}
	return result{seq: j.seq, tuple: query.AttachResult(j.tuple, o, out, opt.Predicate, opt.KeepEnvelope)}
}

// Next returns the next surviving tuple in input order.
func (p *ParallelEval) Next() (*query.Tuple, error) {
	if !p.started {
		p.started = true
		p.run()
	}
	if p.err != nil {
		return nil, p.err
	}
	for {
		if r, ok := p.pending[p.next]; ok {
			delete(p.pending, p.next)
			p.next++
			<-p.inflight // release this tuple's in-flight token
			if r.err != nil {
				return nil, p.fail(fmt.Errorf("exec: apply %q: tuple #%d: %w", p.out, r.seq, r.err))
			}
			if r.tuple == nil {
				p.Dropped++
				continue
			}
			return r.tuple, nil
		}
		select {
		case r, ok := <-p.results:
			if !ok {
				return nil, p.finish()
			}
			p.pending[r.seq] = r
		case <-p.ctx.Done():
			return nil, p.fail(p.ctx.Err())
		}
	}
}

// finish resolves the terminal state once every worker has exited: the
// upstream error at its stream position, a cancellation, or clean EOF.
func (p *ParallelEval) finish() error {
	if p.feedErr != nil {
		return p.fail(p.feedErr)
	}
	if err := p.ctx.Err(); err != nil {
		return p.fail(err)
	}
	return p.fail(io.EOF)
}

// fail makes err sticky and tears the workers down, waiting until every
// worker has exited so the pool's engines are free for a subsequent stage.
func (p *ParallelEval) fail(err error) error {
	p.err = err
	p.cancel()
	p.workers.Wait()
	return p.err
}

// Close cancels the stage and waits for the workers to exit, so the pool's
// engines may be reused immediately afterwards; an in-flight UDF call is
// allowed to finish first. Close is safe to call at any point (including
// before the first Next, or after EOF) and is idempotent. Subsequent Next
// calls return the terminal error.
func (p *ParallelEval) Close() error {
	if !p.started {
		p.started = true
		p.err = context.Canceled
		return nil
	}
	if p.cancel != nil {
		p.cancel()
	}
	p.workers.Wait()
	if p.err == nil {
		p.err = context.Canceled
	}
	return nil
}
