package exec

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"olgapro/internal/query"
)

// boundedSig renders an answer relation into a bit-exact signature: certain
// ints/strings verbatim, every Bounded attribute by the raw IEEE-754 bits of
// its endpoints. Two relations with equal signatures are bit-identical in
// everything the bounded operators computed.
func boundedSig(out []*query.Tuple) string {
	var sb strings.Builder
	for _, t := range out {
		for _, name := range t.Names() {
			v := t.MustGet(name)
			switch v.Kind {
			case query.KindInt:
				fmt.Fprintf(&sb, "%s=%d;", name, v.I)
			case query.KindString:
				fmt.Fprintf(&sb, "%s=%s;", name, v.S)
			case query.KindBounded:
				fmt.Fprintf(&sb, "%s=%s,%s,%v;", name,
					strconv.FormatUint(math.Float64bits(v.B.Lo), 16),
					strconv.FormatUint(math.Float64bits(v.B.Hi), 16),
					v.B.Certain)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestAlgebraDeterminismAcrossWorkerCounts extends the executor's headline
// guarantee through the bounded relational operators: a serial Plan.Apply
// (frozen clone, per-tuple seeding) and pools of 1, 2, and 8 workers feed
// identical streams into TopK, Window, and GroupBy, so the bounded answers —
// rank intervals, window aggregates, grouped aggregates — are bit-identical
// at every worker count. Run with -race this also exercises the new
// operators downstream of concurrent producers.
func TestAlgebraDeterminismAcrossWorkerCounts(t *testing.T) {
	ev := warmEvaluator(t, nil)
	base := tupleTable(64)
	tuples := make([]*query.Tuple, len(base))
	for i, tp := range base {
		tuples[i] = tp.With("g", query.Str(fmt.Sprintf("g%d", i%3)))
	}
	inputs := []string{"x0", "x1"}
	const seed = 17

	topk := query.RankSpec{By: "y", K: 9, Desc: true}
	window := query.WindowSpec{Size: 8, Step: 3, Aggs: []query.Agg{
		query.Count(), query.Avg("y"), query.Max("y").WithStat(query.QuantileStat(0.9)),
	}}
	groupBy := query.GroupBySpec{Keys: []string{"g"}, Aggs: []query.Agg{
		query.Count(), query.Sum("y"), query.Min("y"),
	}}

	// run executes the three single-operator plans over a fresh apply stage
	// from mk and returns their signatures.
	run := func(mk func() *query.Plan) [3]string {
		t.Helper()
		var sigs [3]string
		for i, finish := range []func(*query.Plan) *query.Plan{
			func(p *query.Plan) *query.Plan { return p.TopK(topk) },
			func(p *query.Plan) *query.Plan { return p.Window(window) },
			func(p *query.Plan) *query.Plan { return p.GroupBy(groupBy) },
		} {
			out, err := finish(mk()).Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(out) == 0 {
				t.Fatal("empty answer relation")
			}
			sigs[i] = boundedSig(out)
		}
		return sigs
	}

	serialClone, err := ev.CloneFrozen()
	if err != nil {
		t.Fatal(err)
	}
	eng := query.NewEvaluatorEngine(serialClone)
	want := run(func() *query.Plan {
		return query.From(tuples).Apply(eng, query.ApplySpec{
			Inputs: inputs, As: "y", Seed: seed, KeepEnvelope: true,
		})
	})

	for _, workers := range []int{1, 2, 8} {
		pool, err := NewEvaluatorPool(ev, workers)
		if err != nil {
			t.Fatal(err)
		}
		got := run(func() *query.Plan {
			pe := pool.Apply(query.NewScan(tuples), inputs, "y",
				Options{Seed: seed, KeepEnvelope: true})
			return query.FromIterator(pe)
		})
		for i, name := range []string{"top-k", "window", "group-by"} {
			if got[i] != want[i] {
				t.Fatalf("%d workers: %s answers diverged from serial plan:\n%s\nvs\n%s",
					workers, name, got[i], want[i])
			}
		}
	}
}
