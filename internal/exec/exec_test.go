package exec

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/ecdf"
	"olgapro/internal/kernel"
	"olgapro/internal/mc"
	"olgapro/internal/query"
	"olgapro/internal/udf"
)

// testUDF is the smooth 2-D function used across the executor tests.
func testUDF() udf.Func {
	return udf.FuncOf{D: 2, F: func(x []float64) float64 {
		return x[0]*x[0] + 0.5*x[1] + 0.3*x[0]*x[1]
	}}
}

// warmEvaluator trains an evaluator on a few inputs so it can be frozen.
func warmEvaluator(t testing.TB, pred *mc.Predicate) *core.Evaluator {
	t.Helper()
	cfg := core.Config{
		Kernel:         kernel.NewSqExp(1, 0.5),
		SampleOverride: 100,
		Predicate:      pred,
	}
	ev, err := core.NewEvaluator(testUDF(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	in, err := dist.IsoGaussianVec([]float64{0.5, 0.5}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := ev.Eval(in, rng); err != nil {
			t.Fatal(err)
		}
	}
	return ev
}

// tupleTable builds n tuples with uncertain 2-D input attributes.
func tupleTable(n int) []*query.Tuple {
	rng := rand.New(rand.NewSource(99))
	tuples := make([]*query.Tuple, n)
	for i := range tuples {
		tuples[i] = query.MustTuple(
			[]string{"id", "x0", "x1"},
			[]query.Value{
				query.Int(int64(i)),
				query.Uncertain(dist.Normal{Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.1}),
				query.Uncertain(dist.Normal{Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.1}),
			},
		)
	}
	return tuples
}

// drainResults pulls the full stream and returns the result values.
func drainResults(t *testing.T, it query.Iterator) []query.Value {
	t.Helper()
	tuples, err := query.Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]query.Value, len(tuples))
	for i, tp := range tuples {
		vals[i] = tp.MustGet("y")
	}
	return vals
}

// sameResults asserts two result streams are bit-identical: same length,
// same TEPs, and exactly equal output-sample arrays.
func sameResults(t *testing.T, label string, a, b []query.Value) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d result tuples", label, len(a), len(b))
	}
	for i := range a {
		if a[i].TEP != b[i].TEP {
			t.Fatalf("%s: tuple %d TEP %v vs %v", label, i, a[i].TEP, b[i].TEP)
		}
		av, bv := a[i].R.Values(), b[i].R.Values()
		if len(av) != len(bv) {
			t.Fatalf("%s: tuple %d sample count %d vs %d", label, i, len(av), len(bv))
		}
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("%s: tuple %d sample %d: %v vs %v (not bit-identical)",
					label, i, j, av[j], bv[j])
			}
		}
	}
}

// TestDeterminismAcrossWorkerCounts is the executor's headline guarantee:
// for a fixed seed, a hand-rolled serial loop and pools of 1, 2, and 8
// workers produce bit-identical output streams over 200+ tuples.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	ev := warmEvaluator(t, nil)
	tuples := tupleTable(210)
	inputs := []string{"x0", "x1"}
	const seed = 42

	// Serial reference: one frozen clone, per-tuple seeding by contract.
	serialClone, err := ev.CloneFrozen()
	if err != nil {
		t.Fatal(err)
	}
	eng := query.NewEvaluatorEngine(serialClone)
	var serial []query.Value
	for seq, tp := range tuples {
		rng := rand.New(rand.NewSource(TupleSeed(seed, int64(seq))))
		input, err := query.InputVectorFor(tp, inputs)
		if err != nil {
			t.Fatal(err)
		}
		out, err := eng.EvalInput(input, rng)
		if err != nil {
			t.Fatal(err)
		}
		res := query.AttachResult(tp, out, "y", nil, false)
		if res == nil {
			t.Fatalf("tuple %d unexpectedly filtered", seq)
		}
		serial = append(serial, res.MustGet("y"))
	}

	for _, workers := range []int{1, 2, 8} {
		pool, err := NewEvaluatorPool(ev, workers)
		if err != nil {
			t.Fatal(err)
		}
		got := drainResults(t, pool.Apply(query.NewScan(tuples), inputs, "y", Options{Seed: seed}))
		sameResults(t, fmt.Sprintf("serial vs %d workers", workers), serial, got)
	}
}

// TestPredicateFilteringMatchesAcrossWorkers checks that drop decisions and
// truncated survivors agree between worker counts when a predicate is on.
func TestPredicateFilteringMatchesAcrossWorkers(t *testing.T) {
	pred := &mc.Predicate{A: 0.45, B: 2, Theta: 0.5}
	ev := warmEvaluator(t, pred)
	tuples := tupleTable(120)
	inputs := []string{"x0", "x1"}

	type run struct {
		vals    []query.Value
		dropped int
	}
	runs := make([]run, 0, 3)
	for _, workers := range []int{1, 2, 8} {
		pool, err := NewEvaluatorPool(ev, workers)
		if err != nil {
			t.Fatal(err)
		}
		pe := pool.Apply(query.NewScan(tuples), inputs, "y", Options{Seed: 7, Predicate: pred})
		vals := drainResults(t, pe)
		runs = append(runs, run{vals: vals, dropped: pe.Dropped})
	}
	if runs[0].dropped == 0 || len(runs[0].vals) == 0 {
		t.Fatalf("test workload should both keep and drop tuples; kept %d dropped %d",
			len(runs[0].vals), runs[0].dropped)
	}
	for i := 1; i < len(runs); i++ {
		if runs[i].dropped != runs[0].dropped {
			t.Fatalf("dropped counts differ: %d vs %d", runs[i].dropped, runs[0].dropped)
		}
		sameResults(t, "predicate runs", runs[0].vals, runs[i].vals)
	}
}

// TestRaceEightWorkers drives the executor under the race detector: 8
// workers over 200+ tuples with a small queue to force backpressure.
func TestRaceEightWorkers(t *testing.T) {
	ev := warmEvaluator(t, nil)
	pool, err := NewEvaluatorPool(ev, 8)
	if err != nil {
		t.Fatal(err)
	}
	tuples := tupleTable(220)
	pe := pool.Apply(query.NewScan(tuples), []string{"x0", "x1"}, "y", Options{Seed: 5, Queue: 3})
	got, err := query.Drain(pe)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tuples) {
		t.Fatalf("got %d tuples, want %d", len(got), len(tuples))
	}
	// Ordered merge: output preserves input order.
	for i, tp := range got {
		if id := tp.MustGet("id").I; id != int64(i) {
			t.Fatalf("output position %d has id %d: order not preserved", i, id)
		}
	}
}

// engineFunc adapts a function to query.Engine for fault-injection tests.
type engineFunc func(input dist.Vector, rng *rand.Rand) (*core.Output, error)

func (f engineFunc) EvalInput(input dist.Vector, rng *rand.Rand) (*core.Output, error) {
	return f(input, rng)
}

// okOutput fabricates a minimal successful engine output.
func okOutput() *core.Output {
	return &core.Output{Dist: ecdf.New([]float64{1, 2, 3}), MetBudget: true}
}

// TestFirstErrorWinsInStreamOrder injects a failure at tuple #5 on every
// worker path and checks the convention: tuples 0–4 are delivered, the
// error surfaces wrapped with the ordinal, and it is sticky.
func TestFirstErrorWinsInStreamOrder(t *testing.T) {
	boom := errors.New("boom")
	mkEngine := func() query.Engine {
		return engineFunc(func(input dist.Vector, rng *rand.Rand) (*core.Output, error) {
			// The input mean identifies the tuple: x0 carries the ordinal.
			if seq := input.MeanVec()[0]; seq >= 5 {
				return nil, boom
			}
			return okOutput(), nil
		})
	}
	pool, err := NewPool(mkEngine(), mkEngine(), mkEngine(), mkEngine())
	if err != nil {
		t.Fatal(err)
	}
	tuples := make([]*query.Tuple, 40)
	for i := range tuples {
		tuples[i] = query.MustTuple([]string{"x0"}, []query.Value{query.Float(float64(i))})
	}
	pe := pool.Apply(query.NewScan(tuples), []string{"x0"}, "y", Options{})
	var n int
	var got error
	for {
		_, err := pe.Next()
		if err != nil {
			got = err
			break
		}
		n++
	}
	if n != 5 {
		t.Fatalf("delivered %d tuples before the error, want 5", n)
	}
	if !errors.Is(got, boom) {
		t.Fatalf("error chain lost the cause: %v", got)
	}
	if !strings.Contains(got.Error(), "tuple #5") {
		t.Fatalf("error not wrapped with the failing ordinal: %v", got)
	}
	if _, err := pe.Next(); err == nil || err.Error() != got.Error() {
		t.Fatalf("error not sticky: %v", err)
	}
}

// failingIterator yields n tuples then a terminal error.
type failingIterator struct {
	n    int
	pos  int
	terr error
}

func (f *failingIterator) Next() (*query.Tuple, error) {
	if f.pos >= f.n {
		return nil, f.terr
	}
	f.pos++
	return query.MustTuple([]string{"x0"}, []query.Value{query.Float(float64(f.pos))}), nil
}

// TestUpstreamErrorPropagatesUnwrapped checks the convention's other half:
// input-iterator errors surface unmodified, after the preceding results.
func TestUpstreamErrorPropagatesUnwrapped(t *testing.T) {
	terr := errors.New("upstream broke")
	ok := engineFunc(func(input dist.Vector, rng *rand.Rand) (*core.Output, error) {
		return okOutput(), nil
	})
	pool, err := NewPool(ok, ok)
	if err != nil {
		t.Fatal(err)
	}
	pe := pool.Apply(&failingIterator{n: 7, terr: terr}, []string{"x0"}, "y", Options{})
	var n int
	for {
		_, err := pe.Next()
		if err != nil {
			if err != terr {
				t.Fatalf("upstream error was modified: %v", err)
			}
			break
		}
		n++
	}
	if n != 7 {
		t.Fatalf("delivered %d tuples before the upstream error, want 7", n)
	}
}

// waitGoroutines polls until the goroutine count drops back to at most
// want, failing after a deadline — the leak check for teardown paths.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d > %d\n%s",
				runtime.NumGoroutine(), want, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancellationStopsWorkersPromptly cancels mid-stream and asserts Next
// reports the context error and every goroutine exits.
func TestCancellationStopsWorkersPromptly(t *testing.T) {
	before := runtime.NumGoroutine()
	slow := engineFunc(func(input dist.Vector, rng *rand.Rand) (*core.Output, error) {
		time.Sleep(2 * time.Millisecond)
		return okOutput(), nil
	})
	pool, err := NewPool(slow, slow, slow, slow)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	tuples := make([]*query.Tuple, 500)
	for i := range tuples {
		tuples[i] = query.MustTuple([]string{"x0"}, []query.Value{query.Float(float64(i))})
	}
	pe := pool.Apply(query.NewScan(tuples), []string{"x0"}, "y", Options{Ctx: ctx})
	if _, err := pe.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	start := time.Now()
	for {
		_, err := pe.Next()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			break
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to surface", elapsed)
	}
	if _, err := pe.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation not sticky: %v", err)
	}
	waitGoroutines(t, before)
}

// TestCloseReleasesGoroutines abandons a stream mid-drain via Close.
func TestCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	ev := warmEvaluator(t, nil)
	pool, err := NewEvaluatorPool(ev, 4)
	if err != nil {
		t.Fatal(err)
	}
	pe := pool.Apply(query.NewScan(tupleTable(200)), []string{"x0", "x1"}, "y", Options{Seed: 1})
	if _, err := pe.Next(); err != nil {
		t.Fatal(err)
	}
	if err := pe.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pe.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after Close: %v", err)
	}
	waitGoroutines(t, before)

	// Close before any Next starts nothing and still poisons the iterator.
	pe2 := pool.Apply(query.NewScan(tupleTable(5)), []string{"x0", "x1"}, "y", Options{})
	if err := pe2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pe2.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after early Close: %v", err)
	}
	waitGoroutines(t, before)
}

// TestEOFTeardown checks a fully drained stream also releases goroutines
// and keeps returning io.EOF.
func TestEOFTeardown(t *testing.T) {
	before := runtime.NumGoroutine()
	ok := engineFunc(func(input dist.Vector, rng *rand.Rand) (*core.Output, error) {
		return okOutput(), nil
	})
	pool, err := NewPool(ok, ok, ok)
	if err != nil {
		t.Fatal(err)
	}
	tuples := make([]*query.Tuple, 50)
	for i := range tuples {
		tuples[i] = query.MustTuple([]string{"x0"}, []query.Value{query.Float(float64(i))})
	}
	pe := pool.Apply(query.NewScan(tuples), []string{"x0"}, "y", Options{})
	got, err := query.Drain(pe)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("got %d tuples", len(got))
	}
	if _, err := pe.Next(); err != io.EOF {
		t.Fatalf("want io.EOF after drain, got %v", err)
	}
	waitGoroutines(t, before)
}

// TestPoolValidation covers the constructors' error paths.
func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(); err == nil {
		t.Error("empty pool should error")
	}
	if _, err := NewPool(nil); err == nil {
		t.Error("nil engine should error")
	}
	cold, err := core.NewEvaluator(testUDF(), core.Config{Kernel: kernel.NewSqExp(1, 0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEvaluatorPool(cold, 2); err == nil {
		t.Error("un-warmed evaluator should be rejected (bootstrap would mutate the frozen model)")
	}
	ev := warmEvaluator(t, nil)
	pool, err := NewEvaluatorPool(ev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("workers ≤ 0 should default to GOMAXPROCS, got %d", pool.Workers())
	}
}

// TestTupleSeedDistinct spot-checks the per-tuple seed mixer for collisions
// over a realistic range.
func TestTupleSeedDistinct(t *testing.T) {
	seen := make(map[int64]int64, 20000)
	for _, base := range []int64{0, 1, 42, -7} {
		for seq := int64(0); seq < 5000; seq++ {
			s := TupleSeed(base, seq)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: base %d seq %d repeats %d", base, seq, prev)
			}
			seen[s] = seq
		}
	}
	if TupleSeed(1, 0) == TupleSeed(2, 0) {
		t.Error("different bases should give different seeds")
	}
}

// countingIterator synthesizes tuples on demand and tracks how far the
// executor's feeder has pulled, for backpressure assertions.
type countingIterator struct {
	n      int
	pulled atomic.Int64
}

func (c *countingIterator) Next() (*query.Tuple, error) {
	i := c.pulled.Add(1) - 1
	if i >= int64(c.n) {
		return nil, io.EOF
	}
	return query.MustTuple([]string{"x0"}, []query.Value{query.Float(float64(i))}), nil
}

// TestReorderBufferBounded pins the backpressure contract: while tuple #0
// stalls the ordered merge, the feeder must stop pulling once 2×Queue +
// workers tuples are in flight, instead of buffering the rest of the
// stream in the reorder map.
func TestReorderBufferBounded(t *testing.T) {
	release := make(chan struct{})
	eng := engineFunc(func(input dist.Vector, rng *rand.Rand) (*core.Output, error) {
		if input.MeanVec()[0] == 0 {
			<-release
		}
		return okOutput(), nil
	})
	pool, err := NewPool(eng, eng) // 2 workers, Queue 4 → bound 2·4+2 = 10
	if err != nil {
		t.Fatal(err)
	}
	src := &countingIterator{n: 5000}
	pe := pool.Apply(src, []string{"x0"}, "y", Options{Queue: 4})
	done := make(chan error, 1)
	var drained []*query.Tuple
	go func() {
		out, err := query.Drain(pe)
		drained = out
		done <- err
	}()
	// Wait for the pull count to plateau with the straggler still held.
	var prev int64 = -1
	for i := 0; i < 100; i++ {
		cur := src.pulled.Load()
		if cur == prev && cur > 0 {
			break
		}
		prev = cur
		time.Sleep(20 * time.Millisecond)
	}
	if pulled := src.pulled.Load(); pulled > 12 {
		t.Errorf("feeder pulled %d tuples while the merge was stalled; want ≤ 12 (2×Queue+workers+slack)", pulled)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(drained) != src.n {
		t.Fatalf("drained %d of %d tuples after release", len(drained), src.n)
	}
}

// TestPoolReuseAfterClose checks the teardown contract Close documents:
// once Close returns, no worker still holds an engine, so the same pool
// can run the next stage immediately.
func TestPoolReuseAfterClose(t *testing.T) {
	ev := warmEvaluator(t, nil)
	pool, err := NewEvaluatorPool(ev, 4)
	if err != nil {
		t.Fatal(err)
	}
	rel := tupleTable(150)
	pe := pool.Apply(query.NewScan(rel), []string{"x0", "x1"}, "y", Options{Seed: 3})
	if _, err := pe.Next(); err != nil {
		t.Fatal(err)
	}
	if err := pe.Close(); err != nil {
		t.Fatal(err)
	}
	// Immediately reuse the same engines for a fresh stage.
	out, err := query.Drain(pool.Apply(query.NewScan(rel), []string{"x0", "x1"}, "y", Options{Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(rel) {
		t.Fatalf("reused pool drained %d of %d tuples", len(out), len(rel))
	}
}
