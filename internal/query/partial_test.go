package query

// Property tests for the distributed merge algebra: random relations are
// split into random shard partitions, merged back through the Partial /
// GroupPartial / RankKey machinery, and the result must be bit-identical
// (math.Float64bits on every bound) to the serial operators over the union
// relation.

import (
	"math"
	"math/rand"
	"testing"
)

// randItems builds a random item list with ordinals 0..n-1: small-integer
// interval endpoints (so collisions and ties are common) and a mix of sure
// and maybe tuples.
func randPartialItems(rng *rand.Rand, n int) []PartialItem {
	items := make([]PartialItem, n)
	for i := range items {
		lo := float64(rng.Intn(9) - 4)
		hi := lo + float64(rng.Intn(3))
		items[i] = PartialItem{Ord: int64(i), Lo: lo, Hi: hi, Sure: rng.Intn(3) > 0}
	}
	return items
}

// partition deals the items into m shards at random, preserving relative
// (ordinal) order within each shard.
func partition(rng *rand.Rand, items []PartialItem, m int) [][]PartialItem {
	shards := make([][]PartialItem, m)
	for _, it := range items {
		s := rng.Intn(m)
		shards[s] = append(shards[s], it)
	}
	return shards
}

// serialBound folds the items through the serial operators' aggBounds.
func serialBound(kind AggKind, items []PartialItem) Bounded {
	ais := make([]aggItem, len(items))
	for i, it := range items {
		ais[i] = aggItem{val: Bounded{Lo: it.Lo, Hi: it.Hi}, sure: it.Sure}
	}
	return aggBounds(kind, ais)
}

// sameBits compares bounds bit-for-bit (NaN == NaN, -0 ≠ +0).
func sameBits(a, b Bounded) bool {
	return math.Float64bits(a.Lo) == math.Float64bits(b.Lo) &&
		math.Float64bits(a.Hi) == math.Float64bits(b.Hi) &&
		a.Certain == b.Certain
}

// TestPartialMergeBitIdentity: for every aggregate kind, merging per-shard
// partials (in a random merge order) yields bounds bit-identical to the
// serial fold over the union relation.
func TestPartialMergeBitIdentity(t *testing.T) {
	kinds := []AggKind{AggCount, AggSum, AggAvg, AggMin, AggMax}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(12)
		m := 1 + rng.Intn(4)
		items := randPartialItems(rng, n)
		shards := partition(rng, items, m)
		for _, kind := range kinds {
			want := serialBound(kind, items)

			parts := make([]*Partial, m)
			for s, shard := range shards {
				parts[s] = NewPartial(kind)
				for _, it := range shard {
					parts[s].Observe(it)
				}
			}
			rng.Shuffle(m, func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
			merged := NewPartial(kind)
			for _, p := range parts {
				if err := merged.Merge(p); err != nil {
					t.Fatal(err)
				}
			}
			if got := merged.Bound(); !sameBits(got, want) {
				t.Fatalf("trial %d kind %s: merged %+v, serial %+v (items %+v)", trial, kind, got, want, items)
			}
		}
	}
}

func TestPartialMergeKindMismatch(t *testing.T) {
	if err := NewPartial(AggSum).Merge(NewPartial(AggMin)); err == nil {
		t.Fatal("merging mismatched kinds should fail")
	}
}

// TestMergeRankKeysMatchesOperator: the exported keys-only core must agree
// with the TopK operator, member for member and rank for rank.
func TestMergeRankKeysMatchesOperator(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		k := 1 + rng.Intn(n)
		desc := rng.Intn(2) == 0
		spec := RankSpec{By: "y", K: k, Desc: desc}
		tuples := make([]*Tuple, n)
		keys := make([]RankKey, n)
		for i := range tuples {
			a := float64(rng.Intn(7) - 3)
			b := a + float64(rng.Intn(3))
			v := envResult(a, b)
			if rng.Intn(3) == 0 {
				v = maybeResult(a, b)
			}
			tuples[i] = MustTuple([]string{"id", "y"}, []Value{Int(int64(i)), v})
			var err error
			keys[i], err = RankKeyOf(tuples[i], spec, int64(i))
			if err != nil {
				t.Fatal(err)
			}
		}
		out, err := Drain(NewTopK(NewScan(tuples), spec))
		if err != nil {
			t.Fatal(err)
		}
		members := MergeRankKeys(keys, k)
		if len(members) != len(out) {
			t.Fatalf("trial %d: %d members vs %d operator tuples", trial, len(members), len(out))
		}
		for i, m := range members {
			if got, want := out[i].MustGet("id").I, tuples[m.Idx].MustGet("id").I; got != want {
				t.Fatalf("trial %d member %d: tuple %d vs %d", trial, i, got, want)
			}
			if got := out[i].MustGet("rank").B; !sameBits(got, m.Rank) {
				t.Fatalf("trial %d member %d: rank %+v vs %+v", trial, i, got, m.Rank)
			}
		}
	}
}

// TestCertAbovePruningSound: a tuple whose shard-local certAbove count
// already reaches k is never a possible member of the global top k — the
// soundness condition that lets shards prune result payloads before the
// scatter-gather merge.
func TestCertAbovePruningSound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		m := 1 + rng.Intn(3)
		k := 1 + rng.Intn(n)
		keys := make([]RankKey, n)
		for i := range keys {
			lo := float64(rng.Intn(7) - 3)
			keys[i] = RankKey{Ord: int64(i), Lo: lo, Hi: lo + float64(rng.Intn(3)), Sure: rng.Intn(3) > 0}
		}
		shards := make([][]RankKey, m)
		for _, key := range keys {
			s := rng.Intn(m)
			shards[s] = append(shards[s], key)
		}
		pruned := map[int64]bool{}
		for _, shard := range shards {
			for i, c := range CertAbove(shard) {
				if c >= k {
					pruned[shard[i].Ord] = true
				}
			}
		}
		for _, mem := range MergeRankKeys(keys, k) {
			if pruned[keys[mem.Idx].Ord] {
				t.Fatalf("trial %d: locally pruned tuple %d is a global possible member (k=%d, keys %+v)",
					trial, keys[mem.Idx].Ord, k, keys)
			}
		}
	}
}

// randRelation builds a random relation of group-labelled tuples with
// envelope-bounded result values, plus the matching ordinals 0..n-1.
func randRelation(rng *rand.Rand, n int) ([]*Tuple, []int64) {
	tuples := make([]*Tuple, n)
	ords := make([]int64, n)
	for i := range tuples {
		lo := float64(rng.Intn(9) - 4)
		hi := lo + float64(rng.Intn(3))
		v := envResult(lo, hi)
		if rng.Intn(3) == 0 {
			v = maybeResult(lo, hi)
		}
		g := "g" + string(rune('0'+rng.Intn(3)))
		tuples[i] = MustTuple([]string{"id", "g", "y"}, []Value{Int(int64(i)), Str(g), v})
		ords[i] = int64(i)
	}
	return tuples, ords
}

// TestGroupPartialMergeBitIdentity: random shard partitions of a grouped
// relation merge to exactly the serial GroupBy answer — same group order,
// same key values, bit-identical bounds.
func TestGroupPartialMergeBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	spec := GroupBySpec{Keys: []string{"g"}, Aggs: []Agg{
		Count(), Sum("y"), Avg("y"), Min("y"), Max("y"),
	}}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(14)
		m := 1 + rng.Intn(4)
		tuples, ords := randRelation(rng, n)

		want, err := Drain(NewGroupBy(NewScan(tuples), spec))
		if err != nil {
			t.Fatal(err)
		}

		lists := make([][]*GroupPartial, m)
		for s := 0; s < m; s++ {
			var st []*Tuple
			var so []int64
			for i := range tuples {
				if i%m == s {
					st = append(st, tuples[i])
					so = append(so, ords[i])
				}
			}
			lists[s], err = GroupPartialsOf(st, so, spec)
			if err != nil {
				t.Fatal(err)
			}
		}
		merged, err := MergeGroupPartials(lists...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FinishGroupPartials(spec, merged)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTuples(t, trial, got, want)
	}
}

// TestWindowPartialsBitIdentity: window answers rebuilt from per-tuple
// items match the serial Window operator for random sizes and steps,
// including step > size gaps and incomplete trailing windows.
func TestWindowPartialsBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(16)
		size := 1 + rng.Intn(5)
		step := rng.Intn(7) // 0 → tumbling
		spec := WindowSpec{Size: size, Step: step, Aggs: []Agg{
			Count(), Sum("y"), Avg("y"), Min("y"), Max("y"),
		}}
		tuples, ords := randRelation(rng, n)

		want, err := Drain(NewWindow(NewScan(tuples), spec))
		if err != nil {
			t.Fatal(err)
		}

		items := make([][]PartialItem, len(spec.Aggs))
		for a, agg := range spec.Aggs {
			items[a] = make([]PartialItem, n)
			for i, tp := range tuples {
				items[a][i], err = PartialItemOf(tp, agg, ords[i])
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		got, err := WindowPartials(spec, items)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTuples(t, trial, got, want)
	}
}

// assertSameTuples compares two answer relations attribute by attribute,
// bit-for-bit on float payloads.
func assertSameTuples(t *testing.T, trial int, got, want []*Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trial %d: %d tuples vs %d", trial, len(got), len(want))
	}
	for i := range got {
		gn, wn := got[i].Names(), want[i].Names()
		if len(gn) != len(wn) {
			t.Fatalf("trial %d tuple %d: names %v vs %v", trial, i, gn, wn)
		}
		for j := range gn {
			if gn[j] != wn[j] {
				t.Fatalf("trial %d tuple %d: names %v vs %v", trial, i, gn, wn)
			}
			g, w := got[i].MustGet(gn[j]), want[i].MustGet(wn[j])
			if g.Kind != w.Kind {
				t.Fatalf("trial %d tuple %d %q: kind %s vs %s", trial, i, gn[j], g.Kind, w.Kind)
			}
			switch g.Kind {
			case KindInt:
				if g.I != w.I {
					t.Fatalf("trial %d tuple %d %q: %d vs %d", trial, i, gn[j], g.I, w.I)
				}
			case KindString:
				if g.S != w.S {
					t.Fatalf("trial %d tuple %d %q: %q vs %q", trial, i, gn[j], g.S, w.S)
				}
			case KindBounded:
				if !sameBits(g.B, w.B) {
					t.Fatalf("trial %d tuple %d %q: %+v vs %+v", trial, i, gn[j], g.B, w.B)
				}
			default:
				t.Fatalf("trial %d tuple %d %q: unexpected kind %s", trial, i, gn[j], g.Kind)
			}
		}
	}
}
