package query

import (
	"errors"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"

	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/ecdf"
	"olgapro/internal/kernel"
	"olgapro/internal/mc"
	"olgapro/internal/sdss"
	"olgapro/internal/udf"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Float(1.5), "1.5"},
		{Int(7), "7"},
		{Str("abc"), "abc"},
		{Value{}, "null"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	u := Uncertain(dist.Normal{Mu: 2, Sigma: 0.5})
	if !strings.Contains(u.String(), "μ=2") {
		t.Errorf("uncertain string: %q", u.String())
	}
	r := Result(ecdf.New([]float64{1, 2, 3}), 0.9)
	if !strings.Contains(r.String(), "n=3") {
		t.Errorf("result string: %q", r.String())
	}
	if !strings.Contains(Result(nil, 0).String(), "filtered") {
		t.Errorf("nil result string")
	}
	if KindFloat.String() != "float" || KindNull.String() != "null" {
		t.Error("kind names")
	}
}

func TestTupleBasics(t *testing.T) {
	tp, err := NewTuple([]string{"a", "b"}, []Value{Float(1), Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	if tp.Len() != 2 {
		t.Fatalf("Len = %d", tp.Len())
	}
	if v := tp.MustGet("a"); v.F != 1 {
		t.Fatalf("Get(a) = %v", v)
	}
	if _, err := tp.Get("zz"); err == nil {
		t.Fatal("missing attribute should error")
	}
	// With override vs extend.
	t2 := tp.With("a", Float(9))
	if t2.MustGet("a").F != 9 || tp.MustGet("a").F != 1 {
		t.Fatal("With override broken or mutated original")
	}
	t3 := tp.With("c", Str("x"))
	if t3.Len() != 3 || tp.Len() != 2 {
		t.Fatal("With extend broken")
	}
	if s := tp.String(); !strings.Contains(s, "a=1") {
		t.Errorf("tuple string: %q", s)
	}
}

func TestTupleErrors(t *testing.T) {
	if _, err := NewTuple([]string{"a"}, nil); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NewTuple([]string{"a", "a"}, []Value{Float(1), Float(2)}); err == nil {
		t.Error("duplicate names should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGet on missing should panic")
		}
	}()
	MustTuple([]string{"a"}, []Value{Float(1)}).MustGet("zz")
}

func TestConcat(t *testing.T) {
	a := MustTuple([]string{"id"}, []Value{Int(1)})
	b := MustTuple([]string{"id"}, []Value{Int(2)})
	j, err := Concat(a, "l.", b, "r.")
	if err != nil {
		t.Fatal(err)
	}
	if j.MustGet("l.id").I != 1 || j.MustGet("r.id").I != 2 {
		t.Fatalf("concat: %v", j)
	}
}

func TestScanSelectProject(t *testing.T) {
	rel := []*Tuple{
		MustTuple([]string{"id", "v"}, []Value{Int(1), Float(10)}),
		MustTuple([]string{"id", "v"}, []Value{Int(2), Float(20)}),
		MustTuple([]string{"id", "v"}, []Value{Int(3), Float(30)}),
	}
	it := &Project{
		In: &Select{
			In:   NewScan(rel),
			Pred: func(t *Tuple) (bool, error) { return t.MustGet("v").F > 15, nil },
		},
		Names: []string{"id"},
	}
	got, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].MustGet("id").I != 2 || got[1].MustGet("id").I != 3 {
		t.Fatalf("pipeline result: %v", got)
	}
	if got[0].Len() != 1 {
		t.Fatalf("projection kept %d attrs", got[0].Len())
	}
	// Exhausted iterator keeps returning EOF.
	if _, err := it.Next(); err != io.EOF {
		t.Fatalf("after drain: %v", err)
	}
}

func TestCrossJoin(t *testing.T) {
	rel := []*Tuple{
		MustTuple([]string{"id"}, []Value{Int(1)}),
		MustTuple([]string{"id"}, []Value{Int(2)}),
		MustTuple([]string{"id"}, []Value{Int(3)}),
	}
	full, err := Drain(NewCrossJoin(rel, "a.", rel, "b.", false))
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 9 {
		t.Fatalf("full cross join size %d", len(full))
	}
	pairs, err := Drain(NewCrossJoin(rel, "a.", rel, "b.", true))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 { // (1,2) (1,3) (2,3)
		t.Fatalf("distinct pairs size %d", len(pairs))
	}
	for _, p := range pairs {
		if p.MustGet("a.id").I >= p.MustGet("b.id").I {
			t.Fatalf("self pair leaked: %v", p)
		}
	}
}

// Q1 with the MC engine: Select objID, GalAge(redshift) From Galaxy.
// Using the identity UDF so the output distribution is checkable.
func TestApplyUDFWithMCEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rel := []*Tuple{
		GalaxyTuple(1, 180, 30, 0.001, 0.001, 0.40, 0.02),
		GalaxyTuple(2, 181, 31, 0.001, 0.001, 0.50, 0.02),
	}
	identity := udf.FuncOf{D: 1, F: func(x []float64) float64 { return x[0] }}
	apply := &ApplyUDF{
		In:     NewScan(rel),
		Inputs: []string{"redshift"},
		Out:    "z_copy",
		Engine: NewMCEngine(identity, mc.Config{Eps: 0.05, Delta: 0.05}),
		Rng:    rng,
	}
	got, err := Drain(apply)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d tuples", len(got))
	}
	for i, want := range []float64{0.40, 0.50} {
		res := got[i].MustGet("z_copy")
		if res.Kind != KindResult {
			t.Fatalf("tuple %d: kind %s", i, res.Kind)
		}
		if math.Abs(res.R.Mean()-want) > 0.01 {
			t.Fatalf("tuple %d: mean %g, want %g", i, res.R.Mean(), want)
		}
	}
}

func TestApplyUDFMixedCertainInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rel := []*Tuple{MustTuple(
		[]string{"z", "area"},
		[]Value{Uncertain(dist.Normal{Mu: 2, Sigma: 0.1}), Float(3)},
	)}
	sum := udf.FuncOf{D: 2, F: func(x []float64) float64 { return x[0] + x[1] }}
	apply := &ApplyUDF{
		In:     NewScan(rel),
		Inputs: []string{"z", "area"},
		Out:    "sum",
		Engine: NewMCEngine(sum, mc.Config{Eps: 0.05, Delta: 0.05}),
		Rng:    rng,
	}
	got, err := Drain(apply)
	if err != nil {
		t.Fatal(err)
	}
	if m := got[0].MustGet("sum").R.Mean(); math.Abs(m-5) > 0.02 {
		t.Fatalf("mean %g, want 5", m)
	}
}

func TestApplyUDFRejectsBadAttribute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rel := []*Tuple{MustTuple([]string{"s"}, []Value{Str("not numeric")})}
	identity := udf.FuncOf{D: 1, F: func(x []float64) float64 { return x[0] }}
	apply := &ApplyUDF{
		In: NewScan(rel), Inputs: []string{"s"}, Out: "y",
		Engine: NewMCEngine(identity, mc.Config{}), Rng: rng,
	}
	if _, err := Drain(apply); err == nil {
		t.Fatal("string attribute should be rejected")
	}
	apply2 := &ApplyUDF{
		In: NewScan(rel), Inputs: []string{"missing"}, Out: "y",
		Engine: NewMCEngine(identity, mc.Config{}), Rng: rng,
	}
	if _, err := Drain(apply2); err == nil {
		t.Fatal("missing attribute should be rejected")
	}
}

// TEP filtering in the WHERE clause: tuples whose output cannot reach the
// predicate interval are dropped and counted.
func TestApplyUDFFiltering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rel := []*Tuple{
		// Output ≈ N(0.4, 0.02): inside [0.3, 0.5].
		GalaxyTuple(1, 180, 30, 0.001, 0.001, 0.40, 0.02),
		// Output ≈ N(5, 0.02): far outside.
		GalaxyTuple(2, 181, 31, 0.001, 0.001, 5.0, 0.02),
	}
	identity := udf.FuncOf{D: 1, F: func(x []float64) float64 { return x[0] }}
	apply := &ApplyUDF{
		In:     NewScan(rel),
		Inputs: []string{"redshift"},
		Out:    "z",
		Engine: NewMCEngine(identity, mc.Config{
			Eps: 0.05, Delta: 0.05,
			Predicate: &mc.Predicate{A: 0.3, B: 0.5, Theta: 0.1},
		}),
		Rng: rng,
	}
	got, err := Drain(apply)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].MustGet("objID").I != 1 {
		t.Fatalf("filtering kept %d tuples", len(got))
	}
	if apply.Dropped != 1 {
		t.Fatalf("Dropped = %d", apply.Dropped)
	}
}

// Q1 end-to-end with the OLGAPRO engine over a generated catalog.
func TestQ1WithGPEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cat := sdss.Generate(sdss.GenerateConfig{N: 12, Seed: 6})
	rel := make([]*Tuple, len(cat.Galaxies))
	for i, g := range cat.Galaxies {
		rel[i] = GalaxyTuple(g.ObjID, g.RA, g.Dec, g.RAErr, g.DecErr, g.Redshift, g.RedshiftErr)
	}
	// Cheap smooth stand-in for GalAge keeps the test fast; the astro
	// integration is exercised in the astro package and examples.
	pseudoAge := udf.FuncOf{D: 1, F: func(x []float64) float64 {
		return 13.5 / math.Sqrt(1+x[0])
	}}
	eval, err := core.NewEvaluator(pseudoAge, core.Config{
		Kernel: kernel.NewSqExp(3, 0.3),
	})
	if err != nil {
		t.Fatal(err)
	}
	apply := &ApplyUDF{
		In:     NewScan(rel),
		Inputs: []string{"redshift"},
		Out:    "age",
		Engine: NewEvaluatorEngine(eval),
		Rng:    rng,
	}
	got, err := Drain(apply)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 {
		t.Fatalf("%d tuples", len(got))
	}
	for _, tp := range got {
		z := tp.MustGet("redshift").D.Mean()
		want := 13.5 / math.Sqrt(1+z)
		res := tp.MustGet("age").R
		if math.Abs(res.Mean()-want) > 0.4 {
			t.Fatalf("age mean %g, want ≈ %g (z=%g)", res.Mean(), want, z)
		}
	}
	// The GP should have converged to a handful of training points for such
	// a smooth 1-D function, not one per sample.
	if pts := eval.Stats().TrainingPoints; pts > 60 {
		t.Fatalf("GP used %d training points for a smooth 1-D UDF", pts)
	}
}

// Q2 semantics: surviving tuples carry the predicate-truncated distribution
// with the tuple existence probability attached.
func TestApplyUDFTruncatesSurvivors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rel := []*Tuple{
		// Output ≈ N(0.5, 0.1): roughly half its mass in [0.5, 2].
		MustTuple([]string{"v"}, []Value{Uncertain(dist.Normal{Mu: 0.5, Sigma: 0.1})}),
	}
	identity := udf.FuncOf{D: 1, F: func(x []float64) float64 { return x[0] }}
	pred := &mc.Predicate{A: 0.5, B: 2, Theta: 0.1}
	apply := &ApplyUDF{
		In:        NewScan(rel),
		Inputs:    []string{"v"},
		Out:       "y",
		Engine:    NewMCEngine(identity, mc.Config{Eps: 0.05, Delta: 0.05, Predicate: pred}),
		Rng:       rng,
		Predicate: pred,
	}
	got, err := Drain(apply)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("%d tuples", len(got))
	}
	res := got[0].MustGet("y")
	// TEP ≈ Pr[N(0.5,0.1) ≥ 0.5] = 0.5.
	if math.Abs(res.TEP-0.5) > 0.05 {
		t.Fatalf("TEP = %g, want ≈ 0.5", res.TEP)
	}
	// The distribution is conditional on the predicate: support ⊆ [0.5, 2].
	if res.R.Min() < 0.5 || res.R.Max() > 2 {
		t.Fatalf("truncated support [%g, %g] escapes [0.5, 2]", res.R.Min(), res.R.Max())
	}
	// Conditional median of the upper half of N(0.5, 0.1): ≈ 0.567.
	if med := res.R.Quantile(0.5); math.Abs(med-0.567) > 0.02 {
		t.Fatalf("conditional median %g, want ≈ 0.567", med)
	}
}

// errEngine fails on every input, for error-convention tests.
type errEngine struct{ err error }

func (e errEngine) EvalInput(input dist.Vector, rng *rand.Rand) (*core.Output, error) {
	return nil, e.err
}

func TestErrorConventionApplyUDF(t *testing.T) {
	boom := io.ErrUnexpectedEOF
	tuples := []*Tuple{
		MustTuple([]string{"x"}, []Value{Uncertain(dist.Normal{Mu: 1, Sigma: 0.1})}),
		MustTuple([]string{"x"}, []Value{Uncertain(dist.Normal{Mu: 2, Sigma: 0.1})}),
	}
	a := &ApplyUDF{
		In:     NewScan(tuples),
		Inputs: []string{"x"},
		Out:    "y",
		Engine: errEngine{err: boom},
		Rng:    rand.New(rand.NewSource(1)),
	}
	_, err := a.Next()
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), `apply "y": tuple #0`) {
		t.Fatalf("error not wrapped per convention: %v", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("cause lost: %v", err)
	}
	// Sticky: the same error, with no further input pulls.
	again, err2 := a.Next()
	if again != nil || err2 != err {
		t.Fatalf("error not sticky: %v vs %v", err2, err)
	}
}

func TestErrorConventionSelect(t *testing.T) {
	boom := errors.New("pred failed")
	tuples := []*Tuple{
		MustTuple([]string{"x"}, []Value{Float(1)}),
		MustTuple([]string{"x"}, []Value{Float(2)}),
	}
	s := &Select{
		In: NewScan(tuples),
		Pred: func(tp *Tuple) (bool, error) {
			if tp.MustGet("x").F > 1 {
				return false, boom
			}
			return true, nil
		},
	}
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := s.Next()
	if err == nil || !strings.Contains(err.Error(), "select: tuple #1") || !errors.Is(err, boom) {
		t.Fatalf("select error not wrapped per convention: %v", err)
	}
	if _, err2 := s.Next(); err2 != err {
		t.Fatalf("select error not sticky: %v", err2)
	}
	// EOF passes through unwrapped and stays sticky too.
	p := &Project{In: NewScan(nil), Names: []string{"x"}}
	if _, err := p.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	if _, err := p.Next(); err != io.EOF {
		t.Fatalf("EOF not sticky: %v", err)
	}
}

func TestErrorConventionProjectMissingAttr(t *testing.T) {
	p := &Project{
		In:    NewScan([]*Tuple{MustTuple([]string{"a"}, []Value{Float(1)})}),
		Names: []string{"zz"},
	}
	_, err := p.Next()
	if err == nil || !strings.Contains(err.Error(), "project: tuple #0") {
		t.Fatalf("project error not wrapped per convention: %v", err)
	}
}

func TestOutputEngineStamped(t *testing.T) {
	in := dist.NewIndependent(dist.Normal{Mu: 1, Sigma: 0.1})
	rng := rand.New(rand.NewSource(4))
	f := udf.FuncOf{D: 1, F: func(x []float64) float64 { return x[0] }}

	mcOut, err := NewMCEngine(f, mc.Config{Eps: 0.3, Delta: 0.3}).EvalInput(in, rng)
	if err != nil {
		t.Fatal(err)
	}
	if mcOut.Engine != core.EngineMC {
		t.Errorf("MC engine stamp = %v", mcOut.Engine)
	}

	ev, err := core.NewEvaluator(f, core.Config{Kernel: kernel.NewSqExp(1, 1), SampleOverride: 60})
	if err != nil {
		t.Fatal(err)
	}
	gpOut, err := NewEvaluatorEngine(ev).EvalInput(in, rng)
	if err != nil {
		t.Fatal(err)
	}
	if gpOut.Engine != core.EngineGP {
		t.Errorf("GP engine stamp = %v", gpOut.Engine)
	}

	h, err := core.NewHybrid(f, core.HybridConfig{Config: core.Config{
		Kernel: kernel.NewSqExp(1, 1), SampleOverride: 60,
	}, CalibrationInputs: 1})
	if err != nil {
		t.Fatal(err)
	}
	hOut, err := NewHybridEngine(h).EvalInput(in, rng)
	if err != nil {
		t.Fatal(err)
	}
	if hOut.Engine != core.EngineGP && hOut.Engine != core.EngineMC {
		t.Errorf("hybrid engine stamp missing: %v", hOut.Engine)
	}
}
