package query

import (
	"fmt"
	"math"
	"sort"
)

// AggKind selects an aggregate function.
type AggKind int

const (
	// AggCount counts tuples.
	AggCount AggKind = iota
	// AggSum sums the statistic of the named attribute.
	AggSum
	// AggAvg averages the statistic of the named attribute.
	AggAvg
	// AggMin takes the minimum of the statistic of the named attribute.
	AggMin
	// AggMax takes the maximum of the statistic of the named attribute.
	AggMax
)

// String names the aggregate ("count", "sum", ...).
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", int(k))
	}
}

// Agg is one aggregate column of a Window or GroupBy operator: Kind applied
// to the Stat of attribute Attr, emitted as attribute As. AggCount ignores
// Attr/Stat. As defaults to "count" for AggCount and "kind_attr" otherwise.
type Agg struct {
	Kind AggKind
	Attr string
	Stat Stat
	As   string
}

// Count is the tuple-count aggregate.
func Count() Agg { return Agg{Kind: AggCount} }

// Sum aggregates the mean of attr.
func Sum(attr string) Agg { return Agg{Kind: AggSum, Attr: attr} }

// Avg aggregates the mean of attr.
func Avg(attr string) Agg { return Agg{Kind: AggAvg, Attr: attr} }

// Min aggregates the mean of attr.
func Min(attr string) Agg { return Agg{Kind: AggMin, Attr: attr} }

// Max aggregates the mean of attr.
func Max(attr string) Agg { return Agg{Kind: AggMax, Attr: attr} }

// WithStat returns the aggregate with its statistic replaced.
func (a Agg) WithStat(s Stat) Agg { a.Stat = s; return a }

// Named returns the aggregate with its output attribute name replaced.
func (a Agg) Named(as string) Agg { a.As = as; return a }

// name resolves the output attribute name.
func (a Agg) name() string {
	if a.As != "" {
		return a.As
	}
	if a.Kind == AggCount {
		return "count"
	}
	return a.Kind.String() + "_" + a.Attr
}

func (a Agg) validate() error {
	switch a.Kind {
	case AggCount:
		return nil
	case AggSum, AggAvg, AggMin, AggMax:
		if a.Attr == "" {
			return fmt.Errorf("aggregate %s needs an attribute", a.Kind)
		}
		return a.Stat.validate()
	default:
		return fmt.Errorf("unknown aggregate kind %d", int(a.Kind))
	}
}

// aggItem is one tuple's contribution to an aggregate: its statistic
// interval and whether the tuple certainly exists (a TEP-filtered tuple may
// be absent from some possible worlds).
type aggItem struct {
	val  Bounded
	sure bool
}

// itemOf extracts one tuple's contribution to agg.
func itemOf(t *Tuple, agg Agg) (aggItem, error) {
	if agg.Kind == AggCount {
		// Count needs only existence; use the first result attribute's TEP
		// when the tuple has one, via existence of every attribute: a tuple
		// is a maybe-tuple when ANY of its result attributes may not exist.
		sure := true
		for _, n := range t.Names() {
			if !existenceCertain(t.MustGet(n)) {
				sure = false
				break
			}
		}
		return aggItem{val: Exact(1), sure: sure}, nil
	}
	v, err := t.Get(agg.Attr)
	if err != nil {
		return aggItem{}, err
	}
	b, err := IntervalOf(v, agg.Stat)
	if err != nil {
		return aggItem{}, fmt.Errorf("attribute %q: %w", agg.Attr, err)
	}
	return aggItem{val: b, sure: existenceCertain(v)}, nil
}

// aggBounds folds the items into the [certain, possible] interval of the
// aggregate over every possible world: each item's value ranges over its
// interval, and items that are not sure may be absent. Min/max/avg are
// conditional on the realized set being nonempty (worlds where every
// maybe-tuple is absent and no sure tuple exists are skipped); over an
// empty item list they return NaN bounds, which callers should treat as
// "no answer".
func aggBounds(kind AggKind, items []aggItem) Bounded {
	switch kind {
	case AggCount:
		return countBounds(items)
	case AggSum:
		return sumBounds(items)
	case AggAvg:
		return avgBounds(items)
	case AggMin:
		lo, hi := minBounds(items)
		return finish(lo, hi)
	case AggMax:
		lo, hi := minBounds(negate(items))
		return finish(-hi, -lo)
	default:
		return Bounded{Lo: math.NaN(), Hi: math.NaN()}
	}
}

func finish(lo, hi float64) Bounded {
	return Bounded{Lo: lo, Hi: hi, Certain: lo == hi}
}

func countBounds(items []aggItem) Bounded {
	sure := 0
	for _, it := range items {
		if it.sure {
			sure++
		}
	}
	return finish(float64(sure), float64(len(items)))
}

func sumBounds(items []aggItem) Bounded {
	var lo, hi float64
	for _, it := range items {
		if it.sure {
			lo += it.val.Lo
			hi += it.val.Hi
		} else {
			// A maybe-tuple contributes only when it helps the extreme.
			lo += math.Min(it.val.Lo, 0)
			hi += math.Max(it.val.Hi, 0)
		}
	}
	return finish(lo, hi)
}

// minBounds bounds the minimum over nonempty realized sets: the lower end
// is the smallest reachable value; the upper end is the tightest certain
// cap — a sure member's Hi when one exists, else the largest single-member
// world.
func minBounds(items []aggItem) (lo, hi float64) {
	if len(items) == 0 {
		return math.NaN(), math.NaN()
	}
	lo = math.Inf(1)
	sureHi := math.Inf(1)
	maxHi := math.Inf(-1)
	anySure := false
	for _, it := range items {
		lo = math.Min(lo, it.val.Lo)
		maxHi = math.Max(maxHi, it.val.Hi)
		if it.sure {
			anySure = true
			sureHi = math.Min(sureHi, it.val.Hi)
		}
	}
	if anySure {
		return lo, sureHi
	}
	return lo, maxHi
}

func negate(items []aggItem) []aggItem {
	out := make([]aggItem, len(items))
	for i, it := range items {
		out[i] = aggItem{val: Bounded{Lo: -it.val.Hi, Hi: -it.val.Lo}, sure: it.sure}
	}
	return out
}

// avgBounds bounds the average over nonempty realized sets exactly, by the
// greedy exchange argument: to minimize the average, every included item
// takes its lowest value, every sure item must be included, and a maybe
// item is worth including iff its low end is below the running average —
// scanning maybe-lows in ascending order reaches the global minimum. The
// upper end is symmetric.
func avgBounds(items []aggItem) Bounded {
	if len(items) == 0 {
		return Bounded{Lo: math.NaN(), Hi: math.NaN()}
	}
	lo := minAvg(items)
	hi := -minAvg(negate(items))
	return finish(lo, hi)
}

// minAvg returns the minimum achievable average of included item lows; the
// maximum side routes through here by negation.
func minAvg(items []aggItem) float64 {
	var sum float64
	var n int
	var maybes []float64
	for _, it := range items {
		if it.sure {
			sum += it.val.Lo
			n++
		} else {
			maybes = append(maybes, it.val.Lo)
		}
	}
	sort.Float64s(maybes)
	if n == 0 {
		// The realized set must be nonempty: seed with the smallest maybe.
		if len(maybes) == 0 {
			return math.NaN()
		}
		sum, n = maybes[0], 1
		maybes = maybes[1:]
	}
	for _, v := range maybes {
		if v*float64(n) < sum {
			sum += v
			n++
		} else {
			break
		}
	}
	return sum / float64(n)
}
