package query

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// GroupBySpec configures a grouped aggregation.
type GroupBySpec struct {
	// Keys name the grouping attributes; they must hold certain values
	// (int, float, or string) — grouping on uncertain keys is out of scope.
	Keys []string
	// Aggs are the aggregate columns computed per group.
	Aggs []Agg
}

func (s GroupBySpec) validate() error {
	if len(s.Keys) == 0 {
		return fmt.Errorf("group-by needs at least one key")
	}
	if len(s.Aggs) == 0 {
		return fmt.Errorf("group-by needs at least one aggregate")
	}
	seen := map[string]bool{}
	for _, k := range s.Keys {
		if seen[k] {
			return fmt.Errorf("duplicate group-by key %q", k)
		}
		seen[k] = true
	}
	for _, a := range s.Aggs {
		if err := a.validate(); err != nil {
			return err
		}
		if seen[a.name()] {
			return fmt.Errorf("duplicate group-by output attribute %q", a.name())
		}
		seen[a.name()] = true
	}
	return nil
}

// GroupBy is the grouped bounded-aggregate operator: input tuples are
// partitioned by their certain key attributes, and each group emits one
// fresh tuple holding the keys plus one Bounded attribute per aggregate —
// the [certain, possible] interval of the aggregate over every possible
// world of the group's tuples (see aggBounds). A TEP-filtered maybe-tuple
// is a maybe-member of its group, so counts get [certain, possible] bounds
// and value aggregates are conditional on the group being realized
// nonempty. GroupBy is blocking; output order is deterministic — ascending
// by the groups' first-seen input ordinal — and the operator follows the
// package error convention.
type GroupBy struct {
	In   Iterator
	Spec GroupBySpec

	state   opErr
	started bool
	out     []*Tuple
	pos     int
}

// NewGroupBy builds the operator.
func NewGroupBy(in Iterator, spec GroupBySpec) *GroupBy {
	return &GroupBy{In: in, Spec: spec}
}

// Next returns the next group's aggregate tuple.
func (g *GroupBy) Next() (*Tuple, error) {
	if err := g.state.sticky(); err != nil {
		return nil, err
	}
	if !g.started {
		g.started = true
		if err := g.build(); err != nil {
			return nil, err
		}
	}
	if g.pos >= len(g.out) {
		return nil, g.state.upstream(io.EOF)
	}
	t := g.out[g.pos]
	g.pos++
	return t, nil
}

// build drains the input, partitions, and aggregates.
func (g *GroupBy) build() error {
	if err := g.Spec.validate(); err != nil {
		return g.state.fail("group-by", err)
	}
	type group struct {
		keyVals []Value
		tuples  []*Tuple
	}
	groups := map[string]*group{}
	var order []string // group keys in first-seen order
	for {
		t, err := g.In.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return g.state.upstream(err)
		}
		key, keyVals, err := groupKey(t, g.Spec.Keys)
		if err != nil {
			return g.state.fail("group-by", err)
		}
		gr, ok := groups[key]
		if !ok {
			gr = &group{keyVals: keyVals}
			groups[key] = gr
			order = append(order, key)
		}
		gr.tuples = append(gr.tuples, t)
		g.state.seq++
	}
	for _, key := range order {
		gr := groups[key]
		names := make([]string, 0, len(g.Spec.Keys)+len(g.Spec.Aggs))
		vals := make([]Value, 0, len(g.Spec.Keys)+len(g.Spec.Aggs))
		names = append(names, g.Spec.Keys...)
		vals = append(vals, gr.keyVals...)
		items := make([]aggItem, len(gr.tuples))
		for _, agg := range g.Spec.Aggs {
			for i, t := range gr.tuples {
				it, err := itemOf(t, agg)
				if err != nil {
					return g.state.fail("group-by", fmt.Errorf("group %s: %w", key, err))
				}
				items[i] = it
			}
			names = append(names, agg.name())
			vals = append(vals, BoundedVal(aggBounds(agg.Kind, items)))
		}
		t, err := NewTuple(names, vals)
		if err != nil {
			return g.state.fail("group-by", err)
		}
		g.out = append(g.out, t)
	}
	return nil
}

// groupKey encodes the certain key attributes of t into a collision-free
// string and returns the key values for the output tuple.
func groupKey(t *Tuple, keys []string) (string, []Value, error) {
	var sb strings.Builder
	vals := make([]Value, len(keys))
	for i, name := range keys {
		v, err := t.Get(name)
		if err != nil {
			return "", nil, err
		}
		vals[i] = v
		switch v.Kind {
		case KindInt:
			sb.WriteByte('i')
			sb.WriteString(strconv.FormatInt(v.I, 10))
		case KindFloat:
			sb.WriteByte('f')
			sb.WriteString(strconv.FormatUint(math.Float64bits(v.F), 16))
		case KindString:
			sb.WriteByte('s')
			sb.WriteString(strconv.Itoa(len(v.S)))
			sb.WriteByte(':')
			sb.WriteString(v.S)
		default:
			return "", nil, fmt.Errorf("key %q has kind %s, want a certain value", name, v.Kind)
		}
		sb.WriteByte('|')
	}
	return sb.String(), vals, nil
}
