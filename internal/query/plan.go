package query

import (
	"fmt"

	"olgapro/internal/mc"
)

// TupleSeed derives the deterministic RNG seed for the tuple at stream
// ordinal seq from a plan's base seed, using the splitmix64 finalizer so
// adjacent ordinals yield statistically independent streams. It is the one
// seeding discipline shared by the serial planner (Plan.Apply, ApplyUDF
// with SeedPerTuple) and the parallel executor (internal/exec), which is
// what makes serial and parallel plans bit-identical.
func TupleSeed(base, seq int64) int64 {
	z := uint64(base) ^ (uint64(seq)+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// ApplySpec configures a Plan.Apply stage.
type ApplySpec struct {
	// Inputs names the attributes forming the UDF input vector, in order.
	Inputs []string
	// As names the appended result attribute.
	As string
	// Seed is the base of the per-tuple RNG seeds (TupleSeed).
	Seed int64
	// Predicate, when non-nil, applies the §5.5 TEP filter: engine-filtered
	// tuples are dropped and surviving distributions truncated to [A, B].
	Predicate *mc.Predicate
	// KeepEnvelope retains each result's confidence envelope, required by
	// downstream Window/GroupBy/TopK stages ranking on the result.
	KeepEnvelope bool
}

// Plan is the fluent builder over the operator set — the uniform query API:
//
//	out, err := query.From(rel).
//		Where(pred).
//		Apply(eng, query.ApplySpec{Inputs: []string{"x0"}, As: "y", Seed: 7, KeepEnvelope: true}).
//		Window(query.WindowSpec{Size: 8, Aggs: []query.Agg{query.Avg("y")}}).
//		TopK(query.RankSpec{By: "avg_y", K: 3, Desc: true}).
//		Run()
//
// Each step appends one operator; the first construction error is retained
// and reported by Iter/Run, so call sites chain without per-step checks.
// Apply evaluates serially with per-tuple seeding (TupleSeed), which is
// bit-identical to running the same stage on an exec.Pool at any worker
// count; use Pipe to splice a pool (or any custom operator) into the plan.
type Plan struct {
	it  Iterator
	err error
}

// From starts a plan scanning an in-memory relation.
func From(tuples []*Tuple) *Plan { return &Plan{it: NewScan(tuples)} }

// FromIterator starts a plan pulling from an existing operator tree.
func FromIterator(it Iterator) *Plan {
	p := &Plan{it: it}
	if it == nil {
		p.err = fmt.Errorf("query: plan: nil input iterator")
	}
	return p
}

// Where appends a certain-attribute filter.
func (p *Plan) Where(pred func(*Tuple) (bool, error)) *Plan {
	if p.err != nil {
		return p
	}
	if pred == nil {
		p.err = fmt.Errorf("query: plan: nil Where predicate")
		return p
	}
	p.it = &Select{In: p.it, Pred: pred}
	return p
}

// Project appends a projection onto the named attributes.
func (p *Plan) Project(names ...string) *Plan {
	if p.err != nil {
		return p
	}
	if len(names) == 0 {
		p.err = fmt.Errorf("query: plan: empty projection")
		return p
	}
	p.it = &Project{In: p.it, Names: names}
	return p
}

// Apply appends a serial, per-tuple-seeded UDF application stage.
func (p *Plan) Apply(eng Engine, spec ApplySpec) *Plan {
	if p.err != nil {
		return p
	}
	if eng == nil {
		p.err = fmt.Errorf("query: plan: nil engine")
		return p
	}
	if len(spec.Inputs) == 0 || spec.As == "" {
		p.err = fmt.Errorf("query: plan: apply needs Inputs and As")
		return p
	}
	p.it = &ApplyUDF{
		In:           p.it,
		Inputs:       spec.Inputs,
		Out:          spec.As,
		Engine:       eng,
		SeedPerTuple: true,
		Seed:         spec.Seed,
		Predicate:    spec.Predicate,
		KeepEnvelope: spec.KeepEnvelope,
	}
	return p
}

// Window appends a sliding-window bounded aggregation.
func (p *Plan) Window(spec WindowSpec) *Plan {
	if p.err != nil {
		return p
	}
	p.it = NewWindow(p.it, spec)
	return p
}

// GroupBy appends a grouped bounded aggregation.
func (p *Plan) GroupBy(spec GroupBySpec) *Plan {
	if p.err != nil {
		return p
	}
	p.it = NewGroupBy(p.it, spec)
	return p
}

// TopK appends a bounded top-k (K > 0) or full ranking (K ≤ 0).
func (p *Plan) TopK(spec RankSpec) *Plan {
	if p.err != nil {
		return p
	}
	if spec.By == "" {
		p.err = fmt.Errorf("query: plan: top-k needs By")
		return p
	}
	p.it = NewTopK(p.it, spec)
	return p
}

// OrderBy appends a full bounded ranking on the attribute's mean.
func (p *Plan) OrderBy(by string, desc bool) *Plan {
	return p.TopK(RankSpec{By: by, Desc: desc})
}

// Pipe splices a caller-built operator over the plan's current iterator —
// the hook for stages the builder doesn't construct itself, e.g. a parallel
// exec.Pool Apply stage or a custom operator.
func (p *Plan) Pipe(wrap func(Iterator) Iterator) *Plan {
	if p.err != nil {
		return p
	}
	if wrap == nil {
		p.err = fmt.Errorf("query: plan: nil Pipe stage")
		return p
	}
	it := wrap(p.it)
	if it == nil {
		p.err = fmt.Errorf("query: plan: Pipe stage returned nil")
		return p
	}
	p.it = it
	return p
}

// Iter returns the built operator tree, or the first construction error.
func (p *Plan) Iter() (Iterator, error) {
	if p.err != nil {
		return nil, p.err
	}
	return p.it, nil
}

// Run builds and drains the plan.
func (p *Plan) Run() ([]*Tuple, error) {
	it, err := p.Iter()
	if err != nil {
		return nil, err
	}
	return Drain(it)
}
