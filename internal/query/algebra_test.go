package query

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"

	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/ecdf"
	"olgapro/internal/kernel"
	"olgapro/internal/mc"
	"olgapro/internal/udf"
)

// envResult builds a KindResult value whose envelope pins the statistic
// interval to exactly [lo, hi] (degenerate one-sample CDFs), as AttachResult
// with KeepEnvelope would. The bounds the operators see therefore come only
// from the envelope, never from raw samples.
func envResult(lo, hi float64) Value {
	v := Result(ecdf.New([]float64{(lo + hi) / 2}), 0)
	v.Out = &core.Output{Envelope: &ecdf.Envelope{
		Mean:  ecdf.New([]float64{(lo + hi) / 2}),
		Lower: ecdf.New([]float64{lo}),
		Upper: ecdf.New([]float64{hi}),
	}}
	return v
}

// maybeResult is envResult for a TEP-filtered maybe-tuple: existence
// probability bounded away from both 0 and 1.
func maybeResult(lo, hi float64) Value {
	v := envResult(lo, hi)
	v.Out.TEPLower, v.Out.TEPUpper = 0.3, 0.8
	v.TEP = 0.5
	return v
}

func TestBoundedBasics(t *testing.T) {
	b := Exact(2)
	if !b.Certain || b.Lo != 2 || b.Hi != 2 || b.Width() != 0 {
		t.Fatalf("Exact: %+v", b)
	}
	if b.String() != "=2" {
		t.Errorf("Exact string: %q", b.String())
	}
	w := Bounded{Lo: 1, Hi: 3}
	if w.Width() != 2 || !w.Contains(1) || !w.Contains(3) || w.Contains(3.5) {
		t.Fatalf("interval ops: %+v", w)
	}
	if w.String() != "[1, 3]" {
		t.Errorf("interval string: %q", w.String())
	}
	if s := (Bounded{Lo: 1, Hi: 1}).String(); s != "[1, 1]" {
		t.Errorf("degenerate uncertain string: %q", s)
	}
}

func TestStatValidation(t *testing.T) {
	if err := MeanStat().validate(); err != nil {
		t.Fatal(err)
	}
	if err := QuantileStat(0.9).validate(); err != nil {
		t.Fatal(err)
	}
	if err := QuantileStat(1.5).validate(); err == nil {
		t.Error("quantile level out of range should fail")
	}
	if err := (Stat{Kind: StatKind(9)}).validate(); err == nil {
		t.Error("unknown stat kind should fail")
	}
	if MeanStat().String() != "mean" || QuantileStat(0.5).String() != "q0.50" {
		t.Errorf("stat names: %s, %s", MeanStat(), QuantileStat(0.5))
	}
}

func TestIntervalOf(t *testing.T) {
	if b, err := IntervalOf(Float(3), MeanStat()); err != nil || b != Exact(3) {
		t.Fatalf("float: %+v, %v", b, err)
	}
	if b, err := IntervalOf(Int(4), QuantileStat(0.5)); err != nil || b != Exact(4) {
		t.Fatalf("int: %+v, %v", b, err)
	}
	want := Bounded{Lo: 1, Hi: 2}
	if b, err := IntervalOf(BoundedVal(want), MeanStat()); err != nil || b != want {
		t.Fatalf("bounded passthrough: %+v, %v", b, err)
	}
	u := Uncertain(dist.Normal{Mu: 5, Sigma: 1})
	if b, err := IntervalOf(u, MeanStat()); err != nil || b != Exact(5) {
		t.Fatalf("uncertain mean: %+v, %v", b, err)
	}
	if _, err := IntervalOf(u, QuantileStat(0.9)); err == nil {
		t.Error("quantile of uncertain input should fail")
	}
	r := envResult(1, 3)
	if b, err := IntervalOf(r, MeanStat()); err != nil || b.Lo != 1 || b.Hi != 3 || b.Certain {
		t.Fatalf("result mean: %+v, %v", b, err)
	}
	if b, err := IntervalOf(r, QuantileStat(0.5)); err != nil || b.Lo != 1 || b.Hi != 3 {
		t.Fatalf("result quantile: %+v, %v", b, err)
	}
	// Missing envelope must point at the fix, not just fail.
	if _, err := IntervalOf(Result(ecdf.New([]float64{1}), 0), MeanStat()); err == nil ||
		!strings.Contains(err.Error(), "KeepEnvelope") {
		t.Errorf("envelope-less result error: %v", err)
	}
	if _, err := IntervalOf(Str("x"), MeanStat()); err == nil {
		t.Error("string statistic should fail")
	}
	if _, err := IntervalOf(Float(1), QuantileStat(-1)); err == nil {
		t.Error("invalid stat should fail before value dispatch")
	}
}

func TestExistenceCertain(t *testing.T) {
	cases := []struct {
		name string
		v    Value
		want bool
	}{
		{"certain float", Float(1), true},
		{"no predicate ran", envResult(0, 1), true},
		{"maybe", maybeResult(0, 1), false},
		{"proved present", func() Value {
			v := envResult(0, 1)
			v.Out.TEPLower, v.Out.TEPUpper = 1, 1
			v.TEP = 1
			return v
		}(), true},
		{"bare result no TEP", Result(ecdf.New([]float64{1}), 0), true},
		{"bare result sure TEP", Result(ecdf.New([]float64{1}), 1), true},
		{"bare result maybe TEP", Result(ecdf.New([]float64{1}), 0.4), false},
	}
	for _, c := range cases {
		if got := existenceCertain(c.v); got != c.want {
			t.Errorf("%s: existenceCertain = %v, want %v", c.name, got, c.want)
		}
	}
}

// --- Brute-force possible-worlds references ---
//
// A possible world of a set of aggItems picks, independently per item,
// whether each maybe-item exists and which value in its interval it takes.
// Every aggregate here is monotone in each included value, so the extreme
// worlds sit at interval endpoints: enumerating {lo, hi} per item times
// existence subsets covers the exact min and max of the aggregate.

// worlds enumerates endpoint worlds of items and calls f with each realized
// multiset of values.
func worlds(items []aggItem, f func(vals []float64)) {
	n := len(items)
	vals := make([]float64, 0, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			f(vals)
			return
		}
		choices := []float64{items[i].val.Lo, items[i].val.Hi}
		if items[i].val.Lo == items[i].val.Hi {
			choices = choices[:1]
		}
		for _, v := range choices {
			vals = append(vals, v)
			rec(i + 1)
			vals = vals[:len(vals)-1]
		}
		if !items[i].sure { // world where the maybe-item is absent
			rec(i + 1)
		}
	}
	rec(0)
}

// refAggBounds is the brute-force [min, max] of the aggregate over endpoint
// worlds; NaN bounds when no world yields an answer.
func refAggBounds(kind AggKind, items []aggItem) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	any := false
	worlds(items, func(vals []float64) {
		var v float64
		switch kind {
		case AggCount:
			v = float64(len(vals))
		case AggSum:
			for _, x := range vals {
				v += x
			}
		case AggAvg, AggMin, AggMax:
			if len(vals) == 0 {
				return // conditional on a nonempty realized set
			}
			switch kind {
			case AggAvg:
				for _, x := range vals {
					v += x
				}
				v /= float64(len(vals))
			case AggMin:
				v = math.Inf(1)
				for _, x := range vals {
					v = math.Min(v, x)
				}
			case AggMax:
				v = math.Inf(-1)
				for _, x := range vals {
					v = math.Max(v, x)
				}
			}
		}
		any = true
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	})
	if !any {
		return math.NaN(), math.NaN()
	}
	return lo, hi
}

func randItems(rng *rand.Rand, n int) []aggItem {
	items := make([]aggItem, n)
	for i := range items {
		// Small integer grid forces ties and sign changes.
		a := float64(rng.Intn(9) - 4)
		b := a + float64(rng.Intn(4))
		items[i] = aggItem{val: Bounded{Lo: a, Hi: b, Certain: a == b}, sure: rng.Intn(2) == 0}
	}
	return items
}

func TestAggBoundsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	kinds := []AggKind{AggCount, AggSum, AggAvg, AggMin, AggMax}
	for trial := 0; trial < 300; trial++ {
		items := randItems(rng, rng.Intn(6))
		for _, kind := range kinds {
			got := aggBounds(kind, items)
			wantLo, wantHi := refAggBounds(kind, items)
			if math.IsNaN(wantLo) {
				if !math.IsNaN(got.Lo) || !math.IsNaN(got.Hi) {
					t.Fatalf("trial %d %s: got %+v, want NaN bounds (items %+v)", trial, kind, got, items)
				}
				continue
			}
			if math.Abs(got.Lo-wantLo) > 1e-12 || math.Abs(got.Hi-wantHi) > 1e-12 {
				t.Fatalf("trial %d %s: got [%g, %g], want [%g, %g] (items %+v)",
					trial, kind, got.Lo, got.Hi, wantLo, wantHi, items)
			}
			if got.Certain != (got.Lo == got.Hi) {
				t.Fatalf("trial %d %s: Certain flag %v for [%g, %g]", trial, kind, got.Certain, got.Lo, got.Hi)
			}
		}
	}
}

// refTopK returns the top-k index set of one world: tuples ranked by value
// descending, ties broken by smaller ordinal.
func refTopK(vals []float64, ords []int64, k int) map[int64]int {
	type entry struct {
		v   float64
		ord int64
	}
	entries := make([]entry, len(vals))
	for i := range vals {
		entries[i] = entry{vals[i], ords[i]}
	}
	for i := 0; i < len(entries); i++ { // tiny n: selection sort is clearest
		best := i
		for j := i + 1; j < len(entries); j++ {
			if entries[j].v > entries[best].v ||
				(entries[j].v == entries[best].v && entries[j].ord < entries[best].ord) {
				best = j
			}
		}
		entries[i], entries[best] = entries[best], entries[i]
	}
	if k > len(entries) {
		k = len(entries)
	}
	ranks := map[int64]int{}
	for i := 0; i < k; i++ {
		ranks[entries[i].ord] = i + 1
	}
	return ranks
}

// topKWorlds enumerates endpoint worlds of the rank keys: per tuple, an
// endpoint value plus (for maybe-tuples) absence.
func topKWorlds(keys []RankKey, f func(vals []float64, ords []int64)) {
	var vals []float64
	var ords []int64
	var rec func(i int)
	rec = func(i int) {
		if i == len(keys) {
			f(vals, ords)
			return
		}
		choices := []float64{keys[i].Lo, keys[i].Hi}
		if keys[i].Lo == keys[i].Hi {
			choices = choices[:1]
		}
		for _, v := range choices {
			vals = append(vals, v)
			ords = append(ords, keys[i].Ord)
			rec(i + 1)
			vals, ords = vals[:len(vals)-1], ords[:len(ords)-1]
		}
		if !keys[i].Sure {
			rec(i + 1)
		}
	}
	rec(0)
}

// TestTopKContainmentBruteForce is the possible-worlds property test for
// ranking: in every endpoint world, certain members ⊆ the world's true
// top-k ⊆ possible members, and each present tuple's true rank falls inside
// its emitted [best, worst] interval.
func TestTopKContainmentBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 250; trial++ {
		n := 1 + rng.Intn(5)
		k := 1 + rng.Intn(n)
		desc := rng.Intn(2) == 0
		tuples := make([]*Tuple, n)
		keys := make([]RankKey, n)
		for i := range tuples {
			a := float64(rng.Intn(7) - 3)
			b := a + float64(rng.Intn(3))
			sure := rng.Intn(3) > 0
			v := envResult(a, b)
			if !sure {
				v = maybeResult(a, b)
			}
			tuples[i] = MustTuple([]string{"id", "y"}, []Value{Int(int64(i)), v})
			keys[i] = RankKey{Lo: a, Hi: b, Ord: int64(i), Sure: sure}
			if !desc {
				keys[i].Lo, keys[i].Hi = -b, -a
			}
		}

		out, err := Drain(NewTopK(NewScan(tuples), RankSpec{By: "y", K: k, Desc: desc}))
		if err != nil {
			t.Fatal(err)
		}
		possible := map[int64]Bounded{}
		certain := map[int64]bool{}
		for _, tp := range out {
			ord := tp.MustGet("id").I
			b := tp.MustGet("rank").B
			possible[ord] = b
			if b.Certain {
				certain[ord] = true
			}
		}

		topKWorlds(keys, func(vals []float64, ords []int64) {
			truth := refTopK(vals, ords, k)
			for ord, rank := range truth {
				b, ok := possible[ord]
				if !ok {
					t.Fatalf("trial %d (k=%d desc=%v): world member %d missing from possible set %v (keys %+v)",
						trial, k, desc, ord, possible, keys)
				}
				if float64(rank) < b.Lo || float64(rank) > b.Hi {
					t.Fatalf("trial %d: tuple %d world rank %d outside bounds %v (keys %+v)",
						trial, ord, rank, b, keys)
				}
			}
			for ord := range certain {
				present := false
				for _, o := range ords {
					if o == ord {
						present = true
						break
					}
				}
				if !present {
					return // certain member is a sure tuple; absent only in impossible worlds
				}
				if _, ok := truth[ord]; !ok {
					t.Fatalf("trial %d (k=%d desc=%v): certain member %d outside world top-k %v (world %v %v, keys %+v)",
						trial, k, desc, ord, truth, vals, ords, keys)
				}
			}
		})
	}
}

func TestTopKCertainInput(t *testing.T) {
	rel := []*Tuple{
		MustTuple([]string{"id", "v"}, []Value{Int(0), Float(10)}),
		MustTuple([]string{"id", "v"}, []Value{Int(1), Float(30)}),
		MustTuple([]string{"id", "v"}, []Value{Int(2), Float(20)}),
	}
	out, err := Drain(NewTopK(NewScan(rel), RankSpec{By: "v", K: 2, Desc: true, As: "r"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("certain top-2 emitted %d tuples", len(out))
	}
	if out[0].MustGet("id").I != 1 || out[1].MustGet("id").I != 2 {
		t.Fatalf("order: %v", out)
	}
	for i, tp := range out {
		b := tp.MustGet("r").B
		if !b.Certain || b.Lo != float64(i+1) || b.Hi != float64(i+1) {
			t.Fatalf("rank %d: %+v", i, b)
		}
	}
	// K ≤ 0 ranks everything (OrderBy), ascending.
	all, err := Drain(NewTopK(NewScan(rel), RankSpec{By: "v"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0].MustGet("id").I != 0 || all[2].MustGet("id").I != 1 {
		t.Fatalf("order-by asc: %v", all)
	}
}

func windowTuples(items []aggItem) []*Tuple {
	out := make([]*Tuple, len(items))
	for i, it := range items {
		v := envResult(it.val.Lo, it.val.Hi)
		if !it.sure {
			v = maybeResult(it.val.Lo, it.val.Hi)
		}
		out[i] = MustTuple([]string{"y"}, []Value{v})
	}
	return out
}

func TestWindowMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	aggs := []Agg{Count(), Sum("y"), Avg("y"), Min("y"), Max("y")}
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(8)
		size := 1 + rng.Intn(4)
		step := 1 + rng.Intn(3)
		items := randItems(rng, n)
		it := NewWindow(NewScan(windowTuples(items)), WindowSpec{Size: size, Step: step, Aggs: aggs})
		out, err := Drain(it)
		if err != nil {
			t.Fatal(err)
		}
		var wantWindows int
		if n >= size {
			wantWindows = (n-size)/step + 1
		}
		if len(out) != wantWindows {
			t.Fatalf("trial %d: %d windows, want %d (n=%d size=%d step=%d)", trial, len(out), wantWindows, n, size, step)
		}
		for w, tp := range out {
			start := w * step
			if tp.MustGet("win_start").I != int64(start) || tp.MustGet("win_end").I != int64(start+size) {
				t.Fatalf("trial %d window %d: position [%v, %v), want [%d, %d)", trial, w,
					tp.MustGet("win_start").I, tp.MustGet("win_end").I, start, start+size)
			}
			slice := items[start : start+size]
			for _, agg := range aggs {
				got := tp.MustGet(agg.name()).B
				wantLo, wantHi := refAggBounds(agg.Kind, slice)
				if math.Abs(got.Lo-wantLo) > 1e-12 || math.Abs(got.Hi-wantHi) > 1e-12 {
					t.Fatalf("trial %d window %d %s: got [%g, %g], want [%g, %g]",
						trial, w, agg.name(), got.Lo, got.Hi, wantLo, wantHi)
				}
			}
		}
	}
}

func TestGroupByMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	aggs := []Agg{Count(), Sum("y"), Avg("y"), Min("y"), Max("y")}
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(8)
		items := randItems(rng, n)
		labels := make([]string, n)
		byGroup := map[string][]aggItem{}
		var rel []*Tuple
		for i, tp := range windowTuples(items) {
			labels[i] = fmt.Sprintf("g%d", rng.Intn(3))
			byGroup[labels[i]] = append(byGroup[labels[i]], items[i])
			rel = append(rel, tp.With("g", Str(labels[i])))
		}
		out, err := Drain(NewGroupBy(NewScan(rel), GroupBySpec{Keys: []string{"g"}, Aggs: aggs}))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(byGroup) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(out), len(byGroup))
		}
		seen := map[string]bool{}
		for _, tp := range out {
			g := tp.MustGet("g").S
			if seen[g] {
				t.Fatalf("trial %d: duplicate group %q", trial, g)
			}
			seen[g] = true
			for _, agg := range aggs {
				got := tp.MustGet(agg.name()).B
				wantLo, wantHi := refAggBounds(agg.Kind, byGroup[g])
				if math.Abs(got.Lo-wantLo) > 1e-12 || math.Abs(got.Hi-wantHi) > 1e-12 {
					t.Fatalf("trial %d group %q %s: got [%g, %g], want [%g, %g]",
						trial, g, agg.name(), got.Lo, got.Hi, wantLo, wantHi)
				}
			}
		}
	}
}

func TestGroupByFirstSeenOrderAndKeyKinds(t *testing.T) {
	rel := []*Tuple{
		MustTuple([]string{"g", "i", "y"}, []Value{Str("b"), Int(1), Float(1)}),
		MustTuple([]string{"g", "i", "y"}, []Value{Str("a"), Int(2), Float(2)}),
		MustTuple([]string{"g", "i", "y"}, []Value{Str("b"), Int(1), Float(3)}),
	}
	out, err := Drain(NewGroupBy(NewScan(rel), GroupBySpec{Keys: []string{"g", "i"}, Aggs: []Agg{Count()}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].MustGet("g").S != "b" || out[1].MustGet("g").S != "a" {
		t.Fatalf("first-seen order: %v", out)
	}
	if b := out[0].MustGet("count").B; b != Exact(2) {
		t.Fatalf("count: %+v", b)
	}
	// Uncertain grouping keys are out of scope and must fail loudly.
	bad := []*Tuple{MustTuple([]string{"g", "y"}, []Value{Uncertain(dist.Normal{Mu: 0, Sigma: 1}), Float(1)})}
	_, err = Drain(NewGroupBy(NewScan(bad), GroupBySpec{Keys: []string{"g"}, Aggs: []Agg{Count()}}))
	if err == nil || !strings.Contains(err.Error(), "group-by") {
		t.Fatalf("uncertain key error: %v", err)
	}
}

// --- Error convention (PR 3 rule) for the bounded operators ---

// errAfter yields n good tuples, then a fixed error forever.
type errAfter struct {
	n   int
	err error
	pos int
}

func (e *errAfter) Next() (*Tuple, error) {
	if e.pos < e.n {
		e.pos++
		return MustTuple([]string{"y"}, []Value{Float(float64(e.pos))}), nil
	}
	return nil, e.err
}

func TestBoundedOperatorsErrorConvention(t *testing.T) {
	upstream := errors.New("upstream exploded")
	cases := []struct {
		name  string
		build func(in Iterator) Iterator
		// 0-based ordinal the operator reports for the offending tuple; the
		// blocking window reports its consumption position (tuples buffered).
		ordinal int
	}{
		{"top-k", func(in Iterator) Iterator { return NewTopK(in, RankSpec{By: "y"}) }, 1},
		{"window", func(in Iterator) Iterator {
			return NewWindow(in, WindowSpec{Size: 2, Aggs: []Agg{Sum("y")}})
		}, 2},
		{"group-by", func(in Iterator) Iterator {
			return NewGroupBy(in, GroupBySpec{Keys: []string{"y"}, Aggs: []Agg{Count()}})
		}, 1},
	}
	for _, c := range cases {
		// Upstream errors propagate unmodified and stick. The streaming
		// window may emit complete windows first; drain to the error.
		it := c.build(&errAfter{n: 3, err: upstream})
		var err error
		for err == nil {
			_, err = it.Next()
		}
		if !errors.Is(err, upstream) || err.Error() != upstream.Error() {
			t.Fatalf("%s: upstream error modified: %v", c.name, err)
		}
		if _, err2 := it.Next(); err2 != err {
			t.Fatalf("%s: error not sticky: %v then %v", c.name, err, err2)
		}

		// The operator's own failure is wrapped exactly once, with the
		// operator name and tuple ordinal.
		bad := []*Tuple{
			MustTuple([]string{"y"}, []Value{Float(1)}),
			MustTuple([]string{"z"}, []Value{Float(2)}), // missing "y"
		}
		it = c.build(NewScan(bad))
		var ferr error
		for ferr == nil {
			_, ferr = it.Next()
		}
		if ferr == io.EOF {
			t.Fatalf("%s: bad input drained without error", c.name)
		}
		// Wrapped exactly once: one "tuple #" marker, added by this operator.
		// (The inner cause may carry its own package prefix, e.g. Tuple.Get.)
		prefix := fmt.Sprintf("query: %s: tuple #%d: ", c.name, c.ordinal)
		if !strings.HasPrefix(ferr.Error(), prefix) || strings.Count(ferr.Error(), "tuple #") != 1 {
			t.Fatalf("%s: wrapping %q, want single %q prefix", c.name, ferr, prefix)
		}
		if _, again := it.Next(); again != ferr {
			t.Fatalf("%s: own failure not sticky", c.name)
		}
	}
}

func TestWindowSpecValidation(t *testing.T) {
	in := NewScan(nil)
	if _, err := Drain(NewWindow(in, WindowSpec{Size: 0, Aggs: []Agg{Count()}})); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := Drain(NewWindow(in, WindowSpec{Size: 2})); err == nil {
		t.Error("no aggregates should fail")
	}
	dup := WindowSpec{Size: 2, Aggs: []Agg{Count(), Sum("y").Named("count")}}
	if _, err := Drain(NewWindow(in, dup)); err == nil {
		t.Error("duplicate output names should fail")
	}
	reserved := WindowSpec{Size: 2, Aggs: []Agg{Sum("y").Named("win_start")}}
	if _, err := Drain(NewWindow(in, reserved)); err == nil {
		t.Error("reserved output name should fail")
	}
}

func TestAggDefaults(t *testing.T) {
	if Count().name() != "count" || Sum("y").name() != "sum_y" || Avg("y").Named("a").name() != "a" {
		t.Error("agg naming defaults")
	}
	if err := (Agg{Kind: AggSum}).validate(); err == nil {
		t.Error("sum without attribute should fail")
	}
	if err := (Agg{Kind: AggKind(9)}).validate(); err == nil {
		t.Error("unknown aggregate kind should fail")
	}
	if got := Max("y").WithStat(QuantileStat(0.9)).Stat; got != QuantileStat(0.9) {
		t.Errorf("WithStat: %+v", got)
	}
}

func TestPlanEndToEnd(t *testing.T) {
	rel := make([]*Tuple, 8)
	for i := range rel {
		rel[i] = MustTuple([]string{"id", "x0"},
			[]Value{Int(int64(i)), Uncertain(dist.Normal{Mu: float64(i), Sigma: 0.05})})
	}
	identity := udf.FuncOf{D: 1, F: func(x []float64) float64 { return x[0] }}
	eval, err := core.NewEvaluator(identity, core.Config{Kernel: kernel.NewSqExp(4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	out, err := From(rel).
		Where(func(t *Tuple) (bool, error) { return t.MustGet("id").I != 0, nil }).
		Apply(NewEvaluatorEngine(eval), ApplySpec{Inputs: []string{"x0"}, As: "y", Seed: 5, KeepEnvelope: true}).
		TopK(RankSpec{By: "y", K: 3, Desc: true}).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) < 3 {
		t.Fatalf("top-3 emitted %d tuples", len(out))
	}
	// The best possible member must be the largest input (id 7) with a rank
	// interval starting at 1.
	if out[0].MustGet("id").I != 7 || out[0].MustGet("rank").B.Lo != 1 {
		t.Fatalf("head of ranking: %v", out[0])
	}
	// Apply is serial but per-tuple-seeded: rerunning the plan is
	// bit-identical.
	again, err := From(rel).
		Where(func(t *Tuple) (bool, error) { return t.MustGet("id").I != 0, nil }).
		Apply(NewEvaluatorEngine(eval), ApplySpec{Inputs: []string{"x0"}, As: "y", Seed: 5, KeepEnvelope: true}).
		TopK(RankSpec{By: "y", K: 3, Desc: true}).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(out) {
		t.Fatalf("replay size %d vs %d", len(again), len(out))
	}
	for i := range out {
		a, b := out[i], again[i]
		if a.MustGet("id").I != b.MustGet("id").I || a.MustGet("rank").B != b.MustGet("rank").B {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestPlanBuilderErrors(t *testing.T) {
	identity := udf.FuncOf{D: 1, F: func(x []float64) float64 { return x[0] }}
	eng := NewMCEngine(identity, mc.Config{Eps: 0.2, Delta: 0.2})
	cases := map[string]*Plan{
		"nil iterator":     FromIterator(nil),
		"nil where":        From(nil).Where(nil),
		"empty projection": From(nil).Project(),
		"nil engine":       From(nil).Apply(nil, ApplySpec{Inputs: []string{"x"}, As: "y"}),
		"apply no inputs":  From(nil).Apply(eng, ApplySpec{As: "y"}),
		"topk no by":       From(nil).TopK(RankSpec{K: 1}),
		"nil pipe":         From(nil).Pipe(nil),
		"pipe nil result":  From(nil).Pipe(func(Iterator) Iterator { return nil }),
	}
	for name, p := range cases {
		if _, err := p.Run(); err == nil {
			t.Errorf("%s: expected construction error", name)
		}
		// Construction errors are retained: later stages don't panic.
		if _, err := p.Project("x").Run(); err == nil {
			t.Errorf("%s: error not retained through later stages", name)
		}
	}

	// MC results carry no envelope, so ranking on them must fail with the
	// KeepEnvelope hint at run time.
	rel := []*Tuple{MustTuple([]string{"x0"}, []Value{Uncertain(dist.Normal{Mu: 1, Sigma: 0.1})})}
	_, err := From(rel).
		Apply(eng, ApplySpec{Inputs: []string{"x0"}, As: "y", Seed: 1, KeepEnvelope: true}).
		OrderBy("y", true).
		Run()
	if err == nil || !strings.Contains(err.Error(), "KeepEnvelope") {
		t.Fatalf("ranking on MC result: %v", err)
	}
}
