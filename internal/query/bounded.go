package query

import (
	"fmt"
	"math"
)

// Bounded is a [certain, possible] interval answer in the style of
// range-annotated values (AU-DBs): the true answer — under every possible
// world consistent with the inputs' uncertainty — lies in [Lo, Hi].
// Certain records whether the interval is tight enough to pin the answer
// exactly; for TopK rank attributes it instead records certain *membership*
// in the answer set (the rank itself may still be a nondegenerate interval).
type Bounded struct {
	Lo, Hi  float64
	Certain bool
}

// Exact wraps a certainly known value.
func Exact(v float64) Bounded { return Bounded{Lo: v, Hi: v, Certain: true} }

// Width returns Hi − Lo.
func (b Bounded) Width() float64 { return b.Hi - b.Lo }

// Contains reports whether x lies in [Lo, Hi].
func (b Bounded) Contains(x float64) bool { return b.Lo <= x && x <= b.Hi }

// String renders the interval compactly.
func (b Bounded) String() string {
	if b.Lo == b.Hi {
		if b.Certain {
			return fmt.Sprintf("=%g", b.Lo)
		}
		return fmt.Sprintf("[%g, %g]", b.Lo, b.Hi)
	}
	return fmt.Sprintf("[%g, %g]", b.Lo, b.Hi)
}

// StatKind selects the summary statistic a rank or aggregate operator
// extracts from an uncertain value.
type StatKind int

const (
	// StatMean ranks/aggregates on the output mean.
	StatMean StatKind = iota
	// StatQuantile ranks/aggregates on the output p-quantile.
	StatQuantile
)

// Stat is a summary statistic over an uncertain value: the quantity whose
// [certain, possible] interval IntervalOf derives from the lower/upper
// confidence envelopes. The zero value is StatMean.
type Stat struct {
	Kind StatKind
	P    float64 // quantile level, for StatQuantile
}

// MeanStat is the mean statistic.
func MeanStat() Stat { return Stat{Kind: StatMean} }

// QuantileStat is the p-quantile statistic.
func QuantileStat(p float64) Stat { return Stat{Kind: StatQuantile, P: p} }

func (s Stat) validate() error {
	switch s.Kind {
	case StatMean:
		return nil
	case StatQuantile:
		if !(s.P >= 0 && s.P <= 1) {
			return fmt.Errorf("quantile level %g outside [0, 1]", s.P)
		}
		return nil
	default:
		return fmt.Errorf("unknown statistic kind %d", int(s.Kind))
	}
}

// String names the statistic ("mean", "q0.50").
func (s Stat) String() string {
	if s.Kind == StatQuantile {
		return fmt.Sprintf("q%.2f", s.P)
	}
	return "mean"
}

// IntervalOf derives the [certain, possible] interval of the statistic of
// one attribute value. The bounds come exclusively from the lower/upper
// confidence envelopes (never from raw output samples):
//
//   - certain numerics are exact points;
//   - a Bounded value is already an interval;
//   - an uncertain input attribute's mean is known exactly from its
//     distribution (only UDF outputs carry emulator uncertainty);
//   - a UDF result uses ecdf.Envelope.MeanBounds / QuantileBounds, so it
//     needs the envelope retained — evaluate with KeepEnvelope set (see
//     ApplyUDF / exec.Options), otherwise IntervalOf reports how to fix the
//     plan. MC-only results have no envelope and are rejected for the same
//     reason: their samples carry no per-function bound.
func IntervalOf(v Value, s Stat) (Bounded, error) {
	if err := s.validate(); err != nil {
		return Bounded{}, err
	}
	switch v.Kind {
	case KindFloat:
		return Exact(v.F), nil
	case KindInt:
		return Exact(float64(v.I)), nil
	case KindBounded:
		return v.B, nil
	case KindUncertain:
		if s.Kind != StatMean {
			return Bounded{}, fmt.Errorf("statistic %s unsupported on uncertain input attributes (only mean)", s)
		}
		return Exact(v.D.Mean()), nil
	case KindResult:
		if v.Out == nil || v.Out.Envelope == nil {
			return Bounded{}, fmt.Errorf("result value carries no confidence envelope; evaluate with KeepEnvelope to rank or aggregate on it")
		}
		env := v.Out.Envelope
		var lo, hi float64
		switch s.Kind {
		case StatMean:
			lo, hi = env.MeanBounds()
		default:
			lo, hi = env.QuantileBounds(s.P)
		}
		if math.IsNaN(lo) || math.IsNaN(hi) {
			return Bounded{}, fmt.Errorf("envelope %s bounds are NaN", s)
		}
		return Bounded{Lo: lo, Hi: hi, Certain: lo == hi}, nil
	default:
		return Bounded{}, fmt.Errorf("cannot take %s of a %s value", s, v.Kind)
	}
}

// existenceCertain reports whether a value's tuple certainly exists in
// every possible world. Non-result values always do. A result value is a
// maybe-tuple only when a TEP predicate was applied and its envelope lower
// bound on the existence probability is below 1; AttachResult leaves
// TEPLower/TEPUpper/TEP all zero when no predicate ran, which is the
// certain-existence sentinel here.
func existenceCertain(v Value) bool {
	if v.Kind != KindResult {
		return true
	}
	if v.Out != nil {
		if v.Out.TEPLower >= 1 {
			return true
		}
		return v.Out.TEPLower == 0 && v.Out.TEPUpper == 0 && v.TEP == 0
	}
	return v.TEP == 0 || v.TEP >= 1
}
