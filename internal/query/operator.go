package query

import (
	"fmt"
	"io"
	"math/rand"

	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/mc"
)

// Iterator is the Volcano-model pull interface. Next returns io.EOF after
// the last tuple.
//
// Error convention (shared with internal/exec): the first error wins and is
// sticky — once Next returns a non-nil error, every subsequent call returns
// that same error without pulling more input. io.EOF passes through
// unwrapped. An error raised by an operator's own work is wrapped exactly
// once, with the operator name and the 0-based ordinal of the offending
// input tuple ("query: apply \"f\": tuple #17: ..."); errors arriving from
// upstream propagate unmodified, since they were wrapped at their source.
type Iterator interface {
	Next() (*Tuple, error)
}

// Drain pulls every tuple from it until io.EOF. On error the partial
// prefix is discarded: Drain returns (nil, err) with the first error in
// stream order, already wrapped once at its source per the Iterator error
// convention — Drain itself adds no wrapping.
func Drain(it Iterator) ([]*Tuple, error) {
	var out []*Tuple
	for {
		t, err := it.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// opErr implements the package error convention for one operator: the first
// error (io.EOF included) is retained and every later Next returns it
// unchanged.
type opErr struct {
	seq int64 // input tuples consumed so far; the ordinal used in wrapping
	err error
}

// sticky returns the retained error, or nil when iteration may continue.
func (o *opErr) sticky() error { return o.err }

// upstream retains an error from In.Next (or io.EOF) unmodified.
func (o *opErr) upstream(err error) error {
	o.err = err
	return o.err
}

// fail wraps the operator's own failure on the current input tuple.
func (o *opErr) fail(op string, err error) error {
	o.err = fmt.Errorf("query: %s: tuple #%d: %w", op, o.seq, err)
	return o.err
}

// --- Scan ---

// Scan iterates over an in-memory relation.
type Scan struct {
	tuples []*Tuple
	pos    int
}

// NewScan returns a scan over tuples.
func NewScan(tuples []*Tuple) *Scan { return &Scan{tuples: tuples} }

// Next returns the next tuple or io.EOF.
func (s *Scan) Next() (*Tuple, error) {
	if s.pos >= len(s.tuples) {
		return nil, io.EOF
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, nil
}

// --- Select ---

// Select filters tuples by a predicate on certain attributes.
type Select struct {
	In   Iterator
	Pred func(*Tuple) (bool, error)

	state opErr
}

// Next returns the next passing tuple.
func (s *Select) Next() (*Tuple, error) {
	if err := s.state.sticky(); err != nil {
		return nil, err
	}
	for {
		t, err := s.In.Next()
		if err != nil {
			return nil, s.state.upstream(err)
		}
		ok, err := s.Pred(t)
		if err != nil {
			return nil, s.state.fail("select", err)
		}
		s.state.seq++
		if ok {
			return t, nil
		}
	}
}

// --- Project ---

// Project keeps only the named attributes, in order.
type Project struct {
	In    Iterator
	Names []string

	state opErr
}

// Next returns the projected next tuple.
func (p *Project) Next() (*Tuple, error) {
	if err := p.state.sticky(); err != nil {
		return nil, err
	}
	t, err := p.In.Next()
	if err != nil {
		return nil, p.state.upstream(err)
	}
	vals := make([]Value, len(p.Names))
	for i, n := range p.Names {
		v, err := t.Get(n)
		if err != nil {
			return nil, p.state.fail("project", err)
		}
		vals[i] = v
	}
	out, err := NewTuple(p.Names, vals)
	if err != nil {
		return nil, p.state.fail("project", err)
	}
	p.state.seq++
	return out, nil
}

// --- CrossJoin ---

// CrossJoin produces the cross product of two in-memory relations with
// prefixed attribute names, as needed by the self-join of query Q2.
type CrossJoin struct {
	left, right           []*Tuple
	leftPrefix, rightPref string
	i, j                  int
	skipSelfPairs         bool

	state opErr
}

// NewCrossJoin builds a cross join; when skipSelfPairs is true, pairs (i, j)
// with j ≤ i are omitted, giving unordered distinct pairs — the usual form
// of the Q2 self-join.
func NewCrossJoin(left []*Tuple, leftPrefix string, right []*Tuple, rightPrefix string, skipSelfPairs bool) *CrossJoin {
	return &CrossJoin{
		left: left, right: right,
		leftPrefix: leftPrefix, rightPref: rightPrefix,
		skipSelfPairs: skipSelfPairs,
	}
}

// Next returns the next joined tuple.
func (c *CrossJoin) Next() (*Tuple, error) {
	if err := c.state.sticky(); err != nil {
		return nil, err
	}
	for {
		if c.i >= len(c.left) {
			return nil, c.state.upstream(io.EOF)
		}
		if c.j >= len(c.right) {
			c.i++
			c.j = 0
			continue
		}
		i, j := c.i, c.j
		c.j++
		if c.skipSelfPairs && j <= i {
			continue
		}
		t, err := Concat(c.left[i], c.leftPrefix, c.right[j], c.rightPref)
		if err != nil {
			return nil, c.state.fail("cross-join", fmt.Errorf("pair (%d,%d): %w", i, j, err))
		}
		c.state.seq++
		return t, nil
	}
}

// --- UDF application ---

// ApplyUDF evaluates a UDF over the named input attributes of each tuple and
// appends the output distribution as a new attribute. Tuples the engine
// filters (predicate TEP below threshold) are dropped from the stream —
// this is the WHERE clause of query Q2. For surviving tuples under a
// predicate, the appended distribution is *truncated* to the predicate
// interval with the tuple existence probability attached, matching the
// paper's semantics ("truncates the distribution ... to the region [l, u],
// and hence yields a tuple existence probability").
type ApplyUDF struct {
	In Iterator
	// Inputs names the attributes forming the UDF input vector, in order.
	// Uncertain attributes contribute their distribution; certain numeric
	// attributes contribute a Constant.
	Inputs []string
	// Out is the name of the appended result attribute.
	Out string
	// Engine evaluates the UDF.
	Engine Engine
	// Rng drives sampling when SeedPerTuple is false.
	Rng *rand.Rand
	// SeedPerTuple switches sampling to the parallel executor's seeding
	// discipline: each input tuple is evaluated with a fresh rand.Rand
	// seeded by TupleSeed(Seed, ordinal), so a serial plan reproduces
	// exec.Pool output bit-for-bit at any worker count.
	SeedPerTuple bool
	// Seed is the base of the per-tuple seeds when SeedPerTuple is set.
	Seed int64
	// Predicate, when non-nil, truncates surviving result distributions to
	// [A, B]. It should match the predicate configured on the engine (the
	// engine's own predicate drives the drop decision; this one drives the
	// truncation of kept tuples).
	Predicate *mc.Predicate
	// KeepEnvelope retains Out.Envelope on attached results, which the
	// bounded operators (TopK/Window/GroupBy) require to derive intervals.
	KeepEnvelope bool

	// Dropped counts tuples removed by filtering.
	Dropped int

	state opErr
}

// Next returns the next surviving tuple with the UDF result attached.
func (a *ApplyUDF) Next() (*Tuple, error) {
	if err := a.state.sticky(); err != nil {
		return nil, err
	}
	for {
		t, err := a.In.Next()
		if err != nil {
			return nil, a.state.upstream(err)
		}
		input, err := InputVectorFor(t, a.Inputs)
		if err != nil {
			return nil, a.state.fail(fmt.Sprintf("apply %q", a.Out), err)
		}
		rng := a.Rng
		if a.SeedPerTuple {
			rng = rand.New(rand.NewSource(TupleSeed(a.Seed, a.state.seq)))
		}
		out, err := a.Engine.EvalInput(input, rng)
		if err != nil {
			return nil, a.state.fail(fmt.Sprintf("apply %q", a.Out), err)
		}
		a.state.seq++
		result := AttachResult(t, out, a.Out, a.Predicate, a.KeepEnvelope)
		if result == nil {
			a.Dropped++
			continue
		}
		return result, nil
	}
}

// InputVectorFor assembles the joint UDF input distribution from the named
// attributes of t: uncertain attributes contribute their distribution,
// certain numeric attributes a Constant. It is shared by ApplyUDF and the
// parallel executor (internal/exec) so both apply identical semantics.
func InputVectorFor(t *Tuple, inputs []string) (dist.Vector, error) {
	comps := make([]dist.Dist, len(inputs))
	for i, name := range inputs {
		v, err := t.Get(name)
		if err != nil {
			return nil, err
		}
		switch v.Kind {
		case KindUncertain:
			comps[i] = v.D
		case KindFloat:
			comps[i] = dist.Constant{V: v.F}
		case KindInt:
			comps[i] = dist.Constant{V: float64(v.I)}
		default:
			return nil, fmt.Errorf("attribute %q has kind %s, want numeric or uncertain", name, v.Kind)
		}
	}
	return dist.NewIndependent(comps...), nil
}

// AttachResult applies the paper's predicate semantics to one engine output:
// a filtered tuple yields nil (dropped); otherwise the surviving result
// distribution is truncated to the predicate interval (when pred is non-nil)
// with the realized mass as its tuple existence probability, and the tuple
// extended with the result under name is returned. A post-truncation mass
// below θ also drops the tuple, for consistency with the engine's own
// filtering. Shared by ApplyUDF and the parallel executor so serial and
// parallel plans agree tuple-for-tuple.
//
// keepEnvelope retains Out.Envelope on the attached value. By default the
// envelope is stripped — a materialized relation of result tuples would
// otherwise retain ~3× the distribution memory for fields only the bound
// computation needed — but the bounded operators (TopK/Window/GroupBy)
// derive their intervals from it, so plans feeding those must keep it.
// Under a predicate the retained envelope stays the untruncated one: the
// enveloped statistic bounds it yields are computed before conditioning,
// which keeps them sound for every function in the envelope.
func AttachResult(t *Tuple, out *core.Output, name string, pred *mc.Predicate, keepEnvelope bool) *Tuple {
	if out.Filtered {
		return nil
	}
	d := out.Dist
	tep := out.TEPUpper
	if pred != nil && d != nil {
		truncated, mass := d.Truncate(pred.A, pred.B)
		if mass < pred.Theta {
			return nil
		}
		d, tep = truncated, mass
	}
	v := Result(d, tep)
	meta := *out
	if !keepEnvelope {
		meta.Envelope = nil
	}
	v.Out = &meta
	return t.With(name, v)
}

// --- Catalog helpers ---

// GalaxyTuple converts an SDSS-style galaxy into a tuple with uncertain
// position and redshift attributes, the representation of §1:
// (objID, pos_p, redshift_p, ...).
func GalaxyTuple(objID int64, ra, dec, raErr, decErr, z, zErr float64) *Tuple {
	return MustTuple(
		[]string{"objID", "ra", "dec", "redshift"},
		[]Value{
			Int(objID),
			Uncertain(dist.Normal{Mu: ra, Sigma: raErr}),
			Uncertain(dist.Normal{Mu: dec, Sigma: decErr}),
			Uncertain(dist.Normal{Mu: z, Sigma: zErr}),
		},
	)
}
