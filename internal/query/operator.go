package query

import (
	"fmt"
	"io"
	"math/rand"

	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/mc"
	"olgapro/internal/udf"
)

// Iterator is the Volcano-model pull interface. Next returns io.EOF after
// the last tuple.
type Iterator interface {
	Next() (*Tuple, error)
}

// Drain pulls every tuple from it.
func Drain(it Iterator) ([]*Tuple, error) {
	var out []*Tuple
	for {
		t, err := it.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// --- Scan ---

// Scan iterates over an in-memory relation.
type Scan struct {
	tuples []*Tuple
	pos    int
}

// NewScan returns a scan over tuples.
func NewScan(tuples []*Tuple) *Scan { return &Scan{tuples: tuples} }

// Next returns the next tuple or io.EOF.
func (s *Scan) Next() (*Tuple, error) {
	if s.pos >= len(s.tuples) {
		return nil, io.EOF
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, nil
}

// --- Select ---

// Select filters tuples by a predicate on certain attributes.
type Select struct {
	In   Iterator
	Pred func(*Tuple) (bool, error)
}

// Next returns the next passing tuple.
func (s *Select) Next() (*Tuple, error) {
	for {
		t, err := s.In.Next()
		if err != nil {
			return nil, err
		}
		ok, err := s.Pred(t)
		if err != nil {
			return nil, err
		}
		if ok {
			return t, nil
		}
	}
}

// --- Project ---

// Project keeps only the named attributes, in order.
type Project struct {
	In    Iterator
	Names []string
}

// Next returns the projected next tuple.
func (p *Project) Next() (*Tuple, error) {
	t, err := p.In.Next()
	if err != nil {
		return nil, err
	}
	vals := make([]Value, len(p.Names))
	for i, n := range p.Names {
		v, err := t.Get(n)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return NewTuple(p.Names, vals)
}

// --- CrossJoin ---

// CrossJoin produces the cross product of two in-memory relations with
// prefixed attribute names, as needed by the self-join of query Q2.
type CrossJoin struct {
	left, right           []*Tuple
	leftPrefix, rightPref string
	i, j                  int
	skipSelfPairs         bool
}

// NewCrossJoin builds a cross join; when skipSelfPairs is true, pairs (i, j)
// with j ≤ i are omitted, giving unordered distinct pairs — the usual form
// of the Q2 self-join.
func NewCrossJoin(left []*Tuple, leftPrefix string, right []*Tuple, rightPrefix string, skipSelfPairs bool) *CrossJoin {
	return &CrossJoin{
		left: left, right: right,
		leftPrefix: leftPrefix, rightPref: rightPrefix,
		skipSelfPairs: skipSelfPairs,
	}
}

// Next returns the next joined tuple.
func (c *CrossJoin) Next() (*Tuple, error) {
	for {
		if c.i >= len(c.left) {
			return nil, io.EOF
		}
		if c.j >= len(c.right) {
			c.i++
			c.j = 0
			continue
		}
		i, j := c.i, c.j
		c.j++
		if c.skipSelfPairs && j <= i {
			continue
		}
		return Concat(c.left[i], c.leftPrefix, c.right[j], c.rightPref)
	}
}

// --- UDF application ---

// Engine evaluates a UDF on one uncertain input vector; implemented by
// *core.Evaluator, MCEngine, and HybridEngine.
type Engine interface {
	EvalInput(input dist.Vector, rng *rand.Rand) (*core.Output, error)
}

// EvaluatorEngine adapts *core.Evaluator to the Engine interface.
type EvaluatorEngine struct{ E *core.Evaluator }

// EvalInput runs OLGAPRO on the input.
func (e EvaluatorEngine) EvalInput(input dist.Vector, rng *rand.Rand) (*core.Output, error) {
	return e.E.Eval(input, rng)
}

// MCEngine evaluates UDFs with direct Monte-Carlo simulation.
type MCEngine struct {
	F   udf.Func
	Cfg mc.Config
}

// EvalInput runs Algorithm 1 on the input.
func (e MCEngine) EvalInput(input dist.Vector, rng *rand.Rand) (*core.Output, error) {
	res, err := mc.Evaluate(e.F, input, e.Cfg, rng)
	if err != nil {
		return nil, err
	}
	return &core.Output{
		Dist:      res.Dist,
		Bound:     e.Cfg.Eps,
		BoundMC:   e.Cfg.Eps,
		Samples:   res.Samples,
		UDFCalls:  res.UDFCalls,
		Filtered:  res.Filtered,
		TEPLower:  res.TEP,
		TEPUpper:  res.TEP,
		MetBudget: true,
	}, nil
}

// HybridEngine adapts *core.Hybrid to the Engine interface.
type HybridEngine struct{ H *core.Hybrid }

// EvalInput routes the input through the hybrid chooser.
func (e HybridEngine) EvalInput(input dist.Vector, rng *rand.Rand) (*core.Output, error) {
	out, _, err := e.H.Eval(input, rng)
	return out, err
}

// ApplyUDF evaluates a UDF over the named input attributes of each tuple and
// appends the output distribution as a new attribute. Tuples the engine
// filters (predicate TEP below threshold) are dropped from the stream —
// this is the WHERE clause of query Q2. For surviving tuples under a
// predicate, the appended distribution is *truncated* to the predicate
// interval with the tuple existence probability attached, matching the
// paper's semantics ("truncates the distribution ... to the region [l, u],
// and hence yields a tuple existence probability").
type ApplyUDF struct {
	In Iterator
	// Inputs names the attributes forming the UDF input vector, in order.
	// Uncertain attributes contribute their distribution; certain numeric
	// attributes contribute a Constant.
	Inputs []string
	// Out is the name of the appended result attribute.
	Out string
	// Engine evaluates the UDF.
	Engine Engine
	// Rng drives sampling.
	Rng *rand.Rand
	// Predicate, when non-nil, truncates surviving result distributions to
	// [A, B]. It should match the predicate configured on the engine (the
	// engine's own predicate drives the drop decision; this one drives the
	// truncation of kept tuples).
	Predicate *mc.Predicate

	// Dropped counts tuples removed by filtering.
	Dropped int
}

// Next returns the next surviving tuple with the UDF result attached.
func (a *ApplyUDF) Next() (*Tuple, error) {
	for {
		t, err := a.In.Next()
		if err != nil {
			return nil, err
		}
		input, err := a.inputVector(t)
		if err != nil {
			return nil, err
		}
		out, err := a.Engine.EvalInput(input, a.Rng)
		if err != nil {
			return nil, fmt.Errorf("query: UDF %q: %w", a.Out, err)
		}
		if out.Filtered {
			a.Dropped++
			continue
		}
		d := out.Dist
		tep := out.TEPUpper
		if a.Predicate != nil && d != nil {
			truncated, mass := d.Truncate(a.Predicate.A, a.Predicate.B)
			if mass < a.Predicate.Theta {
				// The engine kept it but the realized mass is below θ —
				// drop for consistency with the predicate semantics.
				a.Dropped++
				continue
			}
			d, tep = truncated, mass
		}
		return t.With(a.Out, Result(d, tep)), nil
	}
}

// inputVector assembles the joint input distribution from tuple attributes.
func (a *ApplyUDF) inputVector(t *Tuple) (dist.Vector, error) {
	comps := make([]dist.Dist, len(a.Inputs))
	for i, name := range a.Inputs {
		v, err := t.Get(name)
		if err != nil {
			return nil, err
		}
		switch v.Kind {
		case KindUncertain:
			comps[i] = v.D
		case KindFloat:
			comps[i] = dist.Constant{V: v.F}
		case KindInt:
			comps[i] = dist.Constant{V: float64(v.I)}
		default:
			return nil, fmt.Errorf("query: attribute %q has kind %s, want numeric or uncertain", name, v.Kind)
		}
	}
	return dist.NewIndependent(comps...), nil
}

// --- Catalog helpers ---

// GalaxyTuple converts an SDSS-style galaxy into a tuple with uncertain
// position and redshift attributes, the representation of §1:
// (objID, pos_p, redshift_p, ...).
func GalaxyTuple(objID int64, ra, dec, raErr, decErr, z, zErr float64) *Tuple {
	return MustTuple(
		[]string{"objID", "ra", "dec", "redshift"},
		[]Value{
			Int(objID),
			Uncertain(dist.Normal{Mu: ra, Sigma: raErr}),
			Uncertain(dist.Normal{Mu: dec, Sigma: decErr}),
			Uncertain(dist.Normal{Mu: z, Sigma: zErr}),
		},
	)
}
