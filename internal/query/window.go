package query

import (
	"fmt"
	"io"
)

// WindowSpec configures a sliding positional window.
type WindowSpec struct {
	// Size is the window length in tuples (> 0).
	Size int
	// Step is the slide between window starts (≤ 0: Size, i.e. tumbling).
	Step int
	// Aggs are the aggregate columns computed per window.
	Aggs []Agg
}

func (s WindowSpec) step() int {
	if s.Step <= 0 {
		return s.Size
	}
	return s.Step
}

func (s WindowSpec) validate() error {
	if s.Size <= 0 {
		return fmt.Errorf("window size %d, want > 0", s.Size)
	}
	if len(s.Aggs) == 0 {
		return fmt.Errorf("window needs at least one aggregate")
	}
	seen := map[string]bool{"win_start": true, "win_end": true}
	for _, a := range s.Aggs {
		if err := a.validate(); err != nil {
			return err
		}
		if seen[a.name()] {
			return fmt.Errorf("duplicate window output attribute %q", a.name())
		}
		seen[a.name()] = true
	}
	return nil
}

// Window is the sliding-window aggregate operator: positional windows of
// Size tuples advancing by Step, each emitting one fresh tuple with the
// window's position ("win_start"/"win_end", 0-based half-open over input
// ordinals) and one Bounded attribute per aggregate, holding the
// [certain, possible] interval of the aggregate over every possible world
// of the window's tuples (see aggBounds; min/max/avg are conditional on
// the window being realized nonempty). Only complete windows are emitted.
// Window streams — it buffers at most Size input tuples — and follows the
// package error convention.
type Window struct {
	In   Iterator
	Spec WindowSpec

	state     opErr
	buf       []*Tuple // current window prefix, oldest first
	bufStart  int64    // input ordinal of buf[0]
	skip      int      // input tuples to discard before buf[0] (step > size)
	validated bool
	done      bool
}

// NewWindow builds the operator.
func NewWindow(in Iterator, spec WindowSpec) *Window {
	return &Window{In: in, Spec: spec}
}

// Next returns the next complete window's aggregate tuple.
func (w *Window) Next() (*Tuple, error) {
	if err := w.state.sticky(); err != nil {
		return nil, err
	}
	if !w.validated {
		w.validated = true
		if err := w.Spec.validate(); err != nil {
			return nil, w.state.fail("window", err)
		}
	}
	for !w.done {
		if len(w.buf) == w.Spec.Size {
			out, err := w.emit()
			if err != nil {
				return nil, w.state.fail("window", err)
			}
			w.slide()
			return out, nil
		}
		t, err := w.In.Next()
		if err == io.EOF {
			w.done = true
			break
		}
		if err != nil {
			return nil, w.state.upstream(err)
		}
		w.state.seq++
		if w.skip > 0 { // gap between windows when Step > Size
			w.skip--
			continue
		}
		w.buf = append(w.buf, t)
	}
	return nil, w.state.upstream(io.EOF)
}

// emit computes the aggregate tuple for the full buffer.
func (w *Window) emit() (*Tuple, error) {
	names := make([]string, 0, len(w.Spec.Aggs)+2)
	vals := make([]Value, 0, len(w.Spec.Aggs)+2)
	names = append(names, "win_start", "win_end")
	vals = append(vals, Int(w.bufStart), Int(w.bufStart+int64(w.Spec.Size)))
	items := make([]aggItem, len(w.buf))
	for _, agg := range w.Spec.Aggs {
		for i, t := range w.buf {
			it, err := itemOf(t, agg)
			if err != nil {
				return nil, fmt.Errorf("window [%d, %d): %w", w.bufStart, w.bufStart+int64(w.Spec.Size), err)
			}
			items[i] = it
		}
		names = append(names, agg.name())
		vals = append(vals, BoundedVal(aggBounds(agg.Kind, items)))
	}
	return NewTuple(names, vals)
}

// slide advances the window by Step.
func (w *Window) slide() {
	step := w.Spec.step()
	if step >= len(w.buf) {
		w.skip = step - len(w.buf)
		w.buf = w.buf[:0]
	} else {
		w.buf = append(w.buf[:0], w.buf[step:]...)
	}
	w.bufStart += int64(step)
}
