package query

import (
	"math/rand"

	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/mc"
	"olgapro/internal/udf"
)

// Engine evaluates a UDF on one uncertain input vector. Build one with
// NewEvaluatorEngine, NewMCEngine, or NewHybridEngine; every Output leaves
// the constructor-made engine with Output.Engine stamped, so routing
// decisions survive into query results regardless of which backend ran.
type Engine interface {
	EvalInput(input dist.Vector, rng *rand.Rand) (*core.Output, error)
}

// engine is the one concrete Engine implementation: a backend closure plus
// the stamp to apply. Stamping happens here — in exactly one place — rather
// than inside each backend; EngineUnknown means "trust the backend's own
// per-input stamp" (the hybrid router records which engine it chose).
type engine struct {
	eval  func(input dist.Vector, rng *rand.Rand) (*core.Output, error)
	stamp core.Engine
}

// EvalInput runs the backend and stamps the output's engine tag.
func (e engine) EvalInput(input dist.Vector, rng *rand.Rand) (*core.Output, error) {
	out, err := e.eval(input, rng)
	if err != nil || out == nil {
		return out, err
	}
	if e.stamp != core.EngineUnknown {
		out.Engine = e.stamp
	}
	return out, nil
}

// NewEvaluatorEngine wraps an OLGAPRO GP evaluator (online-learning or a
// frozen clone) as a query Engine.
func NewEvaluatorEngine(ev *core.Evaluator) Engine {
	return engine{
		eval:  ev.Eval,
		stamp: core.EngineGP,
	}
}

// NewMCEngine wraps direct Monte-Carlo evaluation (Algorithm 1) of f under
// cfg as a query Engine. The engine is stateless, so one value may be
// shared across pool workers.
func NewMCEngine(f udf.Func, cfg mc.Config) Engine {
	return engine{
		eval: func(input dist.Vector, rng *rand.Rand) (*core.Output, error) {
			res, err := mc.Evaluate(f, input, cfg, rng)
			if err != nil {
				return nil, err
			}
			return &core.Output{
				Dist:      res.Dist,
				Bound:     cfg.Eps,
				BoundMC:   cfg.Eps,
				Samples:   res.Samples,
				UDFCalls:  res.UDFCalls,
				Filtered:  res.Filtered,
				TEPLower:  res.TEP,
				TEPUpper:  res.TEP,
				MetBudget: true,
			}, nil
		},
		stamp: core.EngineMC,
	}
}

// NewHybridEngine wraps the hybrid GP/MC router as a query Engine. The
// stamp is left to the router, which records the engine it chose per input.
func NewHybridEngine(h *core.Hybrid) Engine {
	return engine{
		eval: func(input dist.Vector, rng *rand.Rand) (*core.Output, error) {
			out, _, err := h.Eval(input, rng)
			return out, err
		},
		stamp: core.EngineUnknown,
	}
}
