// Package query is the relational layer for uncertain data: tuples whose
// attributes may be probability distributions, and Volcano-style operators
// (scan, select, project, cross join, UDF application with TEP filtering)
// sufficient to express the paper's motivating queries Q1 and Q2 (§1).
//
// On top of the Volcano set sit the bounded operators — TopK/OrderBy,
// Window, GroupBy — whose answers are [certain, possible] intervals
// (Bounded) derived from each tuple's confidence envelope, and the fluent
// Plan builder that chains all of them. Every bounded operator also has a
// mergeable half (Partial, GroupPartial, WindowPartials, MergeRankKeys)
// used by the fleet router to scatter a plan across shards and merge the
// per-shard states bit-identically to serial execution; see partial.go.
package query

import (
	"fmt"
	"math"

	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/ecdf"
)

// Kind tags the payload of a Value.
type Kind int

const (
	// KindNull is the zero Value.
	KindNull Kind = iota
	// KindFloat is a certain float64.
	KindFloat
	// KindInt is a certain int64.
	KindInt
	// KindString is a certain string.
	KindString
	// KindUncertain is an uncertain scalar attribute (a distribution).
	KindUncertain
	// KindResult is a computed output distribution (e.g. a UDF result).
	KindResult
	// KindBounded is a [certain, possible] interval answer — the output of
	// the bounded relational operators (TopK ranks, windowed and grouped
	// aggregates).
	KindBounded
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFloat:
		return "float"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindUncertain:
		return "uncertain"
	case KindResult:
		return "result"
	case KindBounded:
		return "bounded"
	default:
		return "null"
	}
}

// Value is one attribute value.
type Value struct {
	Kind Kind
	F    float64
	I    int64
	S    string
	D    dist.Dist  // KindUncertain
	R    *ecdf.ECDF // KindResult: the output distribution
	B    Bounded    // KindBounded
	TEP  float64    // KindResult: tuple existence probability estimate
	// Out is the engine output behind a KindResult value (error bounds,
	// engine, cost counters); nil for results built directly from an ECDF.
	// AttachResult populates it — with Out.Envelope stripped, so a retained
	// relation doesn't pin the lower/upper CDFs — letting downstream
	// consumers (the serving layer's response encoder in particular) see
	// the (ε, δ) metadata, not just the distribution.
	Out *core.Output
}

// Float wraps a certain float.
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }

// Int wraps a certain integer.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Str wraps a certain string.
func Str(v string) Value { return Value{Kind: KindString, S: v} }

// Uncertain wraps an uncertain scalar attribute.
func Uncertain(d dist.Dist) Value { return Value{Kind: KindUncertain, D: d} }

// Result wraps a computed output distribution.
func Result(r *ecdf.ECDF, tep float64) Value {
	return Value{Kind: KindResult, R: r, TEP: tep}
}

// BoundedVal wraps a [certain, possible] interval answer.
func BoundedVal(b Bounded) Value { return Value{Kind: KindBounded, B: b} }

// String renders the value compactly.
func (v Value) String() string {
	switch v.Kind {
	case KindFloat:
		return fmt.Sprintf("%g", v.F)
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindString:
		return v.S
	case KindUncertain:
		return fmt.Sprintf("~(μ=%.4g σ=%.4g)", v.D.Mean(), sqrtVar(v.D))
	case KindResult:
		if v.R == nil {
			return "result(filtered)"
		}
		return fmt.Sprintf("result(μ=%.4g n=%d)", v.R.Mean(), v.R.Len())
	case KindBounded:
		return v.B.String()
	default:
		return "null"
	}
}

func sqrtVar(d dist.Dist) float64 {
	v := d.Variance()
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// Tuple is an ordered list of named attribute values. Tuples are immutable
// by convention: operators derive new tuples with With rather than mutating.
type Tuple struct {
	names []string
	vals  []Value
	index map[string]int
}

// NewTuple builds a tuple from parallel name/value slices.
func NewTuple(names []string, vals []Value) (*Tuple, error) {
	if len(names) != len(vals) {
		return nil, fmt.Errorf("query: %d names but %d values", len(names), len(vals))
	}
	t := &Tuple{
		names: append([]string(nil), names...),
		vals:  append([]Value(nil), vals...),
		index: make(map[string]int, len(names)),
	}
	for i, n := range names {
		if _, dup := t.index[n]; dup {
			return nil, fmt.Errorf("query: duplicate attribute %q", n)
		}
		t.index[n] = i
	}
	return t, nil
}

// MustTuple is NewTuple that panics on error, for literals in tests/examples.
func MustTuple(names []string, vals []Value) *Tuple {
	t, err := NewTuple(names, vals)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of attributes.
func (t *Tuple) Len() int { return len(t.vals) }

// Names returns the attribute names in order (shared; do not mutate).
func (t *Tuple) Names() []string { return t.names }

// Get returns the value of the named attribute.
func (t *Tuple) Get(name string) (Value, error) {
	i, ok := t.index[name]
	if !ok {
		return Value{}, fmt.Errorf("query: no attribute %q", name)
	}
	return t.vals[i], nil
}

// MustGet is Get that panics on a missing attribute.
func (t *Tuple) MustGet(name string) Value {
	v, err := t.Get(name)
	if err != nil {
		panic(err)
	}
	return v
}

// With returns a new tuple extended (or overridden) with the named value.
func (t *Tuple) With(name string, v Value) *Tuple {
	if i, ok := t.index[name]; ok {
		out := &Tuple{names: t.names, vals: append([]Value(nil), t.vals...), index: t.index}
		out.vals[i] = v
		return out
	}
	out := &Tuple{
		names: append(append([]string(nil), t.names...), name),
		vals:  append(append([]Value(nil), t.vals...), v),
		index: make(map[string]int, len(t.names)+1),
	}
	for i, n := range out.names {
		out.index[n] = i
	}
	return out
}

// Concat merges two tuples, prefixing attribute names to avoid collisions
// (used by joins: "g1.redshift", "g2.redshift").
func Concat(left *Tuple, leftPrefix string, right *Tuple, rightPrefix string) (*Tuple, error) {
	names := make([]string, 0, left.Len()+right.Len())
	vals := make([]Value, 0, left.Len()+right.Len())
	for i, n := range left.names {
		names = append(names, leftPrefix+n)
		vals = append(vals, left.vals[i])
	}
	for i, n := range right.names {
		names = append(names, rightPrefix+n)
		vals = append(vals, right.vals[i])
	}
	return NewTuple(names, vals)
}

// String renders the tuple.
func (t *Tuple) String() string {
	s := "{"
	for i, n := range t.names {
		if i > 0 {
			s += ", "
		}
		s += n + "=" + t.vals[i].String()
	}
	return s + "}"
}
