package query

// This file is the distributed half of the bounded-aggregate algebra: a
// mergeable partial-state representation for every aggregate kind, plus the
// group-level wrapper the fleet router uses to scatter a plan across shards
// and gather one answer.
//
// # Bit-identity contract
//
// The merged bound must equal — bit for bit — the bound the single-shard
// operators (aggBounds over the union relation) would produce. Two
// mechanisms deliver that:
//
//   - Order-free kinds (count, min, max) keep only scalar state folded with
//     integer addition and math.Min/math.Max, which are associative and
//     exact in floating point, so any merge order yields the same bits.
//   - Order-sensitive kinds (sum, avg) keep the full item list tagged with
//     each tuple's global ordinal in the union relation; Bound re-folds the
//     items in ascending ordinal through the very same sumBounds/avgBounds
//     code the serial operators run, reproducing the serial fold exactly.
//
// Ordinals are the stream positions the union relation would assign, so a
// shard holding an arbitrary subset of the relation still contributes items
// that interleave correctly with every other shard's.

import (
	"fmt"
	"math"
	"sort"
)

// PartialItem is one tuple's contribution to a distributed aggregate: the
// [lo, hi] interval of its statistic, whether the tuple certainly exists,
// and the tuple's global ordinal in the union relation. It is the
// wire-portable form of the package-private aggItem.
type PartialItem struct {
	Ord    int64
	Lo, Hi float64
	Sure   bool
}

// PartialItemOf extracts one tuple's contribution to agg, stamped with the
// tuple's global ordinal.
func PartialItemOf(t *Tuple, agg Agg, ord int64) (PartialItem, error) {
	it, err := itemOf(t, agg)
	if err != nil {
		return PartialItem{}, err
	}
	return PartialItem{Ord: ord, Lo: it.val.Lo, Hi: it.val.Hi, Sure: it.sure}, nil
}

// Partial is the mergeable state of one bounded aggregate over a subset of
// a relation. Observe items in ascending ordinal order, Merge partials from
// disjoint subsets in any order, then Bound — the result is bit-identical
// to aggBounds over the union. The zero value is not usable; build with
// NewPartial.
type Partial struct {
	Kind AggKind
	// N and Sure count observed items and certainly-existing items; they
	// fully determine the count aggregate and select the min/max cap.
	N, Sure int
	// Scalar envelope state for min/max, oriented so smaller is the
	// reachable extreme (AggMax observes negated intervals): Lo is the
	// smallest reachable value, SureCap the tightest cap from a certainly
	// existing member, AllCap the largest single-member world.
	Lo, SureCap, AllCap float64
	// Items is the full item list for the order-sensitive kinds (sum, avg),
	// ascending by Ord; empty for count/min/max.
	Items []PartialItem
}

// NewPartial returns an empty partial for the kind. The scalar fields start
// at the fold identities (+Inf/+Inf/−Inf), which are neutral under Merge.
func NewPartial(kind AggKind) *Partial {
	return &Partial{Kind: kind, Lo: math.Inf(1), SureCap: math.Inf(1), AllCap: math.Inf(-1)}
}

// Observe folds one item into the partial. Items must arrive in ascending
// Ord order (the natural stream order on a shard).
func (p *Partial) Observe(it PartialItem) {
	p.N++
	if it.Sure {
		p.Sure++
	}
	switch p.Kind {
	case AggCount:
		// Existence counters only.
	case AggMin, AggMax:
		lo, hi := it.Lo, it.Hi
		if p.Kind == AggMax {
			lo, hi = -it.Hi, -it.Lo
		}
		p.Lo = math.Min(p.Lo, lo)
		p.AllCap = math.Max(p.AllCap, hi)
		if it.Sure {
			p.SureCap = math.Min(p.SureCap, hi)
		}
	default: // AggSum, AggAvg: order-sensitive, keep the items.
		p.Items = append(p.Items, it)
	}
}

// Merge folds q (a partial over a disjoint subset) into p. Merge order does
// not matter; the ordinal tags restore the serial fold order at Bound time.
func (p *Partial) Merge(q *Partial) error {
	if p.Kind != q.Kind {
		return fmt.Errorf("query: cannot merge %s partial into %s partial", q.Kind, p.Kind)
	}
	p.N += q.N
	p.Sure += q.Sure
	p.Lo = math.Min(p.Lo, q.Lo)
	p.SureCap = math.Min(p.SureCap, q.SureCap)
	p.AllCap = math.Max(p.AllCap, q.AllCap)
	p.Items = mergeItems(p.Items, q.Items)
	return nil
}

// mergeItems merges two ordinal-ascending item lists.
func mergeItems(a, b []PartialItem) []PartialItem {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]PartialItem(nil), b...)
	}
	out := make([]PartialItem, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Ord <= b[j].Ord {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Bound finishes the partial into the [certain, possible] interval of the
// aggregate over every possible world of the observed tuples — bit-identical
// to aggBounds over the same items in ordinal order. Like aggBounds,
// min/max/avg over zero items return NaN bounds.
func (p *Partial) Bound() Bounded {
	switch p.Kind {
	case AggCount:
		return finish(float64(p.Sure), float64(p.N))
	case AggMin, AggMax:
		lo, hi := p.Lo, p.AllCap
		if p.Sure > 0 {
			hi = p.SureCap
		}
		if p.N == 0 {
			lo, hi = math.NaN(), math.NaN()
		}
		if p.Kind == AggMax {
			return finish(-hi, -lo)
		}
		return finish(lo, hi)
	case AggSum:
		return sumBounds(p.aggItems())
	case AggAvg:
		return avgBounds(p.aggItems())
	default:
		return Bounded{Lo: math.NaN(), Hi: math.NaN()}
	}
}

// aggItems converts the stored items into the serial fold's form, in the
// stored (ordinal-ascending) order.
func (p *Partial) aggItems() []aggItem {
	items := make([]aggItem, len(p.Items))
	for i, it := range p.Items {
		items[i] = aggItem{val: Bounded{Lo: it.Lo, Hi: it.Hi}, sure: it.Sure}
	}
	return items
}

// GroupPartial is the mergeable state of one group of a distributed
// group-by: the group's collision-free key encoding, its key attribute
// values, the smallest global ordinal among its tuples (which orders groups
// exactly as the serial operator's first-seen order does), and one Partial
// per aggregate column, in spec order.
type GroupPartial struct {
	Key  string
	Vals []Value
	Ord  int64
	Aggs []*Partial
}

// GroupPartialsOf partitions a shard's surviving tuples into per-group
// partial aggregates. tuples must be in stream order and ords must carry
// their ascending global ordinals (len(ords) == len(tuples)). Groups are
// returned in first-seen order.
func GroupPartialsOf(tuples []*Tuple, ords []int64, spec GroupBySpec) ([]*GroupPartial, error) {
	if err := spec.validate(); err != nil {
		return nil, fmt.Errorf("query: group-by: %w", err)
	}
	if len(ords) != len(tuples) {
		return nil, fmt.Errorf("query: group-by: %d ordinals for %d tuples", len(ords), len(tuples))
	}
	groups := map[string]*GroupPartial{}
	var out []*GroupPartial
	for i, t := range tuples {
		key, keyVals, err := groupKey(t, spec.Keys)
		if err != nil {
			return nil, fmt.Errorf("query: group-by: %w", err)
		}
		gp, ok := groups[key]
		if !ok {
			gp = &GroupPartial{Key: key, Vals: keyVals, Ord: ords[i]}
			for _, a := range spec.Aggs {
				gp.Aggs = append(gp.Aggs, NewPartial(a.Kind))
			}
			groups[key] = gp
			out = append(out, gp)
		}
		for j, a := range spec.Aggs {
			it, err := PartialItemOf(t, a, ords[i])
			if err != nil {
				return nil, fmt.Errorf("query: group-by: group %s: %w", key, err)
			}
			gp.Aggs[j].Observe(it)
		}
	}
	return out, nil
}

// MergeGroupPartials merges per-shard group lists into one list ordered by
// first-seen global ordinal — the order the serial GroupBy over the union
// relation emits. The inputs are not mutated.
func MergeGroupPartials(lists ...[]*GroupPartial) ([]*GroupPartial, error) {
	groups := map[string]*GroupPartial{}
	var out []*GroupPartial
	for _, list := range lists {
		for _, gp := range list {
			have, ok := groups[gp.Key]
			if !ok {
				cp := &GroupPartial{Key: gp.Key, Vals: gp.Vals, Ord: gp.Ord}
				for _, a := range gp.Aggs {
					na := NewPartial(a.Kind)
					if err := na.Merge(a); err != nil {
						return nil, err
					}
					cp.Aggs = append(cp.Aggs, na)
				}
				groups[gp.Key] = cp
				out = append(out, cp)
				continue
			}
			if len(gp.Aggs) != len(have.Aggs) {
				return nil, fmt.Errorf("query: group %s: %d aggregates vs %d", gp.Key, len(gp.Aggs), len(have.Aggs))
			}
			if gp.Ord < have.Ord {
				have.Ord = gp.Ord
				have.Vals = gp.Vals
			}
			for j, a := range gp.Aggs {
				if err := have.Aggs[j].Merge(a); err != nil {
					return nil, err
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ord < out[j].Ord })
	return out, nil
}

// FinishGroupPartials materializes merged groups into the same answer
// tuples the serial GroupBy emits: key attributes first, then one Bounded
// attribute per aggregate.
func FinishGroupPartials(spec GroupBySpec, groups []*GroupPartial) ([]*Tuple, error) {
	if err := spec.validate(); err != nil {
		return nil, fmt.Errorf("query: group-by: %w", err)
	}
	out := make([]*Tuple, 0, len(groups))
	for _, gp := range groups {
		if len(gp.Aggs) != len(spec.Aggs) {
			return nil, fmt.Errorf("query: group %s: %d aggregates, spec wants %d", gp.Key, len(gp.Aggs), len(spec.Aggs))
		}
		names := make([]string, 0, len(spec.Keys)+len(spec.Aggs))
		vals := make([]Value, 0, len(spec.Keys)+len(spec.Aggs))
		names = append(names, spec.Keys...)
		vals = append(vals, gp.Vals...)
		for j, a := range spec.Aggs {
			names = append(names, a.name())
			vals = append(vals, BoundedVal(gp.Aggs[j].Bound()))
		}
		t, err := NewTuple(names, vals)
		if err != nil {
			return nil, fmt.Errorf("query: group %s: %w", gp.Key, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// WindowPartials materializes the sliding-window answer tuples from
// per-tuple items. items[a] holds every surviving tuple's contribution to
// spec.Aggs[a], each list in ascending global-ordinal order and all lists
// the same length n; windows are positional over those n survivors exactly
// as the serial Window operator slides over its post-filter stream.
func WindowPartials(spec WindowSpec, items [][]PartialItem) ([]*Tuple, error) {
	if err := spec.validate(); err != nil {
		return nil, fmt.Errorf("query: window: %w", err)
	}
	if len(items) != len(spec.Aggs) {
		return nil, fmt.Errorf("query: window: %d item lists for %d aggregates", len(items), len(spec.Aggs))
	}
	n := -1
	for a := range items {
		if n >= 0 && len(items[a]) != n {
			return nil, fmt.Errorf("query: window: item lists disagree on length (%d vs %d)", len(items[a]), n)
		}
		n = len(items[a])
	}
	step := spec.step()
	var out []*Tuple
	for start := 0; start+spec.Size <= n; start += step {
		names := make([]string, 0, len(spec.Aggs)+2)
		vals := make([]Value, 0, len(spec.Aggs)+2)
		names = append(names, "win_start", "win_end")
		vals = append(vals, Int(int64(start)), Int(int64(start+spec.Size)))
		for a, agg := range spec.Aggs {
			p := NewPartial(agg.Kind)
			for _, it := range items[a][start : start+spec.Size] {
				p.Observe(it)
			}
			names = append(names, agg.name())
			vals = append(vals, BoundedVal(p.Bound()))
		}
		t, err := NewTuple(names, vals)
		if err != nil {
			return nil, fmt.Errorf("query: window [%d, %d): %w", start, start+spec.Size, err)
		}
		out = append(out, t)
	}
	return out, nil
}
