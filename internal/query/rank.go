package query

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// RankSpec configures a TopK (or full OrderBy) over an uncertain attribute.
type RankSpec struct {
	// By names the attribute whose statistic ranks the tuples.
	By string
	// Stat is the statistic ranked on (zero value: mean).
	Stat Stat
	// K is the answer-set size; K ≤ 0 ranks the whole input (OrderBy).
	K int
	// Desc ranks largest-first when true.
	Desc bool
	// As names the appended bounded-rank attribute (default "rank").
	As string
}

func (s RankSpec) rankAttr() string {
	if s.As == "" {
		return "rank"
	}
	return s.As
}

// TopK is the bounded top-k/order-by operator over uncertain rank keys, in
// the certain-and-possible-answers semantics for ranking over uncertain
// data: each input tuple's rank key is the [lo, hi] interval of its
// statistic (IntervalOf), a possible world picks one key value per tuple
// inside its interval (and decides existence of TEP-filtered maybe-tuples),
// and ranking within a world breaks key ties by input ordinal, smaller
// first — so every world yields a total order.
//
// Pairwise envelope dominance then gives, per tuple, the number of rivals
// that beat it in every world (certAbove) and in some world (possAbove):
//
//   - a tuple POSSIBLY belongs to the top k iff certAbove < k;
//   - a tuple CERTAINLY belongs iff it certainly exists and possAbove < k;
//   - its rank lies in [certAbove+1, possAbove+1].
//
// TopK emits exactly the possible members — the possible answer set — each
// extended with a Bounded rank attribute whose Certain flag records certain
// membership. Output order is deterministic: ascending best rank, then
// input ordinal. The operator is blocking (it drains its input on the first
// Next) and follows the package error convention.
type TopK struct {
	In   Iterator
	Spec RankSpec

	state   opErr
	started bool
	out     []*Tuple
	pos     int
}

// NewTopK builds the operator.
func NewTopK(in Iterator, spec RankSpec) *TopK {
	return &TopK{In: in, Spec: spec}
}

// rankKey is one tuple's interval rank key, oriented so that LARGER is
// better (ascending specs are negated on entry). Rival j beats tuple i in
// every world iff lo_j > hi_i (or lo_j == hi_i with the smaller ordinal),
// and in some world iff hi_j > lo_i (or hi_j == lo_i with the smaller
// ordinal); rankedMembers counts both via sorted projections.
type rankKey struct {
	lo, hi float64
	ord    int64
	sure   bool
}

// Next returns the next possible member.
func (t *TopK) Next() (*Tuple, error) {
	if err := t.state.sticky(); err != nil {
		return nil, err
	}
	if !t.started {
		t.started = true
		if err := t.build(); err != nil {
			return nil, err
		}
	}
	if t.pos >= len(t.out) {
		return nil, t.state.upstream(io.EOF)
	}
	tp := t.out[t.pos]
	t.pos++
	return tp, nil
}

// build drains the input and materializes the possible answer set.
func (t *TopK) build() error {
	var tuples []*Tuple
	var keys []rankKey
	for {
		tp, err := t.In.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return t.state.upstream(err)
		}
		v, err := tp.Get(t.Spec.By)
		if err != nil {
			return t.state.fail("top-k", err)
		}
		b, err := IntervalOf(v, t.Spec.Stat)
		if err != nil {
			return t.state.fail("top-k", fmt.Errorf("attribute %q: %w", t.Spec.By, err))
		}
		k := rankKey{lo: b.Lo, hi: b.Hi, ord: t.state.seq, sure: existenceCertain(v)}
		if !t.Spec.Desc {
			k.lo, k.hi = -b.Hi, -b.Lo
		}
		if math.IsNaN(k.lo) || math.IsNaN(k.hi) {
			return t.state.fail("top-k", fmt.Errorf("attribute %q: NaN rank key", t.Spec.By))
		}
		tuples = append(tuples, tp)
		keys = append(keys, k)
		t.state.seq++
	}
	t.out = rankedMembers(tuples, keys, t.Spec.K, t.Spec.rankAttr())
	return nil
}

// rankedMembers computes per-tuple rank bounds by counting dominating
// rivals against two sorted key projections (O(n log n)), then keeps and
// orders the possible members.
func rankedMembers(tuples []*Tuple, keys []rankKey, k int, rankAttr string) []*Tuple {
	n := len(tuples)
	if k <= 0 || k > n {
		k = n
	}
	// Lexicographic projections (value, then smaller ordinal wins ties):
	// sureLos for certAbove — only certainly existing rivals beat a tuple
	// in EVERY world; allHis for possAbove — any rival may beat it in SOME
	// world where it exists.
	var sureLos, allHis []lexKey
	for _, key := range keys {
		if key.sure {
			sureLos = append(sureLos, lexKey{v: key.lo, ord: key.ord})
		}
		allHis = append(allHis, lexKey{v: key.hi, ord: key.ord})
	}
	sort.Sort(lexKeys(sureLos))
	sort.Sort(lexKeys(allHis))

	type member struct {
		tuple   *Tuple
		best    int // certAbove + 1
		worst   int // possAbove + 1
		ord     int64
		certMem bool
	}
	var members []member
	for i, key := range keys {
		// certAbove: sure rivals j with (lo_j, ord_j) lexicographically
		// beating (hi_i, ord_i). Self never qualifies (lo ≤ hi, same ord).
		certAbove := countBeating(sureLos, lexKey{v: key.hi, ord: key.ord})
		// possAbove: rivals j with (hi_j, ord_j) beating (lo_i, ord_i);
		// a nondegenerate self-interval counts itself — remove it.
		possAbove := countBeating(allHis, lexKey{v: key.lo, ord: key.ord})
		if key.hi > key.lo {
			possAbove--
		}
		if certAbove >= k {
			continue // certainly outside the top k in every world
		}
		members = append(members, member{
			tuple:   tuples[i],
			best:    certAbove + 1,
			worst:   possAbove + 1,
			ord:     key.ord,
			certMem: key.sure && possAbove < k,
		})
	}
	sort.Slice(members, func(a, b int) bool {
		if members[a].best != members[b].best {
			return members[a].best < members[b].best
		}
		return members[a].ord < members[b].ord
	})
	out := make([]*Tuple, len(members))
	for i, m := range members {
		out[i] = m.tuple.With(rankAttr, BoundedVal(Bounded{
			Lo:      float64(m.best),
			Hi:      float64(m.worst),
			Certain: m.certMem,
		}))
	}
	return out
}

// lexKey orders by value descending strength: a key (v, ord) beats a
// threshold (tv, tord) when v > tv, or v == tv and ord < tord.
type lexKey struct {
	v   float64
	ord int64
}

type lexKeys []lexKey

func (s lexKeys) Len() int      { return len(s) }
func (s lexKeys) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s lexKeys) Less(i, j int) bool {
	if s[i].v != s[j].v {
		return s[i].v < s[j].v
	}
	return s[i].ord > s[j].ord // larger ordinal sorts first → weaker
}

// countBeating returns how many sorted keys beat the threshold.
func countBeating(sorted []lexKey, th lexKey) int {
	// Keys are ascending in "strength"; find the first index whose key
	// beats th, everything after it beats too.
	i := sort.Search(len(sorted), func(i int) bool {
		k := sorted[i]
		return k.v > th.v || (k.v == th.v && k.ord < th.ord)
	})
	return len(sorted) - i
}
