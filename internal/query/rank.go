package query

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// RankSpec configures a TopK (or full OrderBy) over an uncertain attribute.
type RankSpec struct {
	// By names the attribute whose statistic ranks the tuples.
	By string
	// Stat is the statistic ranked on (zero value: mean).
	Stat Stat
	// K is the answer-set size; K ≤ 0 ranks the whole input (OrderBy).
	K int
	// Desc ranks largest-first when true.
	Desc bool
	// As names the appended bounded-rank attribute (default "rank").
	As string
}

// RankAttr resolves the name of the appended bounded-rank attribute.
func (s RankSpec) RankAttr() string {
	if s.As == "" {
		return "rank"
	}
	return s.As
}

// TopK is the bounded top-k/order-by operator over uncertain rank keys, in
// the certain-and-possible-answers semantics for ranking over uncertain
// data: each input tuple's rank key is the [lo, hi] interval of its
// statistic (IntervalOf), a possible world picks one key value per tuple
// inside its interval (and decides existence of TEP-filtered maybe-tuples),
// and ranking within a world breaks key ties by input ordinal, smaller
// first — so every world yields a total order.
//
// Pairwise envelope dominance then gives, per tuple, the number of rivals
// that beat it in every world (certAbove) and in some world (possAbove):
//
//   - a tuple POSSIBLY belongs to the top k iff certAbove < k;
//   - a tuple CERTAINLY belongs iff it certainly exists and possAbove < k;
//   - its rank lies in [certAbove+1, possAbove+1].
//
// TopK emits exactly the possible members — the possible answer set — each
// extended with a Bounded rank attribute whose Certain flag records certain
// membership. Output order is deterministic: ascending best rank, then
// input ordinal. The operator is blocking (it drains its input on the first
// Next) and follows the package error convention.
type TopK struct {
	In   Iterator
	Spec RankSpec

	state   opErr
	started bool
	out     []*Tuple
	pos     int
}

// NewTopK builds the operator.
func NewTopK(in Iterator, spec RankSpec) *TopK {
	return &TopK{In: in, Spec: spec}
}

// RankKey is one tuple's interval rank key, oriented so that LARGER is
// better (RankKeyOf negates ascending specs on entry). Rival j beats tuple
// i in every world iff Lo_j > Hi_i (or Lo_j == Hi_i with the smaller
// ordinal), and in some world iff Hi_j > Lo_i (or Hi_j == Lo_i with the
// smaller ordinal); MergeRankKeys counts both via sorted projections. Ord
// is the tuple's global stream ordinal, which breaks every tie — keys from
// different shards of one relation merge exactly because their ordinals
// interleave as the union stream would.
type RankKey struct {
	Ord    int64
	Lo, Hi float64
	Sure   bool
}

// RankKeyOf extracts one tuple's oriented rank key under spec, stamped with
// the tuple's global ordinal. NaN rank keys are rejected.
func RankKeyOf(t *Tuple, spec RankSpec, ord int64) (RankKey, error) {
	v, err := t.Get(spec.By)
	if err != nil {
		return RankKey{}, err
	}
	b, err := IntervalOf(v, spec.Stat)
	if err != nil {
		return RankKey{}, fmt.Errorf("attribute %q: %w", spec.By, err)
	}
	k := RankKey{Ord: ord, Lo: b.Lo, Hi: b.Hi, Sure: existenceCertain(v)}
	if !spec.Desc {
		k.Lo, k.Hi = -b.Hi, -b.Lo
	}
	if math.IsNaN(k.Lo) || math.IsNaN(k.Hi) {
		return RankKey{}, fmt.Errorf("attribute %q: NaN rank key", spec.By)
	}
	return k, nil
}

// Next returns the next possible member.
func (t *TopK) Next() (*Tuple, error) {
	if err := t.state.sticky(); err != nil {
		return nil, err
	}
	if !t.started {
		t.started = true
		if err := t.build(); err != nil {
			return nil, err
		}
	}
	if t.pos >= len(t.out) {
		return nil, t.state.upstream(io.EOF)
	}
	tp := t.out[t.pos]
	t.pos++
	return tp, nil
}

// build drains the input and materializes the possible answer set.
func (t *TopK) build() error {
	var tuples []*Tuple
	var keys []RankKey
	for {
		tp, err := t.In.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return t.state.upstream(err)
		}
		k, err := RankKeyOf(tp, t.Spec, t.state.seq)
		if err != nil {
			return t.state.fail("top-k", err)
		}
		tuples = append(tuples, tp)
		keys = append(keys, k)
		t.state.seq++
	}
	t.out = rankedMembers(tuples, keys, t.Spec.K, t.Spec.RankAttr())
	return nil
}

// RankedMember is one possible member of the merged answer set: Idx indexes
// the key (and its tuple) in the caller's slice, Rank is the bounded rank
// attribute — [certAbove+1, possAbove+1] with Certain recording certain
// membership.
type RankedMember struct {
	Idx  int
	Rank Bounded
}

// MergeRankKeys computes the possible top-k answer set over the keys — the
// keys-only core of the TopK operator, shared with the fleet router's
// cross-shard merge. A tuple possibly belongs iff fewer than k rivals beat
// it in every world, and certainly belongs iff it certainly exists and
// fewer than k rivals can possibly beat it. k ≤ 0 (or k > n) ranks
// everything. Members are returned in output order: ascending best rank,
// then ordinal.
func MergeRankKeys(keys []RankKey, k int) []RankedMember {
	sureLos, allHis := lexProjections(keys)
	n := len(keys)
	if k <= 0 || k > n {
		k = n
	}
	var members []RankedMember
	for i, key := range keys {
		certAbove, possAbove := rivalCounts(sureLos, allHis, key)
		if certAbove >= k {
			continue // certainly outside the top k in every world
		}
		members = append(members, RankedMember{
			Idx: i,
			Rank: Bounded{
				Lo:      float64(certAbove + 1),
				Hi:      float64(possAbove + 1),
				Certain: key.Sure && possAbove < k,
			},
		})
	}
	sort.Slice(members, func(a, b int) bool {
		ra, rb := members[a].Rank.Lo, members[b].Rank.Lo
		if ra != rb {
			return ra < rb
		}
		return keys[members[a].Idx].Ord < keys[members[b].Idx].Ord
	})
	return members
}

// CertAbove returns, per key, how many rivals beat it in every possible
// world. Shards use it to prune: a tuple whose local count already reaches
// k is certainly outside the global top k, because rivals only accumulate
// across shards.
func CertAbove(keys []RankKey) []int {
	sureLos, _ := lexProjections(keys)
	out := make([]int, len(keys))
	for i, key := range keys {
		out[i] = countBeating(sureLos, lexKey{v: key.Hi, ord: key.Ord})
	}
	return out
}

// lexProjections builds the two sorted key projections rival counting works
// against. Lexicographic order (value, then smaller ordinal wins ties):
// sureLos for certAbove — only certainly existing rivals beat a tuple in
// EVERY world; allHis for possAbove — any rival may beat it in SOME world
// where it exists.
func lexProjections(keys []RankKey) (sureLos, allHis []lexKey) {
	for _, key := range keys {
		if key.Sure {
			sureLos = append(sureLos, lexKey{v: key.Lo, ord: key.Ord})
		}
		allHis = append(allHis, lexKey{v: key.Hi, ord: key.Ord})
	}
	sort.Sort(lexKeys(sureLos))
	sort.Sort(lexKeys(allHis))
	return sureLos, allHis
}

// rivalCounts computes one key's dominating-rival counts (O(log n)).
func rivalCounts(sureLos, allHis []lexKey, key RankKey) (certAbove, possAbove int) {
	// certAbove: sure rivals j with (Lo_j, Ord_j) lexicographically beating
	// (Hi_i, Ord_i). Self never qualifies (Lo ≤ Hi, same ord).
	certAbove = countBeating(sureLos, lexKey{v: key.Hi, ord: key.Ord})
	// possAbove: rivals j with (Hi_j, Ord_j) beating (Lo_i, Ord_i); a
	// nondegenerate self-interval counts itself — remove it.
	possAbove = countBeating(allHis, lexKey{v: key.Lo, ord: key.Ord})
	if key.Hi > key.Lo {
		possAbove--
	}
	return certAbove, possAbove
}

// rankedMembers keeps and orders the possible members as answer tuples.
func rankedMembers(tuples []*Tuple, keys []RankKey, k int, rankAttr string) []*Tuple {
	members := MergeRankKeys(keys, k)
	out := make([]*Tuple, len(members))
	for i, m := range members {
		out[i] = tuples[m.Idx].With(rankAttr, BoundedVal(m.Rank))
	}
	return out
}

// lexKey orders by value descending strength: a key (v, ord) beats a
// threshold (tv, tord) when v > tv, or v == tv and ord < tord.
type lexKey struct {
	v   float64
	ord int64
}

type lexKeys []lexKey

func (s lexKeys) Len() int      { return len(s) }
func (s lexKeys) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s lexKeys) Less(i, j int) bool {
	if s[i].v != s[j].v {
		return s[i].v < s[j].v
	}
	return s[i].ord > s[j].ord // larger ordinal sorts first → weaker
}

// countBeating returns how many sorted keys beat the threshold.
func countBeating(sorted []lexKey, th lexKey) int {
	// Keys are ascending in "strength"; find the first index whose key
	// beats th, everything after it beats too.
	i := sort.Search(len(sorted), func(i int) bool {
		k := sorted[i]
		return k.v > th.v || (k.v == th.v && k.ord < th.ord)
	})
	return len(sorted) - i
}
