package query_test

import (
	"fmt"

	"olgapro/internal/query"
)

// ExamplePlan runs a bounded group-by + top-k over a relation whose "y"
// attribute is already a [lo, hi] interval — the shape every aggregate
// consumes, whether the interval came from a UDF's confidence envelope
// (via an Apply stage with KeepEnvelope) or, as here, directly from the
// caller. Group "b" wins certainly: even its lowest possible average
// beats group "a"'s highest.
func ExamplePlan() {
	y := func(lo, hi float64) query.Value {
		return query.BoundedVal(query.Bounded{Lo: lo, Hi: hi})
	}
	rel := []*query.Tuple{
		query.MustTuple([]string{"g", "y"}, []query.Value{query.Str("a"), y(1, 2)}),
		query.MustTuple([]string{"g", "y"}, []query.Value{query.Str("b"), y(5, 6)}),
		query.MustTuple([]string{"g", "y"}, []query.Value{query.Str("a"), y(2, 3)}),
		query.MustTuple([]string{"g", "y"}, []query.Value{query.Str("b"), y(7, 9)}),
	}
	out, err := query.From(rel).
		GroupBy(query.GroupBySpec{
			Keys: []string{"g"},
			Aggs: []query.Agg{query.Count(), query.Avg("y")},
		}).
		TopK(query.RankSpec{By: "avg_y", K: 1, Desc: true}).
		Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, t := range out {
		fmt.Println(t)
	}
	// Output: {g=b, count==2, avg_y=[6, 7.5], rank==1}
}
