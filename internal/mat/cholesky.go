package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when a matrix cannot be Cholesky-factorized because
// it is not (numerically) symmetric positive definite.
var ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")

// Cholesky holds a lower-triangular factor L with A = L Lᵀ.
// The zero value is empty; use Factorize to populate it.
//
// Cholesky supports Extend, the incremental bordered update used by the
// online tuning step of OLGAPRO (paper §5.2): appending one training point
// grows the factor in O(n²) instead of refactorizing in O(n³).
type Cholesky struct {
	l *Matrix // lower triangular, n×n
	n int
}

// Factorize computes the Cholesky factorization of the symmetric positive
// definite matrix a. Only the lower triangle of a is read.
// It returns ErrNotSPD if a pivot is non-positive.
func (c *Cholesky) Factorize(a *Matrix) error {
	r, co := a.Dims()
	if r != co {
		panic(fmt.Sprintf("mat: cholesky of non-square %d×%d matrix", r, co))
	}
	l := New(r, r)
	for i := 0; i < r; i++ {
		li := l.Row(i)
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			lj := l.Row(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return fmt.Errorf("%w: pivot %d is %g", ErrNotSPD, i, sum)
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
	}
	c.l = l
	c.n = r
	return nil
}

// FactorizeJittered behaves like Factorize but, on failure, retries with an
// increasing diagonal jitter (starting at jitter0, multiplied by 10 each of
// maxTries attempts). This is the standard numerical remedy for ill-
// conditioned kernel Gram matrices. It returns the jitter actually used.
func (c *Cholesky) FactorizeJittered(a *Matrix, jitter0 float64, maxTries int) (float64, error) {
	if err := c.Factorize(a); err == nil {
		return 0, nil
	}
	n := a.Rows()
	work := a.Clone()
	jit := jitter0
	for t := 0; t < maxTries; t++ {
		for i := 0; i < n; i++ {
			work.Set(i, i, a.At(i, i)+jit)
		}
		if err := c.Factorize(work); err == nil {
			return jit, nil
		}
		jit *= 10
	}
	return 0, fmt.Errorf("%w after %d jitter attempts (max jitter %g)", ErrNotSPD, maxTries, jit/10)
}

// Size returns the dimension of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// L returns the lower-triangular factor (not a copy).
func (c *Cholesky) L() *Matrix { return c.l }

// SolveVec solves A x = b and returns x, where A = L Lᵀ.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	if len(b) != c.n {
		panic(fmt.Sprintf("mat: cholesky solve length %d ≠ %d", len(b), c.n))
	}
	y := c.forward(b)
	return c.backward(y)
}

// forward solves L y = b.
func (c *Cholesky) forward(b []float64) []float64 {
	y := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		row := c.l.Row(i)
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= row[k] * y[k]
		}
		y[i] = sum / row[i]
	}
	return y
}

// backward solves Lᵀ x = y.
func (c *Cholesky) backward(y []float64) []float64 {
	x := make([]float64, c.n)
	for i := c.n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < c.n; k++ {
			sum -= c.l.At(k, i) * x[k]
		}
		x[i] = sum / c.l.At(i, i)
	}
	return x
}

// ForwardSolve solves L y = b, exposing the half-solve needed to compute
// posterior variances kᵀ K⁻¹ k = ‖L⁻¹k‖².
func (c *Cholesky) ForwardSolve(b []float64) []float64 {
	if len(b) != c.n {
		panic(fmt.Sprintf("mat: cholesky forward length %d ≠ %d", len(b), c.n))
	}
	return c.forward(b)
}

// Solve solves A X = B column-by-column and returns X.
func (c *Cholesky) Solve(b *Matrix) *Matrix {
	if b.Rows() != c.n {
		panic(fmt.Sprintf("mat: cholesky solve rows %d ≠ %d", b.Rows(), c.n))
	}
	out := New(c.n, b.Cols())
	col := make([]float64, c.n)
	for j := 0; j < b.Cols(); j++ {
		for i := 0; i < c.n; i++ {
			col[i] = b.At(i, j)
		}
		x := c.SolveVec(col)
		for i := 0; i < c.n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}

// Inverse returns A⁻¹ computed from the factorization.
func (c *Cholesky) Inverse() *Matrix {
	return c.Solve(Identity(c.n))
}

// LogDet returns log det A = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}

// Quadratic returns bᵀ A⁻¹ b using one forward solve.
func (c *Cholesky) Quadratic(b []float64) float64 {
	y := c.ForwardSolve(b)
	return Dot(y, y)
}

// Extend grows the factorization of A to that of the bordered matrix
//
//	A' = [ A  k ]
//	     [ kᵀ κ ]
//
// in O(n²): the new row of L is l = L⁻¹k with diagonal √(κ − lᵀl).
// It returns ErrNotSPD if the Schur complement κ − lᵀl is non-positive.
func (c *Cholesky) Extend(k []float64, kappa float64) error {
	if len(k) != c.n {
		panic(fmt.Sprintf("mat: cholesky extend length %d ≠ %d", len(k), c.n))
	}
	var l []float64
	if c.n > 0 {
		l = c.forward(k)
	}
	schur := kappa - Dot(l, l)
	if schur <= 0 || math.IsNaN(schur) {
		return fmt.Errorf("%w: extend Schur complement %g", ErrNotSPD, schur)
	}
	nn := c.n + 1
	nl := New(nn, nn)
	for i := 0; i < c.n; i++ {
		copy(nl.Row(i)[:c.n], c.l.Row(i))
	}
	last := nl.Row(c.n)
	copy(last[:c.n], l)
	last[c.n] = math.Sqrt(schur)
	c.l = nl
	c.n = nn
	return nil
}

// BorderedInverse computes the inverse of the bordered matrix
//
//	A' = [ A  k ]
//	     [ kᵀ κ ]
//
// from inv = A⁻¹ using the block-matrix inversion formula (paper §5.2):
// with u = A⁻¹k and s = κ − kᵀu,
//
//	A'⁻¹ = [ A⁻¹ + uuᵀ/s   −u/s ]
//	       [ −uᵀ/s          1/s ]
//
// It returns ErrNotSPD when the Schur complement s is non-positive.
func BorderedInverse(inv *Matrix, k []float64, kappa float64) (*Matrix, error) {
	n := inv.Rows()
	if inv.Cols() != n {
		panic(fmt.Sprintf("mat: bordered inverse of non-square %d×%d", inv.Rows(), inv.Cols()))
	}
	if len(k) != n {
		panic(fmt.Sprintf("mat: bordered inverse border length %d ≠ %d", len(k), n))
	}
	u := inv.MulVec(k)
	s := kappa - Dot(k, u)
	if s <= 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("%w: bordered Schur complement %g", ErrNotSPD, s)
	}
	out := New(n+1, n+1)
	invS := 1 / s
	for i := 0; i < n; i++ {
		row := out.Row(i)
		irow := inv.Row(i)
		for j := 0; j < n; j++ {
			row[j] = irow[j] + u[i]*u[j]*invS
		}
		row[n] = -u[i] * invS
	}
	last := out.Row(n)
	for j := 0; j < n; j++ {
		last[j] = -u[j] * invS
	}
	last[n] = invS
	return out, nil
}

// SolveSPD factorizes a and solves a x = b in one call.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	var c Cholesky
	if err := c.Factorize(a); err != nil {
		return nil, err
	}
	return c.SolveVec(b), nil
}

// Clone returns an independent copy of the factorization, so that
// speculative Extend calls do not disturb the original.
func (c *Cholesky) Clone() Cholesky {
	out := Cholesky{n: c.n}
	if c.l != nil {
		out.l = c.l.Clone()
	}
	return out
}
