package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when a matrix cannot be Cholesky-factorized because
// it is not (numerically) symmetric positive definite.
var ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")

// Cholesky holds a lower-triangular factor L with A = L Lᵀ.
// The zero value is empty; use Factorize to populate it.
//
// The factor is stored as a packed row-major lower triangle: row i occupies
// data[i(i+1)/2 : i(i+1)/2+i+1]. Row offsets are independent of the matrix
// size, so Extend — the incremental bordered update used by the online
// tuning step of OLGAPRO (paper §5.2) — appends one row to the backing store
// with capacity doubling: amortized O(n²) per add and no per-call copy of
// the existing factor, where the dense representation forced an O(n²) clone
// on every Extend.
type Cholesky struct {
	data []float64 // packed row-major lower triangle
	n    int
}

// rowL returns packed row i of L: elements L[i][0..i].
func (c *Cholesky) rowL(i int) []float64 {
	off := i * (i + 1) / 2
	return c.data[off : off+i+1]
}

// grow resizes the packed store to hold an n×n factor, reusing capacity.
func (c *Cholesky) grow(n int) {
	need := n * (n + 1) / 2
	if cap(c.data) < need {
		newCap := 2 * cap(c.data)
		if newCap < need {
			newCap = need
		}
		nd := make([]float64, need, newCap)
		copy(nd, c.data[:min(len(c.data), need)])
		c.data = nd
	}
	c.data = c.data[:need]
}

// Factorize computes the Cholesky factorization of the symmetric positive
// definite matrix a. Only the lower triangle of a is read, and a is never
// modified. The packed backing store is reused across calls.
// It returns ErrNotSPD if a pivot is non-positive.
func (c *Cholesky) Factorize(a *Matrix) error {
	return c.factorize(a, 0)
}

// factorize computes the factorization of a + jitter·I without materializing
// the jittered matrix: the jitter is added to each diagonal pivot on the fly,
// which is what lets FactorizeJittered retry without cloning a.
func (c *Cholesky) factorize(a *Matrix, jitter float64) error {
	r, co := a.Dims()
	if r != co {
		panic(fmt.Sprintf("mat: cholesky of non-square %d×%d matrix", r, co))
	}
	c.grow(r)
	for i := 0; i < r; i++ {
		li := c.rowL(i)
		ai := a.Row(i)
		for j := 0; j <= i; j++ {
			sum := ai[j]
			if i == j {
				sum += jitter
			}
			lj := c.rowL(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					c.data = c.data[:0]
					c.n = 0
					return fmt.Errorf("%w: pivot %d is %g", ErrNotSPD, i, sum)
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
	}
	c.n = r
	return nil
}

// FactorizeJittered behaves like Factorize but, on failure, retries with an
// increasing diagonal jitter (starting at jitter0, multiplied by 10 each of
// maxTries attempts). This is the standard numerical remedy for ill-
// conditioned kernel Gram matrices. The jitter is applied to the running
// pivot inside the factorization itself, so no work copy of a is made and a
// is left untouched. It returns the jitter actually used.
func (c *Cholesky) FactorizeJittered(a *Matrix, jitter0 float64, maxTries int) (float64, error) {
	if err := c.factorize(a, 0); err == nil {
		return 0, nil
	}
	jit := jitter0
	for t := 0; t < maxTries; t++ {
		if err := c.factorize(a, jit); err == nil {
			return jit, nil
		}
		jit *= 10
	}
	return 0, fmt.Errorf("%w after %d jitter attempts (max jitter %g)", ErrNotSPD, maxTries, jit/10)
}

// Size returns the dimension of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// L returns the lower-triangular factor as a freshly allocated dense matrix.
// Use LRow for allocation-free access to one row of the packed factor.
func (c *Cholesky) L() *Matrix {
	out := New(c.n, c.n)
	for i := 0; i < c.n; i++ {
		copy(out.Row(i)[:i+1], c.rowL(i))
	}
	return out
}

// LRow returns row i of L — the elements L[i][0..i] — aliasing the packed
// backing store. The slice is invalidated by the next Factorize or Extend.
func (c *Cholesky) LRow(i int) []float64 { return c.rowL(i) }

// SolveVec solves A x = b and returns a newly allocated x, where A = L Lᵀ.
// Use SolveVecTo to reuse a caller-provided buffer.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	return c.SolveVecTo(make([]float64, c.n), b)
}

// SolveVecTo solves A x = b into dst, which must have length Size.
// dst may alias b. It returns dst.
func (c *Cholesky) SolveVecTo(dst, b []float64) []float64 {
	if len(b) != c.n || len(dst) != c.n {
		panic(fmt.Sprintf("mat: cholesky solve lengths %d, %d ≠ %d", len(dst), len(b), c.n))
	}
	c.forwardTo(dst, b)
	c.backwardInPlace(dst)
	return dst
}

// forwardTo solves L y = b into dst; dst may alias b.
func (c *Cholesky) forwardTo(dst, b []float64) {
	for i := 0; i < c.n; i++ {
		row := c.rowL(i)
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= row[k] * dst[k]
		}
		dst[i] = sum / row[i]
	}
}

// backwardInPlace solves Lᵀ x = y, overwriting y with x. Rather than walking
// a column of L per unknown — an O(n²) strided, cache-hostile traversal —
// it walks rows: once x[i] is fixed, row i of L carries exactly x[i]'s
// contribution to every remaining unknown, so the row is subtracted from the
// prefix in one contiguous pass.
func (c *Cholesky) backwardInPlace(y []float64) {
	for i := c.n - 1; i >= 0; i-- {
		row := c.rowL(i)
		xi := y[i] / row[i]
		y[i] = xi
		for k := 0; k < i; k++ {
			y[k] -= row[k] * xi
		}
	}
}

// ForwardSolve solves L y = b into a newly allocated y, exposing the
// half-solve needed to compute posterior variances kᵀ K⁻¹ k = ‖L⁻¹k‖².
// Use ForwardSolveTo to reuse a caller-provided buffer.
func (c *Cholesky) ForwardSolve(b []float64) []float64 {
	return c.ForwardSolveTo(make([]float64, c.n), b)
}

// ForwardSolveTo solves L y = b into dst, which must have length Size.
// dst may alias b. It returns dst.
func (c *Cholesky) ForwardSolveTo(dst, b []float64) []float64 {
	if len(b) != c.n || len(dst) != c.n {
		panic(fmt.Sprintf("mat: cholesky forward lengths %d, %d ≠ %d", len(dst), len(b), c.n))
	}
	c.forwardTo(dst, b)
	return dst
}

// BackSolveTo solves Lᵀ x = y into dst, which must have length Size.
// dst may alias y. It completes a ForwardSolveTo half-solve into a full
// A⁻¹ application: x = L⁻ᵀ(L⁻¹b) = A⁻¹b. It returns dst.
func (c *Cholesky) BackSolveTo(dst, y []float64) []float64 {
	if len(y) != c.n || len(dst) != c.n {
		panic(fmt.Sprintf("mat: cholesky backward lengths %d, %d ≠ %d", len(dst), len(y), c.n))
	}
	if c.n > 0 && &dst[0] != &y[0] {
		copy(dst, y)
	}
	c.backwardInPlace(dst)
	return dst
}

// Solve solves A X = B column-by-column and returns X.
func (c *Cholesky) Solve(b *Matrix) *Matrix {
	if b.Rows() != c.n {
		panic(fmt.Sprintf("mat: cholesky solve rows %d ≠ %d", b.Rows(), c.n))
	}
	out := New(c.n, b.Cols())
	col := make([]float64, c.n)
	for j := 0; j < b.Cols(); j++ {
		for i := 0; i < c.n; i++ {
			col[i] = b.At(i, j)
		}
		c.SolveVecTo(col, col)
		for i := 0; i < c.n; i++ {
			out.Set(i, j, col[i])
		}
	}
	return out
}

// Inverse returns A⁻¹ computed from the factorization.
func (c *Cholesky) Inverse() *Matrix {
	return c.InverseTo(New(c.n, c.n))
}

// InverseTo computes A⁻¹ into dst, which must be Size×Size, and returns dst.
// It performs no allocation: because A⁻¹ is symmetric, column i can be
// solved directly into row i of dst, using the row itself as the basis
// vector e_i (the in-place solves permit aliasing).
func (c *Cholesky) InverseTo(dst *Matrix) *Matrix {
	if dst.Rows() != c.n || dst.Cols() != c.n {
		panic(fmt.Sprintf("mat: inverse dst %d×%d ≠ %d×%d", dst.Rows(), dst.Cols(), c.n, c.n))
	}
	for i := 0; i < c.n; i++ {
		row := dst.Row(i)
		for j := range row {
			row[j] = 0
		}
		row[i] = 1
		c.SolveVecTo(row, row)
	}
	return dst
}

// LogDet returns log det A = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.rowL(i)[i])
	}
	return 2 * s
}

// Quadratic returns bᵀ A⁻¹ b using one forward solve (allocating).
func (c *Cholesky) Quadratic(b []float64) float64 {
	return c.QuadraticTo(make([]float64, c.n), b)
}

// QuadraticTo returns bᵀ A⁻¹ b using dst (length Size) as the forward-solve
// scratch buffer; dst may alias b.
func (c *Cholesky) QuadraticTo(dst, b []float64) float64 {
	c.ForwardSolveTo(dst, b)
	return Dot(dst, dst)
}

// Extend grows the factorization of A to that of the bordered matrix
//
//	A' = [ A  k ]
//	     [ kᵀ κ ]
//
// in O(n²): the new row of L is l = L⁻¹k with diagonal √(κ − lᵀl).
// The packed layout keeps existing rows in place, so the update only appends
// one row to the backing store (doubling its capacity when exhausted) and is
// allocation-free in the amortized steady state. On failure the store is
// rolled back and the factorization is unchanged.
// It returns ErrNotSPD if the Schur complement κ − lᵀl is non-positive.
func (c *Cholesky) Extend(k []float64, kappa float64) error {
	if len(k) != c.n {
		panic(fmt.Sprintf("mat: cholesky extend length %d ≠ %d", len(k), c.n))
	}
	off := len(c.data)
	c.grow(c.n + 1)
	row := c.data[off:]
	copy(row[:c.n], k)
	c.forwardTo(row[:c.n], row[:c.n])
	schur := kappa - Dot(row[:c.n], row[:c.n])
	if schur <= 0 || math.IsNaN(schur) {
		c.data = c.data[:off]
		return fmt.Errorf("%w: extend Schur complement %g", ErrNotSPD, schur)
	}
	row[c.n] = math.Sqrt(schur)
	c.n++
	return nil
}

// Rank1Update updates the factorization of A to that of A + v vᵀ in O(n²)
// without re-factorizing, using the hyperbolic-rotation (LINPACK dchud style)
// sweep: column j of the update vector is absorbed into pivot j by the Givens
// rotation with c = L'ⱼⱼ/Lⱼⱼ, s = vⱼ/Lⱼⱼ, and the remainder of v is rotated
// against column j of L. Because A + vvᵀ is positive definite whenever A is,
// the sweep cannot fail for finite inputs; NaN/Inf contamination is still
// detected and reported as ErrNotSPD with the factor left unusable for
// further updates (callers should refactorize).
//
// v must have length Size and is OVERWRITTEN (it is the sweep's working
// buffer); pass a scratch copy to keep the original. This is the primitive
// behind the sparse-GP information-matrix maintenance: absorbing one
// observation into M = σ²I + ΦᵀΦ is exactly a rank-1 update of its factor.
func (c *Cholesky) Rank1Update(v []float64) error {
	if len(v) != c.n {
		panic(fmt.Sprintf("mat: cholesky rank-1 update length %d ≠ %d", len(v), c.n))
	}
	for j := 0; j < c.n; j++ {
		rowj := c.rowL(j)
		ljj := rowj[j]
		r := math.Hypot(ljj, v[j])
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("%w: rank-1 update pivot %d is %g", ErrNotSPD, j, r)
		}
		cs := r / ljj
		sn := v[j] / ljj
		rowj[j] = r
		// Column j of L lives strided across the later packed rows.
		for k := j + 1; k < c.n; k++ {
			rowk := c.rowL(k)
			lkj := (rowk[j] + sn*v[k]) / cs
			v[k] = cs*v[k] - sn*lkj
			rowk[j] = lkj
		}
	}
	return nil
}

// BorderedInverse computes the inverse of the bordered matrix
//
//	A' = [ A  k ]
//	     [ kᵀ κ ]
//
// from inv = A⁻¹ using the block-matrix inversion formula (paper §5.2):
// with u = A⁻¹k and s = κ − kᵀu,
//
//	A'⁻¹ = [ A⁻¹ + uuᵀ/s   −u/s ]
//	       [ −uᵀ/s          1/s ]
//
// It returns ErrNotSPD when the Schur complement s is non-positive.
func BorderedInverse(inv *Matrix, k []float64, kappa float64) (*Matrix, error) {
	n := inv.Rows()
	if inv.Cols() != n {
		panic(fmt.Sprintf("mat: bordered inverse of non-square %d×%d", inv.Rows(), inv.Cols()))
	}
	if len(k) != n {
		panic(fmt.Sprintf("mat: bordered inverse border length %d ≠ %d", len(k), n))
	}
	u := inv.MulVec(k)
	s := kappa - Dot(k, u)
	if s <= 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("%w: bordered Schur complement %g", ErrNotSPD, s)
	}
	out := New(n+1, n+1)
	invS := 1 / s
	for i := 0; i < n; i++ {
		row := out.Row(i)
		irow := inv.Row(i)
		for j := 0; j < n; j++ {
			row[j] = irow[j] + u[i]*u[j]*invS
		}
		row[n] = -u[i] * invS
	}
	last := out.Row(n)
	for j := 0; j < n; j++ {
		last[j] = -u[j] * invS
	}
	last[n] = invS
	return out, nil
}

// SolveSPD factorizes a and solves a x = b in one call.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	var c Cholesky
	if err := c.Factorize(a); err != nil {
		return nil, err
	}
	return c.SolveVec(b), nil
}

// Clone returns an independent copy of the factorization, so that
// speculative Extend calls do not disturb the original.
func (c *Cholesky) Clone() Cholesky {
	out := Cholesky{n: c.n}
	if len(c.data) > 0 {
		out.data = make([]float64, len(c.data))
		copy(out.data, c.data)
	}
	return out
}
