package mat

import (
	"fmt"
	"math"
)

// Dot returns the dot product of x and y, which must have equal length.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: dot length %d ≠ %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation avoids overflow for large components.
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Dist2 returns the Euclidean distance between x and y.
func Dist2(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: dist length %d ≠ %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SqDist returns the squared Euclidean distance between x and y.
func SqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: sqdist length %d ≠ %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return s
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: axpy length %d ≠ %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies every element of x by a in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// SumVec returns the sum of the elements of x.
func SumVec(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// MeanVec returns the arithmetic mean of x, or 0 for an empty slice.
func MeanVec(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return SumVec(x) / float64(len(x))
}

// Outer returns the outer product x yᵀ as a len(x)×len(y) matrix.
func Outer(x, y []float64) *Matrix {
	out := New(len(x), len(y))
	for i, xi := range x {
		row := out.Row(i)
		for j, yj := range y {
			row[j] = xi * yj
		}
	}
	return out
}

// MinMax returns the smallest and largest values in x.
// It panics on an empty slice.
func MinMax(x []float64) (min, max float64) {
	if len(x) == 0 {
		panic("mat: MinMax of empty slice")
	}
	min, max = x[0], x[0]
	for _, v := range x[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}
