package mat

import (
	"math"
	"math/rand"
	"testing"
)

// ridgedSPD returns a random symmetric positive definite n×n matrix
// A = B Bᵀ + ridge·I with B entries ~ N(0,1).
func ridgedSPD(rng *rand.Rand, n int, ridge float64) *Matrix {
	b := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b.At(i, k) * b.At(j, k)
			}
			if i == j {
				s += ridge
			}
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
	}
	return a
}

func gaussVec(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// naiveSolve solves a x = b by O(n³) Gaussian elimination on a dense copy —
// the independent reference every Cholesky-based solve is differential-tested
// against. SPD systems are stable without pivoting, which keeps the reference
// trivially auditable.
func naiveSolve(t *testing.T, a *Matrix, b []float64) []float64 {
	t.Helper()
	n := a.Rows()
	w := New(n, n+1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w.Set(i, j, a.At(i, j))
		}
		w.Set(i, n, b[i])
	}
	for col := 0; col < n; col++ {
		if w.At(col, col) == 0 {
			t.Fatal("naiveSolve: zero pivot")
		}
		inv := 1 / w.At(col, col)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) * inv
			for j := col; j <= n; j++ {
				w.Add(r, j, -f*w.At(col, j))
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := w.At(i, n)
		for j := i + 1; j < n; j++ {
			s -= w.At(i, j) * x[j]
		}
		x[i] = s / w.At(i, i)
	}
	return x
}

const propTol = 1e-9

func relClose(a, b float64) bool {
	return math.Abs(a-b) <= propTol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// TestCholeskyFactorizeReconstructs checks L·Lᵀ == A on random SPD matrices.
func TestCholeskyFactorizeReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 8, 25, 60} {
		a := ridgedSPD(rng, n, 0.5)
		var c Cholesky
		if err := c.Factorize(a); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				var s float64
				li, lj := c.LRow(i), c.LRow(j)
				for k := 0; k <= j; k++ {
					s += li[k] * lj[k]
				}
				if !relClose(s, a.At(i, j)) {
					t.Fatalf("n=%d: (LLᵀ)[%d][%d]=%g ≠ %g", n, i, j, s, a.At(i, j))
				}
			}
		}
	}
}

// TestCholeskySolveVsNaive differential-tests SolveVecTo, ForwardSolveTo and
// QuadraticTo against Gaussian elimination.
func TestCholeskySolveVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		a := ridgedSPD(rng, n, 1.0)
		b := gaussVec(rng, n)
		var c Cholesky
		if err := c.Factorize(a); err != nil {
			t.Fatal(err)
		}
		want := naiveSolve(t, a, b)
		got := make([]float64, n)
		c.SolveVecTo(got, b)
		for i := range got {
			if !relClose(got[i], want[i]) {
				t.Fatalf("trial %d n=%d: x[%d]=%g ≠ %g", trial, n, i, got[i], want[i])
			}
		}
		// ForwardSolveTo: L y = b ⇒ reconstruct b from L y.
		y := make([]float64, n)
		c.ForwardSolveTo(y, b)
		for i := 0; i < n; i++ {
			var s float64
			row := c.LRow(i)
			for k := 0; k <= i; k++ {
				s += row[k] * y[k]
			}
			if !relClose(s, b[i]) {
				t.Fatalf("trial %d: (L y)[%d]=%g ≠ b=%g", trial, i, s, b[i])
			}
		}
		// QuadraticTo: bᵀ A⁻¹ b.
		scratch := make([]float64, n)
		got2 := c.QuadraticTo(scratch, b)
		want2 := Dot(b, want)
		if !relClose(got2, want2) {
			t.Fatalf("trial %d: quadratic %g ≠ %g", trial, got2, want2)
		}
	}
}

// TestCholeskyExtendMatchesFactorize grows a factorization column by column
// and checks it matches a from-scratch factorization of each leading block.
func TestCholeskyExtendMatchesFactorize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 30
	a := ridgedSPD(rng, n, 1.0)
	var inc Cholesky
	for k := 1; k <= n; k++ {
		if k == 1 {
			one := New(1, 1)
			one.Set(0, 0, a.At(0, 0))
			if err := inc.Factorize(one); err != nil {
				t.Fatal(err)
			}
		} else {
			border := make([]float64, k-1)
			for j := 0; j < k-1; j++ {
				border[j] = a.At(k-1, j)
			}
			if err := inc.Extend(border, a.At(k-1, k-1)); err != nil {
				t.Fatalf("extend to %d: %v", k, err)
			}
		}
		sub := New(k, k)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				sub.Set(i, j, a.At(i, j))
			}
		}
		var ref Cholesky
		if err := ref.Factorize(sub); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			ri, ii := ref.LRow(i), inc.LRow(i)
			for j := 0; j <= i; j++ {
				if !relClose(ri[j], ii[j]) {
					t.Fatalf("k=%d: L[%d][%d] incremental %g ≠ scratch %g", k, i, j, ii[j], ri[j])
				}
			}
		}
	}
}

// TestRankOneVarianceIdentity pins the algebra behind the greedy-tuning fast
// path: for the bordered SPD system A' = [A k; kᵀ κ] and any probe with
// cross-covariances (a to the base points, c to the border point) and prior
// p, the extended-factor variance
//
//	p − ‖L'⁻¹ [a; c]‖²
//
// equals the rank-1 update
//
//	(p − ‖L⁻¹a‖²) − (c − aᵀA⁻¹k)² / (κ − kᵀA⁻¹k),
//
// which is exactly the clone-based trial the rank-1 path replaced.
func TestRankOneVarianceIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(25)
		a := ridgedSPD(rng, n, 1.0)
		k := gaussVec(rng, n)
		// κ big enough to keep the bordered matrix SPD.
		u := naiveSolve(t, a, k)
		kappa := Dot(k, u) + 0.5 + rng.Float64()
		probeA := gaussVec(rng, n)
		probeC := rng.NormFloat64()
		prior := 5 + rng.Float64()

		var base Cholesky
		if err := base.Factorize(a); err != nil {
			t.Fatal(err)
		}
		ext := base.Clone()
		if err := ext.Extend(k, kappa); err != nil {
			t.Fatal(err)
		}
		// Reference: variance through the extended factor.
		full := make([]float64, n+1)
		copy(full, probeA)
		full[n] = probeC
		fs := make([]float64, n+1)
		ext.ForwardSolveTo(fs, full)
		want := prior - Dot(fs, fs)
		// Rank-1: base variance minus the posterior-covariance term.
		fsBase := make([]float64, n)
		base.ForwardSolveTo(fsBase, probeA)
		vBase := prior - Dot(fsBase, fsBase)
		ua := naiveSolve(t, a, probeA)
		cov := probeC - Dot(k, ua)
		schur := kappa - Dot(k, u)
		got := vBase - cov*cov/schur
		if !relClose(got, want) {
			t.Fatalf("trial %d n=%d: rank-1 variance %g ≠ extended %g", trial, n, got, want)
		}
	}
}

// TestRankOneMeanIdentity pins the companion mean identity: solving the
// bordered system for [y; yNew] and predicting with cross-vector [a; c]
// equals the base prediction plus (yNew − m̂_c)·cov/schur, where m̂_c is the
// base prediction at the border point.
func TestRankOneMeanIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(25)
		a := ridgedSPD(rng, n, 1.0)
		k := gaussVec(rng, n)
		u := naiveSolve(t, a, k)
		kappa := Dot(k, u) + 0.5 + rng.Float64()
		y := gaussVec(rng, n)
		yNew := rng.NormFloat64()
		probeA := gaussVec(rng, n)
		probeC := rng.NormFloat64()

		var base Cholesky
		if err := base.Factorize(a); err != nil {
			t.Fatal(err)
		}
		ext := base.Clone()
		if err := ext.Extend(k, kappa); err != nil {
			t.Fatal(err)
		}
		yFull := make([]float64, n+1)
		copy(yFull, y)
		yFull[n] = yNew
		alphaExt := ext.SolveVec(yFull)
		full := make([]float64, n+1)
		copy(full, probeA)
		full[n] = probeC
		want := Dot(full, alphaExt)

		alphaBase := base.SolveVec(y)
		mBase := Dot(probeA, alphaBase)
		mC := Dot(k, alphaBase)
		cov := probeC - Dot(k, naiveSolve(t, a, probeA))
		schur := kappa - Dot(k, u)
		got := mBase + (yNew-mC)*cov/schur
		if !relClose(got, want) {
			t.Fatalf("trial %d n=%d: rank-1 mean %g ≠ bordered %g", trial, n, got, want)
		}
	}
}

// TestSqDistRowsToMatchesSqDist checks the batched squared-distance core is
// bit-identical to per-row SqDist across dimensions, including the
// specialized d ∈ {1,2,3} paths.
func TestSqDistRowsToMatchesSqDist(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, d := range []int{1, 2, 3, 4, 7, 16} {
		for _, n := range []int{0, 1, 5, 33} {
			xs := make([][]float64, n)
			for i := range xs {
				xs[i] = gaussVec(rng, d)
			}
			y := gaussVec(rng, d)
			dst := make([]float64, n)
			SqDistRowsTo(dst, xs, y)
			for i := range xs {
				if want := SqDist(xs[i], y); dst[i] != want {
					t.Fatalf("d=%d n=%d row %d: %g ≠ %g (must be bit-identical)", d, n, i, dst[i], want)
				}
			}
		}
	}
	// Length mismatches must panic like the scalar path.
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { SqDistRowsTo(make([]float64, 1), make([][]float64, 2), nil) })
	mustPanic(func() { SqDistRowsTo(make([]float64, 1), [][]float64{{1, 2}}, []float64{1}) })
}
