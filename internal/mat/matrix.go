// Package mat provides the dense linear algebra needed by Gaussian process
// regression: matrices, vectors, Cholesky factorization, symmetric
// positive-definite solves, and the incremental bordered-inverse update used
// when a training point is added online (paper §5.2).
//
// The package is deliberately small and allocation-conscious rather than a
// general BLAS replacement. Matrices are dense, row-major float64. Dimension
// mismatches are programmer errors and panic, mirroring the behaviour of
// index-out-of-range on slices; numerical failures (e.g. factorizing a
// non-SPD matrix) are reported as error values.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
// The zero value is an empty 0×0 matrix ready for use with Reset.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns an r×c zero matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromData returns an r×c matrix backed by data (not copied).
// len(data) must equal r*c.
func NewFromData(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %d×%d", len(data), r, c))
	}
	return &Matrix{rows: r, cols: c, data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Dims returns the number of rows and columns.
func (m *Matrix) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add accumulates v into the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %d×%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage.
// Mutating the slice mutates the matrix.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range for %d×%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range for %d×%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Reset resizes m to r×c, reusing the backing store when it has capacity,
// and zeroes every element. It returns m. This is the scratch-buffer hook
// the inference hot path uses to avoid re-allocating Gram and work matrices
// of slowly varying size.
func (m *Matrix) Reset(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	n := r * c
	if cap(m.data) < n {
		m.data = make([]float64, n)
	} else {
		m.data = m.data[:n]
		for i := range m.data {
			m.data[i] = 0
		}
	}
	m.rows, m.cols = r, c
	return m
}

// CopyFrom overwrites m with the contents of src; dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("mat: copy dims %d×%d ≠ %d×%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Data returns the backing slice of m (row-major).
func (m *Matrix) Data() []float64 { return m.data }

// Scale multiplies every element of m by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddMat adds b into m element-wise in place and returns m.
func (m *Matrix) AddMat(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: add dims %d×%d ≠ %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	for i := range m.data {
		m.data[i] += b.data[i]
	}
	return m
}

// SubMat subtracts b from m element-wise in place and returns m.
func (m *Matrix) SubMat(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: sub dims %d×%d ≠ %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	for i := range m.data {
		m.data[i] -= b.data[i]
	}
	return m
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j*m.rows+i] = v
		}
	}
	return out
}

// Mul returns the matrix product a*b.
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: mul dims %d×%d × %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("mat: mulvec dims %d×%d × %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// MulVecT returns mᵀ*x without forming the transpose.
func (m *Matrix) MulVecT(x []float64) []float64 {
	if m.rows != len(x) {
		panic(fmt.Sprintf("mat: mulvecT dims %d×%d ᵀ× %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: trace of non-square %d×%d matrix", m.rows, m.cols))
	}
	var t float64
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

// TraceProductSym returns tr(A·B) for square matrices of which at least one
// is symmetric: tr(AB) = Σ_{i,l} A_il·B_li = Σ_{i,l} A_il·B_il when B = Bᵀ.
// Both operands are walked row-contiguously, unlike the textbook
// tr(AB) = Σ_i (AB)_ii which strides down a column of B for every row of A.
func TraceProductSym(a, b *Matrix) float64 {
	if a.rows != a.cols || b.rows != b.cols || a.rows != b.rows {
		panic(fmt.Sprintf("mat: trace product dims %d×%d × %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	var s float64
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s
}

// Symmetrize replaces m with (m + mᵀ)/2 in place; m must be square.
func (m *Matrix) Symmetrize() *Matrix {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: symmetrize non-square %d×%d matrix", m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			v := (m.data[i*m.cols+j] + m.data[j*m.cols+i]) / 2
			m.data[i*m.cols+j] = v
			m.data[j*m.cols+i] = v
		}
	}
	return m
}

// MaxAbs returns the largest absolute element value, or 0 for empty matrices.
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Equal reports whether a and b have the same shape and all elements within
// tol of each other.
func Equal(a, b *Matrix, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d×%d[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			sb.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.6g", m.data[i*m.cols+j])
		}
	}
	sb.WriteByte(']')
	return sb.String()
}
