package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD returns a random symmetric positive definite n×n matrix
// A = BᵀB + n·I, which is comfortably well-conditioned.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := randomMatrix(rng, n, n)
	a := Mul(b.T(), b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 10, 25} {
		a := randomSPD(rng, n)
		var c Cholesky
		if err := c.Factorize(a); err != nil {
			t.Fatalf("n=%d: Factorize: %v", n, err)
		}
		recon := Mul(c.L(), c.L().T())
		if !Equal(recon, a, 1e-9*a.MaxAbs()) {
			t.Fatalf("n=%d: LLᵀ ≠ A", n)
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	cases := []*Matrix{
		NewFromData(2, 2, []float64{1, 2, 2, 1}), // indefinite
		NewFromData(2, 2, []float64{0, 0, 0, 0}), // zero
		NewFromData(1, 1, []float64{-1}),         // negative
		NewFromData(2, 2, []float64{1, 1, 1, 1}), // singular
	}
	for i, a := range cases {
		var c Cholesky
		if err := c.Factorize(a); !errors.Is(err, ErrNotSPD) {
			t.Fatalf("case %d: error = %v, want ErrNotSPD", i, err)
		}
	}
}

func TestCholeskySolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 4, 16, 64} {
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		var c Cholesky
		if err := c.Factorize(a); err != nil {
			t.Fatal(err)
		}
		x := c.SolveVec(b)
		res := a.MulVec(x)
		for i := range res {
			if !almostEqual(res[i], b[i], 1e-8*(1+math.Abs(b[i]))) {
				t.Fatalf("n=%d: residual[%d] = %g", n, i, res[i]-b[i])
			}
		}
	}
}

func TestCholeskyInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSPD(rng, 8)
	var c Cholesky
	if err := c.Factorize(a); err != nil {
		t.Fatal(err)
	}
	inv := c.Inverse()
	if !Equal(Mul(a, inv), Identity(8), 1e-8) {
		t.Fatalf("A A⁻¹ ≠ I")
	}
	if !Equal(Mul(inv, a), Identity(8), 1e-8) {
		t.Fatalf("A⁻¹ A ≠ I")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	// For a diagonal matrix the determinant is the product of the diagonal.
	a := NewFromData(3, 3, []float64{2, 0, 0, 0, 3, 0, 0, 0, 4})
	var c Cholesky
	if err := c.Factorize(a); err != nil {
		t.Fatal(err)
	}
	if got, want := c.LogDet(), math.Log(24); !almostEqual(got, want, 1e-12) {
		t.Fatalf("LogDet = %g, want %g", got, want)
	}
}

func TestCholeskyQuadratic(t *testing.T) {
	a := NewFromData(2, 2, []float64{2, 0, 0, 5})
	var c Cholesky
	if err := c.Factorize(a); err != nil {
		t.Fatal(err)
	}
	// bᵀ A⁻¹ b = 1²/2 + 2²/5.
	got := c.Quadratic([]float64{1, 2})
	want := 0.5 + 0.8
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("Quadratic = %g, want %g", got, want)
	}
}

func TestCholeskyExtendMatchesRefactorize(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 6
	full := randomSPD(rng, n+1)
	sub := New(n, n)
	for i := 0; i < n; i++ {
		copy(sub.Row(i), full.Row(i)[:n])
	}
	var inc Cholesky
	if err := inc.Factorize(sub); err != nil {
		t.Fatal(err)
	}
	k := make([]float64, n)
	for i := 0; i < n; i++ {
		k[i] = full.At(i, n)
	}
	if err := inc.Extend(k, full.At(n, n)); err != nil {
		t.Fatal(err)
	}
	var batch Cholesky
	if err := batch.Factorize(full); err != nil {
		t.Fatal(err)
	}
	if !Equal(inc.L(), batch.L(), 1e-9) {
		t.Fatalf("Extend factor ≠ batch factor")
	}
}

func TestCholeskyExtendFromEmpty(t *testing.T) {
	var c Cholesky
	if err := c.Extend(nil, 4); err != nil {
		t.Fatal(err)
	}
	if got := c.L().At(0, 0); !almostEqual(got, 2, 1e-15) {
		t.Fatalf("L(0,0) = %g, want 2", got)
	}
	if err := c.Extend([]float64{2}, 5); err != nil {
		t.Fatal(err)
	}
	// A = [4 2; 2 5] → L = [2 0; 1 2].
	want := NewFromData(2, 2, []float64{2, 0, 1, 2})
	if !Equal(c.L(), want, 1e-12) {
		t.Fatalf("L = %v, want %v", c.L(), want)
	}
}

func TestCholeskyExtendRejectsNonSPD(t *testing.T) {
	var c Cholesky
	if err := c.Extend(nil, 1); err != nil {
		t.Fatal(err)
	}
	// Border that makes the matrix singular: [1 1; 1 1].
	if err := c.Extend([]float64{1}, 1); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("error = %v, want ErrNotSPD", err)
	}
}

func TestBorderedInverseMatchesFullInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 5
	full := randomSPD(rng, n+1)
	sub := New(n, n)
	for i := 0; i < n; i++ {
		copy(sub.Row(i), full.Row(i)[:n])
	}
	var c Cholesky
	if err := c.Factorize(sub); err != nil {
		t.Fatal(err)
	}
	k := make([]float64, n)
	for i := 0; i < n; i++ {
		k[i] = full.At(i, n)
	}
	got, err := BorderedInverse(c.Inverse(), k, full.At(n, n))
	if err != nil {
		t.Fatal(err)
	}
	var cf Cholesky
	if err := cf.Factorize(full); err != nil {
		t.Fatal(err)
	}
	if !Equal(got, cf.Inverse(), 1e-7) {
		t.Fatalf("bordered inverse ≠ batch inverse")
	}
}

func TestFactorizeJittered(t *testing.T) {
	// Singular matrix becomes SPD with jitter.
	a := NewFromData(2, 2, []float64{1, 1, 1, 1})
	var c Cholesky
	jit, err := c.FactorizeJittered(a, 1e-10, 12)
	if err != nil {
		t.Fatalf("FactorizeJittered: %v", err)
	}
	if jit <= 0 {
		t.Fatalf("expected positive jitter, got %g", jit)
	}
	// Already-SPD matrix needs no jitter.
	spd := NewFromData(2, 2, []float64{2, 0, 0, 2})
	jit, err = c.FactorizeJittered(spd, 1e-10, 12)
	if err != nil || jit != 0 {
		t.Fatalf("SPD case: jit=%g err=%v", jit, err)
	}
}

func TestSolveSPD(t *testing.T) {
	a := NewFromData(2, 2, []float64{4, 1, 1, 3})
	x, err := SolveSPD(a, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	res := a.MulVec(x)
	if !almostEqual(res[0], 1, 1e-12) || !almostEqual(res[1], 2, 1e-12) {
		t.Fatalf("residual: %v", res)
	}
	if _, err := SolveSPD(NewFromData(1, 1, []float64{-1}), []float64{1}); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("expected ErrNotSPD, got %v", err)
	}
}

// Property: for random SPD matrices the incremental bordered inverse always
// matches the batch inverse. This is the correctness contract behind
// OLGAPRO's O(n²) online-tuning update (paper §5.2).
func TestQuickBorderedInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		full := randomSPD(r, n+1)
		sub := New(n, n)
		for i := 0; i < n; i++ {
			copy(sub.Row(i), full.Row(i)[:n])
		}
		var c Cholesky
		if err := c.Factorize(sub); err != nil {
			return false
		}
		k := make([]float64, n)
		for i := 0; i < n; i++ {
			k[i] = full.At(i, n)
		}
		got, err := BorderedInverse(c.Inverse(), k, full.At(n, n))
		if err != nil {
			return false
		}
		var cf Cholesky
		if err := cf.Factorize(full); err != nil {
			return false
		}
		return Equal(got, cf.Inverse(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Extend repeated from scratch reproduces the batch factorization.
func TestQuickExtendChain(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(7)
		a := randomSPD(r, n)
		var inc Cholesky
		for i := 0; i < n; i++ {
			k := make([]float64, i)
			for j := 0; j < i; j++ {
				k[j] = a.At(j, i)
			}
			if err := inc.Extend(k, a.At(i, i)); err != nil {
				return false
			}
		}
		var batch Cholesky
		if err := batch.Factorize(a); err != nil {
			return false
		}
		return Equal(inc.L(), batch.L(), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{3, 4}
	if got := Norm2(x); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Norm2 = %g, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %g, want 0", got)
	}
	if got := Dist2([]float64{0, 0}, x); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Dist2 = %g, want 5", got)
	}
	if got := SqDist([]float64{0, 0}, x); !almostEqual(got, 25, 1e-12) {
		t.Fatalf("SqDist = %g, want 25", got)
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v", y)
	}
	ScaleVec(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("ScaleVec = %v", y)
	}
	if got := SumVec(y); !almostEqual(got, 8, 1e-12) {
		t.Fatalf("SumVec = %g", got)
	}
	if got := MeanVec(y); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("MeanVec = %g", got)
	}
	if got := MeanVec(nil); got != 0 {
		t.Fatalf("MeanVec(nil) = %g", got)
	}
	mn, mx := MinMax([]float64{2, -1, 5})
	if mn != -1 || mx != 5 {
		t.Fatalf("MinMax = (%g,%g)", mn, mx)
	}
	o := Outer([]float64{1, 2}, []float64{3, 4})
	want := NewFromData(2, 2, []float64{3, 4, 6, 8})
	if !Equal(o, want, 0) {
		t.Fatalf("Outer = %v", o)
	}
	c := CloneVec(x)
	c[0] = 99
	if x[0] != 3 {
		t.Fatalf("CloneVec shares storage")
	}
}

func TestNorm2Overflow(t *testing.T) {
	big := math.MaxFloat64 / 4
	got := Norm2([]float64{big, big})
	if math.IsInf(got, 1) || math.IsNaN(got) {
		t.Fatalf("Norm2 overflowed: %g", got)
	}
	want := big * math.Sqrt2
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Norm2 = %g, want %g", got, want)
	}
}

func BenchmarkCholeskyFactorize128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomSPD(rng, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c Cholesky
		if err := c.Factorize(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskyExtend128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	full := randomSPD(rng, 129)
	sub := New(128, 128)
	for i := 0; i < 128; i++ {
		copy(sub.Row(i), full.Row(i)[:128])
	}
	k := make([]float64, 128)
	for i := range k {
		k[i] = full.At(i, 128)
	}
	var base Cholesky
	if err := base.Factorize(sub); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := base.Clone()
		if err := c.Extend(k, full.At(128, 128)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCholeskyRank1UpdateMatchesRefactorize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 5, 12, 30} {
		a := randomSPD(rng, n)
		var c Cholesky
		if err := c.Factorize(a); err != nil {
			t.Fatal(err)
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		// A' = A + vvᵀ, both incrementally and from scratch.
		vc := make([]float64, n)
		copy(vc, v)
		if err := c.Rank1Update(vc); err != nil {
			t.Fatalf("n=%d: Rank1Update: %v", n, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Add(i, j, v[i]*v[j])
			}
		}
		var batch Cholesky
		if err := batch.Factorize(a); err != nil {
			t.Fatal(err)
		}
		if !Equal(c.L(), batch.L(), 1e-8*a.MaxAbs()) {
			t.Fatalf("n=%d: rank-1 updated factor ≠ batch factor", n)
		}
	}
}

func TestCholeskyRank1UpdateChain(t *testing.T) {
	// Many consecutive updates must stay consistent with the accumulated
	// matrix — this is exactly the sparse-GP absorb pattern.
	rng := rand.New(rand.NewSource(12))
	n := 8
	a := randomSPD(rng, n)
	var c Cholesky
	if err := c.Factorize(a); err != nil {
		t.Fatal(err)
	}
	v := make([]float64, n)
	vc := make([]float64, n)
	for step := 0; step < 50; step++ {
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		copy(vc, v)
		if err := c.Rank1Update(vc); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Add(i, j, v[i]*v[j])
			}
		}
	}
	recon := Mul(c.L(), c.L().T())
	if !Equal(recon, a, 1e-8*a.MaxAbs()) {
		t.Fatal("chained rank-1 updates diverged from accumulated matrix")
	}
	// The factor must still solve correctly.
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := c.SolveVec(b)
	res := a.MulVec(x)
	for i := range res {
		if !almostEqual(res[i], b[i], 1e-6*(1+math.Abs(b[i]))) {
			t.Fatalf("residual[%d] = %g", i, res[i]-b[i])
		}
	}
}

func TestCholeskyRank1UpdateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 16
	a := randomSPD(rng, n)
	var c Cholesky
	if err := c.Factorize(a); err != nil {
		t.Fatal(err)
	}
	v := make([]float64, n)
	allocs := testing.AllocsPerRun(100, func() {
		for i := range v {
			v[i] = 0.01
		}
		if err := c.Rank1Update(v); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Rank1Update allocated %v times per run, want 0", allocs)
	}
}
