package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if r, c := m.Dims(); r != 2 || c != 3 {
		t.Fatalf("Dims() = (%d,%d), want (2,3)", r, c)
	}
	m.Set(1, 2, 4.5)
	if got := m.At(1, 2); got != 4.5 {
		t.Fatalf("At(1,2) = %g, want 4.5", got)
	}
	m.Add(1, 2, 0.5)
	if got := m.At(1, 2); got != 5 {
		t.Fatalf("after Add, At(1,2) = %g, want 5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("zero element = %g, want 0", got)
	}
}

func TestNewFromData(t *testing.T) {
	m := NewFromData(2, 2, []float64{1, 2, 3, 4})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("unexpected layout: %v", m)
	}
}

func TestIndexPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"At out of range", func() { New(2, 2).At(2, 0) }},
		{"Set out of range", func() { New(2, 2).Set(0, -1, 1) }},
		{"Row out of range", func() { New(2, 2).Row(5) }},
		{"Col out of range", func() { New(2, 2).Col(2) }},
		{"NewFromData bad len", func() { NewFromData(2, 2, []float64{1}) }},
		{"Mul bad dims", func() { Mul(New(2, 3), New(2, 3)) }},
		{"MulVec bad dims", func() { New(2, 3).MulVec([]float64{1}) }},
		{"Trace non-square", func() { New(2, 3).Trace() }},
		{"Dot bad len", func() { Dot([]float64{1}, []float64{1, 2}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(3).At(%d,%d) = %g, want %g", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewFromData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := NewFromData(2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 0) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 4, 4)
	if got := Mul(a, Identity(4)); !Equal(got, a, 1e-15) {
		t.Fatalf("A*I ≠ A")
	}
	if got := Mul(Identity(4), a); !Equal(got, a, 1e-15) {
		t.Fatalf("I*A ≠ A")
	}
}

func TestMulVecAndT(t *testing.T) {
	a := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	got := a.MulVec(x)
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", got)
	}
	y := []float64{1, 1}
	gotT := a.MulVecT(y)
	want := []float64{5, 7, 9}
	for i := range want {
		if gotT[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", gotT, want)
		}
	}
	// MulVecT must equal T().MulVec.
	tr := a.T().MulVec(y)
	for i := range tr {
		if !almostEqual(tr[i], gotT[i], 1e-15) {
			t.Fatalf("MulVecT disagrees with T().MulVec: %v vs %v", gotT, tr)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 3, 5)
	if !Equal(a.T().T(), a, 0) {
		t.Fatalf("(Aᵀ)ᵀ ≠ A")
	}
}

func TestScaleAddSub(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 2, 3, 4})
	b := a.Clone()
	a.Scale(2)
	want := NewFromData(2, 2, []float64{2, 4, 6, 8})
	if !Equal(a, want, 0) {
		t.Fatalf("Scale(2) = %v, want %v", a, want)
	}
	a.SubMat(b)
	if !Equal(a, b, 0) {
		t.Fatalf("2A - A ≠ A: %v", a)
	}
	a.AddMat(b)
	if !Equal(a, want, 0) {
		t.Fatalf("A + A ≠ 2A: %v", a)
	}
}

func TestTraceSymmetrize(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 5, 3, 4})
	if got := a.Trace(); got != 5 {
		t.Fatalf("Trace = %g, want 5", got)
	}
	a.Symmetrize()
	if a.At(0, 1) != 4 || a.At(1, 0) != 4 {
		t.Fatalf("Symmetrize = %v", a)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewFromData(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatalf("Clone shares storage")
	}
}

func TestRowAliasesStorage(t *testing.T) {
	a := New(2, 2)
	a.Row(1)[0] = 7
	if a.At(1, 0) != 7 {
		t.Fatalf("Row should alias storage")
	}
}

func TestMaxAbs(t *testing.T) {
	a := NewFromData(1, 3, []float64{-5, 2, 3})
	if got := a.MaxAbs(); got != 5 {
		t.Fatalf("MaxAbs = %g, want 5", got)
	}
	if got := New(0, 0).MaxAbs(); got != 0 {
		t.Fatalf("MaxAbs of empty = %g, want 0", got)
	}
}

func TestString(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 2, 3, 4})
	if got := a.String(); got != "2×2[1 2; 3 4]" {
		t.Fatalf("String = %q", got)
	}
}

// Property: matrix multiplication distributes over addition.
func TestQuickMulDistributes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		m := 1 + r.Intn(6)
		p := 1 + r.Intn(6)
		a := randomMatrix(r, n, m)
		b := randomMatrix(r, m, p)
		c := randomMatrix(r, m, p)
		left := Mul(a, b.Clone().AddMat(c))
		right := Mul(a, b).AddMat(Mul(a, c))
		return Equal(left, right, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestQuickTransposeOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		m := 1 + r.Intn(5)
		p := 1 + r.Intn(5)
		a := randomMatrix(r, n, m)
		b := randomMatrix(r, m, p)
		return Equal(Mul(a, b).T(), Mul(b.T(), a.T()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 64, 64)
	c := randomMatrix(rng, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(a, c)
	}
}

func BenchmarkMulVec256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 256, 256)
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(x)
	}
}
