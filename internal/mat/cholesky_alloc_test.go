package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// The packed factor must make the in-place solve entry points truly
// allocation-free: these are the per-sample inner loops of GP inference, so
// a single stray allocation here multiplies by ~10⁴ per input tuple.
func TestSolveToVariantsZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n = 64
	a := randomSPD(rng, n)
	var c Cholesky
	if err := c.Factorize(a); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	dst := make([]float64, n)
	if allocs := testing.AllocsPerRun(100, func() {
		c.ForwardSolveTo(dst, b)
	}); allocs != 0 {
		t.Fatalf("ForwardSolveTo allocates %.1f per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		c.SolveVecTo(dst, b)
	}); allocs != 0 {
		t.Fatalf("SolveVecTo allocates %.1f per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		c.QuadraticTo(dst, b)
	}); allocs != 0 {
		t.Fatalf("QuadraticTo allocates %.1f per run, want 0", allocs)
	}
}

// Steady-state Extend must not allocate once the packed store's capacity
// has grown past the working size (the capacity-doubling contract).
func TestExtendAmortizedZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const n = 32
	full := randomSPD(rng, n)
	var warm Cholesky
	// Warm the store to full capacity, then rebuild from scratch inside it.
	for i := 0; i < n; i++ {
		k := make([]float64, i)
		for j := 0; j < i; j++ {
			k[j] = full.At(j, i)
		}
		if err := warm.Extend(k, full.At(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	sub := New(n-1, n-1)
	for i := 0; i < n-1; i++ {
		copy(sub.Row(i), full.Row(i)[:n-1])
	}
	k := make([]float64, n-1)
	for j := 0; j < n-1; j++ {
		k[j] = full.At(j, n-1)
	}
	if err := warm.Factorize(sub); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := warm.Extend(k, full.At(n-1, n-1)); err != nil {
			t.Fatal(err)
		}
		// Shrink back by refactorizing in the retained store.
		if err := warm.Factorize(sub); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm Extend allocates %.1f per run, want 0", allocs)
	}
}

// SolveVecTo and ForwardSolveTo document that dst may alias b.
func TestSolveToAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 17
	a := randomSPD(rng, n)
	var c Cholesky
	if err := c.Factorize(a); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := c.SolveVec(b)
	got := CloneVec(b)
	c.SolveVecTo(got, got)
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("aliased SolveVecTo[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	wantF := c.ForwardSolve(b)
	gotF := CloneVec(b)
	c.ForwardSolveTo(gotF, gotF)
	for i := range wantF {
		if !almostEqual(gotF[i], wantF[i], 1e-12) {
			t.Fatalf("aliased ForwardSolveTo[%d] = %g, want %g", i, gotF[i], wantF[i])
		}
	}
}

// Interleaved Extend/Clone/SolveVec sequences over the capacity-doubling
// store must agree with a from-scratch factorization to 1e-10: clones must
// not share mutable state with the original, and failed extends must leave
// the factorization untouched.
func TestExtendInterleavedAgreesWithFactorize(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	const n = 40
	full := randomSPD(rng, n)
	var inc Cholesky
	clones := make([]Cholesky, 0, 4)
	cloneAt := make([]int, 0, 4)
	for i := 0; i < n; i++ {
		k := make([]float64, i)
		for j := 0; j < i; j++ {
			k[j] = full.At(j, i)
		}
		if err := inc.Extend(k, full.At(i, i)); err != nil {
			t.Fatalf("extend %d: %v", i, err)
		}
		if i%11 == 3 {
			clones = append(clones, inc.Clone())
			cloneAt = append(cloneAt, i+1)
		}
		if i%7 == 5 {
			// A failing speculative extend (border duplicating column 0
			// with a too-small diagonal, making the Schur complement
			// −1) must leave the factorization unchanged.
			bad := make([]float64, i+1)
			for j := 0; j <= i; j++ {
				bad[j] = full.At(j, 0)
			}
			if err := inc.Extend(bad, full.At(0, 0)-1); !errors.Is(err, ErrNotSPD) {
				t.Fatalf("duplicate border extend: err = %v, want ErrNotSPD", err)
			}
			if inc.Size() != i+1 {
				t.Fatalf("failed extend changed size to %d", inc.Size())
			}
		}
		// Solve against the incrementally built factor and check the
		// residual at every step.
		b := make([]float64, i+1)
		for j := range b {
			b[j] = rng.NormFloat64()
		}
		x := inc.SolveVec(b)
		sub := New(i+1, i+1)
		for r := 0; r <= i; r++ {
			copy(sub.Row(r), full.Row(r)[:i+1])
		}
		res := sub.MulVec(x)
		for j := range res {
			if math.Abs(res[j]-b[j]) > 1e-8*(1+math.Abs(b[j])) {
				t.Fatalf("step %d: residual[%d] = %g", i, j, res[j]-b[j])
			}
		}
	}
	// The final factor matches a from-scratch factorization to 1e-10.
	var batch Cholesky
	if err := batch.Factorize(full); err != nil {
		t.Fatal(err)
	}
	if !Equal(inc.L(), batch.L(), 1e-10) {
		t.Fatalf("interleaved factor ≠ batch factor")
	}
	// Each clone froze the factor at its snapshot size and still matches a
	// from-scratch factorization of its principal minor.
	for ci, cl := range clones {
		sz := cloneAt[ci]
		sub := New(sz, sz)
		for r := 0; r < sz; r++ {
			copy(sub.Row(r), full.Row(r)[:sz])
		}
		var want Cholesky
		if err := want.Factorize(sub); err != nil {
			t.Fatal(err)
		}
		if cl.Size() != sz {
			t.Fatalf("clone %d size %d, want %d", ci, cl.Size(), sz)
		}
		if !Equal(cl.L(), want.L(), 1e-10) {
			t.Fatalf("clone %d diverged from batch factorization", ci)
		}
	}
}

// FactorizeJittered no longer clones its input: the jitter is folded into
// the running pivot, so the input matrix must come back bit-identical even
// on the retry path.
func TestFactorizeJitteredLeavesInputUnmodified(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 1, 1, 1}) // singular: forces retries
	orig := a.Clone()
	var c Cholesky
	if _, err := c.FactorizeJittered(a, 1e-10, 12); err != nil {
		t.Fatal(err)
	}
	if !Equal(a, orig, 0) {
		t.Fatalf("FactorizeJittered modified its input: %v", a)
	}
}

func TestInverseToMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	a := randomSPD(rng, 9)
	var c Cholesky
	if err := c.Factorize(a); err != nil {
		t.Fatal(err)
	}
	dst := New(9, 9)
	if !Equal(c.InverseTo(dst), c.Inverse(), 1e-12) {
		t.Fatalf("InverseTo ≠ Inverse")
	}
	if allocs := testing.AllocsPerRun(20, func() {
		c.InverseTo(dst)
	}); allocs != 0 {
		t.Fatalf("InverseTo allocates %.1f per run, want 0", allocs)
	}
}

func TestTraceProductSym(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	a := randomSPD(rng, 6)
	b := randomSPD(rng, 6)
	want := Mul(a, b).Trace()
	if got := TraceProductSym(a, b); !almostEqual(got, want, 1e-9*math.Abs(want)) {
		t.Fatalf("TraceProductSym = %g, want %g", got, want)
	}
}

func TestMatrixReset(t *testing.T) {
	m := New(3, 4)
	m.Set(1, 2, 5)
	data := m.Data()
	m.Reset(2, 2)
	if r, c := m.Dims(); r != 2 || c != 2 {
		t.Fatalf("Reset dims = %d×%d", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("Reset left stale value at (%d,%d)", i, j)
			}
		}
	}
	if &m.Data()[0] != &data[0] {
		t.Fatalf("Reset reallocated despite sufficient capacity")
	}
	m.Reset(10, 10) // must grow
	if r, c := m.Dims(); r != 10 || c != 10 {
		t.Fatalf("grown Reset dims = %d×%d", r, c)
	}
}
