package mat

import "fmt"

// SqDistRowsTo fills dst[i] = ‖xs[i] − y‖² for every row of xs — the blocked
// squared-distance core behind batch kernel evaluation (kernel.CrossVec /
// GramInto). Compared with calling SqDist per row it hoists the length
// validation out of the loop, specializes the common low dimensions so the
// inner loop has no trip-count branch, and keeps the accumulation order
// identical to SqDist so the two paths agree bit-for-bit. dst must have
// length len(xs); it is returned for convenience.
func SqDistRowsTo(dst []float64, xs [][]float64, y []float64) []float64 {
	if len(dst) != len(xs) {
		panic(fmt.Sprintf("mat: sqdistrows dst length %d ≠ %d", len(dst), len(xs)))
	}
	d := len(y)
	for i, row := range xs {
		if len(row) != d {
			panic(fmt.Sprintf("mat: sqdistrows row %d length %d ≠ %d", i, len(row), d))
		}
	}
	switch d {
	case 1:
		for i, row := range xs {
			v := row[0] - y[0]
			dst[i] = v * v
		}
	case 2:
		y0, y1 := y[0], y[1]
		for i, row := range xs {
			row = row[:2]
			d0 := row[0] - y0
			d1 := row[1] - y1
			dst[i] = d0*d0 + d1*d1
		}
	case 3:
		y0, y1, y2 := y[0], y[1], y[2]
		for i, row := range xs {
			row = row[:3]
			d0 := row[0] - y0
			d1 := row[1] - y1
			d2 := row[2] - y2
			dst[i] = d0*d0 + d1*d1 + d2*d2
		}
	default:
		for i, row := range xs {
			row = row[:d]
			var s float64
			for j := 0; j < d; j++ {
				v := row[j] - y[j]
				s += v * v
			}
			dst[i] = s
		}
	}
	return dst
}
