package fleet

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestHealthOrderClassStability pins Order's contract under a fake clock:
// candidates sort live-first, and the relative order WITHIN each class is
// the caller's — the router depends on this so the ring's owner-first
// replica order survives health shuffling.
func TestHealthOrderClassStability(t *testing.T) {
	h := NewHealth(time.Second)
	clock := time.Unix(1000, 0)
	h.now = func() time.Time { return clock }

	addrs := []string{"a", "b", "c", "d", "e"}
	if got := h.Order(addrs); !reflect.DeepEqual(got, addrs) {
		t.Fatalf("all-live order changed: %v", got)
	}

	h.MarkDown("b")
	h.MarkDown("d")
	if got := h.Order(addrs); !reflect.DeepEqual(got, []string{"a", "c", "e", "b", "d"}) {
		t.Fatalf("mixed order: %v, want live {a c e} then dead {b d} in input order", got)
	}

	// Everything down: all candidates remain (deprioritized, never
	// excluded) in input order.
	for _, a := range addrs {
		h.MarkDown(a)
	}
	if got := h.Order(addrs); !reflect.DeepEqual(got, addrs) {
		t.Fatalf("all-dead order: %v, want input order %v", got, addrs)
	}

	// Cooldown expiry re-admits without any MarkUp: advance the fake clock
	// exactly to the boundary (≥ cooldown counts as live again).
	clock = clock.Add(time.Second)
	if got := h.Order(addrs); !reflect.DeepEqual(got, addrs) {
		t.Fatalf("post-cooldown order: %v", got)
	}
	for _, a := range addrs {
		if !h.Up(a) {
			t.Fatalf("%s still down after cooldown", a)
		}
	}

	// A fresh failure restarts the clock for that shard only.
	h.MarkDown("c")
	clock = clock.Add(500 * time.Millisecond)
	if got := h.Order(addrs); !reflect.DeepEqual(got, []string{"a", "b", "d", "e", "c"}) {
		t.Fatalf("re-failed order: %v", got)
	}
	h.MarkUp("c")
	if !h.Up("c") {
		t.Fatal("MarkUp did not clear the cooldown")
	}
}

// TestHealthConcurrentMarks hammers the ledger from many goroutines so the
// race detector can vet the locking; the final state must reflect each
// shard's last writer.
func TestHealthConcurrentMarks(t *testing.T) {
	h := NewHealth(time.Hour) // cooldown never expires during the test
	addrs := []string{"s0", "s1", "s2", "s3"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a := addrs[(g+i)%len(addrs)]
				if i%2 == 0 {
					h.MarkDown(a)
				} else {
					h.MarkUp(a)
				}
				h.Up(a)
				h.Order(addrs)
			}
		}(g)
	}
	wg.Wait()

	// Deterministic tail: settle every shard into a known state and check
	// the ledger agrees.
	h.MarkUp("s0")
	h.MarkUp("s1")
	h.MarkDown("s2")
	h.MarkDown("s3")
	if got := h.Order(addrs); !reflect.DeepEqual(got, []string{"s0", "s1", "s2", "s3"}) {
		t.Fatalf("settled order: %v", got)
	}
	if !h.Up("s0") || !h.Up("s1") || h.Up("s2") || h.Up("s3") {
		t.Fatal("settled Up states wrong")
	}
}
