package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"olgapro/client"
	"olgapro/internal/server"
	"olgapro/internal/server/wire"
)

// This file is the deterministic fleet chaos harness: a seeded splitmix64
// schedule of kills, restarts, joins, leaves, dropped hints, and learn
// bursts over in-process shards behind stable-URL proxies, with every learn
// mirrored onto a single-shard reference server. After every event the
// fleet must reconverge (replicas caught up, exactly one owner per UDF),
// and frozen replays through the router must stay byte-identical to the
// reference — the invariant that frozen responses are a pure function of
// (model seq, request bytes), preserved across arbitrary membership churn.
// The schedule is a pure function of chaosSeed, so a failure replays
// exactly; timing varies between runs, outcomes do not.

const chaosSeed = 0xC0FFEE

// chaosRNG is splitmix64 (the ring's mix64 finalizer over a Weyl sequence).
type chaosRNG struct{ state uint64 }

func (c *chaosRNG) next() uint64 {
	c.state += 0x9e3779b97f4a7c15
	return mix64(c.state)
}

func (c *chaosRNG) intn(n int) int { return int(c.next() % uint64(n)) }

// chaosSlot is one stable shard address: an httptest proxy whose URL
// survives the shard process behind it being killed and restarted.
// A nil handler aborts the connection, which is what a dead process
// looks like to its peers.
type chaosSlot struct {
	ts      *httptest.Server
	handler atomic.Pointer[http.Handler]
}

func newChaosSlot() *chaosSlot {
	s := &chaosSlot{}
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := s.handler.Load()
		if h == nil {
			panic(http.ErrAbortHandler)
		}
		(*h).ServeHTTP(w, r)
	}))
	return s
}

// chaosShard is one live shard process: server + replicator behind a slot.
type chaosShard struct {
	slot *chaosSlot
	srv  *server.Server
	repl *Replicator
}

type chaosHarness struct {
	t   *testing.T
	ctx context.Context
	rng *chaosRNG

	router   *Router
	routerTS *httptest.Server
	rcl      *client.Client // fleet surface via the router

	refSrv *server.Server // single-shard reference
	refTS  *httptest.Server
	refCl  *client.Client

	slots    []*chaosSlot // fixed address pool; index nextSlot..end unused
	nextSlot int
	members  map[string]*chaosShard // membership URL → shard (dead included)
	dead     string                 // the (at most one) killed member's URL

	dropAll  atomic.Bool // shared lossy-network switch for push hints
	names    []string
	frozenIn []client.InputSpec

	closeOnce sync.Once
}

// spawn boots a shard process behind the slot with the given boot
// membership and registers it in the member map.
func (h *chaosHarness) spawn(slot *chaosSlot, bootShards []string) *chaosShard {
	h.t.Helper()
	srv, err := server.New(server.Config{Workers: 2, RequestTimeout: time.Second})
	if err != nil {
		h.t.Fatal(err)
	}
	repl, err := StartReplicator(ReplicatorConfig{
		Self: slot.ts.URL, Shards: bootShards, Registry: srv.Registry(),
		Replicas: 2, Interval: 25 * time.Millisecond,
		dropHint: func(string, wire.ReplicationHint) bool { return h.dropAll.Load() },
	})
	if err != nil {
		h.t.Fatal(err)
	}
	srv.SetFleetHooks(&server.FleetHooks{
		Membership:      repl.Membership,
		AdoptMembership: repl.AdoptMembership,
		Hint:            repl.Hint,
	})
	handler := srv.Handler()
	slot.handler.Store(&handler)
	sh := &chaosShard{slot: slot, srv: srv, repl: repl}
	h.members[slot.ts.URL] = sh
	return sh
}

// stop kills the process behind a shard (slot and URL survive).
func stopShard(sh *chaosShard) {
	sh.slot.handler.Store(nil)
	if sh.repl != nil {
		sh.repl.Close()
		sh.repl = nil
	}
	if sh.srv != nil {
		sh.srv.Close()
		sh.srv = nil
	}
}

func (h *chaosHarness) memberURLs() []string {
	urls := make([]string, 0, len(h.members))
	for u := range h.members {
		urls = append(urls, u)
	}
	return urls
}

func (h *chaosHarness) ring() *Ring {
	ring, err := NewRing(h.memberURLs(), 0)
	if err != nil {
		h.t.Fatal(err)
	}
	return ring
}

// converged reports whether every UDF has settled under the current
// membership: every live placed shard holds the newest model seq, the ring
// owner (when alive) is promoted, and nobody else claims ownership.
func (h *chaosHarness) converged() bool {
	ring := h.ring()
	for _, name := range h.names {
		owner := ring.Owner(name)
		placed := ring.Replicas(name, 2)
		expected := int64(-1)
		for _, u := range placed {
			if u == h.dead {
				continue
			}
			if e, ok := h.members[u].srv.Registry().Get(name); ok && e.Seq() > expected {
				expected = e.Seq()
			}
		}
		if expected < 0 {
			return false // no live placed shard holds the model yet
		}
		for _, u := range placed {
			if u == h.dead {
				continue
			}
			e, ok := h.members[u].srv.Registry().Get(name)
			if !ok || e.Seq() < expected {
				return false
			}
			if u == owner {
				if e.Replica() {
					return false // promotion pending
				}
			} else if !e.Replica() {
				return false // demotion pending
			}
		}
		// No live non-owner member may still claim ownership (stale owner
		// from before a rebalance).
		for u, sh := range h.members {
			if u == h.dead || u == owner {
				continue
			}
			if e, ok := sh.srv.Registry().Get(name); ok && !e.Replica() {
				return false
			}
		}
	}
	return true
}

func (h *chaosHarness) describe() string {
	var b bytes.Buffer
	ring := h.ring()
	fmt.Fprintf(&b, "members=%v dead=%q router_epoch=%d\n", h.memberURLs(), h.dead, h.router.Membership().Epoch)
	for _, name := range h.names {
		fmt.Fprintf(&b, "  %s owner=%s placed=%v:", name, ring.Owner(name), ring.Replicas(name, 2))
		for u, sh := range h.members {
			if u == h.dead {
				fmt.Fprintf(&b, " %s=dead", u)
				continue
			}
			if e, ok := sh.srv.Registry().Get(name); ok {
				fmt.Fprintf(&b, " %s=seq%d,replica=%v", u, e.Seq(), e.Replica())
			} else {
				fmt.Fprintf(&b, " %s=absent", u)
			}
		}
		fmt.Fprintf(&b, " epochs:")
		for u, sh := range h.members {
			if u != h.dead {
				fmt.Fprintf(&b, " %s=%d", u, sh.repl.View().Epoch())
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func (h *chaosHarness) waitConverged(event string) {
	h.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !h.converged() {
		if time.Now().After(deadline) {
			h.t.Fatalf("fleet did not reconverge after %s:\n%s", event, h.describe())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// learn streams a small learning burst for one rng-chosen UDF through the
// router, mirroring it onto the reference — unless the owner is dead, in
// which case the fleet must refuse it (and the reference learns nothing).
// Learn results are compared structurally, not byte-wise: after a handoff
// the new owner's tuning evaluator was restored from a snapshot, whose
// incremental factorization differs from the reference's never-restored
// one in the last ulps. The model STATE (support set, hyperparameters)
// must still evolve identically — that is what frozenCheck pins byte-wise.
func (h *chaosHarness) learn(i int) {
	h.t.Helper()
	name := h.names[h.rng.intn(len(h.names))]
	inputs := fleetInputs(2, int64(i)*7919+13)
	seed := int64(i%97 + 1)
	res, _, err := h.rcl.Stream(h.ctx, name, client.StreamOptions{Seed: seed}, inputs)
	if owner := h.ring().Owner(name); owner == h.dead {
		if err == nil {
			h.t.Fatalf("event %d: learn on %s accepted though owner %s is dead", i, name, owner)
		}
		return
	}
	if err != nil {
		h.t.Fatalf("event %d: learn %s via router: %v\n%s", i, name, err, h.describe())
	}
	ref, _, err := h.refCl.Stream(h.ctx, name, client.StreamOptions{Seed: seed}, inputs)
	if err != nil {
		h.t.Fatalf("event %d: learn %s on reference: %v", i, name, err)
	}
	if len(res) != len(ref) {
		h.t.Fatalf("event %d: learn %s: %d results vs %d on reference", i, name, len(res), len(ref))
	}
	for j := range res {
		if res[j].Error != "" || ref[j].Error != "" {
			h.t.Fatalf("event %d: learn %s line %d errored: %q / %q", i, name, j, res[j].Error, ref[j].Error)
		}
		if res[j].Seq != ref[j].Seq || res[j].PointsAdded != ref[j].PointsAdded ||
			res[j].LocalPoints != ref[j].LocalPoints || !res[j].MetBudget || !ref[j].MetBudget {
			h.t.Fatalf("event %d: learn %s line %d drifted from reference:\nfleet %+v\nref   %+v",
				i, name, j, res[j].EvalResult, ref[j].EvalResult)
		}
	}
	h.waitConverged(fmt.Sprintf("learn %s (event %d)", name, i))
}

// frozenCheck replays every UDF frozen through the router and byte-compares
// against the single-shard reference.
func (h *chaosHarness) frozenCheck(i int) {
	h.t.Helper()
	h.waitConverged(fmt.Sprintf("pre-frozen (event %d)", i))
	for _, name := range h.names {
		_, raw, err := h.rcl.Stream(h.ctx, name, client.StreamOptions{Frozen: true, Seed: 99}, h.frozenIn)
		if err != nil {
			h.t.Fatalf("event %d: frozen %s via router: %v\n%s", i, name, err, h.describe())
		}
		_, ref, err := h.refCl.Stream(h.ctx, name, client.StreamOptions{Frozen: true, Seed: 99}, h.frozenIn)
		if err != nil {
			h.t.Fatalf("event %d: frozen %s on reference: %v", i, name, err)
		}
		if !bytes.Equal(raw, ref) {
			h.t.Fatalf("event %d: frozen replay of %s diverged from reference:\n%s\nvs\n%s\n%s",
				i, name, raw, ref, h.describe())
		}
	}
}

func (h *chaosHarness) kill(i int) {
	h.t.Helper()
	urls := h.memberURLs()
	victim := urls[h.rng.intn(len(urls))]
	stopShard(h.members[victim])
	h.dead = victim
}

func (h *chaosHarness) restart(i int) {
	h.t.Helper()
	victim := h.dead
	// An operator restarting a shard boots it with the membership it knows;
	// any newer epoch reaches it through gossip on the replication lists.
	sh := h.spawn(h.members[victim].slot, h.memberURLs())
	h.members[victim] = sh
	h.dead = ""
	h.waitConverged(fmt.Sprintf("restart %s (event %d)", victim, i))
}

func (h *chaosHarness) join(i int) {
	h.t.Helper()
	slot := h.slots[h.nextSlot]
	h.nextSlot++
	// The documented join procedure: the new shard boots knowing only
	// itself; the router's join broadcast delivers the real membership.
	h.spawn(slot, []string{slot.ts.URL})
	if _, err := h.rcl.FleetMembers(h.ctx, client.FleetMembersRequest{Op: "join", Shard: slot.ts.URL}); err != nil {
		h.t.Fatalf("event %d: join %s: %v", i, slot.ts.URL, err)
	}
	h.waitConverged(fmt.Sprintf("join %s (event %d)", slot.ts.URL, i))
}

func (h *chaosHarness) leave(i int) {
	h.t.Helper()
	// Removing the dead member is the operational fix for a lost shard;
	// otherwise evict an rng-chosen live one.
	victim := h.dead
	if victim == "" {
		urls := h.memberURLs()
		victim = urls[h.rng.intn(len(urls))]
	}
	sh := h.members[victim]
	if _, err := h.rcl.FleetMembers(h.ctx, client.FleetMembersRequest{Op: "leave", Shard: victim}); err != nil {
		h.t.Fatalf("event %d: leave %s: %v", i, victim, err)
	}
	delete(h.members, victim)
	if victim == h.dead {
		h.dead = ""
	}
	// The departed shard keeps serving frozen reads (the router's previous-
	// epoch fallback) until the new placement has fully converged.
	h.waitConverged(fmt.Sprintf("leave %s (event %d)", victim, i))
	stopShard(sh)
}

func (h *chaosHarness) teardown() {
	h.closeOnce.Do(func() {
		for _, sh := range h.members {
			stopShard(sh)
		}
		if h.router != nil {
			h.router.Close()
		}
		if h.routerTS != nil {
			h.routerTS.Close()
		}
		if h.refSrv != nil {
			h.refSrv.Close()
		}
		if h.refTS != nil {
			h.refTS.Close()
		}
		for _, s := range h.slots {
			s.ts.Close()
		}
		if tr, ok := http.DefaultTransport.(*http.Transport); ok {
			tr.CloseIdleConnections()
		}
	})
}

// TestFleetChaosHarness runs the seeded 200-event chaos schedule.
func TestFleetChaosHarness(t *testing.T) {
	baseline := runtime.NumGoroutine()

	h := &chaosHarness{
		t:        t,
		ctx:      context.Background(),
		rng:      &chaosRNG{state: chaosSeed},
		members:  make(map[string]*chaosShard),
		names:    []string{"chaos-a", "chaos-b", "chaos-c"},
		frozenIn: fleetInputs(4, 101),
	}
	t.Cleanup(h.teardown)

	// Address pool: 3 boot members + room for joins.
	for i := 0; i < 8; i++ {
		h.slots = append(h.slots, newChaosSlot())
	}
	boot := []string{h.slots[0].ts.URL, h.slots[1].ts.URL, h.slots[2].ts.URL}
	h.nextSlot = 3
	for i := 0; i < 3; i++ {
		h.spawn(h.slots[i], boot)
	}

	rt, err := NewRouter(Config{
		Shards: boot, Replicas: 2,
		Cooldown: 25 * time.Millisecond, GossipInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.router = rt
	h.routerTS = httptest.NewServer(rt.Handler())
	h.rcl = client.New(h.routerTS.URL)

	h.refSrv, h.refTS = bootShard(t, server.Config{Workers: 2, RequestTimeout: time.Second})
	h.refCl = client.New(h.refTS.URL)

	// Register the working set through the router and identically on the
	// reference; both learn the same warmup, so the models start equal.
	for i, name := range h.names {
		req := client.RegisterRequest{
			Name: name, UDF: "poly/smooth2d", Eps: 0.25, Delta: 0.1,
			Warmup: fleetInputs(4, int64(11+i)), WarmupSeed: 7,
		}
		if _, err := h.rcl.Register(h.ctx, req); err != nil {
			t.Fatalf("register %s via router: %v", name, err)
		}
		if _, err := h.refCl.Register(h.ctx, req); err != nil {
			t.Fatalf("register %s on reference: %v", name, err)
		}
	}
	h.waitConverged("initial replication")
	h.frozenCheck(-1)

	const events = 200
	for i := 0; i < events; i++ {
		switch op := h.rng.intn(100); {
		case op < 40:
			h.learn(i)
		case op < 55:
			h.frozenCheck(i)
		case op < 70:
			if h.dead != "" {
				h.restart(i)
			} else if len(h.members) >= 3 {
				h.kill(i)
			} else {
				h.learn(i)
			}
		case op < 80:
			if h.dead == "" && h.nextSlot < len(h.slots) {
				h.join(i)
			} else {
				h.learn(i)
			}
		case op < 90:
			if len(h.members) > 2 {
				h.leave(i)
			} else {
				h.learn(i)
			}
		default:
			h.dropAll.Store(!h.dropAll.Load())
		}
	}

	// Settle: revive any dead member, re-enable hints, final byte check.
	h.dropAll.Store(false)
	if h.dead != "" {
		h.restart(events)
	}
	h.frozenCheck(events)

	// Zero goroutine leaks: with every shard, router, and proxy closed, the
	// count must return to the pre-test baseline.
	h.teardown()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
