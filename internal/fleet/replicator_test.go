package fleet

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"olgapro/client"
	"olgapro/internal/server"
)

// registerAndLearn seeds one learned UDF on a shard through its client and
// returns the owner's model seq.
func registerAndLearn(t *testing.T, cl *client.Client, name string) int64 {
	t.Helper()
	ctx := context.Background()
	if _, err := cl.Register(ctx, client.RegisterRequest{
		Name: name, UDF: "poly/smooth2d", Eps: 0.25, Delta: 0.1,
		Warmup: fleetInputs(6, 17), WarmupSeed: 7,
	}); err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	if _, _, err := cl.Stream(ctx, name, client.StreamOptions{Seed: 3}, fleetInputs(6, 23)); err != nil {
		t.Fatalf("learn %s: %v", name, err)
	}
	list, err := cl.ListUDFs(ctx)
	if err != nil || len(list.UDFs) == 0 {
		t.Fatalf("list after learn: %+v, %v", list, err)
	}
	for _, u := range list.UDFs {
		if u.Name == name {
			return u.ModelSeq
		}
	}
	t.Fatalf("%s not listed", name)
	return 0
}

// TestReplicatorRetriesFailedIngest is the regression test for the PR 8
// pull-loop bug where a failed ingest advanced since_version anyway and the
// replica stayed stale until the owner's next (possibly never) version
// bump: with a fetch that fails twice and a peer whose replication version
// stays frozen after the failure, the tick-time retry queue alone must
// converge the replica.
func TestReplicatorRetriesFailedIngest(t *testing.T) {
	sA, tsA := bootShard(t, server.Config{Workers: 1, RequestTimeout: time.Second})
	sB, tsB := bootShard(t, server.Config{Workers: 1, RequestTimeout: time.Second})
	_ = sA
	ctx := context.Background()
	clA := client.New(tsA.URL)

	addrs := []string{tsA.URL, tsB.URL}
	ring, err := NewRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	name := ownedName(t, ring, tsA.URL)
	ownerSeq := registerAndLearn(t, clA, name)

	// The peer's replication version is frozen from here on: convergence can
	// only come from the re-queue, never from a fresh list delivery.
	verBefore, err := clA.ReplicationList(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}

	var failuresLeft atomic.Int64
	failuresLeft.Store(2)
	var attempts atomic.Int64
	repl, err := StartReplicator(ReplicatorConfig{
		Self: tsB.URL, Shards: addrs, Registry: sB.Registry(),
		Replicas: 2, Interval: 25 * time.Millisecond, DisableHints: true,
		fetch: func(ctx context.Context, peer *client.Client, name string, minSeq int64) (*client.FetchedSnapshot, error) {
			attempts.Add(1)
			if failuresLeft.Add(-1) >= 0 {
				return nil, errors.New("injected fetch failure")
			}
			return peer.FetchSnapshot(ctx, name, minSeq)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()

	deadline := time.Now().Add(15 * time.Second)
	for {
		if e, ok := sB.Registry().Get(name); ok && e.Replica() && e.Seq() >= ownerSeq {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica did not converge past %d injected failures (attempts=%d)",
				2, attempts.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := attempts.Load(); got < 3 {
		t.Fatalf("fetch attempts = %d, want ≥ 3 (2 failures + 1 success)", got)
	}
	if verAfter, err := clA.ReplicationList(ctx, -1); err != nil || verAfter.Version != verBefore.Version {
		t.Fatalf("peer version moved %d → %d (%v): retry was not the convergence path",
			verBefore.Version, verAfter.Version, err)
	}
}

// TestReplicatorIngestIdempotent pins the delta protocol's no-op paths:
// duplicate deltas, stale deltas, and a peer that regressed below min_seq
// (the fetch-returns-nil path) must all leave the replica's registry
// version, model seq, and entry identity untouched — no writer-loop swap.
func TestReplicatorIngestIdempotent(t *testing.T) {
	sA, tsA := bootShard(t, server.Config{Workers: 1, RequestTimeout: time.Second})
	sB, tsB := bootShard(t, server.Config{Workers: 1, RequestTimeout: time.Second})
	_ = sA
	ctx := context.Background()
	clA := client.New(tsA.URL)

	addrs := []string{tsA.URL, tsB.URL}
	ring, err := NewRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	name := ownedName(t, ring, tsA.URL)
	ownerSeq := registerAndLearn(t, clA, name)

	// fetchMode 0 passes through; 1 simulates the peer regressing below
	// min_seq between the list and the fetch (FetchSnapshot's 304 → nil).
	var fetchMode atomic.Int32
	repl, err := StartReplicator(ReplicatorConfig{
		Self: tsB.URL, Shards: addrs, Registry: sB.Registry(),
		Replicas: 2, Interval: 25 * time.Millisecond, DisableHints: true,
		fetch: func(ctx context.Context, peer *client.Client, name string, minSeq int64) (*client.FetchedSnapshot, error) {
			if fetchMode.Load() == 1 {
				return nil, nil
			}
			return peer.FetchSnapshot(ctx, name, minSeq)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()

	deadline := time.Now().Add(15 * time.Second)
	for {
		if e, ok := sB.Registry().Get(name); ok && e.Replica() && e.Seq() >= ownerSeq {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica did not converge")
		}
		time.Sleep(10 * time.Millisecond)
	}

	entry, _ := sB.Registry().Get(name)
	verBefore := sB.Registry().Version()
	seqBefore := entry.Seq()
	fetchesBefore := repl.Fetches()
	peer := client.New(tsA.URL)

	// Duplicate delta: the peer re-advertises the seq we already hold.
	if err := repl.ingest(ctx, tsA.URL, peer, name, seqBefore); err != nil {
		t.Fatalf("duplicate delta: %v", err)
	}
	// Stale delta: an old advert arrives out of order.
	if err := repl.ingest(ctx, tsA.URL, peer, name, seqBefore-1); err != nil {
		t.Fatalf("stale delta: %v", err)
	}
	// Peer regressed below min_seq: the advert claims a newer seq but the
	// fetch comes back 304 — a no-op, not an error and not an install.
	fetchMode.Store(1)
	if err := repl.ingest(ctx, tsA.URL, peer, name, seqBefore+5); err != nil {
		t.Fatalf("regressed peer: %v", err)
	}
	fetchMode.Store(0)

	if got := repl.Fetches(); got != fetchesBefore {
		t.Fatalf("installs moved %d → %d on no-op deltas", fetchesBefore, got)
	}
	if got := sB.Registry().Version(); got != verBefore {
		t.Fatalf("registry version moved %d → %d on no-op deltas", verBefore, got)
	}
	after, ok := sB.Registry().Get(name)
	if !ok || after != entry {
		t.Fatal("entry identity changed: a no-op delta swapped the writer loop")
	}
	if got := after.Seq(); got != seqBefore {
		t.Fatalf("model seq moved %d → %d on no-op deltas", seqBefore, got)
	}
	if !after.Replica() {
		t.Fatal("replica flag flipped on no-op deltas")
	}
}
