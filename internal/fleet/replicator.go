package fleet

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"time"

	"olgapro/client"
	"olgapro/internal/core"
	"olgapro/internal/server"
)

// ReplicatorConfig parameterizes a shard's replication puller.
type ReplicatorConfig struct {
	// Self is this shard's own base URL; it is skipped as a peer and used
	// for ring-placement decisions.
	Self string
	// Shards are all fleet members' base URLs (including Self).
	Shards []string
	// Registry is this process's registry; fetched models are installed
	// through InstallReplica.
	Registry *server.Registry
	// Replicas is the replication factor: this shard pulls a UDF only when
	// ring placement makes it one of the UDF's replica set. Default 2.
	Replicas int
	// VNodes is the ring's virtual-node count (must match the router's).
	VNodes int
	// Interval is the retry backoff after a peer error and the floor
	// between list cycles; deltas propagate faster than this because the
	// peer list call long-polls. Default 500ms.
	Interval time.Duration
	// AuthToken is the fleet bearer credential.
	AuthToken string
	// HTTPClient overrides the outbound transport (fleet TLS trust).
	HTTPClient *http.Client
	// Logf, when non-nil, receives one line per replication event.
	Logf func(format string, args ...any)
}

// Replicator subscribes to every peer's registry and ingests owned models
// this shard should replicate, as versioned snapshot deltas: a peer's
// replication list names each hosted UDF with its model sequence; anything
// owned by the peer, placed here by the ring, and newer than the local
// replica is fetched (GET /v1/udfs/{name}/snapshot with ?min_seq) and
// installed through the registry's writer-loop swap. Monotonic sequence
// numbers make the protocol idempotent and reordering-safe — a stale or
// duplicate delta is a no-op.
type Replicator struct {
	cfg    ReplicatorConfig
	ring   *Ring
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// StartReplicator builds the ring and starts one puller goroutine per peer.
func StartReplicator(cfg ReplicatorConfig) (*Replicator, error) {
	ring, err := NewRing(cfg.Shards, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Replicator{cfg: cfg, ring: ring, cancel: cancel}
	for _, addr := range cfg.Shards {
		if addr == cfg.Self {
			continue
		}
		opts := []client.Option{client.WithRetries(1)}
		if cfg.AuthToken != "" {
			opts = append(opts, client.WithToken(cfg.AuthToken))
		}
		if cfg.HTTPClient != nil {
			opts = append(opts, client.WithHTTPClient(cfg.HTTPClient))
		}
		peer := client.New(addr, opts...)
		r.wg.Add(1)
		go r.pull(ctx, addr, peer)
	}
	return r, nil
}

// Close stops every puller and waits for them.
func (r *Replicator) Close() {
	r.cancel()
	r.wg.Wait()
}

// shouldReplicate reports whether ring placement puts the named UDF's
// replica set on this shard.
func (r *Replicator) shouldReplicate(name string) bool {
	for _, addr := range r.ring.Replicas(name, r.cfg.Replicas) {
		if addr == r.cfg.Self {
			return true
		}
	}
	return false
}

// pull is one peer's subscription loop: long-poll the peer's replication
// list, ingest newer owned models, repeat.
func (r *Replicator) pull(ctx context.Context, addr string, peer *client.Client) {
	defer r.wg.Done()
	since := int64(-1)
	for ctx.Err() == nil {
		list, err := peer.ReplicationList(ctx, since)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			select {
			case <-time.After(r.cfg.Interval):
			case <-ctx.Done():
			}
			continue
		}
		since = list.Version
		for _, st := range list.UDFs {
			if !st.Owned || !r.shouldReplicate(st.Name) {
				continue
			}
			if err := r.ingest(ctx, addr, peer, st.Name, st.Seq); err != nil && ctx.Err() == nil {
				r.cfg.Logf("replicate %q from %s: %v", st.Name, addr, err)
			}
		}
	}
}

// ingest fetches and installs one UDF's model when the peer is ahead.
func (r *Replicator) ingest(ctx context.Context, addr string, peer *client.Client, name string, peerSeq int64) error {
	localSeq := int64(-1)
	if e, ok := r.cfg.Registry.Get(name); ok {
		if !e.Replica() {
			return nil // owned here; never overwrite the writer
		}
		localSeq = e.Seq()
	}
	if peerSeq <= localSeq {
		return nil // already current
	}
	fs, err := peer.FetchSnapshot(ctx, name, localSeq+1)
	if err != nil {
		return err
	}
	if fs == nil {
		return nil // peer regressed below min_seq between list and fetch
	}
	snap, err := core.ReadSnapshot(bytes.NewReader(fs.Data))
	if err != nil {
		return err
	}
	if err := r.cfg.Registry.InstallReplica(fs.Spec, snap); err != nil {
		return err
	}
	r.cfg.Logf("replica %q ← %s @ seq %d (%d training points)", name, addr, snap.ModelSeq, len(snap.X))
	return nil
}
