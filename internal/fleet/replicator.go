package fleet

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"olgapro/client"
	"olgapro/internal/core"
	"olgapro/internal/server"
	"olgapro/internal/server/wire"
)

// ReplicatorConfig parameterizes a shard's replication engine.
type ReplicatorConfig struct {
	// Self is this shard's own base URL; it is skipped as a peer and used
	// for ring-placement decisions.
	Self string
	// Shards are the boot-time fleet members' base URLs (including Self) —
	// membership epoch 0. A joining shard boots with just its own URL and
	// adopts the fleet's real membership from the router's join broadcast.
	Shards []string
	// Registry is this process's registry; fetched models are installed
	// through InstallReplica, and handoff flips run through Promote/Demote.
	Registry *server.Registry
	// Replicas is the replication factor: this shard pulls a UDF only when
	// ring placement makes it one of the UDF's replica set. Default 2.
	Replicas int
	// VNodes is the ring's virtual-node count (must match the router's).
	VNodes int
	// Interval is the retry backoff after a peer error, the failed-ingest
	// re-queue tick, and the floor between list cycles; deltas propagate
	// faster than this because the peer list call long-polls and owners
	// push seq-bump hints. Default 500ms.
	Interval time.Duration
	// AuthToken is the fleet bearer credential.
	AuthToken string
	// HTTPClient overrides the outbound transport (fleet TLS trust).
	HTTPClient *http.Client
	// DisableHints turns off push replication both ways (no hints sent, and
	// received hints are ignored), leaving the pull loop as the only
	// propagation path — the degraded mode the pull path must survive.
	DisableHints bool
	// Logf, when non-nil, receives one line per replication event.
	Logf func(format string, args ...any)

	// fetch overrides snapshot fetching (test seam; nil uses the peer
	// client's FetchSnapshot).
	fetch func(ctx context.Context, peer *client.Client, name string, minSeq int64) (*client.FetchedSnapshot, error)
	// dropHint, when non-nil, is consulted before each outbound hint; true
	// drops it (test seam for lossy-hint chaos schedules).
	dropHint func(addr string, h wire.ReplicationHint) bool
}

// retryKey identifies one failed ingest awaiting its tick-time retry.
type retryKey struct {
	addr string
	name string
}

// Replicator is a shard's fleet engine: it subscribes to every peer's
// registry and ingests models this shard should replicate, as versioned
// snapshot deltas ordered by per-UDF model sequence numbers (stale or
// duplicate deltas are no-ops, making the protocol idempotent and
// reordering-safe). On top of the PR 8 pull loop it now carries:
//
//   - dynamic membership: a MemberView holding the current epoch; epochs
//     gossip over the replication lists and arrive directly via
//     POST /v1/replication/members. Adopting a higher epoch rebuilds the
//     ring and restarts the pullers so re-placed names are re-delivered —
//     seq gating makes everything else a no-op, so only names whose
//     replica set actually changed are re-fetched.
//   - handoff: when the ring moves a UDF's ownership here, this shard keeps
//     pulling until it has caught up with the last advertised owner, then
//     confirms with one direct min_seq fetch (a 304 proves the owner's
//     writer-serialized state is not ahead) and promotes. The old owner
//     demotes only after seeing the new owner advertise ownership at a
//     model seq ≥ its own, so no learned point is ever dropped. Frozen
//     reads are safe throughout because frozen responses are a pure
//     function of (model seq, request bytes).
//   - push hints: the owner side watches its own registry version and POSTs
//     seq-bump hints to each UDF's replica set, so replication lag is
//     bounded by a round trip instead of the poll interval. Hints are pure
//     accelerators — the pull loop remains the repair path, and the
//     tick-time retry queue re-attempts failed ingests without waiting for
//     the peer's next version bump.
type Replicator struct {
	cfg  ReplicatorConfig
	view *MemberView

	root   context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu         sync.Mutex
	pullCancel context.CancelFunc // current puller generation
	clients    map[string]*client.Client
	retries    map[retryKey]int64 // failed ingests → peer seq to retry
	lastOwner  map[string]string  // UDF name → last peer that advertised ownership
	ownerSeq   map[string]int64   // UDF name → that advert's model seq
	synced     map[string]bool    // peers listed at least once this epoch

	reconcileMu sync.Mutex // serializes promote/demote passes

	hints chan wire.ReplicationHint

	fetches   atomic.Int64 // successful snapshot installs
	hintsSent atomic.Int64 // hints actually posted (drops excluded)
}

// StartReplicator builds the membership view (epoch 0 = the boot shard
// list) and starts the puller, tick, hint, and push goroutines.
func StartReplicator(cfg ReplicatorConfig) (*Replicator, error) {
	view, err := NewMemberView(wire.Membership{Epoch: 0, Shards: cfg.Shards}, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Replicator{
		cfg:       cfg,
		view:      view,
		root:      ctx,
		cancel:    cancel,
		clients:   make(map[string]*client.Client),
		retries:   make(map[retryKey]int64),
		lastOwner: make(map[string]string),
		ownerSeq:  make(map[string]int64),
		synced:    make(map[string]bool),
		hints:     make(chan wire.ReplicationHint, 256),
	}
	r.mu.Lock()
	r.startPullersLocked()
	r.mu.Unlock()
	r.wg.Add(2)
	go r.tickLoop(ctx)
	go r.hintLoop(ctx)
	if !cfg.DisableHints {
		r.wg.Add(1)
		go r.pushLoop(ctx)
	}
	return r, nil
}

// Close stops every goroutine and waits for them.
func (r *Replicator) Close() {
	r.cancel()
	r.wg.Wait()
}

// View exposes the replicator's membership view (the server's fleet hooks
// and tests read it).
func (r *Replicator) View() *MemberView { return r.view }

// Membership returns the current membership (server hook).
func (r *Replicator) Membership() wire.Membership { return r.view.Current() }

// Fetches returns how many snapshot deltas have been installed — the
// counter the rebalance tests use to prove un-moved names are not
// re-fetched.
func (r *Replicator) Fetches() int64 { return r.fetches.Load() }

// HintsSent returns how many push hints this shard has posted.
func (r *Replicator) HintsSent() int64 { return r.hintsSent.Load() }

// AdoptMembership offers a membership (server hook + router broadcast
// target). A strictly higher epoch rebuilds the ring and restarts the
// pullers from scratch so every peer's full list is re-delivered; per-UDF
// seq gating then turns everything whose placement did not change into
// no-ops.
func (r *Replicator) AdoptMembership(m wire.Membership) (bool, error) {
	changed, err := r.view.Adopt(m)
	if err != nil || !changed {
		return changed, err
	}
	cur := r.view.Current()
	r.cfg.Logf("membership: adopted epoch %d (%d shards)", cur.Epoch, len(cur.Shards))
	r.mu.Lock()
	r.synced = make(map[string]bool)
	r.startPullersLocked()
	r.mu.Unlock()
	return true, nil
}

// Hint enqueues a received push hint (server hook). Never blocks: a full
// queue drops the hint, which only costs latency — the pull loop repairs.
func (r *Replicator) Hint(h wire.ReplicationHint) {
	if r.cfg.DisableHints {
		return
	}
	select {
	case r.hints <- h:
	default:
	}
}

// clientFor returns (building on first use) the cached client for a peer.
func (r *Replicator) clientFor(addr string) *client.Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.clients[addr]; ok {
		return c
	}
	opts := []client.Option{client.WithRetries(1)}
	if r.cfg.AuthToken != "" {
		opts = append(opts, client.WithToken(r.cfg.AuthToken))
	}
	if r.cfg.HTTPClient != nil {
		opts = append(opts, client.WithHTTPClient(r.cfg.HTTPClient))
	}
	c := client.New(addr, opts...)
	r.clients[addr] = c
	return c
}

// startPullersLocked (r.mu held) cancels the current puller generation and
// starts a fresh one per current member. Fresh pullers list from
// since_version=-1, so the full peer state is re-delivered after a
// membership change.
func (r *Replicator) startPullersLocked() {
	if r.pullCancel != nil {
		r.pullCancel()
	}
	ctx, cancel := context.WithCancel(r.root)
	r.pullCancel = cancel
	for _, addr := range r.view.Current().Shards {
		if addr == r.cfg.Self {
			continue
		}
		r.wg.Add(1)
		go r.pull(ctx, addr)
	}
}

// shouldReplicate reports whether ring placement puts the named UDF's
// replica set on this shard.
func (r *Replicator) shouldReplicate(name string) bool {
	for _, addr := range r.view.Ring().Replicas(name, r.cfg.Replicas) {
		if addr == r.cfg.Self {
			return true
		}
	}
	return false
}

// memberOf reports whether addr is in the current membership.
func (r *Replicator) memberOf(addr string) bool {
	for _, s := range r.view.Current().Shards {
		if s == addr {
			return true
		}
	}
	return false
}

// pull is one peer's subscription loop for one puller generation:
// long-poll the peer's replication list, adopt gossiped epochs, ingest
// newer models placed here, repeat.
func (r *Replicator) pull(ctx context.Context, addr string) {
	defer r.wg.Done()
	peer := r.clientFor(addr)
	since := int64(-1)
	for ctx.Err() == nil {
		list, err := peer.ReplicationList(ctx, since)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			select {
			case <-time.After(r.cfg.Interval):
			case <-ctx.Done():
			}
			continue
		}
		since = list.Version
		if list.Epoch > r.view.Epoch() {
			if changed, err := r.AdoptMembership(wire.Membership{Epoch: list.Epoch, Shards: list.Shards}); err != nil {
				r.cfg.Logf("membership: adopt epoch %d from %s: %v", list.Epoch, addr, err)
			} else if changed {
				return // a fresh puller generation (including this peer) took over
			}
		}
		for _, st := range list.UDFs {
			r.observe(ctx, addr, peer, st)
		}
		r.mu.Lock()
		r.synced[addr] = true
		r.mu.Unlock()
		r.reconcile(ctx)
	}
}

// observe processes one advertised replica state from a peer: records
// ownership adverts, demotes a local stale owner once its successor has
// caught up, and ingests newer state placed here.
func (r *Replicator) observe(ctx context.Context, addr string, peer *client.Client, st wire.ReplicaState) {
	if st.Owned {
		r.mu.Lock()
		r.lastOwner[st.Name] = addr
		r.ownerSeq[st.Name] = st.Seq
		r.mu.Unlock()
	}
	if e, ok := r.cfg.Registry.Get(st.Name); ok && !e.Replica() {
		// Owned here. Demote when the ring moved ownership to this peer and
		// it has provably caught up: it advertises ownership at a model seq
		// ≥ ours, so every point we learned is in its model.
		if st.Owned && st.Seq >= e.Seq() && r.view.Ring().Owner(st.Name) == addr {
			if err := r.cfg.Registry.Demote(ctx, st.Name); err == nil {
				r.cfg.Logf("handoff: demoted %q (new owner %s @ seq %d)", st.Name, addr, st.Seq)
			}
		}
		return
	}
	if !r.shouldReplicate(st.Name) {
		return
	}
	if err := r.ingest(ctx, addr, peer, st.Name, st.Seq); err != nil && ctx.Err() == nil {
		r.cfg.Logf("replicate %q from %s: %v", st.Name, addr, err)
		r.mu.Lock()
		r.retries[retryKey{addr: addr, name: st.Name}] = st.Seq
		r.mu.Unlock()
	}
}

// fetchSnapshot applies the test seam.
func (r *Replicator) fetchSnapshot(ctx context.Context, peer *client.Client, name string, minSeq int64) (*client.FetchedSnapshot, error) {
	if r.cfg.fetch != nil {
		return r.cfg.fetch(ctx, peer, name, minSeq)
	}
	return peer.FetchSnapshot(ctx, name, minSeq)
}

// ingest fetches and installs one UDF's model when the peer is ahead.
func (r *Replicator) ingest(ctx context.Context, addr string, peer *client.Client, name string, peerSeq int64) error {
	localSeq := int64(-1)
	if e, ok := r.cfg.Registry.Get(name); ok {
		if !e.Replica() {
			return nil // owned here; never overwrite the writer
		}
		localSeq = e.Seq()
	}
	if peerSeq <= localSeq {
		return nil // already current
	}
	fs, err := r.fetchSnapshot(ctx, peer, name, localSeq+1)
	if err != nil {
		return err
	}
	if fs == nil {
		return nil // peer regressed below min_seq between list and fetch
	}
	snap, err := core.ReadSnapshot(bytes.NewReader(fs.Data))
	if err != nil {
		return err
	}
	if err := r.cfg.Registry.InstallReplica(fs.Spec, snap); err != nil {
		return err
	}
	r.fetches.Add(1)
	r.cfg.Logf("replica %q ← %s @ seq %d (%d training points)", name, addr, snap.ModelSeq, len(snap.X))
	return nil
}

// tickLoop fires every Interval: failed ingests are re-attempted without
// waiting for the peer's next version bump (the long-poll would otherwise
// park until then), and the promote pass runs even when no list arrives.
func (r *Replicator) tickLoop(ctx context.Context) {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		r.retryFailed(ctx)
		r.reconcile(ctx)
	}
}

// retryFailed re-attempts every queued failed ingest.
func (r *Replicator) retryFailed(ctx context.Context) {
	r.mu.Lock()
	pending := make(map[retryKey]int64, len(r.retries))
	for k, seq := range r.retries {
		pending[k] = seq
	}
	r.mu.Unlock()
	for k, seq := range pending {
		if !r.shouldReplicate(k.name) || !r.memberOf(k.addr) {
			r.mu.Lock()
			delete(r.retries, k)
			r.mu.Unlock()
			continue
		}
		if err := r.ingest(ctx, k.addr, r.clientFor(k.addr), k.name, seq); err != nil {
			if ctx.Err() == nil {
				r.cfg.Logf("retry %q from %s: %v", k.name, k.addr, err)
			}
			continue
		}
		r.mu.Lock()
		delete(r.retries, k)
		r.mu.Unlock()
	}
}

// reconcile is the promote half of handoff: for every local replica whose
// ring owner is now this shard, promote once caught up with the departing
// owner (confirmed by a direct min_seq fetch answering 304 — the peer's
// writer-serialized state is not ahead), or immediately when no current
// member owns it (the owner left). Demotes happen in observe, where the
// successor's advert is in hand.
func (r *Replicator) reconcile(ctx context.Context) {
	r.reconcileMu.Lock()
	defer r.reconcileMu.Unlock()
	ring := r.view.Ring()
	for _, st := range r.cfg.Registry.ReplicationStates() {
		if st.Owned || ring.Owner(st.Name) != r.cfg.Self {
			continue
		}
		r.mu.Lock()
		owner, sawOwner := r.lastOwner[st.Name]
		oseq := r.ownerSeq[st.Name]
		allSynced := true
		for _, s := range r.view.Current().Shards {
			if s != r.cfg.Self && !r.synced[s] {
				allSynced = false
			}
		}
		r.mu.Unlock()
		if sawOwner && r.memberOf(owner) {
			if st.Seq < oseq {
				continue // still catching up; the pull/hint paths close the gap
			}
			fs, err := r.fetchSnapshot(ctx, r.clientFor(owner), st.Name, st.Seq+1)
			if err != nil {
				continue // owner unreachable; retry next tick
			}
			if fs != nil {
				// The owner moved ahead of its last advert; install and
				// re-check next pass.
				if snap, err := core.ReadSnapshot(bytes.NewReader(fs.Data)); err == nil {
					if r.cfg.Registry.InstallReplica(fs.Spec, snap) == nil {
						r.fetches.Add(1)
					}
				}
				continue
			}
		} else if !allSynced {
			// No owner in the current membership, but we have not heard from
			// every member this epoch yet — one of them may still own it.
			continue
		}
		if err := r.cfg.Registry.Promote(ctx, st.Name); err != nil {
			r.cfg.Logf("handoff: promote %q: %v", st.Name, err)
			continue
		}
		r.cfg.Logf("handoff: promoted %q @ seq %d (prior owner %q)", st.Name, st.Seq, owner)
	}
}

// hintLoop drains received push hints: each names a UDF whose owner just
// bumped its model seq, so pull it from the sender immediately instead of
// waiting out the poll interval.
func (r *Replicator) hintLoop(ctx context.Context) {
	defer r.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case h := <-r.hints:
			if !r.shouldReplicate(h.Name) {
				continue
			}
			if err := r.ingest(ctx, h.From, r.clientFor(h.From), h.Name, h.Seq); err != nil && ctx.Err() == nil {
				r.cfg.Logf("hint %q from %s: %v", h.Name, h.From, err)
				r.mu.Lock()
				r.retries[retryKey{addr: h.From, name: h.Name}] = h.Seq
				r.mu.Unlock()
			}
		}
	}
}

// pushLoop is the owner half of push replication: watch this process's own
// registry version (in-process, no HTTP) and, on every advance, post a
// seq-bump hint for each owned UDF that moved to every member of its
// replica set.
func (r *Replicator) pushLoop(ctx context.Context) {
	defer r.wg.Done()
	lastSent := make(map[string]int64)
	since := int64(-1)
	for ctx.Err() == nil {
		ver := r.cfg.Registry.WaitReplication(ctx, since)
		if ctx.Err() != nil {
			return
		}
		since = ver
		for _, st := range r.cfg.Registry.ReplicationStates() {
			if !st.Owned || st.Seq <= lastSent[st.Name] {
				continue
			}
			lastSent[st.Name] = st.Seq
			h := wire.ReplicationHint{Name: st.Name, Seq: st.Seq, From: r.cfg.Self}
			for _, addr := range r.view.Ring().Replicas(st.Name, r.cfg.Replicas) {
				if addr == r.cfg.Self {
					continue
				}
				r.sendHint(ctx, addr, h)
			}
		}
	}
}

// sendHint posts one hint with a bounded deadline. Failures are dropped:
// hints are accelerators, and the receiver's pull loop repairs.
func (r *Replicator) sendHint(ctx context.Context, addr string, h wire.ReplicationHint) {
	if r.cfg.dropHint != nil && r.cfg.dropHint(addr, h) {
		return
	}
	hctx, cancel := context.WithTimeout(ctx, r.cfg.Interval)
	defer cancel()
	if err := r.clientFor(addr).Hint(hctx, h); err != nil {
		if ctx.Err() == nil {
			r.cfg.Logf("hint %q → %s: %v", h.Name, addr, err)
		}
		return
	}
	r.hintsSent.Add(1)
}
