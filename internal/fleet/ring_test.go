package fleet

import (
	"fmt"
	"testing"
	"time"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate shard accepted")
	}
}

// TestRingPlacementIsOrderInsensitive is the fleet's coordination-free
// invariant: every router and shard must compute the same placement from the
// same shard set, however the list was written in their flags.
func TestRingPlacementIsOrderInsensitive(t *testing.T) {
	addrs := []string{"http://s1:8080", "http://s2:8080", "http://s3:8080"}
	r1, err := NewRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{addrs[2], addrs[0], addrs[1]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("udf-%d", i)
		if r1.Owner(name) != r2.Owner(name) {
			t.Fatalf("%s: owner %s vs %s under reordered fleet", name, r1.Owner(name), r2.Owner(name))
		}
		a, b := r1.Replicas(name, 2), r2.Replicas(name, 2)
		if len(a) != 2 || len(b) != 2 || a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("%s: replica sets %v vs %v", name, a, b)
		}
	}
}

func TestRingReplicaSets(t *testing.T) {
	addrs := []string{"http://s1:8080", "http://s2:8080", "http://s3:8080"}
	r, err := NewRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	owned := map[string]int{}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("udf-%d", i)
		reps := r.Replicas(name, 2)
		if len(reps) != 2 || reps[0] == reps[1] {
			t.Fatalf("%s: bad replica set %v", name, reps)
		}
		if reps[0] != r.Owner(name) {
			t.Fatalf("%s: replicas[0] %s is not the owner %s", name, reps[0], r.Owner(name))
		}
		owned[reps[0]]++
		// Asking for more replicas than shards caps at the fleet size, with
		// every shard appearing once.
		all := r.Replicas(name, 10)
		if len(all) != len(addrs) {
			t.Fatalf("%s: over-asked replicas %v", name, all)
		}
		seen := map[string]bool{}
		for _, a := range all {
			if seen[a] {
				t.Fatalf("%s: duplicate shard in %v", name, all)
			}
			seen[a] = true
		}
	}
	// Consistent hashing must spread ownership across every shard.
	for _, a := range addrs {
		if owned[a] == 0 {
			t.Fatalf("shard %s owns nothing across 200 names: %v", a, owned)
		}
	}
}

func TestHealthLedger(t *testing.T) {
	now := time.Unix(1000, 0)
	h := NewHealth(2 * time.Second)
	h.now = func() time.Time { return now }

	if !h.Up("a") {
		t.Fatal("never-seen shard should be up")
	}
	h.MarkDown("a")
	if h.Up("a") {
		t.Fatal("freshly failed shard should be down")
	}
	// Down shards are deprioritized, never excluded.
	if got := h.Order([]string{"a", "b", "c"}); got[0] != "b" || got[1] != "c" || got[2] != "a" {
		t.Fatalf("order with a down: %v", got)
	}
	// After the cooldown the shard is probe-eligible again.
	now = now.Add(2 * time.Second)
	if !h.Up("a") {
		t.Fatal("cooldown elapsed, shard should be retried")
	}
	h.MarkDown("a")
	h.MarkUp("a")
	if !h.Up("a") {
		t.Fatal("MarkUp should clear the down state")
	}
}
