package fleet

// Distributed bounded queries: the router decomposes one /v1/query plan
// into per-shard sub-plans over the rows each shard's UDFs own, scatters
// them to frozen replicas (POST /v1/query/partials), and merges the partial
// bounded states back into one answer relation. Every tuple keeps its
// global ordinal in the union relation, so per-tuple RNG seeding, group
// first-seen order, window positions, and rank tie-breaks all come out
// exactly as a single shard holding the whole relation would compute them —
// the merged answer is bit-identical to the single-shard plan (see
// internal/query/partial.go for the merge algebra and its property tests).
//
// Only the first stage of the plan (window, then group-by, then top-k, in
// plan order) is distributed; later stages run at the router as ordinary
// query operators over the merged tuples, which by then carry only
// self-contained values (ints, strings, bounds).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"olgapro/internal/query"
	"olgapro/internal/server/wire"
)

// scatterJob is one shard-bound sub-plan and its gathered result.
type scatterJob struct {
	name string
	req  *wire.QueryPartialsRequest
	res  *wire.QueryPartials
	sr   *shardResp
	err  error
}

// handleQueryScatter serves a /v1/query whose rows name their UDF
// instances: decompose, scatter, merge.
func (rt *Router) handleQueryScatter(w http.ResponseWriter, r *http.Request, body []byte) {
	var req wire.QueryRequest
	if err := decodeStrictBytes(body, &req); err != nil {
		rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad query request: %v", err)
		return
	}
	if len(req.Rows) == 0 {
		rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "query needs at least one row")
		return
	}
	if len(req.Rows) > wire.MaxQueryRows {
		// 413, not 429: clients auto-retry over_capacity served with 429 and
		// a Retry-After, but an oversized relation never shrinks on retry.
		rt.fail(w, http.StatusRequestEntityTooLarge, wire.CodeOverCapacity,
			"query has %d rows, cap is %d", len(req.Rows), wire.MaxQueryRows)
		return
	}

	// Validate stage specs before spending shard work; the merge needs the
	// converted specs anyway.
	var (
		wspec  *query.WindowSpec
		gbspec *query.GroupBySpec
		tkspec *query.RankSpec
	)
	if req.Window != nil {
		s, err := req.Window.Spec()
		if err != nil {
			rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
			return
		}
		wspec = &s
	}
	if req.GroupBy != nil {
		s, err := req.GroupBy.Spec()
		if err != nil {
			rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
			return
		}
		gbspec = &s
	}
	if req.TopK != nil {
		s, err := req.TopK.Spec()
		if err != nil {
			rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "%v", err)
			return
		}
		tkspec = &s
	}

	// Group rows by UDF instance, preserving each row's global ordinal. Only
	// the first stage travels with the sub-plan.
	jobs := make([]*scatterJob, 0, 4)
	byName := make(map[string]*scatterJob)
	for i, row := range req.Rows {
		name := row.UDF
		if name == "" {
			name = req.UDF
		}
		if name == "" {
			rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "row %d names no udf and the request has no default", i)
			return
		}
		j, ok := byName[name]
		if !ok {
			j = &scatterJob{name: name, req: &wire.QueryPartialsRequest{
				UDF:       name,
				Seed:      req.Seed,
				Predicate: req.Predicate,
				MinSeq:    req.RequireSeq[name],
			}}
			switch {
			case req.Window != nil:
				j.req.Window = req.Window
			case req.GroupBy != nil:
				j.req.GroupBy = req.GroupBy
			case req.TopK != nil:
				j.req.TopK = req.TopK
			}
			byName[name] = j
			jobs = append(jobs, j)
		}
		j.req.Rows = append(j.req.Rows, wire.PartialRowSpec{Ord: int64(i), Input: row.Input, Group: row.Group})
	}

	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j *scatterJob) {
			defer wg.Done()
			b, err := json.Marshal(j.req)
			if err != nil {
				j.err = err
				return
			}
			sr, err := rt.fanFrozen(j.name, func(addr string) (*shardResp, bool, error) {
				sr, err := rt.forward(r.Context(), addr, http.MethodPost, "/v1/query/partials", nil, b, "application/json")
				if err != nil {
					return nil, false, err
				}
				return sr, retryableEnvelope(sr.status, sr.body), nil
			})
			if err != nil {
				j.err = err
				return
			}
			j.sr = sr
			if sr.status != http.StatusOK {
				return
			}
			var qp wire.QueryPartials
			if err := json.Unmarshal(sr.body, &qp); err != nil {
				j.err = fmt.Errorf("shard partials for %q: %v", j.name, err)
				return
			}
			j.res = &qp
		}(j)
	}
	wg.Wait()

	seqs := make(map[string]int64, len(jobs))
	dropped := 0
	for _, j := range jobs {
		if j.err != nil {
			rt.failFrom(w, j.err)
			return
		}
		if j.res == nil {
			relay(w, j.sr)
			return
		}
		seqs[j.name] = j.res.ModelSeq
		dropped += j.res.Dropped
	}

	rows, err := rt.mergePartials(jobs, wspec, gbspec, tkspec)
	if err != nil {
		rt.fail(w, http.StatusInternalServerError, wire.CodeInternal, "merge shard partials: %v", err)
		return
	}
	if len(rows) > wire.MaxQueryRows {
		rt.fail(w, http.StatusRequestEntityTooLarge, wire.CodeOverCapacity,
			"merged cross-shard result has %d rows, cap is %d", len(rows), wire.MaxQueryRows)
		return
	}

	names := make([]string, 0, len(seqs))
	for name := range seqs {
		names = append(names, name)
	}
	sort.Strings(names)
	pairs := make([]string, len(names))
	for i, name := range names {
		pairs[i] = name + ":" + strconv.FormatInt(seqs[name], 10)
	}
	w.Header().Set(wire.HeaderQuerySeqs, strings.Join(pairs, ","))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	// Encode (not Marshal+Write) so the body ends in the same trailing
	// newline a shard's own /v1/query response carries.
	json.NewEncoder(w).Encode(wire.QueryResponse{UDF: req.UDF, Rows: rows, Dropped: dropped})
}

// mergePartials folds the gathered shard states into the final answer rows
// for whichever first stage the plan has, then runs any later stages at the
// router.
func (rt *Router) mergePartials(jobs []*scatterJob, wspec *query.WindowSpec, gbspec *query.GroupBySpec, tkspec *query.RankSpec) ([][]wire.QueryValue, error) {
	switch {
	case wspec != nil:
		entries := gatherRows(jobs)
		items := make([][]query.PartialItem, len(wspec.Aggs))
		for a := range wspec.Aggs {
			items[a] = make([]query.PartialItem, len(entries))
		}
		for i, pr := range entries {
			if len(pr.Items) != len(wspec.Aggs) {
				return nil, fmt.Errorf("tuple %d carries %d aggregate items, want %d", pr.Ord, len(pr.Items), len(wspec.Aggs))
			}
			for a, it := range pr.Items {
				items[a][i] = it.Item()
			}
		}
		tuples, err := query.WindowPartials(*wspec, items)
		if err != nil {
			return nil, err
		}
		return runMergedPlan(tuples, gbspec, tkspec)

	case gbspec != nil:
		lists := make([][]*query.GroupPartial, 0, len(jobs))
		for _, j := range jobs {
			list := make([]*query.GroupPartial, len(j.res.Groups))
			for i, g := range j.res.Groups {
				gp, err := g.GroupPartial()
				if err != nil {
					return nil, fmt.Errorf("shard %q group %d: %v", j.name, i, err)
				}
				list[i] = gp
			}
			lists = append(lists, list)
		}
		merged, err := query.MergeGroupPartials(lists...)
		if err != nil {
			return nil, err
		}
		tuples, err := query.FinishGroupPartials(*gbspec, merged)
		if err != nil {
			return nil, err
		}
		return runMergedPlan(tuples, nil, tkspec)

	case tkspec != nil:
		entries := gatherRows(jobs)
		keys := make([]query.RankKey, len(entries))
		for i, pr := range entries {
			if pr.Rank == nil {
				return nil, fmt.Errorf("tuple %d carries no rank key", pr.Ord)
			}
			keys[i] = pr.Rank.Key(pr.Ord)
		}
		rankAttr := tkspec.RankAttr()
		members := query.MergeRankKeys(keys, tkspec.K)
		rows := make([][]wire.QueryValue, 0, len(members))
		for _, m := range members {
			row := entries[m.Idx].Row
			if row == nil {
				// The shard prunes a row only when it is certainly outside
				// the global top k (see handleQueryPartials); a pruned
				// possible member means the invariant broke.
				return nil, fmt.Errorf("tuple %d is a possible top-%d member but its shard pruned the row", entries[m.Idx].Ord, tkspec.K)
			}
			rows = append(rows, withRank(row, rankAttr, m.Rank))
		}
		return rows, nil

	default:
		entries := gatherRows(jobs)
		rows := make([][]wire.QueryValue, 0, len(entries))
		for _, pr := range entries {
			if pr.Row == nil {
				return nil, fmt.Errorf("tuple %d carries no row payload", pr.Ord)
			}
			rows = append(rows, pr.Row)
		}
		return rows, nil
	}
}

// gatherRows pools every shard's surviving rows back into global ordinal
// order — the post-drop order of the union relation's stream.
func gatherRows(jobs []*scatterJob) []wire.PartialRow {
	var entries []wire.PartialRow
	for _, j := range jobs {
		entries = append(entries, j.res.Rows...)
	}
	sort.Slice(entries, func(i, k int) bool { return entries[i].Ord < entries[k].Ord })
	return entries
}

// runMergedPlan applies the plan's remaining stages to the merged
// first-stage output and encodes the answer tuples. Stage outputs carry
// only self-contained values, so wire.EncodeValue covers every attribute.
func runMergedPlan(tuples []*query.Tuple, gbspec *query.GroupBySpec, tkspec *query.RankSpec) ([][]wire.QueryValue, error) {
	var it query.Iterator = query.NewScan(tuples)
	if gbspec != nil {
		it = query.NewGroupBy(it, *gbspec)
	}
	if tkspec != nil {
		it = query.NewTopK(it, *tkspec)
	}
	out, err := query.Drain(it)
	if err != nil {
		return nil, err
	}
	rows := make([][]wire.QueryValue, len(out))
	for i, t := range out {
		row := make([]wire.QueryValue, 0, t.Len())
		for _, name := range t.Names() {
			qv, err := wire.EncodeValue(name, t.MustGet(name))
			if err != nil {
				return nil, err
			}
			row = append(row, qv)
		}
		rows[i] = row
	}
	return rows, nil
}

// withRank appends the merged global rank to a shard-encoded row with the
// same replace-or-append semantics as Tuple.With on the serial path.
func withRank(row []wire.QueryValue, rankAttr string, rank query.Bounded) []wire.QueryValue {
	b := wire.BoundedOf(rank)
	qv := wire.QueryValue{Name: rankAttr, Kind: query.KindBounded.String(), Bounded: &b}
	for i := range row {
		if row[i].Name == rankAttr {
			row[i] = qv
			return row
		}
	}
	return append(row, qv)
}

// decodeStrictBytes mirrors the shards' strict request decoding: unknown
// fields and trailing garbage are rejected at the router, before any shard
// spends work on the request.
func decodeStrictBytes(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra any
	if dec.Decode(&extra) != io.EOF {
		return fmt.Errorf("trailing data after request body")
	}
	return nil
}
