package fleet

import (
	"fmt"
	"testing"

	"olgapro/internal/server/wire"
)

func TestMemberViewAdopt(t *testing.T) {
	v, err := NewMemberView(wire.Membership{Epoch: 0, Shards: []string{"http://b", "http://a"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Current().Shards; got[0] != "http://a" || got[1] != "http://b" {
		t.Fatalf("boot shard list not canonicalized: %v", got)
	}
	if _, prev := v.Rings(); prev != nil {
		t.Fatal("previous ring must be nil before the first adoption")
	}

	// Equal and lower epochs are ignored.
	if changed, err := v.Adopt(wire.Membership{Epoch: 0, Shards: []string{"http://c"}}); err != nil || changed {
		t.Fatalf("equal epoch adopted: %v, %v", changed, err)
	}

	// A higher epoch with an invalid shard list is reported without
	// changing the view.
	if changed, err := v.Adopt(wire.Membership{Epoch: 1, Shards: nil}); err == nil || changed {
		t.Fatalf("invalid membership accepted: %v, %v", changed, err)
	}
	if v.Epoch() != 0 {
		t.Fatalf("epoch moved on rejected adopt: %d", v.Epoch())
	}

	oldRing := v.Ring()
	if changed, err := v.Adopt(wire.Membership{Epoch: 3, Shards: []string{"http://a", "http://b", "http://c"}}); err != nil || !changed {
		t.Fatalf("higher epoch rejected: %v, %v", changed, err)
	}
	if v.Epoch() != 3 {
		t.Fatalf("epoch: %d, want 3", v.Epoch())
	}
	cur, prev := v.Rings()
	if prev != oldRing {
		t.Fatal("previous ring not retained across adoption")
	}
	if len(cur.Addrs()) != 3 {
		t.Fatalf("current ring: %v", cur.Addrs())
	}

	// Stale epochs arriving late (gossip reordering) stay ignored.
	if changed, _ := v.Adopt(wire.Membership{Epoch: 2, Shards: []string{"http://a"}}); changed {
		t.Fatal("stale epoch adopted after a newer one")
	}
}

// shardList builds n synthetic shard addresses.
func shardList(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://shard-%d:8080", i)
	}
	return out
}

// TestRingRebalanceOnJoin is the rebalancing property suite over 10k names
// and fleets of 2–8 shards: adding one shard moves placement only for names
// whose replica sets differ, the moved-owner fraction stays within 2× of
// the ideal 1/(n+1), and untouched names keep their exact replica sets.
func TestRingRebalanceOnJoin(t *testing.T) {
	const names = 10000
	const replicas = 2
	for n := 2; n <= 8; n++ {
		before, err := NewRing(shardList(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRing(shardList(n+1), 0)
		if err != nil {
			t.Fatal(err)
		}
		all := make([]string, names)
		for i := range all {
			all[i] = fmt.Sprintf("udf-%d", i)
		}
		changed := PlacementChanged(before, after, all, replicas)
		changedSet := make(map[string]bool, len(changed))
		for _, c := range changed {
			changedSet[c] = true
		}
		movedOwners := 0
		for _, name := range all {
			ownerMoved := before.Owner(name) != after.Owner(name)
			if ownerMoved {
				movedOwners++
			}
			if changedSet[name] {
				continue
			}
			// Unchanged names must keep their exact placement — owner and
			// replica order — or the "only re-placed names are re-pulled"
			// contract would silently re-fetch them.
			if ownerMoved {
				t.Fatalf("n=%d: %s not in changed set but owner moved %s → %s",
					n, name, before.Owner(name), after.Owner(name))
			}
			b, a := before.Replicas(name, replicas), after.Replicas(name, replicas)
			if !replicaSetEqual(b, a) {
				t.Fatalf("n=%d: %s not in changed set but replicas moved %v → %v", n, name, b, a)
			}
		}
		ideal := float64(names) / float64(n+1)
		if f := float64(movedOwners); f > 2*ideal {
			t.Fatalf("n=%d→%d: %d owners moved, more than 2× the ideal %.0f", n, n+1, movedOwners, ideal)
		}
		if movedOwners == 0 {
			t.Fatalf("n=%d→%d: no owner moved — the new shard owns nothing", n, n+1)
		}
	}
}

// TestRingRebalanceOnLeave mirrors the join suite for shard removal: every
// name owned by the departed shard moves (nowhere else to go), nothing else
// moves beyond the replica-set diff, and the moved fraction stays within 2×
// of the departed shard's share.
func TestRingRebalanceOnLeave(t *testing.T) {
	const names = 10000
	const replicas = 2
	for n := 3; n <= 8; n++ {
		shards := shardList(n)
		before, err := NewRing(shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		departed := shards[n-1]
		after, err := NewRing(shards[:n-1], 0)
		if err != nil {
			t.Fatal(err)
		}
		movedOwners := 0
		for i := 0; i < names; i++ {
			name := fmt.Sprintf("udf-%d", i)
			ob, oa := before.Owner(name), after.Owner(name)
			if ob == departed && oa == departed {
				t.Fatalf("n=%d: %s still owned by the departed shard", n, name)
			}
			if ob != oa {
				movedOwners++
				if ob != departed {
					t.Fatalf("n=%d: %s moved %s → %s though its owner did not leave", n, name, ob, oa)
				}
			}
		}
		ideal := float64(names) / float64(n)
		if f := float64(movedOwners); f > 2*ideal {
			t.Fatalf("n=%d→%d: %d owners moved, more than 2× the ideal %.0f", n, n-1, movedOwners, ideal)
		}
	}
}

// TestRingLoadUniformity documents the 64-vnode default with evidence:
// across fleets of 2–8 shards and 10k names, every shard's owned share
// stays within ±25% of uniform.
func TestRingLoadUniformity(t *testing.T) {
	const names = 10000
	for n := 2; n <= 8; n++ {
		ring, err := NewRing(shardList(n), 64)
		if err != nil {
			t.Fatal(err)
		}
		load := make(map[string]int, n)
		for i := 0; i < names; i++ {
			load[ring.Owner(fmt.Sprintf("udf-%d", i))]++
		}
		uniform := float64(names) / float64(n)
		for shard, got := range load {
			if f := float64(got); f < 0.75*uniform || f > 1.25*uniform {
				t.Fatalf("n=%d: shard %s owns %d of %d names (uniform %.0f ± 25%%)", n, shard, got, names, uniform)
			}
		}
	}
}
