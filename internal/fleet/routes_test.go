package fleet

import (
	"net/http/httptest"
	"strings"
	"testing"

	"olgapro/internal/server/wire"
)

// TestRouterMuxCoversCanonicalRoutes pins the router mux to wire.Routes:
// every both- or router-scoped entry must resolve to a registered
// handler, and shard-internal entries (replication, snapshot fetch,
// query partials) must not be exposed through the router.
func TestRouterMuxCoversCanonicalRoutes(t *testing.T) {
	rt, err := NewRouter(Config{Shards: []string{"http://127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for _, route := range wire.Routes {
		req := httptest.NewRequest(route.Method, strings.ReplaceAll(route.Path, "{name}", "x"), nil)
		_, pattern := rt.mux.Handler(req)
		if route.Scope == wire.ScopeShard {
			if pattern != "" {
				t.Errorf("shard-only route %s %s resolves on the router mux (pattern %q)",
					route.Method, route.Path, pattern)
			}
			continue
		}
		if pattern == "" {
			t.Errorf("route %s %s does not resolve on the router mux", route.Method, route.Path)
		}
	}
}
