package fleet

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"olgapro/client"
	"olgapro/internal/server"
)

// bootShard starts one in-process olgaprod shard behind an HTTP test server.
func bootShard(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func fleetInputs(n int, seed int64) []client.InputSpec {
	rng := rand.New(rand.NewSource(seed))
	inputs := make([]client.InputSpec, n)
	for i := range inputs {
		inputs[i] = client.InputSpec{
			{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.12},
			{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.12},
		}
	}
	return inputs
}

// ownedName returns a candidate instance name the ring places on want.
func ownedName(t *testing.T, ring *Ring, want string) string {
	t.Helper()
	for i := 0; i < 32; i++ {
		if cand := fmt.Sprintf("u%d", i); ring.Owner(cand) == want {
			return cand
		}
	}
	t.Fatalf("no candidate name in 32 attempts owned by %s", want)
	return ""
}

// TestFleetRouterAndReplication drives the full fleet story in-process:
// register and learn through the router onto the owning shard, replicate the
// model to the peer as snapshot deltas, serve byte-identical frozen reads
// from either side, and keep serving (still byte-identical) through the
// router after the owner dies.
func TestFleetRouterAndReplication(t *testing.T) {
	// The short request timeout bounds the replication long-poll window, so
	// killing the owner (whose test server waits for in-flight requests)
	// stays fast.
	sA, tsA := bootShard(t, server.Config{Workers: 2, RequestTimeout: 2 * time.Second})
	sB, tsB := bootShard(t, server.Config{Workers: 2, RequestTimeout: 2 * time.Second})
	_ = sA
	addrs := []string{tsA.URL, tsB.URL}
	ring, err := NewRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	name := ownedName(t, ring, tsA.URL)

	rt, err := NewRouter(Config{Shards: addrs, Replicas: 2, Cooldown: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	tsR := httptest.NewServer(rt.Handler())
	defer tsR.Close()
	ctx := context.Background()
	cl := client.New(tsR.URL)
	clA, clB := client.New(tsA.URL), client.New(tsB.URL)

	// Register through the router: lands on the owner only.
	info, err := cl.Register(ctx, client.RegisterRequest{
		Name: name, UDF: "poly/smooth2d", Eps: 0.2, Delta: 0.1,
		Warmup: fleetInputs(8, 41), WarmupSeed: 7,
	})
	if err != nil {
		t.Fatalf("register via router: %v", err)
	}
	if info.Name != name || info.TrainingPoints < 2 {
		t.Fatalf("register info: %+v", info)
	}
	if listA, err := clA.ListUDFs(ctx); err != nil || len(listA.UDFs) != 1 || listA.UDFs[0].Replica {
		t.Fatalf("owner shard after register: %+v, %v", listA, err)
	}
	if listB, err := clB.ListUDFs(ctx); err != nil || len(listB.UDFs) != 0 {
		t.Fatalf("peer shard after register: %+v, %v", listB, err)
	}

	// Learn through the router (proxied to the owner), then record the
	// canonical frozen replay bytes.
	inputs := fleetInputs(16, 42)
	learned, _, err := cl.Stream(ctx, name, client.StreamOptions{Seed: 3}, inputs)
	if err != nil || len(learned) != len(inputs) {
		t.Fatalf("learn stream via router: %d lines, %v", len(learned), err)
	}
	_, raw1, err := cl.Stream(ctx, name, client.StreamOptions{Frozen: true, Seed: 9}, inputs)
	if err != nil {
		t.Fatalf("frozen stream via router: %v", err)
	}

	// Replicate onto shard B and wait for it to catch the owner's sequence.
	listA, err := clA.ListUDFs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ownerSeq := listA.UDFs[0].ModelSeq
	repl, err := StartReplicator(ReplicatorConfig{
		Self: tsB.URL, Shards: addrs, Registry: sB.Registry(),
		Replicas: 2, Interval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()
	deadline := time.Now().Add(15 * time.Second)
	for {
		listB, err := clB.ListUDFs(ctx)
		if err == nil && len(listB.UDFs) == 1 && listB.UDFs[0].Replica && listB.UDFs[0].ModelSeq >= ownerSeq {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica did not converge to seq %d: %+v", ownerSeq, listB)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The replica serves the same bytes as the owner: frozen responses are a
	// pure function of (model seq, request).
	_, rawB, err := clB.Stream(ctx, name, client.StreamOptions{Frozen: true, Seed: 9}, inputs)
	if err != nil {
		t.Fatalf("frozen stream on replica: %v", err)
	}
	if !bytes.Equal(rawB, raw1) {
		t.Fatalf("replica replay diverged from owner:\n%s\nvs\n%s", rawB, raw1)
	}

	// Learning traffic against the replica is refused with not_owner.
	if _, err := clB.Eval(ctx, name, client.EvalRequest{Input: inputs[0], Seed: 1}); !client.IsCode(err, client.CodeNotOwner) {
		t.Fatalf("learn on replica: %v, want not_owner", err)
	}

	// Merged fleet views through the router.
	if h, err := cl.Healthz(ctx); err != nil || h.Status != "ok" || len(h.Shards) != 2 {
		t.Fatalf("fleet healthz: %+v, %v", h, err)
	}
	if cat, err := cl.Catalog(ctx); err != nil || len(cat.UDFs) < 6 {
		t.Fatalf("fleet catalog: %d entries, %v", len(cat.UDFs), err)
	}
	if list, err := cl.ListUDFs(ctx); err != nil || len(list.UDFs) != 1 || list.UDFs[0].Replica {
		t.Fatalf("fleet udfs (owner record must win): %+v, %v", list, err)
	}
	st, err := cl.Stats(ctx)
	if err != nil || len(st.UDFs) != 1 || st.UDFs[0].Name != name {
		t.Fatalf("fleet stats: %+v, %v", st, err)
	}
	if st.UDFs[0].Inputs < int64(len(inputs)) || st.TotalSavedCalls <= 0 {
		t.Fatalf("fleet stats not merged: %+v", st.UDFs[0])
	}

	// A bounded query through the router is replayable too.
	queryReq := map[string]any{
		"udf": name, "seed": 5,
		"rows": []map[string]any{{"input": inputs[0]}, {"input": inputs[1]}},
	}
	qraw1, err := cl.Query(ctx, queryReq)
	if err != nil {
		t.Fatalf("query via router: %v", err)
	}

	// Errors pass through the router as envelopes.
	if _, err := cl.Eval(ctx, "ghost", client.EvalRequest{Input: inputs[0]}); !client.IsCode(err, client.CodeNotFound) {
		t.Fatalf("unknown UDF via router: %v, want not_found", err)
	}

	// Kill the owner. Frozen reads keep serving through the router from the
	// surviving replica — and the retried bytes are identical.
	tsA.Close()
	_, raw2, err := cl.Stream(ctx, name, client.StreamOptions{Frozen: true, Seed: 9}, inputs)
	if err != nil {
		t.Fatalf("frozen stream after owner death: %v", err)
	}
	if !bytes.Equal(raw2, raw1) {
		t.Fatalf("failover replay diverged:\n%s\nvs\n%s", raw2, raw1)
	}
	qraw2, err := cl.Query(ctx, queryReq)
	if err != nil {
		t.Fatalf("query after owner death: %v", err)
	}
	if !bytes.Equal(qraw2, qraw1) {
		t.Fatalf("failover query diverged:\n%s\nvs\n%s", qraw2, qraw1)
	}
	learnFalse := false
	if res, err := cl.Eval(ctx, name, client.EvalRequest{Input: inputs[0], Seed: 9, Learn: &learnFalse}); err != nil || res.SupportHash == "" {
		t.Fatalf("frozen eval after owner death: %+v, %v", res, err)
	}
	if h, err := cl.Healthz(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("healthz with one survivor: %+v, %v", h, err)
	}

	// Learning traffic needs the owner: with it gone the router reports the
	// fleet unavailable rather than silently learning on a replica.
	if _, err := cl.Eval(ctx, name, client.EvalRequest{Input: inputs[0], Seed: 1}); !client.IsCode(err, client.CodeUnavailable) {
		t.Fatalf("learn with dead owner: %v, want unavailable", err)
	}
}

// TestRouterAuth asserts the router guards its listener and forwards the
// fleet credential to the shards.
func TestRouterAuth(t *testing.T) {
	const token = "fleet-sekrit"
	_, ts := bootShard(t, server.Config{Workers: 1, AuthToken: token})
	rt, err := NewRouter(Config{Shards: []string{ts.URL}, AuthToken: token})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	tsR := httptest.NewServer(rt.Handler())
	defer tsR.Close()
	ctx := context.Background()

	// No client credential: refused at the router with the envelope.
	if _, err := client.New(tsR.URL).Catalog(ctx); !client.IsCode(err, client.CodeUnauthorized) {
		t.Fatalf("unauthenticated catalog: %v, want unauthorized", err)
	}
	// With the token the request passes router AND shard auth.
	if cat, err := client.New(tsR.URL, client.WithToken(token)).Catalog(ctx); err != nil || len(cat.UDFs) == 0 {
		t.Fatalf("authenticated catalog: %v", err)
	}
	// Health probes stay open for load balancers.
	if h, err := client.New(tsR.URL).Healthz(ctx); err != nil || len(h.Shards) != 1 {
		t.Fatalf("unauthenticated healthz: %+v, %v", h, err)
	}
}
