package fleet

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"olgapro/client"
	"olgapro/internal/server"
)

// registerVia registers one smooth-2D UDF instance deterministically: the
// same call against two fleets leaves both with bit-identical model state.
func registerVia(t *testing.T, cl *client.Client, name string) {
	t.Helper()
	if _, err := cl.Register(context.Background(), client.RegisterRequest{
		Name: name, UDF: "poly/smooth2d", Eps: 0.2, Delta: 0.1,
		Warmup: fleetInputs(8, 41), WarmupSeed: 7,
	}); err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
}

// scatterPlans is the plan-shape matrix the scatter tests sweep: every
// first-stage kind (none, window, group-by, top-k) plus router-side
// downstream stages and a TEP predicate (which drops tuples, so global
// ordinals have gaps).
func scatterPlans() map[string]map[string]any {
	return map[string]map[string]any{
		"bare": {},
		"predicate": {
			"predicate": map[string]any{"a": 0.0, "b": 1.2, "theta": 0.05},
		},
		"groupby_topk": {
			"group_by": map[string]any{
				"keys": []string{"g"},
				"aggs": []map[string]any{
					{"kind": "count"}, {"kind": "sum", "attr": "y"}, {"kind": "avg", "attr": "y"},
					{"kind": "min", "attr": "y"}, {"kind": "max", "attr": "y"},
				},
			},
			"topk": map[string]any{"k": 2, "by": "avg_y", "desc": true},
		},
		"window_topk": {
			"window": map[string]any{
				"size": 4, "step": 2,
				"aggs": []map[string]any{{"kind": "count"}, {"kind": "avg", "attr": "y"}},
			},
			"topk": map[string]any{"k": 2, "by": "avg_y", "desc": true},
		},
		"topk_predicate": {
			"predicate": map[string]any{"a": 0.0, "b": 1.2, "theta": 0.05},
			"topk":      map[string]any{"k": 3, "by": "y", "desc": true},
		},
	}
}

// scatterRows builds n deterministic rows, labelled round-robin into three
// groups, each optionally naming its own UDF instance from names.
func scatterRows(n int, names []string) []map[string]any {
	inputs := fleetInputs(n, 42)
	rows := make([]map[string]any, n)
	for i := range rows {
		rows[i] = map[string]any{
			"input": inputs[i],
			"group": string(rune('a' + i%3)),
		}
		if len(names) > 0 {
			rows[i]["udf"] = names[i%len(names)]
		}
	}
	return rows
}

// TestRouterScatterMatchesForward pins the scatter-gather path to the
// serial reference: the same single-instance plan answered by forwarding
// the whole request to a shard's /v1/query must come back byte-identical
// when the rows name their UDF and the router decomposes, scatters, and
// merges partial states instead.
func TestRouterScatterMatchesForward(t *testing.T) {
	_, ts := bootShard(t, server.Config{Workers: 2})
	rt, err := NewRouter(Config{Shards: []string{ts.URL}, Replicas: 1, Cooldown: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	tsR := newRouterServer(t, rt)
	cl := client.New(tsR.URL)
	ctx := context.Background()
	registerVia(t, cl, "u0")

	for label, plan := range scatterPlans() {
		fwd := map[string]any{"udf": "u0", "seed": 21, "rows": scatterRows(10, nil)}
		scat := map[string]any{"udf": "u0", "seed": 21, "rows": scatterRows(10, []string{"u0"})}
		for k, v := range plan {
			fwd[k] = v
			scat[k] = v
		}
		want, err := cl.Query(ctx, fwd)
		if err != nil {
			t.Fatalf("%s: forwarded query: %v", label, err)
		}
		got, err := cl.Query(ctx, scat)
		if err != nil {
			t.Fatalf("%s: scattered query: %v", label, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: scatter-gather diverged from forwarded plan:\n%s\nvs\n%s", label, got, want)
		}
	}
}

// TestRouterScatterAcrossShardsMatchesSolo is the distribution-invariance
// property at fleet scale: one plan over three UDF instances answered by a
// three-shard fleet (each instance owned by a different shard) must be
// byte-identical to the same plan on a single-shard fleet holding all
// three.
func TestRouterScatterAcrossShardsMatchesSolo(t *testing.T) {
	_, tsA := bootShard(t, server.Config{Workers: 2})
	_, tsB := bootShard(t, server.Config{Workers: 2})
	_, tsC := bootShard(t, server.Config{Workers: 2})
	_, tsD := bootShard(t, server.Config{Workers: 2})
	addrs := []string{tsA.URL, tsB.URL, tsC.URL}
	ring, err := NewRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{
		ownedName(t, ring, tsA.URL),
		ownedName(t, ring, tsB.URL),
		ownedName(t, ring, tsC.URL),
	}

	rt3, err := NewRouter(Config{Shards: addrs, Replicas: 1, Cooldown: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt3.Close()
	rt1, err := NewRouter(Config{Shards: []string{tsD.URL}, Replicas: 1, Cooldown: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt1.Close()
	cl3 := client.New(newRouterServer(t, rt3).URL)
	cl1 := client.New(newRouterServer(t, rt1).URL)
	for _, name := range names {
		registerVia(t, cl3, name)
		registerVia(t, cl1, name)
	}

	ctx := context.Background()
	for label, plan := range scatterPlans() {
		req := map[string]any{"seed": 9, "rows": scatterRows(12, names)}
		for k, v := range plan {
			req[k] = v
		}
		want, err := cl1.Query(ctx, req)
		if err != nil {
			t.Fatalf("%s: solo fleet query: %v", label, err)
		}
		got, err := cl3.Query(ctx, req)
		if err != nil {
			t.Fatalf("%s: three-shard query: %v", label, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: three-shard answer diverged from solo fleet:\n%s\nvs\n%s", label, got, want)
		}
	}
}

// TestRouterScatterRetriesDeadShard kills the owning shard between two
// scattered queries: the router's per-shard retry must fail over to the
// caught-up replica and still produce the same bytes.
func TestRouterScatterRetriesDeadShard(t *testing.T) {
	sA, tsA := bootShard(t, server.Config{Workers: 2, RequestTimeout: 2 * time.Second})
	sB, tsB := bootShard(t, server.Config{Workers: 2, RequestTimeout: 2 * time.Second})
	_ = sA
	addrs := []string{tsA.URL, tsB.URL}
	ring, err := NewRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	name := ownedName(t, ring, tsA.URL)

	rt, err := NewRouter(Config{Shards: addrs, Replicas: 2, Cooldown: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	cl := client.New(newRouterServer(t, rt).URL)
	ctx := context.Background()
	registerVia(t, cl, name)

	clA := client.New(tsA.URL)
	listA, err := clA.ListUDFs(ctx)
	if err != nil || len(listA.UDFs) != 1 {
		t.Fatalf("owner udfs: %+v, %v", listA, err)
	}
	repl, err := StartReplicator(ReplicatorConfig{
		Self: tsB.URL, Shards: addrs, Registry: sB.Registry(),
		Replicas: 2, Interval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()
	clB := client.New(tsB.URL)
	deadline := time.Now().Add(15 * time.Second)
	for {
		listB, err := clB.ListUDFs(ctx)
		if err == nil && len(listB.UDFs) == 1 && listB.UDFs[0].ModelSeq >= listA.UDFs[0].ModelSeq {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica did not converge: %+v", listB)
		}
		time.Sleep(50 * time.Millisecond)
	}

	req := map[string]any{"seed": 3, "rows": scatterRows(8, []string{name}),
		"group_by": map[string]any{
			"keys": []string{"g"},
			"aggs": []map[string]any{{"kind": "count"}, {"kind": "avg", "attr": "y"}},
		}}
	want, err := cl.Query(ctx, req)
	if err != nil {
		t.Fatalf("query before kill: %v", err)
	}
	tsA.Close()
	got, err := cl.Query(ctx, req)
	if err != nil {
		t.Fatalf("query after owner death: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("failover scatter diverged:\n%s\nvs\n%s", got, want)
	}
}

// newRouterServer serves one router over an HTTP test listener.
func newRouterServer(t *testing.T, rt *Router) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return ts
}
