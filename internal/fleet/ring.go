// Package fleet shards the olgaprod registry across processes: a
// consistent-hash ring places each UDF instance on one owning writer shard
// and a fixed set of read replicas, a Router fans the /v1 surface across
// the fleet (learning traffic to the owner, frozen reads to any replica,
// with retry on shard failure), and a Replicator running inside each shard
// pulls owned models from its peers as versioned snapshot deltas ordered by
// the per-UDF model sequence number.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVNodes is the virtual-node count per shard: enough that the keyspace
// split stays near-uniform for single-digit fleets without making ring
// construction noticeable.
const defaultVNodes = 64

// Ring is an immutable consistent-hash ring mapping UDF instance names to
// shard addresses. Placement is a pure function of (addrs, name), so every
// fleet member — router and shards alike — computes identical ownership
// without coordination.
type Ring struct {
	points []ringPoint // sorted by hash
	addrs  []string    // distinct shard addresses, input order
}

type ringPoint struct {
	hash uint64
	addr string
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV alone leaves sequential names
// (udf-0, udf-1, …) in tight clusters — the trailing byte perturbs the hash
// only by small multiples of the FNV prime — which can starve a shard of an
// entire name family; the finalizer avalanches those bits across the whole
// keyspace.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds a ring over the shard addresses. vnodes ≤ 0 uses the
// default; addrs must be non-empty and duplicate-free.
func NewRing(addrs []string, vnodes int) (*Ring, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	seen := make(map[string]bool, len(addrs))
	r := &Ring{addrs: append([]string(nil), addrs...)}
	for _, a := range addrs {
		if a == "" {
			return nil, fmt.Errorf("fleet: empty shard address")
		}
		if seen[a] {
			return nil, fmt.Errorf("fleet: duplicate shard address %q", a)
		}
		seen[a] = true
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(fmt.Sprintf("%s#%d", a, i)),
				addr: a,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// Addrs returns the shard addresses the ring was built over.
func (r *Ring) Addrs() []string { return append([]string(nil), r.addrs...) }

// Owner returns the shard owning the named UDF instance: the writer every
// registration and learning request routes to.
func (r *Ring) Owner(name string) string { return r.Replicas(name, 1)[0] }

// Replicas returns up to n distinct shards for the name, owner first, then
// ring successors — the shards that should hold frozen replicas. n larger
// than the fleet returns every shard.
func (r *Ring) Replicas(name string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.addrs) {
		n = len(r.addrs)
	}
	h := ringHash(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.addr] {
			seen[p.addr] = true
			out = append(out, p.addr)
		}
	}
	return out
}
