package fleet

import (
	"bufio"
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"olgapro/client"
	"olgapro/internal/server"
	"olgapro/internal/server/wire"
)

// Config parameterizes a Router.
type Config struct {
	// Shards are the boot-time fleet members' base URLs — membership epoch
	// 0. Every router and shard must boot with the same list in any
	// order-insensitive sense (placement hashes addresses); afterwards the
	// fleet's membership evolves through POST /v1/fleet/members and the
	// router converges on the highest epoch it sees.
	Shards []string
	// Replicas is the replication factor: each UDF lives on its owner plus
	// Replicas-1 ring successors. Default 2, capped at the fleet size by
	// ring placement itself.
	Replicas int
	// VNodes is the ring's virtual-node count per shard (≤ 0 = default).
	VNodes int
	// AuthToken, when non-empty, is required from clients (Bearer) and
	// attached to every outbound shard request — one credential for the
	// whole fleet.
	AuthToken string
	// HTTPClient overrides the outbound transport (e.g. fleet TLS trust).
	HTTPClient *http.Client
	// Cooldown is how long a failed shard is deprioritized.
	Cooldown time.Duration
	// GossipInterval is how often the router anti-entropies membership with
	// every shard (adopting higher epochs, re-offering its own to laggards).
	// Default 1s.
	GossipInterval time.Duration
	// Logf, when non-nil, receives one line per notable router event.
	Logf func(format string, args ...any)
}

// Router fans the /v1 surface across a fleet of olgaprod shards: learning
// traffic (registration, eval/stream with learn, snapshots) routes to the
// owning writer shard; frozen reads fan across the owner's replica set with
// whole-request retry on shard failure — safe precisely because frozen
// responses are a pure function of (model state, request), so a retried
// request on a peer at the same model sequence returns the same bytes.
// During a membership handoff the fan-out also covers the previous epoch's
// replica set, so the old owner keeps serving frozen reads until the new
// placement has caught up.
//
// The router is also the fleet's membership admin: POST /v1/fleet/members
// mints the next epoch (join or leave one shard), adopts it locally — so
// learning traffic re-routes immediately — and broadcasts it to the union
// of the old and new shard sets; a background gossip loop repairs any
// member the broadcast missed.
type Router struct {
	cfg    Config
	view   *MemberView
	health *Health
	mux    *http.ServeMux
	start  time.Time

	clientMu sync.Mutex
	clients  map[string]*client.Client

	adminMu sync.Mutex // serializes epoch minting

	gossipCancel context.CancelFunc
	wg           sync.WaitGroup
}

// NewRouter builds a router over the fleet and starts its gossip loop;
// callers must Close it.
func NewRouter(cfg Config) (*Router, error) {
	view, err := NewMemberView(wire.Membership{Epoch: 0, Shards: cfg.Shards}, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	rt := &Router{
		cfg:     cfg,
		view:    view,
		health:  NewHealth(cfg.Cooldown),
		clients: make(map[string]*client.Client, len(cfg.Shards)),
		start:   time.Now(),
	}
	rt.routes()
	ctx, cancel := context.WithCancel(context.Background())
	rt.gossipCancel = cancel
	rt.wg.Add(1)
	go rt.gossip(ctx)
	return rt, nil
}

// Close stops the gossip loop.
func (rt *Router) Close() {
	rt.gossipCancel()
	rt.wg.Wait()
}

// Membership returns the router's current membership view.
func (rt *Router) Membership() wire.Membership { return rt.view.Current() }

// clientFor returns (building on first use) the cached client for a shard.
func (rt *Router) clientFor(addr string) *client.Client {
	rt.clientMu.Lock()
	defer rt.clientMu.Unlock()
	if c, ok := rt.clients[addr]; ok {
		return c
	}
	opts := []client.Option{client.WithRetries(0)} // the router is the retry layer
	if rt.cfg.AuthToken != "" {
		opts = append(opts, client.WithToken(rt.cfg.AuthToken))
	}
	if rt.cfg.HTTPClient != nil {
		opts = append(opts, client.WithHTTPClient(rt.cfg.HTTPClient))
	}
	c := client.New(addr, opts...)
	rt.clients[addr] = c
	return c
}

// gossip is the router's membership anti-entropy loop: every interval it
// asks each member for its membership view, adopts any higher epoch (a
// restarted router reverts to its boot list and must catch up) and
// re-offers its own to any shard running behind (a member the admin
// broadcast missed).
func (rt *Router) gossip(ctx context.Context) {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.GossipInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		cur := rt.view.Current()
		for _, addr := range cur.Shards {
			cctx, cancel := context.WithTimeout(ctx, rt.cfg.GossipInterval)
			m, err := rt.clientFor(addr).Membership(cctx)
			cancel()
			if err != nil {
				continue
			}
			switch {
			case m.Epoch > cur.Epoch:
				if changed, err := rt.view.Adopt(m); err == nil && changed {
					rt.cfg.Logf("membership: adopted epoch %d from %s (%d shards)", m.Epoch, addr, len(m.Shards))
				}
				cur = rt.view.Current()
			case m.Epoch < cur.Epoch:
				cctx, cancel := context.WithTimeout(ctx, rt.cfg.GossipInterval)
				rt.clientFor(addr).OfferMembership(cctx, cur)
				cancel()
			}
		}
	}
}

// route registers a handler under /v1 and the unversioned legacy alias.
func (rt *Router) route(method, path string, h http.HandlerFunc) {
	rt.mux.HandleFunc(method+" /"+wire.APIVersion+path, h)
	rt.mux.HandleFunc(method+" "+path, h)
}

func (rt *Router) routes() {
	rt.mux = http.NewServeMux()
	rt.route("GET", "/healthz", rt.handleHealthz)
	rt.route("GET", "/stats", rt.handleStats)
	rt.route("GET", "/catalog", rt.handleCatalog)
	rt.route("GET", "/udfs", rt.handleListUDFs)
	rt.route("POST", "/udfs", rt.handleRegister)
	rt.route("POST", "/udfs/{name}/eval", rt.handleEval)
	rt.route("POST", "/udfs/{name}/stream", rt.handleStream)
	rt.route("POST", "/udfs/{name}/snapshot", rt.handleSnapshotOne)
	rt.route("POST", "/snapshot", rt.handleSnapshotAll)
	rt.mux.HandleFunc("POST /v1/query", rt.handleQuery)
	rt.mux.HandleFunc("GET /v1/fleet/members", rt.handleFleetMembersGet)
	rt.mux.HandleFunc("POST /v1/fleet/members", rt.handleFleetMembersPost)
}

// --- membership admin ---

func (rt *Router) handleFleetMembersGet(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(rt.view.Current())
}

// handleFleetMembersPost mints the next membership epoch: op "join" adds a
// shard, op "leave" removes one. The router adopts the new epoch first —
// learning traffic re-routes to the new placement immediately, which is
// what keeps the handoff race-free (the departing owner stops receiving
// learns before its successor measures catch-up) — then broadcasts it to
// the union of the old and new shard sets, departing shard included, so it
// demotes gracefully.
func (rt *Router) handleFleetMembersPost(w http.ResponseWriter, r *http.Request) {
	var req wire.FleetMembersRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad members request: %v", err)
		return
	}
	if req.Shard == "" {
		rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "members request needs a shard address")
		return
	}
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()
	cur := rt.view.Current()
	member := false
	for _, s := range cur.Shards {
		if s == req.Shard {
			member = true
		}
	}
	var next []string
	switch req.Op {
	case "join":
		if member {
			rt.fail(w, http.StatusConflict, wire.CodeAlreadyExists, "shard %q is already a member", req.Shard)
			return
		}
		next = append(append([]string(nil), cur.Shards...), req.Shard)
	case "leave":
		if !member {
			rt.fail(w, http.StatusNotFound, wire.CodeNotFound, "shard %q is not a member", req.Shard)
			return
		}
		if len(cur.Shards) == 1 {
			rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "cannot remove the last shard")
			return
		}
		for _, s := range cur.Shards {
			if s != req.Shard {
				next = append(next, s)
			}
		}
	default:
		rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "op must be \"join\" or \"leave\", got %q", req.Op)
		return
	}
	m := wire.Membership{Epoch: cur.Epoch + 1, Shards: next}
	if _, err := rt.view.Adopt(m); err != nil {
		rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "adopt: %v", err)
		return
	}
	m = rt.view.Current() // canonical (sorted) shard list
	rt.cfg.Logf("membership: minted epoch %d (%s %s, %d shards)", m.Epoch, req.Op, req.Shard, len(m.Shards))
	// Broadcast to the union of old and new members. Failures are logged,
	// not fatal: the gossip loop and the epoch piggyback on replication
	// lists repair any miss.
	targets := append([]string(nil), m.Shards...)
	if req.Op == "leave" {
		targets = append(targets, req.Shard)
	}
	for _, addr := range targets {
		bctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		_, err := rt.clientFor(addr).OfferMembership(bctx, m)
		cancel()
		if err != nil {
			rt.cfg.Logf("membership: offer epoch %d to %s: %v", m.Epoch, addr, err)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(m)
}

// Handler returns the router's HTTP handler (bearer auth applied, health
// checks exempt).
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if tok := rt.cfg.AuthToken; tok != "" && r.URL.Path != "/healthz" && r.URL.Path != "/v1/healthz" {
			const prefix = "Bearer "
			h := r.Header.Get("Authorization")
			if len(h) <= len(prefix) || h[:len(prefix)] != prefix ||
				subtle.ConstantTimeCompare([]byte(h[len(prefix):]), []byte(tok)) != 1 {
				rt.fail(w, http.StatusUnauthorized, wire.CodeUnauthorized, "missing or invalid bearer token")
				return
			}
		}
		rt.mux.ServeHTTP(w, r)
	})
}

// fail writes the structured error envelope.
func (rt *Router) fail(w http.ResponseWriter, status int, code wire.ErrorCode, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(wire.ErrorEnvelope{Error: wire.ErrorDetail{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// failFrom relays a client-side error: a decoded shard envelope passes
// through with its original status and code; transport failures become 502
// unavailable.
func (rt *Router) failFrom(w http.ResponseWriter, err error) {
	var ae *client.APIError
	if errors.As(err, &ae) {
		w.Header().Set("Content-Type", "application/json")
		if ae.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int((ae.RetryAfter+time.Second-1)/time.Second)))
		}
		w.WriteHeader(ae.Status)
		json.NewEncoder(w).Encode(wire.ErrorEnvelope{Error: wire.ErrorDetail{
			Code:         ae.Code,
			Message:      ae.Message,
			RetryAfterMS: int64(ae.RetryAfter / time.Millisecond),
		}})
		return
	}
	rt.fail(w, http.StatusBadGateway, wire.CodeUnavailable, "no shard could serve the request: %v", err)
}

// shardResp is one fully-buffered shard response: buffering is what makes
// whole-request retry and byte-identical relay possible.
type shardResp struct {
	status int
	header http.Header
	body   []byte
}

// forward sends one request to a shard through its client, buffers the
// response, and feeds the health ledger.
func (rt *Router) forward(ctx context.Context, addr, method, path string, q url.Values, body []byte, ct string) (*shardResp, error) {
	resp, err := rt.clientFor(addr).Do(ctx, method, path, q, body, ct)
	if err != nil {
		rt.health.MarkDown(addr)
		return nil, err
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		rt.health.MarkDown(addr)
		return nil, err
	}
	rt.health.MarkUp(addr)
	return &shardResp{status: resp.StatusCode, header: resp.Header, body: b}, nil
}

// relay writes a buffered shard response to the client verbatim.
func relay(w http.ResponseWriter, sr *shardResp) {
	for _, k := range []string{"Content-Type", "Retry-After", wire.HeaderModelSeq, wire.HeaderSpec} {
		if v := sr.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(sr.status)
	w.Write(sr.body)
}

// retryableEnvelope reports whether a shard's error response means "another
// replica may succeed": the replica hasn't ingested the model yet
// (not_found / model_cold), is shutting down, or is overloaded.
func retryableEnvelope(status int, body []byte) bool {
	if status < 300 {
		return false
	}
	var env wire.ErrorEnvelope
	if json.Unmarshal(body, &env) == nil {
		switch env.Error.Code {
		case wire.CodeNotFound, wire.CodeModelCold, wire.CodeDraining,
			wire.CodeUnavailable, wire.CodeOverCapacity:
			return true
		}
	}
	return status == http.StatusBadGateway || status == http.StatusServiceUnavailable
}

// retryableStream reports whether a complete NDJSON stream response ended
// in a terminal error another replica could avoid.
func retryableStream(body []byte) bool {
	var last []byte
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		if line := bytes.TrimSpace(sc.Bytes()); len(line) > 0 {
			last = append(last[:0], line...)
		}
	}
	if len(last) == 0 {
		return false
	}
	var sr wire.StreamResult
	if json.Unmarshal(last, &sr) != nil || sr.Error == "" {
		return false
	}
	switch sr.ErrorCode {
	case wire.CodeNotFound, wire.CodeModelCold, wire.CodeDraining, wire.CodeUnavailable:
		return true
	}
	return false
}

// replicasFor returns the retry-ordered candidate shards for a frozen read:
// the current epoch's replica set plus, during a handoff window, the
// previous epoch's — the old placement keeps serving frozen reads until the
// new one has caught up, and a replica at the same model sequence returns
// the same bytes regardless of which epoch placed it there.
func (rt *Router) replicasFor(name string) []string {
	cur, prev := rt.view.Rings()
	cand := cur.Replicas(name, rt.cfg.Replicas)
	if prev != nil {
		seen := make(map[string]bool, len(cand))
		for _, a := range cand {
			seen[a] = true
		}
		for _, a := range prev.Replicas(name, rt.cfg.Replicas) {
			if !seen[a] {
				cand = append(cand, a)
			}
		}
	}
	return rt.health.Order(cand)
}

// fanFrozen tries fn against each replica candidate until one returns a
// non-retryable response. Transport failures and retryable envelopes move
// on to the next candidate; the last response (or error) is surfaced when
// every candidate fails.
func (rt *Router) fanFrozen(name string, fn func(addr string) (*shardResp, bool, error)) (*shardResp, error) {
	var lastResp *shardResp
	var lastErr error
	for _, addr := range rt.replicasFor(name) {
		sr, retryable, err := fn(addr)
		if err != nil {
			rt.cfg.Logf("shard %s failed, trying next replica: %v", addr, err)
			lastErr = err
			continue
		}
		lastResp = sr
		if !retryable {
			return sr, nil
		}
		rt.cfg.Logf("shard %s answered retryable %d, trying next replica", addr, sr.status)
	}
	if lastResp != nil {
		return lastResp, nil
	}
	if lastErr == nil {
		lastErr = errors.New("fleet: no replica candidates")
	}
	return nil, lastErr
}

// --- read endpoints ---

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	shards := rt.view.Current().Shards
	resp := wire.HealthResponse{
		Status:    "degraded",
		UptimeSec: time.Since(rt.start).Seconds(),
		Shards:    make([]wire.ShardHealth, len(shards)),
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, addr := range shards {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), time.Second)
			defer cancel()
			h, err := rt.clientFor(addr).Healthz(ctx)
			up := err == nil && h.Status == "ok"
			mu.Lock()
			resp.Shards[i] = wire.ShardHealth{Addr: addr, Up: up}
			if up {
				resp.Status = "ok"
				resp.InFlight += h.InFlight
				resp.Capacity += h.Capacity
				if h.UDFs > resp.UDFs {
					resp.UDFs = h.UDFs
				}
			}
			mu.Unlock()
		}(i, addr)
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(resp)
}

func (rt *Router) handleCatalog(w http.ResponseWriter, r *http.Request) {
	for _, addr := range rt.health.Order(rt.view.Ring().Addrs()) {
		sr, err := rt.forward(r.Context(), addr, http.MethodGet, "/v1/catalog", nil, nil, "")
		if err == nil {
			relay(w, sr)
			return
		}
	}
	rt.fail(w, http.StatusBadGateway, wire.CodeUnavailable, "no shard reachable for catalog")
}

func (rt *Router) handleListUDFs(w http.ResponseWriter, r *http.Request) {
	merged := make(map[string]wire.UDFInfo)
	reached := false
	for _, addr := range rt.view.Ring().Addrs() {
		list, err := rt.clientFor(addr).ListUDFs(r.Context())
		if err != nil {
			rt.health.MarkDown(addr)
			continue
		}
		rt.health.MarkUp(addr)
		reached = true
		for _, info := range list.UDFs {
			// The owner's record wins: it carries the freshest model
			// sequence and the authoritative training-point count.
			if prev, ok := merged[info.Name]; !ok || (prev.Replica && !info.Replica) {
				merged[info.Name] = info
			}
		}
	}
	if !reached {
		rt.fail(w, http.StatusBadGateway, wire.CodeUnavailable, "no shard reachable")
		return
	}
	resp := wire.UDFList{UDFs: make([]wire.UDFInfo, 0, len(merged))}
	for _, info := range merged {
		resp.UDFs = append(resp.UDFs, info)
	}
	sortUDFInfos(resp.UDFs)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(resp)
}

func sortUDFInfos(infos []wire.UDFInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].Name < infos[j-1].Name; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	// Fleet-wide accounting: the same UDF serves traffic on its owner and
	// every replica, so per-name counters are summed across shards and the
	// savings totals recomputed from the merged view.
	type acc struct {
		st    wire.UDFStats
		owner bool
	}
	merged := make(map[string]*acc)
	var order []string
	reached := false
	ring := rt.view.Ring()
	for _, addr := range ring.Addrs() {
		st, err := rt.clientFor(addr).Stats(r.Context())
		if err != nil {
			rt.health.MarkDown(addr)
			continue
		}
		rt.health.MarkUp(addr)
		reached = true
		for _, s := range st.UDFs {
			isOwner := ring.Owner(s.Name) == addr
			a, ok := merged[s.Name]
			if !ok {
				merged[s.Name] = &acc{st: s, owner: isOwner}
				order = append(order, s.Name)
				continue
			}
			if isOwner && !a.owner {
				// Identity fields and model-side counters come from the
				// owner; traffic counters stay summed across shards.
				inputs, calls := a.st.Inputs, a.st.UDFCalls
				a.st = s
				a.st.Inputs += inputs
				a.st.UDFCalls += calls
				a.owner = true
			} else {
				a.st.Inputs += s.Inputs
				a.st.UDFCalls += s.UDFCalls
			}
		}
	}
	if !reached {
		rt.fail(w, http.StatusBadGateway, wire.CodeUnavailable, "no shard reachable")
		return
	}
	resp := wire.StatsResponse{}
	var totalMC int64
	for _, name := range order {
		s := merged[name].st
		s.MCEquivalentCalls = s.Inputs * int64(s.MCSamplesPerInput)
		s.SavedCalls = s.MCEquivalentCalls - int64(s.UDFCalls)
		if s.MCEquivalentCalls > 0 {
			s.SavingsRatio = float64(s.SavedCalls) / float64(s.MCEquivalentCalls)
		}
		resp.TotalSavedCalls += s.SavedCalls
		totalMC += s.MCEquivalentCalls
		resp.UDFs = append(resp.UDFs, s)
	}
	if totalMC > 0 {
		resp.TotalSavingsRatio = float64(resp.TotalSavedCalls) / float64(totalMC)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(resp)
}

// --- write endpoints (owner-routed) ---

func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "read body: %v", err)
		return
	}
	var req wire.RegisterRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad register request: %v", err)
		return
	}
	name := req.Name
	if name == "" {
		name = server.DefaultInstanceName(req.UDF)
	}
	owner := rt.view.Ring().Owner(name)
	sr, err := rt.forward(r.Context(), owner, http.MethodPost, "/v1/udfs", nil, body, "application/json")
	if err != nil {
		rt.failFrom(w, err)
		return
	}
	rt.cfg.Logf("register %q → owner %s (%d)", name, owner, sr.status)
	relay(w, sr)
}

func (rt *Router) handleSnapshotOne(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	owner := rt.view.Ring().Owner(name)
	sr, err := rt.forward(r.Context(), owner, http.MethodPost, "/v1/udfs/"+url.PathEscape(name)+"/snapshot", nil, nil, "")
	if err != nil {
		rt.failFrom(w, err)
		return
	}
	relay(w, sr)
}

func (rt *Router) handleSnapshotAll(w http.ResponseWriter, r *http.Request) {
	var resp wire.SnapshotResponse
	reached := false
	for _, addr := range rt.view.Ring().Addrs() {
		snaps, err := rt.clientFor(addr).SnapshotAll(r.Context())
		if err != nil {
			rt.health.MarkDown(addr)
			continue
		}
		rt.health.MarkUp(addr)
		reached = true
		resp.Snapshots = append(resp.Snapshots, snaps.Snapshots...)
	}
	if !reached {
		rt.fail(w, http.StatusBadGateway, wire.CodeUnavailable, "no shard reachable")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(resp)
}

// --- evaluation ---

func (rt *Router) handleEval(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "read body: %v", err)
		return
	}
	var req wire.EvalRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad eval request: %v", err)
		return
	}
	path := "/v1/udfs/" + url.PathEscape(name) + "/eval"
	q := forwardableQuery(r)
	if req.Learn == nil || *req.Learn {
		owner := rt.view.Ring().Owner(name)
		sr, err := rt.forward(r.Context(), owner, http.MethodPost, path, q, body, "application/json")
		if err != nil {
			rt.failFrom(w, err)
			return
		}
		relay(w, sr)
		return
	}
	sr, err := rt.fanFrozen(name, func(addr string) (*shardResp, bool, error) {
		sr, err := rt.forward(r.Context(), addr, http.MethodPost, path, q, body, "application/json")
		if err != nil {
			return nil, false, err
		}
		return sr, retryableEnvelope(sr.status, sr.body), nil
	})
	if err != nil {
		rt.failFrom(w, err)
		return
	}
	relay(w, sr)
}

// forwardableQuery passes through the request-shaping parameters a client
// may set (seed, learn, timeout_ms).
func forwardableQuery(r *http.Request) url.Values {
	q := url.Values{}
	for _, k := range []string{"seed", "learn", "timeout_ms"} {
		if v := r.URL.Query().Get(k); v != "" {
			q.Set(k, v)
		}
	}
	return q
}

func (rt *Router) handleStream(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "read body: %v", err)
		return
	}
	q := forwardableQuery(r)
	path := "/v1/udfs/" + url.PathEscape(name) + "/stream"
	if r.URL.Query().Get("learn") != "false" {
		// Learning stream: single writer, no retry (a replay would re-learn
		// the prefix), response streamed through incrementally.
		owner := rt.view.Ring().Owner(name)
		rc, err := rt.clientFor(owner).OpenStream(r.Context(), name, q, body)
		if err != nil {
			rt.health.MarkDown(owner)
			rt.failFrom(w, err)
			return
		}
		defer rc.Close()
		rt.health.MarkUp(owner)
		w.Header().Set("Content-Type", "application/x-ndjson")
		fw := flushWriter{w: w}
		io.Copy(fw, rc)
		return
	}
	// Frozen stream: buffer the whole exchange so a shard dying mid-stream
	// retries the full request on the next replica — the response is a pure
	// function of (model seq, request bytes), so the replay is byte-
	// identical and the client never sees a torn stream.
	sr, err := rt.fanFrozen(name, func(addr string) (*shardResp, bool, error) {
		sr, err := rt.forward(r.Context(), addr, http.MethodPost, path, q, body, "application/x-ndjson")
		if err != nil {
			return nil, false, err
		}
		if sr.status >= 300 {
			return sr, retryableEnvelope(sr.status, sr.body), nil
		}
		return sr, retryableStream(sr.body), nil
	})
	if err != nil {
		rt.failFrom(w, err)
		return
	}
	relay(w, sr)
}

// flushWriter flushes after every write so learn-stream results reach the
// client as they are produced, not when the shard closes the stream.
type flushWriter struct{ w http.ResponseWriter }

func (f flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "read body: %v", err)
		return
	}
	var probe struct {
		UDF  string `json:"udf"`
		Rows []struct {
			UDF string `json:"udf"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		rt.fail(w, http.StatusBadRequest, wire.CodeBadSpec, "bad query request: %v", err)
		return
	}
	// A row naming its own UDF instance opts the request into the
	// scatter-gather path — the relation may span instances owned by
	// different shards. Single-instance requests forward whole: one shard
	// holds everything the plan needs, and its response relays verbatim.
	scatter := false
	for _, row := range probe.Rows {
		if row.UDF != "" {
			scatter = true
			break
		}
	}
	if scatter || probe.UDF == "" {
		rt.handleQueryScatter(w, r, body)
		return
	}
	q := forwardableQuery(r)
	sr, err := rt.fanFrozen(probe.UDF, func(addr string) (*shardResp, bool, error) {
		sr, err := rt.forward(r.Context(), addr, http.MethodPost, "/v1/query", q, body, "application/json")
		if err != nil {
			return nil, false, err
		}
		return sr, retryableEnvelope(sr.status, sr.body), nil
	})
	if err != nil {
		rt.failFrom(w, err)
		return
	}
	relay(w, sr)
}
