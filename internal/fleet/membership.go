package fleet

// Dynamic fleet membership. A Membership (wire.Membership) is a monotonic
// epoch number plus the shard list it describes; the epoch totally orders
// fleet configurations. The router mints new epochs through its
// POST /v1/fleet/members admin endpoint and broadcasts them; every shard
// also attaches its current epoch to its replication-list responses, so
// membership gossips over the same long-poll surface the model deltas use
// and any member the broadcast missed converges on its next pull.
//
// MemberView is the process-local holder of the current membership: it owns
// the placement ring, rebuilds it on adoption, and keeps the previous
// epoch's ring so frozen reads can fall back to the old replica set during
// a handoff window (safe because frozen responses are a pure function of
// (model seq, request bytes) — an old-placement replica at the same model
// sequence serves the same bytes).

import (
	"sort"
	"sync"

	"olgapro/internal/server/wire"
)

// MemberView holds a process's current fleet membership and the placement
// ring derived from it. All methods are safe for concurrent use.
type MemberView struct {
	vnodes int

	mu   sync.RWMutex
	cur  wire.Membership
	ring *Ring
	prev *Ring // previous epoch's ring; nil until the first adoption
}

// NewMemberView builds a view over the boot-time membership. The shard list
// is sorted (placement is order-insensitive, but a canonical order keeps
// every member's advertised list byte-identical); vnodes ≤ 0 uses the ring
// default.
func NewMemberView(m wire.Membership, vnodes int) (*MemberView, error) {
	shards := append([]string(nil), m.Shards...)
	sort.Strings(shards)
	ring, err := NewRing(shards, vnodes)
	if err != nil {
		return nil, err
	}
	return &MemberView{
		vnodes: vnodes,
		cur:    wire.Membership{Epoch: m.Epoch, Shards: shards},
		ring:   ring,
	}, nil
}

// Current returns the membership this view holds (shard list is a copy).
func (v *MemberView) Current() wire.Membership {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return wire.Membership{Epoch: v.cur.Epoch, Shards: append([]string(nil), v.cur.Shards...)}
}

// Epoch returns the current membership epoch.
func (v *MemberView) Epoch() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.cur.Epoch
}

// Ring returns the current placement ring.
func (v *MemberView) Ring() *Ring {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.ring
}

// Rings returns the current ring plus the previous epoch's ring (nil before
// the first membership change) — the fallback candidates for frozen reads
// during a handoff window.
func (v *MemberView) Rings() (cur, prev *Ring) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.ring, v.prev
}

// Adopt installs m when its epoch is strictly higher than the current one,
// rebuilding the ring and retaining the old ring as the handoff fallback.
// Equal or lower epochs are ignored (epochs are minted by one admin point,
// the router, so two distinct memberships never share an epoch). Returns
// whether the view changed; an invalid shard list is reported without
// changing the view.
func (v *MemberView) Adopt(m wire.Membership) (bool, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if m.Epoch <= v.cur.Epoch {
		return false, nil
	}
	shards := append([]string(nil), m.Shards...)
	sort.Strings(shards)
	ring, err := NewRing(shards, v.vnodes)
	if err != nil {
		return false, err
	}
	v.prev = v.ring
	v.ring = ring
	v.cur = wire.Membership{Epoch: m.Epoch, Shards: shards}
	return true, nil
}

// replicaSetEqual reports whether two replica sets hold the same shards in
// the same order (placement order matters: the first entry is the owner).
func replicaSetEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PlacementChanged reports, for each name, whether its replica set differs
// between the two rings — the exact set of names a membership change
// actually moves. Everything else keeps its placement and is never
// re-pulled.
func PlacementChanged(oldRing, newRing *Ring, names []string, replicas int) []string {
	var changed []string
	for _, name := range names {
		if !replicaSetEqual(oldRing.Replicas(name, replicas), newRing.Replicas(name, replicas)) {
			changed = append(changed, name)
		}
	}
	return changed
}
