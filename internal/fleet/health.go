package fleet

import (
	"sync"
	"time"
)

// defaultCooldown is how long a shard stays skipped after a transport
// failure before the router probes it with real traffic again.
const defaultCooldown = 2 * time.Second

// Health is the router's per-shard liveness ledger, fed by request
// outcomes: a transport failure marks the shard down, any success marks it
// up. Down shards are deprioritized (not excluded — with every candidate
// down the router still tries them) and re-eligible after a cooldown.
type Health struct {
	cooldown time.Duration
	now      func() time.Time // test seam

	mu   sync.Mutex
	down map[string]time.Time
}

// NewHealth builds a ledger; cooldown ≤ 0 uses the default.
func NewHealth(cooldown time.Duration) *Health {
	if cooldown <= 0 {
		cooldown = defaultCooldown
	}
	return &Health{cooldown: cooldown, now: time.Now, down: make(map[string]time.Time)}
}

// MarkDown records a transport failure against the shard.
func (h *Health) MarkDown(addr string) {
	h.mu.Lock()
	h.down[addr] = h.now()
	h.mu.Unlock()
}

// MarkUp records a successful exchange with the shard.
func (h *Health) MarkUp(addr string) {
	h.mu.Lock()
	delete(h.down, addr)
	h.mu.Unlock()
}

// Up reports whether the shard is currently considered live (never failed,
// or failed longer than the cooldown ago).
func (h *Health) Up(addr string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	t, bad := h.down[addr]
	return !bad || h.now().Sub(t) >= h.cooldown
}

// Order sorts candidates live-first, preserving relative order within each
// class — the router's retry order for frozen reads.
func (h *Health) Order(addrs []string) []string {
	live := make([]string, 0, len(addrs))
	var dead []string
	for _, a := range addrs {
		if h.Up(a) {
			live = append(live, a)
		} else {
			dead = append(dead, a)
		}
	}
	return append(live, dead...)
}
