package mc

import (
	"math"
	"math/rand"
	"testing"

	"olgapro/internal/dist"
	"olgapro/internal/ecdf"
	"olgapro/internal/udf"
)

func identity1D() udf.Func {
	return udf.FuncOf{D: 1, F: func(x []float64) float64 { return x[0] }}
}

func TestSampleSizeFormula(t *testing.T) {
	// Paper §2.2: discrepancy ε=0.02, δ=0.05 needs more than 18000 samples.
	m := SampleSize(0.02, 0.05, MetricDiscrepancy)
	if m <= 18000 {
		t.Fatalf("SampleSize(0.02, 0.05, D) = %d, want > 18000", m)
	}
	// KS metric needs a quarter of that.
	mks := SampleSize(0.02, 0.05, MetricKS)
	if mks != int(math.Ceil(math.Log(2/0.05)/(2*0.02*0.02))) {
		t.Fatalf("KS sample size = %d", mks)
	}
	if m < 4*mks-4 || m > 4*mks+4 {
		t.Fatalf("discrepancy size %d should be ≈ 4× KS size %d", m, mks)
	}
	// Monotone: tighter ε needs more samples.
	if SampleSize(0.01, 0.05, MetricKS) <= SampleSize(0.1, 0.05, MetricKS) {
		t.Fatal("sample size not monotone in ε")
	}
}

func TestHoeffdingRadius(t *testing.T) {
	if r := HoeffdingRadius(0, 0.05); r != 1 {
		t.Fatalf("radius at m=0 should be 1, got %g", r)
	}
	r100 := HoeffdingRadius(100, 0.05)
	r400 := HoeffdingRadius(400, 0.05)
	if math.Abs(r100/r400-2) > 1e-12 {
		t.Fatalf("radius should halve when m quadruples: %g vs %g", r100, r400)
	}
}

func TestMetricString(t *testing.T) {
	if MetricKS.String() != "KS" || MetricDiscrepancy.String() != "discrepancy" {
		t.Fatal("metric names wrong")
	}
}

// The ECDF of the identity UDF on a known input must satisfy the KS
// guarantee against the analytic CDF.
func TestEvaluateMeetsKSGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	input := dist.NewIndependent(dist.Normal{Mu: 5, Sigma: 0.5})
	const eps, delta = 0.05, 0.05
	failures := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		res, err := Evaluate(identity1D(), input, Config{Eps: eps, Delta: delta, Metric: MetricKS}, rng)
		if err != nil {
			t.Fatal(err)
		}
		ks := ecdf.KSAgainst(res.Dist, dist.Normal{Mu: 5, Sigma: 0.5}.CDF)
		if ks > eps {
			failures++
		}
	}
	// With δ=0.05 per trial, 20 trials should rarely see >3 failures.
	if failures > 3 {
		t.Fatalf("KS guarantee violated in %d/%d trials", failures, trials)
	}
}

func TestEvaluateDimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	input := dist.NewIndependent(dist.Normal{Mu: 0, Sigma: 1}, dist.Normal{Mu: 0, Sigma: 1})
	if _, err := Evaluate(identity1D(), input, Config{}, rng); err == nil {
		t.Fatal("dim mismatch should error")
	}
}

func TestEvaluateCountsUDFCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	counter := udf.NewCounter(identity1D(), 0, nil)
	input := dist.NewIndependent(dist.Normal{Mu: 0, Sigma: 1})
	cfg := Config{Eps: 0.1, Delta: 0.05, Metric: MetricKS}
	res, err := Evaluate(counter, input, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := SampleSize(0.1, 0.05, MetricKS)
	if res.Samples != want || res.UDFCalls != want || counter.Calls() != want {
		t.Fatalf("samples=%d calls=%d counter=%d, want %d", res.Samples, res.UDFCalls, counter.Calls(), want)
	}
	if res.Filtered {
		t.Fatal("unexpected filtering without predicate")
	}
}

func TestOnlineFilterDropsLowTEP(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Output ~ N(0, 1); predicate on [10, 11] has essentially zero mass.
	input := dist.NewIndependent(dist.Normal{Mu: 0, Sigma: 1})
	counter := udf.NewCounter(identity1D(), 0, nil)
	cfg := Config{
		Eps: 0.02, Delta: 0.05, Metric: MetricKS,
		Predicate: &Predicate{A: 10, B: 11, Theta: 0.1},
	}
	res, err := Evaluate(counter, input, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Filtered {
		t.Fatal("tuple with TEP≈0 not filtered")
	}
	full := SampleSize(cfg.Eps, cfg.Delta, cfg.Metric)
	if res.UDFCalls >= full/2 {
		t.Fatalf("filter saved too little: %d of %d calls", res.UDFCalls, full)
	}
	if res.Dist != nil {
		t.Fatal("filtered tuple should not return a distribution")
	}
}

func TestOnlineFilterKeepsHighTEP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	input := dist.NewIndependent(dist.Normal{Mu: 0, Sigma: 1})
	cfg := Config{
		Eps: 0.05, Delta: 0.05, Metric: MetricKS,
		Predicate: &Predicate{A: -1, B: 1, Theta: 0.1}, // TEP ≈ 0.68
	}
	res, err := Evaluate(identity1D(), input, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Filtered {
		t.Fatal("tuple with TEP≈0.68 was filtered")
	}
	if math.Abs(res.TEP-0.6827) > 0.03 {
		t.Fatalf("TEP = %g, want ≈ 0.68", res.TEP)
	}
	if res.Dist == nil {
		t.Fatal("missing distribution")
	}
}

// False negatives (dropping tuples that should pass) must be essentially
// zero; false positives (keeping tuples that should drop) are the cheap
// direction. Paper reports <0.5% false negatives (§6.3 Expt 6).
func TestFilterFalseNegativeRate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	falseNeg := 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		// TEP ≈ 0.32 (above θ=0.1): Pr[|N(0,1)| > 1].
		cfg := Config{
			Eps: 0.05, Delta: 0.05, Metric: MetricKS,
			Predicate: &Predicate{A: 1, B: 100, Theta: 0.1},
		}
		input := dist.NewIndependent(dist.Normal{Mu: 0, Sigma: 1})
		res, err := Evaluate(identity1D(), input, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Filtered {
			falseNeg++
		}
	}
	if falseNeg > 0 {
		t.Fatalf("false negatives: %d/%d", falseNeg, trials)
	}
}

func TestGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	input := dist.NewIndependent(dist.Uniform{A: 0, B: 1})
	g := GroundTruth(identity1D(), input, 50000, rng)
	if g.Len() != 50000 {
		t.Fatalf("Len = %d", g.Len())
	}
	if ks := ecdf.KSAgainst(g, dist.Uniform{A: 0, B: 1}.CDF); ks > 0.02 {
		t.Fatalf("ground truth KS = %g", ks)
	}
}

func TestDefaultsApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	input := dist.NewIndependent(dist.Normal{Mu: 0, Sigma: 1})
	res, err := Evaluate(identity1D(), input, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := SampleSize(0.1, 0.05, MetricKS) // zero Metric is MetricKS
	if res.Samples != want {
		t.Fatalf("default samples = %d, want %d", res.Samples, want)
	}
}

func BenchmarkEvaluateEps01(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	input := dist.NewIndependent(dist.Normal{Mu: 5, Sigma: 0.5}, dist.Normal{Mu: 5, Sigma: 0.5})
	f := udf.Standard(udf.F4, 1)
	cfg := Config{Eps: 0.1, Delta: 0.05, Metric: MetricDiscrepancy}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(f, input, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}
