// Package mc implements the paper's Monte-Carlo baseline (§2.2): sample the
// uncertain input, evaluate the UDF on every sample, and return the
// empirical CDF of the outputs (Algorithm 1), plus Hoeffding-based online
// filtering for selection predicates (Remark 2.1).
package mc

import (
	"fmt"
	"math"
	"math/rand"

	"olgapro/internal/dist"
	"olgapro/internal/ecdf"
	"olgapro/internal/udf"
)

// Metric selects which distance the (ε,δ) guarantee is stated in.
type Metric int

const (
	// MetricKS targets the Kolmogorov–Smirnov distance; m = ln(2/δ)/(2ε²)
	// samples make the ECDF an (ε,δ)-approximation (DKW inequality, §2.2).
	MetricKS Metric = iota
	// MetricDiscrepancy targets the two-sided discrepancy measure; since
	// D ≤ 2·KS, the KS bound is run at ε/2.
	MetricDiscrepancy
)

// String names the metric.
func (m Metric) String() string {
	if m == MetricDiscrepancy {
		return "discrepancy"
	}
	return "KS"
}

// SampleSize returns the number of Monte-Carlo samples required for an
// (ε,δ)-approximation under the given metric: ceil(ln(2/δ)/(2ε²)), with ε
// halved for the discrepancy metric. For the paper's example ε=0.02, δ=0.05
// under discrepancy this exceeds 18000.
func SampleSize(eps, delta float64, metric Metric) int {
	if metric == MetricDiscrepancy {
		eps /= 2
	}
	return int(math.Ceil(math.Log(2/delta) / (2 * eps * eps)))
}

// HoeffdingRadius returns the half-width ε̃ of the two-sided (1−δ)
// confidence interval for a Bernoulli mean after m samples (Remark 2.1):
// ε̃ = sqrt(ln(2/δ)/(2m)).
func HoeffdingRadius(m int, delta float64) float64 {
	if m <= 0 {
		return 1
	}
	return math.Sqrt(math.Log(2/delta) / (2 * float64(m)))
}

// Predicate is a selection predicate f(X) ∈ [A, B] on the UDF output with a
// tuple-existence-probability threshold: outputs whose probability of
// falling in [A, B] is confidently below Theta are filtered (§2.2-B).
type Predicate struct {
	A, B  float64
	Theta float64
}

// Config controls Monte-Carlo evaluation. The zero value is usable: it
// defaults to (ε=0.1, δ=0.05) under the discrepancy metric.
type Config struct {
	Eps    float64 // accuracy target ε (default 0.1)
	Delta  float64 // confidence parameter δ (default 0.05)
	Metric Metric  // distance the guarantee is stated in

	// Predicate enables online filtering when non-nil.
	Predicate *Predicate
	// FilterCheckEvery is how many samples to draw between filter checks
	// (default 64).
	FilterCheckEvery int
}

func (c Config) normalize() Config {
	if c.Eps <= 0 {
		c.Eps = 0.1
	}
	if c.Delta <= 0 {
		c.Delta = 0.05
	}
	if c.FilterCheckEvery <= 0 {
		c.FilterCheckEvery = 64
	}
	return c
}

// Result is the outcome of evaluating one uncertain tuple.
type Result struct {
	// Dist is the empirical output distribution Y′ (nil if Filtered).
	Dist *ecdf.ECDF
	// Samples is the number of Monte-Carlo samples drawn.
	Samples int
	// UDFCalls is the number of UDF evaluations performed (= Samples here;
	// the GP engine does better).
	UDFCalls int
	// Filtered reports that the tuple was dropped by the predicate filter.
	Filtered bool
	// TEP is the estimated tuple existence probability Pr[f(X) ∈ [A,B]]
	// when a predicate was supplied.
	TEP float64
}

// Evaluate runs Algorithm 1 on one uncertain input: it draws the required
// number of samples from input, evaluates f on each, and returns the
// empirical output CDF. With a predicate configured it checks the Hoeffding
// interval every FilterCheckEvery samples and stops early once the tuple is
// confidently below the TEP threshold.
func Evaluate(f udf.Func, input dist.Vector, cfg Config, rng *rand.Rand) (Result, error) {
	if f.Dim() != input.Dim() {
		return Result{}, fmt.Errorf("mc: UDF dim %d ≠ input dim %d", f.Dim(), input.Dim())
	}
	cfg = cfg.normalize()
	m := SampleSize(cfg.Eps, cfg.Delta, cfg.Metric)
	outs := make([]float64, 0, m)
	var hits int
	buf := make([]float64, input.Dim())
	res := Result{}
	for i := 0; i < m; i++ {
		buf = input.SampleVec(rng, buf)
		y := f.Eval(buf)
		outs = append(outs, y)
		if cfg.Predicate != nil {
			if y >= cfg.Predicate.A && y <= cfg.Predicate.B {
				hits++
			}
			if (i+1)%cfg.FilterCheckEvery == 0 {
				rho := float64(hits) / float64(i+1)
				if rho+HoeffdingRadius(i+1, cfg.Delta) < cfg.Predicate.Theta {
					res.Filtered = true
					res.Samples = i + 1
					res.UDFCalls = i + 1
					res.TEP = rho
					return res, nil
				}
			}
		}
	}
	res.Dist = ecdf.New(outs)
	res.Samples = m
	res.UDFCalls = m
	if cfg.Predicate != nil {
		res.TEP = float64(hits) / float64(m)
		if res.TEP < cfg.Predicate.Theta {
			// Not confidently filterable early, but below threshold at full
			// precision: report it filtered with the final estimate.
			res.Filtered = true
			res.Dist = nil
		}
	}
	return res, nil
}

// GroundTruth evaluates f on samples input draws with no (ε,δ) accounting;
// it is used by tests and the harness to build high-resolution reference
// distributions.
func GroundTruth(f udf.Func, input dist.Vector, samples int, rng *rand.Rand) *ecdf.ECDF {
	outs := make([]float64, samples)
	buf := make([]float64, input.Dim())
	for i := range outs {
		buf = input.SampleVec(rng, buf)
		outs[i] = f.Eval(buf)
	}
	return ecdf.New(outs)
}
