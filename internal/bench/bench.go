// Package bench regenerates every table and figure of the paper's
// evaluation (§6). Each Fig* function reproduces one figure as a Table of
// the same series the paper plots; cmd/experiments runs them all, and
// bench_test.go at the module root exposes one testing.B benchmark per
// figure.
//
// Timing model: following DESIGN.md, UDF invocations are charged to a
// virtual clock at their nominal cost T while the algorithms' own
// computation is measured in wall time, so the reported totals reproduce
// the paper's cost model (algorithm time + #UDF-calls × T) without needing
// hours of real sleeping for T = 1 s sweeps.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/ecdf"
	"olgapro/internal/gp"
	"olgapro/internal/kernel"
	"olgapro/internal/mc"
	"olgapro/internal/udf"
	"olgapro/internal/vclock"
)

// Scale controls how much work each experiment does. The paper averages
// over 500 inputs; Default uses fewer so the full suite finishes in minutes,
// and Quick trims further for smoke tests and testing.B benches.
type Scale struct {
	Seed   int64
	Inputs int // uncertain inputs per configuration
	Truth  int // ground-truth samples per input when actual error is needed
	// Workers sizes the parallel-executor pool in the throughput
	// experiment (0 = GOMAXPROCS); cmd/experiments wires -workers here.
	Workers int
}

// DefaultScale is used by cmd/experiments.
func DefaultScale() Scale { return Scale{Seed: 1, Inputs: 24, Truth: 10000} }

// QuickScale is used by benchmarks and smoke tests.
func QuickScale() Scale { return Scale{Seed: 1, Inputs: 8, Truth: 4000} }

// Table is one reproduced figure or table.
type Table struct {
	ID      string // e.g. "Fig 5(a)"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes an aligned text rendering.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// fdur renders a duration in milliseconds with sensible precision.
func fdur(d time.Duration) string {
	ms := float64(d) / float64(time.Millisecond)
	switch {
	case ms >= 1000:
		return fmt.Sprintf("%.0f", ms)
	case ms >= 10:
		return fmt.Sprintf("%.1f", ms)
	default:
		return fmt.Sprintf("%.3f", ms)
	}
}

func ffloat(v float64) string { return fmt.Sprintf("%.4f", v) }

// inputStream draws n input distributions with means inside the domain,
// matching §6.1-B (μ_I from the function support, σ_I = 0.5).
func inputStream(rng *rand.Rand, n, d int, sigma float64) []dist.Vector {
	out := make([]dist.Vector, n)
	for i := range out {
		mu := make([]float64, d)
		for j := range mu {
			// Keep means one σ inside the domain so most samples stay in.
			mu[j] = udf.DomainLo + 1 + rng.Float64()*(udf.DomainHi-udf.DomainLo-2)
		}
		v, err := dist.IsoGaussianVec(mu, sigma)
		if err != nil {
			panic(err)
		}
		out[i] = v
	}
	return out
}

// gpRun aggregates a GP engine run over an input stream.
type gpRun struct {
	PerInput   time.Duration // (measured + charged) / inputs
	TotalTime  time.Duration
	AvgBound   float64
	AvgErr     float64 // vs ground truth; NaN-free: 0 when truth not requested
	Violations int     // inputs whose actual error exceeded the bound
	Checked    int
	UDFCalls   int
	Points     int
	Retrains   int
	Filtered   int
	AvgLocal   float64
	Outputs    []*core.Output
}

// runGP streams inputs through an OLGAPRO evaluator, charging UDF calls at
// cost T, optionally comparing each output to a fresh ground truth.
func runGP(f udf.Func, cfg core.Config, inputs []dist.Vector, T time.Duration,
	truthSamples int, rng *rand.Rand) (gpRun, error) {
	var clk vclock.Clock
	counted := udf.NewCounter(f, T, &clk)
	ev, err := core.NewEvaluator(counted, cfg)
	if err != nil {
		return gpRun{}, err
	}
	res := gpRun{}
	var boundSum, errSum, localSum float64
	for _, in := range inputs {
		var out *core.Output
		var evalErr error
		clk.Run(func() { out, evalErr = ev.Eval(in, rng) })
		if evalErr != nil {
			return gpRun{}, evalErr
		}
		res.Outputs = append(res.Outputs, out)
		localSum += float64(out.LocalPoints)
		if out.Filtered {
			res.Filtered++
			continue
		}
		boundSum += out.Bound
		if truthSamples > 0 {
			truth := mc.GroundTruth(f, in, truthSamples, rng)
			actual := ecdf.DiscrepancyLambda(out.Dist, truth, out.Lambda)
			errSum += actual
			res.Checked++
			if actual > out.Bound {
				res.Violations++
			}
		}
	}
	n := len(inputs)
	kept := n - res.Filtered
	res.TotalTime = clk.Total()
	res.PerInput = res.TotalTime / time.Duration(n)
	if kept > 0 {
		res.AvgBound = boundSum / float64(kept)
	}
	if res.Checked > 0 {
		res.AvgErr = errSum / float64(res.Checked)
	}
	res.UDFCalls = counted.Calls()
	st := ev.Stats()
	res.Points = st.TrainingPoints
	res.Retrains = st.Retrainings
	res.AvgLocal = localSum / float64(n)
	return res, nil
}

// mcRun aggregates an MC engine run.
type mcRun struct {
	PerInput  time.Duration
	TotalTime time.Duration
	UDFCalls  int
	Filtered  int
}

// runMC streams inputs through the Monte-Carlo engine with UDF calls
// charged at cost T.
func runMC(f udf.Func, cfg mc.Config, inputs []dist.Vector, T time.Duration,
	rng *rand.Rand) (mcRun, error) {
	var clk vclock.Clock
	counted := udf.NewCounter(f, T, &clk)
	res := mcRun{}
	for _, in := range inputs {
		var r mc.Result
		var evalErr error
		clk.Run(func() { r, evalErr = mc.Evaluate(counted, in, cfg, rng) })
		if evalErr != nil {
			return mcRun{}, evalErr
		}
		if r.Filtered {
			res.Filtered++
		}
	}
	res.TotalTime = clk.Total()
	res.PerInput = res.TotalTime / time.Duration(len(inputs))
	res.UDFCalls = counted.Calls()
	return res, nil
}

// defaultKernel returns the GP prior used across the synthetic experiments:
// amplitude matched to the mixture functions (≈[0,1.5]) and a lengthscale
// that online retraining can adapt from.
func defaultKernel() kernel.Kernel { return kernel.NewSqExp(0.5, 1.5) }

// pretrain seeds an evaluator-less GP config with n uniform training points
// by constructing the evaluator and calling AddTrainingAt.
func pretrain(ev *core.Evaluator, n, d int, rng *rand.Rand) error {
	for i := 0; i < n; i++ {
		x := make([]float64, d)
		for j := range x {
			x[j] = udf.DomainLo + rng.Float64()*(udf.DomainHi-udf.DomainLo)
		}
		if err := ev.AddTrainingAt(x); err != nil {
			// Duplicates are harmless during seeding.
			continue
		}
	}
	return nil
}

// msOne is the paper's default UDF evaluation time T = 1 ms (§6.1).
const msOne = time.Millisecond

// runGPSeeded is runGP with nTrain uniform training points added (and the
// hyperparameters trained once) before the input stream runs. Seeding cost
// is charged to the clock like any other UDF call.
func runGPSeeded(f udf.Func, cfg core.Config, nTrain int, inputs []dist.Vector,
	T time.Duration, truthSamples int, rng *rand.Rand) (gpRun, error) {
	var clk vclock.Clock
	counted := udf.NewCounter(f, T, &clk)
	ev, err := core.NewEvaluator(counted, cfg)
	if err != nil {
		return gpRun{}, err
	}
	d := f.Dim()
	if err := pretrain(ev, nTrain, d, rng); err != nil {
		return gpRun{}, err
	}
	if _, err := ev.GP().Train(gpTrainCfg()); err != nil {
		return gpRun{}, err
	}
	res := gpRun{}
	var boundSum, errSum, localSum float64
	for _, in := range inputs {
		var out *core.Output
		var evalErr error
		clk.Run(func() { out, evalErr = ev.Eval(in, rng) })
		if evalErr != nil {
			return gpRun{}, evalErr
		}
		res.Outputs = append(res.Outputs, out)
		localSum += float64(out.LocalPoints)
		if out.Filtered {
			res.Filtered++
			continue
		}
		boundSum += out.Bound
		if truthSamples > 0 {
			truth := mc.GroundTruth(f, in, truthSamples, rng)
			actual := ecdf.DiscrepancyLambda(out.Dist, truth, out.Lambda)
			errSum += actual
			res.Checked++
			if actual > out.Bound {
				res.Violations++
			}
		}
	}
	n := len(inputs)
	kept := n - res.Filtered
	res.TotalTime = clk.Total()
	res.PerInput = res.TotalTime / time.Duration(n)
	if kept > 0 {
		res.AvgBound = boundSum / float64(kept)
	}
	if res.Checked > 0 {
		res.AvgErr = errSum / float64(res.Checked)
	}
	res.UDFCalls = counted.Calls()
	st := ev.Stats()
	res.Points = st.TrainingPoints
	res.Retrains = st.Retrainings
	res.AvgLocal = localSum / float64(n)
	return res, nil
}

func gpTrainCfg() gp.TrainConfig { return gp.TrainConfig{MaxIter: 40} }

// kernelForRetraining is a deliberately mis-specified prior (too-long
// lengthscale for Funct4) so the retraining experiment has something to fix.
func kernelForRetraining() kernel.Kernel { return kernel.NewSqExp(0.3, 4) }
