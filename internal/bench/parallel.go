package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/exec"
	"olgapro/internal/query"
	"olgapro/internal/server/wire"
	"olgapro/internal/udf"
)

// throughputUDF is the smooth 2-D workload function of the throughput
// experiment, cheap enough that measured time is executor + inference.
func throughputUDF() udf.Func {
	return udf.FuncOf{D: 2, F: func(x []float64) float64 {
		return x[0]*x[0] + 0.5*x[1] + 0.3*x[0]*x[1]
	}}
}

// ThroughputParallel measures end-to-end tuples/sec of the PR 3 parallel
// executor on a Q1-style uncertain table at 1, 2, and Scale.Workers
// workers, and verifies live that every worker count returns bit-identical
// results (the executor's determinism guarantee). The workload is the
// steady state the paper's headline targets: a warmed, frozen emulator
// whose per-tuple cost is GP inference only — CPU-bound work, so speedup
// is capped by GOMAXPROCS (reported alongside).
func ThroughputParallel(sc Scale) (*Table, error) {
	workers := sc.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tuples := max(64, sc.Inputs*8)
	rng := rand.New(rand.NewSource(sc.Seed))

	ev, err := core.NewEvaluator(throughputUDF(), core.Config{
		Kernel:         defaultKernel(),
		SampleOverride: 400,
	})
	if err != nil {
		return nil, err
	}
	in, err := dist.IsoGaussianVec([]float64{1.5, 1.5}, 0.3)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 16; i++ {
		if _, err := ev.Eval(in, rng); err != nil {
			return nil, err
		}
	}

	rel := make([]*query.Tuple, tuples)
	for i := range rel {
		// Canonical uncertain-input tuples via the shared wire codec (same
		// attribute names and construction as the network service).
		rel[i] = wire.UncertainTuple(int64(i),
			dist.Normal{Mu: 1 + rng.Float64(), Sigma: 0.3},
			dist.Normal{Mu: 1 + rng.Float64(), Sigma: 0.3},
		)
	}

	counts := []int{1, 2}
	if workers > 2 {
		counts = append(counts, workers)
	}
	tab := &Table{
		ID:    "PR 3",
		Title: "Parallel executor throughput (frozen emulator, Q1-style table)",
		Columns: []string{"workers", "tuples", "elapsed", "tuples/sec",
			"speedup", "identical"},
		Notes: []string{
			fmt.Sprintf("GOMAXPROCS=%d; CPU-bound inference cannot speed up past it", runtime.GOMAXPROCS(0)),
			"identical = output bit-identical to the 1-worker run (fixed seed)",
		},
	}

	var base time.Duration
	var ref []*query.Tuple
	for _, w := range counts {
		pool, err := exec.NewEvaluatorPool(ev, w)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		out, err := query.Drain(pool.Apply(query.NewScan(rel),
			[]string{"x0", "x1"}, "y", exec.Options{Seed: sc.Seed}))
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		identical := "ref"
		if w == 1 {
			base = elapsed
			ref = out
		} else {
			identical = fmt.Sprint(sameStreams(ref, out))
		}
		tab.AddRow(
			fmt.Sprint(w),
			fmt.Sprint(len(out)),
			fdur(elapsed),
			fmt.Sprintf("%.0f", float64(len(out))/elapsed.Seconds()),
			fmt.Sprintf("%.2fx", base.Seconds()/elapsed.Seconds()),
			identical,
		)
	}
	return tab, nil
}

// sameStreams reports whether two result streams carry bit-identical output
// distributions.
func sameStreams(a, b []*query.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		av, bv := a[i].MustGet("y"), b[i].MustGet("y")
		if av.TEP != bv.TEP {
			return false
		}
		as, bs := av.R.Values(), bv.R.Values()
		if len(as) != len(bs) {
			return false
		}
		for j := range as {
			if as[j] != bs[j] {
				return false
			}
		}
	}
	return true
}
