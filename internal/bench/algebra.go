package bench

import (
	"fmt"
	"math/rand"
	"time"

	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/exec"
	"olgapro/internal/query"
)

// QueryAlgebra exercises the PR 6 bounded relational operators end to end:
// a Q1-style uncertain table is evaluated by a frozen emulator pool with
// envelopes retained, then ranked (top-k), windowed, and grouped, each
// answer carrying [certain, possible] intervals. The table reports per-stage
// latency plus the answer-set split — how many answers are certain versus
// merely possible — which is the quantity the interval semantics adds over
// point answers. A serial per-tuple-seeded plan re-runs the top-k stage to
// verify the bounded answers are bit-identical to the pooled run.
func QueryAlgebra(sc Scale) (*Table, error) {
	tuples := max(48, sc.Inputs*6)
	rng := rand.New(rand.NewSource(sc.Seed))

	ev, err := core.NewEvaluator(throughputUDF(), core.Config{
		Kernel:         defaultKernel(),
		SampleOverride: 400,
	})
	if err != nil {
		return nil, err
	}
	warm, err := dist.IsoGaussianVec([]float64{1.5, 1.5}, 0.3)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 16; i++ {
		if _, err := ev.Eval(warm, rng); err != nil {
			return nil, err
		}
	}

	rel := make([]*query.Tuple, tuples)
	for i := range rel {
		rel[i] = query.MustTuple(
			[]string{"id", "g", "x0", "x1"},
			[]query.Value{
				query.Int(int64(i)),
				query.Str(fmt.Sprintf("g%d", i%3)),
				query.Uncertain(dist.Normal{Mu: 1 + rng.Float64(), Sigma: 0.3}),
				query.Uncertain(dist.Normal{Mu: 1 + rng.Float64(), Sigma: 0.3}),
			},
		)
	}
	inputs := []string{"x0", "x1"}
	k := max(4, tuples/8)

	pool, err := exec.NewEvaluatorPool(ev, 2)
	if err != nil {
		return nil, err
	}
	apply := func() *query.Plan {
		pe := pool.Apply(query.NewScan(rel), inputs, "y",
			exec.Options{Seed: sc.Seed, KeepEnvelope: true})
		return query.FromIterator(pe)
	}

	tab := &Table{
		ID:    "PR 6",
		Title: "Bounded relational algebra over UDF outputs (frozen emulator, envelopes kept)",
		Columns: []string{"stage", "answers", "certain", "possible-only",
			"mean width", "elapsed"},
		Notes: []string{
			fmt.Sprintf("table: %d tuples, top-k with k=%d, window 8/4, 3 groups", tuples, k),
			"certain/possible split per the [certain, possible] interval semantics",
			"top-k re-checked bit-identical against a serial per-tuple-seeded plan",
		},
	}

	type stage struct {
		name   string
		finish func(*query.Plan) *query.Plan
		attrs  []string // bounded attributes tallied in the table
	}
	stages := []stage{
		{"top-k", func(p *query.Plan) *query.Plan {
			return p.TopK(query.RankSpec{By: "y", K: k, Desc: true})
		}, []string{"rank"}},
		{"window 8/4", func(p *query.Plan) *query.Plan {
			return p.Window(query.WindowSpec{Size: 8, Step: 4, Aggs: []query.Agg{
				query.Count(), query.Avg("y"), query.Max("y"),
			}})
		}, []string{"avg_y", "max_y"}},
		{"group-by g", func(p *query.Plan) *query.Plan {
			return p.GroupBy(query.GroupBySpec{Keys: []string{"g"}, Aggs: []query.Agg{
				query.Count(), query.Sum("y"), query.Min("y"),
			}})
		}, []string{"sum_y", "min_y"}},
	}

	var topkOut []*query.Tuple
	for _, st := range stages {
		start := time.Now()
		out, err := st.finish(apply()).Run()
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if st.name == "top-k" {
			topkOut = out
		}
		certain, total := 0, 0
		var width float64
		for _, t := range out {
			for _, a := range st.attrs {
				b := t.MustGet(a).B
				total++
				width += b.Width()
				if b.Certain {
					certain++
				}
			}
		}
		tab.AddRow(
			st.name,
			fmt.Sprint(len(out)),
			fmt.Sprint(certain),
			fmt.Sprint(total-certain),
			fmt.Sprintf("%.3g", width/float64(max(total, 1))),
			fdur(elapsed),
		)
	}

	// Determinism cross-check: the serial plan over a frozen clone must
	// reproduce the pooled top-k bit for bit.
	clone, err := ev.CloneFrozen()
	if err != nil {
		return nil, err
	}
	serial, err := query.From(rel).
		Apply(query.NewEvaluatorEngine(clone), query.ApplySpec{
			Inputs: inputs, As: "y", Seed: sc.Seed, KeepEnvelope: true,
		}).
		TopK(query.RankSpec{By: "y", K: k, Desc: true}).
		Run()
	if err != nil {
		return nil, err
	}
	if !sameRanking(topkOut, serial) {
		return nil, fmt.Errorf("bench: serial plan diverged from pooled top-k")
	}
	return tab, nil
}

// sameRanking reports whether two top-k answer relations agree exactly on
// membership, order, and rank intervals.
func sameRanking(a, b []*query.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].MustGet("id").I != b[i].MustGet("id").I ||
			a[i].MustGet("rank").B != b[i].MustGet("rank").B {
			return false
		}
	}
	return true
}
