package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// tinyScale keeps the smoke tests fast.
func tinyScale() Scale { return Scale{Seed: 1, Inputs: 3, Truth: 2000} }

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "Fig X",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Fig X", "demo", "a note", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFdur(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{1500 * time.Millisecond, "1500"},
		{25 * time.Millisecond, "25.0"},
		{1500 * time.Microsecond, "1.500"},
	}
	for _, c := range cases {
		if got := fdur(c.d); got != c.want {
			t.Errorf("fdur(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig5a"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestExperimentsHaveUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		if e.Run == nil || e.Figures == "" {
			t.Fatalf("experiment %q incomplete", e.Name)
		}
	}
	if len(seen) < 13 {
		t.Fatalf("only %d experiments registered", len(seen))
	}
}

// Smoke: every experiment runs at tiny scale and produces non-empty tables.
// The full-scale shape checks live in EXPERIMENTS.md / cmd/experiments.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke suite skipped in -short mode")
	}
	sc := tinyScale()
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tables, err := e.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tbl := range tables {
				if len(tbl.Rows) == 0 {
					t.Fatalf("table %s has no rows", tbl.ID)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Columns) {
						t.Fatalf("table %s: row width %d ≠ %d cols", tbl.ID, len(row), len(tbl.Columns))
					}
				}
			}
		})
	}
}

// Shape check on the cheapest discriminative experiment: Fig 5(a) must show
// F4 harder to fit than F1 at small n.
func TestFig5aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks skipped in -short mode")
	}
	tbl, err := Fig5a(Scale{Seed: 1, Inputs: 2, Truth: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 is n=25: F1 error (col 1) should be well below F4 error (col 4).
	f1, err1 := strconv.ParseFloat(tbl.Rows[0][1], 64)
	f4, err2 := strconv.ParseFloat(tbl.Rows[0][4], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("unparsable cells: %v %v", tbl.Rows[0][1], tbl.Rows[0][4])
	}
	if f1 >= f4 {
		t.Fatalf("F1 error %g not below F4 error %g at n=25", f1, f4)
	}
}
