package bench

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Experiment is a named, runnable reproduction of one or more paper
// figures/tables.
type Experiment struct {
	Name    string // short id, e.g. "fig5a"
	Figures string // which paper artifacts it regenerates
	Run     func(Scale) ([]*Table, error)
}

// one wraps a single-table experiment function.
func one(f func(Scale) (*Table, error)) func(Scale) ([]*Table, error) {
	return func(sc Scale) ([]*Table, error) {
		t, err := f(sc)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// two wraps a two-table experiment function.
func two(f func(Scale) (*Table, *Table, error)) func(Scale) ([]*Table, error) {
	return func(sc Scale) ([]*Table, error) {
		a, b, err := f(sc)
		if err != nil {
			return nil, err
		}
		return []*Table{a, b}, nil
	}
}

// Experiments returns the full registry in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{Name: "fig5a", Figures: "Fig 5(a)", Run: one(Fig5a)},
		{Name: "fig5b", Figures: "Fig 5(b)", Run: one(Fig5b)},
		{Name: "profile3", Figures: "Profile 3 (§6.2)", Run: one(TableP3)},
		{Name: "fig5cd", Figures: "Fig 5(c), 5(d)", Run: two(Fig5cd)},
		{Name: "fig5e", Figures: "Fig 5(e)", Run: one(Fig5e)},
		{Name: "fig5fg", Figures: "Fig 5(f), 5(g)", Run: two(Fig5fg)},
		{Name: "fig5h", Figures: "Fig 5(h)", Run: one(Fig5h)},
		{Name: "fig5i", Figures: "Fig 5(i)", Run: one(Fig5i)},
		{Name: "fig5jk", Figures: "Fig 5(j), 5(k)", Run: two(Fig5jk)},
		{Name: "fig5l", Figures: "Fig 5(l)", Run: one(Fig5l)},
		{Name: "table64", Figures: "§6.4 function table", Run: one(TableCaseStudy)},
		{Name: "ablation1", Figures: "design ablation: incremental updates", Run: one(AblationIncremental)},
		{Name: "ablation2", Figures: "design ablation: sub-box γ refinement", Run: one(AblationSubBoxes)},
		{Name: "ablation3", Figures: "design ablation: guarded filtering", Run: one(AblationFilterVerify)},
		{Name: "throughput", Figures: "parallel executor throughput (PR 3)", Run: one(ThroughputParallel)},
		{Name: "algebra", Figures: "bounded relational algebra (PR 6)", Run: one(QueryAlgebra)},
		{Name: "fig6a", Figures: "Fig 6(a)", Run: one(Fig6a)},
		{Name: "fig6bcd", Figures: "Fig 6(b), 6(c), 6(d)", Run: Fig6bcd},
	}
}

// Lookup returns the experiment with the given name.
func Lookup(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	var names []string
	for _, e := range Experiments() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", name, names)
}

// RunAll executes every experiment, rendering tables to w as they finish.
func RunAll(w io.Writer, sc Scale) error {
	for _, e := range Experiments() {
		start := time.Now()
		tables, err := e.Run(sc)
		if err != nil {
			return fmt.Errorf("bench: %s: %w", e.Name, err)
		}
		for _, t := range tables {
			t.Render(w)
		}
		fmt.Fprintf(w, "-- %s (%s) completed in %s --\n\n", e.Name, e.Figures, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
