package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/gp"
	"olgapro/internal/kernel"
	"olgapro/internal/mc"
	"olgapro/internal/rtree"
	"olgapro/internal/udf"
)

// Ablations for the design choices DESIGN.md calls out. These go beyond the
// paper's figures: each isolates one mechanism of OLGAPRO and measures what
// it buys.

// AblationIncremental quantifies the O(n²) bordered Cholesky update of
// online tuning (§5.2) against refactorizing from scratch at O(n³) — the
// cost of adding one training point at various model sizes.
func AblationIncremental(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "Ablation A1",
		Title:   "Incremental add (O(n²) bordered update) vs. full refit (O(n³))",
		Columns: []string{"n", "incremental add", "full refit", "speedup"},
		Notes: []string{
			"design: §5.2 requires incremental updates for online tuning to be affordable",
		},
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	k := kernel.NewSqExp(1, 1.5)
	for _, n := range []int{50, 100, 200, 400} {
		xs := make([][]float64, n+1)
		ys := make([]float64, n+1)
		for i := range xs {
			xs[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
			ys[i] = rng.NormFloat64()
		}
		base := gp.New(k.Clone(), 1e-8)
		if err := base.AddBatch(xs[:n], ys[:n]); err != nil {
			return nil, err
		}
		reps := maxInt(2000/n, 3)
		// Incremental: time Add of the (n+1)-th point on a fresh copy.
		var incTotal time.Duration
		for r := 0; r < reps; r++ {
			g := gp.New(k.Clone(), 1e-8)
			if err := g.AddBatch(xs[:n], ys[:n]); err != nil {
				return nil, err
			}
			start := time.Now()
			if err := g.Add(xs[n], ys[n]); err != nil {
				return nil, err
			}
			incTotal += time.Since(start)
		}
		// Refit: factorize all n+1 points from scratch.
		var refitTotal time.Duration
		for r := 0; r < reps; r++ {
			g := gp.New(k.Clone(), 1e-8)
			if err := g.AddBatch(xs[:n], ys[:n]); err != nil {
				return nil, err
			}
			start := time.Now()
			g2 := gp.New(k.Clone(), 1e-8)
			if err := g2.AddBatch(xs[:n+1], ys[:n+1]); err != nil {
				return nil, err
			}
			refitTotal += time.Since(start)
		}
		inc := incTotal / time.Duration(reps)
		refit := refitTotal / time.Duration(reps)
		t.AddRow(fmt.Sprintf("%d", n), inc.String(), refit.String(),
			fmt.Sprintf("%.1fx", float64(refit)/float64(inc)))
	}
	return t, nil
}

// AblationSubBoxes measures the γ-bound tightening from splitting the
// sample bounding box into sub-boxes (the refinement §5.1 mentions): the
// single-box bound over the same selected subset is looser, which forces
// local inference to select more points.
func AblationSubBoxes(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "Ablation A2",
		Title:   "Local-inference γ bound: single box vs. sub-box refinement",
		Columns: []string{"input σ", "γ single-box", "γ sub-boxes", "tightening"},
		Notes: []string{
			"design: §5.1 'divide the sample bounding box into smaller boxes ... tighter'",
		},
	}
	f := udf.Standard(udf.F4, sc.Seed)
	rng := rand.New(rand.NewSource(sc.Seed))
	ev, err := core.NewEvaluator(f, core.Config{Kernel: defaultKernel()})
	if err != nil {
		return nil, err
	}
	if err := pretrain(ev, 150, 2, rng); err != nil {
		return nil, err
	}
	if _, err := ev.GP().Train(gpTrainCfg()); err != nil {
		return nil, err
	}
	for _, sigma := range []float64{0.25, 0.5, 1.0} {
		in := inputStream(rng, 1, 2, sigma)[0]
		samples := make([][]float64, 400)
		for i := range samples {
			samples[i] = in.SampleVec(rng, nil)
		}
		// A mid-size subset: points within a fixed radius of the box.
		box := rtree.BoundingBox(samples)
		ids := ev.TreeIDsNear(box, 2.0)
		selected := make(map[int]bool, len(ids))
		for _, id := range ids {
			selected[id] = true
		}
		single := ev.GammaBoundForBoxes(selected, []rtree.Rect{box})
		multi := ev.GammaBoundForBoxes(selected, core.SubBoxes(samples))
		ratio := 1.0
		if multi > 0 {
			ratio = single / multi
		}
		t.AddRow(fmt.Sprintf("%.2f", sigma), fmt.Sprintf("%.5f", single),
			fmt.Sprintf("%.5f", multi), fmt.Sprintf("%.2fx", ratio))
	}
	return t, nil
}

// AblationFilterVerify compares guarded filtering (one spot-check UDF call
// before dropping a tuple — this implementation's extension) against the
// paper's unguarded §5.5 filter, on a stream whose interesting region the
// model has not explored: the unguarded filter mis-drops alarm tuples.
func AblationFilterVerify(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "Ablation A3",
		Title:   "Online filtering: guarded (spot-check) vs. unguarded (§5.5 as published)",
		Columns: []string{"variant", "dropped", "false negatives", "UDF calls", "ms/input"},
		Notes: []string{
			"design: one UDF call per drop eliminates false negatives from a wrong emulator",
		},
	}
	// A detection-style function: narrow bump on a flat background.
	f := udf.FuncOf{D: 2, F: func(x []float64) float64 {
		d2 := (x[0]-7)*(x[0]-7) + (x[1]-6.5)*(x[1]-6.5)
		return 2.2 * math.Exp(-d2/1.5)
	}}
	pred := &mc.Predicate{A: 1.2, B: 100, Theta: 0.1}
	n := maxInt(sc.Inputs*3, 30)
	// Adversarial stream: the model first converges on background-only
	// inputs (the bump at (7, 6.5) stays unexplored), then mixed inputs
	// arrive — the situation in which an unguarded filter mis-drops.
	mkInputs := func() []dist.Vector {
		rng := rand.New(rand.NewSource(sc.Seed))
		warm := make([]dist.Vector, 0, n)
		for len(warm) < n/3 {
			mu := []float64{1 + 3.5*rng.Float64(), 1 + 3.5*rng.Float64()}
			v, err := dist.IsoGaussianVec(mu, 0.4)
			if err != nil {
				panic(err)
			}
			warm = append(warm, v)
		}
		return append(warm, inputStream(rng, n-len(warm), 2, 0.4)...)
	}
	// Ground truth: which tuples genuinely reach the alarm range?
	shouldKeep := make([]bool, n)
	{
		rng := rand.New(rand.NewSource(sc.Seed + 99))
		for i, in := range mkInputs() {
			truth := mc.GroundTruth(f, in, 3000, rng)
			tep := truth.CDF(pred.B) - truth.CDF(pred.A)
			shouldKeep[i] = tep >= pred.Theta
		}
	}
	for _, variant := range []struct {
		name  string
		trust bool
	}{
		{"guarded (default)", false},
		{"unguarded (paper)", true},
	} {
		rng := rand.New(rand.NewSource(sc.Seed))
		inputs := mkInputs()
		cfg := core.Config{
			Kernel: kernel.NewSqExp(1, 1.2), Predicate: pred,
			FilterTrustModel: variant.trust,
		}
		run, err := runGP(f, cfg, inputs, msOne, 0, rng)
		if err != nil {
			return nil, err
		}
		var dropped, falseNeg int
		for i, o := range run.Outputs {
			if o.Filtered {
				dropped++
				if shouldKeep[i] {
					falseNeg++
				}
			}
		}
		t.AddRow(variant.name, fmt.Sprintf("%d/%d", dropped, n),
			fmt.Sprintf("%d", falseNeg), fmt.Sprintf("%d", run.UDFCalls),
			fdur(run.PerInput))
	}
	return t, nil
}
