package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"olgapro/internal/core"
	"olgapro/internal/kernel"
	"olgapro/internal/mc"
	"olgapro/internal/udf"
)

// Fig5h reproduces Expt 4 (Fig. 5(h)): OLGAPRO running time per input as the
// accuracy requirement ε varies, for the four standard functions, at the
// default T = 1 ms.
func Fig5h(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "Fig 5(h)",
		Title:   "Expt 4: OLGAPRO ms/input vs. accuracy requirement ε (T=1ms)",
		Columns: []string{"eps", "Funct1", "Funct2", "Funct3", "Funct4", "violations"},
		Notes: []string{
			"paper shape: time grows as ε shrinks; F4 ≈ 2 orders of magnitude above F1",
		},
	}
	suite := udf.StandardSuite(sc.Seed)
	for _, eps := range []float64{0.02, 0.05, 0.1, 0.15, 0.2} {
		row := []string{fmt.Sprintf("%.2f", eps)}
		viol := 0
		for _, f := range suite {
			rng := rand.New(rand.NewSource(sc.Seed))
			n := sc.Inputs
			if eps < 0.05 {
				// Tight ε multiplies the sample count ∝ 1/ε²; average over
				// fewer inputs to keep the sweep tractable on one core.
				n = maxInt(sc.Inputs/4, 3)
			}
			inputs := inputStream(rng, n, 2, 0.5)
			cfg := core.Config{Eps: eps, Kernel: defaultKernel(), MaxAddPerInput: 15}
			truth := 0
			if eps >= 0.1 {
				truth = sc.Truth // accuracy spot-checks on the cheaper settings
			}
			run, err := runGP(f, cfg, inputs, msOne, truth, rng)
			if err != nil {
				return nil, err
			}
			row = append(row, fdur(run.PerInput))
			viol += run.Violations
		}
		row = append(row, fmt.Sprintf("%d", viol))
		t.AddRow(row...)
	}
	return t, nil
}

// Fig5i reproduces Expt 5 (Fig. 5(i)): GP vs. MC total time per input as the
// UDF evaluation time T sweeps 1µs – 1s. The GP lines stay nearly flat (UDF
// calls stop after convergence) while MC grows linearly in T.
func Fig5i(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "Fig 5(i)",
		Title:   "Expt 5: ms/input vs. UDF evaluation time T (ε=0.1)",
		Columns: []string{"T", "GP:Funct1", "GP:Funct2", "GP:Funct3", "GP:Funct4", "MC"},
		Notes: []string{
			"paper shape: GP flat in T; MC linear; crossover at T≈0.1ms (F1) to ≈10ms (F4)",
		},
	}
	suite := udf.StandardSuite(sc.Seed)
	ts := []time.Duration{
		time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond, time.Second,
	}
	for _, T := range ts {
		row := []string{T.String()}
		for _, f := range suite {
			rng := rand.New(rand.NewSource(sc.Seed))
			inputs := inputStream(rng, sc.Inputs, 2, 0.5)
			cfg := core.Config{Kernel: defaultKernel(), MaxAddPerInput: 15}
			run, err := runGP(f, cfg, inputs, T, 0, rng)
			if err != nil {
				return nil, err
			}
			row = append(row, fdur(run.PerInput))
		}
		// MC cost is function-independent: m UDF calls plus sampling noise.
		rng := rand.New(rand.NewSource(sc.Seed))
		inputs := inputStream(rng, sc.Inputs, 2, 0.5)
		mcr, err := runMC(suite[0], mc.Config{Metric: mc.MetricDiscrepancy}, inputs, T, rng)
		if err != nil {
			return nil, err
		}
		row = append(row, fdur(mcr.PerInput))
		t.AddRow(row...)
	}
	return t, nil
}

// Fig5l reproduces Expt 7 (Fig. 5(l)): running time vs. the function
// dimensionality d for GP (at T = 1s, where the GP line is insensitive to T)
// and MC at several T values.
func Fig5l(sc Scale) (*Table, error) {
	t := &Table{
		ID:    "Fig 5(l)",
		Title: "Expt 7: ms/input vs. function dimensionality (ε=0.1)",
		Columns: []string{"d", "GP (T=1s)", "MC (T=1ms)", "MC (T=10ms)",
			"MC (T=100ms)", "MC (T=1s)"},
		Notes: []string{
			"paper shape: GP cost grows with d but still beats MC at T=0.1–1s for d=10",
		},
	}
	dims := []int{1, 2, 3, 5, 7, 10}
	for _, d := range dims {
		f := udf.DimMixture(d, sc.Seed)
		rng := rand.New(rand.NewSource(sc.Seed))
		// Fewer inputs for high dimensions: each is much more expensive, and
		// the paper's series is an average anyway.
		n := sc.Inputs
		if d >= 5 {
			n = maxInt(sc.Inputs/4, 3)
		}
		inputs := inputStream(rng, n, d, 0.5)
		// Lengthscale grows with √d to keep prior correlation comparable.
		k := kernel.NewSqExp(0.5, 1.5*math.Sqrt(float64(d)/2))
		cfg := core.Config{Kernel: k, MaxAddPerInput: 10}
		run, err := runGP(f, cfg, inputs, time.Second, 0, rng)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", d), fdur(run.PerInput)}
		// MC cost: m calls × T plus sampling overhead; measure once at 1ms
		// and scale the UDF component for the other T values.
		mrng := rand.New(rand.NewSource(sc.Seed))
		minputs := inputStream(mrng, maxInt(n/2, 2), d, 0.5)
		base, err := runMC(f, mc.Config{Metric: mc.MetricDiscrepancy}, minputs, time.Millisecond, mrng)
		if err != nil {
			return nil, err
		}
		callsPerInput := float64(base.UDFCalls) / float64(len(minputs))
		overhead := base.PerInput - time.Duration(callsPerInput*float64(time.Millisecond))
		if overhead < 0 {
			overhead = 0
		}
		for _, T := range []time.Duration{time.Millisecond, 10 * time.Millisecond,
			100 * time.Millisecond, time.Second} {
			per := overhead + time.Duration(callsPerInput*float64(T))
			row = append(row, fdur(per))
		}
		t.AddRow(row...)
	}
	return t, nil
}
