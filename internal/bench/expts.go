package bench

import (
	"fmt"
	"math/rand"

	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/mc"
	"olgapro/internal/udf"
)

// Fig5cd reproduces Expt 1 (Fig. 5(c) and 5(d)): local vs. global inference
// accuracy and running time as the threshold Γ varies, at a fixed number of
// training points (online tuning disabled).
func Fig5cd(sc Scale) (*Table, *Table, error) {
	acc := &Table{
		ID:      "Fig 5(c)",
		Title:   "Expt 1: local inference — accuracy vs. threshold Γ (Funct4, fixed n)",
		Columns: []string{"Gamma/range", "local bound", "global bound", "local err", "global err"},
		Notes: []string{
			"paper shape: local ≈ global accuracy across most Γ",
		},
	}
	tim := &Table{
		ID:      "Fig 5(d)",
		Title:   "Expt 1: local inference — time vs. threshold Γ (Funct4, fixed n)",
		Columns: []string{"Gamma/range", "local ms/input", "global ms/input", "speedup", "avg local points"},
		Notes: []string{
			"paper shape: 2–4× speedup for mid-range Γ at n≈global size",
		},
	}
	f := udf.Standard(udf.F4, sc.Seed)
	const nTrain = 180
	fMin, fMax := udf.RangeOnGrid(f, udf.DomainLo, udf.DomainHi, 40)
	frange := fMax - fMin

	// Global baseline once.
	gRng := rand.New(rand.NewSource(sc.Seed))
	gInputs := inputStream(gRng, sc.Inputs, 2, 0.5)
	globalCfg := core.Config{
		Kernel: defaultKernel(), GlobalInference: true, MaxAddPerInput: -1,
	}
	globalRun, err := runPretrained(f, globalCfg, nTrain, gInputs, sc, gRng)
	if err != nil {
		return nil, nil, err
	}

	for _, gf := range []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.2} {
		rng := rand.New(rand.NewSource(sc.Seed))
		inputs := inputStream(rng, sc.Inputs, 2, 0.5)
		cfg := core.Config{
			Kernel: defaultKernel(), Gamma: gf * frange, MaxAddPerInput: -1,
		}
		localRun, err := runPretrained(f, cfg, nTrain, inputs, sc, rng)
		if err != nil {
			return nil, nil, err
		}
		label := fmt.Sprintf("%.3f", gf)
		acc.AddRow(label,
			ffloat(localRun.AvgBound), ffloat(globalRun.AvgBound),
			ffloat(localRun.AvgErr), ffloat(globalRun.AvgErr))
		speedup := float64(globalRun.PerInput) / float64(localRun.PerInput)
		tim.AddRow(label,
			fdur(localRun.PerInput), fdur(globalRun.PerInput),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%.0f", localRun.AvgLocal))
	}
	return acc, tim, nil
}

// runPretrained seeds nTrain uniform training points, trains the
// hyperparameters once, then streams the inputs with the given config.
func runPretrained(f udf.Func, cfg core.Config, nTrain int, inputs []dist.Vector, sc Scale, rng *rand.Rand) (gpRun, error) {
	// Seed via a throwaway evaluator is not possible (runGP builds its own),
	// so replicate runGP with a pre-seeded evaluator here.
	return runGPSeeded(f, cfg, nTrain, inputs, msOne, sc.Truth, rng)
}

// Fig5e reproduces Expt 2 (Fig. 5(e)): cumulative training points added over
// time for the three online-tuning policies, starting from 25 points with at
// most 10 additions per input and 400 cached samples per input.
func Fig5e(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "Fig 5(e)",
		Title:   "Expt 2: online tuning — cumulative points added vs. number of calls (Funct4)",
		Columns: []string{"calls", "random", "largest-variance", "optimal-greedy"},
		Notes: []string{
			"paper shape: largest-variance ≲ optimal-greedy ≪ random",
		},
	}
	f := udf.Standard(udf.F4, sc.Seed)
	nCalls := maxInt(sc.Inputs*4, 24)
	checkEvery := maxInt(nCalls/8, 1)
	curves := make(map[core.TuningPolicy][]int)
	policies := []core.TuningPolicy{core.TuneRandom, core.TuneMaxVariance, core.TuneOptimalGreedy}
	for _, pol := range policies {
		rng := rand.New(rand.NewSource(sc.Seed))
		cfg := core.Config{
			Kernel: defaultKernel(), Tuning: pol,
			MaxAddPerInput: 10, SampleOverride: 400,
		}
		ev, err := core.NewEvaluator(f, cfg)
		if err != nil {
			return nil, err
		}
		if err := pretrain(ev, 25, 2, rng); err != nil {
			return nil, err
		}
		base := ev.Stats().PointsAdded
		// A handful of recurring input regions, as in a query stream.
		regions := inputStream(rng, 8, 2, 0.5)
		var curve []int
		for call := 1; call <= nCalls; call++ {
			in := regions[(call-1)%len(regions)]
			if _, err := ev.Eval(in, rng); err != nil {
				return nil, err
			}
			if call%checkEvery == 0 {
				curve = append(curve, ev.Stats().PointsAdded-base)
			}
		}
		curves[pol] = curve
	}
	for i := 0; i < len(curves[core.TuneRandom]); i++ {
		t.AddRow(
			fmt.Sprintf("%d", (i+1)*checkEvery),
			fmt.Sprintf("%d", curves[core.TuneRandom][i]),
			fmt.Sprintf("%d", curves[core.TuneMaxVariance][i]),
			fmt.Sprintf("%d", curves[core.TuneOptimalGreedy][i]),
		)
	}
	return t, nil
}

// Fig5fg reproduces Expt 3 (Fig. 5(f) and 5(g)): accuracy and time of the
// retraining strategies — threshold sweep on Δθ against eager and none.
func Fig5fg(sc Scale) (*Table, *Table, error) {
	acc := &Table{
		ID:      "Fig 5(f)",
		Title:   "Expt 3: retraining — actual error vs. strategy (Funct4)",
		Columns: []string{"strategy", "actual error", "error bound", "retrainings"},
		Notes: []string{
			"paper shape: no-retraining worst accuracy; Δθ ≤ 0.5 ≈ eager accuracy",
		},
	}
	tim := &Table{
		ID:      "Fig 5(g)",
		Title:   "Expt 3: retraining — time vs. strategy (Funct4)",
		Columns: []string{"strategy", "ms/input", "retrainings"},
		Notes: []string{
			"paper shape: eager slowest; thresholding cheap; none cheapest",
		},
	}
	f := udf.Standard(udf.F4, sc.Seed)
	type variant struct {
		name string
		cfg  core.Config
	}
	variants := []variant{
		{"eager", core.Config{Retrain: core.RetrainEager}},
		{"none", core.Config{Retrain: core.RetrainNever}},
	}
	for _, dt := range []float64{0.001, 0.01, 0.05, 0.1, 0.5, 1} {
		variants = append(variants, variant{
			fmt.Sprintf("Δθ=%.3g", dt),
			core.Config{Retrain: core.RetrainThreshold, DeltaTheta: dt},
		})
	}
	for _, v := range variants {
		rng := rand.New(rand.NewSource(sc.Seed))
		inputs := inputStream(rng, sc.Inputs, 2, 0.5)
		cfg := v.cfg
		// Deliberately mis-specified prior so retraining matters.
		cfg.Kernel = kernelForRetraining()
		cfg.MaxAddPerInput = 10
		run, err := runGP(f, cfg, inputs, msOne, sc.Truth, rng)
		if err != nil {
			return nil, nil, err
		}
		acc.AddRow(v.name, ffloat(run.AvgErr), ffloat(run.AvgBound), fmt.Sprintf("%d", run.Retrains))
		tim.AddRow(v.name, fdur(run.PerInput), fmt.Sprintf("%d", run.Retrains))
	}
	return acc, tim, nil
}

// Fig5jk reproduces Expt 6 (Fig. 5(j) and 5(k)): online filtering time and
// false-positive rates for MC and GP, with and without online filtering, as
// the predicate's filtering percentage varies.
func Fig5jk(sc Scale) (*Table, *Table, error) {
	tim := &Table{
		ID:      "Fig 5(j)",
		Title:   "Expt 6: online filtering — ms/input (Funct3, T=1ms, θ=0.1)",
		Columns: []string{"filter %", "MC", "MC+OF", "GP", "GP+OF"},
		Notes: []string{
			"paper shape: OF speedup ≈5× for MC and ≈30× for GP at high filtering rates",
		},
	}
	accT := &Table{
		ID:      "Fig 5(k)",
		Title:   "Expt 6: online filtering — false positive rate",
		Columns: []string{"filter %", "MC+OF FP", "GP+OF FP", "GP+OF FN"},
		Notes: []string{
			"paper shape: false positives < 10%, false negatives ≈ 0",
		},
	}
	f := udf.Standard(udf.F3, sc.Seed)
	// Sweep the predicate's lower cut to hit increasing filtering rates:
	// [c, ∞) over the output range.
	fMin, fMax := udf.RangeOnGrid(f, udf.DomainLo, udf.DomainHi, 40)
	theta := 0.1
	for _, cut := range []float64{0.15, 0.45, 0.6, 0.8} {
		c := fMin + cut*(fMax-fMin)
		pred := &mc.Predicate{A: c, B: fMax + 10*(fMax-fMin), Theta: theta}
		rng := rand.New(rand.NewSource(sc.Seed))
		inputs := inputStream(rng, sc.Inputs, 2, 0.5)

		// Truth: which tuples should be filtered (TEP < θ)?
		shouldFilter := make([]bool, len(inputs))
		filtered := 0
		for i, in := range inputs {
			truth := mc.GroundTruth(f, in, 4000, rand.New(rand.NewSource(sc.Seed+int64(i))))
			tep := truth.CDF(pred.B) - truth.CDF(pred.A)
			shouldFilter[i] = tep < theta
			if shouldFilter[i] {
				filtered++
			}
		}
		rate := float64(filtered) / float64(len(inputs))

		// MC without online filtering: full sample budget always.
		mcPlain, err := runMC(f, mc.Config{Metric: mc.MetricDiscrepancy}, inputs, msOne, rand.New(rand.NewSource(sc.Seed)))
		if err != nil {
			return nil, nil, err
		}
		// MC with online filtering.
		mcOF, err := runMC(f, mc.Config{Metric: mc.MetricDiscrepancy, Predicate: pred}, inputs, msOne, rand.New(rand.NewSource(sc.Seed)))
		if err != nil {
			return nil, nil, err
		}
		// GP without online filtering.
		gpPlain, err := runGP(f, core.Config{Kernel: defaultKernel()}, inputs, msOne, 0, rand.New(rand.NewSource(sc.Seed)))
		if err != nil {
			return nil, nil, err
		}
		// GP with online filtering.
		gpOF, err := runGP(f, core.Config{Kernel: defaultKernel(), Predicate: pred}, inputs, msOne, 0, rand.New(rand.NewSource(sc.Seed)))
		if err != nil {
			return nil, nil, err
		}

		// Error rates for the filtering runs.
		mcFP := filterErrorRates(shouldFilter, mcOFDecisions(f, pred, inputs, sc.Seed))
		gpDec := make([]bool, len(gpOF.Outputs))
		for i, o := range gpOF.Outputs {
			gpDec[i] = o.Filtered
		}
		gpFP, gpFN := filterRates(shouldFilter, gpDec)

		label := fmt.Sprintf("%.2f", rate)
		tim.AddRow(label, fdur(mcPlain.PerInput), fdur(mcOF.PerInput),
			fdur(gpPlain.PerInput), fdur(gpOF.PerInput))
		accT.AddRow(label, fmt.Sprintf("%.3f", mcFP), fmt.Sprintf("%.3f", gpFP), fmt.Sprintf("%.3f", gpFN))
	}
	return tim, accT, nil
}

// mcOFDecisions re-runs the MC filter to capture per-tuple decisions.
func mcOFDecisions(f udf.Func, pred *mc.Predicate, inputs []dist.Vector, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bool, len(inputs))
	for i, in := range inputs {
		res, err := mc.Evaluate(f, in, mc.Config{Metric: mc.MetricDiscrepancy, Predicate: pred}, rng)
		if err == nil {
			out[i] = res.Filtered
		}
	}
	return out
}

// filterErrorRates returns the false-positive rate: tuples kept that should
// have been filtered, over all tuples that should have been filtered.
func filterErrorRates(shouldFilter, decided []bool) float64 {
	fp, _ := filterRates(shouldFilter, decided)
	return fp
}

// filterRates returns (falsePositiveRate, falseNegativeRate): FP = should be
// filtered but kept; FN = should be kept but filtered.
func filterRates(shouldFilter, decided []bool) (fp, fn float64) {
	var fpc, fnc, shouldC, keptC int
	for i := range shouldFilter {
		if shouldFilter[i] {
			shouldC++
			if !decided[i] {
				fpc++
			}
		} else {
			keptC++
			if decided[i] {
				fnc++
			}
		}
	}
	if shouldC > 0 {
		fp = float64(fpc) / float64(shouldC)
	}
	if keptC > 0 {
		fn = float64(fnc) / float64(keptC)
	}
	return fp, fn
}
