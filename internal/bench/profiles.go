package bench

import (
	"fmt"
	"math"
	"math/rand"

	"olgapro/internal/core"
	"olgapro/internal/ecdf"
	"olgapro/internal/gp"
	"olgapro/internal/mc"
	"olgapro/internal/udf"
)

// Fig5a reproduces Profile 1 (Fig. 5(a)): GP fitting accuracy vs. number of
// training points for the four standard functions. For each n, a GP is fit
// on n uniform training points and the mean relative error
// |f̂(x) − f(x)| / |f(x)| is measured on a dense test grid.
func Fig5a(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "Fig 5(a)",
		Title:   "Profile 1: function fitting — mean relative error vs. training points",
		Columns: []string{"n", "Funct1", "Funct2", "Funct3", "Funct4"},
		Notes: []string{
			"paper shape: F1 accurate by n≈30; F4 needs n>300; F2, F3 in between",
		},
	}
	suite := udf.StandardSuite(sc.Seed)
	ns := []int{25, 50, 100, 150, 200, 300, 400}
	grid := testGrid2D(40)
	for _, n := range ns {
		row := []string{fmt.Sprintf("%d", n)}
		for _, f := range suite {
			rng := rand.New(rand.NewSource(sc.Seed + int64(n)))
			g := gp.New(defaultKernel(), 0)
			for i := 0; i < n; i++ {
				x := []float64{
					udf.DomainLo + rng.Float64()*(udf.DomainHi-udf.DomainLo),
					udf.DomainLo + rng.Float64()*(udf.DomainHi-udf.DomainLo),
				}
				if err := g.Add(x, f.Eval(x)); err != nil {
					continue
				}
			}
			if _, err := g.Train(gp.TrainConfig{MaxIter: 40}); err != nil {
				return nil, err
			}
			var relSum float64
			var count int
			for _, x := range grid {
				truth := f.Eval(x)
				pred := g.PredictMean(x)
				denom := math.Abs(truth)
				if denom < 1e-3 {
					denom = 1e-3 // mixtures vanish far from peaks
				}
				relSum += math.Abs(pred-truth) / denom
				count++
			}
			row = append(row, fmt.Sprintf("%.2e", relSum/float64(count)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func testGrid2D(steps int) [][]float64 {
	out := make([][]float64, 0, steps*steps)
	for i := 0; i < steps; i++ {
		for j := 0; j < steps; j++ {
			out = append(out, []float64{
				udf.DomainLo + (udf.DomainHi-udf.DomainLo)*float64(i)/float64(steps-1),
				udf.DomainLo + (udf.DomainHi-udf.DomainLo)*float64(j)/float64(steps-1),
			})
		}
	}
	return out
}

// Fig5b reproduces Profile 2 (Fig. 5(b)): the λ-discrepancy error bound vs.
// the actual error as λ varies, for Funct4. Bounds must dominate the actual
// error and both grow as λ shrinks.
func Fig5b(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "Fig 5(b)",
		Title:   "Profile 2: error bound vs. actual error as λ varies (Funct4)",
		Columns: []string{"lambda/range", "actual error", "error bound", "bound/actual"},
		Notes: []string{
			"paper shape: bound ≥ error, 2–4× tight; both grow as λ → 0",
		},
	}
	f := udf.Standard(udf.F4, sc.Seed)
	rng := rand.New(rand.NewSource(sc.Seed))
	// Converge an evaluator first so the bound reflects steady state.
	cfg := core.Config{Kernel: defaultKernel(), MaxAddPerInput: 15}
	ev, err := core.NewEvaluator(f, cfg)
	if err != nil {
		return nil, err
	}
	warm := inputStream(rng, sc.Inputs, 2, 0.5)
	for _, in := range warm {
		if _, err := ev.Eval(in, rng); err != nil {
			return nil, err
		}
	}
	fMin, fMax := udf.RangeOnGrid(f, udf.DomainLo, udf.DomainHi, 40)
	frange := fMax - fMin
	for _, lf := range []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.1} {
		lambda := lf * frange
		var boundSum, errSum float64
		var count int
		probe := inputStream(rng, maxInt(sc.Inputs/4, 4), 2, 0.5)
		for _, in := range probe {
			out, err := ev.EvalLambda(in, lambda, rng)
			if err != nil {
				return nil, err
			}
			truth := mc.GroundTruth(f, in, sc.Truth, rng)
			actual := ecdf.DiscrepancyLambda(out.Dist, truth, lambda)
			boundSum += out.Bound
			errSum += actual
			count++
		}
		avgB, avgE := boundSum/float64(count), errSum/float64(count)
		ratio := math.Inf(1)
		if avgE > 0 {
			ratio = avgB / avgE
		}
		t.AddRow(fmt.Sprintf("%.3f", lf), ffloat(avgE), ffloat(avgB), fmt.Sprintf("%.2f", ratio))
	}
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TableP3 reproduces the error-allocation profile (Profile 3, §6.2, details
// in the tech report): the ε_MC : ε split governs both the sample count and
// the GP budget; 0.7 is the paper's recommendation.
func TableP3(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "Profile 3",
		Title:   "Allocation of ε between MC sampling and GP modeling (Funct4, ε=0.1, T=1ms)",
		Columns: []string{"epsMC/eps", "samples m", "time/input (ms)", "UDF calls", "bound met %"},
		Notes: []string{
			"paper recommendation: ε_MC = 0.7 ε performs well overall",
		},
	}
	f := udf.Standard(udf.F4, sc.Seed)
	for _, frac := range []float64{0.3, 0.5, 0.7, 0.9} {
		rng := rand.New(rand.NewSource(sc.Seed))
		inputs := inputStream(rng, sc.Inputs, 2, 0.5)
		cfg := core.Config{Kernel: defaultKernel(), MCFrac: frac, MaxAddPerInput: 15}
		run, err := runGP(f, cfg, inputs, msOne, 0, rng)
		if err != nil {
			return nil, err
		}
		met := 0
		for _, o := range run.Outputs {
			if o.MetBudget {
				met++
			}
		}
		epsMC := frac * 0.1
		deltaMC := 1 - math.Sqrt(1-0.05)
		m := mc.SampleSize(epsMC, deltaMC, mc.MetricDiscrepancy)
		t.AddRow(
			fmt.Sprintf("%.1f", frac),
			fmt.Sprintf("%d", m),
			fdur(run.PerInput),
			fmt.Sprintf("%d", run.UDFCalls),
			fmt.Sprintf("%.0f%%", 100*float64(met)/float64(len(run.Outputs))),
		)
	}
	return t, nil
}
