package bench

import (
	"fmt"
	"math/rand"
	"time"

	"olgapro/internal/astro"
	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/kernel"
	"olgapro/internal/mc"
	"olgapro/internal/sdss"
	"olgapro/internal/udf"
)

// caseUDF bundles one astrophysics UDF with its nominal (IDL-equivalent)
// evaluation time from the paper's §6.4 table, which the virtual clock
// charges per call. Our Go implementations are faster than the paper's IDL
// routines in absolute terms; the nominal costs preserve the regime the
// case study evaluates.
type caseUDF struct {
	name     string
	f        udf.Func
	dim      int
	paperT   time.Duration
	kern     kernel.Kernel
	inputsOf func(cat *sdss.Catalog, n int) []dist.Vector
}

func caseSuite(sc Scale) []caseUDF {
	cosmo := astro.Default()
	return []caseUDF{
		{
			name:   "AngDist",
			f:      astro.AngDistFunc(175, 20),
			dim:    2,
			paperT: 2980 * time.Nanosecond, // 0.00298 ms
			kern:   kernel.NewSqExp(20, 15),
			inputsOf: func(cat *sdss.Catalog, n int) []dist.Vector {
				out := make([]dist.Vector, 0, n)
				for _, g := range cat.Galaxies[:n] {
					out = append(out, g.PosDist())
				}
				return out
			},
		},
		{
			name:   "GalAge",
			f:      astro.GalAgeFunc(cosmo),
			dim:    1,
			paperT: 290720 * time.Nanosecond, // 0.29072 ms
			kern:   kernel.NewSqExp(4, 0.3),
			inputsOf: func(cat *sdss.Catalog, n int) []dist.Vector {
				out := make([]dist.Vector, 0, n)
				for _, g := range cat.Galaxies[:n] {
					out = append(out, dist.NewIndependent(g.RedshiftDist()))
				}
				return out
			},
		},
		{
			name:   "ComoveVol",
			f:      astro.ComoveVolFunc(cosmo, 100),
			dim:    2,
			paperT: 1820850 * time.Nanosecond, // 1.82085 ms
			kern:   kernel.NewSqExp(5e7, 0.3),
			inputsOf: func(cat *sdss.Catalog, n int) []dist.Vector {
				out := make([]dist.Vector, 0, n)
				for i, g := range cat.Galaxies {
					if len(out) == n {
						break
					}
					h := cat.Galaxies[(i+7)%len(cat.Galaxies)]
					out = append(out, dist.NewIndependent(g.RedshiftDist(), h.RedshiftDist()))
				}
				return out
			},
		},
	}
}

// TableCaseStudy reproduces the §6.4 function table: name, dimensionality,
// the paper's measured IDL evaluation time, and our measured Go evaluation
// time (the nominal paper cost is what the experiments charge).
func TableCaseStudy(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "Table §6.4",
		Title:   "Case study UDFs: dimension and evaluation time",
		Columns: []string{"FunctName", "Dim", "paper EvalTime (ms)", "measured Go EvalTime (ms)"},
		Notes: []string{
			"paper shape: AngDist ≪ GalAge < ComoveVol; nominal paper costs are charged in Fig 6",
		},
	}
	cat := sdss.Generate(sdss.GenerateConfig{N: 64, Seed: sc.Seed})
	for _, cu := range caseSuite(sc) {
		inputs := cu.inputsOf(cat, 16)
		rng := rand.New(rand.NewSource(sc.Seed))
		// Measure the real Go implementation on catalog-shaped points.
		const reps = 200
		buf := make([]float64, cu.dim)
		start := time.Now()
		for r := 0; r < reps; r++ {
			in := inputs[r%len(inputs)]
			buf = in.SampleVec(rng, buf)
			cu.f.Eval(buf)
		}
		measured := time.Since(start) / reps
		t.AddRow(cu.name,
			fmt.Sprintf("%d", cu.dim),
			fmt.Sprintf("%.5f", float64(cu.paperT)/float64(time.Millisecond)),
			fmt.Sprintf("%.5f", float64(measured)/float64(time.Millisecond)),
		)
	}
	return t, nil
}

// Fig6a reproduces Fig. 6(a): the (non-Gaussian) output PDF of AngDist on
// one uncertain catalog object, as a histogram.
func Fig6a(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "Fig 6(a)",
		Title:   "Example output PDF of AngDist (histogram over MC ground truth)",
		Columns: []string{"y (deg)", "pdf(y)"},
		Notes: []string{
			"paper shape: skewed, clearly non-Gaussian density",
		},
	}
	cat := sdss.Generate(sdss.GenerateConfig{N: 8, Seed: sc.Seed})
	g := cat.Galaxies[0]
	// A reference point close to the object makes the distance distribution
	// visibly skewed (distance is non-negative), as in the paper's example.
	f := astro.AngDistFunc(g.RA+0.001, g.Dec+0.0005)
	in := g.PosDist()
	rng := rand.New(rand.NewSource(sc.Seed))
	truth := mc.GroundTruth(f, in, maxInt(sc.Truth, 20000), rng)
	edges, dens := truth.Histogram(24)
	for i := range edges {
		t.AddRow(fmt.Sprintf("%.6f", edges[i]), fmt.Sprintf("%.2f", dens[i]))
	}
	return t, nil
}

// Fig6bcd reproduces Fig. 6(b), (c), (d): GP vs. MC time per input across
// accuracy requirements for each astrophysics UDF on SDSS-like data, with
// UDF calls charged at the paper's nominal evaluation times.
func Fig6bcd(sc Scale) ([]*Table, error) {
	cat := sdss.Generate(sdss.GenerateConfig{N: 512, Seed: sc.Seed})
	var tables []*Table
	ids := map[string]string{"AngDist": "Fig 6(b)", "GalAge": "Fig 6(c)", "ComoveVol": "Fig 6(d)"}
	for _, cu := range caseSuite(sc) {
		t := &Table{
			ID:      ids[cu.name],
			Title:   fmt.Sprintf("Case study: GP vs. MC ms/input vs. ε — %s (T=%.3fms nominal)", cu.name, float64(cu.paperT)/float64(time.Millisecond)),
			Columns: []string{"eps", "GP", "MC", "GP points"},
		}
		switch cu.name {
		case "AngDist":
			t.Notes = append(t.Notes, "paper shape: fast UDF — OLGAPRO somewhat slower than MC")
		default:
			t.Notes = append(t.Notes, "paper shape: OLGAPRO 1–2 orders of magnitude faster than MC")
		}
		for _, eps := range []float64{0.02, 0.05, 0.1, 0.2} {
			n := sc.Inputs
			if eps <= 0.02 {
				n = maxInt(sc.Inputs/4, 3) // tight ε is expensive; average fewer
			}
			inputs := cu.inputsOf(cat, n)
			rng := rand.New(rand.NewSource(sc.Seed))
			cfg := core.Config{Eps: eps, Kernel: cu.kern.Clone(), MaxAddPerInput: 10}
			run, err := runGP(cu.f, cfg, inputs, cu.paperT, 0, rng)
			if err != nil {
				return nil, err
			}
			mrng := rand.New(rand.NewSource(sc.Seed))
			mcr, err := runMC(cu.f, mc.Config{Eps: eps, Metric: mc.MetricDiscrepancy}, inputs, cu.paperT, mrng)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%.2f", eps), fdur(run.PerInput), fdur(mcr.PerInput),
				fmt.Sprintf("%d", run.Points))
		}
		tables = append(tables, t)
	}
	return tables, nil
}
