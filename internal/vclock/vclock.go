// Package vclock provides the virtual cost clock used by the benchmark
// harness to reproduce the paper's evaluation-time sweeps.
//
// The paper varies the UDF evaluation time T from 1µs to 1s (§6.1-A). On
// real hardware, re-running Monte Carlo with tens of thousands of UDF calls
// at T = 1s would take many hours per data point, so the harness charges
// UDF invocations to a virtual clock at their *nominal* cost while measuring
// the algorithms' own computation in real wall time. Total reported time is
//
//	total = measured algorithm time + (#UDF calls × T)
//
// which is exactly the cost model behind the paper's GP-vs-MC tradeoff: the
// GP approach wins when UDF calls dominate; MC wins when they are free.
// The substitution is recorded in DESIGN.md.
package vclock

import (
	"sync/atomic"
	"time"
)

// Clock accumulates real (measured) and simulated (charged) durations.
// It is safe for concurrent use. The zero value is a reset clock.
type Clock struct {
	measuredNs int64
	chargedNs  int64
	udfCalls   int64
}

// Reset zeroes all counters.
func (c *Clock) Reset() {
	atomic.StoreInt64(&c.measuredNs, 0)
	atomic.StoreInt64(&c.chargedNs, 0)
	atomic.StoreInt64(&c.udfCalls, 0)
}

// Charge records n UDF invocations at per cost each on the simulated clock.
func (c *Clock) Charge(n int, per time.Duration) {
	atomic.AddInt64(&c.chargedNs, int64(n)*int64(per))
	atomic.AddInt64(&c.udfCalls, int64(n))
}

// AddMeasured records an externally measured duration.
func (c *Clock) AddMeasured(d time.Duration) {
	atomic.AddInt64(&c.measuredNs, int64(d))
}

// Run executes fn and adds its wall-clock duration to the measured total.
func (c *Clock) Run(fn func()) {
	start := time.Now()
	fn()
	c.AddMeasured(time.Since(start))
}

// Measured returns the accumulated real computation time.
func (c *Clock) Measured() time.Duration {
	return time.Duration(atomic.LoadInt64(&c.measuredNs))
}

// Charged returns the accumulated simulated UDF evaluation time.
func (c *Clock) Charged() time.Duration {
	return time.Duration(atomic.LoadInt64(&c.chargedNs))
}

// UDFCalls returns the number of UDF invocations charged so far.
func (c *Clock) UDFCalls() int {
	return int(atomic.LoadInt64(&c.udfCalls))
}

// Total returns measured + charged time, the quantity the paper plots.
func (c *Clock) Total() time.Duration {
	return c.Measured() + c.Charged()
}
