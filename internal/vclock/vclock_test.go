package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestChargeAccumulates(t *testing.T) {
	var c Clock
	c.Charge(10, time.Millisecond)
	c.Charge(5, 2*time.Millisecond)
	if got := c.Charged(); got != 20*time.Millisecond {
		t.Fatalf("Charged = %v, want 20ms", got)
	}
	if got := c.UDFCalls(); got != 15 {
		t.Fatalf("UDFCalls = %d, want 15", got)
	}
	if c.Measured() != 0 {
		t.Fatalf("Measured should be 0, got %v", c.Measured())
	}
	if got := c.Total(); got != 20*time.Millisecond {
		t.Fatalf("Total = %v", got)
	}
}

func TestRunMeasures(t *testing.T) {
	var c Clock
	c.Run(func() { time.Sleep(5 * time.Millisecond) })
	if c.Measured() < 4*time.Millisecond {
		t.Fatalf("Measured = %v, want ≥ 4ms", c.Measured())
	}
	if c.Charged() != 0 {
		t.Fatalf("Charged should be 0")
	}
}

func TestAddMeasuredAndTotal(t *testing.T) {
	var c Clock
	c.AddMeasured(3 * time.Second)
	c.Charge(2, time.Second)
	if got := c.Total(); got != 5*time.Second {
		t.Fatalf("Total = %v, want 5s", got)
	}
}

func TestReset(t *testing.T) {
	var c Clock
	c.Charge(100, time.Second)
	c.AddMeasured(time.Second)
	c.Reset()
	if c.Total() != 0 || c.UDFCalls() != 0 {
		t.Fatalf("Reset did not clear: total=%v calls=%d", c.Total(), c.UDFCalls())
	}
}

func TestConcurrentCharges(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Charge(1, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := c.UDFCalls(); got != 16000 {
		t.Fatalf("UDFCalls = %d, want 16000", got)
	}
	if got := c.Charged(); got != 16000*time.Microsecond {
		t.Fatalf("Charged = %v", got)
	}
}
