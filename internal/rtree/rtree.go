// Package rtree implements an in-memory R-tree over points in ℝᵈ.
//
// OLGAPRO stores its GP training points in an R-tree (paper §5.1) so that
// local inference can quickly retrieve the points within a distance
// threshold of the bounding box of the current input samples. The tree uses
// the classic Guttman quadratic-split insertion algorithm.
package rtree

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned box [Lo, Hi] in ℝᵈ.
type Rect struct {
	Lo, Hi []float64
}

// NewRect returns a rectangle, validating lo ≤ hi component-wise.
func NewRect(lo, hi []float64) (Rect, error) {
	if len(lo) != len(hi) {
		return Rect{}, fmt.Errorf("rtree: rect dims %d ≠ %d", len(lo), len(hi))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Rect{}, fmt.Errorf("rtree: rect lo[%d]=%g > hi[%d]=%g", i, lo[i], i, hi[i])
		}
	}
	return Rect{Lo: lo, Hi: hi}, nil
}

// PointRect returns the degenerate rectangle covering a single point.
func PointRect(p []float64) Rect {
	lo := make([]float64, len(p))
	hi := make([]float64, len(p))
	copy(lo, p)
	copy(hi, p)
	return Rect{Lo: lo, Hi: hi}
}

// BoundingBox returns the smallest rectangle covering all points.
// It panics on an empty input, since an empty box has no dimension.
func BoundingBox(points [][]float64) Rect {
	if len(points) == 0 {
		panic("rtree: BoundingBox of no points")
	}
	d := len(points[0])
	lo := make([]float64, d)
	hi := make([]float64, d)
	copy(lo, points[0])
	copy(hi, points[0])
	for _, p := range points[1:] {
		for i, v := range p {
			if v < lo[i] {
				lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Lo) }

// Contains reports whether point p lies inside r (inclusive).
func (r Rect) Contains(p []float64) bool {
	for i, v := range p {
		if v < r.Lo[i] || v > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s overlap (inclusive).
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Lo {
		if r.Hi[i] < s.Lo[i] || s.Hi[i] < r.Lo[i] {
			return false
		}
	}
	return true
}

// Union returns the smallest rectangle covering r and s.
func (r Rect) Union(s Rect) Rect {
	lo := make([]float64, len(r.Lo))
	hi := make([]float64, len(r.Hi))
	for i := range lo {
		lo[i] = math.Min(r.Lo[i], s.Lo[i])
		hi[i] = math.Max(r.Hi[i], s.Hi[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// Margin returns the sum of edge lengths, the "size" used to pick cheap
// enlargements when areas degenerate to zero (point data).
func (r Rect) Margin() float64 {
	var s float64
	for i := range r.Lo {
		s += r.Hi[i] - r.Lo[i]
	}
	return s
}

// Area returns the d-dimensional volume of r.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Lo {
		a *= r.Hi[i] - r.Lo[i]
	}
	return a
}

// Expand returns r grown by delta in every direction.
func (r Rect) Expand(delta float64) Rect {
	lo := make([]float64, len(r.Lo))
	hi := make([]float64, len(r.Hi))
	for i := range lo {
		lo[i] = r.Lo[i] - delta
		hi[i] = r.Hi[i] + delta
	}
	return Rect{Lo: lo, Hi: hi}
}

// MinDist returns the Euclidean distance from point p to the rectangle
// (0 if p is inside). This is the distance to the paper's x_near.
func (r Rect) MinDist(p []float64) float64 {
	var s float64
	for i, v := range p {
		switch {
		case v < r.Lo[i]:
			d := r.Lo[i] - v
			s += d * d
		case v > r.Hi[i]:
			d := v - r.Hi[i]
			s += d * d
		}
	}
	return math.Sqrt(s)
}

// MaxDist returns the Euclidean distance from point p to the farthest point
// of the rectangle, the paper's x_far.
func (r Rect) MaxDist(p []float64) float64 {
	var s float64
	for i, v := range p {
		d := math.Max(math.Abs(v-r.Lo[i]), math.Abs(v-r.Hi[i]))
		s += d * d
	}
	return math.Sqrt(s)
}

// RectDist returns the minimum Euclidean distance between two rectangles
// (0 if they intersect), used for pruning distance-bounded searches.
func RectDist(r, s Rect) float64 {
	var sum float64
	for i := range r.Lo {
		switch {
		case r.Hi[i] < s.Lo[i]:
			d := s.Lo[i] - r.Hi[i]
			sum += d * d
		case s.Hi[i] < r.Lo[i]:
			d := r.Lo[i] - s.Hi[i]
			sum += d * d
		}
	}
	return math.Sqrt(sum)
}

const (
	maxEntries = 8
	minEntries = 3
)

type entry struct {
	rect  Rect
	child *node // nil for leaf entries
	id    int
	point []float64
}

type node struct {
	leaf    bool
	entries []entry
}

// Tree is an R-tree over points with integer identifiers.
// The zero value is an empty tree ready for use.
type Tree struct {
	root *node
	dim  int
	size int
}

// Len returns the number of points in the tree.
func (t *Tree) Len() int { return t.size }

// Dim returns the dimensionality of inserted points (0 when empty).
func (t *Tree) Dim() int { return t.dim }

// Insert adds a point with the given id. The point slice is copied.
func (t *Tree) Insert(p []float64, id int) error {
	if t.root == nil {
		t.root = &node{leaf: true}
		t.dim = len(p)
	} else if len(p) != t.dim {
		return fmt.Errorf("rtree: point dim %d ≠ tree dim %d", len(p), t.dim)
	}
	cp := make([]float64, len(p))
	copy(cp, p)
	e := entry{rect: PointRect(cp), id: id, point: cp}
	split := t.insert(t.root, e)
	if split != nil {
		// Root split: grow the tree by one level.
		old := t.root
		t.root = &node{leaf: false, entries: []entry{
			{rect: nodeRect(old), child: old},
			{rect: nodeRect(split), child: split},
		}}
	}
	t.size++
	return nil
}

// insert places e under n, returning a new sibling node if n split.
func (t *Tree) insert(n *node, e entry) *node {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > maxEntries {
			return splitNode(n)
		}
		return nil
	}
	best := chooseSubtree(n, e.rect)
	split := t.insert(n.entries[best].child, e)
	n.entries[best].rect = nodeRect(n.entries[best].child)
	if split != nil {
		n.entries = append(n.entries, entry{rect: nodeRect(split), child: split})
		if len(n.entries) > maxEntries {
			return splitNode(n)
		}
	}
	return nil
}

// chooseSubtree picks the child whose rectangle needs the least margin
// enlargement to cover r (margin rather than area so that point-degenerate
// boxes still discriminate), breaking ties by smaller margin.
func chooseSubtree(n *node, r Rect) int {
	best := 0
	bestEnl := math.Inf(1)
	bestMargin := math.Inf(1)
	for i, e := range n.entries {
		m := e.rect.Margin()
		enl := e.rect.Union(r).Margin() - m
		if enl < bestEnl || (enl == bestEnl && m < bestMargin) {
			best, bestEnl, bestMargin = i, enl, m
		}
	}
	return best
}

// nodeRect returns the bounding rectangle of all entries of n.
func nodeRect(n *node) Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// splitNode performs Guttman's quadratic split, moving roughly half of n's
// entries into a returned sibling.
func splitNode(n *node) *node {
	entries := n.entries
	// Pick the two seeds wasting the most margin if paired.
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			waste := entries[i].rect.Union(entries[j].rect).Margin() -
				entries[i].rect.Margin() - entries[j].rect.Margin()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	g1 := []entry{entries[s1]}
	g2 := []entry{entries[s2]}
	r1, r2 := entries[s1].rect, entries[s2].rect
	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Force assignment if one group must take all remaining entries.
		if len(g1)+len(rest) == minEntries {
			g1 = append(g1, rest...)
			for _, e := range rest {
				r1 = r1.Union(e.rect)
			}
			break
		}
		if len(g2)+len(rest) == minEntries {
			g2 = append(g2, rest...)
			for _, e := range rest {
				r2 = r2.Union(e.rect)
			}
			break
		}
		// Pick the entry with maximal preference for one group.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			d1 := r1.Union(e.rect).Margin() - r1.Margin()
			d2 := r2.Union(e.rect).Margin() - r2.Margin()
			if diff := math.Abs(d1 - d2); diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		d1 := r1.Union(e.rect).Margin() - r1.Margin()
		d2 := r2.Union(e.rect).Margin() - r2.Margin()
		if d1 < d2 || (d1 == d2 && len(g1) < len(g2)) {
			g1 = append(g1, e)
			r1 = r1.Union(e.rect)
		} else {
			g2 = append(g2, e)
			r2 = r2.Union(e.rect)
		}
	}
	n.entries = g1
	return &node{leaf: n.leaf, entries: g2}
}

// Search calls fn for every point inside rect; returning false stops early.
func (t *Tree) Search(rect Rect, fn func(id int, p []float64) bool) {
	if t.root == nil {
		return
	}
	t.search(t.root, rect, fn)
}

func (t *Tree) search(n *node, rect Rect, fn func(id int, p []float64) bool) bool {
	for _, e := range n.entries {
		if !rect.Intersects(e.rect) {
			continue
		}
		if n.leaf {
			if rect.Contains(e.point) && !fn(e.id, e.point) {
				return false
			}
		} else if !t.search(e.child, rect, fn) {
			return false
		}
	}
	return true
}

// SearchNear calls fn for every point whose Euclidean distance to rect is at
// most delta (this is the local-inference retrieval of paper §5.1).
// Returning false from fn stops the search early.
func (t *Tree) SearchNear(rect Rect, delta float64, fn func(id int, p []float64) bool) {
	if t.root == nil {
		return
	}
	t.searchNear(t.root, rect, delta, fn)
}

func (t *Tree) searchNear(n *node, rect Rect, delta float64, fn func(id int, p []float64) bool) bool {
	for _, e := range n.entries {
		if RectDist(rect, e.rect) > delta {
			continue
		}
		if n.leaf {
			if rect.MinDist(e.point) <= delta && !fn(e.id, e.point) {
				return false
			}
		} else if !t.searchNear(e.child, rect, delta, fn) {
			return false
		}
	}
	return true
}

// IDsNear collects the ids of all points within delta of rect.
func (t *Tree) IDsNear(rect Rect, delta float64) []int {
	return t.AppendIDsNear(nil, rect, delta)
}

// AppendIDsNear appends the ids of all points within delta of rect to dst
// and returns it, letting hot-path callers reuse one buffer across queries.
func (t *Tree) AppendIDsNear(dst []int, rect Rect, delta float64) []int {
	t.SearchNear(rect, delta, func(id int, _ []float64) bool {
		dst = append(dst, id)
		return true
	})
	return dst
}

// All calls fn for every point in the tree.
func (t *Tree) All(fn func(id int, p []float64) bool) {
	if t.root == nil {
		return
	}
	t.all(t.root, fn)
}

func (t *Tree) all(n *node, fn func(id int, p []float64) bool) bool {
	for _, e := range n.entries {
		if n.leaf {
			if !fn(e.id, e.point) {
				return false
			}
		} else if !t.all(e.child, fn) {
			return false
		}
	}
	return true
}

// Depth returns the height of the tree (0 when empty).
func (t *Tree) Depth() int {
	d := 0
	for n := t.root; n != nil; {
		d++
		if n.leaf || len(n.entries) == 0 {
			break
		}
		n = n.entries[0].child
	}
	return d
}
