package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r, err := NewRect([]float64{0, 0}, []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains([]float64{1, 1}) || r.Contains([]float64{3, 1}) {
		t.Error("Contains wrong")
	}
	if got := r.Area(); got != 8 {
		t.Errorf("Area = %g, want 8", got)
	}
	if got := r.Margin(); got != 6 {
		t.Errorf("Margin = %g, want 6", got)
	}
	if r.Dim() != 2 {
		t.Errorf("Dim = %d", r.Dim())
	}
}

func TestNewRectErrors(t *testing.T) {
	if _, err := NewRect([]float64{0}, []float64{1, 2}); err == nil {
		t.Error("dim mismatch should error")
	}
	if _, err := NewRect([]float64{2}, []float64{1}); err == nil {
		t.Error("lo > hi should error")
	}
}

func TestRectUnionIntersects(t *testing.T) {
	a, _ := NewRect([]float64{0, 0}, []float64{1, 1})
	b, _ := NewRect([]float64{2, 2}, []float64{3, 3})
	if a.Intersects(b) {
		t.Error("disjoint rects intersect")
	}
	u := a.Union(b)
	if u.Lo[0] != 0 || u.Hi[1] != 3 {
		t.Errorf("Union = %+v", u)
	}
	c, _ := NewRect([]float64{0.5, 0.5}, []float64{2.5, 2.5})
	if !a.Intersects(c) || !b.Intersects(c) {
		t.Error("overlapping rects do not intersect")
	}
	// Touching boundaries count as intersecting.
	d, _ := NewRect([]float64{1, 0}, []float64{2, 1})
	if !a.Intersects(d) {
		t.Error("touching rects should intersect")
	}
}

func TestMinMaxDist(t *testing.T) {
	r, _ := NewRect([]float64{0, 0}, []float64{2, 2})
	cases := []struct {
		p        []float64
		min, max float64
	}{
		{[]float64{1, 1}, 0, math.Sqrt2},                // inside, farthest corner √2
		{[]float64{3, 1}, 1, math.Sqrt(9 + 1)},          // right of box
		{[]float64{-1, -1}, math.Sqrt2, 3 * math.Sqrt2}, // below-left corner
		{[]float64{1, 5}, 3, math.Sqrt(1 + 25)},         // above
	}
	for _, c := range cases {
		if got := r.MinDist(c.p); math.Abs(got-c.min) > 1e-12 {
			t.Errorf("MinDist(%v) = %g, want %g", c.p, got, c.min)
		}
		if got := r.MaxDist(c.p); math.Abs(got-c.max) > 1e-12 {
			t.Errorf("MaxDist(%v) = %g, want %g", c.p, got, c.max)
		}
	}
}

func TestRectDist(t *testing.T) {
	a, _ := NewRect([]float64{0, 0}, []float64{1, 1})
	b, _ := NewRect([]float64{4, 5}, []float64{6, 7})
	want := math.Sqrt(9 + 16)
	if got := RectDist(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("RectDist = %g, want %g", got, want)
	}
	if got := RectDist(a, a); got != 0 {
		t.Errorf("RectDist(self) = %g", got)
	}
}

func TestExpand(t *testing.T) {
	r, _ := NewRect([]float64{0, 0}, []float64{1, 1})
	e := r.Expand(0.5)
	if e.Lo[0] != -0.5 || e.Hi[1] != 1.5 {
		t.Errorf("Expand = %+v", e)
	}
}

func TestBoundingBox(t *testing.T) {
	pts := [][]float64{{1, 5}, {-2, 3}, {4, 0}}
	b := BoundingBox(pts)
	if b.Lo[0] != -2 || b.Lo[1] != 0 || b.Hi[0] != 4 || b.Hi[1] != 5 {
		t.Errorf("BoundingBox = %+v", b)
	}
	defer func() {
		if recover() == nil {
			t.Error("BoundingBox(nil) should panic")
		}
	}()
	BoundingBox(nil)
}

func TestInsertAndSearchSmall(t *testing.T) {
	var tr Tree
	pts := [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {10, 10}}
	for i, p := range pts {
		if err := tr.Insert(p, i); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	q, _ := NewRect([]float64{0.5, 0.5}, []float64{3.5, 3.5})
	var got []int
	tr.Search(q, func(id int, _ []float64) bool {
		got = append(got, id)
		return true
	})
	sort.Ints(got)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Search = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Search = %v, want %v", got, want)
		}
	}
}

func TestInsertDimMismatch(t *testing.T) {
	var tr Tree
	if err := tr.Insert([]float64{1, 2}, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]float64{1}, 1); err == nil {
		t.Fatal("dim mismatch should error")
	}
}

func TestInsertCopiesPoint(t *testing.T) {
	var tr Tree
	p := []float64{1, 2}
	if err := tr.Insert(p, 0); err != nil {
		t.Fatal(err)
	}
	p[0] = 99
	q, _ := NewRect([]float64{0, 0}, []float64{3, 3})
	found := false
	tr.Search(q, func(_ int, pt []float64) bool {
		found = pt[0] == 1
		return true
	})
	if !found {
		t.Fatal("Insert did not copy the point")
	}
}

func TestSearchEarlyStop(t *testing.T) {
	var tr Tree
	for i := 0; i < 50; i++ {
		if err := tr.Insert([]float64{float64(i)}, i); err != nil {
			t.Fatal(err)
		}
	}
	q, _ := NewRect([]float64{0}, []float64{100})
	count := 0
	tr.Search(q, func(_ int, _ []float64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestDepthGrows(t *testing.T) {
	var tr Tree
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		if err := tr.Insert([]float64{rng.Float64() * 100, rng.Float64() * 100}, i); err != nil {
			t.Fatal(err)
		}
	}
	if d := tr.Depth(); d < 2 {
		t.Fatalf("Depth = %d after 500 inserts", d)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// All must visit every point exactly once.
	seen := make(map[int]bool)
	tr.All(func(id int, _ []float64) bool {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
		return true
	})
	if len(seen) != 500 {
		t.Fatalf("All visited %d points", len(seen))
	}
}

// Property: rect Search matches brute-force filtering.
func TestQuickSearchMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(3)
		n := 1 + rng.Intn(200)
		pts := make([][]float64, n)
		var tr Tree
		for i := range pts {
			pts[i] = make([]float64, d)
			for j := range pts[i] {
				pts[i][j] = rng.Float64() * 10
			}
			if err := tr.Insert(pts[i], i); err != nil {
				return false
			}
		}
		lo := make([]float64, d)
		hi := make([]float64, d)
		for j := 0; j < d; j++ {
			a, b := rng.Float64()*10, rng.Float64()*10
			lo[j], hi[j] = math.Min(a, b), math.Max(a, b)
		}
		q := Rect{Lo: lo, Hi: hi}
		var got []int
		tr.Search(q, func(id int, _ []float64) bool {
			got = append(got, id)
			return true
		})
		var want []int
		for i, p := range pts {
			if q.Contains(p) {
				want = append(want, i)
			}
		}
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: SearchNear matches brute-force distance filtering.
func TestQuickSearchNearMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(3)
		n := 1 + rng.Intn(150)
		pts := make([][]float64, n)
		var tr Tree
		for i := range pts {
			pts[i] = make([]float64, d)
			for j := range pts[i] {
				pts[i][j] = rng.Float64() * 10
			}
			if err := tr.Insert(pts[i], i); err != nil {
				return false
			}
		}
		lo := make([]float64, d)
		hi := make([]float64, d)
		for j := 0; j < d; j++ {
			a, b := rng.Float64()*10, rng.Float64()*10
			lo[j], hi[j] = math.Min(a, b), math.Max(a, b)
		}
		q := Rect{Lo: lo, Hi: hi}
		delta := rng.Float64() * 3
		got := tr.IDsNear(q, delta)
		var want []int
		for i, p := range pts {
			if q.MinDist(p) <= delta {
				want = append(want, i)
			}
		}
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: MinDist ≤ dist(p, x) ≤ MaxDist for every x in the rect.
func TestQuickMinMaxDistEnvelope(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(4)
		lo := make([]float64, d)
		hi := make([]float64, d)
		for j := 0; j < d; j++ {
			a, b := rng.NormFloat64()*5, rng.NormFloat64()*5
			lo[j], hi[j] = math.Min(a, b), math.Max(a, b)
		}
		r := Rect{Lo: lo, Hi: hi}
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.NormFloat64() * 8
		}
		for trial := 0; trial < 10; trial++ {
			x := make([]float64, d)
			for j := range x {
				x[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
			}
			var dist float64
			for j := range x {
				dd := x[j] - p[j]
				dist += dd * dd
			}
			dist = math.Sqrt(dist)
			if dist < r.MinDist(p)-1e-9 || dist > r.MaxDist(p)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([][]float64, 10000)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tr Tree
		for j, p := range pts {
			if err := tr.Insert(p, j); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSearchNear(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var tr Tree
	for i := 0; i < 10000; i++ {
		if err := tr.Insert([]float64{rng.Float64() * 100, rng.Float64() * 100}, i); err != nil {
			b.Fatal(err)
		}
	}
	q, _ := NewRect([]float64{40, 40}, []float64{45, 45})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.IDsNear(q, 5)
	}
}
