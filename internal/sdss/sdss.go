// Package sdss generates and serializes a synthetic galaxy catalog shaped
// like the Sloan Digital Sky Survey extract used in the paper's case study
// (§6.4): each object carries uncertain position and redshift attributes
// modeled as Gaussians, the representation the paper itself adopts ("the
// objects ... are commonly Gaussian distributions", §1).
//
// Substitution note (see DESIGN.md): the real SDSS archive is not available
// offline, so the catalog is synthetic, but the algorithms only ever consume
// the per-tuple distributions, whose family and spread this generator
// matches.
package sdss

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"olgapro/internal/dist"
)

// Galaxy is one catalog object with uncertain attributes. The *Err fields
// are 1σ measurement errors; the mean fields are the catalog estimates.
type Galaxy struct {
	ObjID       int64
	RA, Dec     float64 // position, degrees (J2000)
	RAErr       float64
	DecErr      float64
	Redshift    float64
	RedshiftErr float64
}

// RedshiftDist returns the redshift as an uncertain scalar attribute.
func (g Galaxy) RedshiftDist() dist.Dist {
	return dist.Normal{Mu: g.Redshift, Sigma: g.RedshiftErr}
}

// PosDist returns the position (ra, dec) as an uncertain 2-vector.
func (g Galaxy) PosDist() *dist.Independent {
	return dist.NewIndependent(
		dist.Normal{Mu: g.RA, Sigma: g.RAErr},
		dist.Normal{Mu: g.Dec, Sigma: g.DecErr},
	)
}

// Catalog is a set of galaxies.
type Catalog struct {
	Galaxies []Galaxy
}

// GenerateConfig controls synthetic catalog generation. The zero value is
// usable and mirrors an SDSS-like stripe.
type GenerateConfig struct {
	N    int   // number of galaxies (default 1000)
	Seed int64 // RNG seed

	// Field extents (defaults: RA ∈ [150,200), Dec ∈ [0,40)).
	RAMin, RAMax   float64
	DecMin, DecMax float64

	// Redshift distribution: Gamma(shape, scale) + floor, defaulting to
	// shape 2.2, scale 0.09, floor 0.01, giving the bulk in z ∈ [0.05, 0.6].
	ZShape, ZScale, ZFloor float64

	// Relative errors: position error in arcsec (default 0.1–0.5″) and
	// redshift error as a fraction of z (default 2–8 %).
	PosErrArcsecMin, PosErrArcsecMax float64
	ZRelErrMin, ZRelErrMax           float64
}

func (c GenerateConfig) normalize() GenerateConfig {
	if c.N <= 0 {
		c.N = 1000
	}
	if c.RAMax <= c.RAMin {
		c.RAMin, c.RAMax = 150, 200
	}
	if c.DecMax <= c.DecMin {
		c.DecMin, c.DecMax = 0, 40
	}
	if c.ZShape <= 0 {
		c.ZShape = 2.2
	}
	if c.ZScale <= 0 {
		c.ZScale = 0.09
	}
	if c.ZFloor <= 0 {
		c.ZFloor = 0.01
	}
	if c.PosErrArcsecMax <= c.PosErrArcsecMin || c.PosErrArcsecMin <= 0 {
		c.PosErrArcsecMin, c.PosErrArcsecMax = 0.1, 0.5
	}
	if c.ZRelErrMax <= c.ZRelErrMin || c.ZRelErrMin <= 0 {
		c.ZRelErrMin, c.ZRelErrMax = 0.02, 0.08
	}
	return c
}

// Generate builds a synthetic catalog.
func Generate(cfg GenerateConfig) *Catalog {
	cfg = cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	zdist := dist.Gamma{K: cfg.ZShape, Theta: cfg.ZScale, Loc: cfg.ZFloor}
	cat := &Catalog{Galaxies: make([]Galaxy, cfg.N)}
	for i := range cat.Galaxies {
		z := zdist.Sample(rng)
		posErrDeg := (cfg.PosErrArcsecMin +
			rng.Float64()*(cfg.PosErrArcsecMax-cfg.PosErrArcsecMin)) / 3600
		cat.Galaxies[i] = Galaxy{
			ObjID:       1_000_000 + int64(i),
			RA:          cfg.RAMin + rng.Float64()*(cfg.RAMax-cfg.RAMin),
			Dec:         cfg.DecMin + rng.Float64()*(cfg.DecMax-cfg.DecMin),
			RAErr:       posErrDeg,
			DecErr:      posErrDeg,
			Redshift:    z,
			RedshiftErr: z * (cfg.ZRelErrMin + rng.Float64()*(cfg.ZRelErrMax-cfg.ZRelErrMin)),
		}
	}
	return cat
}

var csvHeader = []string{"objID", "ra", "dec", "raErr", "decErr", "redshift", "redshiftErr"}

// WriteCSV serializes the catalog with a header row.
func (c *Catalog) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("sdss: write header: %w", err)
	}
	rec := make([]string, len(csvHeader))
	for _, g := range c.Galaxies {
		rec[0] = strconv.FormatInt(g.ObjID, 10)
		rec[1] = strconv.FormatFloat(g.RA, 'g', 17, 64)
		rec[2] = strconv.FormatFloat(g.Dec, 'g', 17, 64)
		rec[3] = strconv.FormatFloat(g.RAErr, 'g', 17, 64)
		rec[4] = strconv.FormatFloat(g.DecErr, 'g', 17, 64)
		rec[5] = strconv.FormatFloat(g.Redshift, 'g', 17, 64)
		rec[6] = strconv.FormatFloat(g.RedshiftErr, 'g', 17, 64)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("sdss: write row for %d: %w", g.ObjID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a catalog written by WriteCSV.
func ReadCSV(r io.Reader) (*Catalog, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("sdss: read header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("sdss: header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("sdss: header column %d is %q, want %q", i, header[i], h)
		}
	}
	cat := &Catalog{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return cat, nil
		}
		if err != nil {
			return nil, fmt.Errorf("sdss: line %d: %w", line, err)
		}
		var g Galaxy
		g.ObjID, err = strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sdss: line %d objID: %w", line, err)
		}
		fields := []*float64{&g.RA, &g.Dec, &g.RAErr, &g.DecErr, &g.Redshift, &g.RedshiftErr}
		for i, dst := range fields {
			v, err := strconv.ParseFloat(rec[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("sdss: line %d column %s: %w", line, csvHeader[i+1], err)
			}
			*dst = v
		}
		if g.RedshiftErr <= 0 || g.RAErr <= 0 || g.DecErr <= 0 {
			return nil, fmt.Errorf("sdss: line %d: non-positive error column", line)
		}
		cat.Galaxies = append(cat.Galaxies, g)
	}
}
