package sdss

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGenerateDefaults(t *testing.T) {
	cat := Generate(GenerateConfig{Seed: 1})
	if len(cat.Galaxies) != 1000 {
		t.Fatalf("default N = %d", len(cat.Galaxies))
	}
	ids := make(map[int64]bool)
	for _, g := range cat.Galaxies {
		if g.RA < 150 || g.RA >= 200 || g.Dec < 0 || g.Dec >= 40 {
			t.Fatalf("galaxy outside field: ra=%g dec=%g", g.RA, g.Dec)
		}
		if g.Redshift <= 0 {
			t.Fatalf("non-positive redshift %g", g.Redshift)
		}
		if g.RedshiftErr <= 0 || g.RAErr <= 0 || g.DecErr <= 0 {
			t.Fatalf("non-positive error on %d", g.ObjID)
		}
		if g.RedshiftErr > 0.2*g.Redshift {
			t.Fatalf("redshift error %g too large for z=%g", g.RedshiftErr, g.Redshift)
		}
		if ids[g.ObjID] {
			t.Fatalf("duplicate objID %d", g.ObjID)
		}
		ids[g.ObjID] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenerateConfig{N: 10, Seed: 7})
	b := Generate(GenerateConfig{N: 10, Seed: 7})
	for i := range a.Galaxies {
		if a.Galaxies[i] != b.Galaxies[i] {
			t.Fatal("same seed differs")
		}
	}
	c := Generate(GenerateConfig{N: 10, Seed: 8})
	if a.Galaxies[0] == c.Galaxies[0] {
		t.Fatal("different seeds identical")
	}
}

func TestDistAccessors(t *testing.T) {
	g := Galaxy{RA: 180, Dec: 30, RAErr: 0.001, DecErr: 0.002, Redshift: 0.4, RedshiftErr: 0.02}
	zd := g.RedshiftDist()
	if zd.Mean() != 0.4 || math.Abs(zd.Variance()-0.0004) > 1e-15 {
		t.Fatalf("redshift dist mean/var = %g/%g", zd.Mean(), zd.Variance())
	}
	pd := g.PosDist()
	if pd.Dim() != 2 {
		t.Fatalf("pos dim = %d", pd.Dim())
	}
	m := pd.MeanVec()
	if m[0] != 180 || m[1] != 30 {
		t.Fatalf("pos mean = %v", m)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cat := Generate(GenerateConfig{N: 50, Seed: 3})
	var buf bytes.Buffer
	if err := cat.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Galaxies) != 50 {
		t.Fatalf("round trip lost rows: %d", len(back.Galaxies))
	}
	for i := range cat.Galaxies {
		if cat.Galaxies[i] != back.Galaxies[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, cat.Galaxies[i], back.Galaxies[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "a,b\n"},
		{"wrong header names", "objID,ra,dec,raErr,decErr,redshift,zerr\n"},
		{"bad objID", "objID,ra,dec,raErr,decErr,redshift,redshiftErr\nxx,1,2,0.1,0.1,0.5,0.01\n"},
		{"bad float", "objID,ra,dec,raErr,decErr,redshift,redshiftErr\n1,xx,2,0.1,0.1,0.5,0.01\n"},
		{"zero error col", "objID,ra,dec,raErr,decErr,redshift,redshiftErr\n1,1,2,0,0.1,0.5,0.01\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(c.in)); err == nil {
				t.Fatalf("expected error for %q", c.name)
			}
		})
	}
}

func TestReadCSVEmptyCatalog(t *testing.T) {
	cat, err := ReadCSV(strings.NewReader("objID,ra,dec,raErr,decErr,redshift,redshiftErr\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Galaxies) != 0 {
		t.Fatalf("expected empty catalog, got %d", len(cat.Galaxies))
	}
}
