package ecdf

import (
	"encoding/binary"
	"math"
	"slices"
	"testing"
)

// decodePairs reads (mean, sd) pairs from raw fuzz bytes, sanitizing to
// finite means and non-negative finite sds, capped at maxPairs.
func decodePairs(data []byte, maxPairs int) (means, sds []float64) {
	for len(data) >= 16 && len(means) < maxPairs {
		m := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
		s := math.Float64frombits(binary.LittleEndian.Uint64(data[8:16]))
		data = data[16:]
		if math.IsNaN(m) || math.IsInf(m, 0) || math.IsNaN(s) || math.IsInf(s, 0) {
			continue
		}
		if math.Abs(m) > 1e9 {
			m = math.Mod(m, 1e9)
		}
		s = math.Abs(s)
		if s > 1e9 {
			s = math.Mod(s, 1e9)
		}
		means = append(means, m)
		sds = append(sds, s)
	}
	return means, sds
}

// sanitizePos clamps a fuzzed float into [0, hi], mapping non-finite to def.
func sanitizePos(v, hi, def float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return def
	}
	v = math.Abs(v)
	if v > hi {
		v = math.Mod(v, hi)
	}
	return v
}

// envelopeFromPairs builds a structurally valid envelope (per-sample
// lower ≤ mean ≤ upper) from fuzzed (mean, sd) pairs.
func envelopeFromPairs(means, sds []float64, z float64) Envelope {
	n := len(means)
	mean := make([]float64, n)
	lower := make([]float64, n)
	upper := make([]float64, n)
	for i := range means {
		mean[i] = means[i]
		lower[i] = means[i] - z*sds[i]
		upper[i] = means[i] + z*sds[i]
	}
	slices.Sort(mean)
	slices.Sort(lower)
	slices.Sort(upper)
	return Envelope{Mean: FromSorted(mean), Lower: FromSorted(lower), Upper: FromSorted(upper)}
}

// FuzzDiscrepancyBound feeds structurally valid envelopes derived from raw
// bytes into Algorithm 3 and asserts its invariants: the bound is a
// probability-difference (within [0, 1]), scratch reuse changes nothing, and
// on small inputs the O(m) merge implementation matches the O(m²) naive
// reference.
func FuzzDiscrepancyBound(f *testing.F) {
	seed := make([]byte, 0, 64)
	for _, v := range []float64{0, 1, 0.5, 0.2, -1, 0.7, 2, 0} {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(v))
	}
	f.Add(seed, 2.0, 0.1)
	f.Add(seed[:16], 0.0, 0.0)
	f.Add([]byte("0123456789abcdef0123456789abcdef"), 1.5, 0.5)
	f.Fuzz(func(t *testing.T, data []byte, z, lambda float64) {
		means, sds := decodePairs(data, 128)
		if len(means) == 0 {
			t.Skip("no decodable pairs")
		}
		z = sanitizePos(z, 100, 2)
		lambda = sanitizePos(lambda, 100, 0.1)
		env := envelopeFromPairs(means, sds, z)

		var s BoundScratch
		b := env.DiscrepancyBoundWith(&s, lambda)
		if b < 0 {
			t.Fatalf("negative bound %g", b)
		}
		if b > 1+1e-9 {
			t.Fatalf("bound %g exceeds 1", b)
		}
		if b2 := env.DiscrepancyBound(lambda); math.Abs(b-b2) > 1e-12 {
			t.Fatalf("scratch changes the bound: %g vs %g", b, b2)
		}
		// Scratch reuse across calls must be stateless.
		if b3 := env.DiscrepancyBoundWith(&s, lambda); b3 != b {
			t.Fatalf("scratch reuse changes the bound: %g vs %g", b, b3)
		}
		if len(means) <= 32 {
			naive := env.discrepancyBoundNaive(lambda)
			if math.Abs(b-naive) > 1e-9 {
				t.Fatalf("bound %g ≠ naive %g (m=%d, z=%g, λ=%g)", b, naive, len(means), z, lambda)
			}
		}
	})
}
