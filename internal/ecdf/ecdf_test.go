package ecdf

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := New([]float64{3, 1, 2, 2})
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
	cases := []struct{ y, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.CDF(c.y); got != c.want {
			t.Errorf("CDF(%g) = %g, want %g", c.y, got, c.want)
		}
	}
	if e.Min() != 1 || e.Max() != 3 || e.Range() != 2 {
		t.Errorf("Min/Max/Range = %g/%g/%g", e.Min(), e.Max(), e.Range())
	}
	if got := e.Mean(); got != 2 {
		t.Errorf("Mean = %g, want 2", got)
	}
	if got := e.Variance(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Variance = %g, want 0.5", got)
	}
	if got := e.IntervalProb(1, 2); got != 0.5 {
		t.Errorf("IntervalProb(1,2) = %g, want 0.5", got)
	}
	if got := e.IntervalProb(2, 1); got != 0 {
		t.Errorf("IntervalProb(2,1) = %g, want 0", got)
	}
}

func TestECDFInputNotMutated(t *testing.T) {
	in := []float64{3, 1, 2}
	New(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("New mutated its input: %v", in)
	}
}

func TestFromSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSorted([]float64{2, 1})
}

func TestEmptyECDF(t *testing.T) {
	e := New(nil)
	if e.CDF(1) != 0 {
		t.Errorf("empty CDF should be 0")
	}
	if !math.IsNaN(e.Mean()) || !math.IsNaN(e.Min()) || !math.IsNaN(e.Quantile(0.5)) {
		t.Errorf("empty moments should be NaN")
	}
	edges, dens := e.Histogram(4)
	if edges != nil || dens != nil {
		t.Errorf("empty histogram should be nil")
	}
}

func TestQuantile(t *testing.T) {
	e := New([]float64{10, 20, 30, 40})
	cases := []struct{ p, want float64 }{
		{0, 10}, {0.25, 10}, {0.26, 20}, {0.5, 20}, {0.75, 30}, {0.76, 40}, {1, 40},
	}
	for _, c := range cases {
		if got := e.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestHistogramIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	e := New(xs)
	edges, dens := e.Histogram(32)
	if len(edges) != 32 || len(dens) != 32 {
		t.Fatalf("histogram sizes %d/%d", len(edges), len(dens))
	}
	w := e.Range() / 32
	var total float64
	for _, d := range dens {
		total += d * w
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("histogram mass = %g, want 1", total)
	}
}

func TestKSIdentical(t *testing.T) {
	e := New([]float64{1, 2, 3})
	if got := KS(e, e); got != 0 {
		t.Fatalf("KS(e,e) = %g", got)
	}
	if got := Discrepancy(e, e); got != 0 {
		t.Fatalf("D(e,e) = %g", got)
	}
}

func TestKSDisjoint(t *testing.T) {
	a := New([]float64{0, 1})
	b := New([]float64{10, 11})
	if got := KS(a, b); got != 1 {
		t.Fatalf("KS(disjoint) = %g, want 1", got)
	}
	if got := Discrepancy(a, b); got != 1 {
		t.Fatalf("D(disjoint) = %g, want 1", got)
	}
}

func TestKSHandComputed(t *testing.T) {
	// F: mass at 1, 2; G: mass at 1.5, 2. Max gap at y ∈ [1, 1.5): 0.5.
	f := New([]float64{1, 2})
	g := New([]float64{1.5, 2})
	if got := KS(f, g); got != 0.5 {
		t.Fatalf("KS = %g, want 0.5", got)
	}
}

func TestDiscrepancyTwoSided(t *testing.T) {
	// F concentrates in the middle, G at the edges; the two-sided interval
	// catching F's bulk shows D > KS.
	f := New([]float64{4.9, 5, 5.1, 5.2})
	g := New([]float64{0, 0.1, 9.9, 10})
	ks := KS(f, g)
	d := Discrepancy(f, g)
	if d < ks {
		t.Fatalf("D = %g < KS = %g", d, ks)
	}
	// Interval [4.9, 5.2] has F-prob 1, G-prob 0 → D = 1.
	if d != 1 {
		t.Fatalf("D = %g, want 1", d)
	}
}

func TestLambdaDiscrepancyShrinksWithLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 300)
	ys := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()*1.2 + 0.2
	}
	f, g := New(xs), New(ys)
	prev := math.Inf(1)
	for _, lambda := range []float64{0, 0.5, 1, 2, 4} {
		d := DiscrepancyLambda(f, g, lambda)
		if d > prev+1e-12 {
			t.Fatalf("Dλ increased with λ: %g → %g at λ=%g", prev, d, lambda)
		}
		prev = d
	}
}

func TestDiscrepancyLeTwiceKS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		xs := make([]float64, 100)
		ys := make([]float64, 150)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		for i := range ys {
			ys[i] = rng.ExpFloat64()
		}
		f, g := New(xs), New(ys)
		d, ks := Discrepancy(f, g), KS(f, g)
		if d > 2*ks+1e-12 {
			t.Fatalf("D = %g > 2·KS = %g", d, 2*ks)
		}
		if d < ks-1e-12 {
			t.Fatalf("D = %g < KS = %g (two-sided must dominate one-sided)", d, ks)
		}
	}
}

// Property: the O(m log m) λ-discrepancy equals the O(m²) reference.
func TestQuickLambdaDiscrepancyMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny := 2+rng.Intn(40), 2+rng.Intn(40)
		xs := make([]float64, nx)
		ys := make([]float64, ny)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 3
		}
		for i := range ys {
			ys[i] = rng.NormFloat64()*2 + rng.Float64()
		}
		a, b := New(xs), New(ys)
		lambda := rng.Float64() * 2
		fast := DiscrepancyLambda(a, b, lambda)
		naive := discLambdaNaive(a, b, lambda)
		return math.Abs(fast-naive) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: KS and discrepancy are symmetric and lie in [0,1].
func TestQuickMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		ys := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		for i := range ys {
			ys[i] = rng.NormFloat64()
		}
		a, b := New(xs), New(ys)
		ks1, ks2 := KS(a, b), KS(b, a)
		d1, d2 := Discrepancy(a, b), Discrepancy(b, a)
		return ks1 == ks2 && d1 == d2 &&
			ks1 >= 0 && ks1 <= 1 && d1 >= 0 && d1 <= 1 &&
			d1 >= ks1-1e-12 && d1 <= 2*ks1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKSAgainstAnalytic(t *testing.T) {
	// Large uniform sample against the exact uniform CDF: KS should be small.
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	e := New(xs)
	uniformCDF := func(y float64) float64 {
		return math.Max(0, math.Min(1, y))
	}
	if got := KSAgainst(e, uniformCDF); got > 0.02 {
		t.Fatalf("KS against analytic = %g, want < 0.02", got)
	}
	// Against a shifted CDF the distance must be ≈ the shift.
	shifted := func(y float64) float64 { return math.Max(0, math.Min(1, y+0.3)) }
	if got := KSAgainst(e, shifted); math.Abs(got-0.3) > 0.02 {
		t.Fatalf("KS against shifted = %g, want ≈ 0.3", got)
	}
}

func makeEnvelope(rng *rand.Rand, n int) Envelope {
	// Same input "samples": mean outputs plus/minus a random sample-wise gap.
	mean := make([]float64, n)
	lower := make([]float64, n)
	upper := make([]float64, n)
	for i := range mean {
		mean[i] = rng.NormFloat64() * 2
		gap := math.Abs(rng.NormFloat64()) * 0.3
		lower[i] = mean[i] - gap
		upper[i] = mean[i] + gap
	}
	return Envelope{Mean: New(mean), Lower: New(lower), Upper: New(upper)}
}

// Property: Algorithm 3 equals the naive O(m²) enumeration.
func TestQuickDiscrepancyBoundMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := makeEnvelope(rng, 2+rng.Intn(30))
		lambda := rng.Float64() * 1.5
		fast := env.DiscrepancyBound(lambda)
		naive := env.discrepancyBoundNaive(lambda)
		return math.Abs(fast-naive) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The bound must dominate the actual λ-discrepancy between the mean CDF and
// any CDF generated by a function inside the envelope. We emulate such
// functions by sample-wise convex combinations of the envelope outputs.
func TestDiscrepancyBoundDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 200
	mean := make([]float64, n)
	lower := make([]float64, n)
	upper := make([]float64, n)
	for i := range mean {
		mean[i] = rng.NormFloat64()
		gap := 0.1 + 0.2*rng.Float64()
		lower[i] = mean[i] - gap
		upper[i] = mean[i] + gap
	}
	env := Envelope{Mean: New(mean), Lower: New(lower), Upper: New(upper)}
	for _, lambda := range []float64{0, 0.05, 0.2} {
		bound := env.DiscrepancyBound(lambda)
		for trial := 0; trial < 10; trial++ {
			inside := make([]float64, n)
			for i := range inside {
				u := rng.Float64()
				inside[i] = lower[i]*u + upper[i]*(1-u)
			}
			actual := DiscrepancyLambda(New(inside), env.Mean, lambda)
			if actual > bound+1e-12 {
				t.Fatalf("λ=%g: actual Dλ %g exceeds bound %g", lambda, actual, bound)
			}
		}
	}
}

func TestIntervalBounds(t *testing.T) {
	env := Envelope{
		Mean:  New([]float64{1, 2, 3, 4}),
		Lower: New([]float64{0.5, 1.5, 2.5, 3.5}),
		Upper: New([]float64{1.5, 2.5, 3.5, 4.5}),
	}
	lo, mid, hi := env.IntervalBounds(1.6, 3.4)
	if lo > mid || mid > hi {
		t.Fatalf("bounds not ordered: %g %g %g", lo, mid, hi)
	}
	if lo < 0 || hi > 1 {
		t.Fatalf("bounds out of range: %g %g", lo, hi)
	}
	// mid = F̂(3.4) − F̂(1.6) = 0.75 − 0.25 = 0.5.
	if mid != 0.5 {
		t.Fatalf("mid = %g, want 0.5", mid)
	}
}

func TestKSBound(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	env := makeEnvelope(rng, 150)
	bound := env.KSBound()
	if bound < 0 || bound > 1 {
		t.Fatalf("KSBound = %g out of range", bound)
	}
	// A boundary function's KS must be ≤ the bound by definition.
	if ks := KS(env.Mean, env.Lower); ks > bound+1e-15 {
		t.Fatalf("KS(mean,lower) = %g > bound %g", ks, bound)
	}
	if ks := KS(env.Mean, env.Upper); ks > bound+1e-15 {
		t.Fatalf("KS(mean,upper) = %g > bound %g", ks, bound)
	}
	// Interior functions are also dominated (Prop 4.2).
	vals := env.Mean.Values()
	lo := env.Lower.Values()
	hi := env.Upper.Values()
	inside := make([]float64, len(vals))
	for i := range inside {
		u := rng.Float64()
		inside[i] = lo[i]*u + hi[i]*(1-u)
	}
	if ks := KS(New(inside), env.Mean); ks > bound+1e-12 {
		t.Fatalf("interior KS %g exceeds bound %g", ks, bound)
	}
}

func TestDegenerateEnvelopeZeroBound(t *testing.T) {
	// With zero-width envelope there is no GP error.
	xs := []float64{1, 2, 3}
	env := Envelope{Mean: New(xs), Lower: New(xs), Upper: New(xs)}
	if got := env.DiscrepancyBound(0.1); got != 0 {
		t.Fatalf("zero-width envelope bound = %g, want 0", got)
	}
	if got := env.KSBound(); got != 0 {
		t.Fatalf("zero-width envelope KS bound = %g, want 0", got)
	}
}

func TestMergedValuesDedup(t *testing.T) {
	a := New([]float64{1, 2, 2, 3})
	b := New([]float64{2, 3, 4})
	got := mergedValues(a, b)
	want := []float64{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged = %v, want %v", got, want)
		}
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("merged not sorted: %v", got)
	}
}

func BenchmarkDiscrepancyLambda1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64() + 0.1
	}
	f, g := New(xs), New(ys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiscrepancyLambda(f, g, 0.05)
	}
}

func BenchmarkDiscrepancyBound1000(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	env := makeEnvelope(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.DiscrepancyBound(0.05)
	}
}

func TestTruncate(t *testing.T) {
	e := New([]float64{1, 2, 3, 4, 5})
	tr, tep := e.Truncate(2, 4)
	if tep != 0.6 {
		t.Fatalf("TEP = %g, want 0.6", tep)
	}
	if tr.Len() != 3 || tr.Min() != 2 || tr.Max() != 4 {
		t.Fatalf("truncated support [%g,%g] len %d", tr.Min(), tr.Max(), tr.Len())
	}
	// Conditional CDF: Pr[Y ≤ 3 | Y ∈ [2,4]] = 2/3.
	if got := tr.CDF(3); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("conditional CDF(3) = %g", got)
	}
	// Empty intersection.
	tr2, tep2 := e.Truncate(10, 20)
	if tep2 != 0 || tr2.Len() != 0 {
		t.Fatalf("empty truncation: tep=%g len=%d", tep2, tr2.Len())
	}
	// Inverted interval.
	tr3, tep3 := e.Truncate(4, 2)
	if tep3 != 0 || tr3.Len() != 0 {
		t.Fatalf("inverted truncation: tep=%g len=%d", tep3, tr3.Len())
	}
	// Whole support.
	tr4, tep4 := e.Truncate(0, 10)
	if tep4 != 1 || tr4.Len() != 5 {
		t.Fatalf("full truncation: tep=%g len=%d", tep4, tr4.Len())
	}
	// Original is untouched.
	if e.Len() != 5 {
		t.Fatalf("Truncate mutated the source")
	}
}
