package ecdf

import (
	"math"
)

// Envelope packs the three empirical output CDFs of the GP approach
// (paper §4): Mean is Ŷ′ from the posterior mean f̂, Lower is Y′_S from
// f_S = f̂ − z_α σ, and Upper is Y′_L from f_L = f̂ + z_α σ. Because the
// three functions are ordered pointwise and evaluated on the same input
// samples, Lower's outputs are sample-wise ≤ Mean's ≤ Upper's, which makes
// F_S(y) ≥ F̂(y) ≥ F_L(y) for every y (the smaller the function values, the
// larger the CDF).
type Envelope struct {
	Mean  *ECDF // Ŷ′, the distribution returned to the user
	Lower *ECDF // Y′_S, from the lower envelope function f_S
	Upper *ECDF // Y′_L, from the upper envelope function f_L
}

// MeanBounds returns the range the output mean can take over functions
// inside the confidence envelope. Because Lower's samples are pointwise ≤
// Mean's ≤ Upper's, the mean of any enveloped function's output lies in
// [Lower.Mean(), Upper.Mean()]. This is the value interval the uncertain
// relational algebra (internal/query) ranks and aggregates on.
func (e Envelope) MeanBounds() (lo, hi float64) {
	return e.Lower.Mean(), e.Upper.Mean()
}

// QuantileBounds returns the range the output p-quantile can take over
// functions inside the confidence envelope. F_S ≥ F̂ ≥ F_L pointwise implies
// the inverse CDFs are ordered the other way, so the p-quantile of any
// enveloped output lies in [Lower.Quantile(p), Upper.Quantile(p)].
func (e Envelope) QuantileBounds(p float64) (lo, hi float64) {
	return e.Lower.Quantile(p), e.Upper.Quantile(p)
}

// IntervalBounds returns the envelope bounds (ρ′_L, ρ̂′, ρ′_U) for the
// probability that the output falls in [a, b] (Eqs. 3–4):
//
//	ρ′_U = F_S(b) − F_L(a)
//	ρ′_L = max(0, F_L(b) − F_S(a))
func (e Envelope) IntervalBounds(a, b float64) (lo, mid, hi float64) {
	mid = e.Mean.CDF(b) - e.Mean.CDF(a)
	hi = e.Lower.CDF(b) - e.Upper.CDF(a)
	lo = math.Max(0, e.Upper.CDF(b)-e.Lower.CDF(a))
	if hi > 1 {
		hi = 1
	}
	if hi < 0 {
		hi = 0
	}
	return lo, mid, hi
}

// DiscrepancyBound implements Algorithm 3: it returns
//
//	ε_GP = sup_{[a,b]: b−a ≥ λ} max(ρ′_U − ρ̂′, ρ̂′ − ρ′_L)
//
// the λ-discrepancy error bound between the returned distribution Ŷ′ and
// any output Y˜′ produced by a function inside the confidence envelope.
//
// Decomposition used (writing F̂, F_S, F_L for the three CDFs):
//
//	ρ′_U − ρ̂′ = u(b) + v(a),   u = F_S − F̂ ≥ 0,  v = F̂ − F_L ≥ 0
//	ρ̂′ − ρ′_L = F̂(b) − F̂(a)                 when F_L(b) ≤ F_S(a)
//	          = w(b) + s(a), w = F̂ − F_L, s = F_S − F̂   otherwise
//
// For each left endpoint a the first regime's best b is just below the
// crossing point b₁ where F_L first exceeds F_S(a) (found by binary search,
// paper Step 4b), and the second regime uses a precomputed suffix maximum of
// w (paper Step 2). Total cost is O(m log m).
func (e Envelope) DiscrepancyBound(lambda float64) float64 {
	return e.DiscrepancyBoundWith(nil, lambda)
}

// BoundScratch holds the reusable work buffers of DiscrepancyBoundWith.
// The zero value is ready to use; buffers grow on demand and are retained,
// so the per-tuning-iteration bound computation stops allocating once warm.
type BoundScratch struct {
	vals, bs   []float64
	fh, fs, fl []float64
	sufU, sufW []float64
}

// growFloats resizes buf to length n, reusing capacity.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// DiscrepancyBoundWith is DiscrepancyBound with caller-provided scratch
// buffers (nil behaves like DiscrepancyBound and allocates).
//
// This is the per-tuning-iteration inner loop of Algorithm 5, so on top of
// the scratch reuse it exploits monotonicity throughout: the three supports
// are already sorted, so the merged support and the b-candidate set are
// linear merges rather than sorts, the CDF arrays are two-pointer walks
// rather than per-point binary searches, and the two search indices of the
// left-endpoint sweep (j0 at a+λ and the envelope crossing jt) only ever
// move forward as a grows. Total cost is O(m) after envelope construction.
func (e Envelope) DiscrepancyBoundWith(s *BoundScratch, lambda float64) float64 {
	if s == nil {
		s = &BoundScratch{}
	}
	s.vals = mergeSorted3(s.vals, e.Mean.xs, e.Lower.xs, e.Upper.xs)
	vals := s.vals
	m := len(vals)
	if m == 0 {
		return 0
	}
	s.bs = mergeShifted(s.bs, vals, lambda)
	bs := s.bs
	mb := len(bs)
	// CDF arrays at b-candidates, by merge walk (bs is ascending).
	s.fh = cdfAppend(s.fh, e.Mean.xs, bs, 1)  // F̂, +∞ sentinel = 1
	s.fs = cdfAppend(s.fs, e.Lower.xs, bs, 1) // F_S
	s.fl = cdfAppend(s.fl, e.Upper.xs, bs, 1) // F_L
	fh, fs, fl := s.fh, s.fs, s.fl
	// Suffix maxima of u = F_S − F̂ and w = F̂ − F_L, including the sentinel.
	s.sufU = growFloats(s.sufU, mb+2)
	s.sufW = growFloats(s.sufW, mb+2)
	sufU, sufW := s.sufU, s.sufW
	sufU[mb+1], sufW[mb+1] = 0, 0
	for i := mb; i >= 0; i-- {
		sufU[i] = math.Max(fs[i]-fh[i], sufU[i+1])
		sufW[i] = math.Max(fh[i]-fl[i], sufW[i+1])
	}
	var best float64
	// j0: first b-candidate ≥ a+λ (the sentinel mb when past the end).
	// jt: first b-candidate with F_L(b) > F_S(a).
	// Both advance monotonically: a+λ grows with a, F_S(a) is
	// non-decreasing in a, and fl is non-decreasing over candidates.
	j0, jt := 0, 0
	consider := func(fhA, fsA, flA, aPlusLambda float64) {
		for j0 < mb && bs[j0] < aPlusLambda {
			j0++
		}
		// Term 1: u(b) + v(a) over b ≥ a+λ.
		if t := sufU[j0] + (fhA - flA); t > best {
			best = t
		}
		for jt < mb && fl[jt] <= fsA {
			jt++
		}
		// Regime 1 (ρ′_L clamped to 0): b ∈ [a+λ, b₁); F̂ is constant on
		// candidate gaps, so its supremum there is F̂ at candidate jt−1.
		if jt > j0 {
			if t := fh[jt-1] - fhA; t > best {
				best = t
			}
		} else if jt == j0 && j0 < mb && bs[j0] > aPlusLambda {
			// The gap [a+λ, bs[j0]) is regime 1 with F̂ constant at fh[j0-1]
			// (or 0 when j0 == 0). Only matters when a+λ is not itself a
			// candidate, which cannot happen for support a; kept for safety.
			prev := 0.0
			if j0 > 0 {
				prev = fh[j0-1]
			}
			if t := prev - fhA; t > best {
				best = t
			}
		}
		// Regime 2: b ≥ max(a+λ, b₁) with ρ′_L > 0.
		k0 := jt
		if j0 > k0 {
			k0 = j0
		}
		if t := sufW[k0] + (fsA - fhA); t > best {
			best = t
		}
	}
	// a = −∞ sentinel.
	consider(0, 0, 0, math.Inf(-1))
	// a at each merged support point, with the three CDF values advanced by
	// merge walk rather than binary search.
	ih, is, il := 0, 0, 0
	invH := cdfScale(e.Mean.xs)
	invS := cdfScale(e.Lower.xs)
	invL := cdfScale(e.Upper.xs)
	for _, a := range vals {
		for ih < len(e.Mean.xs) && e.Mean.xs[ih] <= a {
			ih++
		}
		for is < len(e.Lower.xs) && e.Lower.xs[is] <= a {
			is++
		}
		for il < len(e.Upper.xs) && e.Upper.xs[il] <= a {
			il++
		}
		consider(float64(ih)*invH, float64(is)*invS, float64(il)*invL, a+lambda)
	}
	if best < 0 {
		best = 0
	}
	return best
}

// cdfScale returns 1/len(xs), the per-rank CDF increment (0 when empty,
// matching ECDF.CDF's empty-distribution convention).
func cdfScale(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return 1 / float64(len(xs))
}

// cdfAppend fills dst[:0] with CDF values of the sorted sample set xs at the
// ascending query points qs, appending sentinel as a final entry — a linear
// merge walk equivalent to calling ECDF.CDF per query.
func cdfAppend(dst, xs, qs []float64, sentinel float64) []float64 {
	dst = dst[:0]
	inv := cdfScale(xs)
	j := 0
	for _, q := range qs {
		for j < len(xs) && xs[j] <= q {
			j++
		}
		dst = append(dst, float64(j)*inv)
	}
	return append(dst, sentinel)
}

// mergeSorted3 fills dst[:0] with the deduplicated ascending union of three
// sorted slices — what appendMerged computes by concatenate-and-sort, in
// O(m) instead of O(m log m).
func mergeSorted3(dst, a, b, c []float64) []float64 {
	dst = dst[:0]
	i, j, k := 0, 0, 0
	for i < len(a) || j < len(b) || k < len(c) {
		v := math.Inf(1)
		if i < len(a) {
			v = a[i]
		}
		if j < len(b) && b[j] < v {
			v = b[j]
		}
		if k < len(c) && c[k] < v {
			v = c[k]
		}
		for i < len(a) && a[i] == v {
			i++
		}
		for j < len(b) && b[j] == v {
			j++
		}
		for k < len(c) && c[k] == v {
			k++
		}
		dst = append(dst, v)
	}
	return dst
}

// mergeShifted fills dst[:0] with the deduplicated ascending union of vals
// and vals+λ — the bCandidates set, by linear merge of the two (already
// sorted) sequences.
func mergeShifted(dst, vals []float64, lambda float64) []float64 {
	dst = dst[:0]
	if lambda <= 0 {
		return append(dst, vals...)
	}
	i, j := 0, 0
	n := len(vals)
	for i < n || j < n {
		v := math.Inf(1)
		if i < n {
			v = vals[i]
		}
		if j < n && vals[j]+lambda < v {
			v = vals[j] + lambda
		}
		for i < n && vals[i] == v {
			i++
		}
		for j < n && vals[j]+lambda == v {
			j++
		}
		dst = append(dst, v)
	}
	return dst
}

// discrepancyBoundNaive is the O(m²) reference used to validate
// DiscrepancyBound in tests: it enumerates the candidate grid directly.
func (e Envelope) discrepancyBoundNaive(lambda float64) float64 {
	vals := mergedValues(e.Mean, e.Lower, e.Upper)
	if len(vals) == 0 {
		return 0
	}
	as := append([]float64{vals[0] - lambda - 1}, vals...)
	bs := append(bCandidates(vals, lambda), vals[len(vals)-1]+lambda+1)
	var best float64
	for _, a := range as {
		for _, b := range bs {
			// Same floating-point admissibility expression as the fast
			// path (see discLambdaNaive): b ≥ fl(a+λ).
			if b < a+lambda {
				continue
			}
			lo, mid, hi := e.IntervalBounds(a, b)
			if d := hi - mid; d > best {
				best = d
			}
			if d := mid - lo; d > best {
				best = d
			}
		}
	}
	return best
}

// KSBound returns the KS-metric error bound of Proposition 4.2:
// the KS distance between Ŷ′ and the envelope output is maximized when the
// emulated function sits on an envelope boundary, so the bound is
// max(KS(Ŷ′, Y′_S), KS(Ŷ′, Y′_L)).
func (e Envelope) KSBound() float64 {
	return math.Max(KS(e.Mean, e.Lower), KS(e.Mean, e.Upper))
}
