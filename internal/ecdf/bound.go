package ecdf

import (
	"math"
	"sort"
)

// Envelope packs the three empirical output CDFs of the GP approach
// (paper §4): Mean is Ŷ′ from the posterior mean f̂, Lower is Y′_S from
// f_S = f̂ − z_α σ, and Upper is Y′_L from f_L = f̂ + z_α σ. Because the
// three functions are ordered pointwise and evaluated on the same input
// samples, Lower's outputs are sample-wise ≤ Mean's ≤ Upper's, which makes
// F_S(y) ≥ F̂(y) ≥ F_L(y) for every y (the smaller the function values, the
// larger the CDF).
type Envelope struct {
	Mean  *ECDF // Ŷ′, the distribution returned to the user
	Lower *ECDF // Y′_S, from the lower envelope function f_S
	Upper *ECDF // Y′_L, from the upper envelope function f_L
}

// IntervalBounds returns the envelope bounds (ρ′_L, ρ̂′, ρ′_U) for the
// probability that the output falls in [a, b] (Eqs. 3–4):
//
//	ρ′_U = F_S(b) − F_L(a)
//	ρ′_L = max(0, F_L(b) − F_S(a))
func (e Envelope) IntervalBounds(a, b float64) (lo, mid, hi float64) {
	mid = e.Mean.CDF(b) - e.Mean.CDF(a)
	hi = e.Lower.CDF(b) - e.Upper.CDF(a)
	lo = math.Max(0, e.Upper.CDF(b)-e.Lower.CDF(a))
	if hi > 1 {
		hi = 1
	}
	if hi < 0 {
		hi = 0
	}
	return lo, mid, hi
}

// DiscrepancyBound implements Algorithm 3: it returns
//
//	ε_GP = sup_{[a,b]: b−a ≥ λ} max(ρ′_U − ρ̂′, ρ̂′ − ρ′_L)
//
// the λ-discrepancy error bound between the returned distribution Ŷ′ and
// any output Y˜′ produced by a function inside the confidence envelope.
//
// Decomposition used (writing F̂, F_S, F_L for the three CDFs):
//
//	ρ′_U − ρ̂′ = u(b) + v(a),   u = F_S − F̂ ≥ 0,  v = F̂ − F_L ≥ 0
//	ρ̂′ − ρ′_L = F̂(b) − F̂(a)                 when F_L(b) ≤ F_S(a)
//	          = w(b) + s(a), w = F̂ − F_L, s = F_S − F̂   otherwise
//
// For each left endpoint a the first regime's best b is just below the
// crossing point b₁ where F_L first exceeds F_S(a) (found by binary search,
// paper Step 4b), and the second regime uses a precomputed suffix maximum of
// w (paper Step 2). Total cost is O(m log m).
func (e Envelope) DiscrepancyBound(lambda float64) float64 {
	vals := mergedValues(e.Mean, e.Lower, e.Upper)
	m := len(vals)
	if m == 0 {
		return 0
	}
	bs := bCandidates(vals, lambda)
	mb := len(bs)
	// CDF arrays at b-candidates.
	fh := make([]float64, mb+1) // F̂, +∞ sentinel = 1
	fs := make([]float64, mb+1) // F_S
	fl := make([]float64, mb+1) // F_L
	for i, v := range bs {
		fh[i] = e.Mean.CDF(v)
		fs[i] = e.Lower.CDF(v)
		fl[i] = e.Upper.CDF(v)
	}
	fh[mb], fs[mb], fl[mb] = 1, 1, 1
	// Suffix maxima of u = F_S − F̂ and w = F̂ − F_L, including the sentinel.
	sufU := make([]float64, mb+2)
	sufW := make([]float64, mb+2)
	for i := mb; i >= 0; i-- {
		sufU[i] = math.Max(fs[i]-fh[i], sufU[i+1])
		sufW[i] = math.Max(fh[i]-fl[i], sufW[i+1])
	}
	var best float64
	consider := func(fhA, fsA, flA, aPlusLambda float64) {
		// j0: first b-candidate ≥ a+λ (the sentinel mb when past the end).
		j0 := sort.SearchFloat64s(bs, aPlusLambda)
		// Term 1: u(b) + v(a) over b ≥ a+λ.
		if t := sufU[j0] + (fhA - flA); t > best {
			best = t
		}
		// jt: first b-candidate with F_L(b) > F_S(a); fl is non-decreasing.
		jt := sort.Search(mb, func(i int) bool { return fl[i] > fsA })
		// Regime 1 (ρ′_L clamped to 0): b ∈ [a+λ, b₁); F̂ is constant on
		// candidate gaps, so its supremum there is F̂ at candidate jt−1.
		if jt > j0 {
			if t := fh[jt-1] - fhA; t > best {
				best = t
			}
		} else if jt == j0 && j0 < mb && bs[j0] > aPlusLambda {
			// The gap [a+λ, bs[j0]) is regime 1 with F̂ constant at fh[j0-1]
			// (or 0 when j0 == 0). Only matters when a+λ is not itself a
			// candidate, which cannot happen for support a; kept for safety.
			prev := 0.0
			if j0 > 0 {
				prev = fh[j0-1]
			}
			if t := prev - fhA; t > best {
				best = t
			}
		}
		// Regime 2: b ≥ max(a+λ, b₁) with ρ′_L > 0.
		k0 := jt
		if j0 > k0 {
			k0 = j0
		}
		if t := sufW[k0] + (fsA - fhA); t > best {
			best = t
		}
	}
	// a = −∞ sentinel.
	consider(0, 0, 0, math.Inf(-1))
	// a at each merged support point.
	for _, a := range vals {
		consider(e.Mean.CDF(a), e.Lower.CDF(a), e.Upper.CDF(a), a+lambda)
	}
	if best < 0 {
		best = 0
	}
	return best
}

// discrepancyBoundNaive is the O(m²) reference used to validate
// DiscrepancyBound in tests: it enumerates the candidate grid directly.
func (e Envelope) discrepancyBoundNaive(lambda float64) float64 {
	vals := mergedValues(e.Mean, e.Lower, e.Upper)
	if len(vals) == 0 {
		return 0
	}
	as := append([]float64{vals[0] - lambda - 1}, vals...)
	bs := append(bCandidates(vals, lambda), vals[len(vals)-1]+lambda+1)
	var best float64
	for _, a := range as {
		for _, b := range bs {
			if b-a < lambda {
				continue
			}
			lo, mid, hi := e.IntervalBounds(a, b)
			if d := hi - mid; d > best {
				best = d
			}
			if d := mid - lo; d > best {
				best = d
			}
		}
	}
	return best
}

// KSBound returns the KS-metric error bound of Proposition 4.2:
// the KS distance between Ŷ′ and the envelope output is maximized when the
// emulated function sits on an envelope boundary, so the bound is
// max(KS(Ŷ′, Y′_S), KS(Ŷ′, Y′_L)).
func (e Envelope) KSBound() float64 {
	return math.Max(KS(e.Mean, e.Lower), KS(e.Mean, e.Upper))
}
