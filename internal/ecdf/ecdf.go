// Package ecdf implements empirical cumulative distribution functions and
// the accuracy metrics of the paper (§2.1): the Kolmogorov–Smirnov distance,
// the discrepancy measure over two-sided intervals, the λ-discrepancy
// restricted to intervals of length ≥ λ, and the envelope error bound of
// Algorithm 3 (§4.2) computed in O(m log m).
//
// Interval probabilities follow the paper's convention
// Pr[Y ∈ [a,b]] = Pr[Y ≤ b] − Pr[Y ≤ a]; for the continuous distributions in
// scope the boundary-atom distinction is immaterial.
package ecdf

import (
	"fmt"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a sorted sample.
type ECDF struct {
	xs []float64 // ascending
}

// New builds an ECDF from samples. The input slice is copied and sorted.
func New(samples []float64) *ECDF {
	xs := make([]float64, len(samples))
	copy(xs, samples)
	sort.Float64s(xs)
	return &ECDF{xs: xs}
}

// FromSorted builds an ECDF from an already-ascending slice without copying.
// It panics if the slice is not sorted, since a mis-sorted ECDF silently
// corrupts every downstream metric.
func FromSorted(xs []float64) *ECDF {
	return new(ECDF).SetSorted(xs)
}

// SetSorted repoints e at the already-ascending slice xs (with FromSorted's
// sortedness check) and returns e. It is the struct-reusing form of
// FromSorted for scratch-owned ECDFs on hot paths: a loop that rebuilds an
// envelope per iteration can keep three ECDF structs alive across
// iterations instead of heap-allocating three per call.
func (e *ECDF) SetSorted(xs []float64) *ECDF {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			panic(fmt.Sprintf("ecdf: FromSorted input not sorted at %d", i))
		}
	}
	e.xs = xs
	return e
}

// SetSortedShifted is FromSortedShifted into a reused struct: dst is filled
// with base[i]+shift and e is repointed at it. Like FromSortedShifted it
// skips the sortedness re-check — a constant shift of an ascending base is
// ascending by construction.
func (e *ECDF) SetSortedShifted(dst, base []float64, shift float64) *ECDF {
	if len(dst) != len(base) {
		panic(fmt.Sprintf("ecdf: FromSortedShifted dst length %d ≠ %d", len(dst), len(base)))
	}
	for i, v := range base {
		dst[i] = v + shift
	}
	e.xs = dst
	return e
}

// FromSortedShifted builds an ECDF whose support is base[i] + shift, filling
// dst (which must have length len(base)) and aliasing it like FromSorted.
// A constant shift is an order-preserving transform of the sorted base, so no
// re-sort — and, unlike FromSorted, no O(m) sortedness re-check — is needed:
// the fill is the entire cost. This is what makes envelope construction
// sort-free when every sample shares one predictive variance (the lower and
// upper supports are then pure shifts of the sorted mean support): the
// prior-only regime before any local training point is selected, and any
// workload with homoscedastic predictions. base must be ascending.
func FromSortedShifted(dst, base []float64, shift float64) *ECDF {
	return new(ECDF).SetSortedShifted(dst, base, shift)
}

// Len returns the number of samples.
func (e *ECDF) Len() int { return len(e.xs) }

// Values returns the sorted sample values (not a copy).
func (e *ECDF) Values() []float64 { return e.xs }

// CDF returns the fraction of samples ≤ y.
func (e *ECDF) CDF(y float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	n := sort.Search(len(e.xs), func(i int) bool { return e.xs[i] > y })
	return float64(n) / float64(len(e.xs))
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) using the inverse-CDF
// (type-1) definition.
func (e *ECDF) Quantile(p float64) float64 {
	if len(e.xs) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return e.xs[0]
	}
	if p >= 1 {
		return e.xs[len(e.xs)-1]
	}
	idx := int(math.Ceil(p*float64(len(e.xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.xs[idx]
}

// Mean returns the sample mean.
func (e *ECDF) Mean() float64 {
	if len(e.xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range e.xs {
		s += x
	}
	return s / float64(len(e.xs))
}

// Variance returns the (biased, 1/n) sample variance.
func (e *ECDF) Variance() float64 {
	if len(e.xs) == 0 {
		return math.NaN()
	}
	m := e.Mean()
	var s float64
	for _, x := range e.xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(e.xs))
}

// Min returns the smallest sample.
func (e *ECDF) Min() float64 {
	if len(e.xs) == 0 {
		return math.NaN()
	}
	return e.xs[0]
}

// Max returns the largest sample.
func (e *ECDF) Max() float64 {
	if len(e.xs) == 0 {
		return math.NaN()
	}
	return e.xs[len(e.xs)-1]
}

// Range returns Max − Min.
func (e *ECDF) Range() float64 { return e.Max() - e.Min() }

// IntervalProb returns Pr[a < Y ≤ b] = CDF(b) − CDF(a).
func (e *ECDF) IntervalProb(a, b float64) float64 {
	if b < a {
		return 0
	}
	return e.CDF(b) - e.CDF(a)
}

// Histogram bins the sample into n equal-width bins over [Min, Max] and
// returns the bin left edges and normalized densities (integrating to 1).
// It is used to render output PDFs such as Fig. 6(a).
func (e *ECDF) Histogram(n int) (edges, density []float64) {
	if n <= 0 || len(e.xs) == 0 {
		return nil, nil
	}
	lo, hi := e.Min(), e.Max()
	if hi == lo {
		hi = lo + 1
	}
	w := (hi - lo) / float64(n)
	edges = make([]float64, n)
	density = make([]float64, n)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	for _, x := range e.xs {
		idx := int((x - lo) / w)
		if idx >= n {
			idx = n - 1
		}
		density[idx]++
	}
	norm := 1 / (float64(len(e.xs)) * w)
	for i := range density {
		density[i] *= norm
	}
	return edges, density
}

// mergedValues returns the ascending union of the support points of the
// given ECDFs, with exact duplicates collapsed.
func mergedValues(es ...*ECDF) []float64 {
	return appendMerged(nil, es...)
}

// appendMerged is mergedValues into a reusable buffer: the union is built in
// dst[:0], so callers on the hot path avoid the O(m) allocation.
func appendMerged(dst []float64, es ...*ECDF) []float64 {
	dst = dst[:0]
	for _, e := range es {
		dst = append(dst, e.xs...)
	}
	sort.Float64s(dst)
	out := dst[:0]
	for i, v := range dst {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Truncate returns the conditional distribution of Y given Y ∈ [a, b]: the
// paper's query Q2 notes that a selection predicate "truncates the
// distribution ... to the region [l, u], and hence yields a tuple existence
// probability". The second return value is that existence probability (the
// fraction of mass in [a, b]); when it is zero the returned ECDF is empty.
func (e *ECDF) Truncate(a, b float64) (*ECDF, float64) {
	if b < a {
		return FromSorted(nil), 0
	}
	lo := sort.Search(len(e.xs), func(i int) bool { return e.xs[i] >= a })
	hi := sort.Search(len(e.xs), func(i int) bool { return e.xs[i] > b })
	if hi <= lo {
		return FromSorted(nil), 0
	}
	kept := make([]float64, hi-lo)
	copy(kept, e.xs[lo:hi])
	tep := float64(hi-lo) / float64(len(e.xs))
	return FromSorted(kept), tep
}
