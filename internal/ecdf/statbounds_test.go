package ecdf

import (
	"math/rand"
	"testing"
)

// TestStatBoundsBracketMean checks that MeanBounds and QuantileBounds are
// ordered intervals that bracket the mean curve's statistic — the envelope
// contract the bounded relational operators build on.
func TestStatBoundsBracketMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		env := makeEnvelope(rng, 2+rng.Intn(40))
		lo, hi := env.MeanBounds()
		if !(lo <= hi) {
			t.Fatalf("trial %d: mean bounds inverted [%g, %g]", trial, lo, hi)
		}
		if m := env.Mean.Mean(); m < lo || m > hi {
			t.Fatalf("trial %d: mean %g outside [%g, %g]", trial, m, lo, hi)
		}
		for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
			qlo, qhi := env.QuantileBounds(p)
			if !(qlo <= qhi) {
				t.Fatalf("trial %d: q%.2f bounds inverted [%g, %g]", trial, p, qlo, qhi)
			}
			if q := env.Mean.Quantile(p); q < qlo || q > qhi {
				t.Fatalf("trial %d: q%.2f = %g outside [%g, %g]", trial, p, q, qlo, qhi)
			}
		}
	}
}

// TestStatBoundsDegenerate pins the exact-knowledge case: identical curves
// yield zero-width intervals.
func TestStatBoundsDegenerate(t *testing.T) {
	e := New([]float64{1, 2, 3})
	env := Envelope{Mean: e, Lower: e, Upper: e}
	if lo, hi := env.MeanBounds(); lo != hi || lo != e.Mean() {
		t.Fatalf("mean bounds [%g, %g], want both %g", lo, hi, e.Mean())
	}
	if lo, hi := env.QuantileBounds(0.5); lo != hi {
		t.Fatalf("median bounds [%g, %g]", lo, hi)
	}
}
