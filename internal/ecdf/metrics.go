package ecdf

import (
	"math"
	"sort"
)

// KS returns the Kolmogorov–Smirnov distance
// sup_y |F(y) − G(y)| between two empirical CDFs (Definition 2).
func KS(f, g *ECDF) float64 {
	vals := mergedValues(f, g)
	var max float64
	for _, v := range vals {
		if d := math.Abs(f.CDF(v) - g.CDF(v)); d > max {
			max = d
		}
	}
	return max
}

// Discrepancy returns the discrepancy measure (Definition 1)
// sup_{a≤b} |Pr_F[a,b] − Pr_G[a,b]| between two empirical CDFs.
// It always satisfies Discrepancy ≤ 2·KS.
func Discrepancy(f, g *ECDF) float64 {
	return DiscrepancyLambda(f, g, 0)
}

// bCandidates returns the ascending candidate set for interval right
// endpoints: the merged support plus every support point shifted by +λ.
// Because every involved empirical CDF is a right-continuous step function
// whose jumps lie in the merged support, the supremum over real intervals
// [a, b] with a in the support (or −∞) and b ≥ a+λ is attained on this set
// (b = a+λ exactly, or b at a support point), plus the +∞ sentinel.
func bCandidates(vals []float64, lambda float64) []float64 {
	return appendBCandidates(make([]float64, 0, 2*len(vals)), vals, lambda)
}

// appendBCandidates is bCandidates into a reusable buffer dst[:0].
func appendBCandidates(dst, vals []float64, lambda float64) []float64 {
	out := dst[:0]
	out = append(out, vals...)
	if lambda > 0 {
		for _, v := range vals {
			out = append(out, v+lambda)
		}
		sort.Float64s(out)
		dedup := out[:0]
		for i, v := range out {
			if i == 0 || v != dedup[len(dedup)-1] {
				dedup = append(dedup, v)
			}
		}
		out = dedup
	}
	return out
}

// DiscrepancyLambda returns the λ-discrepancy (Definition 3)
// sup_{b−a≥λ} |Pr_F[a,b] − Pr_G[a,b]|.
//
// Writing h(y) = F(y) − G(y), the interval difference is h(b) − h(a), so the
// measure is sup over pairs (a, b) with b ≥ a+λ of |h(b) − h(a)|, where
// a = −∞ and b = +∞ (h = 0) cover the one-sided intervals. Within a step of
// h the left endpoint dominates for a (same h, larger b-window), so a ranges
// over the merged support plus −∞; b additionally needs the points a+λ that
// fall strictly inside steps, handled by bCandidates. The supremum is found
// in O(m log m) with suffix max/min arrays over the b-candidates.
func DiscrepancyLambda(f, g *ECDF, lambda float64) float64 {
	vals := mergedValues(f, g)
	m := len(vals)
	if m == 0 {
		return 0
	}
	bs := bCandidates(vals, lambda)
	mb := len(bs)
	hb := make([]float64, mb)
	for i, v := range bs {
		hb[i] = f.CDF(v) - g.CDF(v)
	}
	// Suffix maxima/minima of h over b-candidates, +∞ sentinel h = 0.
	sufMax := make([]float64, mb+1)
	sufMin := make([]float64, mb+1)
	for i := mb - 1; i >= 0; i-- {
		sufMax[i] = math.Max(hb[i], sufMax[i+1])
		sufMin[i] = math.Min(hb[i], sufMin[i+1])
	}
	// a = −∞ sentinel: h(a) = 0, every b admissible.
	best := math.Max(sufMax[0], -sufMin[0])
	j := 0
	for i := 0; i < m; i++ {
		ha := f.CDF(vals[i]) - g.CDF(vals[i])
		lo := vals[i] + lambda
		for j < mb && bs[j] < lo {
			j++
		}
		if rise := sufMax[j] - ha; rise > best {
			best = rise
		}
		if fall := ha - sufMin[j]; fall > best {
			best = fall
		}
	}
	return best
}

// discLambdaNaive is the O(m²) reference implementation used to validate
// DiscrepancyLambda in tests: it enumerates the same exhaustive candidate
// grid directly.
func discLambdaNaive(f, g *ECDF, lambda float64) float64 {
	vals := mergedValues(f, g)
	if len(vals) == 0 {
		return 0
	}
	as := append([]float64{vals[0] - lambda - 1}, vals...) // −∞ sentinel
	bs := append(bCandidates(vals, lambda), vals[len(vals)-1]+lambda+1)
	var best float64
	for _, a := range as {
		for _, b := range bs {
			// Admissibility must use the same floating-point expression as
			// the fast path (b ≥ fl(a+λ)): a candidate constructed as
			// fl(v+λ) represents an interval of width exactly λ, and
			// re-deriving the width as b−a can round the other way and
			// reject the pair the fast path legitimately scores.
			if b < a+lambda {
				continue
			}
			d := math.Abs((f.CDF(b) - f.CDF(a)) - (g.CDF(b) - g.CDF(a)))
			if d > best {
				best = d
			}
		}
	}
	return best
}

// KSAgainst returns sup_y |F(y) − C(y)| between the empirical CDF f and an
// analytic CDF c, evaluating the analytic CDF on both sides of each jump
// (the standard one-sample KS statistic).
func KSAgainst(f *ECDF, c func(float64) float64) float64 {
	n := len(f.xs)
	if n == 0 {
		return 0
	}
	var max float64
	for i, x := range f.xs {
		cv := c(x)
		hi := float64(i+1)/float64(n) - cv
		lo := cv - float64(i)/float64(n)
		if hi > max {
			max = hi
		}
		if lo > max {
			max = lo
		}
	}
	return max
}
