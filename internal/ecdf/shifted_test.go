package ecdf

import (
	"math/rand"
	"slices"
	"testing"
)

// TestFromSortedShifted checks the shift-constructed ECDF equals the one
// built by shifting every sample and re-sorting from scratch.
func TestFromSortedShifted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := make([]float64, 100)
	for i := range base {
		base[i] = rng.NormFloat64() * 5
	}
	slices.Sort(base)
	for _, shift := range []float64{0, 1.5, -2.25, 1e-9} {
		dst := make([]float64, len(base))
		got := FromSortedShifted(dst, base, shift)
		raw := make([]float64, len(base))
		for i, v := range base {
			raw[i] = v + shift
		}
		want := New(raw)
		g, w := got.Values(), want.Values()
		if !slices.Equal(g, w) {
			t.Fatalf("shift %g: supports differ", shift)
		}
		// CDF queries agree at and between support points.
		for _, q := range []float64{g[0] - 1, g[0], g[len(g)/2], g[len(g)-1], g[len(g)-1] + 1} {
			if got.CDF(q) != want.CDF(q) {
				t.Fatalf("shift %g: CDF(%g) %g ≠ %g", shift, q, got.CDF(q), want.CDF(q))
			}
		}
	}
}

func TestFromSortedShiftedLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dst length mismatch")
		}
	}()
	FromSortedShifted(make([]float64, 2), make([]float64, 3), 1)
}

func TestFromSortedShiftedEmpty(t *testing.T) {
	e := FromSortedShifted(nil, nil, 3)
	if e.Len() != 0 {
		t.Fatalf("empty shifted ECDF has %d samples", e.Len())
	}
}
