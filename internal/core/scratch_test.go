package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"olgapro/internal/kernel"
	"olgapro/internal/mat"
	"olgapro/internal/udf"
)

// seededEvaluator returns an evaluator with n training points spread over
// [0,10]².
func seededEvaluator(t *testing.T, n int) *Evaluator {
	t.Helper()
	f := udf.Standard(udf.F3, 8)
	e, err := NewEvaluator(f, Config{Kernel: kernel.NewSqExp(0.5, 1.5)})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for e.GP().Len() < n {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		if err := e.AddTrainingAt(x); err != nil {
			continue
		}
	}
	return e
}

// predictRange is the per-sample inner loop of Algorithm 5: with warmed
// worker buffers it must not allocate.
func TestPredictRangeZeroAllocs(t *testing.T) {
	e := seededEvaluator(t, 40)
	rng := rand.New(rand.NewSource(42))
	in := gaussianInput([]float64{5, 5}, 0.5)
	samples := make([][]float64, 256)
	for i := range samples {
		samples[i] = in.SampleVec(rng, nil)
	}
	ids, gamma := e.selectLocal(samples, e.gammaThreshold())
	lc := &e.scratch.lc
	if err := e.buildLocal(lc, ids, gamma); err != nil {
		t.Fatal(err)
	}
	means := make([]float64, len(samples))
	vars := make([]float64, len(samples))
	pb := e.scratch.buf(0)
	lc.predictRange(e, samples, means, vars, 0, len(samples), pb) // warm
	if allocs := testing.AllocsPerRun(20, func() {
		lc.predictRange(e, samples, means, vars, 0, len(samples), pb)
	}); allocs != 0 {
		t.Fatalf("predictRange allocates %.1f per run, want 0", allocs)
	}
}

// selectLocal's radius loop must not allocate per step beyond the R-tree
// query buffer it reuses — in particular no per-step map rebuild.
func TestSelectLocalReusesScratch(t *testing.T) {
	e := seededEvaluator(t, 60)
	rng := rand.New(rand.NewSource(43))
	in := gaussianInput([]float64{5, 5}, 0.4)
	samples := make([][]float64, 64)
	for i := range samples {
		samples[i] = in.SampleVec(rng, nil)
	}
	ids1, _ := e.selectLocal(samples, e.gammaThreshold())
	n1 := len(ids1)
	allocs := testing.AllocsPerRun(20, func() {
		ids, _ := e.selectLocal(samples, e.gammaThreshold())
		if len(ids) != n1 {
			t.Fatalf("selection size changed: %d → %d", n1, len(ids))
		}
	})
	// Everything — bounding box, sub-box cells, membership marks, id staging,
	// domain extents — lives in evalScratch now; a warm selection allocates
	// nothing.
	if allocs != 0 {
		t.Fatalf("selectLocal allocates %.1f per run, want 0", allocs)
	}
}

// The Output handed to the caller must own its distribution: a subsequent
// Eval reusing the evaluator's scratch must not mutate it.
func TestOutputOwnsDistributionAcrossEvals(t *testing.T) {
	e := seededEvaluator(t, 12)
	rng := rand.New(rand.NewSource(44))
	out1, err := e.Eval(gaussianInput([]float64{3, 3}, 0.4), rng)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Dist == nil {
		t.Fatal("first eval filtered unexpectedly")
	}
	snapshot := mat.CloneVec(out1.Dist.Values())
	for i := 0; i < 5; i++ {
		if _, err := e.Eval(gaussianInput([]float64{7, 2}, 0.6), rng); err != nil {
			t.Fatal(err)
		}
	}
	got := out1.Dist.Values()
	for i := range snapshot {
		if got[i] != snapshot[i] {
			t.Fatalf("Output.Dist mutated by later Eval at %d: %g → %g", i, snapshot[i], got[i])
		}
	}
}

// When the incremental local extend fails, the evaluator rebuilds the local
// context from scratch. Exercise the failure path deterministically: a
// hand-built localCtx whose next extension is exactly singular must error,
// and rebuildLocal must restore a usable context whose predictions match a
// freshly built one.
func TestLocalExtendFailureRebuilds(t *testing.T) {
	e := seededEvaluator(t, 20)
	rng := rand.New(rand.NewSource(45))
	in := gaussianInput([]float64{5, 5}, 0.5)
	samples := make([][]float64, 64)
	for i := range samples {
		samples[i] = in.SampleVec(rng, nil)
	}
	lc := &e.scratch.lc
	if err := e.rebuildLocal(lc, samples); err != nil {
		t.Fatal(err)
	}
	// Corrupt the context into a state whose extend must fail: a singular
	// 1×1 "gram" (zero noise folded in) extended with its own duplicate.
	var bad localCtx
	bad.ids = append(bad.ids, 0)
	bad.xs = append(bad.xs, e.GP().X(0))
	gram := mat.NewFromData(1, 1, []float64{e.Config().Kernel.Eval(e.GP().X(0), e.GP().X(0))})
	if err := bad.chol.Factorize(gram); err != nil {
		t.Fatal(err)
	}
	// Extending with the same point and no noise gives Schur complement 0.
	k := []float64{gram.At(0, 0)}
	if err := bad.chol.Extend(k, gram.At(0, 0)); !errors.Is(err, mat.ErrNotSPD) {
		t.Fatalf("duplicate extend: err = %v, want ErrNotSPD", err)
	}
	// The EvalSamples fallback: rebuild in place and verify predictions.
	if err := e.rebuildLocal(&bad, samples); err != nil {
		t.Fatalf("rebuildLocal after failed extend: %v", err)
	}
	var fresh localCtx
	ids, gamma := e.selectLocal(samples, e.gammaThreshold())
	if err := e.buildLocal(&fresh, ids, gamma); err != nil {
		t.Fatal(err)
	}
	var pb1, pb2 predictBuf
	for _, s := range samples {
		m1, v1 := bad.predict(e, s, &pb1)
		m2, v2 := fresh.predict(e, s, &pb2)
		if math.Abs(m1-m2) > 1e-10 || math.Abs(v1-v2) > 1e-10 {
			t.Fatalf("rebuilt context diverges: (%g,%g) vs (%g,%g)", m1, v1, m2, v2)
		}
	}
}

// The jittered-rebuild fallback of buildLocal: a local subset containing
// near-duplicate training points has a numerically singular Gram matrix, and
// FactorizeJittered must rescue it rather than fail the tuple.
func TestBuildLocalJitteredFallback(t *testing.T) {
	f := udf.Standard(udf.F3, 8)
	// Tiny noise makes the plain factorization of a near-duplicate pair
	// fail, forcing the jitter path.
	e, err := NewEvaluator(f, Config{Kernel: kernel.NewSqExp(0.5, 1.5), Noise: 1e-17})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddTrainingAt([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddTrainingAt([]float64{9, 9}); err != nil {
		t.Fatal(err)
	}
	// Selecting the same point twice makes the Gram matrix exactly singular
	// (the configured noise is below one ulp of k(x,x), so the diagonal
	// jitter it would normally contribute vanishes in rounding): the plain
	// factorization must fail and FactorizeJittered must rescue the build.
	var lc localCtx
	ids := []int{0, 0, 1}
	if err := e.buildLocal(&lc, ids, 0); err != nil {
		t.Fatalf("buildLocal with duplicated point: %v", err)
	}
	var pb predictBuf
	m, v := lc.predict(e, []float64{5, 5}, &pb)
	if math.IsNaN(m) || math.IsNaN(v) {
		t.Fatalf("jittered local model produced NaN: mean=%g var=%g", m, v)
	}
}

// markSet semantics, including the epoch-wrap path.
func TestMarkSet(t *testing.T) {
	var m markSet
	m.reset(4)
	if m.size() != 0 || m.has(2) {
		t.Fatal("fresh markSet not empty")
	}
	m.add(2)
	m.add(2)
	if !m.has(2) || m.size() != 1 {
		t.Fatalf("add: has=%v size=%d", m.has(2), m.size())
	}
	m.reset(6)
	if m.has(2) || m.size() != 0 {
		t.Fatal("reset did not clear membership")
	}
	m.add(5)
	// Force the wrap path.
	m.epoch = math.MaxInt32
	m.reset(6)
	if m.has(5) || m.epoch != 1 {
		t.Fatalf("epoch wrap: has(5)=%v epoch=%d", m.has(5), m.epoch)
	}
	m.add(0)
	if !m.has(0) {
		t.Fatal("post-wrap add lost")
	}
}
