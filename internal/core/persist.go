package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"olgapro/internal/gp"
	"olgapro/internal/kernel"
)

// Snapshot file format: a fixed magic string, a little-endian uint32 format
// version, then the gob-encoded Snapshot. The version gates decoding — a
// server restored from a snapshot written by a newer build fails loudly
// instead of silently misreading state — while files from before the header
// existed (bare gob) are still accepted by Load for migration.
const (
	snapshotMagic = "olgapro-snap\n"
	// SnapshotVersion is the current snapshot format version. Version 1 is
	// the headerless gob of PR ≤ 4; version 2 added the header and the
	// Noise field; version 3 added the sparse-model fields (SparseBudget et
	// al.); version 4 added ModelSeq, the per-UDF model sequence number
	// replicas order snapshots by. Gob decodes absent fields as zero
	// values, so this build still reads v1–v3 files — they restore as
	// exact models at sequence 0.
	SnapshotVersion = 4
)

// Snapshot is the serializable state of a trained evaluator: the training
// set and the learned hyperparameters. Together with the (non-serializable)
// black-box UDF and a Config, it reconstructs an Evaluator that picks up
// where the saved one left off — letting a long-running service persist an
// emulator it paid UDF calls to learn.
type Snapshot struct {
	// Version is the format version the snapshot was written with.
	Version int
	// KernelName identifies the kernel family ("sqexp", "matern32",
	// "matern52", "sqexp-ard").
	KernelName string
	// KernelParams are the log-space hyperparameters.
	KernelParams []float64
	// ARDDim is the input dimensionality for "sqexp-ard" (0 otherwise).
	ARDDim int
	// Noise is the GP jitter variance the model was trained with; restoring
	// under a different noise would change every prediction bit.
	Noise float64
	// X and Y are the training pairs.
	X [][]float64
	Y []float64
	// ModelSeq is the per-UDF monotonic model sequence number the snapshot
	// was taken at (version ≥ 4). It increments on every model mutation in
	// the owning writer process; replicas compare sequence numbers to
	// decide whether a fetched snapshot is newer than their installed
	// state, and a restored process resumes its counter from this value so
	// the ordering survives restarts. Zero for pre-v4 files.
	ModelSeq int64
	// SparseBudget, when positive, marks the snapshot as a budgeted sparse
	// model (version ≥ 3); the remaining Sparse* fields mirror
	// gp.SparseConfig plus the inducing-point indices into X. Zero (the gob
	// default when decoding older files) means an exact model.
	SparseBudget int
	// SparseTau is the admission threshold on relative novelty.
	SparseTau float64
	// SparseInflate is the predictive-standard-deviation inflation factor.
	SparseInflate float64
	// SparseSwapEvery is the inducing-set maintenance cadence.
	SparseSwapEvery int
	// SparseInducing are the indices into X of the inducing points.
	SparseInducing []int
}

// kernelName maps a kernel to its registry name.
func kernelName(k kernel.Kernel) (string, int, error) {
	switch kk := k.(type) {
	case *kernel.SqExp:
		return "sqexp", 0, nil
	case *kernel.Matern32:
		return "matern32", 0, nil
	case *kernel.Matern52:
		return "matern52", 0, nil
	case *kernel.SqExpARD:
		return "sqexp-ard", kk.Dim(), nil
	default:
		return "", 0, fmt.Errorf("core: cannot snapshot kernel type %T", k)
	}
}

// kernelFromName reconstructs a kernel and applies the saved parameters.
func kernelFromName(name string, ardDim int, params []float64) (kernel.Kernel, error) {
	var k kernel.Kernel
	switch name {
	case "sqexp":
		k = kernel.NewSqExp(1, 1)
	case "matern32":
		k = kernel.NewMatern32(1, 1)
	case "matern52":
		k = kernel.NewMatern52(1, 1)
	case "sqexp-ard":
		if ardDim <= 0 {
			return nil, fmt.Errorf("core: snapshot ard kernel needs positive dim, got %d", ardDim)
		}
		lens := make([]float64, ardDim)
		for i := range lens {
			lens[i] = 1
		}
		k = kernel.NewSqExpARD(1, lens)
	default:
		return nil, fmt.Errorf("core: unknown snapshot kernel %q", name)
	}
	if len(params) != k.NumParams() {
		return nil, fmt.Errorf("core: snapshot has %d kernel params, %s wants %d",
			len(params), name, k.NumParams())
	}
	k.SetParams(params)
	return k, nil
}

// Snapshot captures the evaluator's model state.
func (e *Evaluator) Snapshot() (*Snapshot, error) {
	name, ardDim, err := kernelName(e.cfg.Kernel)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		Version:      SnapshotVersion,
		KernelName:   name,
		KernelParams: e.cfg.Kernel.Params(nil),
		ARDDim:       ardDim,
		Noise:        e.model.Noise(),
	}
	for i := 0; i < e.model.Len(); i++ {
		x := e.model.X(i)
		cp := make([]float64, len(x))
		copy(cp, x)
		s.X = append(s.X, cp)
		s.Y = append(s.Y, e.model.Y(i))
	}
	if e.sg != nil {
		sc := e.sg.Config()
		s.SparseBudget = sc.Budget
		s.SparseTau = sc.Tau
		s.SparseInflate = sc.Inflate
		s.SparseSwapEvery = sc.SwapEvery
		s.SparseInducing = append([]int(nil), e.sg.Inducing()...)
	}
	return s, nil
}

// Save writes the evaluator's model state to w in the versioned snapshot
// format (magic + version + gob).
func (e *Evaluator) Save(w io.Writer) error {
	s, err := e.Snapshot()
	if err != nil {
		return err
	}
	return WriteSnapshot(w, s)
}

// WriteSnapshot encodes s to w in the versioned format. The snapshot's
// Version field is stamped to the current format version.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	s.Version = SnapshotVersion
	if _, err := io.WriteString(w, snapshotMagic); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], uint32(SnapshotVersion))
	if _, err := w.Write(ver[:]); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// ReadSnapshot decodes a snapshot from r. It accepts the current versioned
// format (rejecting versions newer than this build understands) and, for
// migration, the headerless bare-gob files written before the header
// existed, which decode as Version 1.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(snapshotMagic))
	versioned := err == nil && bytes.Equal(head, []byte(snapshotMagic))
	var version = 1
	if versioned {
		if _, err := br.Discard(len(snapshotMagic)); err != nil {
			return nil, fmt.Errorf("core: load: %w", err)
		}
		var ver [4]byte
		if _, err := io.ReadFull(br, ver[:]); err != nil {
			return nil, fmt.Errorf("core: load: truncated snapshot header: %w", err)
		}
		version = int(binary.LittleEndian.Uint32(ver[:]))
		if version < 1 || version > SnapshotVersion {
			return nil, fmt.Errorf("core: load: snapshot version %d not supported (this build reads ≤ %d)",
				version, SnapshotVersion)
		}
	}
	var s Snapshot
	if err := gob.NewDecoder(br).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	s.Version = version
	return &s, nil
}

// Restore builds an evaluator for the UDF from a snapshot: the saved kernel
// (with its learned hyperparameters) replaces cfg.Kernel, and the saved
// training pairs are installed without calling the UDF.
func Restore(f interface {
	Dim() int
	Eval(x []float64) float64
}, cfg Config, s *Snapshot) (*Evaluator, error) {
	k, err := kernelFromName(s.KernelName, s.ARDDim, s.KernelParams)
	if err != nil {
		return nil, err
	}
	cfg.Kernel = k
	if s.Noise > 0 {
		cfg.Noise = s.Noise
	}
	ev, err := NewEvaluator(f, cfg)
	if err != nil {
		return nil, err
	}
	if len(s.X) != len(s.Y) {
		return nil, fmt.Errorf("core: snapshot has %d inputs but %d outputs", len(s.X), len(s.Y))
	}
	for i, x := range s.X {
		if len(x) != f.Dim() {
			return nil, fmt.Errorf("core: snapshot point %d has dim %d, UDF wants %d", i, len(x), f.Dim())
		}
	}
	if s.SparseBudget > 0 {
		// Sparse snapshot: rebuild the model canonically from the persisted
		// training set and inducing indices. Restoring a sparse snapshot
		// always yields a sparse evaluator — the snapshot's budget overrides
		// cfg.SparseBudget — because the exact factors the snapshot's author
		// discarded cannot be recovered per-point-order-faithfully anyway.
		ev.cfg.SparseBudget = s.SparseBudget
		ev.cfg.SparseInflate = s.SparseInflate
		ev.cfg.SparseSwapEvery = s.SparseSwapEvery
		sg, err := gp.NewSparseFromState(ev.cfg.Kernel, ev.cfg.Noise, gp.SparseConfig{
			Budget:    s.SparseBudget,
			Tau:       s.SparseTau,
			Inflate:   s.SparseInflate,
			SwapEvery: s.SparseSwapEvery,
		}, s.X, s.Y, s.SparseInducing)
		if err != nil {
			return nil, fmt.Errorf("core: restore sparse model: %w", err)
		}
		ev.sg, ev.model, ev.g = sg, sg, nil
	} else {
		// Exact snapshot. If cfg asked for a sparse model, migrate by
		// replaying the pairs through sparse admission; otherwise replay into
		// the exact factors plus the R-tree.
		for i, x := range s.X {
			if err := ev.model.Add(x, s.Y[i]); err != nil {
				return nil, fmt.Errorf("core: snapshot point %d: %w", i, err)
			}
			if ev.g != nil {
				if err := ev.tree.Insert(ev.g.X(ev.g.Len()-1), ev.g.Len()-1); err != nil {
					return nil, fmt.Errorf("core: snapshot index %d: %w", i, err)
				}
			}
		}
	}
	for _, y := range s.Y {
		if !ev.haveY || y < ev.yMin {
			ev.yMin = y
		}
		if !ev.haveY || y > ev.yMax {
			ev.yMax = y
		}
		ev.haveY = true
	}
	return ev, nil
}

// Load reads a snapshot from r and restores an evaluator for the UDF.
func Load(f interface {
	Dim() int
	Eval(x []float64) float64
}, cfg Config, r io.Reader) (*Evaluator, error) {
	s, err := ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return Restore(f, cfg, s)
}
