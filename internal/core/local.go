package core

import (
	"fmt"
	"math"
	"sync"

	"olgapro/internal/gp"
	"olgapro/internal/kernel"
	"olgapro/internal/mat"
	"olgapro/internal/rtree"
)

// localCtx is the per-input local inference context (paper §5.1): the
// subset of training-point indices selected around the sample bounding box,
// and the Cholesky factorization of their (noise-jittered) Gram matrix used
// for predictive variances. Posterior means use the *global* weight vector α
// restricted to the subset, exactly the f̂_L(x) = K(x, X*_L) α_L of §5.1,
// whose deviation from global inference is what the γ bound controls.
//
// A localCtx lives inside the evaluator's evalScratch and is rebuilt in
// place: ids, xs, and the packed Cholesky store are all reused across
// tuples, so steady-state construction costs no allocation beyond the
// R-tree query.
type localCtx struct {
	ids  []int
	xs   [][]float64
	chol mat.Cholesky
	// gamma is the bound on |f̂(x) − f̂_L(x)| achieved by the selection.
	gamma float64
	// sp, when non-nil, short-circuits the context to the budgeted sparse
	// emulator: predictions route straight to its O(m²) inducing-point
	// factors (no subset, no local Gram), extend is a no-op because the
	// model self-updates on Add, and gamma is 0 — nothing is dropped, the
	// approximation error lives in the (inflated) predictive variance
	// instead.
	sp *gp.Sparse
}

// bindSparse points the context at the sparse emulator, clearing any exact
// local-subset state.
func (lc *localCtx) bindSparse(sp *gp.Sparse) {
	lc.sp = sp
	lc.ids = lc.ids[:0]
	lc.xs = lc.xs[:0]
	lc.gamma = 0
}

// predictBuf is one worker's reusable inference buffers: the kernel
// cross-vector and the forward-solve half of the variance computation, plus
// a gp.Scratch for the sparse path's two solve pairs.
type predictBuf struct {
	k, v []float64
	gs   gp.Scratch
}

// buildLocal (re)factorizes the Gram matrix of the selected points into lc,
// reusing its storage. ids is copied, so callers may reuse the backing.
func (e *Evaluator) buildLocal(lc *localCtx, ids []int, gamma float64) error {
	lc.sp = nil
	lc.gamma = gamma
	lc.ids = append(lc.ids[:0], ids...)
	lc.xs = lc.xs[:0]
	for _, id := range ids {
		lc.xs = append(lc.xs, e.g.X(id))
	}
	sc := &e.scratch
	sc.gram = kernel.GramInto(sc.gram, e.cfg.Kernel, lc.xs)
	for i := range ids {
		sc.gram.Add(i, i, e.g.Noise())
	}
	if _, err := lc.chol.FactorizeJittered(sc.gram, e.g.Noise()*10, 8); err != nil {
		return fmt.Errorf("core: local gram: %w", err)
	}
	return nil
}

// rebuildLocal reselects the local subset for the samples and refactorizes
// lc in place — the fallback used whenever the incremental extend fails or
// hyperparameters changed under the context.
func (e *Evaluator) rebuildLocal(lc *localCtx, samples [][]float64) error {
	if e.sg != nil {
		// The sparse model maintains its own factors (Train rebuilds them);
		// just re-bind.
		lc.bindSparse(e.sg)
		return nil
	}
	ids, gamma := e.selectLocal(samples, e.gammaThreshold())
	return e.buildLocal(lc, ids, gamma)
}

// extend adds the training point with the given global index (which must
// already be in the evaluator's GP) to the local subset in O(l²).
func (lc *localCtx) extend(e *Evaluator, id int) error {
	if lc.sp != nil {
		return nil // the sparse model already absorbed the point in Add
	}
	x := e.g.X(id)
	pb := e.scratch.buf(0)
	k := resizeFloats(&pb.k, len(lc.xs))
	for i, xi := range lc.xs {
		k[i] = e.cfg.Kernel.Eval(xi, x)
	}
	if err := lc.chol.Extend(k, e.cfg.Kernel.Eval(x, x)+e.g.Noise()); err != nil {
		return fmt.Errorf("core: local extend: %w", err)
	}
	lc.ids = append(lc.ids, id)
	lc.xs = append(lc.xs, x)
	return nil
}

// predict returns the local posterior mean and variance at x using the
// worker buffers pb. It allocates nothing once pb has grown to the subset
// size. The local variance conditions on fewer points than the global one,
// so it is an overestimate — conservative for the error bound.
func (lc *localCtx) predict(e *Evaluator, x []float64, pb *predictBuf) (mean, variance float64) {
	if lc.sp != nil {
		return lc.sp.PredictWith(&pb.gs, x)
	}
	prior := e.cfg.Kernel.Eval(x, x)
	if len(lc.xs) == 0 {
		return 0, prior
	}
	l := len(lc.xs)
	k := resizeFloats(&pb.k, l)
	kernel.CrossVec(e.cfg.Kernel, lc.xs, x, k)
	alpha := e.g.Alpha()
	for i, id := range lc.ids {
		mean += k[i] * alpha[id]
	}
	v := resizeFloats(&pb.v, l)
	lc.chol.ForwardSolveTo(v, k)
	variance = prior - mat.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// predictInto fills means[i], vars[i] for samples[lo:hi], fanning the work
// out across Config.Parallelism goroutines when the range is large enough
// to amortize their cost. Inference is read-only on the local model and each
// worker owns a distinct predictBuf, which is what makes this
// parallelization safe — the paper lists parallel processing as future work
// (§8), and the per-sample O(l²) variance computation is the dominant cost
// it targets.
func (lc *localCtx) predictInto(e *Evaluator, samples [][]float64, means, vars []float64, lo, hi int) {
	p := e.cfg.Parallelism
	const minPerWorker = 128
	if p <= 1 || hi-lo < 2*minPerWorker {
		lc.predictRange(e, samples, means, vars, lo, hi, e.scratch.buf(0))
		return
	}
	if max := (hi - lo) / minPerWorker; p > max {
		p = max
	}
	e.scratch.growBufs(p) // before spawning: workers must not resize the pool
	var wg sync.WaitGroup
	chunk := (hi - lo + p - 1) / p
	for w := 0; w < p; w++ {
		s := lo + w*chunk
		t := s + chunk
		if t > hi {
			t = hi
		}
		if s >= t {
			break
		}
		wg.Add(1)
		go func(s, t int, pb *predictBuf) {
			defer wg.Done()
			lc.predictRange(e, samples, means, vars, s, t, pb)
		}(s, t, e.scratch.buf(w))
	}
	wg.Wait()
}

// predictRange is the sequential kernel of predictInto: zero steady-state
// heap allocations per sample.
func (lc *localCtx) predictRange(e *Evaluator, samples [][]float64, means, vars []float64, lo, hi int, pb *predictBuf) {
	for i := lo; i < hi; i++ {
		means[i], vars[i] = lc.predict(e, samples[i], pb)
	}
}

// selectLocal chooses the training subset for the given samples: points
// within an adaptively grown radius of the sample bounding box, grown until
// the dropped-point error bound γ is at most Γ (§5.1). It returns all points
// under global inference, for non-isotropic kernels, or for tiny models.
// The returned ids alias evaluator scratch and are only valid until the next
// selectLocal call (buildLocal copies them).
func (e *Evaluator) selectLocal(samples [][]float64, gammaThresh float64) (ids []int, gamma float64) {
	n := e.g.Len()
	sc := &e.scratch
	all := func() []int {
		out := sc.idBuf[:0]
		for i := 0; i < n; i++ {
			out = append(out, i)
		}
		sc.idBuf = out
		return out
	}
	iso, isIso := e.cfg.Kernel.(kernel.Isotropic)
	if e.cfg.GlobalInference || !isIso || n <= 8 {
		return all(), 0
	}
	box := sc.box.bounding(samples)
	boxes := sc.box.sub(samples, box)
	// Initial radius: optimistic — as if only the single largest-weight
	// excluded point mattered, κ(r)·max|α| ≤ Γ. The γ bound below is the
	// actual guarantee; starting small and growing keeps the selected
	// subset tight, which is where local inference's speedup comes from
	// (each growth step costs one O(n) γ evaluation).
	var maxAbsAlpha float64
	for _, a := range e.g.Alpha() {
		if ab := math.Abs(a); ab > maxAbsAlpha {
			maxAbsAlpha = ab
		}
	}
	if maxAbsAlpha <= 0 {
		maxAbsAlpha = 1
	}
	maxR := e.domainDiameter()
	r := kernel.RadiusFor(iso, gammaThresh/maxAbsAlpha, maxR)
	for {
		sc.idBuf = e.tree.AppendIDsNear(sc.idBuf[:0], box, r)
		idList := sc.idBuf
		if len(idList) >= n {
			return all(), 0
		}
		// Membership marks replace the map[int]bool formerly rebuilt on
		// every radius step: one epoch bump plus l stores.
		sc.sel.reset(n)
		for _, id := range idList {
			sc.sel.add(id)
		}
		gamma = e.gammaBound(iso, &sc.sel, boxes)
		if gamma <= gammaThresh {
			return idList, gamma
		}
		r = r*1.5 + 1e-9
		if r > maxR {
			return all(), 0
		}
	}
}

// gammaBound computes the paper's γ bound: for every sub-box of samples and
// every excluded training point x_l, the covariance k(x_j, x_l) for any
// sample x_j in the box lies in [κ(maxdist), κ(mindist)], so the omitted
// mean contribution Σ_l k(x_j, x_l)·α_l lies in a computable interval; γ is
// the worst absolute endpoint over boxes. sel marks membership in the local
// subset.
func (e *Evaluator) gammaBound(iso kernel.Isotropic, sel *markSet, boxes []rtree.Rect) float64 {
	alpha := e.g.Alpha()
	var worst float64
	for _, b := range boxes {
		var up, lo float64
		for id := 0; id < e.g.Len(); id++ {
			if sel.has(id) {
				continue
			}
			x := e.g.X(id)
			kNear := iso.EvalDist(b.MinDist(x))
			kFar := iso.EvalDist(b.MaxDist(x))
			a := alpha[id]
			if a >= 0 {
				up += kNear * a
				lo += kFar * a
			} else {
				up += kFar * a
				lo += kNear * a
			}
		}
		if g := math.Max(math.Abs(up), math.Abs(lo)); g > worst {
			worst = g
		}
	}
	return worst
}

// domainDiameter estimates the largest distance in the training domain so
// radius growth terminates.
func (e *Evaluator) domainDiameter() float64 {
	if e.g.Len() == 0 {
		return 1
	}
	sc := &e.scratch
	first := e.g.X(0)
	lo := append(sc.domLo[:0], first...)
	hi := append(sc.domHi[:0], first...)
	for i := 1; i < e.g.Len(); i++ {
		for j, v := range e.g.X(i) {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	sc.domLo, sc.domHi = lo, hi
	var s float64
	for j := range lo {
		d := hi[j] - lo[j]
		s += d * d
	}
	return math.Sqrt(s) + 1
}

// TreeIDsNear exposes the R-tree distance query for benchmarks and
// diagnostics: ids of training points within delta of rect.
func (e *Evaluator) TreeIDsNear(rect rtree.Rect, delta float64) []int {
	return e.tree.IDsNear(rect, delta)
}

// GammaBoundForBoxes exposes the local-inference γ bound for a given
// selected subset and sample boxes (used by the sub-box ablation). It
// returns 0 when the kernel is not isotropic.
func (e *Evaluator) GammaBoundForBoxes(selected map[int]bool, boxes []rtree.Rect) float64 {
	iso, ok := e.cfg.Kernel.(kernel.Isotropic)
	if !ok {
		return 0
	}
	var sel markSet
	sel.reset(e.g.Len())
	for id, in := range selected {
		if in && id >= 0 && id < e.g.Len() {
			sel.add(id)
		}
	}
	return e.gammaBound(iso, &sel, boxes)
}

// SubBoxes exposes the sample-partitioning refinement of §5.1. Unlike the
// evaluator's internal scratch-backed path it returns freshly owned rects.
func SubBoxes(samples [][]float64) []rtree.Rect {
	var b boxScratch
	return b.sub(samples, rtree.BoundingBox(samples))
}
