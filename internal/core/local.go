package core

import (
	"fmt"
	"math"
	"sync"

	"olgapro/internal/kernel"
	"olgapro/internal/mat"
	"olgapro/internal/rtree"
)

// localCtx is the per-input local inference context (paper §5.1): the
// subset of training-point indices selected around the sample bounding box,
// and the Cholesky factorization of their (noise-jittered) Gram matrix used
// for predictive variances. Posterior means use the *global* weight vector α
// restricted to the subset, exactly the f̂_L(x) = K(x, X*_L) α_L of §5.1,
// whose deviation from global inference is what the γ bound controls.
type localCtx struct {
	ids  []int
	xs   [][]float64
	chol mat.Cholesky
	// gamma is the bound on |f̂(x) − f̂_L(x)| achieved by the selection.
	gamma float64
}

// buildLocal factorizes the Gram matrix of the selected points.
func (e *Evaluator) buildLocal(ids []int, gamma float64) (*localCtx, error) {
	lc := &localCtx{ids: ids, gamma: gamma}
	lc.xs = make([][]float64, len(ids))
	for i, id := range ids {
		lc.xs[i] = e.g.X(id)
	}
	gram := kernel.Gram(e.cfg.Kernel, lc.xs)
	for i := range ids {
		gram.Add(i, i, e.g.Noise())
	}
	if _, err := lc.chol.FactorizeJittered(gram, e.g.Noise()*10, 8); err != nil {
		return nil, fmt.Errorf("core: local gram: %w", err)
	}
	return lc, nil
}

// extend adds the training point with the given global index (which must
// already be in the evaluator's GP) to the local subset in O(l²).
func (lc *localCtx) extend(e *Evaluator, id int) error {
	x := e.g.X(id)
	k := make([]float64, len(lc.xs))
	for i, xi := range lc.xs {
		k[i] = e.cfg.Kernel.Eval(xi, x)
	}
	if err := lc.chol.Extend(k, e.cfg.Kernel.Eval(x, x)+e.g.Noise()); err != nil {
		return fmt.Errorf("core: local extend: %w", err)
	}
	lc.ids = append(lc.ids, id)
	lc.xs = append(lc.xs, x)
	return nil
}

// predict returns the local posterior mean and variance at x. The local
// variance conditions on fewer points than the global one, so it is an
// overestimate — conservative for the error bound.
func (lc *localCtx) predict(e *Evaluator, x []float64, kbuf []float64) (mean, variance float64, _ []float64) {
	prior := e.cfg.Kernel.Eval(x, x)
	if len(lc.xs) == 0 {
		return 0, prior, kbuf
	}
	kbuf = kernel.CrossVec(e.cfg.Kernel, lc.xs, x, kbuf)
	alpha := e.g.Alpha()
	for i, id := range lc.ids {
		mean += kbuf[i] * alpha[id]
	}
	v := lc.chol.ForwardSolve(kbuf)
	variance = prior - mat.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	return mean, variance, kbuf
}

// predictInto fills means[i], vars[i] for samples[lo:hi], fanning the work
// out across Config.Parallelism goroutines when the range is large enough
// to amortize their cost. Inference is read-only on the local model, which
// is what makes this parallelization safe — the paper lists parallel
// processing as future work (§8), and the per-sample O(l²) variance
// computation is the dominant cost it targets.
func (lc *localCtx) predictInto(e *Evaluator, samples [][]float64, means, vars []float64, lo, hi int) {
	p := e.cfg.Parallelism
	const minPerWorker = 128
	if p <= 1 || hi-lo < 2*minPerWorker {
		lc.predictRange(e, samples, means, vars, lo, hi)
		return
	}
	if max := (hi - lo) / minPerWorker; p > max {
		p = max
	}
	var wg sync.WaitGroup
	chunk := (hi - lo + p - 1) / p
	for w := 0; w < p; w++ {
		s := lo + w*chunk
		t := s + chunk
		if t > hi {
			t = hi
		}
		if s >= t {
			break
		}
		wg.Add(1)
		go func(s, t int) {
			defer wg.Done()
			lc.predictRange(e, samples, means, vars, s, t)
		}(s, t)
	}
	wg.Wait()
}

// predictRange is the sequential kernel of predictInto.
func (lc *localCtx) predictRange(e *Evaluator, samples [][]float64, means, vars []float64, lo, hi int) {
	var kbuf []float64
	for i := lo; i < hi; i++ {
		means[i], vars[i], kbuf = lc.predict(e, samples[i], kbuf)
	}
}

// selectLocal chooses the training subset for the given samples: points
// within an adaptively grown radius of the sample bounding box, grown until
// the dropped-point error bound γ is at most Γ (§5.1). It returns all points
// under global inference, for non-isotropic kernels, or for tiny models.
func (e *Evaluator) selectLocal(samples [][]float64, gammaThresh float64) (ids []int, gamma float64) {
	n := e.g.Len()
	all := func() []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	iso, isIso := e.cfg.Kernel.(kernel.Isotropic)
	if e.cfg.GlobalInference || !isIso || n <= 8 {
		return all(), 0
	}
	box := rtree.BoundingBox(samples)
	boxes := subBoxes(samples)
	// Initial radius: optimistic — as if only the single largest-weight
	// excluded point mattered, κ(r)·max|α| ≤ Γ. The γ bound below is the
	// actual guarantee; starting small and growing keeps the selected
	// subset tight, which is where local inference's speedup comes from
	// (each growth step costs one O(n) γ evaluation).
	var maxAbsAlpha float64
	for _, a := range e.g.Alpha() {
		if ab := math.Abs(a); ab > maxAbsAlpha {
			maxAbsAlpha = ab
		}
	}
	if maxAbsAlpha <= 0 {
		maxAbsAlpha = 1
	}
	maxR := e.domainDiameter()
	r := kernel.RadiusFor(iso, gammaThresh/maxAbsAlpha, maxR)
	for {
		idList := e.tree.IDsNear(box, r)
		if len(idList) >= n {
			return all(), 0
		}
		selected := make(map[int]bool, len(idList))
		for _, id := range idList {
			selected[id] = true
		}
		gamma = e.gammaBound(iso, selected, boxes)
		if gamma <= gammaThresh {
			return idList, gamma
		}
		r = r*1.5 + 1e-9
		if r > maxR {
			return all(), 0
		}
	}
}

// gammaBound computes the paper's γ bound: for every sub-box of samples and
// every excluded training point x_l, the covariance k(x_j, x_l) for any
// sample x_j in the box lies in [κ(maxdist), κ(mindist)], so the omitted
// mean contribution Σ_l k(x_j, x_l)·α_l lies in a computable interval; γ is
// the worst absolute endpoint over boxes.
func (e *Evaluator) gammaBound(iso kernel.Isotropic, selected map[int]bool, boxes []rtree.Rect) float64 {
	alpha := e.g.Alpha()
	var worst float64
	for _, b := range boxes {
		var up, lo float64
		for id := 0; id < e.g.Len(); id++ {
			if selected[id] {
				continue
			}
			x := e.g.X(id)
			kNear := iso.EvalDist(b.MinDist(x))
			kFar := iso.EvalDist(b.MaxDist(x))
			a := alpha[id]
			if a >= 0 {
				up += kNear * a
				lo += kFar * a
			} else {
				up += kFar * a
				lo += kNear * a
			}
		}
		if g := math.Max(math.Abs(up), math.Abs(lo)); g > worst {
			worst = g
		}
	}
	return worst
}

// subBoxes partitions samples into up-to-2^d sub-boxes split at the overall
// box center and returns the tight bounding box of each non-empty cell —
// the refinement the paper notes makes γ tighter. For d > 3 (2^d cells stop
// paying off) a single box is used.
func subBoxes(samples [][]float64) []rtree.Rect {
	d := len(samples[0])
	if d > 3 || len(samples) < 16 {
		return []rtree.Rect{rtree.BoundingBox(samples)}
	}
	box := rtree.BoundingBox(samples)
	cells := make(map[int][][]float64)
	for _, s := range samples {
		key := 0
		for j := 0; j < d; j++ {
			if s[j] > (box.Lo[j]+box.Hi[j])/2 {
				key |= 1 << j
			}
		}
		cells[key] = append(cells[key], s)
	}
	out := make([]rtree.Rect, 0, len(cells))
	for _, pts := range cells {
		out = append(out, rtree.BoundingBox(pts))
	}
	return out
}

// domainDiameter estimates the largest distance in the training domain so
// radius growth terminates.
func (e *Evaluator) domainDiameter() float64 {
	if e.g.Len() == 0 {
		return 1
	}
	first := e.g.X(0)
	lo := mat.CloneVec(first)
	hi := mat.CloneVec(first)
	for i := 1; i < e.g.Len(); i++ {
		for j, v := range e.g.X(i) {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	var s float64
	for j := range lo {
		d := hi[j] - lo[j]
		s += d * d
	}
	return math.Sqrt(s) + 1
}

// TreeIDsNear exposes the R-tree distance query for benchmarks and
// diagnostics: ids of training points within delta of rect.
func (e *Evaluator) TreeIDsNear(rect rtree.Rect, delta float64) []int {
	return e.tree.IDsNear(rect, delta)
}

// GammaBoundForBoxes exposes the local-inference γ bound for a given
// selected subset and sample boxes (used by the sub-box ablation). It
// returns 0 when the kernel is not isotropic.
func (e *Evaluator) GammaBoundForBoxes(selected map[int]bool, boxes []rtree.Rect) float64 {
	iso, ok := e.cfg.Kernel.(kernel.Isotropic)
	if !ok {
		return 0
	}
	return e.gammaBound(iso, selected, boxes)
}

// SubBoxes exposes the sample-partitioning refinement of §5.1.
func SubBoxes(samples [][]float64) []rtree.Rect { return subBoxes(samples) }
