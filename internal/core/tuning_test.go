package core

import (
	"math"
	"math/rand"
	"testing"

	"olgapro/internal/kernel"
	"olgapro/internal/rtree"
	"olgapro/internal/udf"
)

// greedyFixture builds an evaluator with nTrain seeded training points and m
// Monte-Carlo samples, ready for a tuning pick.
func greedyFixture(t *testing.T, seed int64, nTrain, m int, kern kernel.Kernel, global bool) (*Evaluator, [][]float64, *rand.Rand) {
	t.Helper()
	f := udf.FuncOf{D: 2, F: func(x []float64) float64 {
		return math.Sin(x[0]) + 0.5*x[1]*x[1] + 0.3*x[0]*x[1]
	}}
	e, err := NewEvaluator(f, Config{
		Kernel:          kern,
		Noise:           1e-6,
		GlobalInference: global,
		SampleOverride:  m,
		Tuning:          TuneOptimalGreedy,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for e.GP().Len() < nTrain {
		x := []float64{4 * rng.Float64(), 4 * rng.Float64()}
		if err := e.AddTrainingAt(x); err != nil {
			continue // numerically duplicate draw
		}
	}
	samples := make([][]float64, m)
	for i := range samples {
		samples[i] = []float64{1 + 2*rng.Float64(), 1 + 2*rng.Float64()}
	}
	return e, samples, rng
}

// greedySetup runs local inference for the samples and returns everything a
// greedy pick needs, mirroring the Eval path.
func greedySetup(t *testing.T, e *Evaluator, samples [][]float64, rng *rand.Rand) (
	lc *localCtx, means, vars []float64, lambda, zA float64, cands, evalIdx []int) {
	t.Helper()
	sc := &e.scratch
	ids, gamma := e.selectLocal(samples, e.gammaThreshold())
	lc = &sc.lc
	if err := e.buildLocal(lc, ids, gamma); err != nil {
		t.Fatal(err)
	}
	m := len(samples)
	means = resizeFloats(&sc.means, m)
	vars = resizeFloats(&sc.vars, m)
	lc.predictInto(e, samples, means, vars, 0, m)
	zA = e.zAlpha(rtree.BoundingBox(samples))
	lambda = e.lambda(means)
	sc.skip.reset(m)
	cands = greedyCandidatePool(vars, &sc.skip, &sc.tuneCands)
	evalIdx = subsampleIndices(m, greedyMaxEval, rng)
	return lc, means, vars, lambda, zA, cands, evalIdx
}

// TestGreedyRank1MatchesCloneReference pins the tentpole equivalence: for
// identical candidate pools and evaluation subsets, the rank-1 fast path and
// the clone-based reference agree on the winning sample and, candidate by
// candidate, on the simulated error bound to 1e-9.
func TestGreedyRank1MatchesCloneReference(t *testing.T) {
	cases := []struct {
		name   string
		seed   int64
		nTrain int
		m      int
		kern   kernel.Kernel
		global bool
	}{
		{"sqexp_local", 1, 40, 200, kernel.NewSqExp(1, 0.8), false},
		{"sqexp_global", 2, 30, 150, kernel.NewSqExp(1, 0.8), true},
		{"matern32", 3, 25, 120, kernel.NewMatern32(1, 1.0), false},
		{"matern52", 4, 25, 120, kernel.NewMatern52(1, 1.0), false},
		{"tiny_model", 5, 3, 80, kernel.NewSqExp(0.7, 1.2), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, samples, rng := greedyFixture(t, tc.seed, tc.nTrain, tc.m, tc.kern, tc.global)
			lc, means, vars, lambda, zA, cands, evalIdx := greedySetup(t, e, samples, rng)
			if len(cands) == 0 {
				t.Fatal("empty candidate pool")
			}

			bestNew, boundNew := e.greedyBestRank1(samples, means, vars, lc, lambda, zA, cands, evalIdx)
			bestOld, boundOld := e.greedyBestClone(samples, means, vars, lc, lambda, zA, cands, evalIdx)
			if bestNew != bestOld {
				t.Errorf("picks diverge: rank1=%d clone=%d", bestNew, bestOld)
			}
			if d := math.Abs(boundNew - boundOld); d > 1e-9*(1+math.Abs(boundOld)) {
				t.Errorf("winning bounds diverge: rank1=%g clone=%g (Δ=%g)", boundNew, boundOld, d)
			}

			// Candidate-by-candidate: the full simulated envelope bound must
			// agree for every candidate, not just the winner.
			nCheck := len(cands)
			if nCheck > 16 {
				nCheck = 16
			}
			single := make([]int, 1)
			for _, ci := range cands[:nCheck] {
				single[0] = ci
				_, bNew := e.greedyBestRank1(samples, means, vars, lc, lambda, zA, single, evalIdx)
				_, bOld := e.greedyBestClone(samples, means, vars, lc, lambda, zA, single, evalIdx)
				if d := math.Abs(bNew - bOld); d > 1e-9*(1+math.Abs(bOld)) {
					t.Errorf("candidate %d bounds diverge: rank1=%g clone=%g (Δ=%g)", ci, bNew, bOld, d)
				}
			}
		})
	}
}

// TestGreedyRank1EmptyLocalContext covers the degenerate prior-only regime:
// with no local training points both paths reduce to a pure prior update and
// must still agree.
func TestGreedyRank1EmptyLocalContext(t *testing.T) {
	e, samples, rng := greedyFixture(t, 7, 4, 60, kernel.NewSqExp(1, 0.8), false)
	sc := &e.scratch
	lc := &sc.lc
	if err := e.buildLocal(lc, nil, 0); err != nil {
		t.Fatal(err)
	}
	m := len(samples)
	means := resizeFloats(&sc.means, m)
	vars := resizeFloats(&sc.vars, m)
	lc.predictInto(e, samples, means, vars, 0, m)
	zA := e.zAlpha(rtree.BoundingBox(samples))
	lambda := e.lambda(means)
	sc.skip.reset(m)
	cands := greedyCandidatePool(vars, &sc.skip, &sc.tuneCands)
	evalIdx := subsampleIndices(m, greedyMaxEval, rng)
	bestNew, boundNew := e.greedyBestRank1(samples, means, vars, lc, lambda, zA, cands, evalIdx)
	bestOld, boundOld := e.greedyBestClone(samples, means, vars, lc, lambda, zA, cands, evalIdx)
	if bestNew != bestOld {
		t.Errorf("picks diverge on empty context: rank1=%d clone=%d", bestNew, bestOld)
	}
	if d := math.Abs(boundNew - boundOld); d > 1e-9*(1+math.Abs(boundOld)) {
		t.Errorf("bounds diverge on empty context: rank1=%g clone=%g", boundNew, boundOld)
	}
}

// TestPickGreedyForBenchPathsAgree exercises the exported benchmark hook the
// tuning_pick_* benchmarks use: both paths, fed identical rng states, choose
// the same training sample.
func TestPickGreedyForBenchPathsAgree(t *testing.T) {
	e, samples, _ := greedyFixture(t, 11, 35, 150, kernel.NewSqExp(1, 0.7), false)
	pickNew, err := e.PickGreedyForBench(samples, rand.New(rand.NewSource(99)), false)
	if err != nil {
		t.Fatal(err)
	}
	pickOld, err := e.PickGreedyForBench(samples, rand.New(rand.NewSource(99)), true)
	if err != nil {
		t.Fatal(err)
	}
	if pickNew != pickOld {
		t.Errorf("bench hook picks diverge: rank1=%d clone=%d", pickNew, pickOld)
	}
	if pickNew < 0 || pickNew >= len(samples) {
		t.Errorf("pick %d out of range", pickNew)
	}
}

// TestGreedyPickInsideEval runs the full Eval loop under the optimal-greedy
// policy, confirming the fast path composes with online tuning end to end.
func TestGreedyPickInsideEval(t *testing.T) {
	f := udf.FuncOf{D: 2, F: func(x []float64) float64 {
		return x[0]*x[0] + math.Cos(x[1])
	}}
	e, err := NewEvaluator(f, Config{
		Kernel:         kernel.NewSqExp(1, 0.6),
		Tuning:         TuneOptimalGreedy,
		SampleOverride: 300,
		MaxAddPerInput: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	in := gaussianInput([]float64{1.2, 1.4}, 0.25)
	for i := 0; i < 5; i++ {
		out, err := e.Eval(in, rng)
		if err != nil {
			t.Fatal(err)
		}
		if out.Dist == nil {
			t.Fatal("no output distribution")
		}
		if out.BoundGP < 0 {
			t.Errorf("negative GP bound %g", out.BoundGP)
		}
	}
	if e.Stats().PointsAdded == 0 {
		t.Error("greedy tuning never added a training point")
	}
}
