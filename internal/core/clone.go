package core

import (
	"errors"
	"fmt"
)

// CloneFrozen returns an independent evaluator that shares the receiver's
// UDF, learned hyperparameters, and training set, with every form of online
// learning disabled: tuning (MaxAddPerInput), hyperparameter retraining, and
// the filter-verification UDF probes are all off, and intra-tuple inference
// parallelism is forced sequential. A frozen clone therefore never mutates
// its model, which makes its Eval a pure function of (input, rng) — the
// property the parallel executor's determinism guarantee (internal/exec)
// rests on: two frozen clones of the same evaluator produce bit-identical
// outputs for the same input and seed, regardless of which tuples each one
// has processed in between.
//
// The receiver must have at least two training points (one warm-up Eval is
// enough), or the clone's bootstrap step would add points on first use and
// break the frozen invariant. Cloning costs one incremental O(n²) Cholesky
// rebuild; for registry kernels (sqexp, matérn, sqexp-ard) the kernel is
// copied so the clone shares no mutable hyperparameter state with a
// receiver that keeps training. Unknown kernel types are shared read-only —
// safe as long as the receiver is not retrained while clones are in use.
func (e *Evaluator) CloneFrozen() (*Evaluator, error) {
	if e.model.Len() < 2 {
		return nil, errors.New("core: CloneFrozen needs a model with ≥ 2 training points; run a warm-up Eval first")
	}
	cfg := e.cfg
	if name, ardDim, err := kernelName(cfg.Kernel); err == nil {
		k, err := kernelFromName(name, ardDim, cfg.Kernel.Params(nil))
		if err != nil {
			return nil, fmt.Errorf("core: clone kernel: %w", err)
		}
		cfg.Kernel = k
	}
	cfg.MaxAddPerInput = -1
	cfg.Retrain = RetrainNever
	cfg.FilterTrustModel = true
	cfg.Parallelism = 1
	c, err := NewEvaluator(e.f, cfg)
	if err != nil {
		return nil, err
	}
	if e.sg != nil {
		// gp.Sparse.Clone is a canonical deterministic rebuild from the
		// training set and inducing indices, so every clone — including ones
		// made after a snapshot restart from the same state — predicts
		// bit-identically. No R-tree: the sparse path never consults it.
		sg, err := e.sg.Clone(cfg.Kernel)
		if err != nil {
			return nil, fmt.Errorf("core: clone sparse model: %w", err)
		}
		c.sg, c.model = sg, sg
	} else {
		for i := 0; i < e.g.Len(); i++ {
			if err := c.g.Add(e.g.X(i), e.g.Y(i)); err != nil {
				return nil, fmt.Errorf("core: clone training point %d: %w", i, err)
			}
			if err := c.tree.Insert(c.g.X(i), i); err != nil {
				return nil, fmt.Errorf("core: clone index insert %d: %w", i, err)
			}
		}
	}
	c.yMin, c.yMax, c.haveY = e.yMin, e.yMax, e.haveY
	return c, nil
}

// Frozen reports whether the evaluator was built with online learning
// disabled (as CloneFrozen configures it).
func (e *Evaluator) Frozen() bool {
	return e.cfg.MaxAddPerInput < 0 && e.cfg.Retrain == RetrainNever && e.cfg.FilterTrustModel
}
