package core

import (
	"math/rand"
	"testing"
)

// The greedy trial loop builds one envelope and one discrepancy bound per
// candidate (greedyBestRank1). With the envelope's three ECDF structs owned
// by the scratch (ecdf.SetSorted) the whole per-candidate step must be
// allocation-free once warm — formerly it paid three small ECDF-struct
// allocations per candidate, named as remaining headroom in ROADMAP.md.
func TestGreedyTrialEnvelopeAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const m = 400
	means := make([]float64, m)
	vars := make([]float64, m)
	for i := range means {
		means[i] = rng.NormFloat64()
		vars[i] = 0.01 + rng.Float64() // heteroscedastic: the general path
	}
	var sc evalScratch
	// Warm: grow every buffer once.
	env := sc.tuneEnv.envelopeOf(means, vars, 2.0, m)
	env.DiscrepancyBoundWith(&sc.bound, 0.05)
	allocs := testing.AllocsPerRun(100, func() {
		trial := sc.tuneEnv.envelopeOf(means, vars, 2.0, m)
		if b := trial.DiscrepancyBoundWith(&sc.bound, 0.05); b < 0 {
			t.Fatal("negative bound")
		}
	})
	if allocs != 0 {
		t.Fatalf("greedy trial envelope+bound allocates %.0f/op, want 0", allocs)
	}
}

// The homoscedastic fast path (uniform variance → shifted supports) must be
// allocation-free too.
func TestGreedyTrialEnvelopeAllocFreeUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const m = 400
	means := make([]float64, m)
	vars := make([]float64, m)
	for i := range means {
		means[i] = rng.NormFloat64()
		vars[i] = 0.25
	}
	var sc evalScratch
	env := sc.tuneEnv.envelopeOf(means, vars, 2.0, m)
	env.DiscrepancyBoundWith(&sc.bound, 0.05)
	allocs := testing.AllocsPerRun(100, func() {
		trial := sc.tuneEnv.envelopeOf(means, vars, 2.0, m)
		trial.DiscrepancyBoundWith(&sc.bound, 0.05)
	})
	if allocs != 0 {
		t.Fatalf("uniform-variance envelope+bound allocates %.0f/op, want 0", allocs)
	}
}

// One full optimal-greedy pick (candidate pool + per-candidate rank-1 trials)
// must not allocate per candidate: the only tolerated allocations are the
// O(1)-count ones of the pick itself (the evaluation-subset permutation),
// far below the former 3-per-candidate envelope cost.
func TestPickGreedyAllocBudget(t *testing.T) {
	e := seededEvaluator(t, 60)
	e.cfg.Tuning = TuneOptimalGreedy
	e.cfg.GlobalInference = true
	rng := rand.New(rand.NewSource(11))
	samples := make([][]float64, 400)
	for i := range samples {
		samples[i] = []float64{3.5 + 3*rng.Float64(), 3.5 + 3*rng.Float64()}
	}
	if _, err := e.PickGreedyForBench(samples, rng, false); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.PickGreedyForBench(samples, rng, false); err != nil {
			t.Fatal(err)
		}
	})
	// The pick still pays O(1)-per-pick setup allocations (local-context
	// rebuild, evaluation-subset permutation) — ~78 on this workload — but
	// nothing per candidate. The budget sits between that and the former
	// cost (~270: 3 ECDF structs × ~64 candidates on top of setup), so the
	// per-candidate envelope allocations can never sneak back unnoticed.
	const budget = 120
	if allocs > budget {
		t.Fatalf("PickGreedyForBench allocates %.0f/op, budget %d", allocs, budget)
	}
}
