package core

import (
	"math/rand"
	"testing"

	"olgapro/internal/dist"
	"olgapro/internal/kernel"
	"olgapro/internal/mc"
	"olgapro/internal/udf"
)

// steadyEvaluator converges an evaluator on the benchmark workload so the
// measured EvalSamples calls are pure steady state (no training-point adds,
// no retraining) — the same setup cmd/bench's eval_samples_steady and
// filter_fast_path use.
func steadyEvaluator(t *testing.T, pred *mc.Predicate) (*Evaluator, [][]float64) {
	t.Helper()
	cfg := Config{
		Kernel:         kernel.NewSqExp(1, 0.5),
		SampleOverride: 1000,
	}
	cfg.Predicate = pred
	f := udf.FuncOf{D: 2, F: func(x []float64) float64 {
		return x[0]*x[0] + 0.5*x[1] + 0.3*x[0]*x[1]
	}}
	ev, err := NewEvaluator(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	in, err := dist.IsoGaussianVec([]float64{0.5, 0.5}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := ev.Eval(in, rng); err != nil {
			t.Fatal(err)
		}
	}
	samples := make([][]float64, ev.SampleBudget())
	for i := range samples {
		samples[i] = in.SampleVec(rng, nil)
	}
	return ev, samples
}

// The steady-state EvalSamples path allocates only what escapes to the
// caller: the Output struct and its owned envelope (three value slices and
// three ECDF headers), plus the small fixed cost of the band multiplier —
// everything sized by the sample count or the local subset lives in
// evalScratch. The pin is the PR-7 burn-down target; it was 134 before the
// bounding-box, sub-box, and tuning-subset buffers moved into scratch.
func TestEvalSamplesSteadyAllocs(t *testing.T) {
	ev, samples := steadyEvaluator(t, nil)
	rng := rand.New(rand.NewSource(11))
	if _, err := ev.EvalSamples(samples, rng); err != nil {
		t.Fatal(err)
	}
	before := ev.Points()
	allocs := testing.AllocsPerRun(10, func() {
		out, err := ev.EvalSamples(samples, rng)
		if err != nil {
			t.Fatal(err)
		}
		if out.Dist == nil {
			t.Fatal("steady tuple unexpectedly filtered")
		}
	})
	if ev.Points() != before {
		t.Fatalf("workload not steady: model grew %d → %d points", before, ev.Points())
	}
	t.Logf("steady EvalSamples: %.1f allocs per call", allocs)
	if allocs > 12 {
		t.Fatalf("steady EvalSamples allocates %.1f per call, want ≤ 12", allocs)
	}
}

// The chunked filtering fast path drops the tuple after the first inference
// chunk and hands back no distribution, so it must allocate almost nothing:
// the Output struct and the fixed band-multiplier cost. It was 76 allocs/op
// before the PR-7 burn-down.
func TestFilterFastPathAllocs(t *testing.T) {
	pred := &mc.Predicate{A: 100, B: 200, Theta: 0.5}
	ev, samples := steadyEvaluator(t, pred)
	rng := rand.New(rand.NewSource(13))
	if out, err := ev.EvalSamples(samples, rng); err != nil || !out.Filtered {
		t.Fatalf("warm tuple not filtered: out=%+v err=%v", out, err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		out, err := ev.EvalSamples(samples, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Filtered {
			t.Fatal("tuple unexpectedly not filtered")
		}
	})
	t.Logf("filter fast path: %.1f allocs per call", allocs)
	if allocs > 4 {
		t.Fatalf("filter fast path allocates %.1f per call, want ≤ 4", allocs)
	}
}
