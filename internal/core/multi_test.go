package core

import (
	"math"
	"math/rand"
	"testing"

	"olgapro/internal/kernel"
	"olgapro/internal/udf"
)

// vectorUDF: f(x) = (sin-bump, linear trend) over 2-D input.
func vectorUDF() MultiFunc {
	return MultiFuncOf{D: 2, K: 2, F: func(x []float64, out []float64) []float64 {
		if cap(out) < 2 {
			out = make([]float64, 2)
		}
		out = out[:2]
		out[0] = math.Exp(-((x[0]-5)*(x[0]-5) + (x[1]-5)*(x[1]-5)) / 8)
		out[1] = 0.1*x[0] + 0.05*x[1]
		return out
	}}
}

func TestMultiEvaluatorBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := NewMultiEvaluator(vectorUDF(), Config{Kernel: kernel.NewSqExp(0.5, 2)})
	if err != nil {
		t.Fatal(err)
	}
	input := gaussianInput([]float64{5, 5}, 0.4)
	outs, err := m.Eval(input, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("%d outputs", len(outs))
	}
	// Component 0 peaks at 1 near (5,5); component 1 ≈ 0.75.
	if med := outs[0].Dist.Quantile(0.5); med < 0.7 || med > 1.05 {
		t.Fatalf("component 0 median %g", med)
	}
	if med := outs[1].Dist.Quantile(0.5); math.Abs(med-0.75) > 0.1 {
		t.Fatalf("component 1 median %g, want ≈ 0.75", med)
	}
}

func TestMultiEvaluatorSharesUDFCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := NewMultiEvaluator(vectorUDF(), Config{Kernel: kernel.NewSqExp(0.5, 2)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.Eval(gaussianInput(randomCenter(rng, 2), 0.4), rng); err != nil {
			t.Fatal(err)
		}
	}
	// The components bootstrap from the same samples, so shared points are
	// fetched from the cache: distinct vector evaluations must be below the
	// per-component sum.
	perComponentSum := m.Component(0).Stats().UDFCalls + m.Component(1).Stats().UDFCalls
	if m.UDFCalls() >= perComponentSum {
		t.Fatalf("cache saved nothing: %d distinct vs %d component calls",
			m.UDFCalls(), perComponentSum)
	}
}

func TestMultiEvaluatorIndependentKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewMultiEvaluator(vectorUDF(), Config{
		Kernel: kernel.NewSqExp(0.5, 3), Retrain: RetrainEager,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Eval(gaussianInput(randomCenter(rng, 2), 0.4), rng); err != nil {
			t.Fatal(err)
		}
	}
	k0 := m.Component(0).Config().Kernel.(*kernel.SqExp)
	k1 := m.Component(1).Config().Kernel.(*kernel.SqExp)
	if k0 == k1 {
		t.Fatal("components share a kernel instance")
	}
}

func TestMultiEvaluatorValidation(t *testing.T) {
	if _, err := NewMultiEvaluator(nil, Config{}); err == nil {
		t.Error("nil func should fail")
	}
	bad := MultiFuncOf{D: 0, K: 1, F: nil}
	if _, err := NewMultiEvaluator(bad, Config{}); err == nil {
		t.Error("zero input dim should fail")
	}
	bad2 := MultiFuncOf{D: 1, K: 0, F: nil}
	if _, err := NewMultiEvaluator(bad2, Config{}); err == nil {
		t.Error("zero output dim should fail")
	}
}

func TestVecCache(t *testing.T) {
	calls := 0
	f := MultiFuncOf{D: 1, K: 2, F: func(x []float64, out []float64) []float64 {
		calls++
		return []float64{x[0], 2 * x[0]}
	}}
	c := newVecCache(f)
	a := c.eval([]float64{3})
	b := c.eval([]float64{3})
	if calls != 1 {
		t.Fatalf("cache missed: %d calls", calls)
	}
	if a[0] != b[0] || a[1] != 6 {
		t.Fatalf("cached values wrong: %v %v", a, b)
	}
	c.eval([]float64{4})
	if calls != 2 || c.Calls() != 2 {
		t.Fatalf("distinct point should evaluate: %d", calls)
	}
}

func TestPointKeyDistinguishes(t *testing.T) {
	if pointKey([]float64{1, 2}) == pointKey([]float64{2, 1}) {
		t.Fatal("key collision for permuted points")
	}
	if pointKey([]float64{0}) == pointKey([]float64{math.Copysign(0, -1)}) {
		// −0.0 and +0.0 have different bit patterns; both orders acceptable,
		// but they must at least not panic. Nothing to assert beyond that.
		t.Log("note: -0.0 and +0.0 share a key only if bits match")
	}
}

// Parallel inference must produce bit-identical results to sequential.
func TestParallelInferenceMatchesSequential(t *testing.T) {
	f := udf.Standard(udf.F3, 21)
	build := func(par int) ([]float64, []float64) {
		rng := rand.New(rand.NewSource(7))
		e, err := NewEvaluator(f, Config{
			Kernel: kernel.NewSqExp(0.5, 1.5), Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Seed a model.
		for i := 0; i < 30; i++ {
			x := []float64{rng.Float64() * 10, rng.Float64() * 10}
			if err := e.AddTrainingAt(x); err != nil {
				continue
			}
		}
		samples := make([][]float64, 600)
		srng := rand.New(rand.NewSource(9))
		in := gaussianInput([]float64{5, 5}, 0.5)
		for i := range samples {
			samples[i] = in.SampleVec(srng, nil)
		}
		ids, gamma := e.selectLocal(samples, e.gammaThreshold())
		var lc localCtx
		if err := e.buildLocal(&lc, ids, gamma); err != nil {
			t.Fatal(err)
		}
		means := make([]float64, len(samples))
		vars := make([]float64, len(samples))
		lc.predictInto(e, samples, means, vars, 0, len(samples))
		return means, vars
	}
	m1, v1 := build(1)
	m8, v8 := build(8)
	for i := range m1 {
		if m1[i] != m8[i] || v1[i] != v8[i] {
			t.Fatalf("parallel result differs at %d: (%g,%g) vs (%g,%g)",
				i, m1[i], v1[i], m8[i], v8[i])
		}
	}
}

func TestParallelEvalEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := udf.Standard(udf.F1, 22)
	e, err := NewEvaluator(f, Config{
		Kernel: kernel.NewSqExp(0.5, 2), Parallelism: -1, // GOMAXPROCS
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Config().Parallelism < 1 {
		t.Fatalf("negative parallelism not resolved: %d", e.Config().Parallelism)
	}
	out, err := e.Eval(gaussianInput([]float64{5, 5}, 0.5), rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dist == nil || out.Bound <= 0 {
		t.Fatal("parallel eval produced no usable output")
	}
}
