// Package core implements OLGAPRO (ONline GAussian PROcess), the paper's
// complete online algorithm for computing output distributions of black-box
// UDFs over uncertain input with (ε,δ) accuracy guarantees (Algorithm 5).
//
// Per uncertain input tuple X ~ p(x), an Evaluator:
//
//  1. draws m Monte-Carlo samples of X, with m chosen so the sampling error
//     is within the ε_MC budget (§2.2);
//  2. retrieves a *local* subset of GP training points around the samples'
//     bounding box from an R-tree, with the dropped-point error bounded by
//     the threshold Γ (§5.1);
//  3. runs GP inference at the samples, builds a simultaneous confidence
//     envelope f̂ ± z_α σ (§4.2), and computes the λ-discrepancy error bound
//     of Algorithm 3;
//  4. while the bound exceeds the ε_GP budget, evaluates the true UDF at the
//     sample with the largest predictive variance and adds it as a training
//     point using the O(n²) incremental update (online tuning, §5.2);
//  5. if points were added, estimates the first Newton step on the log
//     marginal likelihood and retrains the hyperparameters only when the
//     step exceeds Δθ (online retraining, §5.3);
//  6. with a selection predicate, filters tuples whose tuple existence
//     probability upper bound is confidently below the threshold (§5.5).
package core

import (
	"fmt"
	"math"
	"runtime"

	"olgapro/internal/kernel"
	"olgapro/internal/mc"
)

// TuningPolicy selects where online tuning places the next training point
// (Expt 2 compares these).
type TuningPolicy int

const (
	// TuneMaxVariance adds the cached sample with the largest predictive
	// variance — the paper's choice.
	TuneMaxVariance TuningPolicy = iota
	// TuneRandom adds a uniformly random cached sample (baseline).
	TuneRandom
	// TuneOptimalGreedy simulates adding every cached sample and picks the
	// one that most reduces the error bound. Hypothetical reference point:
	// prohibitively expensive for production use.
	TuneOptimalGreedy
)

// String names the policy.
func (p TuningPolicy) String() string {
	switch p {
	case TuneRandom:
		return "random"
	case TuneOptimalGreedy:
		return "optimal-greedy"
	default:
		return "largest-variance"
	}
}

// RetrainPolicy selects when hyperparameters are relearned (Expt 3).
type RetrainPolicy int

const (
	// RetrainThreshold retrains when the first Newton step on the log
	// likelihood exceeds Δθ — the paper's strategy (§5.3).
	RetrainThreshold RetrainPolicy = iota
	// RetrainEager retrains whenever any training point was added.
	RetrainEager
	// RetrainNever never retrains.
	RetrainNever
)

// String names the policy.
func (p RetrainPolicy) String() string {
	switch p {
	case RetrainEager:
		return "eager"
	case RetrainNever:
		return "never"
	default:
		return "threshold"
	}
}

// Config parameterizes an Evaluator. The zero value selects the paper's
// defaults (§6.1): ε = 0.1, δ = 0.05, ε_MC = 0.7ε, λ = 1% of the output
// range, Γ = 5% of the output range, Δθ = 0.05.
type Config struct {
	// Eps is the total discrepancy error budget ε.
	Eps float64
	// Delta is the total failure probability δ, split evenly between the
	// MC and GP sources so that (1−δ) = (1−δ_MC)(1−δ_GP).
	Delta float64
	// MCFrac is the fraction of ε allocated to Monte-Carlo sampling error
	// (Profile 3 finds 0.7 performs well).
	MCFrac float64
	// Lambda is the minimum interval length λ of the λ-discrepancy. When 0,
	// LambdaFrac of the observed output range is used.
	Lambda float64
	// LambdaFrac is the relative λ (default 0.01).
	LambdaFrac float64
	// Gamma is the local-inference error threshold Γ. When 0, GammaFrac of
	// the observed output range is used.
	Gamma float64
	// GammaFrac is the relative Γ (default 0.05).
	GammaFrac float64
	// GlobalInference disables local inference, using every training point
	// (the paper's "global inference" baseline in Expt 1).
	GlobalInference bool
	// Tuning selects the online-tuning point-placement policy.
	Tuning TuningPolicy
	// MaxAddPerInput caps how many training points one Eval may add
	// (default 10, the cap the paper uses "for performance" in Expt 2).
	// A negative value disables online tuning entirely, which Expt 1 uses
	// to compare inference techniques at a fixed training-set size.
	MaxAddPerInput int
	// SampleOverride, when positive, replaces the ε_MC-derived Monte-Carlo
	// sample count — an experiment knob matching the paper's Expt 2 setup
	// ("we assume that each input has 400 samples for 'optimal greedy' to
	// be feasible"). It voids the ε_MC part of the guarantee.
	SampleOverride int
	// Retrain selects the retraining policy.
	Retrain RetrainPolicy
	// DeltaTheta is the Newton-step threshold Δθ for RetrainThreshold
	// (default 0.05, the paper's conservative recommendation).
	DeltaTheta float64
	// TrainMaxIter caps gradient-ascent iterations per retraining
	// (default 30).
	TrainMaxIter int
	// Kernel is the GP covariance function (default SqExp(1, 1)).
	Kernel kernel.Kernel
	// Noise is the GP jitter variance (default gp.DefaultNoise).
	Noise float64
	// Predicate enables online filtering (§5.5) when non-nil.
	Predicate *mc.Predicate
	// FilterChunk is the number of samples per incremental inference chunk
	// when filtering (default 64).
	FilterChunk int
	// Parallelism fans GP inference over the Monte-Carlo samples out across
	// this many goroutines (the O(m·l²) dominant cost). 0 or 1 is
	// sequential; negative uses GOMAXPROCS. Model updates (online tuning,
	// retraining) remain sequential — they are inherently ordered.
	Parallelism int
	// SparseBudget, when positive, replaces the exact GP emulator with the
	// budgeted sparse inducing-point approximation (gp.Sparse): all factor
	// work is O(SparseBudget²) per absorbed point and per prediction,
	// independent of how many training points the evaluator has ever
	// learned — the knob that makes "serve forever" affordable. Local
	// R-tree inference (§5.1) is bypassed on this path: the inducing set
	// itself is the sparsity. 0 keeps the exact model.
	SparseBudget int
	// SparseInflate multiplies the sparse model's predictive standard
	// deviation (≥ 1), widening the §4.2 confidence band so the ε_GP bound
	// stays valid under the approximation. 0 selects the gp.Sparse default
	// (1.1); values below 1 are clamped to 1. Larger values trade more
	// online-tuning UDF calls (cost) for a more conservative band.
	SparseInflate float64
	// SparseSwapEvery is the inducing-set maintenance cadence in absorbed
	// points once the budget is full (0 selects the budget itself,
	// negative disables swap maintenance). Ignored when SparseBudget is 0.
	SparseSwapEvery int
	// FilterTrustModel skips the filter verification call. By default,
	// before a tuple is dropped, the true UDF is evaluated once at the
	// sample most likely to satisfy the predicate; if the observation
	// contradicts the confidence envelope the point becomes training data
	// and the tuple is processed fully instead. This guards against a
	// confidently wrong emulator in unexplored regions (filtered tuples
	// never trigger online tuning, so without the check the model can
	// mis-filter forever). One UDF call per dropped tuple preserves nearly
	// all of the filtering speedup. Set true for the paper's unguarded §5.5
	// behavior.
	FilterTrustModel bool
}

func (c Config) normalize() (Config, error) {
	if c.Eps <= 0 {
		c.Eps = 0.1
	}
	if c.Delta <= 0 {
		c.Delta = 0.05
	}
	if c.Eps >= 1 || c.Delta >= 1 {
		return c, fmt.Errorf("core: ε=%g and δ=%g must be in (0,1)", c.Eps, c.Delta)
	}
	if c.MCFrac <= 0 || c.MCFrac >= 1 {
		c.MCFrac = 0.7
	}
	if c.LambdaFrac <= 0 {
		c.LambdaFrac = 0.01
	}
	if c.GammaFrac <= 0 {
		c.GammaFrac = 0.05
	}
	if c.MaxAddPerInput == 0 {
		c.MaxAddPerInput = 10
	} else if c.MaxAddPerInput < 0 {
		c.MaxAddPerInput = -1 // tuning disabled
	}
	if c.DeltaTheta <= 0 {
		c.DeltaTheta = 0.05
	}
	if c.TrainMaxIter <= 0 {
		c.TrainMaxIter = 30
	}
	if c.Kernel == nil {
		c.Kernel = kernel.NewSqExp(1, 1)
	}
	if c.FilterChunk <= 0 {
		c.FilterChunk = 64
	}
	if c.SparseBudget < 0 {
		c.SparseBudget = 0
	}
	if c.SparseBudget > 0 && c.SparseBudget < 2 {
		return c, fmt.Errorf("core: sparse budget %d must be ≥ 2 (bootstrap needs two basis points)", c.SparseBudget)
	}
	if c.Parallelism < 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c, nil
}

// Split returns the error/confidence allocation of Theorem 4.1:
// ε = ε_MC + ε_GP and (1−δ) = (1−δ_MC)(1−δ_GP) with δ split evenly.
func (c Config) Split() (epsMC, epsGP, deltaMC, deltaGP float64) {
	epsMC = c.MCFrac * c.Eps
	epsGP = c.Eps - epsMC
	d := 1 - math.Sqrt(1-c.Delta)
	return epsMC, epsGP, d, d
}
