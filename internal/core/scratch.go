package core

import (
	"math"
	"slices"

	"olgapro/internal/ecdf"
	"olgapro/internal/mat"
)

// sortFloats sorts in place without allocating (pdqsort on the raw slice).
func sortFloats(x []float64) { slices.Sort(x) }

// evalScratch is the persistent per-evaluator workspace behind the
// near-zero-allocation evaluation hot path: every buffer whose size depends
// only on the Monte-Carlo sample count m, the training-set size n, or the
// local-subset size l lives here and is reused across Eval calls. An
// Evaluator is documented as single-goroutine, which is what makes one
// workspace per evaluator sound; the predictBuf pool additionally gives each
// predictInto worker goroutine its own buffers.
type evalScratch struct {
	sampleData []float64   // flat backing array for Eval's m×d sample matrix
	samples    [][]float64 // row headers into sampleData

	means, vars []float64 // per-sample posterior moments

	lc localCtx // the per-tuple local inference context, rebuilt in place

	env     envScratch        // envelope buffers for the error-bound loop
	tuneEnv envScratch        // separate buffers for pickOptimalGreedy's trials
	bound   ecdf.BoundScratch // DiscrepancyBound work buffers

	sel  markSet // selectLocal membership (per radius step)
	skip markSet // per-tuple skip set for tuning picks

	idBuf []int       // selectLocal id staging (copied into lc by buildLocal)
	gram  *mat.Matrix // local Gram staging for buildLocal

	pbufs []predictBuf // per-worker inference buffers; index 0 is sequential

	tuneMeans, tuneVars []float64 // pickOptimalGreedy evaluation-subset moments
	tuneY               []float64 // pickOptimalGreedy local observations
}

// buf returns worker buffer w, growing the pool as needed.
func (s *evalScratch) buf(w int) *predictBuf {
	s.growBufs(w + 1)
	return &s.pbufs[w]
}

// growBufs ensures the pool holds at least p buffers. It must be called
// before worker goroutines take pointers into the pool, since growth moves
// the backing array.
func (s *evalScratch) growBufs(p int) {
	for len(s.pbufs) < p {
		s.pbufs = append(s.pbufs, predictBuf{})
	}
}

// resizeFloats grows *buf to length n, reusing capacity, and returns it.
func resizeFloats(buf *[]float64, n int) []float64 {
	*buf = resizeFloatsVal(*buf, n)
	return *buf
}

// resizeFloatsVal grows buf to length n, reusing capacity, and returns it.
func resizeFloatsVal(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// markSet is an epoch-stamped integer set over [0, n): reset is O(1) — one
// epoch bump — instead of the O(n) rebuild of the map[int]bool it replaces,
// and membership is a single slice load.
type markSet struct {
	marks []int32
	epoch int32
	count int
}

// reset empties the set and sizes it for ids in [0, n).
func (m *markSet) reset(n int) {
	if cap(m.marks) < n {
		grown := make([]int32, n)
		copy(grown, m.marks)
		m.marks = grown
	}
	m.marks = m.marks[:n]
	if m.epoch == math.MaxInt32 {
		// Epoch wrap: clear stamps so stale entries cannot collide.
		for i := range m.marks {
			m.marks[i] = 0
		}
		m.epoch = 0
	}
	m.epoch++
	m.count = 0
}

// add inserts id (idempotently).
func (m *markSet) add(id int) {
	if m.marks[id] != m.epoch {
		m.marks[id] = m.epoch
		m.count++
	}
}

// has reports membership.
func (m *markSet) has(id int) bool { return m.marks[id] == m.epoch }

// size returns the number of distinct ids added since the last reset.
func (m *markSet) size() int { return m.count }

// envScratch owns the three sorted sample buffers an envelope is built from,
// so each tuning iteration re-sorts in place instead of allocating and
// copying three fresh m-length slices (ecdf.New copies; ecdf.FromSorted
// does not).
type envScratch struct {
	mean, lower, upper []float64
}

// envelopeOf builds the three empirical CDFs Ŷ′, Y′_S, Y′_L from the
// inferred means and variances of the first n samples, reusing the scratch
// buffers. The returned envelope aliases them: it is valid only until the
// next envelopeOf call on the same scratch, and must be deep-copied (see
// ownedEnvelope) before escaping into an Output.
func (s *envScratch) envelopeOf(means, vars []float64, zAlpha float64, n int) ecdf.Envelope {
	mean := resizeFloats(&s.mean, n)
	lower := resizeFloats(&s.lower, n)
	upper := resizeFloats(&s.upper, n)
	for i := 0; i < n; i++ {
		sd := math.Sqrt(vars[i])
		mean[i] = means[i]
		lower[i] = means[i] - zAlpha*sd
		upper[i] = means[i] + zAlpha*sd
	}
	sortFloats(mean)
	sortFloats(lower)
	sortFloats(upper)
	return ecdf.Envelope{
		Mean:  ecdf.FromSorted(mean),
		Lower: ecdf.FromSorted(lower),
		Upper: ecdf.FromSorted(upper),
	}
}

// ownedEnvelope deep-copies a scratch-backed envelope so it can outlive the
// evaluator's workspace — the one O(m) allocation a non-filtered tuple pays,
// for the distribution it hands back to the caller.
func ownedEnvelope(env ecdf.Envelope) ecdf.Envelope {
	return ecdf.Envelope{
		Mean:  ecdf.FromSorted(mat.CloneVec(env.Mean.Values())),
		Lower: ecdf.FromSorted(mat.CloneVec(env.Lower.Values())),
		Upper: ecdf.FromSorted(mat.CloneVec(env.Upper.Values())),
	}
}
